package repro_test

import (
	"math"
	"strings"
	"testing"

	"repro"
)

// TestModelRejectsNonFiniteParams: every model entry point must refuse
// NaN, infinite, and negative float parameters with an error instead of
// iterating on them (a NaN never meets a convergence tolerance, so an
// unvalidated solver would spin to its iteration cap and return
// garbage). This is the behaviour the paramvalidate lint check pins
// statically; these tests pin it dynamically.
func TestModelRejectsNonFiniteParams(t *testing.T) {
	good := repro.Params{P: 32, W: 1000, St: 40, So: 200, C2: 0}
	if _, err := repro.AllToAll(good); err != nil {
		t.Fatalf("baseline params rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*repro.Params)
	}{
		{"NaN W", func(p *repro.Params) { p.W = math.NaN() }},
		{"NaN St", func(p *repro.Params) { p.St = math.NaN() }},
		{"NaN So", func(p *repro.Params) { p.So = math.NaN() }},
		{"NaN C2", func(p *repro.Params) { p.C2 = math.NaN() }},
		{"+Inf W", func(p *repro.Params) { p.W = math.Inf(1) }},
		{"+Inf So", func(p *repro.Params) { p.So = math.Inf(1) }},
		{"negative W", func(p *repro.Params) { p.W = -1 }},
		{"negative St", func(p *repro.Params) { p.St = -1 }},
		{"zero So", func(p *repro.Params) { p.So = 0 }},
		{"negative C2", func(p *repro.Params) { p.C2 = -0.5 }},
	}
	for _, tc := range bad {
		p := good
		tc.mutate(&p)
		if _, err := repro.AllToAll(p); err == nil {
			t.Errorf("AllToAll accepted %s: %+v", tc.name, p)
		}
		if _, err := repro.TotalRuntime(p, 10); err == nil {
			t.Errorf("TotalRuntime accepted %s: %+v", tc.name, p)
		}
	}
}

func TestMatVecRejectsBadCost(t *testing.T) {
	for _, cost := range []float64{math.NaN(), math.Inf(1), 0, -4} {
		if _, _, err := repro.MatVec(64, 8, cost); err == nil {
			t.Errorf("MatVec accepted tMulAdd = %v", cost)
		}
	}
	if _, _, err := repro.MatVec(64, 8, 4); err != nil {
		t.Errorf("MatVec rejected a valid cost: %v", err)
	}
}

func TestFitRejectsBadC2(t *testing.T) {
	obs := []repro.FitObservation{{W: 0, R: 1200}, {W: 512, R: 1750}, {W: 2048, R: 3300}}
	for _, c2 := range []float64{math.NaN(), math.Inf(1), -1} {
		if _, err := repro.FitAllToAll(obs, 32, c2); err == nil {
			t.Errorf("FitAllToAll accepted C² = %v", c2)
		}
	}
}

// TestSimulateNRejectsBadConfig: the replicated simulation entry points
// must reject a bad config before starting any replication worker.
func TestSimulateNRejectsBadConfig(t *testing.T) {
	atGood := repro.SimAllToAllConfig{
		P:             4,
		Work:          repro.Deterministic(100),
		Latency:       repro.Deterministic(10),
		Service:       repro.Deterministic(20),
		MeasureCycles: 5,
		Seed:          1,
	}
	if _, err := repro.SimulateAllToAllN(atGood, 2, 2); err != nil {
		t.Fatalf("baseline all-to-all config rejected: %v", err)
	}
	atBad := []struct {
		name   string
		mutate func(*repro.SimAllToAllConfig)
	}{
		{"NaN LinkOccupancy", func(c *repro.SimAllToAllConfig) { c.LinkOccupancy = math.NaN() }},
		{"+Inf LinkOccupancy", func(c *repro.SimAllToAllConfig) { c.LinkOccupancy = math.Inf(1) }},
		{"negative LinkOccupancy", func(c *repro.SimAllToAllConfig) { c.LinkOccupancy = -1 }},
		{"NaN RetryDelay", func(c *repro.SimAllToAllConfig) { c.RetryDelay = math.NaN() }},
		{"negative RetryDelay", func(c *repro.SimAllToAllConfig) { c.RetryDelay = -5 }},
		{"nil Work", func(c *repro.SimAllToAllConfig) { c.Work = nil }},
	}
	for _, tc := range atBad {
		c := atGood
		tc.mutate(&c)
		_, err := repro.SimulateAllToAllN(c, 2, 2)
		if err == nil {
			t.Errorf("SimulateAllToAllN accepted %s", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "workload:") {
			t.Errorf("SimulateAllToAllN(%s) failed late (%v), want config validation", tc.name, err)
		}
	}

	wpGood := repro.SimWorkpileConfig{
		P: 4, Ps: 1,
		Chunk:       repro.Exponential(100),
		Latency:     repro.Deterministic(10),
		Service:     repro.Deterministic(20),
		MeasureTime: 2000,
		Seed:        1,
	}
	if _, err := repro.SimulateWorkpileN(wpGood, 2, 2); err != nil {
		t.Fatalf("baseline work-pile config rejected: %v", err)
	}
	wpBad := []struct {
		name   string
		mutate func(*repro.SimWorkpileConfig)
	}{
		{"NaN MeasureTime", func(c *repro.SimWorkpileConfig) { c.MeasureTime = math.NaN() }},
		{"+Inf MeasureTime", func(c *repro.SimWorkpileConfig) { c.MeasureTime = math.Inf(1) }},
		{"zero MeasureTime", func(c *repro.SimWorkpileConfig) { c.MeasureTime = 0 }},
		{"NaN WarmupTime", func(c *repro.SimWorkpileConfig) { c.WarmupTime = math.NaN() }},
		{"negative WarmupTime", func(c *repro.SimWorkpileConfig) { c.WarmupTime = -1 }},
	}
	for _, tc := range wpBad {
		c := wpGood
		tc.mutate(&c)
		_, err := repro.SimulateWorkpileN(c, 2, 2)
		if err == nil {
			t.Errorf("SimulateWorkpileN accepted %s", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "workload:") {
			t.Errorf("SimulateWorkpileN(%s) failed late (%v), want config validation", tc.name, err)
		}
	}
}

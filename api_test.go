package repro_test

import (
	"math"
	"reflect"
	"testing"

	"repro"
)

// TestFacadeModelRoundTrip exercises the whole public API surface the
// way a downstream user would.
func TestFacadeModelRoundTrip(t *testing.T) {
	p := repro.Params{P: 32, W: 1000, St: 40, So: 200, C2: 0}
	res, err := repro.AllToAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.R <= p.ContentionFree() {
		t.Errorf("R = %v not above contention-free %v", res.R, p.ContentionFree())
	}
	total, err := repro.TotalRuntime(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-50*res.R) > 1e-6 {
		t.Errorf("TotalRuntime = %v, want %v", total, 50*res.R)
	}
	if beta := repro.UpperBoundBeta(0); beta < 3.3 || beta > 3.46 {
		t.Errorf("UpperBoundBeta(0) = %v", beta)
	}
}

func TestFacadeClientServer(t *testing.T) {
	p := repro.ClientServerParams{P: 32, Ps: 8, W: 1500, St: 40, So: 131, C2: 0}
	res, err := repro.ClientServer(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.X <= 0 {
		t.Errorf("X = %v", res.X)
	}
	if opt := repro.OptimalServers(p); opt <= 0 || opt >= 32 {
		t.Errorf("OptimalServers = %v", opt)
	}
	if _, err := repro.OptimalServersInt(p); err != nil {
		t.Fatal(err)
	}
	server, client := repro.ClientServerBounds(p)
	if res.X > math.Min(server, client)+1e-9 {
		t.Errorf("X = %v exceeds bounds (%v, %v)", res.X, server, client)
	}
	if peak := repro.PeakThroughput(p); peak <= 0 {
		t.Errorf("PeakThroughput = %v", peak)
	}
}

func TestFacadeGeneral(t *testing.T) {
	ws := make([]float64, 8)
	for i := range ws {
		ws[i] = 500
	}
	res, err := repro.General(repro.GeneralParams{
		P: 8, W: ws, V: repro.HomogeneousVisits(8),
		St: 40, So: []float64{200}, C2: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalX <= 0 {
		t.Errorf("TotalX = %v", res.TotalX)
	}
	if len(repro.ClientServerVisits(3, 2)) != 5 {
		t.Error("ClientServerVisits shape wrong")
	}
	if len(repro.MultiHopVisits(4, 2)) != 4 {
		t.Error("MultiHopVisits shape wrong")
	}
}

func TestFacadeMatVec(t *testing.T) {
	w, msgs, err := repro.MatVec(256, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || msgs <= 0 {
		t.Errorf("MatVec returned %v, %v", w, msgs)
	}
}

func TestFacadeDistributions(t *testing.T) {
	for _, d := range []repro.Distribution{
		repro.Deterministic(5),
		repro.Exponential(5),
		repro.Uniform(1, 9),
		repro.FromMeanSCV(5, 0.5),
	} {
		if d.Mean() <= 0 {
			t.Errorf("%v mean = %v", d, d.Mean())
		}
	}
}

func TestFacadeSimulateAllToAll(t *testing.T) {
	sim, err := repro.SimulateAllToAll(repro.SimAllToAllConfig{
		P:             8,
		Work:          repro.Deterministic(500),
		Latency:       repro.Deterministic(40),
		Service:       repro.Deterministic(200),
		WarmupCycles:  50,
		MeasureCycles: 200,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := repro.AllToAll(repro.Params{P: 8, W: 500, St: 40, So: 200, C2: 0})
	if err != nil {
		t.Fatal(err)
	}
	rel := (model.R - sim.R.Mean()) / sim.R.Mean()
	if math.Abs(rel) > 0.12 {
		t.Errorf("facade sim %v vs model %v (rel %v)", sim.R.Mean(), model.R, rel)
	}
}

func TestFacadeSimulateWorkpile(t *testing.T) {
	sim, err := repro.SimulateWorkpile(repro.SimWorkpileConfig{
		P: 16, Ps: 4,
		Chunk:      repro.Exponential(1000),
		Latency:    repro.Deterministic(40),
		Service:    repro.Deterministic(131),
		WarmupTime: 20000, MeasureTime: 200000,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.X <= 0 || sim.Chunks == 0 {
		t.Errorf("workpile sim X=%v chunks=%d", sim.X, sim.Chunks)
	}
}

func TestFacadeSimulateMultiHop(t *testing.T) {
	sim, err := repro.SimulateMultiHop(repro.SimMultiHopConfig{
		P: 8, Hops: 2,
		Work:         repro.Deterministic(500),
		Latency:      repro.Deterministic(40),
		Service:      repro.Deterministic(100),
		WarmupCycles: 20, MeasureCycles: 100,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.R.Mean() <= 0 {
		t.Errorf("multi-hop sim R = %v", sim.R.Mean())
	}
}

func TestFacadeLogP(t *testing.T) {
	lg := repro.LogP{L: 40, O: 5, G: 0, P: 16}
	finish, _, err := lg.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if finish <= 0 {
		t.Errorf("broadcast finish = %v", finish)
	}
}

// TestSweepParallelDeterministicAcrossJobs: the facade's parallel sweep
// must return bit-identical results for any worker count — the
// determinism guarantee the CLIs inherit.
func TestSweepParallelDeterministicAcrossJobs(t *testing.T) {
	var cfgs []repro.SimAllToAllConfig
	for _, w := range []float64{0, 64, 256, 1024} {
		cfgs = append(cfgs, repro.SimAllToAllConfig{
			P:             16,
			Work:          repro.Deterministic(w),
			Latency:       repro.Deterministic(40),
			Service:       repro.Deterministic(200),
			WarmupCycles:  30,
			MeasureCycles: 100,
			Seed:          1,
		})
	}
	seq, err := repro.SweepParallel(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.SweepParallel(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("SweepParallel results differ between jobs=1 and jobs=8")
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].R.Mean() <= seq[i-1].R.Mean() {
			t.Errorf("R not increasing with W: point %d R %v <= point %d R %v",
				i, seq[i].R.Mean(), i-1, seq[i-1].R.Mean())
		}
	}
}

// TestSimulateAllToAllNFacade: replications aggregate with confidence
// intervals and are jobs-independent through the public API.
func TestSimulateAllToAllNFacade(t *testing.T) {
	cfg := repro.SimAllToAllConfig{
		P:             16,
		Work:          repro.Deterministic(256),
		Latency:       repro.Deterministic(40),
		Service:       repro.Deterministic(200),
		WarmupCycles:  30,
		MeasureCycles: 100,
		Seed:          2,
	}
	seq, err := repro.SimulateAllToAllN(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.SimulateAllToAllN(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("SimulateAllToAllN aggregates differ between jobs=1 and jobs=4")
	}
	if seq.R.N() != 4 || math.IsInf(seq.R.HalfWidth95(), 1) {
		t.Errorf("replication tally wrong: n=%d hw=%v", seq.R.N(), seq.R.HalfWidth95())
	}
}

// TestRunParallelAndDeriveSeed: the generic entry point preserves task
// order, and seed derivation is a pure function consistent across
// calls.
func TestRunParallelAndDeriveSeed(t *testing.T) {
	got, err := repro.RunParallel(20, repro.ParallelOptions{Jobs: 8}, func(i int) (uint64, error) {
		return repro.DeriveSeed(99, uint64(i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i, s := range got {
		if s != repro.DeriveSeed(99, uint64(i)) {
			t.Fatalf("task %d result out of order", i)
		}
		if seen[s] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s] = true
	}
}

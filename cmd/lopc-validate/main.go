// Command lopc-validate checks the paper's quantitative claims against
// this implementation — model against simulator, closed forms against
// numerical solutions — and prints one PASS/FAIL line per claim.
//
// Usage:
//
//	lopc-validate            # full-length runs (≈ half a minute)
//	lopc-validate -quick     # shorter simulations
//	lopc-validate -j 4       # evaluate claims in parallel (same output)
//	lopc-validate -only lock # claims whose ref or text mentions "lock"
//
// Claims are independent (each roots its simulations at its own fixed
// seed), so -j changes wall-clock time only; the PASS/FAIL lines print
// in claim order regardless of completion order.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro"
	"repro/internal/runner"
	"repro/internal/version"
)

// claim is one paper statement with an executable check.
type claim struct {
	ref  string // where the paper makes the claim
	text string
	eval func() (measured string, pass bool, err error)
}

var quick bool

func cycles() (warm, measure int) {
	if quick {
		return 100, 400
	}
	return 300, 1500
}

func simAllToAll(w float64, seed uint64) (repro.SimAllToAllResult, error) {
	warm, measure := cycles()
	return repro.SimulateAllToAll(repro.SimAllToAllConfig{
		P:             32,
		Work:          repro.Deterministic(w),
		Latency:       repro.Deterministic(40),
		Service:       repro.Deterministic(200),
		WarmupCycles:  warm,
		MeasureCycles: measure,
		Seed:          seed,
	})
}

func params(w float64) repro.Params {
	return repro.Params{P: 32, W: w, St: 40, So: 200, C2: 0}
}

func claims() []claim {
	return []claim{
		{
			ref:  "§5.3",
			text: "LoPC within ~6% of simulation, always pessimistic (all-to-all)",
			eval: func() (string, bool, error) {
				worst := 0.0
				for _, w := range []float64{0, 64, 512, 2048} {
					sim, err := simAllToAll(w, 1)
					if err != nil {
						return "", false, err
					}
					model, err := repro.AllToAll(params(w))
					if err != nil {
						return "", false, err
					}
					rel := (model.R - sim.R.Mean()) / sim.R.Mean()
					if math.Abs(rel) > math.Abs(worst) {
						worst = rel
					}
					if rel < -0.02 {
						return fmt.Sprintf("optimistic by %.1f%% at W=%g", -rel*100, w), false, nil
					}
				}
				return fmt.Sprintf("worst error %+.1f%%", worst*100), math.Abs(worst) <= 0.08, nil
			},
		},
		{
			ref:  "§5.3",
			text: "contention-free (naive LogP) underpredicts by ~30-37% at W=0",
			eval: func() (string, bool, error) {
				sim, err := simAllToAll(0, 2)
				if err != nil {
					return "", false, err
				}
				rel := (params(0).ContentionFree() - sim.R.Mean()) / sim.R.Mean()
				return fmt.Sprintf("%+.1f%%", rel*100), rel < -0.25 && rel > -0.45, nil
			},
		},
		{
			ref:  "Eq. 5.12",
			text: "R bracketed by W+2St+2So and W+2St+3.46·So (C²=0)",
			eval: func() (string, bool, error) {
				beta := repro.UpperBoundBeta(0)
				if beta > 3.46 {
					return fmt.Sprintf("β = %.3f > 3.46", beta), false, nil
				}
				for _, w := range []float64{0, 64, 512, 2048} {
					sim, err := simAllToAll(w, 3)
					if err != nil {
						return "", false, err
					}
					p := params(w)
					lo, hi := p.ContentionFree(), p.W+2*p.St+3.46*p.So
					r := sim.R.Mean()
					if r < lo || r > hi {
						return fmt.Sprintf("sim R=%.1f outside [%.1f, %.1f] at W=%g", r, lo, hi, w), false, nil
					}
				}
				return fmt.Sprintf("β = %.3f; sim inside bounds at all W", beta), true, nil
			},
		},
		{
			ref:  "Ch. 5",
			text: "contention ≈ one extra handler (rule of thumb W+2St+3So within ~16%)",
			eval: func() (string, bool, error) {
				worst := 0.0
				for _, w := range []float64{0, 64, 512, 2048} {
					sim, err := simAllToAll(w, 4)
					if err != nil {
						return "", false, err
					}
					rel := math.Abs(params(w).RuleOfThumb()-sim.R.Mean()) / sim.R.Mean()
					worst = math.Max(worst, rel)
				}
				return fmt.Sprintf("worst deviation %.1f%%", worst*100), worst <= 0.16, nil
			},
		},
		{
			ref:  "Fig. 5-1",
			text: "C²=0 → C²=1 raises response time by ~6% (W=1000, So≈512)",
			eval: func() (string, bool, error) {
				p := repro.Params{P: 32, W: 1000, St: 40, So: 512, C2: 0}
				r0, err := repro.AllToAll(p)
				if err != nil {
					return "", false, err
				}
				p.C2 = 1
				r1, err := repro.AllToAll(p)
				if err != nil {
					return "", false, err
				}
				d := (r1.R - r0.R) / r0.R
				return fmt.Sprintf("%+.1f%%", d*100), d > 0.02 && d < 0.12, nil
			},
		},
		{
			ref:  "Eq. 6.8",
			text: "work-pile optimum at Qs=1; closed form matches simulated argmax ±1",
			eval: func() (string, bool, error) {
				base := repro.ClientServerParams{P: 32, Ps: 1, W: 1500, St: 40, So: 131, C2: 0}
				opt, err := repro.OptimalServersInt(base)
				if err != nil {
					return "", false, err
				}
				warm, measure := 100_000.0, 1_000_000.0
				if quick {
					warm, measure = 50_000, 300_000
				}
				bestPs, bestX := 0, -1.0
				var qsAtOpt float64
				for ps := max(1, opt-2); ps <= opt+2; ps++ {
					sim, err := repro.SimulateWorkpile(repro.SimWorkpileConfig{
						P: 32, Ps: ps,
						Chunk:      repro.Exponential(1500),
						Latency:    repro.Deterministic(40),
						Service:    repro.Deterministic(131),
						WarmupTime: warm, MeasureTime: measure,
						Seed: 5,
					})
					if err != nil {
						return "", false, err
					}
					if sim.X > bestX {
						bestPs, bestX = ps, sim.X
					}
					if ps == opt {
						qsAtOpt = sim.Qs
					}
				}
				ok := int(math.Abs(float64(bestPs-opt))) <= 1 && qsAtOpt > 0.5 && qsAtOpt < 2
				return fmt.Sprintf("Eq.6.8: %d, sim argmax: %d, Qs at opt: %.2f", opt, bestPs, qsAtOpt), ok, nil
			},
		},
		{
			ref:  "Fig. 6-2",
			text: "work-pile model conservative, within ~5% of simulated throughput",
			eval: func() (string, bool, error) {
				warm, measure := 100_000.0, 1_000_000.0
				if quick {
					warm, measure = 50_000, 300_000
				}
				worst := 0.0
				for _, ps := range []int{3, 8, 20} {
					sim, err := repro.SimulateWorkpile(repro.SimWorkpileConfig{
						P: 32, Ps: ps,
						Chunk:      repro.Exponential(1500),
						Latency:    repro.Deterministic(40),
						Service:    repro.Deterministic(131),
						WarmupTime: warm, MeasureTime: measure,
						Seed: 6,
					})
					if err != nil {
						return "", false, err
					}
					model, err := repro.ClientServer(repro.ClientServerParams{
						P: 32, Ps: ps, W: 1500, St: 40, So: 131, C2: 0,
					})
					if err != nil {
						return "", false, err
					}
					rel := (model.X - sim.X) / sim.X
					if math.Abs(rel) > math.Abs(worst) {
						worst = rel
					}
				}
				return fmt.Sprintf("worst error %+.1f%%", worst*100), math.Abs(worst) <= 0.05, nil
			},
		},
		{
			ref:  "App. A",
			text: "general model reproduces the specialized solvers exactly",
			eval: func() (string, bool, error) {
				hp := params(700)
				want, err := repro.AllToAll(hp)
				if err != nil {
					return "", false, err
				}
				ws := make([]float64, 32)
				for i := range ws {
					ws[i] = 700
				}
				got, err := repro.General(repro.GeneralParams{
					P: 32, W: ws, V: repro.HomogeneousVisits(32),
					St: 40, So: []float64{200}, C2: 0,
				})
				if err != nil {
					return "", false, err
				}
				rel := math.Abs(got.R[0]-want.R) / want.R
				return fmt.Sprintf("all-to-all agreement %.2e", rel), rel < 1e-6, nil
			},
		},
		{
			ref:  "Ch. 7 (future work)",
			text: "non-blocking requests: throughput exactly 1/(W+2So)",
			eval: func() (string, bool, error) {
				warm, measure := cycles()
				sim, err := repro.SimulateNonBlocking(repro.SimNonBlockingConfig{
					P:            32,
					Work:         repro.Deterministic(800),
					Latency:      repro.Deterministic(40),
					Service:      repro.Deterministic(200),
					WarmupCycles: warm, MeasureCycles: measure,
					Seed: 7,
				})
				if err != nil {
					return "", false, err
				}
				want := 1.0 / (800 + 2*200)
				rel := math.Abs(sim.X-want) / want
				return fmt.Sprintf("sim X=%.6f vs %.6f (%.2f%%)", sim.X, want, rel*100), rel < 0.01, nil
			},
		},
		{
			ref:  "§5.1 (extension)",
			text: "multithreaded nodes saturate at the conservation bound 1/(W+2So)",
			eval: func() (string, bool, error) {
				warm, measure := cycles()
				sim, err := repro.SimulateMultithread(repro.SimMultithreadConfig{
					P: 32, T: 6,
					Work:         repro.Deterministic(512),
					Latency:      repro.Deterministic(40),
					Service:      repro.Deterministic(200),
					WarmupCycles: warm, MeasureCycles: measure,
					Seed: 9,
				})
				if err != nil {
					return "", false, err
				}
				bound := 1.0 / (512 + 2*200)
				rel := (sim.XNode - bound) / bound
				return fmt.Sprintf("XNode/bound = %.4f at T=6", sim.XNode/bound),
					math.Abs(rel) < 0.02, nil
			},
		},
		{
			ref:  "Ch. 4 (lock ext.)",
			text: "lock AMVA tracks simulated mutex-style lock throughput within ~10%",
			eval: func() (string, bool, error) {
				warm, measure := 50_000.0, 1_000_000.0
				if quick {
					warm, measure = 10_000, 250_000
				}
				worst := 0.0
				for _, n := range []int{1, 4, 16} {
					sim, err := repro.SimulateLock(repro.SimLockConfig{
						Threads:    n,
						Work:       repro.Exponential(800),
						Handoff:    repro.Deterministic(20),
						Critical:   repro.Exponential(100),
						WarmupTime: warm, MeasureTime: measure,
						Seed: 10,
					})
					if err != nil {
						return "", false, err
					}
					model, err := repro.Lock(repro.LockParams{Threads: n, W: 800, St: 20, So: 100, C2: 1})
					if err != nil {
						return "", false, err
					}
					rel := (model.X - sim.X) / sim.X
					if math.Abs(rel) > math.Abs(worst) {
						worst = rel
					}
				}
				return fmt.Sprintf("worst error %+.1f%%", worst*100), math.Abs(worst) <= 0.10, nil
			},
		},
		{
			ref:  "Ch. 4 (CAS ext.)",
			text: "CAS conflict model tracks simulated retry fractions within ~15%",
			eval: func() (string, bool, error) {
				warm, measure := 50_000.0, 1_000_000.0
				if quick {
					warm, measure = 10_000, 250_000
				}
				worst := 0.0
				for _, n := range []int{2, 8, 32} {
					sim, err := repro.SimulateLockFree(repro.SimLockFreeConfig{
						Threads:    n,
						Work:       repro.Exponential(400),
						Round:      repro.Exponential(60),
						Serial:     repro.Deterministic(5),
						WarmupTime: warm, MeasureTime: measure,
						Seed: 11,
					})
					if err != nil {
						return "", false, err
					}
					model, err := repro.LockFree(repro.LockFreeParams{Threads: n, W: 400, St: 5, So: 60, C2: 1})
					if err != nil {
						return "", false, err
					}
					relX := (model.X - sim.X) / sim.X
					if math.Abs(relX) > math.Abs(worst) {
						worst = relX
					}
					if sim.Conflict > 0 {
						relQ := (model.Conflict - sim.Conflict) / sim.Conflict
						if math.Abs(relQ) > math.Abs(worst) {
							worst = relQ
						}
					}
				}
				return fmt.Sprintf("worst error %+.1f%%", worst*100), math.Abs(worst) <= 0.15, nil
			},
		},
		{
			ref:  "LogP (Culler et al.)",
			text: "simulated optimal broadcast matches the analytical schedule exactly",
			eval: func() (string, bool, error) {
				res, err := repro.BroadcastCollective(repro.CollectiveConfig{
					P:            32,
					Latency:      repro.Deterministic(40),
					Handler:      repro.Deterministic(25),
					SendOverhead: 10,
					Seed:         8,
				})
				if err != nil {
					return "", false, err
				}
				d := math.Abs(res.Finish - res.Predicted)
				return fmt.Sprintf("|sim − schedule| = %g", d), d < 1e-9, nil
			},
		},
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the validation CLI with the given arguments and streams,
// returning the process exit code. It is the whole tool minus os.Exit,
// so tests can drive it end-to-end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jobs     = fs.Int("j", 0, "max concurrent claim evaluations (0 = GOMAXPROCS); never changes output")
		progress = fs.Bool("progress", false, "report progress (done/total, elapsed, ETA) on stderr")
		only     = fs.String("only", "", "evaluate only claims whose ref or text contains this substring")
		ver      = version.AddFlag(fs)
	)
	fs.BoolVar(&quick, "quick", false, "shorter simulations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-validate"))
		return 0
	}

	cs := claims()
	if *only != "" {
		var kept []claim
		for _, c := range cs {
			if strings.Contains(c.ref, *only) || strings.Contains(c.text, *only) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "lopc-validate: no claims match -only %q\n", *only)
			return 1
		}
		cs = kept
	}
	type outcome struct {
		measured string
		pass     bool
		err      error
	}
	opts := runner.Options{Jobs: *jobs, Label: "validate"}
	if *progress {
		opts.Progress = stderr
	}
	// Evaluation errors are part of a claim's outcome (reported as
	// ERROR lines), not run failures, so the task itself never errors
	// and every claim always gets its line.
	outcomes, _ := runner.Map(len(cs), opts, func(i int) (outcome, error) {
		measured, pass, err := cs[i].eval()
		return outcome{measured, pass, err}, nil
	})

	failures := 0
	for i, c := range cs {
		o := outcomes[i]
		status, measured := "PASS", o.measured
		if o.err != nil {
			status, measured = "ERROR", o.err.Error()
			failures++
		} else if !o.pass {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "[%s] %-22s %s\n        -> %s\n", status, c.ref, c.text, measured)
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "%d claim(s) failed\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "all paper claims validated")
	return 0
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runValidate(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// TestValidateQuickGolden pins the full -quick report: every claim's
// PASS line and measured value. Every simulation roots at a fixed
// seed, so the report is byte-reproducible; if a model or simulator
// change moves a measured value intentionally, regenerate
// testdata/validate_quick_golden.txt.
func TestValidateQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every claim's simulations")
	}
	got, stderr, code := runValidate(t, "-quick")
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "validate_quick_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("validate report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestValidateDeterministicAcrossJobs: -j 8 must print the identical
// report to -j 1 — claims evaluate concurrently but report in order,
// each rooted at its own seed.
func TestValidateDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the contention claims' simulations twice")
	}
	args := []string{"-quick", "-only", "Ch. 4"}
	seq, _, codeSeq := runValidate(t, append([]string{"-j", "1"}, args...)...)
	par, _, codePar := runValidate(t, append([]string{"-j", "8"}, args...)...)
	if codeSeq != 0 || codePar != 0 {
		t.Fatalf("exit codes: j1=%d j8=%d", codeSeq, codePar)
	}
	if seq != par {
		t.Errorf("-j 8 report differs from -j 1:\n--- j1 ---\n%s--- j8 ---\n%s", seq, par)
	}
}

// TestValidateOnlyFilter: -only narrows the claim list by ref/text
// substring and rejects patterns matching nothing.
func TestValidateOnlyFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the lock claim's simulations")
	}
	out, _, code := runValidate(t, "-quick", "-only", "lock ext.")
	if code != 0 {
		t.Fatalf("run = %d", code)
	}
	if strings.Count(out, "[PASS]")+strings.Count(out, "[FAIL]")+strings.Count(out, "[ERROR]") != 1 {
		t.Errorf("-only %q evaluated more than one claim:\n%s", "lock ext.", out)
	}
	if !strings.Contains(out, "lock AMVA") {
		t.Errorf("-only %q missed the lock claim:\n%s", "lock ext.", out)
	}
}

func TestValidateOnlyNoMatch(t *testing.T) {
	out, stderr, code := runValidate(t, "-only", "no such claim anywhere")
	if code == 0 {
		t.Error("matchless -only accepted")
	}
	if out != "" {
		t.Errorf("matchless -only wrote to stdout: %q", out)
	}
	if !strings.Contains(stderr, "no claims match") {
		t.Errorf("stderr %q missing diagnostic", stderr)
	}
}

func TestValidateBadFlag(t *testing.T) {
	_, _, code := runValidate(t, "-nonsense")
	if code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

package main

import (
	"strings"
	"testing"

	"repro"
)

// TestWriteCoreMetricsGolden pins the -metrics exposition byte-for-byte:
// the registry sorts families and series, so a run's counters always
// render to the same text.
func TestWriteCoreMetricsGolden(t *testing.T) {
	cs := &repro.SimCoreStats{Events: 1234, Rounds: 56, Rollbacks: 7, RolledBack: 89}
	var b strings.Builder
	if err := writeCoreMetrics(&b, "opt", 4, cs); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lopc_psim_events_total committed simulation events
# TYPE lopc_psim_events_total counter
lopc_psim_events_total 1234
# HELP lopc_psim_rollbacks_total optimistic rollback episodes
# TYPE lopc_psim_rollbacks_total counter
lopc_psim_rollbacks_total 7
# HELP lopc_psim_rolled_back_events_total speculative events undone and re-executed
# TYPE lopc_psim_rolled_back_events_total counter
lopc_psim_rolled_back_events_total 89
# HELP lopc_psim_run_info Constant 1, labeled by the sync algorithm the run used.
# TYPE lopc_psim_run_info gauge
lopc_psim_run_info{sync="opt"} 1
# HELP lopc_psim_sync_rounds_total synchronization rounds (windows/GVT epochs)
# TYPE lopc_psim_sync_rounds_total counter
lopc_psim_sync_rounds_total 56
# HELP lopc_psim_workers Worker goroutines the parallel core ran with.
# TYPE lopc_psim_workers gauge
lopc_psim_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Command lopc-sim runs the event-driven active-message machine
// simulator on one of the paper's workloads and prints the measured
// statistics next to the LoPC prediction.
//
// Usage:
//
//	lopc-sim -workload alltoall -P 32 -W 512 -St 40 -So 200 -C2 0 -cycles 2000
//	lopc-sim -workload workpile -P 32 -Ps 8 -W 1500 -So 131 -time 2e6
//	lopc-sim -workload multihop -hops 3 -P 16 -W 1000 -So 150
//
// With -sync, -metrics FILE additionally writes the parallel core's
// counters (committed events, synchronization rounds, rollbacks,
// rolled-back events) as deterministic Prometheus text exposition at
// exit, so sweep scripts and CI can scrape a batch run the same way
// they scrape lopc-serve.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/psim"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	var (
		wl     = flag.String("workload", "alltoall", "alltoall | workpile | multihop | multithreaded")
		p      = flag.Int("P", 32, "number of processors")
		ps     = flag.Int("Ps", 8, "servers (workpile)")
		w      = flag.Float64("W", 1000, "mean work between requests / chunk size (cycles)")
		wc2    = flag.Float64("WC2", 0, "SCV of the work distribution (workpile default uses 1)")
		st     = flag.Float64("St", 40, "network latency per trip (cycles)")
		so     = flag.Float64("So", 200, "handler cost (cycles)")
		c2     = flag.Float64("C2", 0, "SCV of handler service time")
		cycles = flag.Int("cycles", 1500, "measured cycles per thread (cycle-driven workloads)")
		warmup = flag.Int("warmup", 300, "warmup cycles per thread")
		simT   = flag.Float64("time", 1.5e6, "measurement window (workpile)")
		seed   = flag.Uint64("seed", 1, "random seed")
		pp     = flag.Bool("pp", false, "protocol-processor (shared-memory) variant")
		hops   = flag.Int("hops", 2, "request hops (multihop)")
		nthr   = flag.Int("T", 2, "threads per node (multithreaded)")
		traceF = flag.String("trace", "", "write a Chrome trace (chrome://tracing JSON) of the run to this file (alltoall only)")
		syncF  = flag.String("sync", "", "parallel simulation core: seq | cons | opt (alltoall and workpile only; default: legacy engine)")
		jobsF  = flag.Int("j", 1, "worker goroutines for the parallel core (with -sync)")
		metF   = flag.String("metrics", "", "write the parallel core's counters as Prometheus text to this file at exit (requires -sync)")
		ver    = version.AddFlag(flag.CommandLine)
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String("lopc-sim"))
		return
	}

	var err error
	switch {
	case *syncF != "" && *wl != "alltoall" && *wl != "workpile":
		err = fmt.Errorf("-sync supports only the alltoall and workpile workloads, not %q", *wl)
	case *syncF != "" && *traceF != "":
		err = fmt.Errorf("-sync and -trace are mutually exclusive: the parallel core has no Chrome-trace observer")
	case *metF != "" && *syncF == "":
		err = fmt.Errorf("-metrics needs -sync: only the parallel core reports run counters")
	default:
		metricsFile = *metF
		switch *wl {
		case "alltoall":
			err = simAllToAll(*p, *w, *st, *so, *c2, *warmup, *cycles, *seed, *pp, *traceF, *syncF, *jobsF)
		case "workpile":
			err = simWorkpile(*p, *ps, *w, *wc2, *st, *so, *c2, *simT, *seed, *syncF, *jobsF)
		case "multihop":
			err = simMultiHop(*p, *hops, *w, *st, *so, *c2, *warmup, *cycles, *seed)
		case "multithreaded":
			err = simMultithreaded(*p, *nthr, *w, *st, *so, *c2, *warmup, *cycles, *seed)
		default:
			err = fmt.Errorf("unknown workload %q", *wl)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lopc-sim:", err)
		os.Exit(1)
	}
}

// parFor builds the parallel-core selection for -sync ("" selects the
// legacy engine) along with the statistics block reportCore prints.
func parFor(sync string, jobs int) (*repro.SimPar, *repro.SimCoreStats) {
	if sync == "" {
		return nil, nil
	}
	cs := &repro.SimCoreStats{}
	return &repro.SimPar{Sync: sync, Jobs: jobs, Stats: cs}, cs
}

// metricsFile is the -metrics destination; empty means no dump. It is
// set once in main before any workload runs.
var metricsFile string

// reportCore prints the parallel core's execution statistics to stderr,
// keeping stdout identical to a legacy-engine run, and honours -metrics
// by dumping the same counters as Prometheus text.
func reportCore(sync string, jobs int, cs *repro.SimCoreStats) error {
	if cs == nil {
		return nil
	}
	fmt.Fprintf(os.Stderr, "psim core=%s j=%d: %d events, %d rounds, %d rollbacks (%d events undone)\n",
		sync, jobs, cs.Events, cs.Rounds, cs.Rollbacks, cs.RolledBack)
	if metricsFile == "" {
		return nil
	}
	f, err := os.Create(metricsFile)
	if err != nil {
		return err
	}
	if err := writeCoreMetrics(f, sync, jobs, cs); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsFile)
	return nil
}

// writeCoreMetrics renders a finished run's core counters in Prometheus
// text exposition 0.0.4 through the shared obs registry — the same
// families lopc-serve registers for its live psim runs, plus a labeled
// info gauge naming the sync algorithm and a worker-count gauge. The
// registry sorts families and series, so equal runs yield equal bytes.
func writeCoreMetrics(w io.Writer, sync string, jobs int, cs *repro.SimCoreStats) error {
	reg := obs.NewRegistry()
	m := psim.NewMetrics(reg)
	m.Events.Add(int64(cs.Events))
	m.Rounds.Add(int64(cs.Rounds))
	m.Rollbacks.Add(int64(cs.Rollbacks))
	m.RolledBack.Add(int64(cs.RolledBack))
	reg.Gauge("lopc_psim_run_info", "Constant 1, labeled by the sync algorithm the run used.",
		obs.Labels{"sync": sync}).Set(1)
	reg.Gauge("lopc_psim_workers", "Worker goroutines the parallel core ran with.", nil).Set(int64(jobs))
	return reg.WritePrometheus(w)
}

func simAllToAll(p int, w, st, so, c2 float64, warmup, cycles int, seed uint64, pp bool, traceFile, sync string, jobs int) error {
	cfg := repro.SimAllToAllConfig{
		P:                 p,
		Work:              repro.Deterministic(w),
		Latency:           repro.Deterministic(st),
		Service:           repro.FromMeanSCV(so, c2),
		WarmupCycles:      warmup,
		MeasureCycles:     cycles,
		ProtocolProcessor: pp,
		Seed:              seed,
	}
	var tracer *trace.Tracer
	if traceFile != "" {
		// Cap the trace: visualization of a few thousand cycles is
		// plenty and keeps files loadable.
		tracer = &trace.Tracer{MaxEvents: 500_000}
		cfg.Observer = tracer
	}
	par, cs := parFor(sync, jobs)
	cfg.Par = par
	sim, err := repro.SimulateAllToAll(cfg)
	if err != nil {
		return err
	}
	if err := reportCore(sync, jobs, cs); err != nil {
		return err
	}
	if tracer != nil {
		f, ferr := os.Create(traceFile)
		if ferr != nil {
			return ferr
		}
		if werr := tracer.WriteJSON(f); werr != nil {
			_ = f.Close() // the write error is the one worth reporting
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events, truncated=%v)\n", traceFile, tracer.Len(), tracer.Truncated())
	}
	model, err := repro.AllToAll(repro.Params{P: p, W: w, St: st, So: so, C2: c2, ProtocolProcessor: pp})
	if err != nil {
		return err
	}
	fmt.Printf("all-to-all simulation: P=%d W=%g St=%g So=%g C2=%g pp=%v seed=%d\n",
		p, w, st, so, c2, pp, seed)
	fmt.Printf("  %-18s %12s %12s %9s\n", "", "simulated", "LoPC", "error")
	line := func(name string, sim, mod float64) {
		fmt.Printf("  %-18s %12.2f %12.2f %+8.1f%%\n", name, sim, mod, 100*(mod-sim)/sim)
	}
	line("cycle R", sim.R.Mean(), model.R)
	line("thread Rw", sim.Rw.Mean(), model.Rw)
	line("request Rq", sim.Rq.Mean(), model.Rq)
	line("reply Ry", sim.Ry.Mean(), model.Ry)
	fmt.Printf("  %-18s %12.3f %12.3f\n", "queue Qq", sim.Machine.ReqQueue, model.Qq)
	fmt.Printf("  %-18s %12.3f %12.3f\n", "utilization Uq", sim.Machine.UtilReq, model.Uq)
	fmt.Printf("  measured cycles: %d; contention-free estimate: %.1f\n",
		sim.R.N(), model.ContentionFree)
	return nil
}

func simWorkpile(p, ps int, w, wc2, st, so, c2, window float64, seed uint64, sync string, jobs int) error {
	chunk := repro.Exponential(w)
	//lopc:allow floateq the flag's default is the exact literal 1 (exponential); any other SCV goes through FromMeanSCV
	if wc2 != 1 && wc2 >= 0 {
		chunk = repro.FromMeanSCV(w, wc2)
	}
	par, cs := parFor(sync, jobs)
	sim, err := repro.SimulateWorkpile(repro.SimWorkpileConfig{
		P: p, Ps: ps,
		Chunk:      chunk,
		Latency:    repro.Deterministic(st),
		Service:    repro.FromMeanSCV(so, c2),
		WarmupTime: window / 10, MeasureTime: window,
		Seed: seed,
		Par:  par,
	})
	if err != nil {
		return err
	}
	if err := reportCore(sync, jobs, cs); err != nil {
		return err
	}
	params := repro.ClientServerParams{P: p, Ps: ps, W: w, St: st, So: so, C2: c2}
	model, err := repro.ClientServer(params)
	if err != nil {
		return err
	}
	fmt.Printf("work-pile simulation: P=%d Ps=%d W=%g St=%g So=%g C2=%g seed=%d\n",
		p, ps, w, st, so, c2, seed)
	fmt.Printf("  %-18s %12s %12s %9s\n", "", "simulated", "LoPC", "error")
	fmt.Printf("  %-18s %12.6f %12.6f %+8.1f%%\n", "throughput X", sim.X, model.X, 100*(model.X-sim.X)/sim.X)
	fmt.Printf("  %-18s %12.2f %12.2f %+8.1f%%\n", "client cycle R", sim.R.Mean(), model.R, 100*(model.R-sim.R.Mean())/sim.R.Mean())
	fmt.Printf("  %-18s %12.2f %12.2f %+8.1f%%\n", "server Rs", sim.Rs.Mean(), model.Rs, 100*(model.Rs-sim.Rs.Mean())/sim.Rs.Mean())
	fmt.Printf("  %-18s %12.3f %12.3f\n", "server queue Qs", sim.Qs, model.Qs)
	fmt.Printf("  %-18s %12.3f %12.3f\n", "server util Us", sim.Us, model.Us)
	opt, err := repro.OptimalServersInt(params)
	if err == nil {
		fmt.Printf("  Eq. 6.8 optimal servers: %.2f (best integral %d)\n", repro.OptimalServers(params), opt)
	}
	return nil
}

func simMultiHop(p, hops int, w, st, so, c2 float64, warmup, cycles int, seed uint64) error {
	sim, err := repro.SimulateMultiHop(repro.SimMultiHopConfig{
		P: p, Hops: hops,
		Work:         repro.Deterministic(w),
		Latency:      repro.Deterministic(st),
		Service:      repro.FromMeanSCV(so, c2),
		WarmupCycles: warmup, MeasureCycles: cycles,
		Seed: seed,
	})
	if err != nil {
		return err
	}
	ws := make([]float64, p)
	for i := range ws {
		ws[i] = w
	}
	model, err := repro.General(repro.GeneralParams{
		P: p, W: ws, V: repro.MultiHopVisits(p, hops),
		St: st, So: []float64{so}, C2: c2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("multi-hop simulation: P=%d hops=%d W=%g St=%g So=%g C2=%g seed=%d\n",
		p, hops, w, st, so, c2, seed)
	fmt.Printf("  %-18s %12s %12s %9s\n", "", "simulated", "general", "error")
	fmt.Printf("  %-18s %12.2f %12.2f %+8.1f%%\n", "cycle R", sim.R.Mean(), model.R[0], 100*(model.R[0]-sim.R.Mean())/sim.R.Mean())
	fmt.Printf("  %-18s %12.2f %12.2f\n", "per-hop Rq", sim.RqPerHop.Mean(), model.Rq[0])
	fmt.Printf("  %-18s %12.2f %12.2f\n", "reply Ry", sim.Ry.Mean(), model.Ry[0])
	return nil
}

func simMultithreaded(p, nthr int, w, st, so, c2 float64, warmup, cycles int, seed uint64) error {
	sim, err := repro.SimulateMultithread(repro.SimMultithreadConfig{
		P: p, T: nthr,
		Work:         repro.Deterministic(w),
		Latency:      repro.Deterministic(st),
		Service:      repro.FromMeanSCV(so, c2),
		WarmupCycles: warmup, MeasureCycles: cycles,
		Seed: seed,
	})
	if err != nil {
		return err
	}
	model, err := repro.Multithreaded(repro.Params{P: p, W: w, St: st, So: so, C2: c2}, nthr)
	if err != nil {
		return err
	}
	fmt.Printf("multithreaded simulation: P=%d T=%d W=%g St=%g So=%g C2=%g seed=%d\n",
		p, nthr, w, st, so, c2, seed)
	fmt.Printf("  %-18s %12s %12s %9s\n", "", "simulated", "LoPC", "error")
	fmt.Printf("  %-18s %12.6f %12.6f %+8.1f%%\n", "node rate XNode", sim.XNode, model.XNode, 100*(model.XNode-sim.XNode)/sim.XNode)
	fmt.Printf("  %-18s %12.2f %12.2f\n", "thread cycle R", sim.R.Mean(), model.CycleTime)
	fmt.Printf("  %-18s %12.6f\n", "conservation bound", model.Bound)
	fmt.Printf("  %-18s %12.3f %12.3f\n", "CPU thread util", sim.ThreadUtil, model.XNode*w)
	fmt.Printf("  %-18s %12.3f %12.3f\n", "CPU handler util", sim.HandlerUtil, model.HandlerUtil)
	return nil
}

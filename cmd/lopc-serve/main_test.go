package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb, nil); code != 0 {
		t.Fatalf("run(-version) = %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "lopc-serve") {
		t.Errorf("version output %q does not name the binary", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

// TestServeLifecycle drives the real daemon in-process: start on an
// ephemeral port, answer one solve, then deliver a real SIGTERM and
// require a clean (exit 0) drain.
func TestServeLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("sends SIGTERM to the test process; skipped in -short")
	}
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"},
			io.Discard, &errb, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("server exited early with %d: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	resp, err := http.Post("http://"+addr+"/v1/alltoall", "application/json",
		strings.NewReader(`{"p":32,"w":1000,"st":40,"so":200,"c2":0}`))
	if err != nil {
		t.Fatalf("solve request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Errorf("close body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"r":`)) {
		t.Errorf("solve response missing cycle time: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exit = %d, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(errb.String(), "clean shutdown") {
		t.Errorf("stderr missing clean-shutdown line: %s", errb.String())
	}
}

// TestServeObservabilityLifecycle drives the daemon with every
// observability flag on: pprof mounted, Prometheus negotiation on
// /metrics (with runtime gauges), and -convtrace/-reqtrace files
// written on clean shutdown.
func TestServeObservabilityLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("sends SIGTERM to the test process; skipped in -short")
	}
	dir := t.TempDir()
	convPath := filepath.Join(dir, "conv.json")
	reqPath := filepath.Join(dir, "req.json")

	ready := make(chan string, 1)
	done := make(chan int, 1)
	var errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2",
			"-pprof", "-convtrace", convPath, "-reqtrace", reqPath},
			io.Discard, &errb, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("server exited early with %d: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}
	base := "http://" + addr

	fetch := func(path, accept string) (int, string, string) {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	// One solve so the trace files have content.
	resp, err := http.Post(base+"/v1/alltoall", "application/json",
		strings.NewReader(`{"p":32,"w":1000,"st":40,"so":200,"c2":0}`))
	if err != nil {
		t.Fatalf("solve request: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	if code, _, body := fetch("/debug/pprof/", ""); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d, body %.120s", code, body)
	}
	if code, ct, body := fetch("/metrics", ""); code != http.StatusOK || ct != "application/json" || !strings.Contains(body, `"hits"`) {
		t.Errorf("JSON metrics: status %d, Content-Type %q", code, ct)
	}
	if _, ct, body := fetch("/metrics", "text/plain"); !strings.HasPrefix(ct, "text/plain") ||
		!strings.Contains(body, "lopc_serve_requests_total") || !strings.Contains(body, "lopc_goroutines") {
		t.Errorf("Prometheus metrics: Content-Type %q, body %.200s", ct, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exit = %d, want 0; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	conv, err := os.ReadFile(convPath)
	if err != nil {
		t.Fatalf("convtrace not written: %v", err)
	}
	if !bytes.Contains(conv, []byte(`"solver":"alltoall"`)) {
		t.Errorf("convtrace missing the solve: %s", conv)
	}
	reqs, err := os.ReadFile(reqPath)
	if err != nil {
		t.Fatalf("reqtrace not written: %v", err)
	}
	if !bytes.Contains(reqs, []byte(`"/v1/alltoall"`)) {
		t.Errorf("reqtrace missing the request span: %s", reqs)
	}
}

// Command lopc-serve answers LoPC contention predictions over HTTP: a
// long-running, capacity-planned service over the model stack, with a
// solve cache, admission control, and a JSON metrics endpoint.
//
// Usage:
//
//	lopc-serve [-addr :8080] [-workers 0] [-queue 64] [-queue-wait 1s]
//	           [-timeout 10s] [-cache 1024] [-sweep-points 4096]
//	           [-sweep-jobs 0] [-solve-est 1ms] [-drain 10s]
//	           [-pprof] [-convtrace FILE] [-reqtrace FILE]
//	           [-calib] [-calib-window 256] [-calib-pop 0]
//
// Endpoints: POST /v1/alltoall, /v1/workpile, /v1/general, /v1/bounds,
// /v1/fit, /v1/sweep; GET /metrics, /healthz, /readyz. See the README
// "Serving predictions" section for request shapes and examples.
//
// -calib turns on online model calibration: the server splits its own
// request timing into queue-wait, service, and overhead streams, refits
// (W, St, So, C²) every -calib-window solved requests, and watches a
// CUSUM drift detector (the lopc_model_drift gauge). GET
// /v1/calibration reports the live fit; POST /v1/whatif answers
// capacity questions at it. -calib-pop overrides the modeled closed
// population (default: workers + queue).
//
// /metrics content-negotiates: the JSON document by default, Prometheus
// text exposition for scrapers (Accept: text/plain or
// ?format=prometheus), including Go runtime gauges. -pprof additionally
// mounts net/http/pprof under /debug/pprof/. At shutdown, -convtrace
// writes the ring of recent solver convergence traces (.csv or JSON)
// and -reqtrace writes a Chrome-trace span per handled request.
//
// -workers 0 sizes the solver pool with the paper's own Eq. 6.8
// optimal-server allocation (clamped to [1, GOMAXPROCS]); any other
// value is used as given, with the model's recommendation logged for
// comparison. SIGINT/SIGTERM trigger a graceful drain: /readyz flips
// to 503, in-flight requests finish, and the process exits 0 once the
// listener has shut down cleanly (or after -drain at the latest).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole daemon minus os.Exit. onReady, when non-nil, is
// called with the bound listen address once the server is accepting —
// tests use it to drive a real process lifecycle in-process.
func run(args []string, stdout, stderr io.Writer, onReady func(addr string)) int {
	fs := flag.NewFlagSet("lopc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "solver pool size (0: size from the paper's Eq. 6.8, clamped to GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "admission queue depth before 503 shedding")
		queueWait   = fs.Duration("queue-wait", time.Second, "max time a request waits for a solver before 429")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request deadline")
		cacheSize   = fs.Int("cache", 1024, "solve-cache entries (-1: disable memoization, keep singleflight)")
		sweepPoints = fs.Int("sweep-points", 4096, "max points per /v1/sweep request")
		sweepJobs   = fs.Int("sweep-jobs", 0, "max fan-out per /v1/sweep request (0: worker count)")
		solveEst    = fs.Duration("solve-est", time.Millisecond, "estimated per-solve service time (Retry-After and Eq. 6.8 sizing)")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (unauthenticated; keep off public listeners)")
		convtr      = fs.String("convtrace", "", "write recent solver convergence traces to this file at shutdown (.csv, else JSON)")
		reqtrace    = fs.String("reqtrace", "", "write a Chrome-trace span per handled request to this file at shutdown")
		calibOn     = fs.Bool("calib", false, "refit (W, St, So, C2) online from live traffic; mounts /v1/calibration and /v1/whatif")
		calibWindow = fs.Int("calib-window", 0, "calibration refit window in solved requests (0: default 256)")
		calibPop    = fs.Int("calib-pop", 0, "modeled closed client population for calibration (0: workers + queue)")
		ver         = version.AddFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-serve"))
		return 0
	}

	logger := log.New(stderr, "lopc-serve: ", log.LstdFlags)
	if *workers <= 0 {
		*workers = recommendedWorkers(logger, *queue, *solveEst)
	}
	var spans *trace.Spans
	if *reqtrace != "" {
		spans = trace.NewSpans(nil)
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		QueueWait:      *queueWait,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		SolveEstimate:  *solveEst,
		MaxSweepPoints: *sweepPoints,
		MaxSweepJobs:   *sweepJobs,
		Logf:           logger.Printf,
		Pprof:          *pprofOn,
		Spans:          spans,

		Calibration:     *calibOn,
		CalibWindow:     *calibWindow,
		CalibPopulation: *calibPop,
	})
	// Runtime gauges (goroutines, heap, GC) join the Prometheus
	// exposition; the JSON document is untouched by them.
	obs.RegisterRuntime(srv.Registry())

	// writeTraces flushes the -convtrace / -reqtrace files; it runs on
	// every exit path after the server has stopped handling requests.
	writeTraces := func() bool {
		ok := true
		if *convtr != "" {
			if err := srv.ConvTraces().WriteFile(*convtr); err != nil {
				logger.Printf("convtrace: %v", err)
				ok = false
			} else {
				logger.Printf("wrote %d convergence trace(s) to %s", srv.ConvTraces().Total(), *convtr)
			}
		}
		if spans != nil {
			if err := spans.WriteFile(*reqtrace); err != nil {
				logger.Printf("reqtrace: %v", err)
				ok = false
			} else {
				logger.Printf("wrote %d request span(s) to %s", spans.Len(), *reqtrace)
			}
		}
		return ok
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (%d workers, queue %d, cache %d)", ln.Addr(), *workers, *queue, *cacheSize)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		writeTraces()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second signal kills hard

	logger.Printf("signal received, draining (budget %v)", *drain)
	srv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("drain incomplete: %v", err)
		writeTraces()
		return 1
	}
	if !writeTraces() {
		return 1
	}
	logger.Printf("clean shutdown")
	return 0
}

// recommendedWorkers sizes the pool from the paper's own work-pile
// model: the admission queue plus pool is the client population, the
// solve estimate is the server's handler cost, and clients are taken
// as saturating (zero think time) — the worst-case burst the pool must
// absorb. The result is clamped to [1, GOMAXPROCS]: the model knows
// about contention, the runtime knows how many processors exist.
func recommendedWorkers(logger *log.Logger, queue int, solveEst time.Duration) int {
	maxProcs := runtime.GOMAXPROCS(0)
	clients := queue + maxProcs
	psStar, rec, err := serve.RecommendWorkers(clients, 0, solveEst)
	if err != nil {
		logger.Printf("Eq. 6.8 sizing unavailable (%v); using GOMAXPROCS = %d", err, maxProcs)
		return maxProcs
	}
	if rec < 1 {
		rec = 1
	}
	if rec > maxProcs {
		rec = maxProcs
	}
	logger.Printf("sizing workers from the work-pile model (Eq. 6.8): Ps* = %.2f for ~%d saturating clients at solve=%v; using %d",
		psStar, clients, solveEst, rec)
	return rec
}

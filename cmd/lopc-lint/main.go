// Command lopc-lint runs the repository's static-analysis suite
// (internal/lint) over the module: determinism, float-safety and
// AMVA-convergence invariants the compiler cannot check.
//
// Usage:
//
//	lopc-lint [-config file] [-format text|json|github|sarif] [-checks a,b] [-j n] [-strict-allows] [-list] [-report-allows] [patterns...]
//
// Patterns default to ./... (every package of the enclosing module,
// skipping testdata). With the default text format findings print one
// per line as
//
//	file:line:check: message
//
// with file paths relative to the module root; -format json emits a
// JSON array of findings, -format github emits ::error workflow
// annotations for GitHub Actions, and -format sarif emits a SARIF
// 2.1.0 log for code-scanning upload. The exit status is 0
// when the module is clean, 1 when there are findings, and 2 on usage
// or load errors. Individual findings are suppressed with a justified
//
//	//lopc:allow <check> <reason>
//
// comment on the flagged line or the line above it; whole path prefixes
// with a -config allowlist ("check path-prefix" lines).
//
// -checks restricts the run to a comma-separated subset of analyzers
// (unknown names are a usage error). -j sets how many packages are
// analyzed concurrently (0 means GOMAXPROCS); output is byte-identical
// at every job count. -strict-allows reports every //lopc:allow whose
// check ran but suppressed nothing — a dead suppression that would
// silently swallow a future regression — and exits 1 when any exist.
// -report-allows prints every //lopc:allow suppression in the analyzed
// packages with its audited reason instead of running the analyzers,
// so the full suppression inventory is reviewable per PR; stale
// suppressions (per a full-suite run) are marked STALE.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "path allowlist `file` (lines: check path-prefix)")
	format := fs.String("format", "text", "output `format`: text, json, github, or sarif")
	checks := fs.String("checks", "", "comma-separated `subset` of checks to run (default: all)")
	jobs := fs.Int("j", 0, "analyze `n` packages concurrently (0 = GOMAXPROCS); output is identical at any value")
	strictAllows := fs.Bool("strict-allows", false, "report stale //lopc:allow suppressions and exit 1 when any exist")
	list := fs.Bool("list", false, "list the analyzers and exit")
	reportAllows := fs.Bool("report-allows", false, "print every //lopc:allow suppression with its reason and exit")
	ver := version.AddFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-lint"))
		return 0
	}
	if *format != "text" && *format != "json" && *format != "github" && *format != "sarif" {
		fmt.Fprintf(stderr, "lopc-lint: unknown format %q (want text, json, github, or sarif)\n", *format)
		return 2
	}
	analyzers := lint.All()
	if *checks != "" {
		var names []string
		for _, n := range strings.Split(*checks, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		var err error
		if analyzers, err = lint.ByNames(names); err != nil {
			fmt.Fprintln(stderr, "lopc-lint:", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	cfg := lint.Config{}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintln(stderr, "lopc-lint:", err)
			return 2
		}
		cfg, err = lint.ParseConfig(string(data))
		if err != nil {
			fmt.Fprintln(stderr, "lopc-lint:", err)
			return 2
		}
	}

	l, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "lopc-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := l.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lopc-lint:", err)
		return 2
	}

	if *reportAllows {
		records := lint.AllowRecords(l, pkgs)
		// Staleness is judged against the full suite regardless of
		// -checks: an allow is dead only if the check it names found
		// nothing to suppress when actually run.
		_, staleRecs := lint.RunParallel(l, pkgs, lint.All(), cfg, *jobs)
		staleSet := make(map[lint.AllowRecord]bool, len(staleRecs))
		for _, r := range staleRecs {
			staleSet[r] = true
		}
		for _, r := range records {
			mark := ""
			if staleSet[r] {
				mark = " STALE"
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s%s\n", r.File, r.Line, r.Check, r.Reason, mark)
		}
		fmt.Fprintf(stderr, "lopc-lint: %d suppression(s) (%d stale) in %d package(s)\n",
			len(records), len(staleRecs), len(pkgs))
		if *strictAllows && len(staleRecs) > 0 {
			return 1
		}
		return 0
	}

	diags, stale := lint.RunParallel(l, pkgs, analyzers, cfg, *jobs)
	if err := emit(stdout, *format, l, diags); err != nil {
		fmt.Fprintln(stderr, "lopc-lint:", err)
		return 2
	}
	if *strictAllows {
		for _, r := range stale {
			fmt.Fprintf(stderr, "lopc-lint: stale allow: %s:%d: //lopc:allow %s suppresses nothing; delete it\n",
				r.File, r.Line, r.Check)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lopc-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	if *strictAllows && len(stale) > 0 {
		return 1
	}
	return 0
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// emit renders the findings in the selected format. Findings arrive
// sorted by file/line/check/message from lint.Run, so every format is
// byte-deterministic.
func emit(w io.Writer, format string, l *lint.Loader, diags []lint.Diagnostic) error {
	switch format {
	case "sarif":
		return emitSARIF(w, l, diags)
	case "json":
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:    l.RelPath(d.Pos.Filename),
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	case "github":
		for _, d := range diags {
			_, err := fmt.Fprintf(w, "::error file=%s,line=%d::%s: %s\n",
				actionsEscapeProp(l.RelPath(d.Pos.Filename)), d.Pos.Line,
				d.Check, actionsEscapeData(d.Message))
			if err != nil {
				return err
			}
		}
		return nil
	default: // text
		for _, d := range diags {
			_, err := fmt.Fprintf(w, "%s:%d:%s: %s\n", l.RelPath(d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// actionsEscapeData escapes a workflow-command message per the GitHub
// Actions toolkit rules.
func actionsEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// actionsEscapeProp escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func actionsEscapeProp(s string) string {
	s = actionsEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// Command lopc-lint runs the repository's static-analysis suite
// (internal/lint) over the module: determinism, float-safety and
// AMVA-convergence invariants the compiler cannot check.
//
// Usage:
//
//	lopc-lint [-config file] [-list] [patterns...]
//
// Patterns default to ./... (every package of the enclosing module,
// skipping testdata). Findings print one per line as
//
//	file:line:check: message
//
// with file paths relative to the module root. The exit status is 0
// when the module is clean, 1 when there are findings, and 2 on usage
// or load errors. Individual findings are suppressed with a justified
//
//	//lopc:allow <check> <reason>
//
// comment on the flagged line or the line above it; whole path prefixes
// with a -config allowlist ("check path-prefix" lines).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "path allowlist `file` (lines: check path-prefix)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	cfg := lint.Config{}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintln(stderr, "lopc-lint:", err)
			return 2
		}
		cfg, err = lint.ParseConfig(string(data))
		if err != nil {
			fmt.Fprintln(stderr, "lopc-lint:", err)
			return 2
		}
	}

	l, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "lopc-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := l.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lopc-lint:", err)
		return 2
	}

	diags := lint.Run(l, pkgs, analyzers, cfg)
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%s: %s\n", l.RelPath(d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lopc-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

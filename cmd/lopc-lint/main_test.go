package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestGoldenOutput pins the exact file:line:check: message output of the
// driver on the fixture module, so the diagnostic format and the
// analyzer behaviour visible to CI cannot drift silently.
func TestGoldenOutput(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestGoldenJSON pins the -format json rendering of the same findings:
// a sorted array of {file, line, column, check, message} objects.
func TestGoldenJSON(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "json", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
	var parsed []finding
	if err := json.Unmarshal(stdout.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed) == 0 {
		t.Fatal("JSON output decoded to zero findings")
	}
}

// TestGoldenGitHub pins the -format github rendering: one ::error
// workflow command per finding so Actions annotates the diff.
func TestGoldenGitHub(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_github.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "github", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestGoldenSARIF pins the -format sarif rendering byte-for-byte and
// validates the SARIF 2.1.0 shape: schema URI, version, one run with
// one rule per analyzer (plus the allow pseudo-check) and one result
// per finding, each carrying a physical location under %SRCROOT%.
func TestGoldenSARIF(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "sarif", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Schema != sarifSchema || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q/%q, want %q/2.1.0", log.Schema, log.Version, sarifSchema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "lopc-lint" {
		t.Errorf("driver name = %q, want lopc-lint", r.Tool.Driver.Name)
	}
	if want := len(lint.All()) + 1; len(r.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d (suite + allow)", len(r.Tool.Driver.Rules), want)
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF run has zero results")
	}
	for i, res := range r.Results {
		if res.RuleID != r.Tool.Driver.Rules[res.RuleIndex].ID {
			t.Errorf("result %d: ruleIndex %d resolves to %q, not ruleId %q",
				i, res.RuleIndex, r.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result %d: got %d locations, want 1", i, len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" || loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("result %d: incomplete physical location %+v", i, loc)
		}
	}
}

// TestJobsByteIdentical pins the -j contract: output is byte-identical
// at every job count, so CI can parallelize freely without churning
// diffs or SARIF uploads.
func TestJobsByteIdentical(t *testing.T) {
	runWith := func(jobs string) string {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-j", jobs, "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
		if code != 1 {
			t.Fatalf("-j %s: exit code = %d, want 1\nstderr: %s", jobs, code, stderr.String())
		}
		return stdout.String()
	}
	serial := runWith("1")
	for _, jobs := range []string{"2", "8"} {
		if got := runWith(jobs); got != serial {
			t.Errorf("-j %s output differs from -j 1\n--- j%s ---\n%s--- j1 ---\n%s", jobs, jobs, got, serial)
		}
	}
}

// TestStrictAllows: -strict-allows turns the fixture's deliberately
// dead suppression into an exit-1 failure and names it on stderr, even
// when the selected checks report no findings.
func TestStrictAllows(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-strict-allows", "-checks", "floateq", "./internal/sim"},
		filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings on stdout, got:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "stale allow") || !strings.Contains(stderr.String(), "internal/sim/sim.go:29") {
		t.Errorf("stderr does not name the stale allow:\n%s", stderr.String())
	}
	// Without the flag the same run is clean: stale allows are advisory
	// by default.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-checks", "floateq", "./internal/sim"},
		filepath.Join("testdata", "fixturemod"), &stdout, &stderr); code != 0 {
		t.Fatalf("without -strict-allows: exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
}

// TestBadFormat: an unknown -format is a usage error (exit 2), before
// any packages load.
func TestBadFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "xml", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown format") {
		t.Errorf("stderr %q does not name the bad format", stderr.String())
	}
}

// TestOutputDeterministic runs the driver repeatedly — including under
// a different GOMAXPROCS — and requires byte-identical output: finding
// order may never depend on map iteration or scheduling.
func TestOutputDeterministic(t *testing.T) {
	runOnce := func() string {
		var stdout, stderr bytes.Buffer
		code := run([]string{"./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
		if code != 1 {
			t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	first := runOnce()
	second := runOnce()
	if first != second {
		t.Errorf("two identical runs differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := runOnce()
	if first != serial {
		t.Errorf("output differs under GOMAXPROCS=1\n--- parallel ---\n%s--- serial ---\n%s", first, serial)
	}
}

// TestConfigAllowsEverything checks that a -config allowlist covering
// the whole fixture module silences every finding and flips the exit
// status to 0.
func TestConfigAllowsEverything(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "allow.conf")
	cfg := "# fixture module is intentionally broken\n" +
		"floateq fixture\n" +
		"paramvalidate fixture\n" +
		"errdiscard fixture\n" +
		"nondeterminism fixture\n" +
		"convergeloop fixture\n" +
		"goroutineleak fixture\n" +
		"waitgroup fixture\n" +
		"loopcapture fixture\n" +
		"lockbalance fixture\n" +
		"sendclosed fixture\n" +
		"allochot fixture\n" +
		"deadlock fixture\n" +
		"detflow fixture\n" +
		"clockseam fixture\n" +
		"rngseam fixture\n"
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-config", cfgPath, "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no output, got:\n%s", stdout.String())
	}
}

// TestChecksSubset: -checks restricts the run to the named analyzers,
// so only their findings appear.
func TestChecksSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "allochot,deadlock", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), stdout.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, ":allochot:") && !strings.Contains(line, ":deadlock:") {
			t.Errorf("finding from an unselected check leaked through: %s", line)
		}
	}
}

// TestChecksUnknown: an unrecognized -checks name is a usage error
// (exit 2) naming the bad check, before any packages load.
func TestChecksUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "floateq,nosuchcheck", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nosuchcheck") {
		t.Errorf("stderr %q does not name the unknown check", stderr.String())
	}
}

// TestReportAllowsGolden pins the -report-allows inventory: every
// //lopc:allow in the fixture module with its file, line, check and
// audited reason, and exit 0 regardless of findings.
func TestReportAllowsGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_allows.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-report-allows", "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestBadPattern checks that a pattern outside the module is a load
// error (exit 2), distinct from findings (exit 1).
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"example.com/other"}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenOutput pins the exact file:line:check: message output of the
// driver on the fixture module, so the diagnostic format and the
// analyzer behaviour visible to CI cannot drift silently.
func TestGoldenOutput(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestConfigAllowsEverything checks that a -config allowlist covering
// the whole fixture module silences every finding and flips the exit
// status to 0.
func TestConfigAllowsEverything(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "allow.conf")
	cfg := "# fixture module is intentionally broken\n" +
		"floateq fixture\n" +
		"paramvalidate fixture\n" +
		"errdiscard fixture\n" +
		"nondeterminism fixture\n" +
		"convergeloop fixture\n"
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-config", cfgPath, "./..."}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no output, got:\n%s", stdout.String())
	}
}

// TestBadPattern checks that a pattern outside the module is a load
// error (exit 2), distinct from findings (exit 1).
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"example.com/other"}, filepath.Join("testdata", "fixturemod"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

// Package fixture is a deliberately broken module pinning lopc-lint's
// diagnostic output format: one violation per analyzer that reports in
// the module root.
package fixture

import "os"

// BadCompare compares floats exactly.
func BadCompare(a, b float64) bool {
	return a == b
}

// BadSolve uses w before validating it.
func BadSolve(w float64) (float64, error) {
	return w * 2, nil
}

// BadClose drops the error from Close.
func BadClose(f *os.File) {
	f.Close()
}

// Package hot is the fixture for the hot-path allocation analyzer: a
// //lopc:hotpath root that allocates once per call, plus one audited
// suppression so -report-allows has an inventory entry to list.
package hot

// step advances the state by one sweep, allocating a fresh result
// slice every call — exactly what allochot exists to flag.
//
//lopc:hotpath
func step(q []float64, v float64) []float64 {
	out := make([]float64, len(q))
	for i := range q {
		out[i] = q[i] + v
	}
	return out
}

// warm builds the scratch buffer the sweeps reuse; the allocation is
// deliberate and audited.
//
//lopc:hotpath
func warm(n int) []float64 {
	//lopc:allow allochot scratch is allocated once at setup time and reused by every later sweep
	buf := make([]float64, n)
	return buf
}

var _ = step
var _ = warm

// Package rng is a minimal stand-in for the module's splittable
// stream package. Its path suffix (internal/rng) is what the rngseam
// constant-seed check keys on, so the sim fixture can exercise
// rng.New(42) without importing the real module.
package rng

// Stream is a SplitMix64 stand-in for the module's xoshiro stream.
type Stream struct{ state uint64 }

// New returns a stream rooted at seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 advances the stream by one SplitMix64 step.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Package pool is the fixture for the concurrency analyzers: one
// violation per flow-sensitive check, kept clean under every other
// analyzer so each line of golden output pins exactly one finding.
package pool

import "sync"

// Leak launches a goroutine with no join or cancellation mechanism.
func Leak(job func()) {
	go func() {
		job()
	}()
}

// Gather performs the Add inside the goroutine it accounts for, so
// Wait can return before any Add runs.
func Gather(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		go func(run func()) {
			wg.Add(1)
			defer wg.Done()
			run()
		}(j)
	}
	wg.Wait()
}

// Tally accumulates into a captured variable from every iteration's
// goroutine without synchronization.
func Tally(vals []int) int {
	var wg sync.WaitGroup
	total := 0
	for _, v := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += v
		}()
	}
	wg.Wait()
	return total
}

// Counter holds a lock across an early return.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bump forgets the unlock on the limit-reached path.
func (c *Counter) Bump(limit int) bool {
	c.mu.Lock()
	if c.n >= limit {
		return false
	}
	c.n++
	c.mu.Unlock()
	return true
}

// Fan closes its output channel twice.
func Fan(vals []int) <-chan int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	close(ch)
	return ch
}

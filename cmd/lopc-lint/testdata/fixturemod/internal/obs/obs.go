// Package obs mirrors the telemetry package, which is in the
// deterministic set: instruments record wall times through an injected
// clock, never by reading the system clock directly.
package obs

import "time"

// Stamp reads the wall clock for a trace timestamp.
func Stamp() time.Time {
	return time.Now()
}

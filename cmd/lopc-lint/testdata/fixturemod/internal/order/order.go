// Package order is the fixture for the cross-function deadlock
// analyzer: two functions acquiring the same pair of locks in opposite
// orders, plus one audited channel send under a lock.
package order

import "sync"

type pair struct {
	a, b sync.Mutex
	ch   chan int
}

// lockAB takes a then b.
func lockAB(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// lockBA takes b then a: the reverse of lockAB, so two goroutines can
// deadlock holding one lock each.
func lockBA(p *pair) {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

// post publishes under the lock; audited because the channel is
// buffered and drained.
func post(p *pair, v int) {
	p.a.Lock()
	defer p.a.Unlock()
	//lopc:allow deadlock the channel is buffered (cap 1) and drained by the sole receiver before the next post
	p.ch <- v
}

var _ = lockAB
var _ = lockBA
var _ = post

// Package sim mirrors the simulation package, where every random draw
// must derive from internal/rng substreams: one legacy math/rand use
// and one constant-seeded stream, each pinning a rngseam finding, plus
// a deliberately dead suppression pinning the STALE marker in
// -report-allows.
package sim

import (
	"math/rand"

	"fixture/internal/rng"
)

// shuffleSource builds a legacy math/rand source; even with an
// explicit seed it is outside the SeedAt substream scheme.
func shuffleSource(seed int64) rand.Source {
	return rand.NewSource(seed)
}

// fixedStream seeds an rng stream with a constant, which makes every
// replication identical.
func fixedStream() *rng.Stream {
	return rng.New(42)
}

// Mix is integer arithmetic: floateq finds nothing on the line below,
// so the allow is dead and -report-allows marks it STALE.
func Mix(a, b int) int {
	//lopc:allow floateq fixture: deliberately dead suppression pinning the STALE marker
	return a ^ b
}

var _ = shuffleSource
var _ = fixedStream

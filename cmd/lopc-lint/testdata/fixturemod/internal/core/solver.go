// Package core mirrors a deterministic solver package, violating the
// package-scoped checks.
package core

import (
	"math"
	"time"
)

// Seed reads the wall clock.
func Seed() int64 {
	return time.Now().UnixNano()
}

// Iterate runs a fixed-point loop with no iteration cap.
func Iterate(f func(float64) float64, x float64) float64 {
	for {
		next := f(x)
		if math.Abs(next-x) < 1e-12 {
			return next
		}
		x = next
	}
}

// Sum accumulates map values in iteration order.
func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

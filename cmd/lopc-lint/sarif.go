package main

// SARIF 2.1.0 output (-format sarif): the interchange format GitHub
// code scanning and most SARIF viewers ingest. One run, one driver
// (lopc-lint), one reportingDescriptor per analyzer plus the "allow"
// pseudo-check for malformed suppression comments, and one result per
// finding with a physical location relative to the module root
// (%SRCROOT%). Rules are emitted in suite order and results arrive
// pre-sorted from the analysis, so the log is byte-deterministic —
// the same contract every other format honours. The driver version is
// deliberately omitted: it would vary with the build and break byte
// comparison of otherwise identical runs.

import (
	"encoding/json"
	"io"

	"repro/internal/lint"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules builds the reportingDescriptor table: the full suite in
// reporting order, then the allow pseudo-check. The table is the same
// for every run so ruleIndex values are stable across invocations.
func sarifRules() ([]sarifRule, map[string]int) {
	var rules []sarifRule
	index := map[string]int{}
	add := func(id, doc string) {
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range lint.All() {
		add(a.Name(), a.Doc())
	}
	add("allow", "malformed //lopc:allow suppression comment (unknown check or missing reason)")
	return rules, index
}

// emitSARIF renders the findings as one SARIF 2.1.0 run.
func emitSARIF(w io.Writer, l *lint.Loader, diags []lint.Diagnostic) error {
	rules, index := sarifRules()
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: index[d.Check],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       l.RelPath(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "lopc-lint",
				InformationURI: "https://github.com/lopc/repro",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Command lopc-fit calibrates the LoPC architectural parameters (St,
// So) from measurements — the workflow a practitioner follows to
// parameterize the model for a real machine: run an all-to-all
// microbenchmark sweep over several work settings, record the mean
// cycle time (and ideally the mean request-handler response), and fit.
//
// Usage:
//
//	lopc-fit -csv sweep.csv -P 32 -C2 0
//	    CSV columns: W,R[,Rq] with an optional header row.
//
//	lopc-fit -demo -P 32
//	    Simulates a machine with "hidden" parameters, runs the sweep,
//	    fits, and reports recovery error — an end-to-end demonstration.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro"
	"repro/internal/fit"
	"repro/internal/obs"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the fit CLI with the given arguments and streams,
// returning the process exit code. It is the whole tool minus os.Exit,
// so tests can drive the sweep -> CSV -> fit composition end-to-end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-fit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		csvPath = fs.String("csv", "", "CSV file of W,R[,Rq] rows")
		p       = fs.Int("P", 32, "number of processors of the measured machine")
		c2      = fs.Float64("C2", 0, "handler-time SCV of the measured machine")
		demo    = fs.Bool("demo", false, "simulate a hidden machine and fit it")
		seed    = fs.Uint64("seed", 1, "seed for -demo")
		convtr  = fs.String("convtrace", "", "write convergence traces of the fit's model solves to this file (.csv, else JSON)")
		ver     = version.AddFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-fit"))
		return 0
	}

	// The fit's grid search solves the model at every (St, So) candidate
	// for every observation; the recorder's ring keeps the most recent
	// solves — the refinement passes around the accepted optimum.
	var conv *obs.ConvRecorder
	if *convtr != "" {
		conv = obs.NewConvRecorder(0, nil, nil)
	}

	var err error
	switch {
	case *demo:
		err = runDemo(stdout, *p, *seed, conv)
	case *csvPath != "":
		err = runCSV(stdout, *csvPath, *p, *c2, conv)
	default:
		err = fmt.Errorf("need -csv file or -demo (see -help)")
	}
	if err == nil && conv != nil {
		if err = conv.WriteFile(*convtr); err == nil {
			fmt.Fprintf(stderr, "lopc-fit: wrote convergence traces (%d solves total) to %s\n", conv.Total(), *convtr)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "lopc-fit:", err)
		return 1
	}
	return 0
}

func runCSV(w io.Writer, path string, p int, c2 float64, conv *obs.ConvRecorder) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read-only file: Close cannot lose data
	rd := csv.NewReader(f)
	rd.FieldsPerRecord = -1
	rows, err := rd.ReadAll()
	if err != nil {
		return err
	}
	var obs []fit.Observation
	for i, row := range rows {
		if len(row) < 2 {
			return fmt.Errorf("row %d: need at least W,R", i+1)
		}
		w, errW := strconv.ParseFloat(row[0], 64)
		r, errR := strconv.ParseFloat(row[1], 64)
		if errW != nil || errR != nil {
			if i == 0 {
				continue // header row
			}
			return fmt.Errorf("row %d: cannot parse %v", i+1, row)
		}
		o := fit.Observation{W: w, R: r}
		if len(row) >= 3 && row[2] != "" {
			if rq, err := strconv.ParseFloat(row[2], 64); err == nil {
				o.Rq = rq
			}
		}
		obs = append(obs, o)
	}
	res, err := fit.AllToAllObserved(obs, p, c2, convObserver(conv))
	if err != nil {
		return err
	}
	report(w, res, obs, p, c2)
	return nil
}

// convObserver converts a possibly-nil *ConvRecorder into the observer
// argument: a typed-nil interface would defeat fit's nil check.
func convObserver(conv *obs.ConvRecorder) obs.SolveObserver {
	if conv == nil {
		return nil
	}
	return conv
}

func runDemo(out io.Writer, p int, seed uint64, conv *obs.ConvRecorder) error {
	// "Hidden" machine parameters the demo pretends not to know.
	const (
		trueSt = 40.0
		trueSo = 200.0
	)
	fmt.Fprintf(out, "demo: sweeping a simulated %d-node machine (hidden St=%g, So=%g)\n", p, trueSt, trueSo)
	var obs []fit.Observation
	for _, w := range []float64{0, 64, 256, 1024, 4096} {
		sim, err := repro.SimulateAllToAll(repro.SimAllToAllConfig{
			P:             p,
			Work:          repro.Deterministic(w),
			Latency:       repro.Deterministic(trueSt),
			Service:       repro.Deterministic(trueSo),
			WarmupCycles:  300,
			MeasureCycles: 1500,
			Seed:          seed,
		})
		if err != nil {
			return err
		}
		obs = append(obs, fit.Observation{W: w, R: sim.R.Mean(), Rq: sim.Rq.Mean()})
		fmt.Fprintf(out, "  W=%6.0f  measured R=%8.1f  Rq=%6.1f\n", w, sim.R.Mean(), sim.Rq.Mean())
	}
	res, err := fit.AllToAllObserved(obs, p, 0, convObserver(conv))
	if err != nil {
		return err
	}
	report(out, res, obs, p, 0)
	fmt.Fprintf(out, "recovery error: St %+.1f%%, So %+.1f%%\n",
		100*(res.St-trueSt)/trueSt, 100*(res.So-trueSo)/trueSo)
	return nil
}

func report(w io.Writer, res fit.Result, obs []fit.Observation, p int, c2 float64) {
	fmt.Fprintf(w, "fitted parameters (P=%d, C2=%g, %d observations):\n", p, c2, len(obs))
	fmt.Fprintf(w, "  St = %.2f cycles\n  So = %.2f cycles\n", res.St, res.So)
	fmt.Fprintf(w, "  residual RMSE = %.2f cycles (%.2f%% of mean R)\n", res.RMSE, 100*res.RelRMSE)
	fmt.Fprintf(w, "calibrated contention-free round trip: 2St+2So = %.1f cycles\n", 2*res.St+2*res.So)
	fmt.Fprintf(w, "rule-of-thumb cycle at W: W + %.1f\n", 2*res.St+3*res.So)
}

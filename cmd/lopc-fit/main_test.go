package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFitGoldenFromSweepCSV exercises the composition the sweep tool's
// doc comment promises — lopc-sweep's CSV feeds lopc-fit — pinned at
// both ends: the input CSV is lopc-sweep's golden output (see
// cmd/lopc-sweep/main_test.go), and the fit report is pinned here. If
// either golden regenerates, regenerate both.
func TestFitGoldenFromSweepCSV(t *testing.T) {
	csv := filepath.Join("..", "lopc-sweep", "testdata", "sweep_golden.csv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", csv, "-P", "16"}, &stdout, &stderr); code != 0 {
		t.Fatalf("fit failed (%d): %s", code, stderr.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fit_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(want) {
		t.Errorf("fit report drifted from golden:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestFitNoArgs: with neither -csv nor -demo the tool fails usefully.
func TestFitNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code == 0 {
		t.Error("no arguments accepted")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("-csv")) {
		t.Errorf("error does not mention -csv: %s", stderr.String())
	}
}

// TestFitConvTrace: -convtrace records the grid search's model solves.
// The file must parse as the convergence-trace document, hold the most
// recent solves in a bounded ring, and report the full solve count.
func TestFitConvTrace(t *testing.T) {
	csv := filepath.Join("..", "lopc-sweep", "testdata", "sweep_golden.csv")
	path := filepath.Join(t.TempDir(), "conv.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", csv, "-P", "16", "-convtrace", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("fit failed (%d): %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading convtrace: %v", err)
	}
	var doc struct {
		Total    int `json:"total"`
		Capacity int `json:"capacity"`
		Traces   []struct {
			Solver    string `json:"solver"`
			Iters     int    `json:"iters"`
			Converged bool   `json:"converged"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("convtrace is not valid JSON: %v", err)
	}
	// The grid search evaluates the loss at many (St, So) candidates,
	// each solving the model once per observation.
	if doc.Total <= len(doc.Traces) && doc.Total < 10 {
		t.Errorf("suspiciously few solves recorded: total %d, ring %d", doc.Total, len(doc.Traces))
	}
	if len(doc.Traces) == 0 || len(doc.Traces) > doc.Capacity {
		t.Fatalf("ring holds %d traces with capacity %d", len(doc.Traces), doc.Capacity)
	}
	for i, tr := range doc.Traces {
		if tr.Solver != "alltoall" || tr.Iters <= 0 {
			t.Errorf("trace %d: solver %q iters %d, want alltoall with > 0 iterations", i, tr.Solver, tr.Iters)
		}
	}
	// The report itself must be unaffected by observation.
	want, err := os.ReadFile(filepath.Join("testdata", "fit_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(want) {
		t.Errorf("observed fit drifted from golden:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFitGoldenFromSweepCSV exercises the composition the sweep tool's
// doc comment promises — lopc-sweep's CSV feeds lopc-fit — pinned at
// both ends: the input CSV is lopc-sweep's golden output (see
// cmd/lopc-sweep/main_test.go), and the fit report is pinned here. If
// either golden regenerates, regenerate both.
func TestFitGoldenFromSweepCSV(t *testing.T) {
	csv := filepath.Join("..", "lopc-sweep", "testdata", "sweep_golden.csv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", csv, "-P", "16"}, &stdout, &stderr); code != 0 {
		t.Fatalf("fit failed (%d): %s", code, stderr.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fit_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(want) {
		t.Errorf("fit report drifted from golden:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestFitNoArgs: with neither -csv nor -demo the tool fails usefully.
func TestFitNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code == 0 {
		t.Error("no arguments accepted")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("-csv")) {
		t.Errorf("error does not mention -csv: %s", stderr.String())
	}
}

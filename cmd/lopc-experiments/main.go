// Command lopc-experiments regenerates the tables and figures of the
// LoPC paper's evaluation (Table 3.1, Figures 5-1, 5-2, 5-3, 6-2, the
// §5.3 error analysis) plus the extension studies, printing each as an
// aligned text table and ASCII plot, and optionally writing CSV files.
//
// Usage:
//
//	lopc-experiments                 # run everything, full lengths
//	lopc-experiments -run fig52      # one experiment
//	lopc-experiments -quick          # ~5x shorter simulations
//	lopc-experiments -csv out/       # also write CSV per table
//	lopc-experiments -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id (see -list) or 'all'")
		quick    = flag.Bool("quick", false, "shorter simulations (~5x)")
		seed     = flag.Uint64("seed", 1, "random seed for all simulations")
		csv      = flag.String("csv", "", "directory to write CSV tables into")
		md       = flag.Bool("md", false, "emit GitHub-flavored markdown instead of text tables/plots")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jobs     = flag.Int("j", 1, "run up to this many experiments (and sweep points within each) concurrently; outputs stay ordered and identical to -j 1")
		progress = flag.Bool("progress", false, "report progress (done/total, elapsed, ETA) on stderr")
		jobtrace = flag.String("jobtrace", "", "write a Chrome-trace span per experiment to this file (view in Perfetto)")
		ver      = version.AddFlag(flag.CommandLine)
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String("lopc-experiments"))
		return
	}

	if *list {
		for _, r := range exp.All() {
			fmt.Printf("%-10s %s\n", r.Name, r.Title)
		}
		return
	}

	var runners []exp.Runner
	if *run == "all" {
		runners = exp.All()
	} else {
		for _, name := range strings.Split(*run, ",") {
			r, ok := exp.Get(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "lopc-experiments: unknown experiment %q (use -list)\n", name)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick, Jobs: *jobs}
	opts := runner.Options{Jobs: *jobs, Label: "experiments"}
	if *progress {
		opts.Progress = os.Stderr
	}
	var spans *trace.Spans
	if *jobtrace != "" {
		spans = trace.NewSpans(nil)
		opts.Spans = spans
	}
	// Each experiment builds its own machines and random streams from
	// (cfg, name), so experiments fan out safely; runner merges reports
	// in registry order, keeping output identical to a sequential run.
	reports, err := runner.Map(len(runners), opts, func(i int) (*exp.Report, error) {
		rep, err := runners[i].Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", runners[i].Name, err)
		}
		return rep, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lopc-experiments:", err)
		os.Exit(1)
	}
	if spans != nil {
		if err := spans.WriteFile(*jobtrace); err != nil {
			fmt.Fprintln(os.Stderr, "lopc-experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d experiment span(s) to %s\n", spans.Len(), *jobtrace)
	}
	for _, rep := range reports {
		write := rep.WriteText
		if *md {
			write = rep.WriteMarkdown
		}
		if err := write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lopc-experiments:", err)
			os.Exit(1)
		}
		if *csv != "" {
			if err := writeCSVs(*csv, rep); err != nil {
				fmt.Fprintln(os.Stderr, "lopc-experiments:", err)
				os.Exit(1)
			}
		}
	}
}

// writeCSVs writes each table of the report to dir/<name>_<i>.csv.
func writeCSVs(dir string, rep *exp.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.Name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// Command lopc evaluates the LoPC model from the command line.
//
// Usage:
//
//	lopc -pattern alltoall -P 32 -W 1000 -St 40 -So 200 -C2 0 [-n 100] [-pp]
//	lopc -pattern clientserver -P 32 -Ps 8 -W 1500 -St 40 -So 131 -C2 0
//	lopc -pattern clientserver -P 32 -Ps 0 ...   (Ps 0: report the optimal split)
//	lopc -pattern multihop -hops 3 -P 16 -W 1000 -St 40 -So 150
//	lopc -pattern nonblocking -W 800
//	lopc -pattern multithreaded -T 4 -W 512
//
// It prints the predicted cycle time and its breakdown, the
// contention-free (naive LogP) estimate, and the Eq. 5.12 bounds.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/version"
)

func main() {
	var (
		pattern = flag.String("pattern", "alltoall", "alltoall | clientserver | multihop | nonblocking | multithreaded")
		p       = flag.Int("P", 32, "number of processors")
		ps      = flag.Int("Ps", 0, "servers for clientserver (0: solve for the optimum)")
		w       = flag.Float64("W", 1000, "mean work between blocking requests (cycles)")
		st      = flag.Float64("St", 40, "network latency per trip (cycles)")
		so      = flag.Float64("So", 200, "handler cost: interrupt + service (cycles)")
		c2      = flag.Float64("C2", 0, "squared coefficient of variation of handler time")
		n       = flag.Int("n", 0, "requests per thread (0: skip total-runtime prediction)")
		pp      = flag.Bool("pp", false, "protocol-processor (shared-memory) variant")
		hops    = flag.Int("hops", 2, "request hops for multihop")
		threads = flag.Int("T", 2, "threads per node for multithreaded")
		ver     = version.AddFlag(flag.CommandLine)
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String("lopc"))
		return
	}

	var err error
	switch *pattern {
	case "alltoall":
		err = runAllToAll(*p, *w, *st, *so, *c2, *n, *pp)
	case "clientserver":
		err = runClientServer(*p, *ps, *w, *st, *so, *c2)
	case "multihop":
		err = runMultiHop(*p, *hops, *w, *st, *so, *c2, *pp)
	case "nonblocking":
		err = runNonBlocking(*p, *w, *st, *so, *c2, *pp)
	case "multithreaded":
		err = runMultithreaded(*p, *threads, *w, *st, *so, *c2)
	default:
		err = fmt.Errorf("unknown pattern %q", *pattern)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lopc:", err)
		os.Exit(1)
	}
}

func runAllToAll(p int, w, st, so, c2 float64, n int, pp bool) error {
	params := repro.Params{P: p, W: w, St: st, So: so, C2: c2, ProtocolProcessor: pp}
	res, err := repro.AllToAll(params)
	if err != nil {
		return err
	}
	fmt.Printf("LoPC all-to-all prediction (P=%d, W=%g, St=%g, So=%g, C2=%g, pp=%v)\n",
		p, w, st, so, c2, pp)
	fmt.Printf("  cycle time R        %10.1f cycles\n", res.R)
	fmt.Printf("    thread Rw         %10.1f (W + interference)\n", res.Rw)
	fmt.Printf("    network 2·St      %10.1f\n", 2*st)
	fmt.Printf("    request Rq        %10.1f (So + queueing)\n", res.Rq)
	fmt.Printf("    reply Ry          %10.1f (So + queueing)\n", res.Ry)
	fmt.Printf("  contention C        %10.1f (%0.1f%% of R)\n", res.Contention(), 100*res.ContentionFraction())
	fmt.Printf("  contention-free     %10.1f (naive LogP; Eq. 5.12 lower bound)\n", res.ContentionFree)
	fmt.Printf("  upper bound         %10.1f (W + 2St + %.2f·So)\n", res.UpperBound, repro.UpperBoundBeta(c2))
	fmt.Printf("  rule of thumb       %10.1f (W + 2St + 3So)\n", params.RuleOfThumb())
	fmt.Printf("  queueing            Qq=%.3f Qy=%.3f Uq=%.3f\n", res.Qq, res.Qy, res.Uq)
	fmt.Printf("  system throughput   %10.6f cycles^-1\n", res.X)
	if n > 0 {
		total, err := repro.TotalRuntime(params, n)
		if err != nil {
			return err
		}
		fmt.Printf("  total runtime (n=%d) %10.0f cycles\n", n, total)
	}
	return nil
}

func runClientServer(p, ps int, w, st, so, c2 float64) error {
	base := repro.ClientServerParams{P: p, Ps: 1, W: w, St: st, So: so, C2: c2}
	if ps == 0 {
		opt, err := repro.OptimalServersInt(base)
		if err != nil {
			return err
		}
		fmt.Printf("Optimal allocation (Eq. 6.8): Ps = %.2f, best integral Ps = %d\n",
			repro.OptimalServers(base), opt)
		fmt.Printf("Peak throughput: %.6f chunks/cycle\n", repro.PeakThroughput(base))
		ps = opt
	}
	params := base
	params.Ps = ps
	res, err := repro.ClientServer(params)
	if err != nil {
		return err
	}
	server, client := repro.ClientServerBounds(params)
	fmt.Printf("LoPC work-pile prediction (P=%d, Ps=%d, W=%g, St=%g, So=%g, C2=%g)\n",
		p, ps, w, st, so, c2)
	fmt.Printf("  throughput X        %10.6f chunks/cycle\n", res.X)
	fmt.Printf("  client cycle R      %10.1f cycles\n", res.R)
	fmt.Printf("  server response Rs  %10.1f cycles (Qs=%.3f, Us=%.3f)\n", res.Rs, res.Qs, res.Us)
	fmt.Printf("  optimistic bounds   server %.6f, client %.6f\n", server, client)
	return nil
}

func runMultiHop(p, hops int, w, st, so, c2 float64, pp bool) error {
	ws := make([]float64, p)
	for i := range ws {
		ws[i] = w
	}
	res, err := repro.General(repro.GeneralParams{
		P: p, W: ws, V: repro.MultiHopVisits(p, hops),
		St: st, So: []float64{so}, C2: c2, ProtocolProcessor: pp,
	})
	if err != nil {
		return err
	}
	fmt.Printf("LoPC multi-hop prediction (P=%d, hops=%d, W=%g, St=%g, So=%g, C2=%g)\n",
		p, hops, w, st, so, c2)
	fmt.Printf("  cycle time R        %10.1f cycles\n", res.R[0])
	fmt.Printf("  per-hop request Rq  %10.1f cycles\n", res.Rq[0])
	fmt.Printf("  reply Ry            %10.1f cycles\n", res.Ry[0])
	fmt.Printf("  thread Rw           %10.1f cycles\n", res.Rw[0])
	fmt.Printf("  node utilization Uq %10.3f\n", res.Uq[0])
	fmt.Printf("  system throughput   %10.6f cycles^-1\n", res.TotalX)
	return nil
}

func runNonBlocking(p int, w, st, so, c2 float64, pp bool) error {
	res, err := repro.NonBlocking(repro.Params{P: p, W: w, St: st, So: so, C2: c2, ProtocolProcessor: pp})
	if err != nil {
		return err
	}
	fmt.Printf("LoPC non-blocking prediction (P=%d, W=%g, St=%g, So=%g, C2=%g, pp=%v)\n",
		p, w, st, so, c2, pp)
	fmt.Printf("  cycle time 1/X      %10.1f cycles (W + 2So: conservation)\n", res.CycleTime)
	fmt.Printf("  request latency     %10.1f cycles (2St + queueing)\n", res.Latency)
	fmt.Printf("  outstanding/thread  %10.2f\n", res.Outstanding)
	fmt.Printf("  handler load        %10.3f\n", res.HandlerUtil)
	return nil
}

func runMultithreaded(p, t int, w, st, so, c2 float64) error {
	res, err := repro.Multithreaded(repro.Params{P: p, W: w, St: st, So: so, C2: c2}, t)
	if err != nil {
		return err
	}
	fmt.Printf("LoPC multithreaded prediction (P=%d, T=%d, W=%g, St=%g, So=%g, C2=%g)\n",
		p, t, w, st, so, c2)
	fmt.Printf("  node cycle rate     %10.6f cycles^-1 (bound %0.6f)\n", res.XNode, res.Bound)
	fmt.Printf("  per-thread cycle    %10.1f cycles\n", res.CycleTime)
	fmt.Printf("  handler response    %10.1f cycles\n", res.Rh)
	fmt.Printf("  CPU utilization     %10.3f (handlers %0.3f)\n", res.CPUUtil, res.HandlerUtil)
	fmt.Printf("  knee (threads T*)   %10.2f\n", res.SaturationThreads)
	return nil
}

// Command lopc-sweep runs the all-to-all calibration microbenchmark
// sweep on the simulated machine and emits CSV rows (W,R,Rq) that
// lopc-fit consumes — the two tools compose into the measure-then-fit
// workflow:
//
//	lopc-sweep -P 32 -St 40 -So 200 > sweep.csv
//	lopc-fit   -csv sweep.csv -P 32
//
// On a real machine the sweep column would come from hardware; here the
// simulator plays the machine, exactly as it does throughout this
// reproduction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		p      = flag.Int("P", 32, "number of processors")
		st     = flag.Float64("St", 40, "network latency per trip (cycles)")
		so     = flag.Float64("So", 200, "handler cost (cycles)")
		c2     = flag.Float64("C2", 0, "handler-time SCV")
		ws     = flag.String("W", "0,64,256,1024,4096", "comma-separated work settings to sweep")
		cycles = flag.Int("cycles", 1500, "measured cycles per thread per point")
		warmup = flag.Int("warmup", 300, "warmup cycles per thread")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Println("W,R,Rq")
	for _, field := range strings.Split(*ws, ",") {
		w, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopc-sweep: bad W value %q: %v\n", field, err)
			os.Exit(1)
		}
		sim, err := repro.SimulateAllToAll(repro.SimAllToAllConfig{
			P:             *p,
			Work:          repro.Deterministic(w),
			Latency:       repro.Deterministic(*st),
			Service:       repro.FromMeanSCV(*so, *c2),
			WarmupCycles:  *warmup,
			MeasureCycles: *cycles,
			Seed:          *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lopc-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("%g,%.4f,%.4f\n", w, sim.R.Mean(), sim.Rq.Mean())
	}
}

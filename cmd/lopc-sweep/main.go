// Command lopc-sweep runs the all-to-all calibration microbenchmark
// sweep on the simulated machine and emits CSV rows (W,R,Rq) that
// lopc-fit consumes — the two tools compose into the measure-then-fit
// workflow:
//
//	lopc-sweep -P 32 -St 40 -So 200 > sweep.csv
//	lopc-fit   -csv sweep.csv -P 32
//
// On a real machine the sweep column would come from hardware; here the
// simulator plays the machine, exactly as it does throughout this
// reproduction.
//
// Sweep points run in parallel under -j (default GOMAXPROCS); each
// point is an independent simulation, and with -reps each replication
// derives its seed from (seed, replication index), so the CSV is
// byte-identical for every -j value. With -reps > 1 two extra columns
// report 95% confidence half-widths over the replications.
//
// Two observability flags ride along: -jobtrace FILE writes one
// Chrome-trace span per sweep point (open in Perfetto to see the -j
// fan-out), and -convtrace FILE records the AMVA model's convergence
// at every swept W — the solves run sequentially in point order after
// the simulation sweep, so the trace is identical for every -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the sweep CLI with the given arguments and streams,
// returning the process exit code. It is the whole tool minus os.Exit,
// so tests can drive it end-to-end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "alltoall", "workload to sweep: alltoall, lock, or lockfree")
		p        = fs.Int("P", 32, "number of processors (alltoall)")
		ts       = fs.String("T", "1,2,4,8,16,32", "comma-separated thread counts to sweep (lock/lockfree)")
		st       = fs.Float64("St", 40, "network latency per trip (cycles); lock handoff / lock-free commit cost")
		so       = fs.Float64("So", 200, "handler cost (cycles); lock critical section / lock-free retry round")
		c2       = fs.Float64("C2", 0, "handler-time SCV (critical-section / retry-round SCV for lock scenarios)")
		ws       = fs.String("W", "0,64,256,1024,4096", "comma-separated work settings to sweep (single value for lock/lockfree; default 800)")
		cycles   = fs.Int("cycles", 1500, "measured cycles per thread per point")
		warmup   = fs.Int("warmup", 300, "warmup cycles per thread")
		seed     = fs.Uint64("seed", 1, "random seed")
		jobs     = fs.Int("j", 0, "max concurrent sweep points (0 = GOMAXPROCS); never changes output")
		reps     = fs.Int("reps", 1, "independent replications per point (means + 95% CI columns)")
		progress = fs.Bool("progress", false, "report progress (done/total, elapsed, ETA) on stderr")
		jobtrace = fs.String("jobtrace", "", "write a Chrome-trace span per sweep point to this file (view in Perfetto)")
		convtr   = fs.String("convtrace", "", "write AMVA convergence traces for the swept points to this file (.csv, else JSON)")
		ver      = version.AddFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-sweep"))
		return 0
	}

	wSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "W" {
			wSet = true
		}
	})
	var works []float64
	for _, field := range strings.Split(*ws, ",") {
		w, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			fmt.Fprintf(stderr, "lopc-sweep: bad W value %q: %v\n", field, err)
			return 1
		}
		works = append(works, w)
	}
	if *reps < 1 {
		fmt.Fprintf(stderr, "lopc-sweep: -reps must be >= 1, got %d\n", *reps)
		return 1
	}

	switch *scenario {
	case "alltoall":
	case "lock", "lockfree":
		// Lock scenarios sweep thread counts at one work setting: the
		// W axis collapses to a single value (default 800 cycles when
		// -W is not given, since the alltoall default is a list).
		if !wSet {
			works = []float64{800}
		}
		if len(works) != 1 {
			fmt.Fprintf(stderr, "lopc-sweep: -scenario %s sweeps -T and takes a single -W, got %d values\n", *scenario, len(works))
			return 1
		}
		var threads []int
		for _, field := range strings.Split(*ts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || n < 1 {
				fmt.Fprintf(stderr, "lopc-sweep: bad T value %q\n", field)
				return 1
			}
			threads = append(threads, n)
		}
		return runContention(contentionSweep{
			scenario: *scenario,
			threads:  threads,
			w:        works[0], st: *st, so: *so, c2: *c2,
			cycles: *cycles, warmup: *warmup,
			seed: *seed, jobs: *jobs, reps: *reps,
			progress: *progress, jobtrace: *jobtrace, convtrace: *convtr,
		}, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "lopc-sweep: unknown -scenario %q (want alltoall, lock, or lockfree)\n", *scenario)
		return 1
	}

	cfgAt := func(w float64) repro.SimAllToAllConfig {
		return repro.SimAllToAllConfig{
			P:             *p,
			Work:          repro.Deterministic(w),
			Latency:       repro.Deterministic(*st),
			Service:       repro.FromMeanSCV(*so, *c2),
			WarmupCycles:  *warmup,
			MeasureCycles: *cycles,
			Seed:          *seed,
		}
	}
	opts := repro.ParallelOptions{Jobs: *jobs, Label: "sweep"}
	if *progress {
		opts.Progress = stderr
	}
	var spans *trace.Spans
	if *jobtrace != "" {
		spans = trace.NewSpans(nil)
		opts.Spans = spans
	}

	// One row per point, computed in parallel and emitted in sweep
	// order. Replications fan out inside each point as well, so -j
	// bounds point-level concurrency and replication seeds stay a pure
	// function of (seed, replication index).
	type row struct {
		r, rq         float64
		rCI95, rqCI95 float64
	}
	rows, err := repro.RunParallel(len(works), opts, func(i int) (row, error) {
		if *reps == 1 {
			sim, err := repro.SimulateAllToAll(cfgAt(works[i]))
			if err != nil {
				return row{}, err
			}
			return row{r: sim.R.Mean(), rq: sim.Rq.Mean()}, nil
		}
		agg, err := repro.SimulateAllToAllN(cfgAt(works[i]), *reps, 1)
		if err != nil {
			return row{}, err
		}
		return row{
			r: agg.R.Mean(), rq: agg.Rq.Mean(),
			rCI95: agg.R.HalfWidth95(), rqCI95: agg.Rq.HalfWidth95(),
		}, nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "lopc-sweep:", err)
		return 1
	}

	if *reps == 1 {
		fmt.Fprintln(stdout, "W,R,Rq")
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%g,%.4f,%.4f\n", works[i], rw.r, rw.rq)
		}
	} else {
		fmt.Fprintln(stdout, "W,R,Rq,R_ci95,Rq_ci95")
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%g,%.4f,%.4f,%.4f,%.4f\n", works[i], rw.r, rw.rq, rw.rCI95, rw.rqCI95)
		}
	}

	if spans != nil {
		if err := spans.WriteFile(*jobtrace); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
		fmt.Fprintf(stderr, "lopc-sweep: wrote %d job span(s) to %s\n", spans.Len(), *jobtrace)
	}
	if *convtr != "" {
		if err := writeConvTrace(*convtr, works, *p, *st, *so, *c2, stderr); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
	}
	return 0
}

// contentionSweep is a parsed lock/lockfree sweep request.
type contentionSweep struct {
	scenario       string
	threads        []int
	w, st, so, c2  float64
	cycles, warmup int
	seed           uint64
	jobs, reps     int
	progress       bool
	jobtrace       string
	convtrace      string
}

// runContention sweeps thread counts through the simulated lock or
// CAS-retry workload and emits CSV rows (T,X,...). The -cycles and
// -warmup flags keep their per-thread-cycle meaning: the measurement
// window is cycles x the uncontended cycle time, so each point sees on
// the order of cycles completions per thread regardless of parameters.
func runContention(c contentionSweep, stdout, stderr io.Writer) int {
	est := c.w + 2*c.st + c.so // uncontended lock cycle
	if c.scenario == "lockfree" {
		est = c.w + c.so + c.st // work + one clean round + commit
	}
	warmupTime := float64(c.warmup) * est
	measureTime := float64(c.cycles) * est

	opts := repro.ParallelOptions{Jobs: c.jobs, Label: "sweep"}
	if c.progress {
		opts.Progress = stderr
	}
	var spans *trace.Spans
	if c.jobtrace != "" {
		spans = trace.NewSpans(nil)
		opts.Spans = spans
	}

	// One simulated point at a given thread count and seed. The lock
	// scenario reports the critical-section residence Rs in column 4;
	// the lock-free scenario reports the conflict fraction.
	point := func(n int, seed uint64) (x, r, extra float64, err error) {
		if c.scenario == "lock" {
			sim, err := repro.SimulateLock(repro.SimLockConfig{
				Threads:    n,
				Work:       repro.Deterministic(c.w),
				Handoff:    repro.Deterministic(c.st),
				Critical:   repro.FromMeanSCV(c.so, c.c2),
				WarmupTime: warmupTime, MeasureTime: measureTime,
				Seed: seed,
			})
			if err != nil {
				return 0, 0, 0, err
			}
			return sim.X, sim.R.Mean(), sim.Rs.Mean(), nil
		}
		sim, err := repro.SimulateLockFree(repro.SimLockFreeConfig{
			Threads:    n,
			Work:       repro.Deterministic(c.w),
			Round:      repro.FromMeanSCV(c.so, c.c2),
			Serial:     repro.Deterministic(c.st),
			WarmupTime: warmupTime, MeasureTime: measureTime,
			Seed: seed,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		return sim.X, sim.R.Mean(), sim.Conflict, nil
	}

	type row struct {
		x, r, extra, xCI95 float64
	}
	rows, err := repro.RunParallel(len(c.threads), opts, func(i int) (row, error) {
		if c.reps == 1 {
			x, r, extra, err := point(c.threads[i], c.seed)
			return row{x: x, r: r, extra: extra}, err
		}
		// Replication seeds are a pure function of (root seed, rep
		// index), so the CSV is identical for every -j.
		var xs, rs, extras stats.Tally
		for rep := 0; rep < c.reps; rep++ {
			x, r, extra, err := point(c.threads[i], rng.SeedAt(c.seed, uint64(rep)))
			if err != nil {
				return row{}, err
			}
			xs.Add(x)
			rs.Add(r)
			extras.Add(extra)
		}
		return row{x: xs.Mean(), r: rs.Mean(), extra: extras.Mean(), xCI95: xs.HalfWidth95()}, nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "lopc-sweep:", err)
		return 1
	}

	extraCol := "Rs"
	if c.scenario == "lockfree" {
		extraCol = "Conflict"
	}
	if c.reps == 1 {
		fmt.Fprintf(stdout, "T,X,R,%s\n", extraCol)
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%d,%.6g,%.4f,%.4f\n", c.threads[i], rw.x, rw.r, rw.extra)
		}
	} else {
		fmt.Fprintf(stdout, "T,X,R,%s,X_ci95\n", extraCol)
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%d,%.6g,%.4f,%.4f,%.3g\n", c.threads[i], rw.x, rw.r, rw.extra, rw.xCI95)
		}
	}

	if spans != nil {
		if err := spans.WriteFile(c.jobtrace); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
		fmt.Fprintf(stderr, "lopc-sweep: wrote %d job span(s) to %s\n", spans.Len(), c.jobtrace)
	}
	if c.convtrace != "" {
		if err := writeContentionConvTrace(c, stderr); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
	}
	return 0
}

// writeContentionConvTrace solves the contention model at every swept
// thread count with a convergence recorder attached, mirroring the
// all-to-all -convtrace behaviour: sequential, in point order,
// independent of -j.
func writeContentionConvTrace(c contentionSweep, stderr io.Writer) error {
	rec := obs.NewConvRecorder(len(c.threads), nil, nil)
	for _, n := range c.threads {
		var err error
		if c.scenario == "lock" {
			_, err = core.LockObserved(core.LockParams{Threads: n, W: c.w, St: c.st, So: c.so, C2: c.c2}, rec)
		} else {
			_, err = core.LockFreeObserved(core.LockFreeParams{Threads: n, W: c.w, St: c.st, So: c.so, C2: c.c2}, rec)
		}
		if err != nil {
			fmt.Fprintf(stderr, "lopc-sweep: convtrace: model solve at T=%d: %v\n", n, err)
		}
	}
	if err := rec.WriteFile(c.convtrace); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "lopc-sweep: wrote %d convergence trace(s) to %s\n", rec.Total(), c.convtrace)
	return nil
}

// writeConvTrace solves the AMVA all-to-all model at every swept work
// setting, recording each fixed point's convergence (iterations, final
// residual, guard trips, wall time), and writes the trace ring to path.
// The solves run sequentially in point order — independent of -j — so
// trace sequence numbers always match CSV row order. Points the model
// has no feasible solution for are recorded with their error rather
// than aborting the trace.
func writeConvTrace(path string, works []float64, p int, st, so, c2 float64, stderr io.Writer) error {
	rec := obs.NewConvRecorder(len(works), nil, nil)
	for _, w := range works {
		params := core.Params{P: p, W: w, St: st, So: so, C2: c2}
		if _, err := core.AllToAllObserved(params, rec); err != nil {
			fmt.Fprintf(stderr, "lopc-sweep: convtrace: model solve at W=%g: %v\n", w, err)
		}
	}
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "lopc-sweep: wrote %d convergence trace(s) to %s\n", rec.Total(), path)
	return nil
}

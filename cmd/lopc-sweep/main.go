// Command lopc-sweep runs the all-to-all calibration microbenchmark
// sweep on the simulated machine and emits CSV rows (W,R,Rq) that
// lopc-fit consumes — the two tools compose into the measure-then-fit
// workflow:
//
//	lopc-sweep -P 32 -St 40 -So 200 > sweep.csv
//	lopc-fit   -csv sweep.csv -P 32
//
// On a real machine the sweep column would come from hardware; here the
// simulator plays the machine, exactly as it does throughout this
// reproduction.
//
// Sweep points run in parallel under -j (default GOMAXPROCS); each
// point is an independent simulation, and with -reps each replication
// derives its seed from (seed, replication index), so the CSV is
// byte-identical for every -j value. With -reps > 1 two extra columns
// report 95% confidence half-widths over the replications.
//
// Two observability flags ride along: -jobtrace FILE writes one
// Chrome-trace span per sweep point (open in Perfetto to see the -j
// fan-out), and -convtrace FILE records the AMVA model's convergence
// at every swept W — the solves run sequentially in point order after
// the simulation sweep, so the trace is identical for every -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the sweep CLI with the given arguments and streams,
// returning the process exit code. It is the whole tool minus os.Exit,
// so tests can drive it end-to-end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lopc-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		p        = fs.Int("P", 32, "number of processors")
		st       = fs.Float64("St", 40, "network latency per trip (cycles)")
		so       = fs.Float64("So", 200, "handler cost (cycles)")
		c2       = fs.Float64("C2", 0, "handler-time SCV")
		ws       = fs.String("W", "0,64,256,1024,4096", "comma-separated work settings to sweep")
		cycles   = fs.Int("cycles", 1500, "measured cycles per thread per point")
		warmup   = fs.Int("warmup", 300, "warmup cycles per thread")
		seed     = fs.Uint64("seed", 1, "random seed")
		jobs     = fs.Int("j", 0, "max concurrent sweep points (0 = GOMAXPROCS); never changes output")
		reps     = fs.Int("reps", 1, "independent replications per point (means + 95% CI columns)")
		progress = fs.Bool("progress", false, "report progress (done/total, elapsed, ETA) on stderr")
		jobtrace = fs.String("jobtrace", "", "write a Chrome-trace span per sweep point to this file (view in Perfetto)")
		convtr   = fs.String("convtrace", "", "write AMVA convergence traces for the swept points to this file (.csv, else JSON)")
		ver      = version.AddFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, version.String("lopc-sweep"))
		return 0
	}

	var works []float64
	for _, field := range strings.Split(*ws, ",") {
		w, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			fmt.Fprintf(stderr, "lopc-sweep: bad W value %q: %v\n", field, err)
			return 1
		}
		works = append(works, w)
	}
	if *reps < 1 {
		fmt.Fprintf(stderr, "lopc-sweep: -reps must be >= 1, got %d\n", *reps)
		return 1
	}

	cfgAt := func(w float64) repro.SimAllToAllConfig {
		return repro.SimAllToAllConfig{
			P:             *p,
			Work:          repro.Deterministic(w),
			Latency:       repro.Deterministic(*st),
			Service:       repro.FromMeanSCV(*so, *c2),
			WarmupCycles:  *warmup,
			MeasureCycles: *cycles,
			Seed:          *seed,
		}
	}
	opts := repro.ParallelOptions{Jobs: *jobs, Label: "sweep"}
	if *progress {
		opts.Progress = stderr
	}
	var spans *trace.Spans
	if *jobtrace != "" {
		spans = trace.NewSpans(nil)
		opts.Spans = spans
	}

	// One row per point, computed in parallel and emitted in sweep
	// order. Replications fan out inside each point as well, so -j
	// bounds point-level concurrency and replication seeds stay a pure
	// function of (seed, replication index).
	type row struct {
		r, rq         float64
		rCI95, rqCI95 float64
	}
	rows, err := repro.RunParallel(len(works), opts, func(i int) (row, error) {
		if *reps == 1 {
			sim, err := repro.SimulateAllToAll(cfgAt(works[i]))
			if err != nil {
				return row{}, err
			}
			return row{r: sim.R.Mean(), rq: sim.Rq.Mean()}, nil
		}
		agg, err := repro.SimulateAllToAllN(cfgAt(works[i]), *reps, 1)
		if err != nil {
			return row{}, err
		}
		return row{
			r: agg.R.Mean(), rq: agg.Rq.Mean(),
			rCI95: agg.R.HalfWidth95(), rqCI95: agg.Rq.HalfWidth95(),
		}, nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "lopc-sweep:", err)
		return 1
	}

	if *reps == 1 {
		fmt.Fprintln(stdout, "W,R,Rq")
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%g,%.4f,%.4f\n", works[i], rw.r, rw.rq)
		}
	} else {
		fmt.Fprintln(stdout, "W,R,Rq,R_ci95,Rq_ci95")
		for i, rw := range rows {
			fmt.Fprintf(stdout, "%g,%.4f,%.4f,%.4f,%.4f\n", works[i], rw.r, rw.rq, rw.rCI95, rw.rqCI95)
		}
	}

	if spans != nil {
		if err := spans.WriteFile(*jobtrace); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
		fmt.Fprintf(stderr, "lopc-sweep: wrote %d job span(s) to %s\n", spans.Len(), *jobtrace)
	}
	if *convtr != "" {
		if err := writeConvTrace(*convtr, works, *p, *st, *so, *c2, stderr); err != nil {
			fmt.Fprintln(stderr, "lopc-sweep:", err)
			return 1
		}
	}
	return 0
}

// writeConvTrace solves the AMVA all-to-all model at every swept work
// setting, recording each fixed point's convergence (iterations, final
// residual, guard trips, wall time), and writes the trace ring to path.
// The solves run sequentially in point order — independent of -j — so
// trace sequence numbers always match CSV row order. Points the model
// has no feasible solution for are recorded with their error rather
// than aborting the trace.
func writeConvTrace(path string, works []float64, p int, st, so, c2 float64, stderr io.Writer) error {
	rec := obs.NewConvRecorder(len(works), nil, nil)
	for _, w := range works {
		params := core.Params{P: p, W: w, St: st, So: so, C2: c2}
		if _, err := core.AllToAllObserved(params, rec); err != nil {
			fmt.Fprintf(stderr, "lopc-sweep: convtrace: model solve at W=%g: %v\n", w, err)
		}
	}
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "lopc-sweep: wrote %d convergence trace(s) to %s\n", rec.Total(), path)
	return nil
}

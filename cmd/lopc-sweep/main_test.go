package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// goldenArgs is the pinned sweep configuration shared with
// cmd/lopc-fit's golden test, which consumes the CSV this produces.
var goldenArgs = []string{"-P", "16", "-W", "0,64,256,1024", "-cycles", "200", "-warmup", "50", "-seed", "1"}

func runSweep(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// TestSweepGolden pins the CSV the documented measure-then-fit
// composition starts from. If this changes intentionally, regenerate
// testdata/sweep_golden.csv and cmd/lopc-fit's fit_golden.txt together.
func TestSweepGolden(t *testing.T) {
	got := runSweep(t, goldenArgs...)
	want, err := os.ReadFile(filepath.Join("testdata", "sweep_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("sweep CSV drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSweepDeterministicAcrossJobs: -j 4 must emit byte-identical CSV
// to -j 1, with and without replications — the engine's guarantee at
// the CLI boundary.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	seq := runSweep(t, append([]string{"-j", "1"}, goldenArgs...)...)
	par := runSweep(t, append([]string{"-j", "4"}, goldenArgs...)...)
	if seq != par {
		t.Errorf("-j 4 CSV differs from -j 1:\n--- j1 ---\n%s--- j4 ---\n%s", seq, par)
	}

	seqR := runSweep(t, append([]string{"-j", "1", "-reps", "3"}, goldenArgs...)...)
	parR := runSweep(t, append([]string{"-j", "4", "-reps", "3"}, goldenArgs...)...)
	if seqR != parR {
		t.Errorf("-reps 3 CSV differs between -j 1 and -j 4:\n--- j1 ---\n%s--- j4 ---\n%s", seqR, parR)
	}
	if seqR == seq {
		t.Error("-reps 3 output identical to -reps 1; replications are not happening")
	}
}

// TestSweepRepsHeader: replication mode adds the CI columns while
// keeping the W,R,Rq prefix lopc-fit parses.
func TestSweepRepsHeader(t *testing.T) {
	out := runSweep(t, append([]string{"-reps", "2"}, goldenArgs...)...)
	if want := "W,R,Rq,R_ci95,Rq_ci95\n"; out[:len(want)] != want {
		t.Errorf("replication header = %q, want %q", out[:len(want)], want)
	}
}

// Pinned contention-sweep configurations for the golden and
// determinism tests below.
var (
	lockArgs     = []string{"-scenario", "lock", "-T", "1,2,4,8,16", "-St", "20", "-So", "100", "-C2", "1", "-cycles", "300", "-warmup", "60", "-seed", "7"}
	lockFreeArgs = []string{"-scenario", "lockfree", "-T", "1,2,4,8,16", "-W", "400", "-St", "5", "-So", "60", "-C2", "1", "-cycles", "300", "-warmup", "60", "-seed", "7"}
)

// TestSweepContentionGolden pins the lock and lock-free scenario CSVs.
func TestSweepContentionGolden(t *testing.T) {
	for _, c := range []struct {
		golden string
		args   []string
	}{
		{"sweep_lock_golden.csv", lockArgs},
		{"sweep_lockfree_golden.csv", lockFreeArgs},
	} {
		got := runSweep(t, c.args...)
		want, err := os.ReadFile(filepath.Join("testdata", c.golden))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", c.golden, got, want)
		}
	}
}

// TestSweepContentionDeterministicAcrossJobs: the new scenarios keep
// the engine's guarantee — -j 8 emits byte-identical CSV to -j 1, with
// and without replications.
func TestSweepContentionDeterministicAcrossJobs(t *testing.T) {
	for _, base := range [][]string{lockArgs, lockFreeArgs} {
		seq := runSweep(t, append([]string{"-j", "1"}, base...)...)
		par := runSweep(t, append([]string{"-j", "8"}, base...)...)
		if seq != par {
			t.Errorf("%v: -j 8 CSV differs from -j 1:\n--- j1 ---\n%s--- j8 ---\n%s", base[1], seq, par)
		}
		seqR := runSweep(t, append([]string{"-j", "1", "-reps", "3"}, base...)...)
		parR := runSweep(t, append([]string{"-j", "8", "-reps", "3"}, base...)...)
		if seqR != parR {
			t.Errorf("%v: -reps 3 CSV differs between -j 1 and -j 8", base[1])
		}
		if seqR == seq {
			t.Errorf("%v: -reps 3 output identical to -reps 1", base[1])
		}
	}
}

// TestSweepContentionConvTrace: -convtrace on a lock scenario records
// one solve per thread count under the scenario's solver name, with
// iteration counts matching the solver's own metadata.
func TestSweepContentionConvTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.json")
	runSweep(t, append([]string{"-convtrace", path}, lockArgs...)...)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading convtrace: %v", err)
	}
	var doc struct {
		Total  int `json:"total"`
		Traces []struct {
			Solver    string `json:"solver"`
			Iters     int    `json:"iters"`
			Converged bool   `json:"converged"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("convtrace is not valid JSON: %v\n%s", err, data)
	}
	threads := []int{1, 2, 4, 8, 16} // lockArgs' -T list
	if doc.Total != len(threads) || len(doc.Traces) != len(threads) {
		t.Fatalf("convtrace holds %d traces (total %d), want %d", len(doc.Traces), doc.Total, len(threads))
	}
	for i, tr := range doc.Traces {
		res, err := core.Lock(core.LockParams{Threads: threads[i], W: 800, St: 20, So: 100, C2: 1})
		if err != nil {
			t.Fatalf("reference solve at T=%d: %v", threads[i], err)
		}
		if tr.Solver != "lock" {
			t.Errorf("trace %d: solver = %q, want lock", i, tr.Solver)
		}
		if tr.Iters != res.Solve.Iters || !tr.Converged {
			t.Errorf("T=%d: trace iters=%d converged=%v, solver metadata iters=%d", threads[i], tr.Iters, tr.Converged, res.Solve.Iters)
		}
	}
}

// TestSweepScenarioBadInput: scenario-specific flag errors exit
// nonzero without touching stdout.
func TestSweepScenarioBadInput(t *testing.T) {
	cases := [][]string{
		{"-scenario", "mutex"},
		{"-scenario", "lock", "-T", "0"},
		{"-scenario", "lock", "-T", "1,x"},
		{"-scenario", "lockfree", "-W", "100,200"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("run(%v) accepted", args)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v) wrote to stdout: %q", args, stdout.String())
		}
	}
}

// TestSweepBadInput: flag and value errors exit nonzero without
// touching stdout.
func TestSweepBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-W", "nope"}, &stdout, &stderr); code == 0 {
		t.Error("bad -W accepted")
	}
	if stdout.Len() != 0 {
		t.Errorf("bad -W wrote to stdout: %q", stdout.String())
	}
	if code := run([]string{"-reps", "0"}, &stdout, &stderr); code == 0 {
		t.Error("-reps 0 accepted")
	}
}

// TestSweepConvTrace: -convtrace records one AMVA solve per swept W,
// and each trace's iteration count matches the iteration metadata the
// solver itself returns for that point — the trace is the solver's own
// account, not a parallel bookkeeping that can drift.
func TestSweepConvTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.json")
	runSweep(t, append([]string{"-convtrace", path}, goldenArgs...)...)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading convtrace: %v", err)
	}
	var doc struct {
		Total  int `json:"total"`
		Traces []struct {
			Seq       int     `json:"seq"`
			Solver    string  `json:"solver"`
			Iters     int     `json:"iters"`
			Residual  float64 `json:"residual"`
			Converged bool    `json:"converged"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("convtrace is not valid JSON: %v\n%s", err, data)
	}
	works := []float64{0, 64, 256, 1024} // goldenArgs' -W list
	if doc.Total != len(works) || len(doc.Traces) != len(works) {
		t.Fatalf("convtrace holds %d traces (total %d), want %d", len(doc.Traces), doc.Total, len(works))
	}
	for i, tr := range doc.Traces {
		res, err := core.AllToAll(core.Params{P: 16, W: works[i], St: 40, So: 200})
		if err != nil {
			t.Fatalf("reference solve at W=%g: %v", works[i], err)
		}
		if tr.Solver != "alltoall" {
			t.Errorf("trace %d: solver = %q, want alltoall", i, tr.Solver)
		}
		if tr.Iters != res.Solve.Iters {
			t.Errorf("W=%g: trace iters = %d, solver metadata says %d", works[i], tr.Iters, res.Solve.Iters)
		}
		if !tr.Converged || !res.Solve.Converged {
			t.Errorf("W=%g: converged trace=%v solver=%v, want both true", works[i], tr.Converged, res.Solve.Converged)
		}
	}
}

// TestSweepJobTrace: -jobtrace writes a Chrome trace with one complete
// slice per sweep point, named after the point index.
func TestSweepJobTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	runSweep(t, append([]string{"-jobtrace", path, "-j", "2"}, goldenArgs...)...)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading jobtrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("jobtrace is not valid trace JSON: %v", err)
	}
	names := map[string]bool{}
	slices := 0
	for _, e := range events {
		if e["ph"] == "X" {
			slices++
			if n, ok := e["name"].(string); ok {
				names[n] = true
			}
		}
	}
	if slices != 4 {
		t.Errorf("jobtrace has %d slices, want one per sweep point (4)", slices)
	}
	for i := 0; i < 4; i++ {
		if want := fmt.Sprintf("sweep #%d", i); !names[want] {
			t.Errorf("jobtrace missing slice %q (have %v)", want, names)
		}
	}
}

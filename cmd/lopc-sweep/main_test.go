package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenArgs is the pinned sweep configuration shared with
// cmd/lopc-fit's golden test, which consumes the CSV this produces.
var goldenArgs = []string{"-P", "16", "-W", "0,64,256,1024", "-cycles", "200", "-warmup", "50", "-seed", "1"}

func runSweep(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// TestSweepGolden pins the CSV the documented measure-then-fit
// composition starts from. If this changes intentionally, regenerate
// testdata/sweep_golden.csv and cmd/lopc-fit's fit_golden.txt together.
func TestSweepGolden(t *testing.T) {
	got := runSweep(t, goldenArgs...)
	want, err := os.ReadFile(filepath.Join("testdata", "sweep_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("sweep CSV drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSweepDeterministicAcrossJobs: -j 4 must emit byte-identical CSV
// to -j 1, with and without replications — the engine's guarantee at
// the CLI boundary.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	seq := runSweep(t, append([]string{"-j", "1"}, goldenArgs...)...)
	par := runSweep(t, append([]string{"-j", "4"}, goldenArgs...)...)
	if seq != par {
		t.Errorf("-j 4 CSV differs from -j 1:\n--- j1 ---\n%s--- j4 ---\n%s", seq, par)
	}

	seqR := runSweep(t, append([]string{"-j", "1", "-reps", "3"}, goldenArgs...)...)
	parR := runSweep(t, append([]string{"-j", "4", "-reps", "3"}, goldenArgs...)...)
	if seqR != parR {
		t.Errorf("-reps 3 CSV differs between -j 1 and -j 4:\n--- j1 ---\n%s--- j4 ---\n%s", seqR, parR)
	}
	if seqR == seq {
		t.Error("-reps 3 output identical to -reps 1; replications are not happening")
	}
}

// TestSweepRepsHeader: replication mode adds the CI columns while
// keeping the W,R,Rq prefix lopc-fit parses.
func TestSweepRepsHeader(t *testing.T) {
	out := runSweep(t, append([]string{"-reps", "2"}, goldenArgs...)...)
	if want := "W,R,Rq,R_ci95,Rq_ci95\n"; out[:len(want)] != want {
		t.Errorf("replication header = %q, want %q", out[:len(want)], want)
	}
}

// TestSweepBadInput: flag and value errors exit nonzero without
// touching stdout.
func TestSweepBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-W", "nope"}, &stdout, &stderr); code == 0 {
		t.Error("bad -W accepted")
	}
	if stdout.Len() != 0 {
		t.Errorf("bad -W wrote to stdout: %q", stdout.String())
	}
	if code := run([]string{"-reps", "0"}, &stdout, &stderr); code == 0 {
		t.Error("-reps 0 accepted")
	}
}

// Package repro is LoPC: a library for predicting contention costs in
// fine-grain message-passing parallel algorithms, reproducing Frank,
// "LoPC: Modeling Contention in Parallel Algorithms" (PPoPP 1997).
//
// LoPC extends the LogP machine model with a contention term C computed
// by approximate mean value analysis, using only the LogP parameters:
// network latency St (LogP's L), message-handling overhead So (LogP's
// o), and processor count P, plus the algorithm's mean work between
// blocking requests W and, optionally, the handler-time variability C².
//
// The package exposes three analytic solvers — AllToAll (homogeneous
// irregular communication, Ch. 5), ClientServer (work-pile allocation,
// Ch. 6), and General (arbitrary visit ratios and multi-hop requests,
// App. A) — together with a validated event-driven simulator of the
// active-message machines the model describes (SimulateAllToAll,
// SimulateWorkpile, SimulateMultiHop) and the LogP baseline.
//
// Quick start:
//
//	p := repro.Params{P: 32, W: 1000, St: 40, So: 200, C2: 0}
//	res, err := repro.AllToAll(p)
//	// res.R is the predicted compute/request cycle time including
//	// contention; res.ContentionFree is what naive LogP predicts.
//
// See the examples directory for runnable programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of every
// figure and table in the paper's evaluation.
package repro

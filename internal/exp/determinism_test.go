package exp

import (
	"bytes"
	"testing"
)

// renderAll renders a report's text form plus every table's CSV — the
// complete externally visible output of an experiment.
func renderAll(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tab := range rep.Tables {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestExperimentsDeterministicAcrossJobs: for every registered
// experiment, the full rendered report (text and CSV) at Jobs=8 must be
// byte-identical to Jobs=1. This is the engine's contract — worker
// count changes wall-clock time, never results — asserted over every
// parallelized experiment path.
func TestExperimentsDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			seq, err := r.Run(Config{Seed: 1, Quick: true, Jobs: 1})
			if err != nil {
				t.Fatalf("jobs=1: %v", err)
			}
			par, err := r.Run(Config{Seed: 1, Quick: true, Jobs: 8})
			if err != nil {
				t.Fatalf("jobs=8: %v", err)
			}
			a, b := renderAll(t, seq), renderAll(t, par)
			if !bytes.Equal(a, b) {
				t.Errorf("report bytes differ between -j 1 and -j 8\n--- j1 ---\n%s\n--- j8 ---\n%s", a, b)
			}
		})
	}
}

// TestPointsHelperPropagatesErrors: a failing point aborts the
// experiment with the lowest-indexed error, matching sequential
// behavior.
func TestPointsHelperPropagatesErrors(t *testing.T) {
	_, err := points(Config{Jobs: 8}, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, errTest
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("points swallowed the error")
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

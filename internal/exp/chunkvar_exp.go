package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "chunkvar",
		Title: "Extension X8: chunk-size variability does not move the work-pile optimum (a structural model claim)",
		Run:   runChunkVar,
	})
}

// runChunkVar probes a structural property of the Chapter 6 model: the
// client side of the work-pile enters the equations only through its
// mean W (clients suffer no queueing at their own nodes, and Bard's
// arrival theorem uses means), so the predicted throughput and optimal
// allocation are invariant to the chunk-size *distribution* — the
// paper's own motivation says chunk sizes are "highly variable", and
// the model shrugs. The simulation checks this from deterministic
// chunks through exponential to genuinely heavy-tailed Lomax.
func runChunkVar(cfg Config) (*Report, error) {
	warm, measure := cfg.window()
	base := core.ClientServerParams{P: figP, Ps: 1, W: fig62W, St: figSt, So: fig62So, C2: 0}
	opt, err := core.OptimalServersInt(base)
	if err != nil {
		return nil, err
	}
	model := func(ps int) (core.ClientServerResult, error) {
		p := base
		p.Ps = ps
		return core.ClientServer(p)
	}

	chunkDists := []struct {
		name string
		d    dist.Distribution
	}{
		{"deterministic (C²=0)", dist.NewDeterministic(fig62W)},
		{"uniform [0,2W]", dist.NewUniform(0, 2*fig62W)},
		{"exponential (C²=1)", dist.NewExponential(fig62W)},
		{"lognormal (C²=4)", dist.NewLognormalMeanSCV(fig62W, 4)},
		{"Lomax (C²=6)", dist.NewLomaxMeanSCV(fig62W, 6)},
	}
	if cfg.Quick {
		chunkDists = chunkDists[:3]
	}

	tab := &Table{
		Title: fmt.Sprintf("Work-pile throughput at the optimum (Ps=%d) and off-optimum, by chunk distribution (mean W=%g)", opt, fig62W),
		Columns: []string{"chunk distribution", "X at opt (sim)", "model X", "err",
			fmt.Sprintf("X at Ps=%d (sim)", opt+6), "model X", "err"},
	}
	for _, cd := range chunkDists {
		row := []string{cd.name}
		for _, ps := range []int{opt, opt + 6} {
			sim, err := workload.RunWorkpile(workload.WorkpileConfig{
				P: figP, Ps: ps,
				Chunk:      cd.d,
				Latency:    dist.NewDeterministic(figSt),
				Service:    dist.NewDeterministic(fig62So),
				WarmupTime: warm, MeasureTime: measure,
				Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			m, err := model(ps)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.5f", sim.X), fmt.Sprintf("%.5f", m.X),
				Pct(stats.RelErr(m.X, sim.X)))
		}
		tab.AddRow(row...)
	}
	tab.Notes = append(tab.Notes,
		"the model row is identical down the column: only the mean chunk size enters the equations",
		"simulated throughput stays within a few percent across C² from 0 to 6 — the structural",
		"claim holds; the heavy-tail run drifts most because its time-average converges slowest")
	return &Report{Name: "chunkvar", Title: registry["chunkvar"].Title, Tables: []*Table{tab}}, nil
}

package exp

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "exchange",
		Title: "Extension X6: scheduled all-to-all exchange — schedule decay and barrier resynchronization (Ch. 1's CM-5 story)",
		Run:   runExchange,
	})
}

// runExchange reproduces the introduction's narrative: the carefully
// staggered all-to-all personalized exchange of Brewer & Kuszmaul is
// contention-free only while the nodes stay synchronized; handler-time
// variability decays it toward random arrivals, and barriers restore
// the schedule at their own cost.
func runExchange(cfg Config) (*Report, error) {
	const (
		p = 32
		o = 25.0
		h = 20.0
	)
	rounds := 30
	if cfg.Quick {
		rounds = 10
	}
	run := func(c2 float64, barrier bool) (workload.ExchangeResult, error) {
		return workload.RunExchange(workload.ExchangeConfig{
			P: p, Rounds: rounds,
			SendOverhead: o,
			Latency:      dist.NewDeterministic(figSt),
			Handler:      dist.FromMeanSCV(h, c2),
			Barrier:      barrier,
			Seed:         cfg.Seed,
		})
	}

	tab := &Table{
		Title:   fmt.Sprintf("Per-round cost of a scheduled exchange, P=%d, o=%g, h=%g, St=%g (steady-state mean)", p, o, h, figSt),
		Columns: []string{"C2", "LogP sched", "round (no bar)", "data (no bar)", "round (bar)", "data (bar)", "bar cost"},
	}
	tail := rounds / 3
	for _, c2 := range []float64{0, 0.5, 1, 2} {
		noBar, err := run(c2, false)
		if err != nil {
			return nil, err
		}
		withBar, err := run(c2, true)
		if err != nil {
			return nil, err
		}
		tab.AddRow(F(c2), F(noBar.SchedulePerRound),
			F(noBar.MeanRoundTime(tail, rounds)), F(noBar.MeanDataTime(tail, rounds)),
			F(withBar.MeanRoundTime(tail, rounds)), F(withBar.MeanDataTime(tail, rounds)),
			F(withBar.BarrierPerRound))
	}
	tab.Notes = append(tab.Notes,
		"even at C²=0 the interrupt-driven machine runs above the LogP (polling) schedule:",
		"arriving handlers preempt the send loop — interference LogP does not model",
		"as C² grows the unsynchronized data phase decays; barriers keep it tight but cost",
		fmt.Sprintf("~%.0f cycles/round themselves — the Ch. 1 argument that cheap hardware barriers are rare", 5*(o+figSt+h)))

	// Round-by-round decay at C² = 1 for the plot.
	noBar, err := run(1, false)
	if err != nil {
		return nil, err
	}
	withBar, err := run(1, true)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, rounds)
	for r := range xs {
		xs[r] = float64(r + 1)
	}
	plot := &Plot{
		Title:  "Exchange round times, C²=1 (data phase only)",
		XLabel: "round", YLabel: "cycles",
	}
	plot.Add("no barrier", xs, noBar.DataTime, 'o')
	plot.Add("with barrier", xs, withBar.DataTime, '*')
	sched := make([]float64, rounds)
	for r := range sched {
		sched[r] = noBar.SchedulePerRound
	}
	plot.Add("LogP schedule", xs, sched, '.')

	return &Report{
		Name:   "exchange",
		Title:  registry["exchange"].Title,
		Tables: []*Table{tab},
		Plots:  []*Plot{plot},
	}, nil
}

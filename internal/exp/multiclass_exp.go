package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mva"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "multiclass",
		Title: "Extension X7: heterogeneous client classes — general LoPC vs multiclass MVA vs simulation",
		Run:   runMulticlass,
	})
}

// runMulticlass cross-validates three independent solution paths on a
// work-pile with two client classes (light chunks and heavy chunks):
//
//   - the general LoPC model (Appendix A) with per-thread W,
//   - multiclass MVA (exact, and Bard's approximation — the machinery
//     of the Bard paper the model cites), and
//   - the event-driven simulation.
//
// Handler service is exponential so the exact multiclass MVA's
// product-form assumptions hold and it can serve as ground truth.
func runMulticlass(cfg Config) (*Report, error) {
	const (
		p      = 32
		wLight = 800.0
		wHeavy = 2400.0
		so     = 131.0
	)
	warm, measure := cfg.window()
	tab := &Table{
		Title:   fmt.Sprintf("Two-class work-pile (W=%g and %g, exponential; So=%g exp; St=%g): per-class throughput", wLight, wHeavy, so, figSt),
		Columns: []string{"Ps", "class", "sim X", "general X", "gen err", "exact MVA", "exact err", "Bard MVA", "Bard err"},
	}
	pss := []int{2, 4, 8}
	if cfg.Quick {
		pss = []int{4}
	}
	for _, ps := range pss {
		pc := p - ps
		nLight := pc / 2
		nHeavy := pc - nLight

		// Simulation: first nLight clients are light, rest heavy.
		perClient := make([]dist.Distribution, pc)
		for i := 0; i < pc; i++ {
			if i < nLight {
				perClient[i] = dist.NewExponential(wLight)
			} else {
				perClient[i] = dist.NewExponential(wHeavy)
			}
		}
		sim, err := workload.RunWorkpile(workload.WorkpileConfig{
			P: p, Ps: ps,
			Chunk:          dist.NewExponential(wLight), // unused default
			PerClientChunk: perClient,
			Latency:        dist.NewDeterministic(figSt),
			Service:        dist.NewExponential(so),
			WarmupTime:     warm, MeasureTime: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		simX := [2]float64{}
		for i, n := range sim.ChunksByClient {
			cls := 0
			if i >= nLight {
				cls = 1
			}
			simX[cls] += float64(n) / measure
		}

		// General LoPC (Appendix A) with per-thread W.
		ws := make([]float64, p)
		for i := 0; i < pc; i++ {
			if i < nLight {
				ws[i] = wLight
			} else {
				ws[i] = wHeavy
			}
		}
		gen, err := core.General(core.GeneralParams{
			P: p, W: ws, V: core.ClientServerVisits(pc, ps),
			St: figSt, So: []float64{so}, C2: 1,
		})
		if err != nil {
			return nil, err
		}
		genX := [2]float64{}
		for i := 0; i < pc; i++ {
			cls := 0
			if i >= nLight {
				cls = 1
			}
			genX[cls] += gen.X[i]
		}

		// Multiclass MVA.
		mp, err := mva.MultiWorkpileNetwork([]int{nLight, nHeavy}, ps, []float64{wLight, wHeavy}, figSt, so)
		if err != nil {
			return nil, err
		}
		exact, err := mva.MultiExact(mp)
		if err != nil {
			return nil, err
		}
		bard, err := mva.MultiBard(mp)
		if err != nil {
			return nil, err
		}
		// MultiResult.X[c] is already the class-aggregate throughput
		// (N_c customers cycling).
		exactX := [2]float64{exact.X[0], exact.X[1]}
		bardX := [2]float64{bard.X[0], bard.X[1]}

		for cls, name := range []string{"light", "heavy"} {
			tab.AddRow(fmt.Sprintf("%d", ps), name,
				fmt.Sprintf("%.5f", simX[cls]),
				fmt.Sprintf("%.5f", genX[cls]), Pct(stats.RelErr(genX[cls], simX[cls])),
				fmt.Sprintf("%.5f", exactX[cls]), Pct(stats.RelErr(exactX[cls], simX[cls])),
				fmt.Sprintf("%.5f", bardX[cls]), Pct(stats.RelErr(bardX[cls], simX[cls])))
		}
	}
	tab.Notes = append(tab.Notes,
		"three independent routes to the same numbers: the paper's AMVA with per-thread",
		"parameters (App. A), classical multiclass MVA (Bard 1979), and the simulator;",
		"the general LoPC model handles heterogeneity the closed forms of Ch. 6 cannot",
		"the 'general' and 'Bard MVA' columns coincide digit for digit: on client-server",
		"patterns the Appendix A equations ARE multiclass Bard MVA — the lineage the paper",
		"cites made concrete")

	return &Report{
		Name:   "multiclass",
		Title:  registry["multiclass"].Title,
		Tables: []*Table{tab},
	}, nil
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "fig62",
		Title: "Figure 6-2: work-pile throughput vs server count (P=32, So=131) with Eq. 6.8 optimum",
		Run:   runFig62,
	})
}

// Figure 6-2 constants. The paper states only the handler time (131
// cycles); the mean chunk size is not recoverable from the text, so
// W=1500 with exponentially distributed chunks is used (documented in
// DESIGN.md) — work-piles exist precisely because chunk sizes are
// highly variable.
const (
	fig62So = 131.0
	fig62W  = 1500.0
)

func runFig62(cfg Config) (*Report, error) {
	warm, measure := cfg.window()
	tab := &Table{
		Title:   "Work-pile throughput (chunks/cycle) vs servers, P=32, So=131, W=1500 (exp), C²=0, St=40",
		Columns: []string{"Ps", "sim X", "LoPC X", "err", "server bnd", "client bnd", "sim Qs", "mod Qs", "sim Us"},
	}
	plot := &Plot{
		Title:  "Fig 6-2: throughput vs number of servers",
		XLabel: "servers", YLabel: "X",
	}
	var pss, simY, modY, sbY, cbY []float64
	bestSimPs, bestSimX := 0, -1.0
	step := 1
	if cfg.Quick {
		step = 3
	}
	var serverCounts []int
	for ps := 1; ps < figP; ps += step {
		serverCounts = append(serverCounts, ps)
	}
	type fig62Point struct {
		model          core.ClientServerResult
		sim            workload.WorkpileResult
		server, client float64
	}
	pts, err := points(cfg, len(serverCounts), func(i int) (fig62Point, error) {
		ps := serverCounts[i]
		csp := core.ClientServerParams{P: figP, Ps: ps, W: fig62W, St: figSt, So: fig62So, C2: 0}
		model, err := core.ClientServer(csp)
		if err != nil {
			return fig62Point{}, err
		}
		sim, err := workload.RunWorkpile(workload.WorkpileConfig{
			P: figP, Ps: ps,
			Chunk:      dist.NewExponential(fig62W),
			Latency:    dist.NewDeterministic(figSt),
			Service:    dist.NewDeterministic(fig62So),
			WarmupTime: warm, MeasureTime: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return fig62Point{}, err
		}
		server, client := core.ClientServerBounds(csp)
		return fig62Point{model, sim, server, client}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		ps, model, sim := serverCounts[i], pt.model, pt.sim
		tab.AddRow(fmt.Sprintf("%d", ps),
			fmt.Sprintf("%.5f", sim.X), fmt.Sprintf("%.5f", model.X),
			Pct(stats.RelErr(model.X, sim.X)),
			fmt.Sprintf("%.5f", pt.server), fmt.Sprintf("%.5f", pt.client),
			fmt.Sprintf("%.3f", sim.Qs), fmt.Sprintf("%.3f", model.Qs),
			fmt.Sprintf("%.3f", sim.Us))
		pss = append(pss, float64(ps))
		simY = append(simY, sim.X)
		modY = append(modY, model.X)
		sbY = append(sbY, pt.server)
		cbY = append(cbY, pt.client)
		if sim.X > bestSimX {
			bestSimPs, bestSimX = ps, sim.X
		}
	}
	plot.Add("sim", pss, simY, 'o')
	plot.Add("LoPC", pss, modY, '*')
	plot.Add("server bound", pss, sbY, '.')
	plot.Add("client bound", pss, cbY, ',')

	base := core.ClientServerParams{P: figP, Ps: 1, W: fig62W, St: figSt, So: fig62So, C2: 0}
	optReal := core.OptimalServers(base)
	optInt, err := core.OptimalServersInt(base)
	if err != nil {
		return nil, err
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("Eq. 6.8 optimal servers: %.2f (integral best %d); simulated argmax: %d", optReal, optInt, bestSimPs),
		fmt.Sprintf("closed-form peak throughput: %.5f; simulated peak: %.5f", core.PeakThroughput(base), bestSimX),
		"paper: LoPC conservative by at most 3%; bounds tight only where parallelism is poor")

	return &Report{
		Name:   "fig62",
		Title:  registry["fig62"].Title,
		Tables: []*Table{tab},
		Plots:  []*Plot{plot},
	}, nil
}

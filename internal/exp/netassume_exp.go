package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "netassume",
		Title: "Ablation A3: the Ch. 2 network simplifications — link serialization and finite NI queues",
		Run:   runNetAssume,
	})
}

// runNetAssume actively relaxes the two simplifications the paper makes
// in Chapter 2 — a contention-free interconnect and unbounded hardware
// FIFOs — and measures when each starts to matter, quantifying the
// paper's claim that "these assumptions don't affect our results for
// short messages and low-cost handlers".
func runNetAssume(cfg Config) (*Report, error) {
	warm, measure := cfg.cycles()
	model, err := core.AllToAll(core.Params{P: figP, W: 512, St: figSt, So: 200, C2: 0})
	if err != nil {
		return nil, err
	}

	// Part 1: link serialization. Each message occupies its (src, dst)
	// link for `occ` cycles; 0 is the paper's network. For short
	// messages occ << So and the effect should vanish.
	link := &Table{
		Title:   "All-to-all R vs per-link message occupancy (W=512, So=200, St=40, P=32)",
		Columns: []string{"link occupancy", "sim R", "vs occ=0", "LoPC(St)", "LoPC(St+occ)", "err vs St+occ"},
	}
	occs := []float64{0, 10, 50, 100, 200, 400}
	if cfg.Quick {
		occs = []float64{0, 50, 200}
	}
	var baseR float64
	for occI, occ := range occs {
		sim, err := workload.RunAllToAll(workload.AllToAllConfig{
			P:             figP,
			Work:          dist.NewDeterministic(512),
			Latency:       dist.NewDeterministic(figSt),
			Service:       dist.NewDeterministic(200),
			WarmupCycles:  warm,
			MeasureCycles: measure,
			LinkOccupancy: occ,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		if occI == 0 {
			baseR = sim.R.Mean()
		}
		// Occupancy adds to every trip whether or not links queue, so
		// fold it into the wire time and let the model absorb it: if
		// the residual error stays small, links are effectively
		// contention-free — the Ch. 2 assumption survives.
		folded, err := core.AllToAll(core.Params{P: figP, W: 512, St: figSt + occ, So: 200, C2: 0})
		if err != nil {
			return nil, err
		}
		link.AddRow(F(occ), F(sim.R.Mean()),
			Pct(stats.RelErr(sim.R.Mean(), baseR)),
			F(model.R), F(folded.R),
			Pct(stats.RelErr(folded.R, sim.R.Mean())))
	}
	link.Notes = append(link.Notes,
		"occupancy lengthens every trip (a bandwidth term, like LogP's g) but uniform random",
		"destinations keep per-link queueing negligible: folding occupancy into St restores the",
		"model to a few percent — the network stays effectively contention-free (Ch. 2's claim)")

	// Part 2: finite NI queues with NACK/retry, at the deepest-queue
	// operating point (W = 0).
	fifo := &Table{
		Title:   "All-to-all at W=0 vs NI queue capacity (NACK + 100-cycle retry)",
		Columns: []string{"capacity", "sim R", "vs unbounded", "NACKs/cycle"},
	}
	caps := []int{0, 16, 8, 4, 2}
	if cfg.Quick {
		caps = []int{0, 4}
	}
	var unboundedR float64
	for _, qc := range caps {
		sim, err := workload.RunAllToAll(workload.AllToAllConfig{
			P:             figP,
			Work:          dist.NewDeterministic(0),
			Latency:       dist.NewDeterministic(figSt),
			Service:       dist.NewDeterministic(200),
			WarmupCycles:  warm,
			MeasureCycles: measure,
			NIQueueCap:    qc,
			RetryDelay:    100,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		if qc == 0 {
			unboundedR = sim.R.Mean()
		}
		name := fmt.Sprintf("%d", qc)
		if qc == 0 {
			name = "unbounded"
		}
		fifo.AddRow(name, F(sim.R.Mean()),
			Pct(stats.RelErr(sim.R.Mean(), unboundedR)),
			fmt.Sprintf("%.4f", float64(sim.Nacks)/float64(sim.R.N())))
	}
	fifo.Notes = append(fifo.Notes,
		"an Alewife-class queue (~a dozen messages) never NACKs even at W=0; and because the",
		"requesting thread is blocked anyway, even aggressive caps barely move R for blocking",
		"patterns — the retry latency hides behind the wait the model already accounts for")

	return &Report{
		Name:   "netassume",
		Title:  registry["netassume"].Title,
		Tables: []*Table{link, fifo},
	}, nil
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "threads",
		Title: "Extension X10: multithreaded nodes — latency tolerance beyond the one-thread-per-node model",
		Run:   runThreads,
	})
}

// runThreads relaxes the paper's one-thread-per-node assumption: each
// node runs T contexts that switch on miss, the latency-tolerance
// design of the Alewife machine itself. Throughput climbs until the
// processor-time conservation bound 1/(W+2So) — the same ceiling as
// the non-blocking extension, reached here with blocking requests and
// enough contexts.
func runThreads(cfg Config) (*Report, error) {
	warm, measure := cfg.cycles()
	tab := &Table{
		Title:   "Node cycle rate vs threads per node, all-to-all P=32, So=200, St=40, C²=0",
		Columns: []string{"W", "T", "sim XNode", "model XNode", "err", "bound", "sim/bound", "knee T*"},
	}
	plot := &Plot{
		Title:  "Latency tolerance: node throughput vs contexts",
		XLabel: "threads per node", YLabel: "XNode",
	}
	ws := []float64{256, 1024}
	ts := []int{1, 2, 3, 4, 6, 8}
	if cfg.Quick {
		ws = []float64{512}
		ts = []int{1, 2, 4}
	}
	for _, w := range ws {
		var xs, simY, modY []float64
		for _, tc := range ts {
			sim, err := workload.RunMultithread(workload.MultithreadConfig{
				P: figP, T: tc,
				Work:         dist.NewDeterministic(w),
				Latency:      dist.NewDeterministic(figSt),
				Service:      dist.NewDeterministic(200),
				WarmupCycles: warm, MeasureCycles: measure,
				Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			model, err := core.Multithreaded(core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}, tc)
			if err != nil {
				return nil, err
			}
			tab.AddRow(F(w), fmt.Sprintf("%d", tc),
				fmt.Sprintf("%.6f", sim.XNode), fmt.Sprintf("%.6f", model.XNode),
				Pct(stats.RelErr(model.XNode, sim.XNode)),
				fmt.Sprintf("%.6f", model.Bound),
				fmt.Sprintf("%.3f", sim.XNode/model.Bound),
				fmt.Sprintf("%.2f", model.SaturationThreads))
			xs = append(xs, float64(tc))
			simY = append(simY, sim.XNode)
			modY = append(modY, model.XNode)
		}
		plot.Add(fmt.Sprintf("sim W=%g", w), xs, simY, 0)
		plot.Add(fmt.Sprintf("model W=%g", w), xs, modY, 0)
	}
	tab.Notes = append(tab.Notes,
		"T* = R(1)/(W+2So): contexts needed to hide the round trip; past it the CPU never",
		"idles and throughput pins to the conservation bound — blocking requests with enough",
		"threads match the non-blocking extension's ceiling, the Alewife latency-tolerance story",
		"the model composes pieces already validated here: the merged handler queue (X4),",
		"exact MVA over the per-node closed network (A1), and the shadow-server CPU account")

	return &Report{
		Name:   "threads",
		Title:  registry["threads"].Title,
		Tables: []*Table{tab},
		Plots:  []*Plot{plot},
	}, nil
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mva"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "ablation",
		Title: "Ablation: the paper's approximation choices (BKT vs shadow server; Bard vs Schweitzer vs exact MVA)",
		Run:   runAblation,
	})
}

// runAblation quantifies what the paper's two modelling shortcuts cost:
//
//  1. §5.1 uses the BKT preempt-resume priority approximation for Rw
//     "because, for our purposes, it is more accurate than the simpler
//     shadow server approximation". Table 1 measures both against the
//     simulator.
//  2. §4 adopts Bard's approximation to the arrival theorem to avoid
//     the exact MVA recursion on population. Table 2 solves the
//     work-pile network exactly, with Schweitzer's correction, and with
//     Bard's (the paper's equations), against the simulator.
func runAblation(cfg Config) (*Report, error) {
	bkt := &Table{
		Title:   "Priority approximation for Rw: BKT (paper) vs shadow server, all-to-all So=200, C²=0, P=32",
		Columns: []string{"W", "sim Rw", "BKT Rw", "BKT err", "shadow Rw", "shadow err", "sim R", "BKT R err", "shadow R err"},
	}
	ws := []float64{2, 16, 64, 256, 1024}
	if cfg.Quick {
		ws = []float64{16, 256}
	}
	for _, w := range ws {
		pB := core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}
		pS := pB
		pS.Priority = core.ShadowServer
		mB, err := core.AllToAll(pB)
		if err != nil {
			return nil, err
		}
		mS, err := core.AllToAll(pS)
		if err != nil {
			return nil, err
		}
		sim, err := simAllToAll(cfg, w, 200, 0, false)
		if err != nil {
			return nil, err
		}
		bkt.AddRow(F(w),
			F(sim.Rw.Mean()), F(mB.Rw), Pct(stats.RelErr(mB.Rw, sim.Rw.Mean())),
			F(mS.Rw), Pct(stats.RelErr(mS.Rw, sim.Rw.Mean())),
			F(sim.R.Mean()),
			Pct(stats.RelErr(mB.R, sim.R.Mean())), Pct(stats.RelErr(mS.R, sim.R.Mean())))
	}
	bkt.Notes = append(bkt.Notes,
		"the shadow server drops the So·Qq term: handlers already queued when the thread",
		"becomes ready are free under it, so it under-predicts Rw — the inaccuracy that",
		"made the paper choose BKT")

	arrival := &Table{
		Title:   "Arrival-theorem approximation: Bard (paper) vs Schweitzer vs exact MVA, work-pile P=32, So=131, W=1500, exponential handlers",
		Columns: []string{"Ps", "sim X", "Bard X", "Bard err", "Schweitzer X", "Schw err", "exact X", "exact err"},
	}
	warm, measure := cfg.window()
	pss := []int{1, 2, 3, 5, 9, 16, 24}
	if cfg.Quick {
		pss = []int{2, 5, 16}
	}
	for _, ps := range pss {
		pc := figP - ps
		// Exponential handler service so the exact MVA's product-form
		// assumptions hold and all four columns share one ground truth.
		sim, err := workload.RunWorkpile(workload.WorkpileConfig{
			P: figP, Ps: ps,
			Chunk:      dist.NewExponential(fig62W),
			Latency:    dist.NewDeterministic(figSt),
			Service:    dist.NewExponential(fig62So),
			WarmupTime: warm, MeasureTime: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		bardRes, err := core.ClientServer(core.ClientServerParams{
			P: figP, Ps: ps, W: fig62W, St: figSt, So: fig62So, C2: 1,
		})
		if err != nil {
			return nil, err
		}
		net := mva.WorkpileNetwork(pc, ps, fig62W, figSt, fig62So)
		schw, err := mva.Schweitzer(net, pc)
		if err != nil {
			return nil, err
		}
		exact, err := mva.Exact(net, pc)
		if err != nil {
			return nil, err
		}
		arrival.AddRow(fmt.Sprintf("%d", ps),
			fmt.Sprintf("%.5f", sim.X),
			fmt.Sprintf("%.5f", bardRes.X), Pct(stats.RelErr(bardRes.X, sim.X)),
			fmt.Sprintf("%.5f", schw.X), Pct(stats.RelErr(schw.X, sim.X)),
			fmt.Sprintf("%.5f", exact.X), Pct(stats.RelErr(exact.X, sim.X)))
	}
	arrival.Notes = append(arrival.Notes,
		"Bard is uniformly conservative (arriving requests count themselves in the queue);",
		"exact MVA nails the product-form network; Schweitzer sits between — but only Bard",
		"yields the paper's closed forms (Eqs. 6.6 and 6.8)")

	return &Report{
		Name:   "ablation",
		Title:  registry["ablation"].Title,
		Tables: []*Table{bkt, arrival},
	}, nil
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "sharedmem",
		Title: "Extension X1: protocol-processor (shared-memory) variant — occupancy × latency study (Holt et al. style)",
		Run:   runSharedMem,
	})
	register(Runner{
		Name:  "multihop",
		Title: "Extension X2: multi-hop requests against the general (Appendix A) model",
		Run:   runMultiHop,
	})
	register(Runner{
		Name:  "hotspot",
		Title: "Extension X3: non-homogeneous (hotspot) traffic against the general model",
		Run:   runHotspot,
	})
}

// runSharedMem reproduces the Chapter 5 "Modeling Shared Memory"
// variant: handlers on a protocol processor never preempt the thread.
// The sweep over handler occupancy and network latency mirrors the
// Holt et al. controller study the paper cites as motivation.
func runSharedMem(cfg Config) (*Report, error) {
	tab := &Table{
		Title:   "Interrupt model vs protocol processor, all-to-all, W=500, C²=0, P=32",
		Columns: []string{"So", "St", "sim int", "mod int", "sim PP", "mod PP", "PP speedup", "int err", "PP err"},
	}
	sos := []float64{64, 128, 256, 512}
	sts := []float64{10, 100}
	if cfg.Quick {
		sos = []float64{128, 512}
		sts = []float64{40}
	}
	for _, so := range sos {
		for _, st := range sts {
			pInt := core.Params{P: figP, W: 500, St: st, So: so, C2: 0}
			pPP := pInt
			pPP.ProtocolProcessor = true
			modInt, err := core.AllToAll(pInt)
			if err != nil {
				return nil, err
			}
			modPP, err := core.AllToAll(pPP)
			if err != nil {
				return nil, err
			}
			warm, measure := cfg.cycles()
			run := func(pp bool) (workload.AllToAllResult, error) {
				return workload.RunAllToAll(workload.AllToAllConfig{
					P:                 figP,
					Work:              dist.NewDeterministic(500),
					Latency:           dist.NewDeterministic(st),
					Service:           dist.NewDeterministic(so),
					WarmupCycles:      warm,
					MeasureCycles:     measure,
					ProtocolProcessor: pp,
					Seed:              cfg.Seed,
				})
			}
			simInt, err := run(false)
			if err != nil {
				return nil, err
			}
			simPP, err := run(true)
			if err != nil {
				return nil, err
			}
			tab.AddRow(F(so), F(st),
				F(simInt.R.Mean()), F(modInt.R),
				F(simPP.R.Mean()), F(modPP.R),
				fmt.Sprintf("%.3f", simInt.R.Mean()/simPP.R.Mean()),
				Pct(stats.RelErr(modInt.R, simInt.R.Mean())),
				Pct(stats.RelErr(modPP.R, simPP.R.Mean())))
		}
	}
	tab.Notes = append(tab.Notes,
		"PP speedup grows with handler occupancy: protocol hardware removes thread preemption (Rw = W)",
		"Holt et al. found controller occupancy dominates; the same trend appears in the So column")
	return &Report{Name: "sharedmem", Title: registry["sharedmem"].Title, Tables: []*Table{tab}}, nil
}

func runMultiHop(cfg Config) (*Report, error) {
	warm, measure := cfg.cycles()
	tab := &Table{
		Title:   "Multi-hop all-to-all, P=16, W=1000, So=150, C²=0, St=40",
		Columns: []string{"hops", "sim R", "general R", "err", "sim Rq/hop", "model Rq", "CF R"},
	}
	ws := make([]float64, 16)
	for i := range ws {
		ws[i] = 1000
	}
	for hops := 1; hops <= 4; hops++ {
		sim, err := workload.RunMultiHop(workload.MultiHopConfig{
			P: 16, Hops: hops,
			Work:         dist.NewDeterministic(1000),
			Latency:      dist.NewDeterministic(figSt),
			Service:      dist.NewDeterministic(150),
			WarmupCycles: warm, MeasureCycles: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		model, err := core.General(core.GeneralParams{
			P: 16, W: ws, V: core.MultiHopVisits(16, hops),
			St: figSt, So: []float64{150}, C2: 0,
		})
		if err != nil {
			return nil, err
		}
		h := float64(hops)
		cf := 1000 + (h+1)*figSt + (h+1)*150
		tab.AddRow(fmt.Sprintf("%d", hops),
			F(sim.R.Mean()), F(model.R[0]), Pct(stats.RelErr(model.R[0], sim.R.Mean())),
			F(sim.RqPerHop.Mean()), F(model.Rq[0]), F(cf))
	}
	tab.Notes = append(tab.Notes,
		"the general model spreads hop visits uniformly from the originator's viewpoint; the simulator forwards from the current holder")
	return &Report{Name: "multihop", Title: registry["multihop"].Title, Tables: []*Table{tab}}, nil
}

func runHotspot(cfg Config) (*Report, error) {
	warm, measure := cfg.cycles()
	const (
		p  = 16
		w  = 512.0
		so = 200.0
	)
	tab := &Table{
		Title:   "Hotspot traffic (node 0 hot), P=16, W=512, So=200, C²=0, St=40",
		Columns: []string{"bias", "sim R", "general R", "err", "sim Rq", "model Rq(hot)", "model Rq(cold)"},
	}
	ws := make([]float64, p)
	for i := range ws {
		ws[i] = w
	}
	for _, bias := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		sim, err := workload.RunAllToAll(workload.AllToAllConfig{
			P:            p,
			Work:         dist.NewDeterministic(w),
			Latency:      dist.NewDeterministic(figSt),
			Service:      dist.NewDeterministic(so),
			Pattern:      workload.HotspotPattern{Hot: 0, Bias: bias},
			WarmupCycles: warm, MeasureCycles: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		model, err := core.General(core.GeneralParams{
			P: p, W: ws, V: workload.HotspotVisits(p, 0, bias),
			St: figSt, So: []float64{so}, C2: 0,
		})
		if err != nil {
			return nil, err
		}
		// Model R averaged over all threads, matching the simulator's
		// all-cycle mean. (Threads differ: the hot thread's own cycles
		// are cheaper since its requests avoid the hot queue.)
		allR := 0.0
		for c := 0; c < p; c++ {
			allR += model.R[c]
		}
		allR /= float64(p)
		tab.AddRow(fmt.Sprintf("%.2f", bias),
			F(sim.R.Mean()), F(allR), Pct(stats.RelErr(allR, sim.R.Mean())),
			F(sim.Rq.Mean()), F(model.Rq[0]), F(model.Rq[1]))
	}
	tab.Notes = append(tab.Notes,
		"bias = fraction of each cold node's requests aimed at node 0",
		"the hot node's request-handler response grows with bias while cold nodes' shrink",
		"accuracy degrades as the hot node saturates: Bard's approximation counts the arriving",
		"request in the queue it sees, which overestimates badly at high utilization — the same",
		"regime where Holt et al. saw up to 35% error and abandoned their queueing model (Ch. 1)")
	return &Report{Name: "hotspot", Title: registry["hotspot"].Title, Tables: []*Table{tab}}, nil
}

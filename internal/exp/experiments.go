package exp

import (
	"fmt"
	"sort"

	"repro/internal/runner"
)

// Config tunes an experiment run.
type Config struct {
	// Seed roots every simulation in the experiment.
	Seed uint64
	// Quick shrinks simulation lengths about fivefold, for benchmarks
	// and smoke tests; published numbers should use Quick = false.
	Quick bool
	// Jobs bounds how many independent sweep points an experiment
	// simulates concurrently; values <= 0 mean sequential. Every point
	// is a pure function of (Config, point index), so Jobs changes
	// wall-clock time only — reports are byte-identical at any value.
	Jobs int
}

// points runs compute(0) … compute(n-1) — one independent sweep point
// each — with the experiment's configured concurrency and returns the
// results in point order. Experiments compute their points through this
// helper and then render tables and plots sequentially from the
// returned slice, which keeps report bytes independent of Jobs.
func points[T any](cfg Config, n int, compute func(i int) (T, error)) ([]T, error) {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	return runner.Map(n, runner.Options{Jobs: jobs}, compute)
}

// cycles returns the per-thread warmup and measurement cycle counts for
// cycle-driven workloads.
func (c Config) cycles() (warm, measure int) {
	if c.Quick {
		return 100, 300
	}
	return 300, 1500
}

// window returns the warmup and measurement windows for time-driven
// workloads.
func (c Config) window() (warm, measure float64) {
	if c.Quick {
		return 50_000, 300_000
	}
	return 100_000, 1_500_000
}

// The machine constants shared by the paper's figures. The paper's text
// does not state the network latency used in its plots; St = 40 cycles
// is an Alewife-scale value and the figure shapes do not depend on it
// (documented in DESIGN.md).
const (
	figP  = 32
	figSt = 40.0
)

// Runner is one registered experiment.
type Runner struct {
	// Name is the registry key (the paper's figure/table id).
	Name string
	// Title describes what is reproduced.
	Title string
	// Run executes the experiment.
	Run func(Config) (*Report, error)
}

var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", r.Name))
	}
	registry[r.Name] = r
}

// Get returns the experiment registered under name.
func Get(name string) (Runner, bool) {
	r, ok := registry[name]
	return r, ok
}

// All returns every registered experiment, sorted by name.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, r := range registry {
		//lopc:allow nondeterminism collection order is normalized by the sort below
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "topology",
		Title: "Assumption check A4: St as the *average* wire time — per-pair mesh latencies vs the uniform model (Table 3.1)",
		Run:   runTopology,
	})
}

// TorusLatency returns the per-pair wire time on a side×side 2D torus
// with the given per-hop cost: Manhattan distance with wraparound.
func TorusLatency(side int, perHop float64) func(src, dst int) float64 {
	hop := func(a, b int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if w := side - d; w < d {
			d = w
		}
		return d
	}
	return func(src, dst int) float64 {
		sx, sy := src%side, src/side
		dx, dy := dst%side, dst/side
		return perHop * float64(hop(sx, dx)+hop(sy, dy))
	}
}

// MeanPairLatency averages a pair-latency function over all ordered
// pairs of distinct nodes — the `St` a LoPC analysis of the topology
// would use (Table 3.1: "average wire time").
func MeanPairLatency(p int, lat func(src, dst int) float64) float64 {
	sum, n := 0.0, 0
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d {
				sum += lat(s, d)
				n++
			}
		}
	}
	return sum / float64(n)
}

// runTopology simulates the all-to-all pattern on a 2D torus whose wire
// times vary per pair from perHop to 2·side·perHop, and asks whether
// the single-parameter model with St = mean wire time still predicts —
// validating Table 3.1's definition of St as an average.
func runTopology(cfg Config) (*Report, error) {
	const side = 6 // 36 nodes
	p := side * side
	warm, measure := cfg.cycles()

	tab := &Table{
		Title:   fmt.Sprintf("2D %d×%d torus wire times vs the uniform-St model (So=200, C²=0)", side, side),
		Columns: []string{"per-hop", "mean St", "max St", "W", "sim R", "LoPC(mean St)", "err"},
	}
	hops := []float64{10, 40}
	if cfg.Quick {
		hops = []float64{20}
	}
	for _, perHop := range hops {
		lat := TorusLatency(side, perHop)
		meanSt := MeanPairLatency(p, lat)
		maxSt := 0.0
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				if s != d {
					maxSt = math.Max(maxSt, lat(s, d))
				}
			}
		}
		for _, w := range []float64{64, 512, 2048} {
			sim, err := workload.RunAllToAll(workload.AllToAllConfig{
				P:             p,
				Work:          dist.NewDeterministic(w),
				Latency:       dist.NewDeterministic(meanSt), // documents the machine; unused with PairLatency
				Service:       dist.NewDeterministic(200),
				WarmupCycles:  warm,
				MeasureCycles: measure,
				PairLatency:   lat,
				Seed:          cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			model, err := core.AllToAll(core.Params{P: p, W: w, St: meanSt, So: 200, C2: 0})
			if err != nil {
				return nil, err
			}
			tab.AddRow(F(perHop), F(meanSt), F(maxSt), F(w),
				F(sim.R.Mean()), F(model.R), Pct(stats.RelErr(model.R, sim.R.Mean())))
		}
	}
	tab.Notes = append(tab.Notes,
		"wire times vary per pair from one hop to a full torus diagonal, yet the single-St",
		"model with St = mean pair latency keeps its usual few-percent pessimism: response",
		"times are linear in the wire term, so only its mean matters — Table 3.1's 'average",
		"wire time (latency)' definition, verified")
	return &Report{Name: "topology", Title: registry["topology"].Title, Tables: []*Table{tab}}, nil
}

package exp

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/logp"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "nonblocking",
		Title: "Extension X4: non-blocking requests (the paper's future work, after Heidelberger & Trivedi)",
		Run:   runNonBlocking,
	})
	register(Runner{
		Name:  "collectives",
		Title: "Extension X5: active-message collectives vs LogP schedules (broadcast, reduce, barrier)",
		Run:   runCollectives,
	})
}

func runNonBlocking(cfg Config) (*Report, error) {
	warm, measure := cfg.cycles()
	tab := &Table{
		Title:   "Non-blocking requests, P=32, So=200, C²=0, St=40",
		Columns: []string{"W", "sim 1/X", "model 1/X", "X err", "sim latency", "model latency", "lat err", "blocking R", "overlap gain"},
	}
	ws := []float64{200, 400, 800, 1600, 3200}
	if cfg.Quick {
		ws = []float64{400, 1600}
	}
	for _, w := range ws {
		sim, err := workload.RunNonBlocking(workload.NonBlockingConfig{
			P:            figP,
			Work:         dist.NewDeterministic(w),
			Latency:      dist.NewDeterministic(figSt),
			Service:      dist.NewDeterministic(200),
			WarmupCycles: warm, MeasureCycles: measure,
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		params := core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}
		model, err := core.NonBlocking(params)
		if err != nil {
			return nil, err
		}
		blocking, err := core.AllToAll(params)
		if err != nil {
			return nil, err
		}
		tab.AddRow(F(w),
			F(1/sim.X), F(model.CycleTime), Pct(stats.RelErr(model.X, sim.X)),
			F(sim.Latency.Mean()), F(model.Latency), Pct(stats.RelErr(model.Latency, sim.Latency.Mean())),
			F(blocking.R), fmt.Sprintf("%.2fx", blocking.R*model.X))
	}
	tab.Notes = append(tab.Notes,
		"1/X = W + 2So exactly: the thread never idles, so queueing moves into request latency, not throughput",
		"overlap gain = blocking cycle time × non-blocking throughput: what hiding the round trip buys",
		"latency prediction is conservative: real arrivals are smoother than the model's Poisson stream")
	return &Report{Name: "nonblocking", Title: registry["nonblocking"].Title, Tables: []*Table{tab}}, nil
}

func runCollectives(cfg Config) (*Report, error) {
	const (
		o = 10.0 // send overhead
		l = 40.0 // latency
		h = 25.0 // handler cost
	)
	bc := &Table{
		Title:   fmt.Sprintf("Broadcast and reduce vs analytical schedules (o=%g, l=%g, h=%g, deterministic)", o, l, h),
		Columns: []string{"P", "bcast sim", "bcast sched", "LogP bcast(o=h)", "reduce sim", "reduce binom", "barrier sim", "barrier model"},
	}
	ps := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		ps = []int{8, 32}
	}
	for _, p := range ps {
		c := am.Config{
			P:            p,
			Latency:      dist.NewDeterministic(l),
			Handler:      dist.NewDeterministic(h),
			SendOverhead: o,
			Seed:         cfg.Seed,
		}
		bres, err := am.Broadcast(c)
		if err != nil {
			return nil, err
		}
		values := make([]float64, p)
		for i := range values {
			values[i] = 1
		}
		rres, err := am.Reduce(c, values)
		if err != nil {
			return nil, err
		}
		//lopc:allow floateq the reduction sums p exact ones; small integers are exact in float64
		if rres.Value != float64(p) {
			return nil, fmt.Errorf("collectives: reduce value %v on %d nodes", rres.Value, p)
		}
		barr, err := am.Barrier(c, 10)
		if err != nil {
			return nil, err
		}
		lgFinish, _, err := logp.Params{L: l, O: h, G: 0, P: p}.Broadcast()
		if err != nil {
			return nil, err
		}
		bc.AddRow(fmt.Sprintf("%d", p),
			F(bres.Finish), F(bres.Predicted), F(lgFinish),
			F(rres.Finish), F(rres.Predicted),
			F(barr.PerBarrier), F(barr.Predicted))
	}
	bc.Notes = append(bc.Notes,
		"with deterministic costs the simulated broadcast equals the greedy schedule exactly",
		"LogP column uses o = h (its single overhead parameter); our machine splits sender and receiver costs")

	varTab := &Table{
		Title:   "Variance penalty: exponential handlers vs deterministic (P=32)",
		Columns: []string{"collective", "deterministic", "exponential (mean)", "penalty"},
	}
	cDet := am.Config{P: 32, Latency: dist.NewDeterministic(l), Handler: dist.NewDeterministic(h), SendOverhead: o, Seed: cfg.Seed}
	cExp := cDet
	cExp.Handler = dist.NewExponential(h)
	bDet, err := am.Broadcast(cDet)
	if err != nil {
		return nil, err
	}
	// Average the randomized collective over several seeds.
	meanOver := func(f func(seed uint64) (float64, error)) (float64, error) {
		trials := 20
		if cfg.Quick {
			trials = 5
		}
		sum := 0.0
		for s := 1; s <= trials; s++ {
			v, err := f(uint64(s))
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum / float64(trials), nil
	}
	bExp, err := meanOver(func(seed uint64) (float64, error) {
		c := cExp
		c.Seed = seed
		r, err := am.Broadcast(c)
		return r.Finish, err
	})
	if err != nil {
		return nil, err
	}
	varTab.AddRow("broadcast", F(bDet.Finish), F(bExp), fmt.Sprintf("%.2fx", bExp/bDet.Finish))
	barDet, err := am.Barrier(cDet, 10)
	if err != nil {
		return nil, err
	}
	barExp, err := meanOver(func(seed uint64) (float64, error) {
		c := cExp
		c.Seed = seed
		r, err := am.Barrier(c, 10)
		return r.PerBarrier, err
	})
	if err != nil {
		return nil, err
	}
	varTab.AddRow("barrier", F(barDet.PerBarrier), F(barExp), fmt.Sprintf("%.2fx", barExp/barDet.PerBarrier))
	varTab.Notes = append(varTab.Notes,
		"each round waits on a max over random handler times, so variance lengthens collectives —",
		"the mechanism by which 'very regular' schedules decayed on the CM-5 (Brewer & Kuszmaul, Ch. 1)")

	return &Report{
		Name:   "collectives",
		Title:  registry["collectives"].Title,
		Tables: []*Table{bc, varTab},
	}, nil
}

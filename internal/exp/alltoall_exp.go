package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Runner{
		Name:  "fig51",
		Title: "Figure 5-1: effect of coefficient of variation on contention (W=1000)",
		Run:   runFig51,
	})
	register(Runner{
		Name:  "fig52",
		Title: "Figure 5-2: all-to-all response time vs work (So=200, C²=0, P=32) with Eq. 5.12 bounds",
		Run:   runFig52,
	})
	register(Runner{
		Name:  "fig53",
		Title: "Figure 5-3: components of contention, 32-node all-to-all (So=200, C²=0)",
		Run:   runFig53,
	})
	register(Runner{
		Name:  "errors",
		Title: "§5.3 error analysis: LoPC vs contention-free model against simulation",
		Run:   runErrors,
	})
}

// fig52Work returns the work sweep of Figures 5-2/5-3: powers of two
// from 2 to 2048.
func fig52Work() []float64 {
	var ws []float64
	for w := 2.0; w <= 2048; w *= 2 {
		ws = append(ws, w)
	}
	return ws
}

// simAllToAll runs the standard Figure 5-2 simulation at one work value.
func simAllToAll(cfg Config, w, so, c2 float64, pp bool) (workload.AllToAllResult, error) {
	return simAllToAllFull(cfg, figP, w, so, c2, pp)
}

// simAllToAllP is simAllToAll with an explicit machine size (interrupt
// mode).
func simAllToAllP(cfg Config, p int, w, so, c2 float64) (workload.AllToAllResult, error) {
	return simAllToAllFull(cfg, p, w, so, c2, false)
}

func simAllToAllFull(cfg Config, p int, w, so, c2 float64, pp bool) (workload.AllToAllResult, error) {
	warm, measure := cfg.cycles()
	return workload.RunAllToAll(workload.AllToAllConfig{
		P:                 p,
		Work:              dist.NewDeterministic(w),
		Latency:           dist.NewDeterministic(figSt),
		Service:           dist.FromMeanSCV(so, c2),
		WarmupCycles:      warm,
		MeasureCycles:     measure,
		ProtocolProcessor: pp,
		Seed:              cfg.Seed,
	})
}

func runFig51(cfg Config) (*Report, error) {
	handlers := []float64{128, 256, 512, 1024}
	var c2s []float64
	for c2 := 0.0; c2 <= 2.0001; c2 += 0.25 {
		c2s = append(c2s, c2)
	}

	cols := []string{"C2"}
	for _, so := range handlers {
		cols = append(cols, fmt.Sprintf("So=%g", so))
	}
	tab := &Table{
		Title:   "Fraction of response time due to contention (model), W=1000, P=32, St=40",
		Columns: cols,
	}
	plot := &Plot{
		Title:  "Fig 5-1: contention fraction vs C² (W=1000)",
		XLabel: "C² (variation)", YLabel: "contention",
	}
	series := make(map[float64][]float64)
	for _, c2 := range c2s {
		row := []string{F(c2)}
		for _, so := range handlers {
			res, err := core.AllToAll(core.Params{P: figP, W: 1000, St: figSt, So: so, C2: c2})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", res.ContentionFraction()))
			series[so] = append(series[so], res.ContentionFraction())
		}
		tab.AddRow(row...)
	}
	for _, so := range handlers {
		plot.Add(fmt.Sprintf("handler %g", so), c2s, series[so], 0)
	}

	// Cross-check a handler size against simulation at four C² values
	// (the paper validates the model only; this is additional evidence).
	simTab := &Table{
		Title:   "Simulation cross-check at So=512 (contention fraction)",
		Columns: []string{"C2", "model", "sim", "diff"},
	}
	checkC2s := []float64{0, 0.5, 1, 2}
	type checkPoint struct {
		modelFrac, simFrac float64
	}
	checks, err := points(cfg, len(checkC2s), func(i int) (checkPoint, error) {
		c2 := checkC2s[i]
		model, err := core.AllToAll(core.Params{P: figP, W: 1000, St: figSt, So: 512, C2: c2})
		if err != nil {
			return checkPoint{}, err
		}
		sim, err := simAllToAll(cfg, 1000, 512, c2, false)
		if err != nil {
			return checkPoint{}, err
		}
		cf := 1000 + 2*figSt + 2*512.0
		return checkPoint{model.ContentionFraction(), (sim.R.Mean() - cf) / sim.R.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range checks {
		simTab.AddRow(F(checkC2s[i]), fmt.Sprintf("%.4f", pt.modelFrac),
			fmt.Sprintf("%.4f", pt.simFrac), Pct(pt.modelFrac-pt.simFrac))
	}
	simTab.Notes = append(simTab.Notes,
		"paper: difference between C²=0 and C²=1 predictions is about 6% of response time")

	return &Report{
		Name:   "fig51",
		Title:  registry["fig51"].Title,
		Tables: []*Table{tab, simTab},
		Plots:  []*Plot{plot},
	}, nil
}

func runFig52(cfg Config) (*Report, error) {
	ws := fig52Work()
	tab := &Table{
		Title:   "All-to-all response time per cycle, So=200, C²=0, P=32, St=40",
		Columns: []string{"W", "sim R", "LoPC R", "lower", "upper", "LoPC err", "CF err"},
	}
	plot := &Plot{
		Title:  "Fig 5-2: response time vs work",
		XLabel: "work (cycles)", YLabel: "R", LogX: true,
	}
	type fig52Point struct {
		model core.AllToAllResult
		simR  float64
	}
	pts, err := points(cfg, len(ws), func(i int) (fig52Point, error) {
		w := ws[i]
		model, err := core.AllToAll(core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0})
		if err != nil {
			return fig52Point{}, err
		}
		sim, err := simAllToAll(cfg, w, 200, 0, false)
		if err != nil {
			return fig52Point{}, err
		}
		return fig52Point{model, sim.R.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	var simY, modY, loY, hiY []float64
	for i, pt := range pts {
		w, model, simR := ws[i], pt.model, pt.simR
		tab.AddRow(F(w), F(simR), F(model.R), F(model.ContentionFree), F(model.UpperBound),
			Pct(stats.RelErr(model.R, simR)), Pct(stats.RelErr(model.ContentionFree, simR)))
		simY = append(simY, simR)
		modY = append(modY, model.R)
		loY = append(loY, model.ContentionFree)
		hiY = append(hiY, model.UpperBound)
	}
	plot.Add("sim", ws, simY, 'o')
	plot.Add("LoPC", ws, modY, '*')
	plot.Add("lower bound", ws, loY, '.')
	plot.Add("upper bound", ws, hiY, '^')
	tab.Notes = append(tab.Notes,
		"lower bound = W + 2St + 2So (contention-free / naive LogP)",
		fmt.Sprintf("upper bound = W + 2St + %.3f·So (Eq. 5.12; paper rounds to 3.46)", core.UpperBoundBeta(0)))

	return &Report{
		Name:   "fig52",
		Title:  registry["fig52"].Title,
		Tables: []*Table{tab},
		Plots:  []*Plot{plot},
	}, nil
}

func runFig53(cfg Config) (*Report, error) {
	ws := fig52Work()
	tab := &Table{
		Title:   "Contention components per cycle (sim | model), So=200, C²=0, P=32",
		Columns: []string{"W", "thread sim", "thread mod", "request sim", "request mod", "reply sim", "reply mod", "total sim", "total mod"},
	}
	plot := &Plot{
		Title:  "Fig 5-3: contention components vs work",
		XLabel: "work (cycles)", YLabel: "cycles", LogX: true,
	}
	type fig53Point struct {
		mTh, mRq, mRy float64
		sTh, sRq, sRy float64
	}
	pts, err := points(cfg, len(ws), func(i int) (fig53Point, error) {
		w := ws[i]
		p := core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}
		model, err := core.AllToAll(p)
		if err != nil {
			return fig53Point{}, err
		}
		mTh, mRq, mRy := model.Components(p)
		sim, err := simAllToAll(cfg, w, 200, 0, false)
		if err != nil {
			return fig53Point{}, err
		}
		return fig53Point{
			mTh: mTh, mRq: mRq, mRy: mRy,
			sTh: sim.Rw.Mean() - w, sRq: sim.Rq.Mean() - 200, sRy: sim.Ry.Mean() - 200,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var thS, thM, rqS, rqM, ryS, ryM []float64
	for i, pt := range pts {
		tab.AddRow(F(ws[i]), F(pt.sTh), F(pt.mTh), F(pt.sRq), F(pt.mRq), F(pt.sRy), F(pt.mRy),
			F(pt.sTh+pt.sRq+pt.sRy), F(pt.mTh+pt.mRq+pt.mRy))
		thS, thM = append(thS, pt.sTh), append(thM, pt.mTh)
		rqS, rqM = append(rqS, pt.sRq), append(rqM, pt.mRq)
		ryS, ryM = append(ryS, pt.sRy), append(ryM, pt.mRy)
	}
	plot.Add("thread sim", ws, thS, 'o')
	plot.Add("thread model", ws, thM, '*')
	plot.Add("request sim", ws, rqS, 'q')
	plot.Add("request model", ws, rqM, '+')
	plot.Add("reply sim", ws, ryS, 'y')
	plot.Add("reply model", ws, ryM, 'x')
	tab.Notes = append(tab.Notes,
		"total contention stays near one handler time (So=200): the paper's rule of thumb")

	return &Report{
		Name:   "fig53",
		Title:  registry["fig53"].Title,
		Tables: []*Table{tab},
		Plots:  []*Plot{plot},
	}, nil
}

func runErrors(cfg Config) (*Report, error) {
	tab := &Table{
		Title:   "Model error vs simulation (positive = over-prediction), So=200, C²=0, P=32",
		Columns: []string{"W", "sim R", "LoPC R", "LoPC err", "CF R", "CF err", "Ry sim", "Ry mod", "Ry err"},
	}
	worstLoPC, worstCF, cfAt1024 := 0.0, 0.0, 0.0
	ryErrAtZero := 0.0
	errWs := []float64{0, 2, 16, 64, 256, 1024, 2048}
	type errPoint struct {
		model core.AllToAllResult
		simR  float64
		simRy float64
	}
	pts, err := points(cfg, len(errWs), func(i int) (errPoint, error) {
		model, err := core.AllToAll(core.Params{P: figP, W: errWs[i], St: figSt, So: 200, C2: 0})
		if err != nil {
			return errPoint{}, err
		}
		sim, err := simAllToAll(cfg, errWs[i], 200, 0, false)
		if err != nil {
			return errPoint{}, err
		}
		return errPoint{model, sim.R.Mean(), sim.Ry.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		w, model, simR := errWs[i], pt.model, pt.simR
		lopcErr := stats.RelErr(model.R, simR)
		cfErr := stats.RelErr(model.ContentionFree, simR)
		ryContSim := pt.simRy - 200
		ryContMod := model.Ry - 200
		ryErr := stats.RelErr(ryContMod, ryContSim)
		tab.AddRow(F(w), F(simR), F(model.R), Pct(lopcErr),
			F(model.ContentionFree), Pct(cfErr),
			F(pt.simRy), F(model.Ry), Pct(ryErr))
		if math.Abs(lopcErr) > math.Abs(worstLoPC) {
			worstLoPC = lopcErr
		}
		if math.Abs(cfErr) > math.Abs(worstCF) {
			worstCF = cfErr
		}
		//lopc:allow floateq w ranges over exact sweep literals; 1024 is the sweep point the paper quotes
		if w == 1024 {
			cfAt1024 = cfErr
		}
		//lopc:allow floateq w ranges over exact sweep literals; 0 is the zero-work sweep point
		if w == 0 {
			ryErrAtZero = ryErr
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("worst LoPC error %s (paper: +6%% worst case, pessimistic)", Pct(worstLoPC)),
		fmt.Sprintf("worst contention-free error %s (paper: -37%% at W=0)", Pct(worstCF)),
		fmt.Sprintf("contention-free error at W=1024: %s (paper: about -13%%)", Pct(cfAt1024)),
		fmt.Sprintf("reply-handler queueing over-prediction at W=0: %s (paper: about +76%%)", Pct(ryErrAtZero)),
	)
	return &Report{
		Name:   "errors",
		Title:  registry["errors"].Title,
		Tables: []*Table{tab},
	}, nil
}

package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a Plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Plot renders x/y series as an ASCII chart — enough to eyeball the
// shape of each paper figure (who wins, where the crossover or optimum
// falls) straight from a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX plots x on a log₂ axis, matching the paper's work sweeps.
	LogX   bool
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)
	Series []Series
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; when marker is 0 a default is assigned by
// position.
func (p *Plot) Add(name string, x, y []float64, marker byte) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("exp: series %q has %d x values and %d y values", name, len(x), len(y)))
	}
	if marker == 0 {
		marker = defaultMarkers[len(p.Series)%len(defaultMarkers)]
	}
	p.Series = append(p.Series, Series{Name: name, X: x, Y: y, Marker: marker})
}

func (p *Plot) dims() (w, h int) {
	w, h = p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// WriteText renders the plot.
func (p *Plot) WriteText(w io.Writer) error {
	width, height := p.dims()
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if p.LogX {
			return math.Log2(math.Max(x, 1e-12))
		}
		return x
	}
	for _, s := range p.Series {
		for i := range s.X {
			x := tx(s.X[i])
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", p.Title)
		return err
	}
	//lopc:allow floateq only exactly-equal bounds give the axis zero width; any spread plots fine
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lopc:allow floateq only exactly-equal bounds give the axis zero width; any spread plots fine
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Leave headroom so the top row isn't flush against the frame.
	ymax += (ymax - ymin) * 0.05

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.Series {
		for i := range s.X {
			cx := int((tx(s.X[i]) - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = s.Marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	legend := make([]string, 0, len(p.Series))
	for _, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "  [%s]\n", strings.Join(legend, "   "))
	yLab := p.YLabel
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%10.3g", ymin)
		case height / 2:
			if yLab != "" {
				if len(yLab) > 10 {
					yLab = yLab[:10]
				}
				label = fmt.Sprintf("%10s", yLab)
			}
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	axis := strings.Repeat("-", width)
	fmt.Fprintf(&b, "%10s +%s+\n", "", axis)
	lo, hi := xmin, xmax
	if p.LogX {
		lo, hi = math.Pow(2, xmin), math.Pow(2, xmax)
	}
	scale := ""
	if p.LogX {
		scale = " (log2 x)"
	}
	fmt.Fprintf(&b, "%10s  %-12.6g%s%12.6g  %s%s\n", "", lo,
		strings.Repeat(" ", max(0, width-26)), hi, p.XLabel, scale)
	_, err := io.WriteString(w, b.String())
	return err
}

// Package exp is the experiment harness: it regenerates every table and
// figure of the LoPC paper's evaluation from the model (internal/core)
// and the simulator (internal/workload), and renders them as aligned
// text tables, ASCII plots, and CSV.
//
// Each experiment is registered under the paper's figure/table id
// (fig51, fig52, fig53, fig62, table31, errors) plus the extension
// studies (sharedmem, multihop, hotspot). cmd/lopc-experiments runs
// them; EXPERIMENTS.md records the paper-vs-measured comparison.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered-ready experiment table: a title, column headers,
// string cells, and free-form notes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, which must have one cell per column.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("exp: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// F formats a float for a table cell with sensible precision.
func F(v float64) string {
	switch {
	//lopc:allow floateq formatting shortcut for the exact zero; near-zeros print via %.4g below
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Pct formats a ratio as a signed percentage.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// WriteText renders the table as aligned monospace text.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells that
// need it).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Report is the output of one experiment: its registry name, a title
// matching the paper's figure/table, and the produced tables and plots.
type Report struct {
	Name   string
	Title  string
	Tables []*Table
	Plots  []*Plot
}

// WriteText renders the full report as text.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", r.Name, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, p := range r.Plots {
		if err := p.WriteText(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table,
// with notes as a trailing bullet list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n* %s", n)
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the full report as markdown (tables only; ASCII
// plots are omitted as they do not survive proportional fonts).
func (r *Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s: %s\n\n", r.Name, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/stats"
)

func init() {
	register(Runner{
		Name:  "table31",
		Title: "Table 3.1: LoPC/LogP parameter correspondence, plus the Ch. 3 matrix-vector example",
		Run:   runTable31,
	})
}

func runTable31(cfg Config) (*Report, error) {
	params := &Table{
		Title:   "Architectural parameters of the LoPC model (Table 3.1)",
		Columns: []string{"LoPC", "LogP", "description"},
	}
	params.AddRow("St", "L", "average wire time (latency) in the interconnect")
	params.AddRow("So", "o", "average cost of message dispatch (interrupt + handler)")
	params.AddRow("-", "g", "peak processor-to-network gap (balanced NI: 0; LoPC drops it)")
	params.AddRow("P", "P", "number of processors")
	params.AddRow("C2", "-", "variability of message processing time (optional)")

	// Chapter 3's example: N×N matrix-vector multiply, cyclic rows,
	// blocking puts; W = N·tMulAdd/(P−1). Predict total runtime with
	// the homogeneous LoPC model and compare to simulation.
	const (
		n       = 512
		tMulAdd = 4.0
		so      = 200.0
	)
	mv := &Table{
		Title:   fmt.Sprintf("Matrix-vector multiply, N=%d, tMulAdd=%g, So=%g, St=%g", n, tMulAdd, so, figSt),
		Columns: []string{"P", "W", "msgs/node", "LoPC R", "LoPC total", "LogP total", "sim total", "LoPC err", "LogP err"},
	}
	ps := []int{4, 8, 16, 32}
	type mvPoint struct {
		w                   float64
		msgs                int
		modelR, lopcTotal   float64
		logpTotal, simTotal float64
	}
	pts, err := points(cfg, len(ps), func(i int) (mvPoint, error) {
		p := ps[i]
		w, msgs, err := core.MatVec(n, p, tMulAdd)
		if err != nil {
			return mvPoint{}, err
		}
		model, err := core.AllToAll(core.Params{P: p, W: w, St: figSt, So: so, C2: 0})
		if err != nil {
			return mvPoint{}, err
		}
		lg := logp.Params{L: figSt, O: so, P: p}
		sim, err := simMatVec(cfg, p, w, so, msgs)
		if err != nil {
			return mvPoint{}, err
		}
		return mvPoint{
			w: w, msgs: msgs, modelR: model.R,
			lopcTotal: float64(msgs) * model.R,
			logpTotal: float64(msgs) * lg.CyclesLoPC(w, so),
			simTotal:  sim,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		mv.AddRow(fmt.Sprintf("%d", ps[i]), F(pt.w), fmt.Sprintf("%d", pt.msgs),
			F(pt.modelR), F(pt.lopcTotal), F(pt.logpTotal), F(pt.simTotal),
			Pct(stats.RelErr(pt.lopcTotal, pt.simTotal)), Pct(stats.RelErr(pt.logpTotal, pt.simTotal)))
	}
	mv.Notes = append(mv.Notes,
		"sim total = mean measured cycle time × messages per node (uniform-destination equivalent of the put pattern)",
		"the LogP column is the contention-free estimate; its error is about one handler per request")

	return &Report{
		Name:   "table31",
		Title:  registry["table31"].Title,
		Tables: []*Table{params, mv},
	}, nil
}

// simMatVec measures the mean cycle time of the matrix-vector put
// pattern (homogeneous blocking puts with work w between them) and
// scales to the total runtime of msgs requests.
func simMatVec(cfg Config, p int, w, so float64, msgs int) (float64, error) {
	sim, err := simAllToAllP(cfg, p, w, so, 0)
	if err != nil {
		return 0, err
	}
	return float64(msgs) * sim.R.Mean(), nil
}

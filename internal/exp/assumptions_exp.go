package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register(Runner{
		Name:  "queuedepth",
		Title: "Assumption check: NI queue depths vs the unbounded-FIFO simplification (Ch. 2)",
		Run:   runQueueDepth,
	})
	register(Runner{
		Name:  "pscale",
		Title: "Assumption check: homogeneous cycle time is independent of machine size (the model has no P term)",
		Run:   runPScale,
	})
}

// runQueueDepth measures how deep the hardware FIFOs actually get in
// the paper's workloads. Chapter 2 assumes unbounded buffers and argues
// the assumption is harmless for short messages and cheap handlers;
// Alewife's real NI queue holds 512 bytes (≈ a dozen short messages).
// This experiment quantifies the claim.
func runQueueDepth(cfg Config) (*Report, error) {
	tab := &Table{
		Title:   "Deepest handler queue on any node (messages, incl. in service), all-to-all P=32, So=200, St=40",
		Columns: []string{"W", "C2", "max depth", "mean Qq", "util Uq"},
	}
	type point struct{ w, c2 float64 }
	pts := []point{{0, 0}, {64, 0}, {512, 0}, {2048, 0}, {64, 1}, {512, 1}, {64, 2}}
	if cfg.Quick {
		pts = []point{{64, 0}, {64, 2}}
	}
	worst := 0
	for _, pt := range pts {
		sim, err := simAllToAll(cfg, pt.w, 200, pt.c2, false)
		if err != nil {
			return nil, err
		}
		tab.AddRow(F(pt.w), F(pt.c2),
			fmt.Sprintf("%d", sim.Machine.MaxQueueDepth),
			fmt.Sprintf("%.3f", sim.Machine.ReqQueue),
			fmt.Sprintf("%.3f", sim.Machine.UtilReq))
		if sim.Machine.MaxQueueDepth > worst {
			worst = sim.Machine.MaxQueueDepth
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("worst depth observed: %d messages — an Alewife-class 512-byte NI queue (~a dozen", worst),
		"8-word messages) absorbs the blocking patterns, supporting the Ch. 2 simplification;",
		"high handler variability (C²=2) is what pushes depth up")
	return &Report{Name: "queuedepth", Title: registry["queuedepth"].Title, Tables: []*Table{tab}}, nil
}

// runPScale checks a structural property of the homogeneous model: P
// appears only through the visit ratio V = 1/P, which cancels, so the
// predicted cycle time is the same on 4 nodes as on 128. The simulator
// should agree (finite-size effects aside).
func runPScale(cfg Config) (*Report, error) {
	tab := &Table{
		Title:   "Cycle time vs machine size, all-to-all W=256, So=200, C²=0, St=40",
		Columns: []string{"P", "sim R", "LoPC R", "err"},
	}
	ps := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		ps = []int{8, 64}
	}
	for _, p := range ps {
		model, err := core.AllToAll(core.Params{P: p, W: 256, St: figSt, So: 200, C2: 0})
		if err != nil {
			return nil, err
		}
		sim, err := simAllToAllP(cfg, p, 256, 200, 0)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%d", p), F(sim.R.Mean()), F(model.R),
			Pct(stats.RelErr(model.R, sim.R.Mean())))
	}
	tab.Notes = append(tab.Notes,
		"the LoPC column is constant by construction; simulated R drifts only a little with P",
		"(small machines have slightly correlated traffic), validating the model's P-independence")
	return &Report{Name: "pscale", Title: registry["pscale"].Title, Tables: []*Table{tab}}, nil
}

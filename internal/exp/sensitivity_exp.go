package exp

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(Runner{
		Name:  "sensitivity",
		Title: "Extension X9: architectural sensitivities — which parameter should a machine designer buy down?",
		Run:   runSensitivity,
	})
}

// runSensitivity computes the elasticities of the predicted cycle time
// with respect to each architectural parameter — the "architectural
// tradeoffs" use the paper's conclusion advertises. The elasticity
// (∂R/R)/(∂x/x) answers: if the designer makes x 10% better, how much
// faster does the application get?
func runSensitivity(cfg Config) (*Report, error) {
	_ = cfg // model-only; simulation lengths are irrelevant
	tab := &Table{
		Title:   "Elasticity of cycle time R to each parameter (all-to-all, P=32, C²=0, St=40, So=200)",
		Columns: []string{"W", "R", "elast. So", "elast. St", "elast. W", "contention share"},
	}
	elast := func(p core.Params, bump func(*core.Params, float64)) (float64, error) {
		base, err := core.AllToAll(p)
		if err != nil {
			return 0, err
		}
		const h = 1e-4
		up := p
		bump(&up, 1+h)
		res, err := core.AllToAll(up)
		if err != nil {
			return 0, err
		}
		return (res.R - base.R) / base.R / h, nil
	}
	for _, w := range []float64{16, 64, 256, 1024, 4096} {
		p := core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}
		base, err := core.AllToAll(p)
		if err != nil {
			return nil, err
		}
		eSo, err := elast(p, func(q *core.Params, f float64) { q.So *= f })
		if err != nil {
			return nil, err
		}
		eSt, err := elast(p, func(q *core.Params, f float64) { q.St *= f })
		if err != nil {
			return nil, err
		}
		eW, err := elast(p, func(q *core.Params, f float64) { q.W *= f })
		if err != nil {
			return nil, err
		}
		tab.AddRow(F(w), F(base.R),
			fmt.Sprintf("%.3f", eSo), fmt.Sprintf("%.3f", eSt), fmt.Sprintf("%.3f", eW),
			fmt.Sprintf("%.1f%%", 100*base.ContentionFraction()))
	}
	tab.Notes = append(tab.Notes,
		"handler cost So dominates latency St at every grain size — the Holt et al. occupancy",
		"result, obtained here from the model alone; a designer should spend on faster message",
		"dispatch (or a protocol processor) before a faster wire",
		"elasticities sum to ~1: R is (almost) homogeneous of degree 1 in (W, St, So)")

	// Shared-memory comparison: what the protocol processor does to the
	// So elasticity.
	pp := &Table{
		Title:   "Same, with a protocol processor (shared-memory variant)",
		Columns: []string{"W", "R", "elast. So", "elast. St", "R vs interrupt"},
	}
	for _, w := range []float64{64, 1024} {
		pInt := core.Params{P: figP, W: w, St: figSt, So: 200, C2: 0}
		pPP := pInt
		pPP.ProtocolProcessor = true
		baseInt, err := core.AllToAll(pInt)
		if err != nil {
			return nil, err
		}
		basePP, err := core.AllToAll(pPP)
		if err != nil {
			return nil, err
		}
		eSo, err := elast(pPP, func(q *core.Params, f float64) { q.So *= f })
		if err != nil {
			return nil, err
		}
		eSt, err := elast(pPP, func(q *core.Params, f float64) { q.St *= f })
		if err != nil {
			return nil, err
		}
		pp.AddRow(F(w), F(basePP.R),
			fmt.Sprintf("%.3f", eSo), fmt.Sprintf("%.3f", eSt),
			fmt.Sprintf("%.3f", basePP.R/baseInt.R))
	}
	pp.Notes = append(pp.Notes,
		"protocol hardware cuts the So elasticity (handlers no longer steal thread cycles),",
		"shifting the next dollar toward latency — a cost-performance tradeoff the conclusion",
		"proposes studying with exactly this machinery")

	return &Report{
		Name:   "sensitivity",
		Title:  registry["sensitivity"].Title,
		Tables: []*Table{tab, pp},
	}, nil
}

package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryContainsAllPaperArtifacts(t *testing.T) {
	for _, name := range []string{
		"table31", "fig51", "fig52", "fig53", "fig62", "errors",
		"sharedmem", "multihop", "hotspot", "ablation", "nonblocking", "collectives",
		"queuedepth", "pscale", "exchange", "multiclass", "chunkvar", "netassume", "sensitivity", "topology", "threads",
	} {
		if _, ok := Get(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if _, ok := Get("nosuch"); ok {
		t.Error("Get returned an unregistered experiment")
	}
	all := All()
	if len(all) < 21 {
		t.Errorf("All() returned %d experiments, want >= 21", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Name <= all[i-1].Name {
			t.Error("All() not sorted by name")
		}
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in
// quick mode and sanity-checks the reports render.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := Config{Seed: 1, Quick: true}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			rep, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if rep.Name != r.Name {
				t.Errorf("report name %q != runner name %q", rep.Name, r.Name)
			}
			if len(rep.Tables) == 0 {
				t.Fatalf("%s produced no tables", r.Name)
			}
			for _, tab := range rep.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", r.Name, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: ragged row in %q", r.Name, tab.Title)
					}
				}
			}
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatalf("%s: WriteText: %v", r.Name, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s: empty text rendering", r.Name)
			}
		})
	}
}

func TestTableAddRowPanicsOnRaggedRow(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged AddRow did not panic")
		}
	}()
	tab.AddRow("only one")
}

func TestTableWriteText(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"x", "yy"}}
	tab.AddRow("1", "2")
	tab.AddRow("10", "20")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "x", "yy", "10", "20", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", `has "quotes", and commas`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"has ""quotes"", and commas"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
}

func TestFFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{42.25, "42.2"},
		{3.14159, "3.142"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := Pct(0.123); got != "+12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestPlotRendering(t *testing.T) {
	p := &Plot{Title: "shape", XLabel: "x", YLabel: "y"}
	p.Add("up", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, '*')
	p.Add("down", []float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}, 'o')
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shape") || !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("plot output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("plot output missing markers")
	}
}

func TestPlotLogX(t *testing.T) {
	p := &Plot{Title: "log", LogX: true}
	p.Add("s", []float64{2, 2048}, []float64{1, 2}, '*')
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log2 x") {
		t.Error("log-x annotation missing")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestPlotMismatchedSeriesPanics(t *testing.T) {
	p := &Plot{}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series lengths did not panic")
		}
	}()
	p.Add("bad", []float64{1, 2}, []float64{1}, '*')
}

func TestPlotFlatSeries(t *testing.T) {
	// A constant series must not divide by zero.
	p := &Plot{Title: "flat"}
	p.Add("c", []float64{1, 2, 3}, []float64{5, 5, 5}, '*')
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableWriteMarkdown(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**demo**", "| a | b |", "|---|---|", "| 1 | 2 |", "* a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestReportWriteMarkdown(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"c"}}
	tab.AddRow("v")
	rep := &Report{Name: "n", Title: "T", Tables: []*Table{tab}}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## n: T") {
		t.Error("markdown report header missing")
	}
}

// Package stats provides the measurement machinery for simulation
// experiments: streaming moment estimators, time-weighted averages for
// queue lengths and utilizations, batch-means confidence intervals, and
// simple histograms.
//
// Every quantity the LoPC evaluation reports — response times and their
// components, queue lengths, utilizations, throughput — is collected
// through these estimators, so the simulator itself stays free of
// statistics code.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Tally is a streaming estimator of the mean and variance of a sequence
// of observations, using Welford's numerically stable update. The zero
// value is ready to use.
type Tally struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	t.n++
	if t.n == 1 {
		t.min, t.max = x, x
	} else {
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
	}
	delta := x - t.mean
	t.mean += delta / float64(t.n)
	t.m2 += delta * (x - t.mean)
}

// N returns the number of observations recorded.
func (t *Tally) N() int64 { return t.n }

// Mean returns the sample mean, or 0 with no observations.
func (t *Tally) Mean() float64 { return t.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (t *Tally) Variance() float64 {
	if t.n < 2 {
		return 0
	}
	return t.m2 / float64(t.n-1)
}

// StdDev returns the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Variance()) }

// SCV returns the squared coefficient of variation Var/Mean², or 0 when
// the mean is 0.
func (t *Tally) SCV() float64 {
	//lopc:allow floateq an exactly-zero mean (empty or all-zero tally) makes SCV undefined; 0 by convention
	if t.mean == 0 {
		return 0
	}
	return t.Variance() / (t.mean * t.mean)
}

// Min returns the smallest observation, or 0 with no observations.
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation, or 0 with no observations.
func (t *Tally) Max() float64 { return t.max }

// Sum returns the sum of all observations.
func (t *Tally) Sum() float64 { return t.mean * float64(t.n) }

// Merge folds other into t, as if t had seen other's observations too.
func (t *Tally) Merge(other *Tally) {
	if other.n == 0 {
		return
	}
	if t.n == 0 {
		*t = *other
		return
	}
	n1, n2 := float64(t.n), float64(other.n)
	delta := other.mean - t.mean
	tot := n1 + n2
	t.mean += delta * n2 / tot
	t.m2 += other.m2 + delta*delta*n1*n2/tot
	t.n += other.n
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
}

// HalfWidth95 returns the half-width of the two-sided 95% confidence
// interval for the mean, treating the observations as independent —
// appropriate when each observation is itself the mean of an
// independent replication. It returns +Inf with fewer than two
// observations (one replication pins no interval).
func (t *Tally) HalfWidth95() float64 {
	if t.n < 2 {
		return math.Inf(1)
	}
	return tCritical95(int(t.n-1)) * t.StdDev() / math.Sqrt(float64(t.n))
}

func (t *Tally) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		t.n, t.Mean(), t.StdDev(), t.min, t.max)
}

// TimeWeighted integrates a piecewise-constant quantity (queue length,
// busy indicator) over simulated time. Mean() returns the time-average,
// which is what Little's law and the utilization law relate.
type TimeWeighted struct {
	lastTime  float64
	lastValue float64
	area      float64
	start     float64
	started   bool
}

// Set records that the quantity changed to value v at time t. Calls
// must have non-decreasing t; the value is assumed constant between
// calls.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.start, w.started = t, true
	} else {
		if t < w.lastTime {
			//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
			panic(fmt.Sprintf("stats: TimeWeighted.Set time went backwards: %v < %v", t, w.lastTime))
		}
		w.area += w.lastValue * (t - w.lastTime)
	}
	w.lastTime, w.lastValue = t, v
}

// Advance extends the integration to time t without changing the value.
func (w *TimeWeighted) Advance(t float64) { w.Set(t, w.lastValue) }

// Mean returns the time-average of the quantity from the first Set to
// the last Set/Advance, or 0 if no interval has elapsed.
func (w *TimeWeighted) Mean() float64 {
	elapsed := w.lastTime - w.start
	if elapsed <= 0 {
		return 0
	}
	return w.area / elapsed
}

// Value returns the current (most recently set) value.
func (w *TimeWeighted) Value() float64 { return w.lastValue }

// Elapsed returns the covered time span.
func (w *TimeWeighted) Elapsed() float64 {
	if !w.started {
		return 0
	}
	return w.lastTime - w.start
}

// Reset restarts integration at time t with value v, discarding history.
// Experiments call it at the end of warmup so transient state does not
// bias steady-state averages.
func (w *TimeWeighted) Reset(t, v float64) {
	*w = TimeWeighted{lastTime: t, lastValue: v, start: t, started: true}
}

// tDist95 holds two-sided 95% Student-t critical values for small
// degrees of freedom; beyond the table the normal value 1.96 is used.
var tDist95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// df degrees of freedom.
func tCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tDist95) {
		return tDist95[df]
	}
	return 1.96
}

// BatchMeans computes a confidence interval for the steady-state mean of
// a correlated output sequence (e.g. successive cycle response times) by
// grouping observations into fixed-size batches and treating the batch
// means as independent. This is the standard method for simulation
// output analysis.
type BatchMeans struct {
	batchSize int
	current   Tally
	batches   Tally
}

// NewBatchMeans returns an estimator with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be >= 1")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() >= int64(b.batchSize) {
		b.batches.Add(b.current.Mean())
		b.current = Tally{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth95 returns the half-width of the 95% confidence interval for
// the mean, or +Inf with fewer than two completed batches.
func (b *BatchMeans) HalfWidth95() float64 {
	n := b.batches.N()
	if n < 2 {
		return math.Inf(1)
	}
	return tCritical95(int(n-1)) * b.batches.StdDev() / math.Sqrt(float64(n))
}

// Histogram is a fixed-width bucket histogram over [Low, High); values
// outside the range are counted in the under/overflow buckets. It is
// used for inspecting handler service and response-time distributions.
type Histogram struct {
	Low, High   float64
	buckets     []int64
	under, over int64
}

// NewHistogram returns a histogram with n buckets over [low, high).
func NewHistogram(low, high float64, n int) *Histogram {
	if n < 1 || high <= low {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Low: low, High: high, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Low:
		h.under++
	case x >= h.High:
		h.over++
	default:
		i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.buckets)))
		if i == len(h.buckets) { // guard x == High-epsilon rounding
			i--
		}
		h.buckets[i]++
	}
}

// Count returns the bucket counts (not including under/overflow).
func (h *Histogram) Count(i int) int64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above High.
func (h *Histogram) Overflow() int64 { return h.over }

// Total returns the total number of observations including out-of-range.
func (h *Histogram) Total() int64 {
	t := h.under + h.over
	for _, c := range h.buckets {
		t += c
	}
	return t
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from bucket
// midpoints; out-of-range observations clamp to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.Low
	}
	width := (h.High - h.Low) / float64(len(h.buckets))
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.Low + (float64(i)+0.5)*width
		}
	}
	return h.High
}

// Median returns the estimated median of a slice (sorting a copy). It
// is a convenience for small experiment result sets, not a streaming
// estimator.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// RelErr returns the signed relative error (got-want)/want, or 0 when
// want is 0. Experiment reports use it for model-vs-simulation columns.
func RelErr(got, want float64) float64 {
	//lopc:allow floateq relative error is undefined only at an exactly-zero reference; 0 by convention
	if want == 0 {
		return 0
	}
	return (got - want) / want
}

// AutoCorr estimates the lag-k autocorrelation of a series — the
// standard diagnostic for choosing a batch size in simulation output
// analysis: batches should be long enough that batch means are nearly
// uncorrelated.
func AutoCorr(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	//lopc:allow floateq the denominator is exactly zero only for a constant series, where autocorrelation is undefined
	if den == 0 {
		return 0
	}
	return num / den
}

// SuggestBatchSize returns a batch size for BatchMeans such that the
// lag-1 autocorrelation of batch means over the given series falls
// below the threshold, doubling from minSize; it returns maxSize if no
// smaller batch achieves it.
func SuggestBatchSize(xs []float64, threshold float64, minSize, maxSize int) int {
	if minSize < 1 {
		minSize = 1
	}
	for size := minSize; size < maxSize; size *= 2 {
		var means []float64
		for i := 0; i+size <= len(xs); i += size {
			sum := 0.0
			for _, x := range xs[i : i+size] {
				sum += x
			}
			means = append(means, sum/float64(size))
		}
		if len(means) < 8 {
			break
		}
		if r := AutoCorr(means, 1); r < threshold && r > -threshold {
			return size
		}
	}
	return maxSize
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTallyAgainstNaive(t *testing.T) {
	r := rng.New(1)
	var tl Tally
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.Float64()*100 - 50
		xs = append(xs, x)
		tl.Add(x)
	}
	// Naive two-pass computation.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if !almost(tl.Mean(), mean, 1e-9) {
		t.Errorf("Welford mean %v, naive %v", tl.Mean(), mean)
	}
	if !almost(tl.Variance(), variance, 1e-6) {
		t.Errorf("Welford variance %v, naive %v", tl.Variance(), variance)
	}
}

func TestTallyMinMaxSum(t *testing.T) {
	var tl Tally
	for _, x := range []float64{3, -1, 4, 1, 5} {
		tl.Add(x)
	}
	if tl.Min() != -1 || tl.Max() != 5 {
		t.Errorf("min/max = %v/%v, want -1/5", tl.Min(), tl.Max())
	}
	if !almost(tl.Sum(), 12, 1e-9) {
		t.Errorf("sum = %v, want 12", tl.Sum())
	}
	if tl.N() != 5 {
		t.Errorf("n = %d, want 5", tl.N())
	}
}

func TestTallyEmpty(t *testing.T) {
	var tl Tally
	if tl.Mean() != 0 || tl.Variance() != 0 || tl.SCV() != 0 {
		t.Error("empty tally should report zero moments")
	}
}

func TestTallySingleObservation(t *testing.T) {
	var tl Tally
	tl.Add(7)
	if tl.Variance() != 0 {
		t.Errorf("variance of single observation = %v, want 0", tl.Variance())
	}
}

// TestTallyMergeProperty: merging two tallies equals one tally over the
// concatenated observations.
func TestTallyMergeProperty(t *testing.T) {
	f := func(seed uint64, n1Raw, n2Raw uint8) bool {
		r := rng.New(seed)
		n1, n2 := int(n1Raw%50), int(n2Raw%50)
		var a, b, all Tally
		for i := 0; i < n1; i++ {
			x := r.Float64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.Float64() * 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTallySCV(t *testing.T) {
	var tl Tally
	// Samples 1 and 3: mean 2, variance (unbiased) 2, SCV 0.5.
	tl.Add(1)
	tl.Add(3)
	if !almost(tl.SCV(), 0.5, 1e-12) {
		t.Errorf("SCV = %v, want 0.5", tl.SCV())
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)  // value 1 on [0, 10)
	w.Set(10, 3) // value 3 on [10, 20)
	w.Advance(20)
	if !almost(w.Mean(), 2, 1e-12) {
		t.Errorf("time-weighted mean = %v, want 2", w.Mean())
	}
	if w.Elapsed() != 20 {
		t.Errorf("elapsed = %v, want 20", w.Elapsed())
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100)
	w.Set(50, 100)
	w.Reset(50, 2)
	w.Advance(60)
	if !almost(w.Mean(), 2, 1e-12) {
		t.Errorf("mean after reset = %v, want 2", w.Mean())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Set(10, 1)
	w.Set(5, 2)
}

func TestTimeWeightedNoElapsed(t *testing.T) {
	var w TimeWeighted
	w.Set(3, 9)
	if w.Mean() != 0 {
		t.Errorf("mean with no elapsed time = %v, want 0", w.Mean())
	}
	if w.Value() != 9 {
		t.Errorf("value = %v, want 9", w.Value())
	}
}

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For iid observations the CI should usually cover the true mean.
	covered := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		r := rng.New(uint64(trial) + 1)
		bm := NewBatchMeans(50)
		for i := 0; i < 2500; i++ {
			bm.Add(r.ExpFloat64()) // true mean 1
		}
		if math.Abs(bm.Mean()-1) <= bm.HalfWidth95() {
			covered++
		}
	}
	if covered < 85 {
		t.Errorf("95%% CI covered true mean in only %d/%d trials", covered, trials)
	}
}

func TestBatchMeansFewBatches(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 15; i++ {
		bm.Add(1)
	}
	if bm.Batches() != 1 {
		t.Fatalf("batches = %d, want 1", bm.Batches())
	}
	if !math.IsInf(bm.HalfWidth95(), 1) {
		t.Error("half-width with one batch should be +Inf")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Errorf("bucket %d count %d, want 1", i, h.Count(i))
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Underflow(), h.Overflow())
	}
	if h.Total() != 12 {
		t.Errorf("total = %d, want 12", h.Total())
	}
	if h.Buckets() != 10 {
		t.Errorf("buckets = %d, want 10", h.Buckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median estimate %v, want ~50", med)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %v, want 0", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its argument: %v", xs)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); !almost(e, 0.1, 1e-12) {
		t.Errorf("RelErr = %v, want 0.1", e)
	}
	if e := RelErr(5, 0); e != 0 {
		t.Errorf("RelErr with zero want = %v, want 0", e)
	}
}

func TestTCritical(t *testing.T) {
	if v := tCritical95(1); v != 12.706 {
		t.Errorf("t(1) = %v", v)
	}
	if v := tCritical95(1000); v != 1.96 {
		t.Errorf("t(1000) = %v", v)
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Error("t(0) should be +Inf")
	}
}

func TestAutoCorrWhiteNoise(t *testing.T) {
	r := rng.New(77)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if c := AutoCorr(xs, 1); math.Abs(c) > 0.03 {
		t.Errorf("white-noise lag-1 autocorr = %v, want ~0", c)
	}
}

func TestAutoCorrAR1(t *testing.T) {
	// x[i] = 0.8·x[i-1] + noise has lag-1 autocorrelation ≈ 0.8.
	r := rng.New(78)
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + r.NormFloat64()
	}
	if c := AutoCorr(xs, 1); math.Abs(c-0.8) > 0.03 {
		t.Errorf("AR(1) lag-1 autocorr = %v, want ~0.8", c)
	}
	if c2 := AutoCorr(xs, 2); math.Abs(c2-0.64) > 0.04 {
		t.Errorf("AR(1) lag-2 autocorr = %v, want ~0.64", c2)
	}
}

func TestAutoCorrEdgeCases(t *testing.T) {
	if AutoCorr(nil, 1) != 0 {
		t.Error("nil series")
	}
	if AutoCorr([]float64{1, 2, 3}, 0) != 0 {
		t.Error("lag 0 should return 0 (undefined here)")
	}
	if AutoCorr([]float64{5, 5, 5, 5}, 1) != 0 {
		t.Error("constant series should return 0")
	}
}

func TestSuggestBatchSize(t *testing.T) {
	// Strongly correlated series needs bigger batches than white noise.
	r := rng.New(79)
	ar := make([]float64, 40000)
	white := make([]float64, 40000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + r.NormFloat64()
		white[i] = r.NormFloat64()
	}
	bAR := SuggestBatchSize(ar, 0.1, 4, 4096)
	bWhite := SuggestBatchSize(white, 0.1, 4, 4096)
	if bAR <= bWhite {
		t.Errorf("AR batch %d not above white-noise batch %d", bAR, bWhite)
	}
	if bWhite > 16 {
		t.Errorf("white-noise batch %d unexpectedly large", bWhite)
	}
}

func TestTallyHalfWidth95(t *testing.T) {
	var one Tally
	one.Add(3)
	if !math.IsInf(one.HalfWidth95(), 1) {
		t.Error("one observation should give an infinite half-width")
	}
	// Five replication means 10, 12, 11, 9, 13: mean 11, sd ~1.581,
	// t(4) = 2.776 -> half-width 2.776 * 1.5811 / sqrt(5) = 1.963.
	var tl Tally
	for _, x := range []float64{10, 12, 11, 9, 13} {
		tl.Add(x)
	}
	hw := tl.HalfWidth95()
	if math.Abs(hw-1.963) > 0.01 {
		t.Errorf("HalfWidth95 = %v, want ~1.963", hw)
	}
	// More replications of the same spread must tighten the interval.
	var big Tally
	for i := 0; i < 100; i++ {
		big.Add([]float64{10, 12, 11, 9, 13}[i%5])
	}
	if big.HalfWidth95() >= hw {
		t.Errorf("CI did not tighten: n=100 half-width %v >= n=5 half-width %v", big.HalfWidth95(), hw)
	}
}

package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestLockConfigValidate(t *testing.T) {
	good := LockConfig{
		Threads:     4,
		Work:        dist.NewDeterministic(100),
		Handoff:     dist.NewDeterministic(10),
		Critical:    dist.NewDeterministic(50),
		MeasureTime: 1000,
	}
	if _, err := RunLock(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*LockConfig){
		func(c *LockConfig) { c.Threads = 0 },
		func(c *LockConfig) { c.Work = nil },
		func(c *LockConfig) { c.Handoff = nil },
		func(c *LockConfig) { c.Critical = nil },
		func(c *LockConfig) { c.MeasureTime = 0 },
		func(c *LockConfig) { c.WarmupTime = -1 },
		func(c *LockConfig) { c.WarmupTime = math.NaN() },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if _, err := RunLock(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestLockSimSingleThread: with one thread and deterministic times the
// cycle is exactly W + 2St + So and there is never any waiting.
func TestLockSimSingleThread(t *testing.T) {
	w, st, so := 500.0, 40.0, 100.0
	sim, err := RunLock(LockConfig{
		Threads:    1,
		Work:       dist.NewDeterministic(w),
		Handoff:    dist.NewDeterministic(st),
		Critical:   dist.NewDeterministic(so),
		WarmupTime: 10_000, MeasureTime: 100_000,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := w + 2*st + so
	if math.Abs(sim.R.Mean()-cycle) > 1e-9 || sim.R.Max()-sim.R.Min() > 1e-9 {
		t.Errorf("R = %v..%v, want exactly %v", sim.R.Min(), sim.R.Max(), cycle)
	}
	if math.Abs(sim.Rs.Mean()-so) > 1e-9 {
		t.Errorf("Rs = %v, want exactly So = %v", sim.Rs.Mean(), so)
	}
	if rel := math.Abs(sim.X-1/cycle) / (1 / cycle); rel > 0.01 {
		t.Errorf("X = %v, want ~%v", sim.X, 1/cycle)
	}
}

// TestLockSimDeterminism: the same seed reproduces the identical result
// bit for bit; a different seed does not.
func TestLockSimDeterminism(t *testing.T) {
	cfg := LockConfig{
		Threads:    6,
		Work:       dist.NewExponential(500),
		Handoff:    dist.NewDeterministic(20),
		Critical:   dist.NewExponential(80),
		WarmupTime: 5_000, MeasureTime: 100_000,
		Seed: 42,
	}
	a, err := RunLock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c, err := RunLock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical results")
	}
}

// TestLockModelSimAgreement: the core.Lock AMVA tracks the simulated
// lock across the contention range, from idle (U ≈ 0.1) through
// saturation (U ≈ 1). Documented tolerance: ≤ 10% per point and ≤ 5%
// mean over the range; the worst observed excursion is ~7% at
// Threads=16, where utilization crosses ~0.95 and the Schweitzer
// approximation is weakest (the same knee the paper's Figure 6-2
// shows for the work-pile AMVA).
func TestLockModelSimAgreement(t *testing.T) {
	// Short tier: full fidelity (identical window) at a moderate and a
	// near-saturated thread count, through the conservative core; the
	// mean-error check needs the whole sweep and stays in the full tier.
	w, st, so := 800.0, 20.0, 100.0
	var sumRel float64
	threads := []int{1, 2, 4, 8, 16, 32}
	var par *ParSim
	if testing.Short() {
		threads = []int{4, 16}
		par = &ParSim{Sync: "cons", Jobs: 2}
	}
	for _, n := range threads {
		sim, err := RunLock(LockConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Handoff:    dist.NewDeterministic(st),
			Critical:   dist.NewExponential(so),
			WarmupTime: 50_000, MeasureTime: 1_000_000,
			Seed: 7,
			Par:  par.perRep(),
		})
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		mod, err := core.Lock(core.LockParams{Threads: n, W: w, St: st, So: so, C2: 1})
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		rel := math.Abs(mod.X-sim.X) / sim.X
		sumRel += rel
		if rel > 0.10 {
			t.Errorf("Threads=%d: model X=%v vs sim X=%v (rel %.1f%% > 10%%)", n, mod.X, sim.X, 100*rel)
		}
	}
	if mean := sumRel / float64(len(threads)); !testing.Short() && mean > 0.05 {
		t.Errorf("mean relative error %.1f%% > 5%%", 100*mean)
	}
}

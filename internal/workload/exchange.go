package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
)

// ExchangeConfig describes a bulk-synchronous all-to-all personalized
// exchange: in each round every node sends one put to every other node
// on the carefully staggered CM-5-style schedule (node i's k-th message
// goes to node (i+k) mod P), then waits for its own P−1 incoming puts,
// and optionally runs a dissemination barrier before the next round.
//
// This workload reproduces the phenomenon the paper's introduction
// builds on: with deterministic costs and send spacing ≥ handler cost
// the schedule is perfectly contention-free (each round takes exactly
// (P−1)·o + l + h); with any handler-time variability the interleaving
// decays and receivers queue — unless barriers resynchronize the rounds,
// which is exactly why the original LogP study had to insert barriers
// on the CM-5.
type ExchangeConfig struct {
	// P is the number of nodes.
	P int
	// Rounds is the number of exchange rounds to run.
	Rounds int
	// SendOverhead is the sender-side injection cost o per message.
	SendOverhead float64
	// Latency is the wire-time distribution (mean l).
	Latency dist.Distribution
	// Handler is the receive-handler cost distribution (mean h).
	Handler dist.Distribution
	// Barrier inserts a dissemination barrier after each round.
	Barrier bool
	// Seed roots the run's random streams.
	Seed uint64
}

func (c ExchangeConfig) validate() error {
	switch {
	case c.P < 2:
		return fmt.Errorf("workload: exchange needs P >= 2, got %d", c.P)
	case c.Rounds < 1:
		return fmt.Errorf("workload: Rounds = %d", c.Rounds)
	case c.Latency == nil || c.Handler == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.SendOverhead < 0:
		return fmt.Errorf("workload: negative send overhead %v", c.SendOverhead)
	}
	return nil
}

// ExchangeResult reports the measured exchange.
type ExchangeResult struct {
	// RoundEnd[r] is the time the last node finished round r (including
	// the barrier, if enabled).
	RoundEnd []float64
	// RoundTime[r] is RoundEnd[r] − RoundEnd[r−1].
	RoundTime []float64
	// DataTime[r] is the data phase of round r alone: from the round's
	// start to the last node completing its P−1 receives, excluding the
	// barrier. This is the quantity barriers are supposed to keep near
	// the schedule.
	DataTime []float64
	// Total is the completion time of the last round.
	Total float64
	// SchedulePerRound is the LogP (polling-model) per-round data
	// estimate: (P−1)·o + l + h. On this interrupt-driven machine even
	// the deterministic schedule runs somewhat above it, because
	// arriving handlers preempt the send loop — each of the P−1
	// arrivals can insert up to one handler time.
	SchedulePerRound float64
	// BarrierPerRound is the deterministic dissemination-barrier cost
	// ceil(log2 P)·(o + l + h), or 0 when barriers are disabled.
	BarrierPerRound float64
}

// MeanDataTime averages DataTime over [from, to), clamped.
func (r ExchangeResult) MeanDataTime(from, to int) float64 {
	return meanRange(r.DataTime, from, to)
}

// MeanRoundTime averages RoundTime over the given half-open round range
// (clamped to the available rounds).
func (r ExchangeResult) MeanRoundTime(from, to int) float64 {
	return meanRange(r.RoundTime, from, to)
}

func meanRange(xs []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	if to <= from {
		return 0
	}
	sum := 0.0
	for _, v := range xs[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

type exMsgData struct {
	round   int
	barrier int // -1 for data messages
}

type exchangeRun struct {
	cfg       ExchangeConfig
	barRounds int
	// dataRecv[node][round] counts puts received; barRecv[node][round]
	// counts per dissemination step.
	dataRecv [][]int
	barRecv  [][][]int
	// remaining / dataRemaining count nodes yet to finish the round /
	// its data phase.
	remaining     []int
	dataRemaining []int
	roundEnd      []float64
	dataEnd       []float64
	progs         []*exchangeProgram
}

type exPhase int

const (
	exSendData exPhase = iota
	exWaitData
	exSendBar
	exWaitBar
)

type exchangeProgram struct {
	run     *exchangeRun
	round   int
	phase   exPhase
	k       int // next data destination offset (1..P-1)
	br      int // current barrier step
	paid    bool
	waitKey [2]int // {round, barrier-step or -1} when blocked
	blocked bool
}

// Next implements machine.Program.
func (p *exchangeProgram) Next(m *machine.Machine, self int) machine.Action {
	run := p.run
	cfg := run.cfg
	for {
		switch p.phase {
		case exSendData:
			if p.k >= cfg.P {
				p.phase = exWaitData
				continue
			}
			if cfg.SendOverhead > 0 && !p.paid {
				p.paid = true
				return machine.Compute(cfg.SendOverhead)
			}
			p.paid = false
			dst := (self + p.k) % cfg.P
			p.k++
			return machine.SendAsync(p.dataMsg(self, dst))

		case exWaitData:
			if run.dataRecv[self][p.round] < cfg.P-1 {
				p.blocked = true
				p.waitKey = [2]int{p.round, -1}
				return machine.Block()
			}
			run.dataRemaining[p.round]--
			if run.dataRemaining[p.round] == 0 {
				run.dataEnd[p.round] = m.Now()
			}
			if cfg.Barrier {
				p.phase = exSendBar
				p.br = 0
				continue
			}
			p.endRound(m, self)
			if p.round == cfg.Rounds {
				return machine.Halt()
			}
			continue

		case exSendBar:
			if cfg.SendOverhead > 0 && !p.paid {
				p.paid = true
				return machine.Compute(cfg.SendOverhead)
			}
			p.paid = false
			dst := (self + 1<<p.br) % cfg.P
			p.phase = exWaitBar
			return machine.SendAsync(p.barMsg(self, dst))

		case exWaitBar:
			if run.barRecv[self][p.round][p.br] < 1 {
				p.blocked = true
				p.waitKey = [2]int{p.round, p.br}
				return machine.Block()
			}
			run.barRecv[self][p.round][p.br]--
			p.br++
			if p.br < run.barRounds {
				p.phase = exSendBar
				continue
			}
			p.endRound(m, self)
			if p.round == cfg.Rounds {
				return machine.Halt()
			}
			p.phase = exSendData
			continue

		default:
			panic(fmt.Sprintf("workload: invalid exchange phase %d", p.phase))
		}
	}
}

// endRound advances the program into the next round and updates the
// global completion bookkeeping.
func (p *exchangeProgram) endRound(m *machine.Machine, self int) {
	run := p.run
	run.remaining[p.round]--
	if run.remaining[p.round] == 0 {
		run.roundEnd[p.round] = m.Now()
	}
	p.round++
	p.phase = exSendData
	p.k = 1
}

func (p *exchangeProgram) dataMsg(self, dst int) *machine.Message {
	run := p.run
	return &machine.Message{
		Src: self, Dst: dst, Kind: machine.KindRequest, Service: run.cfg.Handler,
		UserData: exMsgData{round: p.round, barrier: -1},
		OnComplete: func(m *machine.Machine, msg *machine.Message) {
			d := msg.UserData.(exMsgData)
			run.dataRecv[msg.Dst][d.round]++
			run.maybeUnblock(m, msg.Dst)
		},
	}
}

func (p *exchangeProgram) barMsg(self, dst int) *machine.Message {
	run := p.run
	return &machine.Message{
		Src: self, Dst: dst, Kind: machine.KindRequest, Service: run.cfg.Handler,
		UserData: exMsgData{round: p.round, barrier: p.br},
		OnComplete: func(m *machine.Machine, msg *machine.Message) {
			d := msg.UserData.(exMsgData)
			run.barRecv[msg.Dst][d.round][d.barrier]++
			run.maybeUnblock(m, msg.Dst)
		},
	}
}

// maybeUnblock wakes a node's program if the message it waits for has
// arrived.
func (r *exchangeRun) maybeUnblock(m *machine.Machine, node int) {
	prog := r.progs[node]
	if !prog.blocked {
		return
	}
	round, br := prog.waitKey[0], prog.waitKey[1]
	var ready bool
	if br < 0 {
		ready = r.dataRecv[node][round] >= r.cfg.P-1
	} else {
		ready = r.barRecv[node][round][br] >= 1
	}
	if ready {
		prog.blocked = false
		m.Unblock(node)
	}
}

// RunExchange executes the bulk-synchronous exchange.
func RunExchange(cfg ExchangeConfig) (ExchangeResult, error) {
	if err := cfg.validate(); err != nil {
		return ExchangeResult{}, err
	}
	barRounds := 0
	for 1<<barRounds < cfg.P {
		barRounds++
	}
	m := machine.New(machine.Config{P: cfg.P, NetLatency: cfg.Latency, Seed: cfg.Seed})
	run := &exchangeRun{
		cfg:           cfg,
		barRounds:     barRounds,
		dataRecv:      make([][]int, cfg.P),
		barRecv:       make([][][]int, cfg.P),
		remaining:     make([]int, cfg.Rounds),
		dataRemaining: make([]int, cfg.Rounds),
		roundEnd:      make([]float64, cfg.Rounds),
		dataEnd:       make([]float64, cfg.Rounds),
		progs:         make([]*exchangeProgram, cfg.P),
	}
	for r := range run.remaining {
		run.remaining[r] = cfg.P
		run.dataRemaining[r] = cfg.P
	}
	for i := 0; i < cfg.P; i++ {
		run.dataRecv[i] = make([]int, cfg.Rounds+1)
		run.barRecv[i] = make([][]int, cfg.Rounds+1)
		for r := range run.barRecv[i] {
			run.barRecv[i][r] = make([]int, barRounds+1)
		}
		prog := &exchangeProgram{run: run, k: 1}
		run.progs[i] = prog
		m.SetProgram(i, prog)
	}
	m.Start()
	m.Run()

	res := ExchangeResult{
		RoundEnd:         run.roundEnd,
		RoundTime:        make([]float64, cfg.Rounds),
		DataTime:         make([]float64, cfg.Rounds),
		Total:            run.roundEnd[cfg.Rounds-1],
		SchedulePerRound: float64(cfg.P-1)*cfg.SendOverhead + cfg.Latency.Mean() + cfg.Handler.Mean(),
	}
	if cfg.Barrier {
		res.BarrierPerRound = float64(barRounds) * (cfg.SendOverhead + cfg.Latency.Mean() + cfg.Handler.Mean())
	}
	prev := 0.0
	for r, end := range run.roundEnd {
		res.RoundTime[r] = end - prev
		res.DataTime[r] = run.dataEnd[r] - prev
		prev = end
	}
	return res, nil
}

package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// MultithreadConfig describes the multithreaded all-to-all workload:
// every node runs T computation threads, each independently cycling
// through W cycles of work and a blocking request to a uniformly random
// peer. While one thread waits for its reply the node's other threads
// use the CPU — Alewife-style latency tolerance.
type MultithreadConfig struct {
	// P is the number of nodes; T the threads per node.
	P, T int
	// Work, Latency, Service are as in AllToAllConfig.
	Work, Latency, Service dist.Distribution
	// WarmupCycles and MeasureCycles are per-thread cycle counts.
	WarmupCycles, MeasureCycles int
	// Seed roots the run's random streams.
	Seed uint64
}

func (c MultithreadConfig) validate() error {
	switch {
	case c.P < 2:
		return fmt.Errorf("workload: multithread needs P >= 2, got %d", c.P)
	case c.T < 1:
		return fmt.Errorf("workload: T = %d", c.T)
	case c.Work == nil || c.Latency == nil || c.Service == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.MeasureCycles < 1:
		return fmt.Errorf("workload: MeasureCycles = %d", c.MeasureCycles)
	case c.WarmupCycles < 0:
		return fmt.Errorf("workload: WarmupCycles = %d", c.WarmupCycles)
	}
	return nil
}

// MultithreadResult holds the measured statistics.
type MultithreadResult struct {
	// R is the per-thread compute/request cycle time (reply completion
	// to reply completion).
	R stats.Tally
	// Rq and Ry are handler response times.
	Rq, Ry stats.Tally
	// XNode is the node-level cycle rate T/mean(R) implied by Little's
	// law on the closed per-node population.
	XNode float64
	// ThreadUtil is the measured CPU fraction spent running threads.
	ThreadUtil float64
	// HandlerUtil is the measured CPU fraction spent in handlers.
	HandlerUtil float64
}

type mtProgram struct {
	run   *multithreadRun
	tid   int
	phase int
	cycle int
	cur   cycleTimestamps
}

type multithreadRun struct {
	cfg     MultithreadConfig
	res     *MultithreadResult
	snapped bool
}

// Next implements machine.Program.
func (p *mtProgram) Next(m *machine.Machine, self int) machine.Action {
	cfg := p.run.cfg
	switch p.phase {
	case phaseStart:
		p.cur.ready = m.Now()
		p.phase = phaseSend
		return machine.Compute(cfg.Work.Sample(m.Rand(self)))

	case phaseSend:
		p.cur.send = m.Now()
		p.phase = phaseUnblocked
		dst := m.Rand(self).Intn(cfg.P - 1)
		if dst >= self {
			dst++
		}
		tid := p.tid
		req := &machine.Message{
			Src: self, Dst: dst, Kind: machine.KindRequest, Service: cfg.Service,
		}
		p.cur.req = req
		req.OnComplete = func(m *machine.Machine, msg *machine.Message) {
			rep := &machine.Message{
				Src: msg.Dst, Dst: msg.Src, Kind: machine.KindReply, Service: cfg.Service,
			}
			p.cur.rep = rep
			rep.OnComplete = func(m *machine.Machine, rmsg *machine.Message) {
				p.cur.repDone = rmsg.Done
				m.UnblockThread(rmsg.Dst, tid)
			}
			m.Send(rep)
		}
		return machine.SendAndBlock(req)

	case phaseUnblocked:
		c := &p.cur
		if p.cycle >= cfg.WarmupCycles {
			res := p.run.res
			res.R.Add(c.repDone - c.ready)
			res.Rq.Add(c.req.Done - c.req.Arrived)
			res.Ry.Add(c.rep.Done - c.rep.Arrived)
		}
		p.cycle++
		p.cur = cycleTimestamps{ready: c.repDone}
		if p.cycle >= cfg.WarmupCycles+cfg.MeasureCycles {
			if !p.run.snapped {
				p.run.snapped = true
				s := m.Stats()
				p.run.res.ThreadUtil = s.ThreadUtil
				p.run.res.HandlerUtil = s.UtilReq + s.UtilRep
			}
			return machine.Halt()
		}
		p.phase = phaseSend
		return machine.Compute(cfg.Work.Sample(m.Rand(self)))

	default:
		panic(fmt.Sprintf("workload: invalid multithread phase %d", p.phase))
	}
}

// RunMultithread executes the multithreaded all-to-all workload.
func RunMultithread(cfg MultithreadConfig) (MultithreadResult, error) {
	if err := cfg.validate(); err != nil {
		return MultithreadResult{}, err
	}
	m := machine.New(machine.Config{
		P:          cfg.P,
		NetLatency: cfg.Latency,
		Seed:       cfg.Seed,
	})
	run := &multithreadRun{cfg: cfg, res: &MultithreadResult{}}
	for i := 0; i < cfg.P; i++ {
		for j := 0; j < cfg.T; j++ {
			prog := &mtProgram{run: run}
			prog.tid = m.AddThread(i, prog)
		}
	}
	m.Start()
	m.Run()
	res := run.res
	if mean := res.R.Mean(); mean > 0 {
		res.XNode = float64(cfg.T) / mean
	}
	return *res, nil
}

package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
)

// TestRunAllToAllNDeterministicAcrossJobs: replication aggregates must
// be identical whether replications run sequentially or eight at a
// time, down to the last bit of every per-replication result.
func TestRunAllToAllNDeterministicAcrossJobs(t *testing.T) {
	cfg := stdAllToAll(256, 11)
	cfg.WarmupCycles, cfg.MeasureCycles = 30, 100
	seq, err := RunAllToAllN(cfg, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllToAllN(cfg, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("jobs=1 and jobs=8 aggregates differ:\nseq R %v X %v\npar R %v X %v",
			seq.R, seq.X, par.R, par.X)
	}
}

// TestRunAllToAllNAggregation: the aggregate tallies the
// per-replication means, replications differ (independent seeds), and
// the confidence interval is finite and brackets the grand mean's
// spread.
func TestRunAllToAllNAggregation(t *testing.T) {
	cfg := stdAllToAll(256, 11)
	cfg.WarmupCycles, cfg.MeasureCycles = 30, 100
	agg, err := RunAllToAllN(cfg, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Reps) != 5 || agg.R.N() != 5 {
		t.Fatalf("want 5 replications, got %d results / %d tallied", len(agg.Reps), agg.R.N())
	}
	distinct := false
	for _, r := range agg.Reps[1:] {
		if r.R.Mean() != agg.Reps[0].R.Mean() {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all replications produced the same mean R; seeds are not independent")
	}
	if hw := agg.R.HalfWidth95(); math.IsInf(hw, 1) || hw <= 0 {
		t.Errorf("R half-width = %v, want finite and positive", hw)
	}
	lo, hi := agg.R.Min(), agg.R.Max()
	if m := agg.R.Mean(); m < lo || m > hi {
		t.Errorf("grand mean %v outside replication range [%v, %v]", m, lo, hi)
	}
	if agg.X.Mean() <= 0 {
		t.Errorf("aggregate throughput %v, want positive", agg.X.Mean())
	}
}

// TestRunAllToAllNValidation: zero replications is an error, and a bad
// config surfaces the underlying simulator error.
func TestRunAllToAllNValidation(t *testing.T) {
	if _, err := RunAllToAllN(stdAllToAll(0, 1), 0, 1); err == nil {
		t.Error("reps=0 accepted")
	}
	bad := stdAllToAll(0, 1)
	bad.P = 1
	if _, err := RunAllToAllN(bad, 3, 2); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunWorkpileNDeterministicAcrossJobs: same engine contract for the
// work-pile replication path.
func TestRunWorkpileNDeterministicAcrossJobs(t *testing.T) {
	cfg := WorkpileConfig{
		P: 16, Ps: 4,
		Chunk:      dist.NewExponential(1500),
		Latency:    dist.NewDeterministic(40),
		Service:    dist.NewDeterministic(131),
		WarmupTime: 20_000, MeasureTime: 80_000,
		Seed: 3,
	}
	seq, err := RunWorkpileN(cfg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWorkpileN(cfg, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("jobs=1 and jobs=8 work-pile aggregates differ: seq X %v, par X %v", seq.X, par.X)
	}
	if seq.X.N() != 5 || seq.X.Mean() <= 0 {
		t.Errorf("aggregate X tally wrong: n=%d mean=%v", seq.X.N(), seq.X.Mean())
	}
}

package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestLockBoundsProperty: simulated lock throughput never exceeds the
// LogP-style optimistic bounds min(1/So, Threads/(W+2St+So)), at any
// random configuration.
func TestLockBoundsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, nRaw, wRaw, soRaw uint8) bool {
		n := int(nRaw%12) + 1 // 1..12
		w := 200 + float64(wRaw)*8
		so := 20 + float64(soRaw%150)
		sim, err := RunLock(LockConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Handoff:    dist.NewDeterministic(20),
			Critical:   dist.NewExponential(so),
			WarmupTime: 20_000, MeasureTime: 300_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		serial, unc := core.LockBounds(core.LockParams{Threads: n, W: w, St: 20, So: so, C2: 1})
		// The 1.1 allowance covers finite-window estimator noise, as in
		// TestWorkpileBoundsProperty.
		return sim.X <= math.Min(serial, unc)*1.1+1e-9
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// TestLockMonotonicityProperty: simulated throughput is monotone
// nondecreasing in the thread count (within estimator noise) — the
// contention analogue of "more processors never hurt a closed network".
func TestLockMonotonicityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, wRaw uint8) bool {
		w := 400 + float64(wRaw)*8
		prev := 0.0
		for _, n := range []int{1, 4, 16} {
			sim, err := RunLock(LockConfig{
				Threads:    n,
				Work:       dist.NewExponential(w),
				Handoff:    dist.NewDeterministic(20),
				Critical:   dist.NewExponential(100),
				WarmupTime: 20_000, MeasureTime: 300_000,
				Seed: seed,
			})
			if err != nil {
				return false
			}
			if sim.X < prev*0.97 { // 3% noise allowance
				return false
			}
			prev = sim.X
		}
		return true
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Fatal(err)
	}
}

// TestLockDegenerationProperty: as the critical section shrinks the
// simulated lock collapses onto the uncontended bound — contention
// vanishes with the contended resource.
func TestLockDegenerationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, wRaw uint8) bool {
		w := 500 + float64(wRaw)*8
		sim, err := RunLock(LockConfig{
			Threads:    8,
			Work:       dist.NewExponential(w),
			Handoff:    dist.NewDeterministic(30),
			Critical:   dist.NewDeterministic(1), // So ≪ W
			WarmupTime: 20_000, MeasureTime: 1_500_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		// ~7500 completions per window put the estimator's standard
		// error near 1.2%; 5% is a > 4σ allowance.
		unc := 8 / (w + 60 + 1)
		return math.Abs(sim.X-unc)/unc < 0.05
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Fatal(err)
	}
}

// TestLockModelSimCrossProperty: model and simulator agree within 15%
// on throughput across random feasible configurations — the committed
// model-vs-simulator contract for the lock scenario.
func TestLockModelSimCrossProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, nRaw, wRaw, soRaw uint8) bool {
		n := int(nRaw%8) + 1 // 1..8
		w := 400 + float64(wRaw)*8
		so := 40 + float64(soRaw%120)
		sim, err := RunLock(LockConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Handoff:    dist.NewDeterministic(20),
			Critical:   dist.NewExponential(so),
			WarmupTime: 30_000, MeasureTime: 500_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		mod, err := core.Lock(core.LockParams{Threads: n, W: w, St: 20, So: so, C2: 1})
		if err != nil {
			return false
		}
		return math.Abs(mod.X-sim.X)/sim.X < 0.15
	}
	if err := quick.Check(f, quickCfg(15)); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeBoundsProperty: simulated CAS-retry throughput never
// exceeds the conflict-free bound Threads/(W+So+St).
func TestLockFreeBoundsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, nRaw, wRaw, soRaw uint8) bool {
		n := int(nRaw%12) + 1
		w := 200 + float64(wRaw)*8
		so := 20 + float64(soRaw%100)
		sim, err := RunLockFree(LockFreeConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Round:      dist.NewExponential(so),
			Serial:     dist.NewDeterministic(5),
			WarmupTime: 20_000, MeasureTime: 300_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		_, free := core.LockFreeBounds(core.LockFreeParams{Threads: n, W: w, St: 5, So: so, C2: 1})
		return sim.X <= free*1.05+1e-9
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeDegenerationProperty: as the retry round shrinks the
// conflict window closes and the simulator collapses onto the
// conflict-free bound.
func TestLockFreeDegenerationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, wRaw uint8) bool {
		w := 500 + float64(wRaw)*8
		sim, err := RunLockFree(LockFreeConfig{
			Threads:    8,
			Work:       dist.NewExponential(w),
			Round:      dist.NewDeterministic(1), // So ≪ W: conflicts vanish
			Serial:     dist.NewDeterministic(2),
			WarmupTime: 20_000, MeasureTime: 1_500_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		// As in TestLockDegenerationProperty, the window is sized so 5%
		// is a > 4σ allowance on the throughput estimate.
		free := 8 / (w + 1 + 2)
		return sim.Conflict < 0.05 && math.Abs(sim.X-free)/free < 0.05
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeModelSimCrossProperty: conflict model and simulator agree
// within 15% on throughput across random configurations — the
// committed model-vs-simulator contract for the lock-free scenario.
func TestLockFreeModelSimCrossProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, nRaw, wRaw, soRaw uint8) bool {
		n := int(nRaw%8) + 1
		w := 300 + float64(wRaw)*8
		so := 30 + float64(soRaw%80)
		sim, err := RunLockFree(LockFreeConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Round:      dist.NewExponential(so),
			Serial:     dist.NewDeterministic(5),
			WarmupTime: 30_000, MeasureTime: 500_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		mod, err := core.LockFree(core.LockFreeParams{Threads: n, W: w, St: 5, So: so, C2: 1})
		if err != nil {
			return false
		}
		return math.Abs(mod.X-sim.X)/sim.X < 0.15
	}
	if err := quick.Check(f, quickCfg(15)); err != nil {
		t.Fatal(err)
	}
}

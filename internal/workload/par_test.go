package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/psim"
	"repro/internal/trace"
)

// parCases is the core/job matrix every workload must agree across.
var parCases = []struct {
	name string
	sync string
	jobs int
}{
	{"seq", "seq", 1},
	{"cons/j1", "cons", 1},
	{"cons/j8", "cons", 8},
	{"opt/j1", "opt", 1},
	{"opt/j8", "opt", 8},
}

// runPar runs one workload under one core and returns its trace bytes,
// its result, and the core statistics.
func runPar[T any](t *testing.T, run func(par *ParSim) (T, error), sync string, jobs int) ([]byte, T, psim.RunStats) {
	t.Helper()
	var tr psim.Trace
	var rs psim.RunStats
	res, err := run(&ParSim{Sync: sync, Jobs: jobs, Trace: &tr, Stats: &rs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res, rs
}

// checkParContract asserts the determinism contract for one workload:
// byte-identical traces and identical measurements across every core
// and job count.
func checkParContract[T any](t *testing.T, run func(par *ParSim) (T, error)) {
	t.Helper()
	wantTrace, wantRes, wantRS := runPar(t, run, "seq", 1)
	if wantRS.Events == 0 {
		t.Fatal("sequential run committed no events")
	}
	for _, tc := range parCases[1:] {
		gotTrace, gotRes, gotRS := runPar(t, run, tc.sync, tc.jobs)
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("%s: trace differs from sequential (%d vs %d bytes)", tc.name, len(gotTrace), len(wantTrace))
			continue
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("%s: result differs from sequential:\n got %+v\nwant %+v", tc.name, gotRes, wantRes)
		}
		if gotRS.Events != wantRS.Events || gotRS.MaxTime != wantRS.MaxTime {
			t.Errorf("%s: core stats differ: events %d/%d maxtime %v/%v",
				tc.name, gotRS.Events, wantRS.Events, gotRS.MaxTime, wantRS.MaxTime)
		}
	}
}

func TestAllToAllParContract(t *testing.T) {
	checkParContract(t, func(par *ParSim) (AllToAllResult, error) {
		return RunAllToAll(AllToAllConfig{
			P:             8,
			Work:          dist.NewDeterministic(100),
			Latency:       dist.NewDeterministic(10),
			Service:       dist.NewExponential(20),
			WarmupCycles:  5,
			MeasureCycles: 40,
			Seed:          7,
			Par:           par,
		})
	})
}

func TestAllToAllParProtocolProcessor(t *testing.T) {
	checkParContract(t, func(par *ParSim) (AllToAllResult, error) {
		return RunAllToAll(AllToAllConfig{
			P:                 6,
			Work:              dist.NewDeterministic(100),
			Latency:           dist.NewDeterministic(10),
			Service:           dist.NewExponential(20),
			WarmupCycles:      3,
			MeasureCycles:     25,
			ProtocolProcessor: true,
			Pattern:           RingPattern{},
			Seed:              11,
			Par:               par,
		})
	})
}

func TestWorkpileParContract(t *testing.T) {
	checkParContract(t, func(par *ParSim) (WorkpileResult, error) {
		return RunWorkpile(WorkpileConfig{
			P: 8, Ps: 2,
			Chunk:      dist.NewExponential(200),
			Latency:    dist.NewDeterministic(10),
			Service:    dist.NewExponential(30),
			WarmupTime: 500, MeasureTime: 4000,
			Seed: 3,
			Par:  par,
		})
	})
}

func TestLockParContract(t *testing.T) {
	checkParContract(t, func(par *ParSim) (LockSimResult, error) {
		return RunLock(LockConfig{
			Threads:    6,
			Work:       dist.NewExponential(300),
			Handoff:    dist.NewDeterministic(15),
			Critical:   dist.NewExponential(50),
			WarmupTime: 500, MeasureTime: 5000,
			Seed: 5,
			Par:  par,
		})
	})
}

func TestLockFreeParContract(t *testing.T) {
	checkParContract(t, func(par *ParSim) (LockFreeSimResult, error) {
		return RunLockFree(LockFreeConfig{
			Threads:    6,
			Work:       dist.NewExponential(200),
			Round:      dist.NewExponential(40),
			Serial:     dist.NewDeterministic(10),
			WarmupTime: 500, MeasureTime: 5000,
			Seed: 9,
			Par:  par,
		})
	})
}

// TestLockFreeParMatchesEngine pins the single-LP lock-free path to the
// engine-based path: identical stream construction and identical event
// ordering make the two draws-for-draw equivalent, so every measurement
// matches exactly.
func TestLockFreeParMatchesEngine(t *testing.T) {
	cfg := LockFreeConfig{
		Threads:    5,
		Work:       dist.NewExponential(150),
		Round:      dist.NewExponential(30),
		Serial:     dist.NewDeterministic(8),
		WarmupTime: 300, MeasureTime: 4000,
		Seed: 21,
	}
	eng, err := RunLockFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Par = &ParSim{Sync: "seq"}
	par, err := RunLockFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, eng) {
		t.Errorf("psim path diverges from engine path:\n psim %+v\n  eng %+v", par, eng)
	}
}

// TestParRejectsUnsupported checks that the psim path fails fast on
// machine features outside its envelope.
func TestParRejectsUnsupported(t *testing.T) {
	base := AllToAllConfig{
		P:             4,
		Work:          dist.NewDeterministic(100),
		Latency:       dist.NewDeterministic(10),
		Service:       dist.NewDeterministic(20),
		MeasureCycles: 5,
		Par:           &ParSim{},
	}
	cases := []struct {
		name   string
		mutate func(*AllToAllConfig)
	}{
		{"observer", func(c *AllToAllConfig) { c.Observer = &trace.Tracer{} }},
		{"link occupancy", func(c *AllToAllConfig) { c.LinkOccupancy = 0.5 }},
		{"ni queue cap", func(c *AllToAllConfig) { c.NIQueueCap = 4 }},
		{"retry delay", func(c *AllToAllConfig) { c.RetryDelay = 10 }},
		{"pair latency", func(c *AllToAllConfig) { c.PairLatency = func(a, b int) float64 { return 1 } }},
		{"bad sync", func(c *AllToAllConfig) { c.Par = &ParSim{Sync: "speculative"} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := RunAllToAll(cfg); err == nil {
			t.Errorf("%s: Par run accepted unsupported config", tc.name)
		}
	}
}

package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/runner"
)

// stdAllToAll returns the Figure 5-2 configuration at the given work.
func stdAllToAll(w float64, seed uint64) AllToAllConfig {
	return AllToAllConfig{
		P:             32,
		Work:          dist.NewDeterministic(w),
		Latency:       dist.NewDeterministic(40),
		Service:       dist.NewDeterministic(200),
		WarmupCycles:  300,
		MeasureCycles: 1500,
		Seed:          seed,
	}
}

func stdParams(w float64) core.Params {
	return core.Params{P: 32, W: w, St: 40, So: 200, C2: 0}
}

// TestAllToAllModelAccuracy is the headline validation of §5.3: across
// the work range of Figure 5-2, the LoPC prediction tracks the
// simulation within a few percent and errs on the pessimistic side,
// while the contention-free (naive LogP) estimate underpredicts badly
// at low W.
func TestAllToAllModelAccuracy(t *testing.T) {
	// The four sweep points are independent simulations; fan them out
	// on the parallel engine and assert over the ordered results. The
	// short tier keeps full fidelity (identical cycle counts) but trims
	// the sweep to its extremes and runs them through the conservative
	// core — the parallel path is what the quick tier exercises; the
	// full tier keeps the legacy engine and the whole sweep.
	ws := []float64{0, 64, 512, 2048}
	var par *ParSim
	if testing.Short() {
		ws = []float64{0, 512}
		par = &ParSim{Sync: "cons", Jobs: 2}
	}
	sims, err := runner.Map(len(ws), runner.Options{}, func(i int) (AllToAllResult, error) {
		cfg := stdAllToAll(ws[i], 1)
		cfg.Par = par.perRep()
		return RunAllToAll(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		sim := sims[i]
		model, err := core.AllToAll(stdParams(w))
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.R - sim.R.Mean()) / sim.R.Mean()
		if rel < -0.03 || rel > 0.10 {
			t.Errorf("W=%v: model R=%.1f vs sim R=%.1f (rel %.1f%%), outside the paper's error band",
				w, model.R, sim.R.Mean(), rel*100)
		}
		// Contention-free baseline must underpredict (the paper's -37%
		// at W=0 shrinking toward -13% at W=1024-2048).
		cf := stdParams(w).ContentionFree()
		cfErr := (cf - sim.R.Mean()) / sim.R.Mean()
		if cfErr > -0.05 {
			t.Errorf("W=%v: contention-free error %.1f%%, expected clearly negative", w, cfErr*100)
		}
		if w == 0 && (cfErr > -0.25 || cfErr < -0.45) {
			t.Errorf("W=0: contention-free error %.1f%%, paper reports about -37%%", cfErr*100)
		}
	}
}

// TestAllToAllComponentAccuracy checks the Figure 5-3 breakdown: each
// contention component predicted by the model tracks the simulator.
func TestAllToAllComponentAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, w := range []float64{64, 512} {
		sim, err := RunAllToAll(stdAllToAll(w, 2))
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.AllToAll(stdParams(w))
		if err != nil {
			t.Fatal(err)
		}
		// Absolute tolerances of a fraction of So: the paper notes the
		// reply-handler component is where Bard's approximation is
		// loosest (it over-predicts Ry's queueing).
		if d := math.Abs(model.Rw - sim.Rw.Mean()); d > 0.25*200 {
			t.Errorf("W=%v: Rw model %.1f vs sim %.1f", w, model.Rw, sim.Rw.Mean())
		}
		if d := math.Abs(model.Rq - sim.Rq.Mean()); d > 0.25*200 {
			t.Errorf("W=%v: Rq model %.1f vs sim %.1f", w, model.Rq, sim.Rq.Mean())
		}
		if model.Ry < sim.Ry.Mean()-0.05*200 {
			t.Errorf("W=%v: Ry model %.1f below sim %.1f (should over-predict)", w, model.Ry, sim.Ry.Mean())
		}
		// Network time is contention-free: exactly 2·St per cycle.
		if d := math.Abs(sim.Net.Mean() - 80); d > 1e-9 {
			t.Errorf("W=%v: mean network time %.3f, want exactly 80", w, sim.Net.Mean())
		}
	}
}

// TestAllToAllQueueLengthsMatchModel compares the machine's measured
// time-averaged queue lengths and utilizations with the model's Qq, Uq.
func TestAllToAllQueueLengthsMatchModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sim, err := RunAllToAll(stdAllToAll(256, 3))
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.AllToAll(stdParams(256))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(model.Uq - sim.Machine.UtilReq); d > 0.05 {
		t.Errorf("Uq model %.3f vs sim %.3f", model.Uq, sim.Machine.UtilReq)
	}
	if rel := (model.Qq - sim.Machine.ReqQueue) / math.Max(sim.Machine.ReqQueue, 0.05); rel < -0.15 || rel > 0.5 {
		t.Errorf("Qq model %.3f vs sim %.3f (Bard should slightly over-predict)", model.Qq, sim.Machine.ReqQueue)
	}
}

func TestAllToAllCycleIdentity(t *testing.T) {
	// Per-cycle identity: R = Rw + net + Rq + Ry holds in the mean
	// because the five tallies cover the cycle exactly.
	sim, err := RunAllToAll(stdAllToAll(128, 4))
	if err != nil {
		t.Fatal(err)
	}
	sum := sim.Rw.Mean() + sim.Net.Mean() + sim.Rq.Mean() + sim.Ry.Mean()
	if d := math.Abs(sum - sim.R.Mean()); d > 1e-6 {
		t.Errorf("component means sum to %.6f, R mean is %.6f", sum, sim.R.Mean())
	}
	if sim.R.N() != int64(32*1500) {
		t.Errorf("measured %d cycles, want %d", sim.R.N(), 32*1500)
	}
}

func TestAllToAllDeterministicBySeed(t *testing.T) {
	a, err := RunAllToAll(stdAllToAll(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllToAll(stdAllToAll(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.R.Mean() != b.R.Mean() || a.Rq.Mean() != b.Rq.Mean() {
		t.Error("identical seeds produced different measurements")
	}
	c, err := RunAllToAll(stdAllToAll(100, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.R.Mean() == c.R.Mean() {
		t.Error("different seeds produced identical means (suspicious)")
	}
}

func TestRingPatternIsContentionFree(t *testing.T) {
	// A perfectly regular, synchronized, deterministic ring exchange
	// never contends: every cycle is exactly W + 2St + 2So.
	cfg := AllToAllConfig{
		P:             16,
		Work:          dist.NewDeterministic(500),
		Latency:       dist.NewDeterministic(40),
		Service:       dist.NewDeterministic(200),
		Pattern:       RingPattern{},
		WarmupCycles:  0,
		MeasureCycles: 50,
		Seed:          1,
	}
	sim, err := RunAllToAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 + 2*40 + 2*200.0
	if sim.R.Mean() != want || sim.R.Max() != want || sim.R.Min() != want {
		t.Errorf("ring cycle times [%v, %v] mean %v, want exactly %v",
			sim.R.Min(), sim.R.Max(), sim.R.Mean(), want)
	}
}

func TestRingPatternDecaysWithVariance(t *testing.T) {
	// With variable handler times the regular schedule decays and
	// contention appears (Brewer & Kuszmaul's CM-5 observation).
	cfg := AllToAllConfig{
		P:             16,
		Work:          dist.NewDeterministic(500),
		Latency:       dist.NewDeterministic(40),
		Service:       dist.NewExponential(200),
		Pattern:       RingPattern{},
		WarmupCycles:  200,
		MeasureCycles: 1000,
		Seed:          1,
	}
	sim, err := RunAllToAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cf := 500 + 2*40 + 2*200.0
	if sim.R.Mean() <= cf {
		t.Errorf("exponential-handler ring R = %v, expected contention above %v", sim.R.Mean(), cf)
	}
}

func TestShiftPattern(t *testing.T) {
	cfg := stdAllToAll(100, 5)
	cfg.P = 8
	cfg.Pattern = ShiftPattern{Offset: 3}
	cfg.WarmupCycles, cfg.MeasureCycles = 10, 50
	if _, err := RunAllToAll(cfg); err != nil {
		t.Fatal(err)
	}
	if (ShiftPattern{Offset: 3}).String() == "" {
		t.Error("empty pattern name")
	}
}

func TestProtocolProcessorMatchesSharedMemoryModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := stdAllToAll(256, 9)
	cfg.ProtocolProcessor = true
	sim, err := RunAllToAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := stdParams(256)
	p.ProtocolProcessor = true
	model, err := core.AllToAll(p)
	if err != nil {
		t.Fatal(err)
	}
	rel := (model.R - sim.R.Mean()) / sim.R.Mean()
	if rel < -0.03 || rel > 0.10 {
		t.Errorf("PP mode: model R=%.1f vs sim R=%.1f (rel %.1f%%)", model.R, sim.R.Mean(), rel*100)
	}
	// Rw must be exactly W on every cycle: no preemption.
	if sim.Rw.Min() != 256 || sim.Rw.Max() != 256 {
		t.Errorf("PP mode Rw range [%v, %v], want exactly 256", sim.Rw.Min(), sim.Rw.Max())
	}
}

func TestAllToAllConfigValidation(t *testing.T) {
	bad := []AllToAllConfig{
		{P: 1, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 0},
		{P: 4, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1, WarmupCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := RunAllToAll(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// --- Work-pile ---

func stdWorkpile(ps int, seed uint64) WorkpileConfig {
	return WorkpileConfig{
		P: 32, Ps: ps,
		Chunk:      dist.NewExponential(1500),
		Latency:    dist.NewDeterministic(40),
		Service:    dist.NewDeterministic(131),
		WarmupTime: 100_000, MeasureTime: 1_500_000,
		Seed: seed,
	}
}

func stdCSParams(ps int) core.ClientServerParams {
	return core.ClientServerParams{P: 32, Ps: ps, W: 1500, St: 40, So: 131, C2: 0}
}

// TestWorkpileModelAccuracy: the Chapter 6 model tracks simulated
// throughput within a few percent across the server-count range
// (the paper reports the model conservative by at most 3%).
func TestWorkpileModelAccuracy(t *testing.T) {
	// Short tier: full fidelity (identical windows) at the saturated and
	// near-optimal allocations, through the conservative core.
	pss := []int{2, 5, 9, 16, 24}
	var par *ParSim
	if testing.Short() {
		pss = []int{2, 9}
		par = &ParSim{Sync: "cons", Jobs: 2}
	}
	for _, ps := range pss {
		cfg := stdWorkpile(ps, 11)
		cfg.Par = par.perRep()
		sim, err := RunWorkpile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.ClientServer(stdCSParams(ps))
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.X - sim.X) / sim.X
		if math.Abs(rel) > 0.08 {
			t.Errorf("Ps=%d: model X=%.5f vs sim X=%.5f (rel %.1f%%)", ps, model.X, sim.X, rel*100)
		}
		// Server response times. Bard's approximation overestimates the
		// queue seen on arrival, and most at saturation (few servers),
		// so allow a wider, one-sided-leaning band there; the paper's
		// accuracy claim is about throughput, which the check above
		// holds to a few percent.
		relRs := (model.Rs - sim.Rs.Mean()) / sim.Rs.Mean()
		tol := 0.12
		if ps <= 3 {
			tol = 0.16
		}
		if math.Abs(relRs) > tol {
			t.Errorf("Ps=%d: model Rs=%.1f vs sim Rs=%.1f (rel %.1f%%)", ps, model.Rs, sim.Rs.Mean(), relRs*100)
		}
	}
}

// TestWorkpileOptimumLocation: the simulated throughput peaks within
// one server of the Eq. 6.8 closed form.
func TestWorkpileOptimumLocation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt, err := core.OptimalServersInt(stdCSParams(1))
	if err != nil {
		t.Fatal(err)
	}
	xAt := func(ps int) float64 {
		sim, err := RunWorkpile(stdWorkpile(ps, 13))
		if err != nil {
			t.Fatal(err)
		}
		return sim.X
	}
	xOpt := math.Max(xAt(opt), math.Max(xAt(opt-1), xAt(opt+1)))
	// Far-off allocations must be clearly worse.
	if xFar := xAt(opt + 10); xFar >= xOpt {
		t.Errorf("X at Ps=%d (%.5f) not below optimum band (%.5f)", opt+10, xFar, xOpt)
	}
	if xFar := xAt(1); opt > 3 && xFar >= xOpt {
		t.Errorf("X at Ps=1 (%.5f) not below optimum band (%.5f)", xFar, xOpt)
	}
}

// TestWorkpileQueueLengthAtOptimum: the Chapter 6 argument — at the
// optimal allocation the mean queue length per server is about 1.
func TestWorkpileQueueLengthAtOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt, err := core.OptimalServersInt(stdCSParams(1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := RunWorkpile(stdWorkpile(opt, 17))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Qs < 0.5 || sim.Qs > 1.8 {
		t.Errorf("Qs at optimal allocation = %.3f, expected near 1", sim.Qs)
	}
}

func TestWorkpileBoundsHold(t *testing.T) {
	for _, ps := range []int{2, 16} {
		sim, err := RunWorkpile(stdWorkpile(ps, 19))
		if err != nil {
			t.Fatal(err)
		}
		server, client := core.ClientServerBounds(stdCSParams(ps))
		bound := math.Min(server, client)
		if sim.X > bound*1.02 {
			t.Errorf("Ps=%d: sim X=%.5f exceeds optimistic bound %.5f", ps, sim.X, bound)
		}
	}
}

func TestWorkpileConfigValidation(t *testing.T) {
	bad := []WorkpileConfig{
		{P: 4, Ps: 0, Chunk: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureTime: 1},
		{P: 4, Ps: 4, Chunk: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureTime: 1},
		{P: 4, Ps: 1, Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureTime: 1},
		{P: 4, Ps: 1, Chunk: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureTime: 0},
	}
	for i, cfg := range bad {
		if _, err := RunWorkpile(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// --- Multi-hop ---

func TestMultiHopMatchesGeneralModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, hops := range []int{1, 2, 3} {
		cfg := MultiHopConfig{
			P: 16, Hops: hops,
			Work:         dist.NewDeterministic(1000),
			Latency:      dist.NewDeterministic(40),
			Service:      dist.NewDeterministic(150),
			WarmupCycles: 200, MeasureCycles: 1000,
			Seed: 23,
		}
		sim, err := RunMultiHop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws := make([]float64, 16)
		for i := range ws {
			ws[i] = 1000
		}
		model, err := core.General(core.GeneralParams{
			P: 16, W: ws, V: core.MultiHopVisits(16, hops),
			St: 40, So: []float64{150}, C2: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.R[0] - sim.R.Mean()) / sim.R.Mean()
		// The simulation forwards uniformly from the current holder
		// (which can revisit the originator), while the model spreads
		// visits from the originator's viewpoint; allow a wider band
		// than single-hop.
		if math.Abs(rel) > 0.10 {
			t.Errorf("hops=%d: model R=%.1f vs sim R=%.1f (rel %.1f%%)", hops, model.R[0], sim.R.Mean(), rel*100)
		}
		if n := sim.RqPerHop.N(); n != int64(16*1000*hops) {
			t.Errorf("hops=%d: recorded %d hop responses, want %d", hops, n, 16*1000*hops)
		}
	}
}

func TestMultiHopConfigValidation(t *testing.T) {
	good := MultiHopConfig{
		P: 4, Hops: 1,
		Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1),
		MeasureCycles: 1,
	}
	if _, err := RunMultiHop(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []MultiHopConfig{
		{P: 2, Hops: 1, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Hops: 0, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Hops: 1, Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
	}
	for i, cfg := range bad {
		if _, err := RunMultiHop(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// --- Patterns ---

func TestHotspotVisitsRowsSumToOne(t *testing.T) {
	v := HotspotVisits(8, 3, 0.5)
	for c, row := range v {
		sum := 0.0
		for k, x := range row {
			if k == c && x != 0 {
				t.Errorf("self-visit at %d", c)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", c, sum)
		}
	}
	// The hot node's row is uniform.
	if v[3][0] != 1.0/7 {
		t.Errorf("hot row entry = %v, want 1/7", v[3][0])
	}
}

func TestHotspotPatternLoadsHotNode(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := stdAllToAll(512, 29)
	cfg.P = 16
	cfg.Pattern = HotspotPattern{Hot: 0, Bias: 0.5}
	cfg.WarmupCycles, cfg.MeasureCycles = 100, 500
	sim, err := RunAllToAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The hot node absorbs far more requests, raising overall Rq above
	// the homogeneous prediction.
	homog, err := core.AllToAll(core.Params{P: 16, W: 512, St: 40, So: 200, C2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Rq.Mean() <= homog.Rq {
		t.Errorf("hotspot Rq %.1f not above homogeneous %.1f", sim.Rq.Mean(), homog.Rq)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{UniformPattern{}, RingPattern{}, ShiftPattern{1}, HotspotPattern{0, 0.5}} {
		if p.String() == "" {
			t.Errorf("%T has empty String", p)
		}
	}
}

package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
)

// quickCfg pins testing/quick's input generation to a fixed seed so the
// property tests exercise the same configurations on every run. The
// default Config seeds from the wall clock, which makes a statistical
// allowance (see TestWorkpileBoundsProperty) a per-run coin flip.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(0x10bc))}
}

// TestAllToAllInvariantsProperty drives the simulator over random
// configurations and checks the structural invariants the model's
// derivation rests on:
//
//	R ≥ contention-free time (the lower bound of Eq. 5.12)
//	R = Rw + net + Rq + Ry  (the Figure 4-3 decomposition, exactly)
//	Rw ≥ W, Rq ≥ So, Ry ≥ So  (deterministic costs)
//	net = 2·St exactly  (contention-free network)
func TestAllToAllInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, pRaw, wRaw, stRaw, soRaw uint8) bool {
		p := int(pRaw%11) + 2 // 2..12
		w := float64(wRaw) * 8
		st := float64(stRaw%100) + 1
		so := float64(soRaw%200) + 20
		sim, err := RunAllToAll(AllToAllConfig{
			P:             p,
			Work:          dist.NewDeterministic(w),
			Latency:       dist.NewDeterministic(st),
			Service:       dist.NewDeterministic(so),
			WarmupCycles:  20,
			MeasureCycles: 120,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		cf := w + 2*st + 2*so
		if sim.R.Mean() < cf-1e-9 || sim.R.Min() < cf-1e-9 {
			return false
		}
		sum := sim.Rw.Mean() + sim.Net.Mean() + sim.Rq.Mean() + sim.Ry.Mean()
		if math.Abs(sum-sim.R.Mean()) > 1e-6 {
			return false
		}
		if sim.Rw.Min() < w-1e-9 || sim.Rq.Min() < so-1e-9 || sim.Ry.Min() < so-1e-9 {
			return false
		}
		return math.Abs(sim.Net.Mean()-2*st) < 1e-9
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// TestAllToAllUpperBoundProperty: simulated response stays below the
// Eq. 5.12 upper bound across random deterministic configurations.
func TestAllToAllUpperBoundProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	beta := core.UpperBoundBeta(0)
	f := func(seed uint64, wRaw, soRaw uint8) bool {
		w := float64(wRaw) * 8
		so := float64(soRaw%200) + 20
		sim, err := RunAllToAll(AllToAllConfig{
			P:             16,
			Work:          dist.NewDeterministic(w),
			Latency:       dist.NewDeterministic(40),
			Service:       dist.NewDeterministic(so),
			WarmupCycles:  40,
			MeasureCycles: 200,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		return sim.R.Mean() <= w+80+beta*so+1e-6
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// TestWorkpileBoundsProperty: simulated work-pile throughput never
// exceeds the LogP-style optimistic bounds, at any allocation.
func TestWorkpileBoundsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, psRaw, wRaw uint8) bool {
		ps := int(psRaw%14) + 1
		w := 200 + float64(wRaw)*16
		sim, err := RunWorkpile(WorkpileConfig{
			P: 16, Ps: ps,
			Chunk:      dist.NewExponential(w),
			Latency:    dist.NewDeterministic(40),
			Service:    dist.NewDeterministic(100),
			WarmupTime: 30_000, MeasureTime: 400_000,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		server, client := core.ClientServerBounds(core.ClientServerParams{
			P: 16, Ps: ps, W: w, St: 40, So: 100, C2: 0,
		})
		// The allowance covers finite-window measurement noise: with
		// few clients and exponential chunks the window holds only a
		// few hundred completions, so the estimator carries several
		// percent of standard error (excursions up to ~12% observed at
		// ps=13, w≈3800, where three clients complete ≈100 chunks each).
		return sim.X <= math.Min(server, client)*1.15+1e-9
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// TestNonBlockingConservationProperty: per-thread non-blocking
// throughput equals 1/(W+2So) across random configurations.
func TestNonBlockingConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := func(seed uint64, wRaw, soRaw uint8) bool {
		w := 100 + float64(wRaw)*8
		so := 20 + float64(soRaw%150)
		sim, err := RunNonBlocking(NonBlockingConfig{
			P:            8,
			Work:         dist.NewDeterministic(w),
			Latency:      dist.NewDeterministic(30),
			Service:      dist.NewDeterministic(so),
			WarmupCycles: 50, MeasureCycles: 400,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		want := 1 / (w + 2*so)
		return math.Abs(sim.X-want)/want < 0.05
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// TestAllToAllSeedInsensitivityOfMeans: different seeds give means
// within statistical noise of each other (a smoke test for hidden
// seed-dependent bias).
func TestAllToAllSeedInsensitivityOfMeans(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Five replications on the parallel engine; RunAllToAllN derives an
	// independent seed per replication, which is exactly the property
	// under test.
	agg, err := RunAllToAllN(stdAllToAll(256, 1), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var means []float64
	for i := range agg.Reps {
		means = append(means, agg.Reps[i].R.Mean())
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		lo, hi = math.Min(lo, m), math.Max(hi, m)
	}
	if (hi-lo)/lo > 0.02 {
		t.Errorf("seed spread %.2f%% across means %v", 100*(hi-lo)/lo, means)
	}
}

package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func exCfg(p, rounds int, o float64, handler dist.Distribution, barrier bool, seed uint64) ExchangeConfig {
	return ExchangeConfig{
		P: p, Rounds: rounds,
		SendOverhead: o,
		Latency:      dist.NewDeterministic(40),
		Handler:      handler,
		Barrier:      barrier,
		Seed:         seed,
	}
}

// TestExchangeDeterministicIsPeriodic: with constant costs the
// staggered schedule settles into perfectly periodic rounds, bounded
// below by the LogP (polling-model) schedule and above by it plus one
// handler insertion per arrival — the interrupt-driven machine lets
// incoming handlers preempt the send loop, which pure LogP does not
// model.
func TestExchangeDeterministicIsPeriodic(t *testing.T) {
	for _, p := range []int{4, 8, 32} {
		res, err := RunExchange(exCfg(p, 10, 25, dist.NewDeterministic(20), false, 1))
		if err != nil {
			t.Fatal(err)
		}
		sched := float64(p-1)*25 + 40 + 20
		if math.Abs(res.SchedulePerRound-sched) > 1e-9 {
			t.Fatalf("P=%d: schedule %v, want %v", p, res.SchedulePerRound, sched)
		}
		upper := sched + float64(p-1)*20
		first := res.RoundTime[0]
		for r, rt := range res.RoundTime {
			if math.Abs(rt-first) > 1e-9 {
				t.Fatalf("P=%d: deterministic rounds not periodic: round %d took %v vs %v", p, r, rt, first)
			}
			if rt < sched-1e-9 || rt > upper+1e-9 {
				t.Fatalf("P=%d round %d took %v, outside [%v, %v]", p, r, rt, sched, upper)
			}
		}
	}
}

// TestExchangeSlowHandlersQueueEvenWhenScheduled: with h > o the
// receivers cannot drain at the send rate, so even the deterministic
// schedule queues and rounds exceed the naive estimate.
func TestExchangeSlowHandlersQueueEvenWhenScheduled(t *testing.T) {
	res, err := RunExchange(exCfg(16, 5, 10, dist.NewDeterministic(30), false, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver-bound: the last of 15 messages cannot finish before
	// 15·h after the first arrival.
	lower := 15*30 + 40.0
	for r, rt := range res.RoundTime {
		if rt < lower-1e-9 {
			t.Fatalf("round %d took %v, below receiver bound %v", r, rt, lower)
		}
		if rt <= res.SchedulePerRound {
			t.Fatalf("round %d took %v, not above naive schedule %v", r, rt, res.SchedulePerRound)
		}
	}
}

// TestExchangeVarianceDecaysSchedule: exponential handlers make rounds
// slower than the schedule — the CM-5 observation.
func TestExchangeVarianceDecaysSchedule(t *testing.T) {
	res, err := RunExchange(exCfg(32, 20, 25, dist.NewExponential(20), false, 2))
	if err != nil {
		t.Fatal(err)
	}
	if mean := res.MeanRoundTime(0, 20); mean <= res.SchedulePerRound {
		t.Errorf("mean round %v not above schedule %v", mean, res.SchedulePerRound)
	}
}

// TestExchangeBarrierResynchronizes: the introduction's claim — with
// barriers the *data phase* stays tighter (the rounds restart
// synchronized), at the price of the barrier itself, which is why the
// original LogP study needed barriers on the CM-5 and why the paper
// notes such barriers are expensive on most machines.
func TestExchangeBarrierResynchronizes(t *testing.T) {
	handler := func() dist.Distribution { return dist.NewExponential(20) }
	noBar, err := RunExchange(exCfg(32, 30, 25, handler(), false, 3))
	if err != nil {
		t.Fatal(err)
	}
	withBar, err := RunExchange(exCfg(32, 30, 25, handler(), true, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state tail (skip the first rounds while drift builds).
	dataNo := noBar.MeanDataTime(10, 30)
	dataBar := withBar.MeanDataTime(10, 30)
	if dataBar >= dataNo {
		t.Errorf("barrier did not tighten the data phase: %v with barrier, %v without", dataBar, dataNo)
	}
	if withBar.BarrierPerRound <= 0 {
		t.Error("barrier cost not reported")
	}
	// And the barrier is not free: total rounds cost more with it.
	if withBar.MeanRoundTime(10, 30) <= dataNo {
		t.Errorf("expected the barrier's own cost to show in total round time")
	}
}

// TestExchangeVarianceDecayIsPersistent: without barriers the decayed
// state persists — late rounds stay well above what the same
// configuration costs with deterministic handlers.
func TestExchangeVarianceDecayIsPersistent(t *testing.T) {
	det, err := RunExchange(exCfg(32, 30, 25, dist.NewDeterministic(20), false, 4))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := RunExchange(exCfg(32, 30, 25, dist.NewExponential(20), false, 4))
	if err != nil {
		t.Fatal(err)
	}
	if late := exp.MeanRoundTime(20, 30); late <= det.MeanRoundTime(20, 30) {
		t.Errorf("late exponential rounds %v not above deterministic %v", late, det.MeanRoundTime(20, 30))
	}
}

func TestExchangeBarrierDeterministicCost(t *testing.T) {
	// Deterministic with barriers: rounds are periodic and cost at
	// least schedule + barrier; the interrupt interference adds at most
	// one handler per received message (data + barrier steps).
	res, err := RunExchange(exCfg(16, 5, 25, dist.NewDeterministic(20), true, 5))
	if err != nil {
		t.Fatal(err)
	}
	lower := res.SchedulePerRound + res.BarrierPerRound
	upper := lower + float64(16-1+4)*20
	first := res.RoundTime[0]
	for r, rt := range res.RoundTime {
		if math.Abs(rt-first) > 1e-9 {
			t.Fatalf("deterministic barrier rounds not periodic: round %d %v vs %v", r, rt, first)
		}
		if rt < lower-1e-9 || rt > upper+1e-9 {
			t.Fatalf("round %d took %v, outside [%v, %v]", r, rt, lower, upper)
		}
	}
}

func TestExchangeRoundEndsMonotone(t *testing.T) {
	res, err := RunExchange(exCfg(8, 10, 10, dist.NewExponential(30), false, 6))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r, end := range res.RoundEnd {
		if end <= prev {
			t.Fatalf("round %d end %v not after %v", r, end, prev)
		}
		prev = end
	}
	if res.Total != res.RoundEnd[len(res.RoundEnd)-1] {
		t.Error("Total != last round end")
	}
}

func TestExchangeConfigValidation(t *testing.T) {
	bad := []ExchangeConfig{
		{P: 1, Rounds: 1, Latency: dist.NewDeterministic(1), Handler: dist.NewDeterministic(1)},
		{P: 4, Rounds: 0, Latency: dist.NewDeterministic(1), Handler: dist.NewDeterministic(1)},
		{P: 4, Rounds: 1, Handler: dist.NewDeterministic(1)},
		{P: 4, Rounds: 1, Latency: dist.NewDeterministic(1), Handler: dist.NewDeterministic(1), SendOverhead: -1},
	}
	for i, cfg := range bad {
		if _, err := RunExchange(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExchangeMeanRoundTimeClamps(t *testing.T) {
	res := ExchangeResult{RoundTime: []float64{1, 2, 3}}
	if m := res.MeanRoundTime(-5, 100); math.Abs(m-2) > 1e-12 {
		t.Errorf("clamped mean = %v, want 2", m)
	}
	if m := res.MeanRoundTime(2, 2); m != 0 {
		t.Errorf("empty range mean = %v, want 0", m)
	}
}

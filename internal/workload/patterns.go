// Package workload drives the simulated machine (internal/machine) with
// the communication patterns the LoPC paper studies — homogeneous
// all-to-all (Ch. 5), client-server work-pile (Ch. 6), and multi-hop
// requests (App. A) — and measures exactly the quantities the model
// predicts: the compute/request cycle time R and its components Rw, Rq,
// Ry, plus throughput, queue lengths, and utilizations.
package workload

import (
	"fmt"

	"repro/internal/machine"
)

// Pattern chooses the destination of each request a node makes.
// Implementations must be deterministic given the node's stream.
type Pattern interface {
	// Dest returns the destination for the next request from self.
	Dest(m *machine.Machine, self int) int
	// String names the pattern for experiment logs.
	String() string
}

// UniformPattern sends each request to a uniformly random peer — the
// irregular, homogeneous pattern of Chapter 5.
type UniformPattern struct{}

// Dest implements Pattern.
func (UniformPattern) Dest(m *machine.Machine, self int) int {
	d := m.Rand(self).Intn(m.P() - 1)
	if d >= self {
		d++
	}
	return d
}

func (UniformPattern) String() string { return "uniform" }

// RingPattern always sends to the next node around a ring — a perfectly
// regular pattern. If every node stays synchronized it is
// contention-free; small timing perturbations (e.g. non-zero handler
// variance) decay it toward the random behaviour Brewer and Kuszmaul
// observed on the CM-5.
type RingPattern struct{}

// Dest implements Pattern.
func (RingPattern) Dest(m *machine.Machine, self int) int {
	return (self + 1) % m.P()
}

func (RingPattern) String() string { return "ring" }

// ShiftPattern sends to the node Offset positions ahead (mod P), a
// generalization of RingPattern.
type ShiftPattern struct{ Offset int }

// Dest implements Pattern.
func (s ShiftPattern) Dest(m *machine.Machine, self int) int {
	p := m.P()
	d := (self + s.Offset) % p
	if d < 0 {
		d += p
	}
	if d == self {
		// Degenerate offset: fall back to the next node so a request
		// never targets its own sender.
		d = (self + 1) % p
	}
	return d
}

func (s ShiftPattern) String() string { return fmt.Sprintf("shift(%d)", s.Offset) }

// HotspotPattern sends a fraction Bias of requests to node Hot and the
// rest uniformly — a non-homogeneous pattern for exercising the general
// (Appendix A) model.
type HotspotPattern struct {
	Hot  int
	Bias float64 // in [0, 1]
}

// Dest implements Pattern.
func (h HotspotPattern) Dest(m *machine.Machine, self int) int {
	r := m.Rand(self)
	if h.Hot != self && r.Float64() < h.Bias {
		return h.Hot
	}
	d := r.Intn(m.P() - 1)
	if d >= self {
		d++
	}
	return d
}

func (h HotspotPattern) String() string { return fmt.Sprintf("hotspot(%d,%.2f)", h.Hot, h.Bias) }

// HotspotVisits returns the Appendix-A visit matrix corresponding to
// HotspotPattern: each non-hot thread sends Bias of its traffic to Hot
// and spreads the remainder uniformly over the other peers; the hot
// thread itself sends uniformly.
func HotspotVisits(p, hot int, bias float64) [][]float64 {
	v := make([][]float64, p)
	for c := range v {
		v[c] = make([]float64, p)
		if c == hot {
			for k := range v[c] {
				if k != c {
					v[c][k] = 1 / float64(p-1)
				}
			}
			continue
		}
		rest := (1 - bias) / float64(p-1)
		for k := range v[c] {
			if k == c {
				continue
			}
			if k == hot {
				// The uniform remainder also lands on the hot node with
				// probability rest... except HotspotPattern draws the
				// uniform destination from all peers, hot included.
				v[c][k] = bias + rest
			} else {
				v[c][k] = rest
			}
		}
	}
	return v
}

package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine/shard"
	"repro/internal/psim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ParSim routes a workload run through the parallel discrete-event core
// (internal/psim) instead of the single-threaded machine engine. Setting
// a config's Par field selects the core; the determinism contract
// guarantees that for a fixed seed every core at every job count commits
// the identical event sequence, so the measured results are the same
// whether the run is sequential, conservative, or optimistic.
//
// The psim path supports the paper's machine only: the all-to-all
// extras (Observer, LinkOccupancy, NIQueueCap, RetryDelay, PairLatency)
// are rejected, and only the stateless patterns (uniform, ring, shift,
// hotspot) are available. Machine-level statistics are reset per node at
// that node's own warmup boundary (the single-threaded engine resets
// globally when the last node finishes warmup), so windowed time
// averages can differ from the legacy engine by the warmup skew; the
// per-cycle tallies (R, Rw, Rq, Ry, Net) measure identically.
type ParSim struct {
	// Sync names the synchronization core: "seq", "cons", or "opt".
	// Empty means "seq".
	Sync string
	// Jobs bounds worker parallelism in the parallel cores; <= 0 means
	// GOMAXPROCS. Jobs never affects results, only wall-clock time.
	Jobs int
	// Window overrides the optimistic core's speculation window beyond
	// GVT; <= 0 means 8x the lookahead.
	Window float64
	// Trace, when non-nil, collects the committed event trace — the
	// byte-comparable artifact of the determinism contract.
	Trace *psim.Trace
	// Stats, when non-nil, receives the core's run statistics (events,
	// rounds, rollbacks).
	Stats *psim.RunStats
	// Metrics, when non-nil, accumulates core counters (safe to share
	// across runs; the counters are atomic).
	Metrics *psim.Metrics
	// Spans, when non-nil, records one Chrome-trace span per LP drain in
	// the parallel cores.
	Spans *trace.Spans
}

// core parses the Sync spelling.
func (p *ParSim) core() (psim.Sync, error) {
	if p.Sync == "" {
		return psim.SyncSeq, nil
	}
	return psim.ParseSync(p.Sync)
}

// perRep clones the selection for one replication of a replicated run:
// the core choice carries over, the per-run outputs (Trace, Stats,
// Spans) do not — replications would race on them. Metrics survives the
// clone because its counters are atomic and accumulation across
// replications is the point.
func (p *ParSim) perRep() *ParSim {
	if p == nil {
		return nil
	}
	return &ParSim{Sync: p.Sync, Jobs: p.Jobs, Window: p.Window, Metrics: p.Metrics}
}

// finish publishes the core statistics to the caller.
func (p *ParSim) finish(rs psim.RunStats) {
	if p.Stats != nil {
		*p.Stats = rs
	}
}

// parDest maps a Pattern onto the sharded machine. Only the stateless
// patterns are supported: their destinations are pure functions of the
// node's private stream, which is what the optimistic core needs to
// replay rolled-back draws identically.
func parDest(p Pattern) (func(v *shard.NodeView) int, error) {
	if p == nil {
		p = UniformPattern{}
	}
	switch pat := p.(type) {
	case UniformPattern:
		return func(v *shard.NodeView) int {
			d := v.Rand().Intn(v.N() - 1)
			if d >= v.Self() {
				d++
			}
			return d
		}, nil
	case RingPattern:
		return func(v *shard.NodeView) int {
			return (v.Self() + 1) % v.N()
		}, nil
	case ShiftPattern:
		return func(v *shard.NodeView) int {
			n := v.N()
			d := (v.Self() + pat.Offset) % n
			if d < 0 {
				d += n
			}
			if d == v.Self() {
				d = (v.Self() + 1) % n
			}
			return d
		}, nil
	case HotspotPattern:
		return func(v *shard.NodeView) int {
			r := v.Rand()
			if pat.Hot != v.Self() && r.Float64() < pat.Bias {
				return pat.Hot
			}
			d := r.Intn(v.N() - 1)
			if d >= v.Self() {
				d++
			}
			return d
		}, nil
	default:
		return nil, fmt.Errorf("workload: pattern %s is not supported with Par (stateless patterns only)", p)
	}
}

// atParRun is the immutable configuration shared by every all-to-all
// node program on the sharded machine.
type atParRun struct {
	work            dist.Distribution
	warmup, measure int
	dest            func(v *shard.NodeView) int
}

// atParProg is atProgram on the sharded machine: the same
// compute/request/unblock cycle, with the round-trip timestamps read
// from the node's CycleInfo and the measurements kept in program state
// so optimistic rollback unwinds them.
type atParProg struct {
	run                *atParRun
	phase              int // 0: first call, 1: compute done -> request, 2: reply unblocked
	cycle              int
	ready              float64
	r, rw, rq, ry, net stats.Tally
}

// Next implements shard.Program.
func (p *atParProg) Next(v *shard.NodeView) shard.Action {
	switch p.phase {
	case phaseSend:
		p.phase = phaseUnblocked
		//lopc:allow allochot dest is one of the four fixed pattern closures (uniform/ring/shift/hotspot), each a bounded allocation-free arithmetic draw
		return shard.Request(p.run.dest(v), 0, 0)
	case phaseUnblocked:
		p.endCycle(v)
		if p.cycle >= p.run.warmup+p.run.measure {
			return shard.Halt()
		}
	default: // first call
		p.ready = v.Now()
	}
	p.phase = phaseSend
	return shard.Compute(p.run.work.Sample(v.Rand()))
}

// endCycle mirrors atProgram.endCycle: record the completed cycle and
// roll ready to the reply handler's completion.
func (p *atParProg) endCycle(v *shard.NodeView) {
	c := v.Cycle()
	if p.cycle >= p.run.warmup {
		p.r.Add(c.RepDone - p.ready)
		p.rw.Add(c.ReqSent - p.ready)
		p.rq.Add(c.ReqDone - c.ReqArrived)
		p.ry.Add(c.RepDone - c.RepArrived)
		p.net.Add((c.ReqArrived - c.ReqSent) + (c.RepArrived - c.RepSent))
	}
	p.cycle++
	if p.cycle == p.run.warmup {
		v.ResetStats()
	}
	p.ready = c.RepDone
}

// Save and Restore implement shard.Program; the state is all values.
func (p *atParProg) Save() any            { s := *p; return &s }
func (p *atParProg) Restore(snapshot any) { *p = *snapshot.(*atParProg) }

// runAllToAllPar is RunAllToAll through the parallel core.
func runAllToAllPar(cfg AllToAllConfig) (AllToAllResult, error) {
	//lopc:allow floateq exact-zero tests against the unset-field default, not computed values
	if cfg.Observer != nil || cfg.LinkOccupancy != 0 || cfg.NIQueueCap != 0 ||
		//lopc:allow floateq same unset-field sentinel check continued
		cfg.RetryDelay != 0 || cfg.PairLatency != nil {
		return AllToAllResult{}, fmt.Errorf("workload: Par supports the paper machine only " +
			"(no Observer, LinkOccupancy, NIQueueCap, RetryDelay, or PairLatency)")
	}
	sync, err := cfg.Par.core()
	if err != nil {
		return AllToAllResult{}, err
	}
	dest, err := parDest(cfg.Pattern)
	if err != nil {
		return AllToAllResult{}, err
	}
	run := &atParRun{
		work:    cfg.Work,
		warmup:  cfg.WarmupCycles,
		measure: cfg.MeasureCycles,
		dest:    dest,
	}
	progs := make([]shard.Program, cfg.P)
	nodes := make([]*atParProg, cfg.P)
	for i := range progs {
		nodes[i] = &atParProg{run: run}
		progs[i] = nodes[i]
	}
	sres, err := shard.Run(shard.Config{
		P:                 cfg.P,
		Latency:           cfg.Latency,
		Services:          []dist.Distribution{cfg.Service},
		Programs:          progs,
		ProtocolProcessor: cfg.ProtocolProcessor,
		Seed:              cfg.Seed,
		Sync:              sync,
		Jobs:              cfg.Par.Jobs,
		Window:            cfg.Par.Window,
		Trace:             cfg.Par.Trace,
		Metrics:           cfg.Par.Metrics,
		Spans:             cfg.Par.Spans,
	})
	if err != nil {
		return AllToAllResult{}, err
	}
	var res AllToAllResult
	for _, p := range nodes {
		res.R.Merge(&p.r)
		res.Rw.Merge(&p.rw)
		res.Rq.Merge(&p.rq)
		res.Ry.Merge(&p.ry)
		res.Net.Merge(&p.net)
	}
	res.Machine = sres.Aggregate()
	if mean := res.R.Mean(); mean > 0 {
		res.X = float64(cfg.P) / mean
	}
	cfg.Par.finish(sres.Run)
	return res, nil
}

// wpParRun is the shared configuration of a work-pile run on the
// sharded machine.
type wpParRun struct {
	pc, ps      int
	warmup, end float64
}

// wpParProg is wpProgram on the sharded machine: clients cycle through
// compute and a request to a uniformly random server; measurements are
// windowed on the reply completion time.
type wpParProg struct {
	run    *wpParRun
	chunk  dist.Distribution
	phase  int
	ready  float64
	r, rs  stats.Tally
	chunks int64
}

// Next implements shard.Program.
func (p *wpParProg) Next(v *shard.NodeView) shard.Action {
	switch p.phase {
	case phaseSend:
		p.phase = phaseUnblocked
		dst := p.run.pc + v.Rand().Intn(p.run.ps)
		return shard.Request(dst, 0, 0)
	case phaseUnblocked:
		c := v.Cycle()
		if c.RepDone >= p.run.warmup && c.RepDone <= p.run.end {
			p.r.Add(c.RepDone - p.ready)
			p.rs.Add(c.ReqDone - c.ReqArrived)
			p.chunks++
		}
		p.ready = c.RepDone
	default: // first call
		p.ready = v.Now()
	}
	p.phase = phaseSend
	return shard.Compute(p.chunk.Sample(v.Rand()))
}

// Save and Restore implement shard.Program.
func (p *wpParProg) Save() any            { s := *p; return &s }
func (p *wpParProg) Restore(snapshot any) { *p = *snapshot.(*wpParProg) }

// runWorkpilePar is RunWorkpile through the parallel core.
func runWorkpilePar(cfg WorkpileConfig) (WorkpileResult, error) {
	sync, err := cfg.Par.core()
	if err != nil {
		return WorkpileResult{}, err
	}
	end := cfg.WarmupTime + cfg.MeasureTime
	pc := cfg.P - cfg.Ps
	run := &wpParRun{pc: pc, ps: cfg.Ps, warmup: cfg.WarmupTime, end: end}
	progs := make([]shard.Program, cfg.P)
	clients := make([]*wpParProg, pc)
	for i := 0; i < pc; i++ {
		chunk := cfg.Chunk
		if cfg.PerClientChunk != nil && cfg.PerClientChunk[i] != nil {
			chunk = cfg.PerClientChunk[i]
		}
		clients[i] = &wpParProg{run: run, chunk: chunk}
		progs[i] = clients[i]
	}
	sres, err := shard.Run(shard.Config{
		P:            cfg.P,
		Latency:      cfg.Latency,
		Services:     []dist.Distribution{cfg.Service},
		Programs:     progs,
		Seed:         cfg.Seed,
		ResetStatsAt: cfg.WarmupTime,
		Until:        end,
		Sync:         sync,
		Jobs:         cfg.Par.Jobs,
		Window:       cfg.Par.Window,
		Trace:        cfg.Par.Trace,
		Metrics:      cfg.Par.Metrics,
		Spans:        cfg.Par.Spans,
	})
	if err != nil {
		return WorkpileResult{}, err
	}
	res := WorkpileResult{ChunksByClient: make([]int64, pc)}
	for i, p := range clients {
		res.R.Merge(&p.r)
		res.Rs.Merge(&p.rs)
		res.Chunks += p.chunks
		res.ChunksByClient[i] = p.chunks
	}
	res.X = float64(res.Chunks) / cfg.MeasureTime
	for s := pc; s < cfg.P; s++ {
		ns := &sres.Nodes[s]
		res.Qs += ns.ReqQueue
		res.Us += ns.UtilReq
	}
	res.Qs /= float64(cfg.Ps)
	res.Us /= float64(cfg.Ps)
	cfg.Par.finish(sres.Run)
	return res, nil
}

// lockParProg drives one lock-workload thread on the sharded machine:
// the work-pile client with a fixed destination (the lock node) and a
// free reply handler.
type lockParProg struct {
	run   *wpParRun // the lock node is the single "server" at index pc
	work  dist.Distribution
	phase int
	ready float64
	r, rs stats.Tally
	acqs  int64
}

// Next implements shard.Program.
func (p *lockParProg) Next(v *shard.NodeView) shard.Action {
	switch p.phase {
	case phaseSend:
		p.phase = phaseUnblocked
		return shard.Request(p.run.pc, 0, 1) // service 0: critical section; reply 1: free grant
	case phaseUnblocked:
		c := v.Cycle()
		if c.RepDone >= p.run.warmup && c.RepDone <= p.run.end {
			p.r.Add(c.RepDone - p.ready)
			p.rs.Add(c.ReqDone - c.ReqArrived)
			p.acqs++
		}
		p.ready = c.RepDone
	default: // first call
		p.ready = v.Now()
	}
	p.phase = phaseSend
	return shard.Compute(p.work.Sample(v.Rand()))
}

// Save and Restore implement shard.Program.
func (p *lockParProg) Save() any            { s := *p; return &s }
func (p *lockParProg) Restore(snapshot any) { *p = *snapshot.(*lockParProg) }

// runLockPar is RunLock through the parallel core.
func runLockPar(cfg LockConfig) (LockSimResult, error) {
	sync, err := cfg.Par.core()
	if err != nil {
		return LockSimResult{}, err
	}
	end := cfg.WarmupTime + cfg.MeasureTime
	run := &wpParRun{pc: cfg.Threads, ps: 1, warmup: cfg.WarmupTime, end: end}
	progs := make([]shard.Program, cfg.Threads+1)
	threads := make([]*lockParProg, cfg.Threads)
	for i := range threads {
		threads[i] = &lockParProg{run: run, work: cfg.Work}
		progs[i] = threads[i]
	}
	sres, err := shard.Run(shard.Config{
		P:            cfg.Threads + 1,
		Latency:      cfg.Handoff,
		Services:     []dist.Distribution{cfg.Critical, dist.NewDeterministic(0)},
		Programs:     progs,
		Seed:         cfg.Seed,
		ResetStatsAt: cfg.WarmupTime,
		Until:        end,
		Sync:         sync,
		Jobs:         cfg.Par.Jobs,
		Window:       cfg.Par.Window,
		Trace:        cfg.Par.Trace,
		Metrics:      cfg.Par.Metrics,
		Spans:        cfg.Par.Spans,
	})
	if err != nil {
		return LockSimResult{}, err
	}
	var res LockSimResult
	for _, p := range threads {
		res.R.Merge(&p.r)
		res.Rs.Merge(&p.rs)
		res.Acquisitions += p.acqs
	}
	res.X = float64(res.Acquisitions) / cfg.MeasureTime
	lock := &sres.Nodes[cfg.Threads]
	res.Q = lock.ReqQueue
	res.U = lock.UtilReq
	cfg.Par.finish(sres.Run)
	return res, nil
}

// Lock-free event kinds: the single LP schedules every thread's phase
// transitions as self-events (I0 carries the thread index).
const (
	lfRoundStart int32 = iota + 1 // the thread's parallel work finished
	lfRoundEnd                    // a retry round finished: CAS resolution
	lfCommitDone                  // the winning CAS's serialization finished
)

// lfParThread is one thread's state inside the lock-free LP.
type lfParThread struct {
	r     rng.Stream
	ready float64
	v0    uint64
}

// lfLP runs the whole CAS-retry workload as a single logical process:
// the shared versioned word makes the threads' interactions
// zero-latency, so there is no lookahead to shard on — but routing the
// run through psim still gives the committed trace, the core
// statistics, and one committed event sequence across every core (a
// one-LP run degenerates to the sequential algorithm by construction).
// The per-thread streams replicate RunLockFree's construction order, so
// both paths draw identical samples.
type lfLP struct {
	cfg                    *LockFreeConfig
	warmup                 float64
	end                    float64
	version                uint64
	threads                []lfParThread
	r                      stats.Tally
	ops, rounds, conflicts int64
}

func (l *lfLP) inWin(t float64) bool {
	return t >= l.warmup && t <= l.end
}

// Start implements psim.LP: each thread begins its first cycle at time
// zero, exactly like RunLockFree's initial Schedule(0, startCycle).
func (l *lfLP) Start(ctx *psim.Ctx) {
	for i := range l.threads {
		t := &l.threads[i]
		t.ready = 0
		ctx.Send(ctx.Self(), l.cfg.Work.Sample(&t.r), lfRoundStart, psim.Msg{I0: int32(i)})
	}
}

// Handle implements psim.LP.
func (l *lfLP) Handle(ctx *psim.Ctx, ev psim.Event) {
	t := &l.threads[ev.Msg.I0]
	now := ctx.Now()
	switch ev.Kind {
	case lfRoundStart:
		t.v0 = l.version
		ctx.Send(ctx.Self(), l.cfg.Round.Sample(&t.r), lfRoundEnd, psim.Msg{I0: ev.Msg.I0})
	case lfRoundEnd:
		measured := l.inWin(now)
		if measured {
			l.rounds++
		}
		if l.version != t.v0 {
			// Another thread committed inside the window: the CAS fails
			// and the round's work regenerates.
			if measured {
				l.conflicts++
			}
			t.v0 = l.version
			ctx.Send(ctx.Self(), l.cfg.Round.Sample(&t.r), lfRoundEnd, psim.Msg{I0: ev.Msg.I0})
			return
		}
		l.version++
		ctx.Send(ctx.Self(), l.cfg.Serial.Sample(&t.r), lfCommitDone, psim.Msg{I0: ev.Msg.I0})
	case lfCommitDone:
		if l.inWin(now) {
			l.ops++
			l.r.Add(now - t.ready)
		}
		t.ready = now
		ctx.Send(ctx.Self(), l.cfg.Work.Sample(&t.r), lfRoundStart, psim.Msg{I0: ev.Msg.I0})
	default:
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("workload: lock-free LP received unknown event kind %d", ev.Kind))
	}
}

// Save and Restore implement psim.LP (the threads slice is the only
// reference field).
func (l *lfLP) Save() any {
	s := *l
	s.threads = append([]lfParThread(nil), l.threads...)
	return &s
}

func (l *lfLP) Restore(snapshot any) {
	s := snapshot.(*lfLP)
	threads := append([]lfParThread(nil), s.threads...)
	*l = *s
	l.threads = threads
}

// runLockFreePar is RunLockFree through the parallel core.
func runLockFreePar(cfg LockFreeConfig) (LockFreeSimResult, error) {
	sync, err := cfg.Par.core()
	if err != nil {
		return LockFreeSimResult{}, err
	}
	end := cfg.WarmupTime + cfg.MeasureTime
	lp := &lfLP{
		cfg:     &cfg,
		warmup:  cfg.WarmupTime,
		end:     end,
		threads: make([]lfParThread, cfg.Threads),
	}
	src := rng.NewSource(cfg.Seed)
	for i := range lp.threads {
		lp.threads[i].r = *src.Stream()
	}
	rs, err := psim.Run(psim.Config{
		LPs:     []psim.LP{lp},
		Sync:    sync,
		Jobs:    cfg.Par.Jobs,
		Seed:    cfg.Seed,
		Until:   end,
		Window:  cfg.Par.Window,
		Trace:   cfg.Par.Trace,
		Metrics: cfg.Par.Metrics,
		Spans:   cfg.Par.Spans,
	})
	if err != nil {
		return LockFreeSimResult{}, err
	}
	res := LockFreeSimResult{R: lp.r, Ops: lp.ops, Rounds: lp.rounds}
	res.X = float64(res.Ops) / cfg.MeasureTime
	if res.Rounds > 0 {
		res.Conflict = float64(lp.conflicts) / float64(res.Rounds)
	}
	if res.Ops > 0 {
		res.Attempts = float64(res.Rounds) / float64(res.Ops)
	}
	cfg.Par.finish(rs)
	return res, nil
}

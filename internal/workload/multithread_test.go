package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/runner"
)

func mtCfg(t int, seed uint64) MultithreadConfig {
	return MultithreadConfig{
		P: 32, T: t,
		Work:         dist.NewDeterministic(512),
		Latency:      dist.NewDeterministic(40),
		Service:      dist.NewDeterministic(200),
		WarmupCycles: 200, MeasureCycles: 800,
		Seed: seed,
	}
}

// TestMultithreadSingleThreadMatchesAllToAll: T=1 must reproduce the
// plain all-to-all workload's measurements.
func TestMultithreadSingleThreadMatchesAllToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mt, err := RunMultithread(mtCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	at, err := RunAllToAll(AllToAllConfig{
		P:             32,
		Work:          dist.NewDeterministic(512),
		Latency:       dist.NewDeterministic(40),
		Service:       dist.NewDeterministic(200),
		WarmupCycles:  200,
		MeasureCycles: 800,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mt.R.Mean()-at.R.Mean()) / at.R.Mean(); rel > 0.01 {
		t.Errorf("T=1 multithread R %v vs all-to-all R %v (rel %v)", mt.R.Mean(), at.R.Mean(), rel)
	}
}

// TestMultithreadLatencyHidingCurve: node throughput rises with T and
// saturates at the conservation bound 1/(W+2So), never exceeding it.
func TestMultithreadLatencyHidingCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	bound := 1.0 / (512 + 2*200)
	ts := []int{1, 2, 4, 8}
	sims, err := runner.Map(len(ts), runner.Options{}, func(i int) (MultithreadResult, error) {
		return RunMultithread(mtCfg(ts[i], 2))
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, tc := range ts {
		sim := sims[i]
		if sim.XNode < prev-1e-6 {
			t.Errorf("T=%d: XNode %v dropped below T-1's %v", tc, sim.XNode, prev)
		}
		if sim.XNode > bound*1.01 {
			t.Errorf("T=%d: XNode %v exceeds conservation bound %v", tc, sim.XNode, bound)
		}
		prev = sim.XNode
	}
	if prev < 0.99*bound {
		t.Errorf("saturated throughput %v did not reach bound %v", prev, bound)
	}
}

// TestMultithreadModelAccuracy: the Multithreaded model tracks the
// simulator within ~10% across the latency-hiding curve and becomes
// essentially exact at saturation.
func TestMultithreadModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ts := []int{1, 2, 4, 8}
	sims, err := runner.Map(len(ts), runner.Options{}, func(i int) (MultithreadResult, error) {
		return RunMultithread(mtCfg(ts[i], 3))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range ts {
		sim := sims[i]
		model, err := core.Multithreaded(core.Params{P: 32, W: 512, St: 40, So: 200, C2: 0}, tc)
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.XNode - sim.XNode) / sim.XNode
		if rel > 0.02 || rel < -0.12 {
			t.Errorf("T=%d: model XNode %v vs sim %v (rel %+.1f%%)", tc, model.XNode, sim.XNode, rel*100)
		}
		if tc >= 8 {
			if math.Abs(rel) > 0.01 {
				t.Errorf("T=%d (saturated): model %v vs sim %v", tc, model.XNode, sim.XNode)
			}
		}
	}
}

// TestMultithreadedModelStructure checks the model's own invariants.
func TestMultithreadedModelStructure(t *testing.T) {
	p := core.Params{P: 32, W: 512, St: 40, So: 200, C2: 0}
	prev := 0.0
	for _, tc := range []int{1, 2, 3, 4, 8, 16, 32} {
		res, err := core.Multithreaded(p, tc)
		if err != nil {
			t.Fatal(err)
		}
		if res.XNode < prev-1e-9 {
			t.Errorf("model XNode not monotone in T at %d", tc)
		}
		if res.XNode > res.Bound+1e-9 {
			t.Errorf("T=%d: model XNode %v above bound %v", tc, res.XNode, res.Bound)
		}
		if res.CPUUtil > 1+1e-6 {
			t.Errorf("T=%d: CPU utilization %v > 1", tc, res.CPUUtil)
		}
		prev = res.XNode
	}
	// The knee estimate is where the curve saturates: at T beyond it
	// the model should be within a few percent of the bound.
	res, _ := core.Multithreaded(p, 1)
	knee := int(math.Ceil(res.SaturationThreads)) + 1
	sat, err := core.Multithreaded(p, knee)
	if err != nil {
		t.Fatal(err)
	}
	if sat.XNode < 0.9*sat.Bound {
		t.Errorf("XNode at T=%d (past knee) is %v, bound %v", knee, sat.XNode, sat.Bound)
	}
}

func TestMultithreadedModelErrors(t *testing.T) {
	p := core.Params{P: 32, W: 512, St: 40, So: 200, C2: 0}
	if _, err := core.Multithreaded(p, 0); err == nil {
		t.Error("T=0 accepted")
	}
	pp := p
	pp.ProtocolProcessor = true
	if _, err := core.Multithreaded(pp, 2); err == nil {
		t.Error("protocol-processor variant accepted")
	}
	if _, err := core.Multithreaded(core.Params{P: 1}, 2); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMultithreadConfigValidation(t *testing.T) {
	bad := []MultithreadConfig{
		{P: 1, T: 1, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, T: 0, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, T: 1, Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, T: 1, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 0},
	}
	for i, cfg := range bad {
		if _, err := RunMultithread(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestLockFreeConfigValidate(t *testing.T) {
	good := LockFreeConfig{
		Threads:     4,
		Work:        dist.NewDeterministic(100),
		Round:       dist.NewDeterministic(20),
		Serial:      dist.NewDeterministic(2),
		MeasureTime: 1000,
	}
	if _, err := RunLockFree(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*LockFreeConfig){
		func(c *LockFreeConfig) { c.Threads = 0 },
		func(c *LockFreeConfig) { c.Work = nil },
		func(c *LockFreeConfig) { c.Round = nil },
		func(c *LockFreeConfig) { c.Serial = nil },
		func(c *LockFreeConfig) { c.MeasureTime = 0 },
		func(c *LockFreeConfig) { c.WarmupTime = math.Inf(1) },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if _, err := RunLockFree(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestLockFreeSimSingleThread: one thread never sees a competing
// commit, so every round succeeds and the cycle is exactly W + So + St.
func TestLockFreeSimSingleThread(t *testing.T) {
	w, so, st := 300.0, 50.0, 10.0
	sim, err := RunLockFree(LockFreeConfig{
		Threads:    1,
		Work:       dist.NewDeterministic(w),
		Round:      dist.NewDeterministic(so),
		Serial:     dist.NewDeterministic(st),
		WarmupTime: 5_000, MeasureTime: 100_000,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Conflict != 0 {
		t.Errorf("Conflict = %v, want 0 with one thread", sim.Conflict)
	}
	if math.Abs(sim.Attempts-1) > 1e-12 {
		t.Errorf("Attempts = %v, want exactly 1", sim.Attempts)
	}
	cycle := w + so + st
	if math.Abs(sim.R.Mean()-cycle) > 1e-9 {
		t.Errorf("R = %v, want exactly %v", sim.R.Mean(), cycle)
	}
}

// TestLockFreeSimDeterminism: the same seed reproduces the identical
// result bit for bit.
func TestLockFreeSimDeterminism(t *testing.T) {
	cfg := LockFreeConfig{
		Threads:    8,
		Work:       dist.NewExponential(400),
		Round:      dist.NewExponential(60),
		Serial:     dist.NewDeterministic(5),
		WarmupTime: 5_000, MeasureTime: 100_000,
		Seed: 42,
	}
	a, err := RunLockFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLockFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c, err := RunLockFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical results")
	}
}

// TestLockFreeModelSimAgreement: the conflict model tracks the
// simulated CAS-retry loop. Documented tolerance: ≤ 10% per point and
// ≤ 5% mean; the model runs optimistic at high thread counts (worst
// observed ~8% at Threads=32, conflict probability ~0.8) because the
// fixed point uses the mean commit rate where the simulator sees
// bursts — successful commits cluster right after a long round drains.
func TestLockFreeModelSimAgreement(t *testing.T) {
	// Short tier: full fidelity (identical window) at two thread counts
	// through the psim path. The shared versioned word makes the model
	// one logical process, so its core is sequential by construction;
	// what the short tier buys is the psim delivery path itself.
	w, so, st := 400.0, 60.0, 5.0
	var sumRel float64
	threads := []int{1, 2, 4, 8, 16, 32}
	var par *ParSim
	if testing.Short() {
		threads = []int{4, 16}
		par = &ParSim{}
	}
	for _, n := range threads {
		sim, err := RunLockFree(LockFreeConfig{
			Threads:    n,
			Work:       dist.NewExponential(w),
			Round:      dist.NewExponential(so),
			Serial:     dist.NewDeterministic(st),
			WarmupTime: 50_000, MeasureTime: 1_000_000,
			Seed: 7,
			Par:  par.perRep(),
		})
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		mod, err := core.LockFree(core.LockFreeParams{Threads: n, W: w, St: st, So: so, C2: 1})
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		rel := math.Abs(mod.X-sim.X) / sim.X
		sumRel += rel
		if rel > 0.10 {
			t.Errorf("Threads=%d: model X=%v vs sim X=%v (rel %.1f%% > 10%%)", n, mod.X, sim.X, 100*rel)
		}
		if n > 1 && sim.Conflict == 0 {
			t.Errorf("Threads=%d: no conflicts observed", n)
		}
	}
	if mean := sumRel / float64(len(threads)); !testing.Short() && mean > 0.05 {
		t.Errorf("mean relative error %.1f%% > 5%%", 100*mean)
	}
}

package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// NonBlockingConfig describes the non-blocking variant of the
// homogeneous pattern (the paper's future-work extension): each thread
// alternates W cycles of work with a fire-and-forget request to a
// uniformly random peer; the reply handler deposits its result without
// unblocking anything, so the thread always has work and requests
// overlap computation.
type NonBlockingConfig struct {
	// P is the number of nodes.
	P int
	// Work, Latency, Service are as in AllToAllConfig.
	Work, Latency, Service dist.Distribution
	// WarmupCycles and MeasureCycles count sends per thread.
	WarmupCycles, MeasureCycles int
	// ProtocolProcessor runs handlers beside the thread rather than on
	// it.
	ProtocolProcessor bool
	// Seed roots the run's random streams.
	Seed uint64
}

func (c NonBlockingConfig) validate() error {
	switch {
	case c.P < 2:
		return fmt.Errorf("workload: non-blocking needs P >= 2, got %d", c.P)
	case c.Work == nil || c.Latency == nil || c.Service == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.MeasureCycles < 1:
		return fmt.Errorf("workload: MeasureCycles = %d", c.MeasureCycles)
	case c.WarmupCycles < 0:
		return fmt.Errorf("workload: WarmupCycles = %d", c.WarmupCycles)
	}
	return nil
}

// NonBlockingResult holds the measured statistics.
type NonBlockingResult struct {
	// X is per-thread throughput: 1 / mean inter-send time.
	X float64
	// CycleTime is the time between a thread's consecutive sends.
	CycleTime stats.Tally
	// Latency is the time from injecting a request to its reply handler
	// completing at home.
	Latency stats.Tally
	// Rq and Ry are handler response times (arrival to completion).
	Rq, Ry stats.Tally
	// HandlerUtil is the measured fraction of processor time spent in
	// handlers over the measurement window.
	HandlerUtil float64
}

type nbProgram struct {
	run      *nonBlockingRun
	sends    int
	working  bool // a Compute was just issued; next step is the send
	lastSend float64
	started  bool
}

type nonBlockingRun struct {
	cfg        NonBlockingConfig
	res        *NonBlockingResult
	warmupLeft int
	statsReset bool
	snapped    bool
}

// Next implements machine.Program.
func (p *nbProgram) Next(m *machine.Machine, self int) machine.Action {
	cfg := p.run.cfg
	if !p.working {
		// Start (or continue with) a work period.
		if p.sends >= cfg.WarmupCycles+cfg.MeasureCycles {
			if !p.run.snapped {
				p.run.snapped = true
				p.run.res.HandlerUtil = handlerUtil(m)
			}
			return machine.Halt()
		}
		p.working = true
		return machine.Compute(cfg.Work.Sample(m.Rand(self)))
	}

	// Work finished: fire the request and loop back to working state.
	p.working = false
	now := m.Now()
	measured := p.sends >= cfg.WarmupCycles
	if p.started && measured {
		p.run.res.CycleTime.Add(now - p.lastSend)
	}
	p.started = true
	p.lastSend = now
	p.sends++
	if p.sends == cfg.WarmupCycles && cfg.WarmupCycles > 0 {
		p.run.warmupLeft--
		if p.run.warmupLeft == 0 && !p.run.statsReset {
			p.run.statsReset = true
			m.ResetStats()
		}
	}

	dst := m.Rand(self).Intn(cfg.P - 1)
	if dst >= self {
		dst++
	}
	sent := now
	run := p.run
	return machine.SendAsync(&machine.Message{
		Src: self, Dst: dst, Kind: machine.KindRequest, Service: cfg.Service,
		OnComplete: func(m *machine.Machine, msg *machine.Message) {
			if measured {
				run.res.Rq.Add(msg.Done - msg.Arrived)
			}
			m.Send(&machine.Message{
				Src: msg.Dst, Dst: msg.Src, Kind: machine.KindReply, Service: cfg.Service,
				OnComplete: func(m *machine.Machine, rmsg *machine.Message) {
					if measured {
						run.res.Ry.Add(rmsg.Done - rmsg.Arrived)
						run.res.Latency.Add(rmsg.Done - sent)
					}
				},
			})
		},
	})
}

// handlerUtil reads the machine-wide handler utilization.
func handlerUtil(m *machine.Machine) float64 {
	s := m.Stats()
	return s.UtilReq + s.UtilRep
}

// RunNonBlocking executes the non-blocking workload.
func RunNonBlocking(cfg NonBlockingConfig) (NonBlockingResult, error) {
	if err := cfg.validate(); err != nil {
		return NonBlockingResult{}, err
	}
	m := machine.New(machine.Config{
		P:                 cfg.P,
		NetLatency:        cfg.Latency,
		ProtocolProcessor: cfg.ProtocolProcessor,
		Seed:              cfg.Seed,
	})
	run := &nonBlockingRun{cfg: cfg, res: &NonBlockingResult{}, warmupLeft: cfg.P}
	if cfg.WarmupCycles == 0 {
		run.warmupLeft = 0
		run.statsReset = true
	}
	for i := 0; i < cfg.P; i++ {
		m.SetProgram(i, &nbProgram{run: run})
	}
	m.Start()
	m.Run()
	res := run.res
	if !run.snapped {
		res.HandlerUtil = handlerUtil(m)
	}
	if mean := res.CycleTime.Mean(); mean > 0 {
		res.X = 1 / mean
	}
	return *res, nil
}

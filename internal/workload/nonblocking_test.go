package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/runner"
)

func nbConfig(w float64, pp bool, seed uint64) NonBlockingConfig {
	return NonBlockingConfig{
		P:                 32,
		Work:              dist.NewDeterministic(w),
		Latency:           dist.NewDeterministic(40),
		Service:           dist.NewDeterministic(200),
		WarmupCycles:      300,
		MeasureCycles:     1500,
		ProtocolProcessor: pp,
		Seed:              seed,
	}
}

// TestNonBlockingThroughputConservation: the model's headline result —
// per-thread throughput is exactly 1/(W+2So) because the processor
// never idles — holds in simulation to well under a percent.
func TestNonBlockingThroughputConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ws := []float64{200, 800, 3200}
	sims, err := runner.Map(len(ws), runner.Options{}, func(i int) (NonBlockingResult, error) {
		return RunNonBlocking(nbConfig(ws[i], false, 1))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		sim := sims[i]
		model, err := core.NonBlocking(core.Params{P: 32, W: w, St: 40, So: 200, C2: 0})
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.X - sim.X) / sim.X
		if math.Abs(rel) > 0.01 {
			t.Errorf("W=%v: model X=%.6f vs sim X=%.6f (rel %.2f%%)", w, model.X, sim.X, rel*100)
		}
	}
}

// TestNonBlockingLatency: request latency tracks the M/G/1-style
// prediction.
func TestNonBlockingLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, w := range []float64{400, 1600} {
		sim, err := RunNonBlocking(nbConfig(w, false, 2))
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.NonBlocking(core.Params{P: 32, W: w, St: 40, So: 200, C2: 0})
		if err != nil {
			t.Fatal(err)
		}
		// The model assumes Poisson handler arrivals; the real merged
		// stream of near-periodic senders is smoother, so the model is
		// conservative (over-predicts), most at high handler load.
		rel := (model.Latency - sim.Latency.Mean()) / sim.Latency.Mean()
		if rel < -0.02 || rel > 0.16 {
			t.Errorf("W=%v: model latency=%.1f vs sim=%.1f (rel %.1f%%)",
				w, model.Latency, sim.Latency.Mean(), rel*100)
		}
	}
}

// TestNonBlockingBeatsBlockingThroughput: overlapping communication
// with computation shortens the effective cycle: 1/X = W + 2So is below
// the blocking R = W + 2St + Rq + Ry + interference for the same
// parameters.
func TestNonBlockingBeatsBlockingThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	nb, err := RunNonBlocking(nbConfig(512, false, 3))
	if err != nil {
		t.Fatal(err)
	}
	bl, err := RunAllToAll(stdAllToAll(512, 3))
	if err != nil {
		t.Fatal(err)
	}
	nbCycle := 1 / nb.X
	if nbCycle >= bl.R.Mean() {
		t.Errorf("non-blocking cycle %v not below blocking cycle %v", nbCycle, bl.R.Mean())
	}
}

// TestNonBlockingHandlerUtil: measured handler occupancy matches
// 2·X·So.
func TestNonBlockingHandlerUtil(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sim, err := RunNonBlocking(nbConfig(800, false, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sim.X * 200
	if math.Abs(sim.HandlerUtil-want) > 0.03 {
		t.Errorf("handler util %.3f, want ~%.3f", sim.HandlerUtil, want)
	}
}

// TestNonBlockingProtocolProcessor: with a protocol processor the
// thread is never interrupted, so X = 1/W exactly; the PP carries
// utilization 2So/W.
func TestNonBlockingProtocolProcessor(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sim, err := RunNonBlocking(nbConfig(800, true, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.X-1.0/800) > 1e-9 {
		t.Errorf("PP non-blocking X = %v, want exactly 1/800", sim.X)
	}
	model, err := core.NonBlocking(core.Params{P: 32, W: 800, St: 40, So: 200, C2: 0, ProtocolProcessor: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.X-1.0/800) > 1e-12 {
		t.Errorf("PP model X = %v, want 1/800", model.X)
	}
	relLat := (model.Latency - sim.Latency.Mean()) / sim.Latency.Mean()
	if math.Abs(relLat) > 0.10 {
		t.Errorf("PP latency model %.1f vs sim %.1f", model.Latency, sim.Latency.Mean())
	}
}

func TestNonBlockingModelSaturation(t *testing.T) {
	// W = 0 in the interrupt model drives handler load to exactly 1.
	if _, err := core.NonBlocking(core.Params{P: 32, W: 0, St: 40, So: 200, C2: 0}); err == nil {
		t.Error("saturated non-blocking model accepted")
	}
	// PP mode needs 2So < W.
	if _, err := core.NonBlocking(core.Params{P: 32, W: 300, St: 40, So: 200, C2: 0, ProtocolProcessor: true}); err == nil {
		t.Error("saturated PP non-blocking model accepted")
	}
}

func TestNonBlockingModelMM1Limits(t *testing.T) {
	// C² = 1 must give the M/M/1 sojourn So/(1−2a); C² = 0 the M/D/1
	// sojourn So(1−a)/(1−2a).
	p := core.Params{P: 32, W: 800, St: 40, So: 200, C2: 1}
	res, err := core.NonBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	a := res.X * 200
	if want := 200 / (1 - 2*a); math.Abs(res.Rq-want) > 1e-9 {
		t.Errorf("C²=1 Rq = %v, want M/M/1 %v", res.Rq, want)
	}
	p.C2 = 0
	res, err = core.NonBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 200 * (1 - a) / (1 - 2*a); math.Abs(res.Rq-want) > 1e-9 {
		t.Errorf("C²=0 Rq = %v, want M/D/1 %v", res.Rq, want)
	}
	// Little's law for outstanding requests.
	if want := res.X * res.Latency; math.Abs(res.Outstanding-want) > 1e-12 {
		t.Errorf("Outstanding = %v, want X·Latency = %v", res.Outstanding, want)
	}
}

func TestNonBlockingConfigValidation(t *testing.T) {
	bad := []NonBlockingConfig{
		{P: 1, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 1},
		{P: 4, Work: dist.NewDeterministic(1), Latency: dist.NewDeterministic(1), Service: dist.NewDeterministic(1), MeasureCycles: 0},
	}
	for i, cfg := range bad {
		if _, err := RunNonBlocking(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNonBlockingCycleCount(t *testing.T) {
	cfg := nbConfig(100, false, 6)
	cfg.P = 4
	cfg.WarmupCycles, cfg.MeasureCycles = 10, 50
	sim, err := RunNonBlocking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each thread records MeasureCycles−0 or −1 intervals depending on
	// the warmup boundary; with warmup > 0 it is exactly MeasureCycles.
	if sim.CycleTime.N() != int64(4*50) {
		t.Errorf("recorded %d intervals, want %d", sim.CycleTime.N(), 4*50)
	}
	if sim.Latency.N() == 0 || sim.Rq.N() == 0 {
		t.Error("no latency / handler samples recorded")
	}
}

package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestAgreementAtScaleViaCons validates the model-vs-sim agreement
// tolerances through the parallel cores at P >= 1024 — the scale the
// issue names as the point of sharding the simulator. Each workload
// keeps the tolerance band its small-P agreement test documents; the
// lock-free workload runs through the psim path too, which for it is
// the sequential core by construction (one shared versioned word is one
// logical process).
func TestAgreementAtScaleViaCons(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}

	t.Run("alltoall", func(t *testing.T) {
		sim, err := RunAllToAll(AllToAllConfig{
			P:             1024,
			Work:          dist.NewDeterministic(512),
			Latency:       dist.NewDeterministic(40),
			Service:       dist.NewDeterministic(200),
			WarmupCycles:  30,
			MeasureCycles: 150,
			Seed:          1,
			Par:           &ParSim{Sync: "cons", Jobs: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.AllToAll(core.Params{P: 1024, W: 512, St: 40, So: 200, C2: 0})
		if err != nil {
			t.Fatal(err)
		}
		rel := (model.R - sim.R.Mean()) / sim.R.Mean()
		if rel < -0.03 || rel > 0.10 {
			t.Errorf("P=1024: model R=%.1f vs sim R=%.1f (rel %.1f%%), outside the paper's error band",
				model.R, sim.R.Mean(), rel*100)
		}
	})

	t.Run("workpile", func(t *testing.T) {
		sim, err := RunWorkpile(WorkpileConfig{
			P: 1024, Ps: 256,
			Chunk:      dist.NewExponential(1500),
			Latency:    dist.NewDeterministic(40),
			Service:    dist.NewDeterministic(131),
			WarmupTime: 20_000, MeasureTime: 100_000,
			Seed: 11,
			Par:  &ParSim{Sync: "cons", Jobs: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.ClientServer(core.ClientServerParams{P: 1024, Ps: 256, W: 1500, St: 40, So: 131, C2: 0})
		if err != nil {
			t.Fatal(err)
		}
		if rel := (model.X - sim.X) / sim.X; math.Abs(rel) > 0.08 {
			t.Errorf("P=1024: model X=%.5f vs sim X=%.5f (rel %.1f%%)", model.X, sim.X, rel*100)
		}
		if rel := (model.Rs - sim.Rs.Mean()) / sim.Rs.Mean(); math.Abs(rel) > 0.12 {
			t.Errorf("P=1024: model Rs=%.1f vs sim Rs=%.1f (rel %.1f%%)", model.Rs, sim.Rs.Mean(), rel*100)
		}
	})

	t.Run("lock", func(t *testing.T) {
		// 1024 threads saturate the lock completely; throughput pins to
		// the serialization bound 1/So, where the AMVA is exact up to
		// simulation noise.
		w, st, so := 800.0, 20.0, 100.0
		sim, err := RunLock(LockConfig{
			Threads:    1024,
			Work:       dist.NewExponential(w),
			Handoff:    dist.NewDeterministic(st),
			Critical:   dist.NewExponential(so),
			WarmupTime: 200_000, MeasureTime: 1_000_000,
			Seed: 7,
			Par:  &ParSim{Sync: "cons", Jobs: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := core.Lock(core.LockParams{Threads: 1024, W: w, St: st, So: so, C2: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mod.X-sim.X) / sim.X; rel > 0.10 {
			t.Errorf("Threads=1024: model X=%v vs sim X=%v (rel %.1f%% > 10%%)", mod.X, sim.X, 100*rel)
		}
	})

	t.Run("lockfree", func(t *testing.T) {
		// Work large enough that 1024 threads sit at a moderate conflict
		// probability rather than livelock-level contention.
		w, so, st := 200_000.0, 60.0, 5.0
		sim, err := RunLockFree(LockFreeConfig{
			Threads:    1024,
			Work:       dist.NewExponential(w),
			Round:      dist.NewExponential(so),
			Serial:     dist.NewDeterministic(st),
			WarmupTime: 100_000, MeasureTime: 2_000_000,
			Seed: 7,
			Par:  &ParSim{},
		})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := core.LockFree(core.LockFreeParams{Threads: 1024, W: w, St: st, So: so, C2: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mod.X-sim.X) / sim.X; rel > 0.10 {
			t.Errorf("Threads=1024: model X=%v vs sim X=%v (rel %.1f%% > 10%%)", mod.X, sim.X, 100*rel)
		}
		if sim.Conflict == 0 {
			t.Error("Threads=1024: no conflicts observed")
		}
	})
}

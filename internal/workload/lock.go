package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// LockConfig describes a coarse-grained lock run on the simulated
// machine: Threads client nodes loop {compute Work; acquire the lock;
// critical section; release}, and one extra node plays the lock. The
// mapping onto the LoPC machine is the work-pile with Ps = 1: the
// request handler at the lock node is the critical section (requests
// serialize FIFO, exactly like waiters on a queue lock), the request
// trip is the acquire handoff, and the reply trip — whose handler does
// nothing — is the grant handoff back to the waiter, so a full cycle
// is W + 2St + Rs with Rs the lock response (wait + critical section).
type LockConfig struct {
	// Threads is the number of contending threads (client nodes).
	Threads int
	// Work is the non-critical work distribution (mean W).
	Work dist.Distribution
	// Handoff is the one-way lock handoff latency distribution
	// (mean St); a cycle pays it twice.
	Handoff dist.Distribution
	// Critical is the critical-section distribution (mean So, SCV C²).
	Critical dist.Distribution
	// WarmupTime and MeasureTime bound the measurement window, in
	// simulated cycles; throughput is the metric, so the window is
	// time-based like the work-pile's.
	WarmupTime, MeasureTime float64
	// Seed roots the run's random streams.
	Seed uint64
	// Par, when non-nil, runs the workload through the parallel
	// discrete-event core; see ParSim.
	Par *ParSim
}

func (c LockConfig) validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("workload: lock needs Threads >= 1, got %d", c.Threads)
	case c.Work == nil || c.Handoff == nil || c.Critical == nil:
		return fmt.Errorf("workload: nil distribution in config")
	// The negated comparisons reject NaN too: NaN >= 0 is false.
	case !(c.WarmupTime >= 0) || !(c.MeasureTime > 0) || math.IsInf(c.WarmupTime, 0) || math.IsInf(c.MeasureTime, 0):
		return fmt.Errorf("workload: invalid window warmup=%v measure=%v", c.WarmupTime, c.MeasureTime)
	}
	return nil
}

// LockSimResult holds the measured lock statistics, aligned with
// core.LockResult.
type LockSimResult struct {
	// X is the system throughput: acquisitions per cycle across all
	// threads in the measurement window.
	X float64
	// R is the full thread cycle time (release to release).
	R stats.Tally
	// Rs is the lock response: from the acquire request reaching the
	// lock to the critical section completing (wait + service).
	Rs stats.Tally
	// Q is the time-averaged number of threads at the lock.
	Q float64
	// U is the time-averaged lock utilization.
	U float64
	// Acquisitions counts completed critical sections in the window.
	Acquisitions int64
}

// lockProgram drives one thread; it is the work-pile client with a
// fixed destination (the lock node) and a free reply handler.
type lockProgram struct {
	run   *lockRun
	phase int
	cur   cycleTimestamps
}

type lockRun struct {
	cfg   LockConfig
	res   *LockSimResult
	inWin func(t float64) bool
	acqs  int64
	free  dist.Distribution // zero-service reply: the grant carries no work
}

// Next implements machine.Program.
func (p *lockProgram) Next(m *machine.Machine, self int) machine.Action {
	switch p.phase {
	case phaseStart:
		p.cur.ready = m.Now()
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	case phaseSend:
		p.cur.send = m.Now()
		p.phase = phaseUnblocked
		req := &machine.Message{
			Src: self, Dst: p.run.cfg.Threads, // the lock node
			Kind: machine.KindRequest, Service: p.run.cfg.Critical,
		}
		p.cur.req = req
		req.OnComplete = func(m *machine.Machine, msg *machine.Message) {
			rep := &machine.Message{
				Src: msg.Dst, Dst: msg.Src,
				Kind: machine.KindReply, Service: p.run.free,
			}
			p.cur.rep = rep
			rep.OnComplete = func(m *machine.Machine, rmsg *machine.Message) {
				p.cur.repDone = rmsg.Done
				m.Unblock(rmsg.Dst)
			}
			m.Send(rep)
		}
		return machine.SendAndBlock(req)

	case phaseUnblocked:
		c := &p.cur
		if p.run.inWin(c.repDone) {
			res := p.run.res
			res.R.Add(c.repDone - c.ready)
			res.Rs.Add(c.req.Done - c.req.Arrived)
			p.run.acqs++
		}
		p.cur = cycleTimestamps{ready: c.repDone}
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	default:
		panic(fmt.Sprintf("workload: invalid lock phase %d", p.phase))
	}
}

// RunLock executes one coarse-grained lock simulation.
func RunLock(cfg LockConfig) (LockSimResult, error) {
	if err := cfg.validate(); err != nil {
		return LockSimResult{}, err
	}
	if cfg.Par != nil {
		return runLockPar(cfg)
	}
	m := machine.New(machine.Config{
		P:          cfg.Threads + 1,
		NetLatency: cfg.Handoff,
		Seed:       cfg.Seed,
	})
	end := cfg.WarmupTime + cfg.MeasureTime
	run := &lockRun{
		cfg:  cfg,
		res:  &LockSimResult{},
		free: dist.NewDeterministic(0),
		inWin: func(t float64) bool {
			return t >= cfg.WarmupTime && t <= end
		},
	}
	for i := 0; i < cfg.Threads; i++ {
		m.SetProgram(i, &lockProgram{run: run})
	}
	m.Start()
	m.RunUntil(cfg.WarmupTime)
	m.ResetStats()
	m.RunUntil(end)

	res := run.res
	res.Acquisitions = run.acqs
	res.X = float64(run.acqs) / cfg.MeasureTime
	ns := m.NodeStats(cfg.Threads)
	res.Q = ns.ReqQueue
	res.U = ns.UtilReq
	return *res, nil
}

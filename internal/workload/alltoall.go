package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// AllToAllConfig describes an all-to-all simulation run: every node
// alternates local work with a blocking request to a peer chosen by
// Pattern; the request handler sends a reply; the reply handler unblocks
// the thread.
type AllToAllConfig struct {
	// P is the number of nodes.
	P int
	// Work is the distribution of local work per cycle (mean W).
	Work dist.Distribution
	// Latency is the per-trip network latency distribution (mean St).
	Latency dist.Distribution
	// Service is the handler service distribution (mean So, SCV C²),
	// used for both request and reply handlers.
	Service dist.Distribution
	// Pattern picks request destinations; nil means UniformPattern.
	Pattern Pattern
	// WarmupCycles and MeasureCycles are per-thread cycle counts: the
	// first WarmupCycles cycles are discarded, the next MeasureCycles
	// are measured, then the thread halts.
	WarmupCycles, MeasureCycles int
	// ProtocolProcessor runs handlers on per-node protocol processors
	// (the shared-memory variant).
	ProtocolProcessor bool
	// Seed roots the run's random streams.
	Seed uint64
	// Observer, when non-nil, receives the machine's structural events
	// (see machine.Observer); internal/trace implements it for
	// Chrome-trace export.
	Observer machine.Observer
	// LinkOccupancy, NIQueueCap and RetryDelay relax the paper's Ch. 2
	// network simplifications (see machine.Config); zero values give
	// the paper's machine.
	LinkOccupancy float64
	NIQueueCap    int
	RetryDelay    float64
	// PairLatency optionally gives every ordered node pair its own wire
	// time (see machine.Config.PairLatency).
	PairLatency func(src, dst int) float64
	// Par, when non-nil, runs the workload through the parallel
	// discrete-event core instead of the single-threaded engine; see
	// ParSim for the supported envelope.
	Par *ParSim
}

func (c AllToAllConfig) validate() error {
	switch {
	case c.P < 2:
		return fmt.Errorf("workload: all-to-all needs P >= 2, got %d", c.P)
	case c.Work == nil || c.Latency == nil || c.Service == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.MeasureCycles < 1:
		return fmt.Errorf("workload: MeasureCycles = %d", c.MeasureCycles)
	case c.WarmupCycles < 0:
		return fmt.Errorf("workload: WarmupCycles = %d", c.WarmupCycles)
	// The negated comparisons reject NaN too: NaN >= 0 is false.
	case !(c.LinkOccupancy >= 0) || math.IsInf(c.LinkOccupancy, 0):
		return fmt.Errorf("workload: invalid LinkOccupancy %v", c.LinkOccupancy)
	case !(c.RetryDelay >= 0) || math.IsInf(c.RetryDelay, 0):
		return fmt.Errorf("workload: invalid RetryDelay %v", c.RetryDelay)
	}
	return nil
}

// AllToAllResult holds the measured per-cycle statistics, aligned with
// the model's quantities.
type AllToAllResult struct {
	// R is the complete compute/request cycle time (reply completion to
	// reply completion).
	R stats.Tally
	// Rw is the thread residence: from becoming ready (previous reply
	// handler completion) to injecting the next request, including
	// interference from request handlers.
	Rw stats.Tally
	// Rq is the request handler response at the remote node (arrival to
	// completion: queueing plus service).
	Rq stats.Tally
	// Ry is the reply handler response at the home node.
	Ry stats.Tally
	// Net is the total wire time per cycle (both trips).
	Net stats.Tally
	// Machine aggregates node-level measurements (queue lengths,
	// utilizations) over the measurement window.
	Machine machine.MachineStats
	// X is the system throughput implied by the measured mean cycle
	// time: P / mean(R).
	X float64
	// Nacks counts messages bounced off full NI queues (finite
	// NIQueueCap only).
	Nacks int64
}

// cycleTimestamps carries one in-flight cycle's measurements.
type cycleTimestamps struct {
	ready   float64 // previous reply completion (thread became ready)
	send    float64 // request injection
	req     *machine.Message
	rep     *machine.Message
	repDone float64
}

// atProgram is the per-node all-to-all driver.
type atProgram struct {
	run   *allToAllRun
	self  int
	phase int // 0: start, 1: work done -> send, 2: unblocked
	cycle int
	cur   cycleTimestamps
}

// allToAllRun is state shared by all node programs in one run.
type allToAllRun struct {
	cfg        AllToAllConfig
	pattern    Pattern
	res        *AllToAllResult
	warmupLeft int // nodes still warming up
	statsReset bool
	// machineSnap captures machine-wide stats when the first thread
	// halts, so the drain phase (nodes finishing at different times)
	// does not bias the time-averaged queue lengths and utilizations.
	machineSnap bool
}

const (
	phaseStart = iota
	phaseSend
	phaseUnblocked
)

// Next implements machine.Program.
func (p *atProgram) Next(m *machine.Machine, self int) machine.Action {
	switch p.phase {
	case phaseStart:
		p.cur.ready = m.Now()
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	case phaseSend:
		p.cur.send = m.Now()
		p.phase = phaseUnblocked
		req := &machine.Message{
			Src: self, Dst: p.run.pattern.Dest(m, self),
			Kind: machine.KindRequest, Service: p.run.cfg.Service,
		}
		p.cur.req = req
		req.OnComplete = func(m *machine.Machine, msg *machine.Message) {
			rep := &machine.Message{
				Src: msg.Dst, Dst: msg.Src,
				Kind: machine.KindReply, Service: p.run.cfg.Service,
			}
			p.cur.rep = rep
			rep.OnComplete = func(m *machine.Machine, rmsg *machine.Message) {
				p.cur.repDone = rmsg.Done
				m.Unblock(rmsg.Dst)
			}
			m.Send(rep)
		}
		return machine.SendAndBlock(req)

	case phaseUnblocked:
		p.endCycle(m)
		if p.cycle >= p.run.cfg.WarmupCycles+p.run.cfg.MeasureCycles {
			if !p.run.machineSnap {
				p.run.machineSnap = true
				p.run.res.Machine = m.Stats()
			}
			return machine.Halt()
		}
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	default:
		panic(fmt.Sprintf("workload: invalid all-to-all phase %d", p.phase))
	}
}

// endCycle records the completed cycle and rolls the timestamps so the
// next cycle's Rw starts at the reply handler completion (not at the
// instant the thread regained the CPU, which may be later if request
// handlers were queued — that wait belongs to the next cycle's Rw, per
// the BKT decomposition).
func (p *atProgram) endCycle(m *machine.Machine) {
	c := &p.cur
	measured := p.cycle >= p.run.cfg.WarmupCycles
	if measured {
		res := p.run.res
		res.R.Add(c.repDone - c.ready)
		res.Rw.Add(c.send - c.ready)
		res.Rq.Add(c.req.Done - c.req.Arrived)
		res.Ry.Add(c.rep.Done - c.rep.Arrived)
		res.Net.Add((c.req.Arrived - c.req.Sent) + (c.rep.Arrived - c.rep.Sent))
	}
	p.cycle++
	if p.cycle == p.run.cfg.WarmupCycles {
		p.run.warmupLeft--
		if p.run.warmupLeft == 0 && !p.run.statsReset {
			p.run.statsReset = true
			m.ResetStats()
		}
	}
	p.cur = cycleTimestamps{ready: c.repDone}
}

// RunAllToAll executes one all-to-all simulation and returns the
// measured statistics.
func RunAllToAll(cfg AllToAllConfig) (AllToAllResult, error) {
	if err := cfg.validate(); err != nil {
		return AllToAllResult{}, err
	}
	if cfg.Par != nil {
		return runAllToAllPar(cfg)
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = UniformPattern{}
	}
	m := machine.New(machine.Config{
		P:                 cfg.P,
		NetLatency:        cfg.Latency,
		ProtocolProcessor: cfg.ProtocolProcessor,
		Seed:              cfg.Seed,
		Observer:          cfg.Observer,
		LinkOccupancy:     cfg.LinkOccupancy,
		NIQueueCap:        cfg.NIQueueCap,
		RetryDelay:        cfg.RetryDelay,
		PairLatency:       cfg.PairLatency,
	})
	run := &allToAllRun{
		cfg:        cfg,
		pattern:    pattern,
		res:        &AllToAllResult{},
		warmupLeft: cfg.P,
	}
	if cfg.WarmupCycles == 0 {
		run.warmupLeft = 0
		run.statsReset = true
	}
	for i := 0; i < cfg.P; i++ {
		m.SetProgram(i, &atProgram{run: run, self: i})
	}
	m.Start()
	m.Run()
	res := run.res
	if !run.machineSnap {
		res.Machine = m.Stats()
	}
	if mean := res.R.Mean(); mean > 0 {
		res.X = float64(cfg.P) / mean
	}
	res.Nacks = m.Nacks()
	return *res, nil
}

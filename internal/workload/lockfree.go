package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LockFreeConfig describes a CAS-retry run built directly on the
// discrete-event kernel: Threads threads share one versioned word and
// loop {compute Work; repeat a retry round of length Round until no
// other thread committed inside the round; pay Serial; commit}. A round
// models read-state / compute-new-value / CAS: it fails exactly when
// the shared version changed between its start and its end — conflicts
// regenerate the round's work instead of queueing it, the Atalar et
// al. conflict semantics.
type LockFreeConfig struct {
	// Threads is the number of contending threads.
	Threads int
	// Work is the parallel work distribution between successful
	// operations (mean W).
	Work dist.Distribution
	// Round is the retry-round distribution (mean So, SCV C²) — the
	// conflict window.
	Round dist.Distribution
	// Serial is the per-commit serialization cost distribution
	// (mean St): the exclusive cache-line transfer of the winning CAS.
	Serial dist.Distribution
	// WarmupTime and MeasureTime bound the measurement window.
	WarmupTime, MeasureTime float64
	// Seed roots the per-thread random streams.
	Seed uint64
	// Par, when non-nil, runs the workload through the parallel
	// discrete-event core as a single logical process; see ParSim and
	// lfLP. Both paths draw identical samples, so the measurements
	// match the engine-based run exactly.
	Par *ParSim
}

func (c LockFreeConfig) validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("workload: lock-free needs Threads >= 1, got %d", c.Threads)
	case c.Work == nil || c.Round == nil || c.Serial == nil:
		return fmt.Errorf("workload: nil distribution in config")
	// The negated comparisons reject NaN too: NaN >= 0 is false.
	case !(c.WarmupTime >= 0) || !(c.MeasureTime > 0) || math.IsInf(c.WarmupTime, 0) || math.IsInf(c.MeasureTime, 0):
		return fmt.Errorf("workload: invalid window warmup=%v measure=%v", c.WarmupTime, c.MeasureTime)
	}
	return nil
}

// LockFreeSimResult holds the measured CAS-retry statistics, aligned
// with core.LockFreeResult.
type LockFreeSimResult struct {
	// X is the system throughput: successful operations per cycle
	// across all threads in the measurement window.
	X float64
	// R is the full thread cycle time (commit completion to commit
	// completion).
	R stats.Tally
	// Attempts is the mean number of retry rounds per successful
	// operation in the window.
	Attempts float64
	// Conflict is the fraction of rounds that lost their CAS.
	Conflict float64
	// Ops counts successful operations in the window.
	Ops int64
	// Rounds counts retry rounds completed in the window.
	Rounds int64
}

// lfState is the shared state of one lock-free run.
type lfState struct {
	cfg       LockFreeConfig
	eng       *sim.Engine
	version   uint64 // the shared versioned word; commits increment it
	res       *LockFreeSimResult
	conflicts int64
	inWin     func(t float64) bool
}

// lfThread drives one thread through compute/retry/commit cycles.
type lfThread struct {
	st    *lfState
	r     *rng.Stream
	ready float64 // start of the current cycle
	v0    uint64  // version observed at the current round's start
}

func (t *lfThread) startCycle() {
	t.ready = t.st.eng.Now()
	t.st.eng.Schedule(t.st.cfg.Work.Sample(t.r), t.startRound)
}

func (t *lfThread) startRound() {
	t.v0 = t.st.version
	t.st.eng.Schedule(t.st.cfg.Round.Sample(t.r), t.endRound)
}

func (t *lfThread) endRound() {
	st := t.st
	now := st.eng.Now()
	measured := st.inWin(now)
	if measured {
		st.res.Rounds++
	}
	if st.version != t.v0 {
		// Another thread committed inside the window: the CAS fails and
		// the round's work regenerates.
		if measured {
			st.conflicts++
		}
		t.startRound()
		return
	}
	st.version++
	st.eng.Schedule(st.cfg.Serial.Sample(t.r), func() {
		end := st.eng.Now()
		if st.inWin(end) {
			st.res.Ops++
			st.res.R.Add(end - t.ready)
		}
		t.startCycle()
	})
}

// RunLockFree executes one CAS-retry simulation.
func RunLockFree(cfg LockFreeConfig) (LockFreeSimResult, error) {
	if err := cfg.validate(); err != nil {
		return LockFreeSimResult{}, err
	}
	if cfg.Par != nil {
		return runLockFreePar(cfg)
	}
	eng := sim.NewEngine()
	st := &lfState{cfg: cfg, eng: eng, res: &LockFreeSimResult{}}
	end := cfg.WarmupTime + cfg.MeasureTime
	st.inWin = func(t float64) bool {
		return t >= cfg.WarmupTime && t <= end
	}
	src := rng.NewSource(cfg.Seed)
	for i := 0; i < cfg.Threads; i++ {
		th := &lfThread{st: st, r: src.Stream()}
		eng.Schedule(0, th.startCycle)
	}
	eng.RunUntil(end)

	res := st.res
	res.X = float64(res.Ops) / cfg.MeasureTime
	if res.Rounds > 0 {
		res.Conflict = float64(st.conflicts) / float64(res.Rounds)
	}
	if res.Ops > 0 {
		res.Attempts = float64(res.Rounds) / float64(res.Ops)
	}
	return *res, nil
}

package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ReplicatedAllToAll aggregates N independent all-to-all replications.
// The per-replication mean of each response-time component feeds a
// Tally, so Mean() is the grand mean and HalfWidth95() a confidence
// interval treating replications as independent — which they are by
// construction: replication i runs with seed rng.SeedAt(root, i).
type ReplicatedAllToAll struct {
	// Reps holds every replication's full result, in replication order.
	Reps []AllToAllResult
	// R, Rw, Rq, Ry and Net tally the per-replication means of the
	// corresponding AllToAllResult components.
	R, Rw, Rq, Ry, Net stats.Tally
	// X tallies per-replication system throughput.
	X stats.Tally
}

// RunAllToAllN runs reps independent replications of cfg, up to jobs of
// them concurrently, and aggregates their means. Replication i uses
// seed rng.SeedAt(cfg.Seed, i) — a pure function of the root seed and
// the replication index — so results are identical for every jobs
// value, including 1.
func RunAllToAllN(cfg AllToAllConfig, reps, jobs int) (ReplicatedAllToAll, error) {
	var agg ReplicatedAllToAll
	// Validate once up front: a bad config should fail before any
	// replication goroutine starts, not reps times inside the pool.
	if err := cfg.validate(); err != nil {
		return agg, err
	}
	if reps < 1 {
		return agg, fmt.Errorf("workload: RunAllToAllN needs reps >= 1, got %d", reps)
	}
	results, err := runner.Map(reps, runner.Options{Jobs: jobs}, func(i int) (AllToAllResult, error) {
		c := cfg
		c.Seed = rng.SeedAt(cfg.Seed, uint64(i))
		// Per-run outputs must not be shared across replications; the
		// core selection itself carries over.
		c.Par = cfg.Par.perRep()
		return RunAllToAll(c)
	})
	if err != nil {
		return agg, err
	}
	agg.Reps = results
	for i := range results {
		r := &results[i]
		agg.R.Add(r.R.Mean())
		agg.Rw.Add(r.Rw.Mean())
		agg.Rq.Add(r.Rq.Mean())
		agg.Ry.Add(r.Ry.Mean())
		agg.Net.Add(r.Net.Mean())
		agg.X.Add(r.X)
	}
	return agg, nil
}

// ReplicatedWorkpile aggregates N independent work-pile replications,
// seeded the same way as ReplicatedAllToAll.
type ReplicatedWorkpile struct {
	// Reps holds every replication's full result, in replication order.
	Reps []WorkpileResult
	// X, Qs and Us tally per-replication throughput, server queue
	// length, and server utilization.
	X, Qs, Us stats.Tally
}

// RunWorkpileN runs reps independent replications of cfg, up to jobs of
// them concurrently. Replication i uses seed rng.SeedAt(cfg.Seed, i).
func RunWorkpileN(cfg WorkpileConfig, reps, jobs int) (ReplicatedWorkpile, error) {
	var agg ReplicatedWorkpile
	// Validate once up front, as in RunAllToAllN.
	if err := cfg.validate(); err != nil {
		return agg, err
	}
	if reps < 1 {
		return agg, fmt.Errorf("workload: RunWorkpileN needs reps >= 1, got %d", reps)
	}
	results, err := runner.Map(reps, runner.Options{Jobs: jobs}, func(i int) (WorkpileResult, error) {
		c := cfg
		c.Seed = rng.SeedAt(cfg.Seed, uint64(i))
		// Per-run outputs must not be shared across replications.
		c.Par = cfg.Par.perRep()
		return RunWorkpile(c)
	})
	if err != nil {
		return agg, err
	}
	agg.Reps = results
	for i := range results {
		r := &results[i]
		agg.X.Add(r.X)
		agg.Qs.Add(r.Qs)
		agg.Us.Add(r.Us)
	}
	return agg, nil
}

package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// WorkpileConfig describes a client-server work-pile run (Chapter 6):
// the first P−Ps nodes are clients that process chunks of work and
// request the next chunk from a uniformly random server; the last Ps
// nodes are servers whose threads are idle — they only run request
// handlers.
type WorkpileConfig struct {
	// P is the total node count; the last Ps nodes act as servers.
	P, Ps int
	// Chunk is the distribution of work per chunk at a client (the
	// paper motivates work-piles by highly variable chunk sizes, so an
	// exponential with mean W is the natural choice).
	Chunk dist.Distribution
	// PerClientChunk optionally overrides Chunk per client (length
	// P−Ps): heterogeneous client classes for validating the general
	// model and multiclass MVA. Nil entries fall back to Chunk.
	PerClientChunk []dist.Distribution
	// Latency is the per-trip network latency distribution.
	Latency dist.Distribution
	// Service is the handler service distribution (request handler at
	// the server handing out a chunk descriptor; reply handler at the
	// client).
	Service dist.Distribution
	// WarmupTime and MeasureTime bound the run: statistics cover
	// [WarmupTime, WarmupTime+MeasureTime] of simulated cycles. The
	// work-pile is measured over a time window (not a cycle count)
	// because throughput is the metric of interest.
	WarmupTime, MeasureTime float64
	// Seed roots the run's random streams.
	Seed uint64
	// Par, when non-nil, runs the workload through the parallel
	// discrete-event core; see ParSim.
	Par *ParSim
}

func (c WorkpileConfig) validate() error {
	switch {
	case c.P < 2 || c.Ps < 1 || c.Ps >= c.P:
		return fmt.Errorf("workload: need 1 <= Ps < P, got Ps=%d P=%d", c.Ps, c.P)
	case c.Chunk == nil || c.Latency == nil || c.Service == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.PerClientChunk != nil && len(c.PerClientChunk) != c.P-c.Ps:
		return fmt.Errorf("workload: PerClientChunk has %d entries for %d clients", len(c.PerClientChunk), c.P-c.Ps)
	// The negated comparisons reject NaN too: NaN >= 0 is false.
	case !(c.WarmupTime >= 0) || !(c.MeasureTime > 0) || math.IsInf(c.WarmupTime, 0) || math.IsInf(c.MeasureTime, 0):
		return fmt.Errorf("workload: invalid window warmup=%v measure=%v", c.WarmupTime, c.MeasureTime)
	}
	return nil
}

// WorkpileResult holds the measured work-pile statistics.
type WorkpileResult struct {
	// X is the system throughput: chunks completed per cycle during the
	// measurement window, across the whole machine.
	X float64
	// R is the client compute/request cycle time.
	R stats.Tally
	// Rs is the response time of chunk requests at the servers
	// (queueing + service) — the model's Rs.
	Rs stats.Tally
	// Qs is the time-averaged number of requests present per server; at
	// the optimal allocation the model says this is 1.
	Qs float64
	// Us is the time-averaged utilization per server.
	Us float64
	// Chunks is the number of chunks completed in the window.
	Chunks int64
	// ChunksByClient counts completed chunks per client node (indices
	// 0..Pc−1), for per-class throughput with heterogeneous clients.
	ChunksByClient []int64
}

// wpProgram drives one client.
type wpProgram struct {
	run   *workpileRun
	chunk dist.Distribution
	phase int
	cur   cycleTimestamps
}

type workpileRun struct {
	cfg    WorkpileConfig
	res    *WorkpileResult
	inWin  func(t float64) bool
	chunks int64
}

// Next implements machine.Program.
func (p *wpProgram) Next(m *machine.Machine, self int) machine.Action {
	switch p.phase {
	case phaseStart:
		p.cur.ready = m.Now()
		p.phase = phaseSend
		return machine.Compute(p.chunk.Sample(m.Rand(self)))

	case phaseSend:
		p.cur.send = m.Now()
		p.phase = phaseUnblocked
		// Pick a uniformly random server.
		pc := p.run.cfg.P - p.run.cfg.Ps
		dst := pc + m.Rand(self).Intn(p.run.cfg.Ps)
		req := &machine.Message{
			Src: self, Dst: dst, Kind: machine.KindRequest, Service: p.run.cfg.Service,
		}
		p.cur.req = req
		req.OnComplete = func(m *machine.Machine, msg *machine.Message) {
			rep := &machine.Message{
				Src: msg.Dst, Dst: msg.Src, Kind: machine.KindReply, Service: p.run.cfg.Service,
			}
			p.cur.rep = rep
			rep.OnComplete = func(m *machine.Machine, rmsg *machine.Message) {
				p.cur.repDone = rmsg.Done
				m.Unblock(rmsg.Dst)
			}
			m.Send(rep)
		}
		return machine.SendAndBlock(req)

	case phaseUnblocked:
		c := &p.cur
		if p.run.inWin(c.repDone) {
			res := p.run.res
			res.R.Add(c.repDone - c.ready)
			res.Rs.Add(c.req.Done - c.req.Arrived)
			p.run.chunks++
			res.ChunksByClient[self]++
		}
		p.cur = cycleTimestamps{ready: c.repDone}
		p.phase = phaseSend
		return machine.Compute(p.chunk.Sample(m.Rand(self)))

	default:
		panic(fmt.Sprintf("workload: invalid work-pile phase %d", p.phase))
	}
}

// RunWorkpile executes one work-pile simulation.
func RunWorkpile(cfg WorkpileConfig) (WorkpileResult, error) {
	if err := cfg.validate(); err != nil {
		return WorkpileResult{}, err
	}
	if cfg.Par != nil {
		return runWorkpilePar(cfg)
	}
	m := machine.New(machine.Config{
		P:          cfg.P,
		NetLatency: cfg.Latency,
		Seed:       cfg.Seed,
	})
	end := cfg.WarmupTime + cfg.MeasureTime
	pc := cfg.P - cfg.Ps
	run := &workpileRun{
		cfg: cfg,
		res: &WorkpileResult{ChunksByClient: make([]int64, pc)},
		inWin: func(t float64) bool {
			return t >= cfg.WarmupTime && t <= end
		},
	}
	for i := 0; i < pc; i++ {
		chunk := cfg.Chunk
		if cfg.PerClientChunk != nil && cfg.PerClientChunk[i] != nil {
			chunk = cfg.PerClientChunk[i]
		}
		m.SetProgram(i, &wpProgram{run: run, chunk: chunk})
	}
	m.Start()
	m.RunUntil(cfg.WarmupTime)
	m.ResetStats()
	m.RunUntil(end)

	res := run.res
	res.Chunks = run.chunks
	res.X = float64(run.chunks) / cfg.MeasureTime
	// Server-side time averages over the measurement window.
	for s := pc; s < cfg.P; s++ {
		ns := m.NodeStats(s)
		res.Qs += ns.ReqQueue
		res.Us += ns.UtilReq
	}
	res.Qs /= float64(cfg.Ps)
	res.Us /= float64(cfg.Ps)
	return *res, nil
}

//go:build !race

package lockbench

// RaceEnabled reports whether the race detector is compiled in. The
// model-vs-measured tests widen their tolerance under -race: the
// detector multiplies the cost of every atomic and mutex operation,
// which distorts exactly the quantities being measured.
const RaceEnabled = false

package lockbench

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/fit"
)

// benchThreads returns the thread counts the real-runtime tests sweep:
// 1..4, capped at GOMAXPROCS — running more contending goroutines than
// processors measures the Go scheduler's timeslicing, not the
// contention the model describes. On a single-core machine the sweep
// is the single point {1}.
func benchThreads() []int {
	maxT := runtime.GOMAXPROCS(0)
	if maxT > 4 {
		maxT = 4
	}
	var out []int
	for n := 1; n <= maxT; n++ {
		out = append(out, n)
	}
	return out
}

// measuredTolerance is the documented model-vs-measured contract: the
// fitted model must reproduce measured throughput within 15% mean
// relative error across the tested thread range. Under -race every
// atomic and mutex operation pays detector instrumentation, which
// inflates exactly the contended phases; the smoke job tolerates 40%.
func measuredTolerance() float64 {
	if RaceEnabled {
		return 0.40
	}
	return 0.15
}

func TestConfigValidate(t *testing.T) {
	cal := Calibration{SpinsPerNs: 1}
	bad := []Config{
		{Threads: 0, Work: time.Microsecond, Critical: time.Microsecond, OpsPerThread: 1},
		{Threads: 1, Work: -time.Microsecond, Critical: time.Microsecond, OpsPerThread: 1},
		{Threads: 1, Work: time.Microsecond, Critical: 0, OpsPerThread: 1},
		{Threads: 1, Work: time.Microsecond, Critical: time.Microsecond, OpsPerThread: 0},
	}
	for _, cfg := range bad {
		if _, err := RunMutex(cfg, cal); err == nil {
			t.Errorf("RunMutex(%+v) accepted invalid config", cfg)
		}
		if _, err := RunCAS(cfg, cal); err == nil {
			t.Errorf("RunCAS(%+v) accepted invalid config", cfg)
		}
		if _, err := RunTreiber(cfg, cal); err == nil {
			t.Errorf("RunTreiber(%+v) accepted invalid config", cfg)
		}
	}
}

// TestWorkPlanReproducible: work plans are a pure function of
// (seed, thread) under the rng substream scheme — the determinism
// contract for measurement replications.
func TestWorkPlanReproducible(t *testing.T) {
	a := WorkPlan(0xfeed, 3, 256, 1000)
	b := WorkPlan(0xfeed, 3, 256, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical (seed, thread) produced different plans")
	}
	c := WorkPlan(0xfeed, 4, 256, 1000)
	if reflect.DeepEqual(a, c) {
		t.Error("different threads share a work plan")
	}
	d := WorkPlan(0xbeef, 3, 256, 1000)
	if reflect.DeepEqual(a, d) {
		t.Error("different seeds share a work plan")
	}
	var sum float64
	for _, v := range a {
		sum += float64(v)
	}
	if mean := sum / float64(len(a)); mean < 500 || mean > 2000 {
		t.Errorf("plan mean %v far from configured 1000", mean)
	}
}

func TestCalibrate(t *testing.T) {
	cal := Calibrate()
	if !(cal.SpinsPerNs > 0) || math.IsInf(cal.SpinsPerNs, 0) {
		t.Fatalf("SpinsPerNs = %v", cal.SpinsPerNs)
	}
	if cal.SpinsFor(0) != 0 {
		t.Error("SpinsFor(0) != 0")
	}
	if cal.SpinsFor(time.Microsecond) == 0 {
		t.Error("SpinsFor(1µs) == 0; calibration rate implausibly low")
	}
}

// TestMutexModelVsMeasured is the committed model-vs-measured contract
// for the coarse-grained lock scenario: measure sync.Mutex throughput
// across the tested thread range, fit the lock model's (W, St) with
// the calibrated critical section held fixed (So known, C² = 0 — the
// spin is deterministic), and require the fit to reproduce the
// measurements within measuredTolerance (15% mean relative error; 40%
// under -race). On a single-core machine the range degenerates to one
// point and the fit pins the effective cycle time; on multi-core CI
// the sweep also constrains the contention shape.
func TestMutexModelVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime measurement")
	}
	cal := Calibrate()
	work, crit := 10*time.Microsecond, 2*time.Microsecond
	var obs []fit.LockObservation
	for _, n := range benchThreads() {
		m, err := RunMutex(Config{
			Threads: n, Work: work, Critical: crit,
			OpsPerThread: 4000, Seed: 0x10c,
		}, cal)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		if m.Attempts != 1 {
			t.Errorf("Threads=%d: mutex attempts = %v, want exactly 1", n, m.Attempts)
		}
		obs = append(obs, fit.LockObservation{Threads: n, X: m.X})
	}
	so := float64(crit.Nanoseconds())
	res, err := fit.Lock(obs, so, 0)
	if err != nil {
		t.Fatal(err)
	}
	tol := measuredTolerance()
	if res.RelRMSE > tol {
		t.Errorf("fitted lock model misses measurements: RelRMSE %.1f%% > %.0f%% (obs %+v, fit %+v)",
			100*res.RelRMSE, 100*tol, obs, res)
	}
	// The fitted effective work may exceed the configured spin (it
	// absorbs scheduler and allocation overhead) but should stay within
	// an order of magnitude of it on any healthy machine.
	wNs := float64(work.Nanoseconds())
	if res.W < wNs/10 || res.W > wNs*10 {
		t.Errorf("fitted W = %.0fns implausible against configured %.0fns", res.W, wNs)
	}
}

// TestCASModelVsMeasured is the committed contract for the lock-free
// scenario: measure CAS-retry throughput, fit the conflict model's
// (W, St) with the calibrated round held fixed, and require agreement
// within measuredTolerance.
func TestCASModelVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime measurement")
	}
	cal := Calibrate()
	work, round := 10*time.Microsecond, 2*time.Microsecond
	var obs []fit.LockObservation
	for _, n := range benchThreads() {
		m, err := RunCAS(Config{
			Threads: n, Work: work, Critical: round,
			OpsPerThread: 4000, Seed: 0x10c,
		}, cal)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		if m.Attempts < 1 {
			t.Errorf("Threads=%d: attempts = %v < 1", n, m.Attempts)
		}
		obs = append(obs, fit.LockObservation{Threads: n, X: m.X})
	}
	so := float64(round.Nanoseconds())
	res, err := fit.LockFree(obs, so, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tol := measuredTolerance(); res.RelRMSE > tol {
		t.Errorf("fitted lock-free model misses measurements: RelRMSE %.1f%% > %.0f%% (obs %+v, fit %+v)",
			100*res.RelRMSE, 100*tol, obs, res)
	}
}

// TestTreiberSmoke: the Treiber stack driver runs, balances pushes and
// pops (every operation pays at least two CAS rounds), and reports a
// plausible throughput.
func TestTreiberSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime measurement")
	}
	cal := Calibrate()
	m, err := RunTreiber(Config{
		Threads: benchThreads()[len(benchThreads())-1],
		Work:    5 * time.Microsecond, Critical: time.Microsecond,
		OpsPerThread: 2000, Seed: 0x10c,
	}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if m.Attempts < 2 {
		t.Errorf("attempts = %v, want >= 2 (pop + push)", m.Attempts)
	}
	if !(m.X > 0) {
		t.Errorf("throughput %v", m.X)
	}
	if m.Elapsed <= 0 {
		t.Errorf("elapsed %v", m.Elapsed)
	}
}

//go:build race

package lockbench

// RaceEnabled reports whether the race detector is compiled in; see
// race_off.go for why the tolerance widens when it is.
const RaceEnabled = true

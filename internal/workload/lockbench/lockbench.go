// Package lockbench measures real Go runtime contention — sync.Mutex
// critical sections and lock-free CAS retry loops — so the lock and
// lock-free models of internal/core can be validated against actual
// hardware rather than only against the simulated machine.
//
// The harness is deliberately shaped like the model's workloads: each
// goroutine loops {work spin; contend; serialized spin}, where the
// spins are calibrated busy loops (Calibrate maps wall time to loop
// iterations). Work sequences are drawn from internal/rng substreams
// keyed by (Seed, thread), so the workload an experiment presents is a
// pure function of its configuration even though the measured timings
// are not: reproducibility lives in the plan, wall-clock noise in the
// measurement.
//
// Unlike every other workload package, lockbench reads the wall clock
// by design — it is the one place the repo touches non-simulated time,
// and it is excluded from lopc-lint's deterministic package set.
package lockbench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Calibration maps busy-loop iterations to wall time on this machine.
type Calibration struct {
	// SpinsPerNs is the measured busy-loop iteration rate.
	SpinsPerNs float64
}

// spin runs n iterations of a multiply-add loop and returns the
// accumulator; callers fold the result into their own sink so the
// compiler cannot elide the loop.
func spin(n uint64) uint64 {
	acc := uint64(1)
	for i := uint64(0); i < n; i++ {
		acc = acc*2862933555777941757 + 3037000493
	}
	return acc
}

// Calibrate times the spin loop until it has a stable rate estimate.
// It takes a few milliseconds.
func Calibrate() Calibration {
	var sink uint64
	n := uint64(1 << 16)
	for {
		//lopc:allow clockseam calibration measures real spin throughput; a fake clock would defeat it
		t0 := time.Now()
		sink += spin(n)
		//lopc:allow clockseam calibration measures real spin throughput; a fake clock would defeat it
		el := time.Since(t0)
		if el >= 2*time.Millisecond {
			_ = sink
			return Calibration{SpinsPerNs: float64(n) / float64(el.Nanoseconds())}
		}
		n *= 2
	}
}

// SpinsFor returns the iteration count approximating duration d.
func (c Calibration) SpinsFor(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(c.SpinsPerNs * float64(d.Nanoseconds()))
}

// Config parameterizes one measurement run.
type Config struct {
	// Threads is the number of contending goroutines.
	Threads int
	// Work is the mean non-contended work per operation; per-operation
	// amounts are exponential, drawn from the (Seed, thread) substream.
	Work time.Duration
	// Critical is the critical-section length (mutex driver) or the
	// retry-round length (CAS drivers): the contended spin. It is
	// deterministic, so the model's C² for it is 0.
	Critical time.Duration
	// OpsPerThread is the number of operations each goroutine performs.
	OpsPerThread int
	// Seed roots the per-thread work plans.
	Seed uint64
}

func (c Config) validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("lockbench: Threads = %d", c.Threads)
	case c.OpsPerThread < 1:
		return fmt.Errorf("lockbench: OpsPerThread = %d", c.OpsPerThread)
	case c.Work < 0 || c.Critical <= 0:
		return fmt.Errorf("lockbench: need Work >= 0 and Critical > 0, got %v, %v", c.Work, c.Critical)
	}
	return nil
}

// Measurement is the outcome of one run.
type Measurement struct {
	// Threads echoes the configured goroutine count.
	Threads int
	// Ops is the total number of completed operations.
	Ops int64
	// Elapsed is the wall time from releasing the goroutines to the
	// last one finishing.
	Elapsed time.Duration
	// X is the measured throughput in operations per nanosecond — the
	// model's time unit for real-runtime fits.
	X float64
	// Attempts is the mean number of CAS rounds per operation (exactly
	// 1 for the mutex driver).
	Attempts float64
}

// WorkPlan returns the spin counts thread performs, one per operation:
// exponential with mean meanSpins, drawn from the rng substream at
// (seed, thread). Two calls with equal arguments return identical
// plans on every platform — the reproducibility contract the
// determinism tests pin.
func WorkPlan(seed uint64, thread, ops int, meanSpins float64) []uint64 {
	r := rng.New(rng.SeedAt(seed, uint64(thread)))
	plan := make([]uint64, ops)
	for i := range plan {
		plan[i] = uint64(meanSpins * r.ExpFloat64())
	}
	return plan
}

// run starts cfg.Threads goroutines, each executing body(thread, plan)
// over its work plan after a common start barrier, and returns the
// wall time and summed per-thread attempt counts. body returns
// (attempts, sink) for its whole loop.
func run(cfg Config, cal Calibration, body func(thread int, plan []uint64) (int64, uint64)) Measurement {
	meanSpins := cal.SpinsPerNs * float64(cfg.Work.Nanoseconds())
	plans := make([][]uint64, cfg.Threads)
	for i := range plans {
		plans[i] = WorkPlan(cfg.Seed, i, cfg.OpsPerThread, meanSpins)
	}
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	attempts := make([]int64, cfg.Threads)
	sinks := make([]uint64, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			ready.Done()
			<-start
			attempts[i], sinks[i] = body(i, plans[i])
		}(i)
	}
	ready.Wait()
	//lopc:allow clockseam the benchmark times real hardware contention; wall time is the measurand
	t0 := time.Now()
	close(start)
	wg.Wait()
	//lopc:allow clockseam the benchmark times real hardware contention; wall time is the measurand
	elapsed := time.Since(t0)
	var totalAtt int64
	var sink uint64
	for i := range attempts {
		totalAtt += attempts[i]
		sink += sinks[i]
	}
	runtime.KeepAlive(sink)
	ops := int64(cfg.Threads) * int64(cfg.OpsPerThread)
	return Measurement{
		Threads:  cfg.Threads,
		Ops:      ops,
		Elapsed:  elapsed,
		X:        float64(ops) / float64(elapsed.Nanoseconds()),
		Attempts: float64(totalAtt) / float64(ops),
	}
}

// RunMutex measures a sync.Mutex critical-section loop: every
// operation spins for its planned work, acquires the mutex, spins for
// Critical, and releases. This is the coarse-grained lock scenario:
// the mutex queue is the model's server queue.
func RunMutex(cfg Config, cal Calibration) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	crit := cal.SpinsFor(cfg.Critical)
	var mu sync.Mutex
	m := run(cfg, cal, func(_ int, plan []uint64) (int64, uint64) {
		var acc uint64
		for _, w := range plan {
			acc += spin(w)
			mu.Lock()
			acc += spin(crit)
			mu.Unlock()
		}
		return int64(len(plan)), acc
	})
	return m, nil
}

// RunCAS measures a lock-free counter increment: every operation spins
// for its planned work, then retries {read; spin Critical; CAS} until
// the CAS wins. A retry round loses exactly when another goroutine
// commits inside its read-to-CAS window — the conflict semantics of
// the lock-free model, on real hardware.
func RunCAS(cfg Config, cal Calibration) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	round := cal.SpinsFor(cfg.Critical)
	var ctr atomic.Uint64
	m := run(cfg, cal, func(_ int, plan []uint64) (int64, uint64) {
		var acc uint64
		var att int64
		for _, w := range plan {
			acc += spin(w)
			for {
				att++
				v := ctr.Load()
				acc += spin(round)
				if ctr.CompareAndSwap(v, v+1) {
					break
				}
			}
		}
		return att, acc
	})
	return m, nil
}

// tnode is a Treiber stack node. Nodes are freshly allocated per push;
// Go's garbage collector rules out the ABA hazard node reuse would
// introduce.
type tnode struct {
	next *tnode
	val  uint64
}

// RunTreiber measures a Treiber stack: every operation spins for its
// planned work, pops a node, and pushes a fresh one, each with a
// CAS retry loop whose round includes the Critical spin. The stack is
// pre-populated with one node per thread so pops never observe an
// empty stack.
func RunTreiber(cfg Config, cal Calibration) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	round := cal.SpinsFor(cfg.Critical)
	var head atomic.Pointer[tnode]
	for i := 0; i < cfg.Threads; i++ {
		head.Store(&tnode{next: head.Load(), val: uint64(i)})
	}
	m := run(cfg, cal, func(_ int, plan []uint64) (int64, uint64) {
		var acc uint64
		var att int64
		for _, w := range plan {
			acc += spin(w)
			var popped *tnode
			for {
				att++
				h := head.Load()
				acc += spin(round / 2)
				if h == nil {
					// Impossible by construction (pushes balance pops),
					// but never spin on a nil head.
					continue
				}
				if head.CompareAndSwap(h, h.next) {
					popped = h
					break
				}
			}
			n := &tnode{val: popped.val + 1}
			for {
				att++
				h := head.Load()
				n.next = h
				acc += spin(round / 2)
				if head.CompareAndSwap(h, n) {
					break
				}
			}
		}
		return att, acc
	})
	return m, nil
}

package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// MultiHopConfig describes an all-to-all pattern whose requests are
// forwarded through several nodes before the reply returns — the
// "multi-hop" requests the general (Appendix A) model supports. Each
// hop runs a request handler on a uniformly random node distinct from
// the current one; the final hop's handler sends the reply straight
// back to the originator.
type MultiHopConfig struct {
	// P is the number of nodes.
	P int
	// Hops is the number of request-handler visits per cycle (1 is the
	// plain all-to-all pattern).
	Hops int
	// Work, Latency, Service are as in AllToAllConfig.
	Work, Latency, Service dist.Distribution
	// WarmupCycles and MeasureCycles are per-thread cycle counts.
	WarmupCycles, MeasureCycles int
	// Seed roots the run's random streams.
	Seed uint64
}

func (c MultiHopConfig) validate() error {
	switch {
	case c.P < 3:
		return fmt.Errorf("workload: multi-hop needs P >= 3 (forwarding needs a node besides source and holder), got %d", c.P)
	case c.Hops < 1:
		return fmt.Errorf("workload: Hops = %d", c.Hops)
	case c.Work == nil || c.Latency == nil || c.Service == nil:
		return fmt.Errorf("workload: nil distribution in config")
	case c.MeasureCycles < 1:
		return fmt.Errorf("workload: MeasureCycles = %d", c.MeasureCycles)
	case c.WarmupCycles < 0:
		return fmt.Errorf("workload: WarmupCycles = %d", c.WarmupCycles)
	}
	return nil
}

// MultiHopResult holds the measured statistics for a multi-hop run.
type MultiHopResult struct {
	// R is the complete cycle time.
	R stats.Tally
	// Rw is the thread residence per cycle.
	Rw stats.Tally
	// RqPerHop is the per-visit request handler response time.
	RqPerHop stats.Tally
	// Ry is the reply handler response time.
	Ry stats.Tally
	// X is P / mean(R).
	X float64
}

type mhProgram struct {
	run   *multiHopRun
	phase int
	cycle int
	cur   cycleTimestamps
	hopRq []float64 // per-hop response times of the in-flight cycle
}

type multiHopRun struct {
	cfg MultiHopConfig
	res *MultiHopResult
}

// Next implements machine.Program.
func (p *mhProgram) Next(m *machine.Machine, self int) machine.Action {
	switch p.phase {
	case phaseStart:
		p.cur.ready = m.Now()
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	case phaseSend:
		p.cur.send = m.Now()
		p.phase = phaseUnblocked
		p.hopRq = p.hopRq[:0]
		return machine.SendAndBlock(p.buildHop(m, self, self, 1))

	case phaseUnblocked:
		p.endCycle()
		if p.cycle >= p.run.cfg.WarmupCycles+p.run.cfg.MeasureCycles {
			return machine.Halt()
		}
		p.phase = phaseSend
		return machine.Compute(p.run.cfg.Work.Sample(m.Rand(self)))

	default:
		panic(fmt.Sprintf("workload: invalid multi-hop phase %d", p.phase))
	}
}

// buildHop constructs the request message for hop number `hop` (1-based)
// leaving node `from`, on behalf of originator `origin`. The randomness
// for destination choice is drawn from the *sending* node's stream, so
// forwarding decisions are reproducible.
func (p *mhProgram) buildHop(m *machine.Machine, origin, from, hop int) *machine.Message {
	// Uniformly random node different from the sender.
	dst := m.Rand(from).Intn(m.P() - 1)
	if dst >= from {
		dst++
	}
	msg := &machine.Message{
		Src: from, Dst: dst, Kind: machine.KindRequest, Service: p.run.cfg.Service,
	}
	msg.OnComplete = func(m *machine.Machine, done *machine.Message) {
		p.hopRq = append(p.hopRq, done.Done-done.Arrived)
		if hop < p.run.cfg.Hops {
			m.Send(p.buildHop(m, origin, done.Dst, hop+1))
			return
		}
		rep := &machine.Message{
			Src: done.Dst, Dst: origin, Kind: machine.KindReply, Service: p.run.cfg.Service,
		}
		p.cur.rep = rep
		rep.OnComplete = func(m *machine.Machine, rmsg *machine.Message) {
			p.cur.repDone = rmsg.Done
			m.Unblock(origin)
		}
		m.Send(rep)
	}
	return msg
}

func (p *mhProgram) endCycle() {
	c := &p.cur
	if p.cycle >= p.run.cfg.WarmupCycles {
		res := p.run.res
		res.R.Add(c.repDone - c.ready)
		res.Rw.Add(c.send - c.ready)
		for _, rq := range p.hopRq {
			res.RqPerHop.Add(rq)
		}
		res.Ry.Add(c.rep.Done - c.rep.Arrived)
	}
	p.cycle++
	p.cur = cycleTimestamps{ready: c.repDone}
}

// RunMultiHop executes one multi-hop simulation.
func RunMultiHop(cfg MultiHopConfig) (MultiHopResult, error) {
	if err := cfg.validate(); err != nil {
		return MultiHopResult{}, err
	}
	m := machine.New(machine.Config{
		P:          cfg.P,
		NetLatency: cfg.Latency,
		Seed:       cfg.Seed,
	})
	run := &multiHopRun{cfg: cfg, res: &MultiHopResult{}}
	for i := 0; i < cfg.P; i++ {
		m.SetProgram(i, &mhProgram{run: run})
	}
	m.Start()
	m.Run()
	res := run.res
	if mean := res.R.Mean(); mean > 0 {
		res.X = float64(cfg.P) / mean
	}
	return *res, nil
}

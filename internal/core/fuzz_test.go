package core

import (
	"math"
	"testing"
)

// FuzzAllToAll drives the homogeneous solver with arbitrary parameters:
// it must either reject them with an error or return a solution
// satisfying the model's own invariants — never panic, never NaN.
func FuzzAllToAll(f *testing.F) {
	f.Add(32, 512.0, 40.0, 200.0, 0.0)
	f.Add(2, 0.0, 0.0, 1.0, 0.0)
	f.Add(1024, 1e6, 1e3, 1e4, 2.0)
	f.Add(32, 0.0, 40.0, 200.0, 1.0)
	f.Add(3, 1.5, 0.25, 0.125, 0.5)
	f.Fuzz(func(t *testing.T, p int, w, st, so, c2 float64) {
		params := Params{P: p, W: w, St: st, So: so, C2: c2}
		res, err := AllToAll(params)
		if err != nil {
			return // rejected input is fine
		}
		if math.IsNaN(res.R) || math.IsInf(res.R, 0) {
			t.Fatalf("non-finite R for %+v", params)
		}
		if res.R < params.ContentionFree()-1e-6*res.R {
			t.Fatalf("R %v below contention-free %v for %+v", res.R, params.ContentionFree(), params)
		}
		if res.R > res.UpperBound*(1+1e-9) {
			t.Fatalf("R %v above upper bound %v for %+v", res.R, res.UpperBound, params)
		}
		sum := res.Rw + 2*params.St + res.Rq + res.Ry
		if math.Abs(sum-res.R) > 1e-6*(1+res.R) {
			t.Fatalf("decomposition violated for %+v: %v vs %v", params, sum, res.R)
		}
	})
}

// FuzzClientServer: same contract for the work-pile solver.
func FuzzClientServer(f *testing.F) {
	f.Add(32, 8, 1500.0, 40.0, 131.0, 0.0)
	f.Add(2, 1, 0.0, 0.0, 1.0, 0.0)
	f.Add(64, 63, 1e5, 10.0, 5.0, 3.0)
	f.Fuzz(func(t *testing.T, p, ps int, w, st, so, c2 float64) {
		params := ClientServerParams{P: p, Ps: ps, W: w, St: st, So: so, C2: c2}
		res, err := ClientServer(params)
		if err != nil {
			return
		}
		if math.IsNaN(res.X) || res.X < 0 {
			t.Fatalf("bad X %v for %+v", res.X, params)
		}
		server, client := ClientServerBounds(params)
		if res.X > math.Min(server, client)*(1+1e-9) {
			t.Fatalf("X %v above optimistic bounds (%v, %v) for %+v", res.X, server, client, params)
		}
		if res.Us < 0 || res.Us >= 1 {
			t.Fatalf("utilization %v out of range for %+v", res.Us, params)
		}
	})
}

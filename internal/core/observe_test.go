package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// capture records the last observation delivered through the
// SolveObserver seam.
type capture struct {
	solver string
	stats  obs.SolveStats
	calls  int
}

func (c *capture) BeginSolve(solver string) func(obs.SolveStats) {
	c.solver = solver
	return func(s obs.SolveStats) {
		c.stats = s
		c.calls++
	}
}

// TestAllToAllObserved: the observer sees the same solve stats the
// result carries, and the observed solve matches the unobserved one.
func TestAllToAllObserved(t *testing.T) {
	p := Params{P: 32, W: 1000, St: 40, So: 200}
	var c capture
	res, err := AllToAllObserved(p, &c)
	if err != nil {
		t.Fatalf("AllToAllObserved: %v", err)
	}
	if c.calls != 1 || c.solver != SolverAllToAll {
		t.Fatalf("observer saw %d calls for solver %q, want 1 call for %q", c.calls, c.solver, SolverAllToAll)
	}
	if c.stats != res.Solve {
		t.Errorf("observer stats %+v differ from result.Solve %+v", c.stats, res.Solve)
	}
	if !res.Solve.Converged || res.Solve.Iters < 1 || res.Solve.Residual < 0 {
		t.Errorf("implausible solve stats %+v", res.Solve)
	}
	if res.Solve.MaxUtil <= 0 || res.Solve.MaxUtil >= 1 {
		t.Errorf("MaxUtil = %v, want in (0, 1) for a feasible solve", res.Solve.MaxUtil)
	}
	plain, err := AllToAll(p)
	if err != nil {
		t.Fatalf("AllToAll: %v", err)
	}
	//lopc:allow floateq observed and unobserved solves run the identical iteration and must agree bit-for-bit
	if plain.R != res.R || plain.Solve != res.Solve {
		t.Errorf("observation changed the solve: %+v vs %+v", plain, res)
	}
}

// TestClientServerObservedError: a saturated configuration reports the
// failed solve through the observer with the error attached.
func TestClientServerObservedError(t *testing.T) {
	// One server shared by 63 clients with chunk work approaching zero
	// saturates it: the fixed point pushes Us past 1.
	p := ClientServerParams{P: 64, Ps: 1, W: 0.001, St: 0, So: 100}
	var c capture
	_, err := ClientServerObserved(p, &c)
	if err == nil {
		t.Skip("configuration unexpectedly feasible; saturation test void")
	}
	if c.calls != 1 || c.solver != SolverClientServer {
		t.Fatalf("observer saw %d calls for solver %q", c.calls, c.solver)
	}
	if c.stats.Err == "" {
		t.Errorf("observer stats carry no error for failed solve: %+v", c.stats)
	}
	if c.stats.GuardTrips == 0 {
		t.Errorf("saturated solve tripped no guards: %+v", c.stats)
	}
}

// TestGeneralObserved: the general solver reports through the same
// seam, with iteration counts matching the result.
func TestGeneralObserved(t *testing.T) {
	p := GeneralParams{
		P:  4,
		W:  []float64{1000, 1000, 1000, 1000},
		V:  HomogeneousVisits(4),
		St: 40,
		So: []float64{200},
	}
	var c capture
	res, err := GeneralObserved(p, &c)
	if err != nil {
		t.Fatalf("GeneralObserved: %v", err)
	}
	if c.solver != SolverGeneral || c.stats != res.Solve {
		t.Errorf("observer saw solver %q stats %+v, result carries %+v", c.solver, c.stats, res.Solve)
	}
	if !res.Solve.Converged || res.Solve.Iters < 1 {
		t.Errorf("implausible solve stats %+v", res.Solve)
	}
}

// TestObservedWithConvRecorder: the end-to-end pairing used by the
// CLIs — core solver into obs.ConvRecorder — records traces whose
// iteration counts match the solver's returned metadata.
func TestObservedWithConvRecorder(t *testing.T) {
	rec := obs.NewConvRecorder(16, nil, nil)
	var want []int
	for _, w := range []float64{500, 1000, 2000} {
		res, err := AllToAllObserved(Params{P: 16, W: w, St: 40, So: 200}, rec)
		if err != nil {
			t.Fatalf("solve at W=%v: %v", w, err)
		}
		want = append(want, res.Solve.Iters)
	}
	traces := rec.Traces()
	if len(traces) != len(want) {
		t.Fatalf("recorded %d traces, want %d", len(traces), len(want))
	}
	for i, tr := range traces {
		if tr.Iters != want[i] {
			t.Errorf("trace %d records %d iters, solver returned %d", i, tr.Iters, want[i])
		}
		if !strings.HasPrefix(tr.Solver, "alltoall") {
			t.Errorf("trace %d solver = %q", i, tr.Solver)
		}
	}
}

package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/obs"
)

// ClientServerParams parameterizes the work-pile analysis of Chapter 6:
// a machine of P nodes split into Pc = P − Ps clients, which process
// chunks of work, and Ps servers, which hand out chunks. Each client
// computes for W cycles (one chunk), then makes a blocking request to a
// uniformly random server for the next chunk.
type ClientServerParams struct {
	// P is the total number of nodes; Ps of them act as servers.
	P, Ps int
	// W is the mean work per chunk at a client.
	W float64
	// St is the mean network latency per trip.
	St float64
	// So is the mean handler cost (request handler at the server, reply
	// handler at the client).
	So float64
	// C2 is the squared coefficient of variation of handler service.
	C2 float64
}

// Validate reports whether the parameters are usable.
func (p ClientServerParams) Validate() error {
	switch {
	case p.P < 2:
		return fmt.Errorf("core: client-server needs P >= 2, got %d", p.P)
	case p.Ps < 1 || p.Ps >= p.P:
		return fmt.Errorf("core: need 1 <= Ps < P, got Ps=%d P=%d", p.Ps, p.P)
	case p.W < 0 || p.St < 0 || p.C2 < 0:
		return fmt.Errorf("core: negative parameter in %+v", p)
	case p.So <= 0:
		return fmt.Errorf("core: So = %v; handlers must take positive time", p.So)
	}
	return nil
}

// ClientServerResult is the model's solution for a given client/server
// split.
type ClientServerResult struct {
	// X is the system throughput: chunks processed per cycle across the
	// whole machine (Eq. 6.2): X = Pc/R.
	X float64
	// R is the mean compute/request cycle time at a client (Eq. 6.7).
	R float64
	// Rs is the mean response time of a request at a server, queueing
	// plus service.
	Rs float64
	// Qs is the mean number of requests present at each server; the
	// optimal allocation makes this 1.
	Qs float64
	// Us is the utilization of each server.
	Us float64
	// Solve describes the fixed-point iteration that produced this
	// result.
	Solve obs.SolveStats
}

// ClientServer solves the work-pile model for an arbitrary split,
// producing the throughput curve of Figure 6-2. Clients suffer no
// interference at their own node (servers never initiate requests and
// only the client's own reply can be present), so R = W + 2St + Rs + So;
// the only unknown is the server response time Rs, found as a fixed
// point of Bard's approximation (Eq. 6.5 with Little's law).
func ClientServer(p ClientServerParams) (ClientServerResult, error) {
	return ClientServerObserved(p, nil)
}

// clientServerStep evaluates one iterate of the work-pile fixed point
// (Eq. 6.5 with Little's law): given a trial server response time rs it
// returns the implied model quantities, with Rs holding the next
// iterate. pc and ps are the client and server counts as floats.
//
//lopc:hotpath
func clientServerStep(p ClientServerParams, pc, ps, rs float64) (ClientServerResult, error) {
	r := p.W + 2*p.St + rs + p.So
	x := pc / r
	lamS := x / ps // arrival rate at each server
	us := lamS * p.So
	if us >= 1 {
		//lopc:allow allochot error construction runs only on the saturated-guard path, never on a converged iterate
		return ClientServerResult{}, fmt.Errorf("core: server utilization %v >= 1 at Rs=%v", us, rs)
	}
	qs := lamS * rs
	rsNext := p.So * (1 + qs + (p.C2-1)/2*us)
	return ClientServerResult{X: x, R: r, Rs: rsNext, Qs: qs, Us: us}, nil
}

// ClientServerObserved is ClientServer reporting the solve to o (which
// may be nil). The returned result's Solve field carries the same stats
// the observer sees.
func ClientServerObserved(p ClientServerParams, o obs.SolveObserver) (ClientServerResult, error) {
	if err := p.Validate(); err != nil {
		return ClientServerResult{}, err
	}
	done := beginSolve(o, SolverClientServer)
	pc := float64(p.P - p.Ps)
	ps := float64(p.Ps)
	var stats obs.SolveStats
	f := func(rs float64) float64 {
		res, err := clientServerStep(p, pc, ps, rs)
		if err != nil {
			stats.GuardTrips++
			return rs * 2 // push away from the saturated region
		}
		if res.Us > stats.MaxUtil {
			stats.MaxUtil = res.Us
		}
		return res.Rs
	}
	rs, fp, err := numeric.FixedPointTraced(f, p.So, numeric.DefaultFixedPointOpts())
	stats.Iters, stats.Residual, stats.Converged = fp.Iters, fp.Residual, fp.Converged
	if err != nil {
		err = fmt.Errorf("core: client-server fixed point: %w", err)
		done(stats, err)
		return ClientServerResult{}, err
	}
	res, err := clientServerStep(p, pc, ps, rs)
	if err != nil {
		done(stats, err)
		return ClientServerResult{}, err
	}
	res.Rs = rs
	res.Qs = res.X / ps * rs
	res.Solve = stats
	done(stats, nil)
	return res, nil
}

// OptimalServerRs returns the closed-form server response time at the
// optimal allocation (Eq. 6.6). At the optimum the mean queue length at
// each server is exactly 1, and Eq. 6.5 collapses to a quadratic in Rs
// whose positive root is
//
//	Rs = So(1 + sqrt((C²+1)/2))
func OptimalServerRs(so, c2 float64) float64 {
	return so * (1 + math.Sqrt((c2+1)/2))
}

// OptimalServers returns the closed-form optimal number of servers
// (Eq. 6.8):
//
//	Ps* = P(1+q)So / (W + 2St + (3+2q)So),  q = sqrt((C²+1)/2)
//
// The result is the real-valued optimum; round to the neighboring
// integers and compare via ClientServer for an exact integral optimum.
func OptimalServers(p ClientServerParams) float64 {
	q := math.Sqrt((p.C2 + 1) / 2)
	return float64(p.P) * (1 + q) * p.So / (p.W + 2*p.St + (3+2*q)*p.So)
}

// OptimalServersInt returns the best integral server count, found by
// rounding the closed form both ways and keeping the higher-throughput
// choice (clamped to [1, P−1]).
func OptimalServersInt(p ClientServerParams) (int, error) {
	if err := (ClientServerParams{P: p.P, Ps: 1, W: p.W, St: p.St, So: p.So, C2: p.C2}).Validate(); err != nil {
		return 0, err
	}
	opt := OptimalServers(p)
	clamp := func(v int) int {
		if v < 1 {
			return 1
		}
		if v > p.P-1 {
			return p.P - 1
		}
		return v
	}
	lo, hi := clamp(int(math.Floor(opt))), clamp(int(math.Ceil(opt)))
	best, bestX := lo, math.Inf(-1)
	for _, ps := range []int{lo, hi} {
		q := p
		q.Ps = ps
		res, err := ClientServer(q)
		if err != nil {
			continue
		}
		if res.X > bestX {
			best, bestX = ps, res.X
		}
	}
	if math.IsInf(bestX, -1) {
		return 0, fmt.Errorf("core: no feasible allocation near Ps=%v", opt)
	}
	return best, nil
}

// ClientServerBounds returns the LogP-style optimistic throughput
// bounds of Chapter 6 (the dotted lines of Figure 6-2): the server
// bound Ps/So and the client bound Pc/(W + 2St + 2So). The true
// throughput never exceeds min(server, client).
func ClientServerBounds(p ClientServerParams) (server, client float64) {
	server = float64(p.Ps) / p.So
	client = float64(p.P-p.Ps) / (p.W + 2*p.St + 2*p.So)
	return server, client
}

// PeakThroughput returns the model's throughput at the real-valued
// optimal allocation: X* = P/(R + Rs) with R and Rs from the closed
// forms (combining Eqs. 6.3, 6.6 and 6.7).
func PeakThroughput(p ClientServerParams) float64 {
	rs := OptimalServerRs(p.So, p.C2)
	r := p.W + 2*p.St + rs + p.So
	return float64(p.P) / (r + rs)
}

package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/obs"
)

// This file maps two contention scenarios from the paper's direct
// descendants onto the LoPC machinery:
//
//   - Lock: the coarse-grained locking model of Aksenov, Alistarh &
//     Kuznetsov ("Performance Prediction for Coarse-Grained Locking").
//     The critical section plays the role of the handler service time
//     and the lock queue is the paper's server queue, so the model is
//     the Chapter 6 client-server AMVA with Ps = 1 — minus the reply
//     handler, because a lock has no reply handler: the "service"
//     (critical section) runs inline on the acquiring thread.
//
//   - LockFree: the conflict-based model of Atalar, Renaud-Goud &
//     Tsigas ("Analyzing the Performance of Lock-Free Data
//     Structures"). One retry round is a "service"; a conflict — some
//     other thread committing inside the round's read-to-CAS window —
//     regenerates the work, so contention shows up as an attempt
//     multiplier rather than a queue.
//
// Both are compute-then-contend cycles of exactly the LoPC shape:
// threads compute for W, then contend for a serialized resource.

// LockParams parameterizes the coarse-grained lock model: Threads
// concurrent threads each loop {compute W; acquire; critical section;
// release}. All times share one unit (cycles, ns — any consistent
// choice).
type LockParams struct {
	// Threads is the number of contending threads. 1 is legal and
	// degenerates to the uncontended cycle.
	Threads int
	// W is the mean non-critical work per cycle.
	W float64
	// St is the one-way lock handoff latency (scheduler wakeup, cache
	// line transfer of the lock word). A full acquisition pays 2St,
	// mirroring the paper's two network trips.
	St float64
	// So is the mean critical-section time — the handler service time
	// of the work-pile mapping.
	So float64
	// C2 is the squared coefficient of variation of the critical
	// section.
	C2 float64
}

// Validate reports whether the parameters are usable.
func (p LockParams) Validate() error {
	switch {
	case p.Threads < 1:
		return fmt.Errorf("core: lock model needs Threads >= 1, got %d", p.Threads)
	case p.W < 0 || p.St < 0 || p.C2 < 0:
		return fmt.Errorf("core: negative parameter in %+v", p)
	case p.So <= 0:
		return fmt.Errorf("core: So = %v; critical sections must take positive time", p.So)
	case math.IsNaN(p.W + p.St + p.So + p.C2):
		return fmt.Errorf("core: NaN parameter in %+v", p)
	case math.IsInf(p.W+p.St+p.So+p.C2, 0):
		return fmt.Errorf("core: infinite parameter in %+v", p)
	}
	return nil
}

// LockResult is the lock model's solution.
type LockResult struct {
	// X is the system throughput: lock acquisitions per time unit
	// across all threads.
	X float64
	// R is the mean full cycle time of one thread: W + 2St + Rs.
	R float64
	// Rs is the lock response time: queueing delay plus the critical
	// section itself — the Rs of the work-pile model.
	Rs float64
	// Wait is the queueing part alone, Rs − So.
	Wait float64
	// Q is the mean number of threads at the lock (waiting + holding),
	// by Little's law.
	Q float64
	// U is the lock utilization, X·So.
	U float64
	// Solve describes the fixed-point iteration that produced this
	// result.
	Solve obs.SolveStats
}

// Lock solves the coarse-grained lock model: the client-server AMVA of
// Chapter 6 with the lock as the single server and the critical
// section as the handler service time.
func Lock(p LockParams) (LockResult, error) {
	return LockObserved(p, nil)
}

// lockStep evaluates one iterate of the lock model's fixed point: the
// work-pile iteration (Eq. 6.5 with Little's law) minus the reply
// handler, with Schweitzer's (N−1)/N arrival scaling already folded
// into scale. Rs of the returned result holds the next iterate.
//
//lopc:hotpath
func lockStep(p LockParams, n, scale, rs float64) (LockResult, error) {
	r := p.W + 2*p.St + rs
	x := n / r
	u := x * p.So
	if u >= 1 {
		//lopc:allow allochot error construction runs only on the saturated-guard path, never on a converged iterate
		return LockResult{}, fmt.Errorf("core: lock utilization %v >= 1 at Rs=%v", u, rs)
	}
	q := x * rs
	rsNext := p.So * (1 + scale*(q+(p.C2-1)/2*u))
	return LockResult{X: x, R: r, Rs: rsNext, Q: q, U: u}, nil
}

// LockObserved is Lock reporting the solve to o (which may be nil).
//
// The fixed point is the work-pile iteration (Eq. 6.5 with Little's
// law) with two changes: the reply-handler term So is dropped from R
// (a lock has no reply handler), and the arriving thread sees the
// queue state with itself removed — Schweitzer's (N−1)/N scaling —
// so that Threads = 1 yields exactly Rs = So.
func LockObserved(p LockParams, o obs.SolveObserver) (LockResult, error) {
	if err := p.Validate(); err != nil {
		return LockResult{}, err
	}
	done := beginSolve(o, SolverLock)
	n := float64(p.Threads)
	scale := (n - 1) / n // arrival theorem: an arriver never queues behind itself
	var stats obs.SolveStats
	f := func(rs float64) float64 {
		res, err := lockStep(p, n, scale, rs)
		if err != nil {
			stats.GuardTrips++
			return rs * 2 // push away from the saturated region
		}
		if res.U > stats.MaxUtil {
			stats.MaxUtil = res.U
		}
		return res.Rs
	}
	rs, fp, err := numeric.FixedPointTraced(f, p.So, numeric.DefaultFixedPointOpts())
	stats.Iters, stats.Residual, stats.Converged = fp.Iters, fp.Residual, fp.Converged
	if err != nil {
		err = fmt.Errorf("core: lock fixed point: %w", err)
		done(stats, err)
		return LockResult{}, err
	}
	res, err := lockStep(p, n, scale, rs)
	if err != nil {
		done(stats, err)
		return LockResult{}, err
	}
	res.Rs = rs
	res.Wait = rs - p.So
	res.Q = res.X * rs
	res.Solve = stats
	done(stats, nil)
	return res, nil
}

// LockBounds returns the two optimistic throughput bounds that bracket
// the lock model, in the LogP style of Chapter 6: the serialization
// bound 1/So (the lock hands out at most one critical section at a
// time) and the uncontended bound Threads/(W + 2St + So) (no thread
// ever waits). True throughput never exceeds min(serial, uncontended),
// and as So → 0 the model degenerates to the uncontended bound.
func LockBounds(p LockParams) (serial, uncontended float64) {
	serial = 1 / p.So
	uncontended = float64(p.Threads) / (p.W + 2*p.St + p.So)
	return serial, uncontended
}

// LockFreeParams parameterizes the CAS-retry conflict model: Threads
// threads each loop {compute W; retry round(s) of length So until the
// CAS succeeds}, where a round fails if another thread commits inside
// its read-to-CAS window.
type LockFreeParams struct {
	// Threads is the number of contending threads.
	Threads int
	// W is the mean parallel work between successful operations.
	W float64
	// St is the serialization cost of one successful commit — the
	// exclusive cache-line transfer the winning CAS pays. It bounds
	// throughput at 1/St (when positive) exactly as So bounds the
	// lock's.
	St float64
	// So is the mean length of one retry round: read the shared state,
	// compute the new value, attempt the CAS. This is the conflict
	// window — the model's "service".
	So float64
	// C2 is the squared coefficient of variation of the round length.
	// Longer-tailed rounds are exposed to conflicts for longer: the
	// no-conflict probability is the Laplace transform of the window
	// length at the competing commit rate.
	C2 float64
}

// Validate reports whether the parameters are usable.
func (p LockFreeParams) Validate() error {
	switch {
	case p.Threads < 1:
		return fmt.Errorf("core: lock-free model needs Threads >= 1, got %d", p.Threads)
	case p.W < 0 || p.St < 0 || p.C2 < 0:
		return fmt.Errorf("core: negative parameter in %+v", p)
	case p.So <= 0:
		return fmt.Errorf("core: So = %v; retry rounds must take positive time", p.So)
	case math.IsNaN(p.W + p.St + p.So + p.C2):
		return fmt.Errorf("core: NaN parameter in %+v", p)
	case math.IsInf(p.W+p.St+p.So+p.C2, 0):
		return fmt.Errorf("core: infinite parameter in %+v", p)
	}
	return nil
}

// LockFreeResult is the conflict model's solution.
type LockFreeResult struct {
	// X is the system throughput: successful operations per time unit
	// across all threads.
	X float64
	// R is the mean cycle time of one thread: W + Attempts·So + St.
	R float64
	// Attempts is the expected number of retry rounds per successful
	// operation, 1/(1 − Conflict). Contention regenerates work instead
	// of queueing it: this is the multiplier.
	Attempts float64
	// Conflict is the probability one retry round loses its CAS to a
	// competing commit.
	Conflict float64
	// U is the utilization of the serialization point, X·St.
	U float64
	// Solve describes the fixed-point iteration that produced this
	// result.
	Solve obs.SolveStats
}

// maxConflict caps the per-round conflict probability inside the
// iteration; beyond it the attempt multiplier 1/(1−q) overflows any
// useful range and the guard pushes the iterate back instead.
const maxConflict = 0.999

// lockFreeConflict returns the probability that at least one competing
// commit (rate lam) lands inside one retry round of mean length so and
// SCV c2. For c2 = 0 the window is deterministic and the no-conflict
// probability is exp(−lam·so); for c2 > 0 the window is gamma-like and
// the no-conflict probability is its Laplace transform at lam,
// (1 + lam·so·c2)^(−1/c2), which recovers the exponential-window case
// at c2 = 1 and the deterministic case as c2 → 0.
func lockFreeConflict(lam, so, c2 float64) float64 {
	w := lam * so
	if c2 > 0 {
		return 1 - math.Pow(1+w*c2, -1/c2)
	}
	return 1 - math.Exp(-w)
}

// LockFree solves the CAS-retry conflict model.
func LockFree(p LockFreeParams) (LockFreeResult, error) {
	return LockFreeObserved(p, nil)
}

// lockFreeStep evaluates one iterate of the conflict model's fixed
// point: given a trial cycle time r it derives the competing commit
// rate, the conflict probability, and the regenerated work, with R of
// the returned result holding the next iterate.
//
//lopc:hotpath
func lockFreeStep(p LockFreeParams, n, r float64) (LockFreeResult, error) {
	x := n / r
	u := x * p.St
	if u >= 1 {
		//lopc:allow allochot error construction runs only on the saturated-guard path, never on a converged iterate
		return LockFreeResult{}, fmt.Errorf("core: commit serialization utilization %v >= 1 at R=%v", u, r)
	}
	lam := x * (n - 1) / n
	q := lockFreeConflict(lam, p.So, p.C2)
	if q >= maxConflict {
		//lopc:allow allochot error construction runs only on the retry-storm guard path, never on a converged iterate
		return LockFreeResult{}, fmt.Errorf("core: conflict probability %v at R=%v; retry storm", q, r)
	}
	a := 1 / (1 - q)
	rNext := p.W + a*p.So + p.St
	return LockFreeResult{X: x, R: rNext, Attempts: a, Conflict: q, U: u}, nil
}

// LockFreeObserved is LockFree reporting the solve to o (which may be
// nil). The unknown is the cycle time R: throughput X = Threads/R sets
// the competing commit rate λ = X·(Threads−1)/Threads seen by any one
// round, λ sets the conflict probability q, and the regenerated work
// A·So = So/(1−q) feeds back into R.
func LockFreeObserved(p LockFreeParams, o obs.SolveObserver) (LockFreeResult, error) {
	if err := p.Validate(); err != nil {
		return LockFreeResult{}, err
	}
	done := beginSolve(o, SolverLockFree)
	n := float64(p.Threads)
	var stats obs.SolveStats
	f := func(r float64) float64 {
		res, err := lockFreeStep(p, n, r)
		if err != nil {
			stats.GuardTrips++
			return r * 2 // push away from the infeasible region
		}
		if res.U > stats.MaxUtil {
			stats.MaxUtil = res.U
		}
		return res.R
	}
	r0 := p.W + p.So + p.St // the conflict-free cycle
	r, fp, err := numeric.FixedPointTraced(f, r0, numeric.DefaultFixedPointOpts())
	stats.Iters, stats.Residual, stats.Converged = fp.Iters, fp.Residual, fp.Converged
	if err != nil {
		err = fmt.Errorf("core: lock-free fixed point: %w", err)
		done(stats, err)
		return LockFreeResult{}, err
	}
	res, err := lockFreeStep(p, n, r)
	if err != nil {
		done(stats, err)
		return LockFreeResult{}, err
	}
	res.R = r
	res.X = n / r
	res.U = res.X * p.St
	res.Solve = stats
	done(stats, nil)
	return res, nil
}

// LockFreeBounds returns the optimistic bounds bracketing the
// conflict model: the commit serialization bound 1/St (infinite when
// St = 0 — the model then has no hard ceiling, only conflict decay)
// and the conflict-free bound Threads/(W + So + St).
func LockFreeBounds(p LockFreeParams) (serial, conflictFree float64) {
	serial = math.Inf(1)
	if p.St > 0 {
		serial = 1 / p.St
	}
	conflictFree = float64(p.Threads) / (p.W + p.So + p.St)
	return serial, conflictFree
}

package core

import "repro/internal/obs"

// Solver names reported through obs.SolveObserver.BeginSolve, one per
// fixed-point solver in this package.
const (
	SolverAllToAll     = "alltoall"
	SolverClientServer = "clientserver"
	SolverGeneral      = "general"
	SolverLock         = "lock"
	SolverLockFree     = "lockfree"
)

// beginSolve starts an observation on o, tolerating a nil observer: the
// returned func reports the solve (folding err into the stats) and is
// safe to call unconditionally.
func beginSolve(o obs.SolveObserver, solver string) func(obs.SolveStats, error) {
	if o == nil {
		return func(obs.SolveStats, error) {}
	}
	done := o.BeginSolve(solver)
	return func(s obs.SolveStats, err error) {
		if err != nil {
			s.Err = err.Error()
		}
		done(s)
	}
}

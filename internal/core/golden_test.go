package core

import (
	"math"
	"testing"
)

// The golden tests pin exact solver outputs for a parameter grid.
// They protect the published numbers in EXPERIMENTS.md against
// accidental model changes: any intentional change to the equations
// must consciously update these values (and the documentation).

func TestAllToAllGoldenValues(t *testing.T) {
	cases := []struct {
		p             Params
		r, rw, rq, ry float64
	}{
		{Params{P: 32, W: 0, St: 40, So: 200, C2: 0}, 736.585062, 109.656157, 294.199278, 252.729627},
		{Params{P: 32, W: 512, St: 40, So: 200, C2: 0}, 1209.960854, 661.774087, 244.329825, 223.856941},
		{Params{P: 32, W: 512, St: 40, So: 200, C2: 1}, 1268.682407, 660.821398, 283.214050, 244.646958},
		{Params{P: 32, W: 2048, St: 40, So: 200, C2: 2}, 2779.585118, 2226.049024, 248.463067, 225.073027},
		{Params{P: 8, W: 100, St: 10, So: 50, C2: 0.5}, 283.872159, 135.944680, 68.129196, 59.798283},
		{Params{P: 32, W: 512, St: 40, So: 200, C2: 0, ProtocolProcessor: true}, 1072.743369, 512.000000, 252.341199, 228.402170},
	}
	const tol = 1e-4
	for _, c := range cases {
		res, err := AllToAll(c.p)
		if err != nil {
			t.Fatalf("%+v: %v", c.p, err)
		}
		for name, pair := range map[string][2]float64{
			"R": {res.R, c.r}, "Rw": {res.Rw, c.rw}, "Rq": {res.Rq, c.rq}, "Ry": {res.Ry, c.ry},
		} {
			if math.Abs(pair[0]-pair[1]) > tol {
				t.Errorf("%+v: %s = %.6f, golden %.6f", c.p, name, pair[0], pair[1])
			}
		}
	}
}

func TestClientServerGoldenValues(t *testing.T) {
	cases := []struct {
		p        ClientServerParams
		x, r, rs float64
	}{
		{ClientServerParams{P: 32, Ps: 3, W: 1500, St: 40, So: 131, C2: 0}, 0.01478578, 1961.343362, 250.343362},
		{ClientServerParams{P: 32, Ps: 16, W: 1500, St: 40, So: 131, C2: 1}, 0.00863944, 1851.971692, 140.971692},
		{ClientServerParams{P: 16, Ps: 1, W: 300, St: 10, So: 80, C2: 0}, 0.01189130, 1261.426150, 861.426150},
	}
	for _, c := range cases {
		res, err := ClientServer(c.p)
		if err != nil {
			t.Fatalf("%+v: %v", c.p, err)
		}
		if math.Abs(res.X-c.x) > 1e-7 {
			t.Errorf("%+v: X = %.8f, golden %.8f", c.p, res.X, c.x)
		}
		if math.Abs(res.R-c.r) > 1e-4 {
			t.Errorf("%+v: R = %.6f, golden %.6f", c.p, res.R, c.r)
		}
		if math.Abs(res.Rs-c.rs) > 1e-4 {
			t.Errorf("%+v: Rs = %.6f, golden %.6f", c.p, res.Rs, c.rs)
		}
	}
}

func TestDerivedGoldenValues(t *testing.T) {
	// Closed forms and constants pinned in the documentation.
	if beta := UpperBoundBeta(0); math.Abs(beta-3.4517) > 5e-4 {
		t.Errorf("UpperBoundBeta(0) = %.4f, golden 3.4517", beta)
	}
	base := ClientServerParams{P: 32, Ps: 1, W: 1500, St: 40, So: 131, C2: 0}
	if opt := OptimalServers(base); math.Abs(opt-3.3157) > 5e-3 {
		t.Errorf("OptimalServers = %.4f, golden 3.3157", opt)
	}
	if rs := OptimalServerRs(131, 0); math.Abs(rs-131*(1+math.Sqrt2/2)) > 1e-9 {
		t.Errorf("OptimalServerRs(131, 0) = %v", rs)
	}
}

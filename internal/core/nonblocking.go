package core

import (
	"fmt"
)

// NonBlockingResult is the model's solution for the non-blocking
// variant of the homogeneous pattern — the extension the paper's
// conclusion proposes (following Heidelberger and Trivedi's treatment
// of asynchronous tasks). Threads never wait for replies: each cycle is
// W cycles of work followed by a fire-and-forget request whose reply
// handler merely deposits its result.
//
// Throughput follows from processor-time conservation rather than from
// a response-time fixed point: the thread never idles, so each node's
// CPU is fully busy, and in the homogeneous steady state every cycle
// consumes exactly W + 2So of processor time somewhere (W locally, one
// request handler remotely, one reply handler locally). Hence
//
//	X = 1/(W + 2So)      (per thread; interrupt model)
//	X = 1/W              (protocol-processor model, if 2So < W)
//
// Contention does not reduce non-blocking throughput at all — queueing
// only inflates the latency of individual requests, which the Bard
// equations then price at the fixed arrival rate X.
type NonBlockingResult struct {
	// X is per-thread throughput (requests per cycle); system
	// throughput is P·X.
	X float64
	// CycleTime is 1/X, the mean time between a thread's sends.
	CycleTime float64
	// Rq and Ry are the request/reply handler response times at the
	// fixed arrival rate X (queueing plus service).
	Rq, Ry float64
	// Latency is the mean time from injecting a request to the
	// completion of its reply handler: 2St + Rq + Ry.
	Latency float64
	// Outstanding is the mean number of requests a thread has in
	// flight, by Little's law: X·Latency.
	Outstanding float64
	// HandlerUtil is the fraction of each processor consumed by
	// handlers (2·X·So in the interrupt model); as it approaches 1 the
	// system nears saturation and latency diverges.
	HandlerUtil float64
}

// NonBlocking solves the non-blocking homogeneous model. It returns an
// error when the handler load leaves no processor time for the thread
// (possible only in the protocol-processor variant or at W = 0).
func NonBlocking(p Params) (NonBlockingResult, error) {
	if err := p.Validate(); err != nil {
		return NonBlockingResult{}, err
	}
	var x float64
	if p.ProtocolProcessor {
		if p.W <= 0 {
			return NonBlockingResult{}, fmt.Errorf("core: non-blocking PP model needs W > 0")
		}
		x = 1 / p.W
		if 2*x*p.So >= 1 {
			return NonBlockingResult{}, fmt.Errorf("core: protocol processor saturated: 2So/W = %v >= 1", 2*p.So/p.W)
		}
	} else {
		if p.W+2*p.So <= 0 {
			return NonBlockingResult{}, fmt.Errorf("core: non-blocking model needs W + 2So > 0")
		}
		x = 1 / (p.W + 2*p.So)
	}

	// Handler response times at the fixed per-node arrival rate: unlike
	// the blocking model, any number of replies may queue (a thread can
	// have several requests in flight), so requests and replies form
	// one FCFS class with arrival rate 2x and the Bard equations reduce
	// to the open single-queue sojourn
	//
	//	Rh = So(1 + Qh + (C²−1)/2·Uh),  Qh = 2x·Rh,  Uh = 2x·So
	//	⇒ Rh = So(1 + (C²−1)·a) / (1 − 2a),   a = x·So
	//
	// which is exactly the M/M/1 sojourn at C² = 1 and the M/D/1
	// sojourn at C² = 0. The Poisson-arrival assumption makes the
	// latency prediction conservative: the real merged stream of
	// near-periodic senders is smoother than Poisson, so simulated
	// queueing sits a little below this (up to ~15% at heavy handler
	// load) — the same pessimistic direction as the blocking model.
	a := x * p.So
	if 1-2*a <= 1e-9 {
		return NonBlockingResult{}, fmt.Errorf("core: handler queues saturated (2a = %v)", 2*a)
	}
	rh := p.So * (1 + (p.C2-1)*a) / (1 - 2*a)
	rq, ry := rh, rh

	latency := 2*p.St + rq + ry
	return NonBlockingResult{
		X:           x,
		CycleTime:   1 / x,
		Rq:          rq,
		Ry:          ry,
		Latency:     latency,
		Outstanding: x * latency,
		HandlerUtil: 2 * a,
	}, nil
}

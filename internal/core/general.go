package core

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// GeneralParams parameterizes the general LoPC model of Appendix A: one
// thread per node, arbitrary per-thread work, and an arbitrary
// visit-ratio matrix. It subsumes the homogeneous all-to-all model and
// the client-server model, and additionally supports "multi-hop"
// requests, where a request visits several nodes (sum of a row of V
// exceeding 1) before the single reply returns to the originator.
type GeneralParams struct {
	// P is the number of nodes (and threads).
	P int
	// W[c] is the mean local work between blocking requests for thread
	// c. Threads whose row of V is all zero are passive (they never
	// request; e.g. work-pile servers) and their W is ignored.
	W []float64
	// V[c][k] is the mean number of visits a request cycle of thread c
	// makes to the request handler on node k. For a simple blocking
	// request to a uniformly random peer, V[c][k] = 1/(P−1) for k ≠ c.
	// Multi-hop patterns have rows summing to more than 1.
	V [][]float64
	// St is the mean network latency per trip.
	St float64
	// So[k] is the mean handler cost at node k. A single-element slice
	// is broadcast to all nodes.
	So []float64
	// C2 is the squared coefficient of variation of handler service.
	C2 float64
	// ProtocolProcessor selects the shared-memory variant (Rw = W).
	ProtocolProcessor bool
}

// Validate reports whether the parameters are usable and normalizes
// nothing; use normalizedSo to expand So.
func (p GeneralParams) Validate() error {
	if p.P < 2 {
		return fmt.Errorf("core: general model needs P >= 2, got %d", p.P)
	}
	if len(p.W) != p.P {
		return fmt.Errorf("core: len(W) = %d, want P = %d", len(p.W), p.P)
	}
	if len(p.V) != p.P {
		return fmt.Errorf("core: len(V) = %d, want P = %d", len(p.V), p.P)
	}
	for c, row := range p.V {
		if len(row) != p.P {
			return fmt.Errorf("core: len(V[%d]) = %d, want P = %d", c, len(row), p.P)
		}
		for k, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("core: V[%d][%d] = %v", c, k, v)
			}
		}
	}
	for c, w := range p.W {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("core: W[%d] = %v", c, w)
		}
	}
	if len(p.So) != 1 && len(p.So) != p.P {
		return fmt.Errorf("core: len(So) = %d, want 1 or P = %d", len(p.So), p.P)
	}
	for k, so := range p.So {
		if so <= 0 || math.IsNaN(so) {
			return fmt.Errorf("core: So[%d] = %v", k, so)
		}
	}
	if p.St < 0 || p.C2 < 0 {
		return fmt.Errorf("core: negative St or C² in %+v", p)
	}
	return nil
}

// normalizedSo returns per-node handler costs.
func (p GeneralParams) normalizedSo() []float64 {
	if len(p.So) == p.P {
		return p.So
	}
	so := make([]float64, p.P)
	for i := range so {
		so[i] = p.So[0]
	}
	return so
}

// GeneralResult is the per-thread and per-node solution of the general
// model.
type GeneralResult struct {
	// R[c] is the mean compute/request cycle time of thread c (0 for
	// passive threads).
	R []float64
	// X[c] is the throughput of thread c: X = 1/R (Eq. A.1).
	X []float64
	// Rw[c] is the thread residence time including handler interference
	// (Eq. A.9).
	Rw []float64
	// Rq[k] and Ry[k] are request/reply handler response times at node
	// k (Eqs. A.7, A.8).
	Rq, Ry []float64
	// Qq[k] and Qy[k] are request/reply handler mean queue lengths at
	// node k (Eqs. A.5, A.6).
	Qq, Qy []float64
	// Uq[k] and Uy[k] are request/reply handler utilizations at node k
	// (Eqs. A.3, A.4).
	Uq, Uy []float64
	// TotalX is the summed throughput of all active threads.
	TotalX float64
	// Solve describes the damped fixed-point iteration that produced
	// this result: iteration count, final residual, utilization-clamp
	// guard trips, and the peak request-handler utilization visited.
	Solve obs.SolveStats
}

// generalState holds the iteration vectors of the general AMVA solve,
// allocated once before the sweep loop starts so the per-iteration
// sweep itself is allocation-free.
type generalState struct {
	// r and x are per-thread cycle times and throughputs; rw the
	// per-thread residence times.
	r, x, rw []float64
	// rq, ry, uq, uy, qq, qy are the per-node handler response times,
	// utilizations and queue lengths.
	rq, ry, uq, uy, qq, qy []float64
}

// Iteration constants of the general AMVA sweep.
const (
	generalMaxIter = 200000
	generalDamping = 0.5
	generalTol     = 1e-10
	// generalMaxUtil caps the utilization used in the BKT denominator
	// while the iteration is still far from its fixed point.
	generalMaxUtil = 0.999999
)

// generalSweep runs one damped iteration of the Appendix A equations
// over every node and thread (A.1–A.10 with the §5.2 correction),
// updating s in place and returning the largest single-quantity change.
//
//lopc:hotpath
func generalSweep(p GeneralParams, so []float64, active []bool, s *generalState, stats *obs.SolveStats) float64 {
	P := p.P
	// Throughputs from current cycle times (A.1, A.2).
	for c := 0; c < P; c++ {
		if active[c] && s.r[c] > 0 {
			s.x[c] = 1 / s.r[c]
		} else {
			s.x[c] = 0
		}
	}
	for k := 0; k < P; k++ {
		sum := 0.0
		for c := 0; c < P; c++ {
			sum += p.V[c][k] * s.x[c]
		}
		s.uq[k] = so[k] * sum      // A.3
		s.uy[k] = s.x[k] * so[k]   // A.4: one reply per cycle, at home
		s.qq[k] = s.rq[k] * sum    // A.5
		s.qy[k] = s.x[k] * s.ry[k] // A.6
		if s.uq[k] > stats.MaxUtil {
			stats.MaxUtil = s.uq[k]
		}
	}
	// Handler response times (A.7, A.8) with the §5.2 correction.
	maxDelta := 0.0
	for k := 0; k < P; k++ {
		newRq := so[k] * (1 + s.qq[k] + s.qy[k] + (p.C2-1)/2*(s.uq[k]+s.uy[k]))
		newRy := so[k] * (1 + s.qq[k] + (p.C2-1)/2*s.uq[k])
		newRq = generalDamping*newRq + (1-generalDamping)*s.rq[k]
		newRy = generalDamping*newRy + (1-generalDamping)*s.ry[k]
		maxDelta = math.Max(maxDelta, math.Abs(newRq-s.rq[k]))
		maxDelta = math.Max(maxDelta, math.Abs(newRy-s.ry[k]))
		s.rq[k], s.ry[k] = newRq, newRy
	}
	// Thread residence (A.9) and cycle times (A.10).
	//lopc:allow convergeloop inner per-node pass of the outer iteration, which carries the cap and the NaN/Inf guard; the clamp comparison is not a convergence test
	for c := 0; c < P; c++ {
		if !active[c] {
			continue
		}
		if p.ProtocolProcessor {
			s.rw[c] = p.W[c]
		} else {
			// Early iterates can overshoot Uq past 1 before the rising
			// cycle times pull throughput back down (a closed network
			// always has a feasible fixed point). Clamp the denominator
			// during iteration; a genuinely saturated *solution* is
			// rejected after convergence.
			u := s.uq[c]
			if u > generalMaxUtil {
				u = generalMaxUtil
				stats.GuardTrips++
			}
			s.rw[c] = (p.W[c] + so[c]*s.qq[c]) / (1 - u)
		}
		newR := s.rw[c] + p.St + s.ry[c]
		for k, v := range p.V[c] {
			newR += v * (p.St + s.rq[k])
		}
		newR = generalDamping*newR + (1-generalDamping)*s.r[c]
		maxDelta = math.Max(maxDelta, math.Abs(newR-s.r[c]))
		s.r[c] = newR
	}
	return maxDelta
}

// General solves the Appendix A model by damped fixed-point iteration
// on the per-thread cycle times. It returns an error if the iteration
// cannot find a feasible solution (some node saturated).
func General(p GeneralParams) (GeneralResult, error) {
	return GeneralObserved(p, nil)
}

// GeneralObserved is General reporting the solve to o (which may be
// nil). The returned result's Solve field carries the same stats the
// observer sees; GuardTrips counts applications of the maxUtil clamp,
// and MaxUtil is the peak raw request-handler utilization any iterate
// visited (it can exceed 1 on early overshoot).
func GeneralObserved(p GeneralParams, o obs.SolveObserver) (GeneralResult, error) {
	if err := p.Validate(); err != nil {
		return GeneralResult{}, err
	}
	done := beginSolve(o, SolverGeneral)
	so := p.normalizedSo()
	P := p.P

	active := make([]bool, P)
	for c := range p.V {
		for _, v := range p.V[c] {
			if v > 0 {
				active[c] = true
				break
			}
		}
	}

	// All iteration vectors are allocated here, once; the sweep itself
	// is on the allochot-checked hot path and must not allocate.
	s := &generalState{
		r: make([]float64, P), x: make([]float64, P), rw: make([]float64, P),
		rq: make([]float64, P), ry: make([]float64, P),
		uq: make([]float64, P), uy: make([]float64, P),
		qq: make([]float64, P), qy: make([]float64, P),
	}

	// Initial guess: contention-free cycle times.
	for c := 0; c < P; c++ {
		if !active[c] {
			continue
		}
		s.r[c] = p.W[c] + 2*p.St + so[c]
		for k, v := range p.V[c] {
			s.r[c] += v * (p.St + so[k])
		}
	}
	for k := 0; k < P; k++ {
		s.rq[k], s.ry[k] = so[k], so[k]
	}

	var stats obs.SolveStats
	for iter := 0; iter < generalMaxIter; iter++ {
		stats.Iters = iter + 1
		maxDelta := generalSweep(p, so, active, s, &stats)
		stats.Residual = maxDelta
		// NaN poisons maxDelta and compares false against tol forever;
		// fail fast instead of spinning to the iteration cap.
		if math.IsNaN(maxDelta) || math.IsInf(maxDelta, 0) {
			err := fmt.Errorf("core: AMVA iteration diverged (delta = %v) at iteration %d", maxDelta, iter)
			done(stats, err)
			return GeneralResult{}, err
		}
		if maxDelta < generalTol {
			stats.Converged = true
			for k := 0; k < P; k++ {
				if s.uq[k] >= generalMaxUtil {
					err := fmt.Errorf("core: node %d saturated at the fixed point (Uq = %v)", k, s.uq[k])
					done(stats, err)
					return GeneralResult{}, err
				}
			}
			res := GeneralResult{
				R: s.r, X: s.x, Rw: s.rw, Rq: s.rq, Ry: s.ry,
				Qq: s.qq, Qy: s.qy, Uq: s.uq, Uy: s.uy,
				Solve: stats,
			}
			for c := 0; c < P; c++ {
				res.TotalX += s.x[c]
			}
			done(stats, nil)
			return res, nil
		}
	}
	err := fmt.Errorf("core: general model did not converge in %d iterations", generalMaxIter)
	done(stats, err)
	return GeneralResult{}, err
}

// HomogeneousVisits returns the all-to-all visit matrix: each thread
// directs 1/(P−1) of its requests to each other node.
func HomogeneousVisits(p int) [][]float64 {
	v := make([][]float64, p)
	for c := range v {
		v[c] = make([]float64, p)
		for k := range v[c] {
			if k != c {
				v[c][k] = 1 / float64(p-1)
			}
		}
	}
	return v
}

// ClientServerVisits returns the work-pile visit matrix for a machine
// whose first pc nodes are clients and remaining ps nodes are servers:
// each client directs 1/ps of its requests to each server; servers are
// passive.
func ClientServerVisits(pc, ps int) [][]float64 {
	p := pc + ps
	v := make([][]float64, p)
	for c := range v {
		v[c] = make([]float64, p)
		if c < pc {
			for k := pc; k < p; k++ {
				v[c][k] = 1 / float64(ps)
			}
		}
	}
	return v
}

// MultiHopVisits returns a visit matrix where each request from node c
// is forwarded along hops uniformly random distinct intermediate nodes
// before the reply returns: every row sums to hops.
func MultiHopVisits(p, hops int) [][]float64 {
	v := make([][]float64, p)
	for c := range v {
		v[c] = make([]float64, p)
		for k := range v[c] {
			if k != c {
				v[c][k] = float64(hops) / float64(p-1)
			}
		}
	}
	return v
}

package core

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/obs"
)

// AllToAllResult is the model's solution for one compute/request cycle
// of the homogeneous all-to-all pattern (Chapter 5). Field names follow
// Table 4.1.
type AllToAllResult struct {
	// R is the mean response time of a complete compute/request cycle
	// (Eq. 4.1): R = Rw + 2St + Rq + Ry.
	R float64
	// Rw is the residence time of the computation thread, including
	// interference from higher-priority request handlers (Eq. 5.7).
	Rw float64
	// Rq is the response time of a request handler at the remote node:
	// queueing plus service (Eq. 5.5 / 5.9).
	Rq float64
	// Ry is the response time of the reply handler at the home node
	// (Eq. 5.6 / 5.10).
	Ry float64
	// Qq and Qy are the mean numbers of request/reply handlers present
	// at a node (Eq. 5.3).
	Qq, Qy float64
	// Uq and Uy are the utilizations of a node by request/reply
	// handlers (Eq. 5.4).
	Uq, Uy float64
	// X is total system throughput in cycles completed per unit time
	// across all P threads (Eq. 5.1): X = P/R.
	X float64
	// ContentionFree is W + 2St + 2So, the naive LogP-style estimate
	// and the lower bound of Eq. 5.12.
	ContentionFree float64
	// UpperBound is the §5.3 upper bound W + 2St + β·So on the model's
	// fixed point, with β = 3.46 at C² = 0 (computed for the actual C²).
	UpperBound float64
	// Solve describes the fixed-point iteration that produced this
	// result: iteration count, final residual, guard trips, and the peak
	// handler utilization visited.
	Solve obs.SolveStats
}

// Contention returns the predicted total contention cost per cycle:
// R minus the contention-free time.
func (r AllToAllResult) Contention() float64 { return r.R - r.ContentionFree }

// ContentionFraction returns the fraction of total response time spent
// on contention — the y-axis of Figure 5-1.
func (r AllToAllResult) ContentionFraction() float64 {
	//lopc:allow floateq R is exactly zero only for a zero-value result; any solved cycle time is strictly positive
	if r.R == 0 {
		return 0
	}
	return r.Contention() / r.R
}

// Components returns the paper's Figure 5-3 breakdown of contention per
// cycle: thread interference (Rw − W), request queueing (Rq − So), and
// reply queueing (Ry − So).
func (r AllToAllResult) Components(p Params) (thread, request, reply float64) {
	return r.Rw - p.W, r.Rq - p.So, r.Ry - p.So
}

// allToAllStep evaluates the recursion F[R] of §5.3 (generalized to any
// C² using the §5.2 residual-life correction): given a trial cycle time
// R it computes the implied per-node arrival rate λ = 1/R, solves the
// inner linear system for the handler response times, and returns the
// resulting cycle time together with the other model quantities.
//
// Derivation of the inner solve. With a = λ·So and the homogeneous
// visit ratio V = 1/P, Little's law gives Qq = λ·Rq, Qy = λ·Ry and
// Uq = Uy = a. Substituting into Eqs. 5.9 and 5.10,
//
//	Rq = So(1 + λRq + λRy + (C²−1)a)
//	Ry = So(1 + λRq + (C²−1)a/2)
//
// which is linear in (Rq, Ry); eliminating Ry:
//
//	Rq = So·(1 + (C²−1)a + a(1 + (C²−1)a/2)) / (1 − a − a²)
//
//lopc:hotpath
func allToAllStep(p Params, r float64) (AllToAllResult, error) {
	lam := 1 / r // per-node arrival rate of requests (also of replies)
	a := lam * p.So
	denom := 1 - a - a*a
	if denom <= 0 {
		//lopc:allow allochot error construction runs only on the infeasible-guard path, never on a converged iterate
		return AllToAllResult{}, fmt.Errorf("core: all-to-all model infeasible at R=%v (handler load a=%v)", r, a)
	}
	cc := p.C2 - 1
	rq := p.So * (1 + cc*a + a*(1+cc*a/2)) / denom
	ry := p.So*(1+cc*a/2) + a*rq
	qq := lam * rq
	qy := lam * ry

	var rw float64
	switch {
	case p.ProtocolProcessor:
		rw = p.W
	default:
		if a >= 1 {
			//lopc:allow allochot error construction runs only on the saturated-guard path, never on a converged iterate
			return AllToAllResult{}, fmt.Errorf("core: request-handler utilization %v >= 1", a)
		}
		if p.Priority == ShadowServer {
			rw = p.W / (1 - a)
		} else {
			rw = (p.W + p.So*qq) / (1 - a)
		}
	}
	res := AllToAllResult{
		R:  rw + 2*p.St + rq + ry,
		Rw: rw, Rq: rq, Ry: ry,
		Qq: qq, Qy: qy,
		Uq: a, Uy: a,
	}
	return res, nil
}

// AllToAll solves the homogeneous all-to-all model of Chapter 5 and
// returns the per-cycle solution. Every thread alternates W cycles of
// local work with a blocking request to a uniformly random peer; the
// request handler replies; the reply handler unblocks the thread.
func AllToAll(p Params) (AllToAllResult, error) {
	return AllToAllObserved(p, nil)
}

// AllToAllObserved is AllToAll reporting the solve to o (which may be
// nil). Observation costs one nil check per solve when off; the
// returned result's Solve field carries the same stats the observer
// sees.
func AllToAllObserved(p Params, o obs.SolveObserver) (AllToAllResult, error) {
	if err := p.Validate(); err != nil {
		return AllToAllResult{}, err
	}
	done := beginSolve(o, SolverAllToAll)
	lower := p.ContentionFree()
	var stats obs.SolveStats
	f := func(r float64) float64 {
		step, err := allToAllStep(p, r)
		if err != nil {
			// Push the iterate back toward the feasible region; the
			// final solve below re-validates.
			stats.GuardTrips++
			return r + p.So
		}
		if step.Uq > stats.MaxUtil {
			stats.MaxUtil = step.Uq
		}
		return step.R
	}
	r, fp, err := numeric.FixedPointTraced(f, lower+p.So, numeric.DefaultFixedPointOpts())
	stats.Iters, stats.Residual, stats.Converged = fp.Iters, fp.Residual, fp.Converged
	if err != nil {
		err = fmt.Errorf("core: all-to-all fixed point: %w", err)
		done(stats, err)
		return AllToAllResult{}, err
	}
	res, err := allToAllStep(p, r)
	if err != nil {
		done(stats, err)
		return AllToAllResult{}, err
	}
	res.R = r
	res.X = float64(p.P) / r
	res.ContentionFree = lower
	res.UpperBound = p.W + 2*p.St + UpperBoundBeta(p.C2)*p.So
	res.Solve = stats
	done(stats, nil)
	return res, nil
}

// TotalRuntime returns the model's prediction for the total runtime of
// an algorithm that issues n blocking requests per thread: n·R.
func TotalRuntime(p Params, n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative request count %d", n)
	}
	res, err := AllToAll(p)
	if err != nil {
		return 0, err
	}
	return float64(n) * res.R, nil
}

// UpperBoundBeta returns the coefficient β such that
// R* ≤ W + 2St + β·So holds for the all-to-all fixed point at the given
// handler variability, for every W and St (Eq. 5.12 gives β = 3.46 at
// C² = 0). The worst case is W = St = 0, where handler load is maximal,
// so β is found there: it is the fixed point of F[β·So]/So.
func UpperBoundBeta(c2 float64) float64 {
	if c2 < 0 {
		panic(fmt.Sprintf("core: negative C² %v", c2))
	}
	// Work in units of So = 1 with W = St = 0. F is strictly decreasing
	// in R in the feasible region, so g(β) = F(β) − β has a single sign
	// change; bracket and bisect.
	p := Params{P: 2, W: 0, St: 0, So: 1, C2: c2}
	g := func(beta float64) float64 {
		step, err := allToAllStep(p, beta)
		if err != nil {
			return 1 // infeasible: F is effectively above β here
		}
		return step.R - beta
	}
	// 20 doublings take hi past 2·10⁶; no finite C² pushes β anywhere
	// near that, so a bracket not found by then is a model bug.
	lo, hi := 2.0, 2.0
	for i := 0; i < 20 && g(hi) > 0; i++ {
		hi *= 2
	}
	if g(hi) > 0 {
		panic(fmt.Sprintf("core: no upper bound found for C²=%v", c2))
	}
	beta, err := numeric.Bisect(g, lo, hi, 1e-10)
	if err != nil {
		panic(fmt.Sprintf("core: UpperBoundBeta bisection failed: %v", err))
	}
	return beta
}

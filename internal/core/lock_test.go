package core

import (
	"math"
	"testing"
)

func TestLockValidate(t *testing.T) {
	bad := []LockParams{
		{Threads: 0, W: 1, St: 1, So: 1},
		{Threads: 4, W: -1, St: 1, So: 1},
		{Threads: 4, W: 1, St: -1, So: 1},
		{Threads: 4, W: 1, St: 1, So: 0},
		{Threads: 4, W: 1, St: 1, So: -2},
		{Threads: 4, W: 1, St: 1, So: 1, C2: -1},
		{Threads: 4, W: math.NaN(), St: 1, So: 1},
		{Threads: 4, W: math.Inf(1), St: 1, So: 1},
	}
	for _, p := range bad {
		if _, err := Lock(p); err == nil {
			t.Errorf("Lock(%+v) accepted invalid params", p)
		}
	}
}

func TestLockFreeValidate(t *testing.T) {
	bad := []LockFreeParams{
		{Threads: 0, W: 1, St: 1, So: 1},
		{Threads: 4, W: -1, St: 1, So: 1},
		{Threads: 4, W: 1, St: -1, So: 1},
		{Threads: 4, W: 1, St: 1, So: 0},
		{Threads: 4, W: 1, St: 1, So: 1, C2: math.NaN()},
		{Threads: 4, W: 1, St: math.Inf(1), So: 1},
	}
	for _, p := range bad {
		if _, err := LockFree(p); err == nil {
			t.Errorf("LockFree(%+v) accepted invalid params", p)
		}
	}
}

// TestLockSingleThread: with one thread there is no contention and the
// Schweitzer correction must make the fixed point exact: Rs = So,
// R = W + 2St + So, X = 1/R.
func TestLockSingleThread(t *testing.T) {
	p := LockParams{Threads: 1, W: 500, St: 40, So: 100, C2: 1}
	res, err := Lock(p)
	if err != nil {
		t.Fatal(err)
	}
	wantR := p.W + 2*p.St + p.So
	if math.Abs(res.Rs-p.So) > 1e-6 {
		t.Errorf("Rs = %v, want exactly So = %v", res.Rs, p.So)
	}
	if math.Abs(res.R-wantR) > 1e-6 {
		t.Errorf("R = %v, want %v", res.R, wantR)
	}
	if math.Abs(res.X-1/wantR)/(1/wantR) > 1e-6 {
		t.Errorf("X = %v, want %v", res.X, 1/wantR)
	}
	if res.Wait > 1e-6 {
		t.Errorf("Wait = %v, want ~0 with one thread", res.Wait)
	}
}

// TestLockMonotoneInThreads: more threads never decrease throughput
// (the lock is the only shared resource, so extra threads can only add
// useful work or queue) and never decrease the cycle time.
func TestLockMonotoneInThreads(t *testing.T) {
	p := LockParams{W: 800, St: 20, So: 100, C2: 1}
	prevX, prevR := 0.0, 0.0
	for n := 1; n <= 64; n *= 2 {
		p.Threads = n
		res, err := Lock(p)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		if res.X < prevX-1e-9 {
			t.Errorf("Threads=%d: X dropped %v -> %v", n, prevX, res.X)
		}
		if res.R < prevR-1e-9 {
			t.Errorf("Threads=%d: R dropped %v -> %v", n, prevR, res.R)
		}
		prevX, prevR = res.X, res.R
	}
}

// TestLockBoundsRespected: the solved throughput never exceeds either
// optimistic bound, and approaches the serialization bound 1/So under
// heavy contention.
func TestLockBoundsRespected(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		p := LockParams{Threads: n, W: 400, St: 10, So: 100, C2: 1}
		res, err := Lock(p)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		serial, unc := LockBounds(p)
		if res.X > math.Min(serial, unc)+1e-9 {
			t.Errorf("Threads=%d: X=%v exceeds min(%v, %v)", n, res.X, serial, unc)
		}
	}
	// At 64 threads with W+2St far below 64·So the lock saturates.
	res, err := Lock(LockParams{Threads: 64, W: 400, St: 10, So: 100, C2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.X < 0.95*(1.0/100) {
		t.Errorf("saturated X = %v, want near 1/So = 0.01", res.X)
	}
}

// TestLockDegeneratesToUncontended: as So shrinks the model collapses
// onto the uncontended bound Threads/(W+2St+So).
func TestLockDegeneratesToUncontended(t *testing.T) {
	p := LockParams{Threads: 16, W: 1000, St: 50, C2: 1}
	for _, so := range []float64{10, 1, 0.1, 0.01} {
		p.So = so
		res, err := Lock(p)
		if err != nil {
			t.Fatalf("So=%v: %v", so, err)
		}
		_, unc := LockBounds(p)
		rel := math.Abs(res.X-unc) / unc
		// Contention scales with utilization ≈ 16·So/(W+2St); at So=10
		// that is ~15%, and it shrinks linearly below.
		if tol := 2 * 16 * so / (p.W + 2*p.St); rel > tol {
			t.Errorf("So=%v: X=%v vs uncontended %v (rel %v > tol %v)", so, res.X, unc, rel, tol)
		}
	}
}

// TestLockVariabilityHurts: larger critical-section SCV increases the
// lock response, mirroring the work-pile's (C²−1)/2·U term.
func TestLockVariabilityHurts(t *testing.T) {
	base := LockParams{Threads: 8, W: 500, St: 20, So: 100}
	var prev float64
	for i, c2 := range []float64{0, 1, 4} {
		base.C2 = c2
		res, err := Lock(base)
		if err != nil {
			t.Fatalf("C2=%v: %v", c2, err)
		}
		if i > 0 && res.Rs <= prev {
			t.Errorf("C2=%v: Rs=%v not above Rs=%v at smaller C2", c2, res.Rs, prev)
		}
		prev = res.Rs
	}
}

// TestLockFreeSingleThread: one thread never conflicts, so the cycle is
// exactly W + So + St.
func TestLockFreeSingleThread(t *testing.T) {
	p := LockFreeParams{Threads: 1, W: 300, St: 10, So: 50, C2: 1}
	res, err := LockFree(p)
	if err != nil {
		t.Fatal(err)
	}
	wantR := p.W + p.So + p.St
	if math.Abs(res.R-wantR) > 1e-6 {
		t.Errorf("R = %v, want %v", res.R, wantR)
	}
	if res.Conflict > 1e-9 {
		t.Errorf("Conflict = %v, want 0 with one thread", res.Conflict)
	}
	if math.Abs(res.Attempts-1) > 1e-9 {
		t.Errorf("Attempts = %v, want 1", res.Attempts)
	}
}

// TestLockFreeConflictGrowsWithThreads: adding threads raises the
// competing commit rate, hence the conflict probability and the attempt
// multiplier.
func TestLockFreeConflictGrowsWithThreads(t *testing.T) {
	p := LockFreeParams{W: 400, St: 5, So: 60, C2: 1}
	prevQ := -1.0
	for n := 1; n <= 32; n *= 2 {
		p.Threads = n
		res, err := LockFree(p)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		if res.Conflict <= prevQ {
			t.Errorf("Threads=%d: Conflict=%v not above %v", n, res.Conflict, prevQ)
		}
		if res.Attempts < 1 {
			t.Errorf("Threads=%d: Attempts=%v < 1", n, res.Attempts)
		}
		prevQ = res.Conflict
	}
}

// TestLockFreeBoundsRespected: throughput never exceeds the commit
// serialization bound or the conflict-free bound.
func TestLockFreeBoundsRespected(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		p := LockFreeParams{Threads: n, W: 200, St: 20, So: 40, C2: 1}
		res, err := LockFree(p)
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		serial, free := LockFreeBounds(p)
		if res.X > math.Min(serial, free)+1e-9 {
			t.Errorf("Threads=%d: X=%v exceeds min(%v, %v)", n, res.X, serial, free)
		}
	}
}

// TestLockFreeWindowShape: at equal mean window length, higher SCV
// lowers the conflict probability at a fixed commit rate (the Laplace
// transform of a longer-tailed window decays more slowly), matching
// Atalar et al.'s observation that variability softens conflicts.
func TestLockFreeWindowShape(t *testing.T) {
	lam, so := 0.01, 50.0
	qDet := lockFreeConflict(lam, so, 0)
	qExp := lockFreeConflict(lam, so, 1)
	qHyp := lockFreeConflict(lam, so, 4)
	if !(qDet > qExp && qExp > qHyp) {
		t.Errorf("conflict ordering violated: det=%v exp=%v hyper=%v", qDet, qExp, qHyp)
	}
	// Exponential window: q = λ·So/(1+λ·So) exactly.
	want := lam * so / (1 + lam*so)
	if math.Abs(qExp-want) > 1e-12 {
		t.Errorf("exponential-window conflict = %v, want %v", qExp, want)
	}
}

// TestLockFreeRetryStormGuard: a configuration whose only consistent
// solution needs near-certain conflicts must error rather than return
// a nonsense point.
func TestLockFreeRetryStormGuard(t *testing.T) {
	// Zero parallel work, long window, many threads: every round
	// overlaps many commits.
	_, err := LockFree(LockFreeParams{Threads: 1024, W: 0, St: 0.0001, So: 100, C2: 0})
	if err == nil {
		t.Skip("configuration solved; storm guard not reachable here")
	}
}

// TestLockSolveStats: the results carry converged traces, the observer
// sees the named solvers, and observation does not perturb the solve.
func TestLockSolveStats(t *testing.T) {
	var c capture
	lp := LockParams{Threads: 8, W: 500, St: 20, So: 100, C2: 1}
	res, err := LockObserved(lp, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solve.Converged || res.Solve.Iters == 0 {
		t.Errorf("solve stats not populated: %+v", res.Solve)
	}
	if c.calls != 1 || c.solver != SolverLock {
		t.Errorf("observer saw %d calls for solver %q, want 1 for %q", c.calls, c.solver, SolverLock)
	}
	if c.stats != res.Solve {
		t.Errorf("observer stats %+v differ from result.Solve %+v", c.stats, res.Solve)
	}
	plain, err := Lock(lp)
	if err != nil {
		t.Fatal(err)
	}
	//lopc:allow floateq observed and unobserved solves run the identical iteration and must agree bit-for-bit
	if plain != res {
		t.Errorf("observation changed the solve: %+v vs %+v", plain, res)
	}

	var cf capture
	lf, err := LockFreeObserved(LockFreeParams{Threads: 8, W: 500, St: 5, So: 50, C2: 1}, &cf)
	if err != nil {
		t.Fatal(err)
	}
	if !lf.Solve.Converged {
		t.Errorf("lock-free solve did not converge: %+v", lf.Solve)
	}
	if cf.calls != 1 || cf.solver != SolverLockFree {
		t.Errorf("observer saw %d calls for solver %q, want 1 for %q", cf.calls, cf.solver, SolverLockFree)
	}
}

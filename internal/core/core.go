// Package core implements the LoPC model (Frank, "LoPC: Modeling
// Contention in Parallel Algorithms", PPoPP 1997): an extension of the
// LogP model that predicts the cost of contention for message-processing
// resources using approximate mean value analysis.
//
// The model takes the LogP parameters — network latency St (LogP's L),
// message-handling overhead So (LogP's o, the cost of taking the
// interrupt plus running the handler), and the processor count P — plus
// the algorithmic parameters W (mean local work between blocking
// requests) and n (requests per thread), and optionally C², the squared
// coefficient of variation of handler service time. From these it
// computes the mean response time R of one compute/request cycle,
// including queueing delays, and hence the total runtime n·R.
//
// Three solvers are provided, mirroring the paper's three analyses:
//
//   - AllToAll: the homogeneous all-to-all pattern of Chapter 5, with
//     the closed-form bounds of §5.3.
//   - ClientServer: the work-pile pattern of Chapter 6, including the
//     closed-form optimal server allocation of Eq. 6.8.
//   - General: the full per-thread model of Appendix A, supporting
//     arbitrary visit-ratio matrices and multi-hop requests.
//
// Each solver supports the shared-memory (protocol processor) variant,
// in which handlers never interfere with computation threads (Rw = W).
package core

import (
	"fmt"
	"math"
)

// Params carries the LoPC parameterization of a homogeneous algorithm
// on a machine, in the units of Table 3.1. All times are in processor
// cycles (any consistent unit works).
type Params struct {
	// P is the number of processors.
	P int
	// W is the mean computation time between blocking requests,
	// derived from the algorithm as total work / total messages.
	W float64
	// St is the mean network latency per trip (LogP's L): wire time
	// only, excluding all processing.
	St float64
	// So is the mean cost of dispatching one message: taking the
	// interrupt plus running the handler (LogP's o).
	So float64
	// C2 is the squared coefficient of variation of handler service
	// time. 0 models constant-time handlers (short, branch-free
	// instruction streams); 1 models exponential service, the
	// traditional queueing default.
	C2 float64
	// ProtocolProcessor selects the shared-memory variant: handlers
	// run on dedicated protocol hardware and do not preempt the
	// computation thread, so Rw = W.
	ProtocolProcessor bool
	// Priority selects the priority approximation for the thread
	// residence time Rw. The zero value is BKT, the paper's choice;
	// ShadowServer is the simpler alternative the paper rejects as less
	// accurate (§5.1), kept for ablation studies.
	Priority PriorityApprox
}

// PriorityApprox names a priority-queueing approximation for the
// interference of high-priority handlers with the computation thread.
type PriorityApprox int

const (
	// BKT is the MVA preempt-resume approximation (Bryant, Krzesinski &
	// Teunissen): Rw = (W + So·Qq)/(1 − Uq). The paper uses it because
	// it is more accurate than the shadow-server approximation for this
	// system.
	BKT PriorityApprox = iota
	// ShadowServer models the preempting handlers as simply slowing the
	// processor: Rw = W/(1 − Uq), ignoring the handlers already queued
	// when the thread becomes ready.
	ShadowServer
)

func (p PriorityApprox) String() string {
	switch p {
	case BKT:
		return "BKT"
	case ShadowServer:
		return "shadow-server"
	default:
		return fmt.Sprintf("PriorityApprox(%d)", int(p))
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.P < 2:
		return fmt.Errorf("core: P = %d; the model needs at least 2 processors", p.P)
	case p.W < 0:
		return fmt.Errorf("core: negative W %v", p.W)
	case p.St < 0:
		return fmt.Errorf("core: negative St %v", p.St)
	case p.So <= 0:
		return fmt.Errorf("core: So = %v; handlers must take positive time", p.So)
	case p.C2 < 0:
		return fmt.Errorf("core: negative C² %v", p.C2)
	case math.IsNaN(p.W + p.St + p.So + p.C2):
		return fmt.Errorf("core: NaN parameter in %+v", p)
	case math.IsInf(p.W+p.St+p.So+p.C2, 0):
		return fmt.Errorf("core: infinite parameter in %+v", p)
	}
	return nil
}

// ContentionFree returns the contention-free cost of one
// compute/request cycle, W + 2St + 2So — what a naive LogP-style
// analysis predicts (Figure 4-2's timeline), and the lower bound of
// Eq. 5.12.
func (p Params) ContentionFree() float64 {
	return p.W + 2*p.St + 2*p.So
}

// RuleOfThumb returns the paper's headline approximation for the
// homogeneous all-to-all pattern: contention costs about one extra
// handler, so R ≈ W + 2St + 3So.
func (p Params) RuleOfThumb() float64 {
	return p.W + 2*p.St + 3*p.So
}

// MatVec derives the LoPC algorithmic parameters for the Chapter 3
// example: an N×N matrix-vector multiply with the matrix cyclically
// distributed across P processors and results replicated with blocking
// put operations. tMulAdd is the cost of one multiply-add in cycles.
//
// Each processor performs m = (N/P)·N multiply-adds and sends
// n = (N/P)·(P−1) puts, so the mean work between requests is
// W = m/n · tMulAdd = N·tMulAdd/(P−1).
func MatVec(n, p int, tMulAdd float64) (w float64, messages int, err error) {
	if p < 2 {
		return 0, 0, fmt.Errorf("core: MatVec needs P >= 2, got %d", p)
	}
	if n < p {
		return 0, 0, fmt.Errorf("core: MatVec needs N >= P (N=%d, P=%d)", n, p)
	}
	// The negated comparison rejects NaN too: NaN > 0 is false.
	if !(tMulAdd > 0) || math.IsInf(tMulAdd, 0) {
		return 0, 0, fmt.Errorf("core: invalid multiply-add cost %v", tMulAdd)
	}
	rows := n / p // rows per processor under cyclic distribution
	mOps := rows * n
	msgs := rows * (p - 1)
	return float64(mOps) / float64(msgs) * tMulAdd, msgs, nil
}

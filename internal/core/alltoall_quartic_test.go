package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// TestFixedPointIsPolynomialRoot verifies the §5.3 claim that "solving
// the model requires solving a quartic equation": clearing the
// denominators of R = F[R] (C² = 0) yields a polynomial in R, and the
// damped-iteration fixed point must be one of its real roots.
//
// The polynomial is recovered numerically: G(x) = (x − F(x))·D(x) with
// D(x) = 2x²(x−So)(x²−So·x−So²) clearing every denominator of F, so G
// is a polynomial of degree ≤ 6; Newton's divided differences through 7
// sample points reconstruct its coefficients exactly (up to float
// error), and the reconstruction is cross-checked at extra points.
func TestFixedPointIsPolynomialRoot(t *testing.T) {
	for _, p := range []Params{
		{P: 32, W: 512, St: 40, So: 200, C2: 0},
		{P: 32, W: 0, St: 40, So: 200, C2: 0},
		{P: 16, W: 2048, St: 10, So: 100, C2: 0},
	} {
		res, err := AllToAll(p)
		if err != nil {
			t.Fatal(err)
		}
		s := p.So
		d := func(x float64) float64 {
			return 2 * x * x * (x - s) * (x*x - s*x - s*s)
		}
		g := func(x float64) float64 {
			step, err := allToAllStep(p, x)
			if err != nil {
				t.Fatalf("step at %v: %v", x, err)
			}
			return (x - step.R) * d(x)
		}
		// Sample points comfortably inside the feasible region
		// (x > golden-ratio·So keeps x²−sx−s² > 0).
		base := 2*s + p.W + 2*p.St + 1
		xs := make([]float64, 7)
		for i := range xs {
			xs[i] = base + float64(i)*s
		}
		coef := fitPolynomial(xs, g)
		// Cross-check the reconstruction at fresh points.
		for _, x := range []float64{base + 0.4*s, base + 6.7*s} {
			want := g(x)
			got := numeric.Poly(coef, x)
			scale := math.Max(math.Abs(want), 1)
			if math.Abs(got-want) > 1e-6*scale {
				t.Fatalf("polynomial reconstruction off at %v: %v vs %v", x, got, want)
			}
		}
		// The fixed point must make G vanish, i.e. be a root.
		scale := math.Abs(numeric.Poly(coef, base))
		if v := numeric.Poly(coef, res.R); math.Abs(v) > 1e-6*scale {
			t.Errorf("params %+v: G(R*) = %v (scale %v); fixed point is not a root", p, v, scale)
		}
		// And PolyRealRootsIn must find it inside the Eq. 5.12 bracket.
		roots := numeric.PolyRealRootsIn(coef, res.ContentionFree-1, res.UpperBound+1)
		found := false
		for _, r := range roots {
			if math.Abs(r-res.R) < 1e-6*res.R {
				found = true
			}
		}
		if !found {
			t.Errorf("params %+v: fixed point %v not among polynomial roots %v", p, res.R, roots)
		}
	}
}

// fitPolynomial reconstructs polynomial coefficients from samples by
// Newton's divided differences, then expands to the monomial basis.
func fitPolynomial(xs []float64, f func(float64) float64) []float64 {
	n := len(xs)
	div := make([]float64, n)
	for i := range div {
		div[i] = f(xs[i])
	}
	for k := 1; k < n; k++ {
		for i := n - 1; i >= k; i-- {
			div[i] = (div[i] - div[i-1]) / (xs[i] - xs[i-k])
		}
	}
	// Expand Newton form to monomials: p(x) = Σ div[k]·Π_{j<k}(x−xs[j]).
	coef := make([]float64, n)
	basis := []float64{1} // Π so far, in monomial coefficients
	for k := 0; k < n; k++ {
		for j, b := range basis {
			coef[j] += div[k] * b
		}
		if k+1 < n {
			// basis *= (x − xs[k])
			next := make([]float64, len(basis)+1)
			for j, b := range basis {
				next[j+1] += b
				next[j] -= xs[k] * b
			}
			basis = next
		}
	}
	return coef
}

package core

import (
	"fmt"

	"repro/internal/mva"
	"repro/internal/numeric"
)

// MultithreadedResult is the model's solution for the multithreaded
// extension: T computation threads per node hide request latency behind
// each other's work — the latency-tolerance technique of the Alewife
// machine the paper validates on. The paper's model fixes T = 1
// ("only one thread is assigned to each node", §5.1); this extension
// relaxes that.
type MultithreadedResult struct {
	// XNode is the node's cycle completion rate across its T threads.
	XNode float64
	// XThread is XNode/T; CycleTime is its reciprocal.
	XThread, CycleTime float64
	// Rh is the handler response time (requests and replies form one
	// FCFS class once several replies can queue).
	Rh float64
	// HandlerUtil is the CPU fraction consumed by handlers.
	HandlerUtil float64
	// CPUUtil is total CPU utilization: handlers plus threads.
	CPUUtil float64
	// Bound is the conservation-law throughput ceiling per node,
	// 1/(W + 2So): with enough threads the CPU never idles and every
	// cycle costs W locally plus two handlers machine-wide.
	Bound float64
	// SaturationThreads estimates the thread count at the knee of the
	// latency-hiding curve: T* ≈ R(1)/(W + 2So).
	SaturationThreads float64
}

// Multithreaded solves the homogeneous all-to-all pattern with T
// threads per node.
//
// The derivation composes pieces already in this repository. Handlers
// from all classes merge into one priority FCFS stream of rate 2·T·x
// per node, giving the open-queue response Rh (as in the non-blocking
// model). The node's T threads then cycle through a two-center closed
// network: a queueing center for the CPU — whose effective demand is
// W/(1−Uh), the shadow-server account of handler preemption — and a
// delay center for the remote round trip 2St + 2Rh. Exact MVA on that
// network (internal/mva) yields the node throughput, and the handler
// rates it implies close the fixed point.
//
// At T = 1 this reproduces the Chapter 5 solver within a few percent
// (it trades BKT and the asymmetric reply queue for the simpler shadow
// server and merged queue, which multiple threads require anyway).
func Multithreaded(p Params, t int) (MultithreadedResult, error) {
	if err := p.Validate(); err != nil {
		return MultithreadedResult{}, err
	}
	if t < 1 {
		return MultithreadedResult{}, fmt.Errorf("core: thread count %d", t)
	}
	if p.ProtocolProcessor {
		return MultithreadedResult{}, fmt.Errorf("core: multithreaded model covers the interrupt machine only")
	}

	bound := 1 / (p.W + 2*p.So)
	solve := func(x float64) (MultithreadedResult, error) {
		lam := float64(t) * x // request (and reply) arrival rate per node
		a := lam * p.So
		uh := 2 * a
		if uh >= 0.999 {
			return MultithreadedResult{}, fmt.Errorf("core: handler load %v infeasible", uh)
		}
		rh := p.So * (1 + (p.C2-1)*a) / (1 - 2*a)
		if rh <= 0 {
			return MultithreadedResult{}, fmt.Errorf("core: negative handler response at load %v", uh)
		}
		weff := p.W / (1 - uh)
		centers := []mva.Center{
			{Name: "cpu", Kind: mva.Queueing, Demand: weff},
			{Name: "net+remote", Kind: mva.Delay, Demand: 2*p.St + 2*rh},
		}
		res, err := mva.Exact(centers, t)
		if err != nil {
			return MultithreadedResult{}, err
		}
		out := MultithreadedResult{
			XNode:       res.X,
			XThread:     res.X / float64(t),
			Rh:          rh,
			HandlerUtil: uh,
			Bound:       bound,
		}
		if out.XThread > 0 {
			out.CycleTime = 1 / out.XThread
		}
		return out, nil
	}

	f := func(x float64) float64 {
		res, err := solve(x)
		if err != nil {
			return x / 2 // pull back toward the feasible region
		}
		return res.XThread
	}
	x0 := 1 / (p.W + 2*p.St + 2*p.So)
	x, err := numeric.FixedPoint(f, x0/float64(t), numeric.FixedPointOpts{
		Tol: 1e-12, MaxIter: 200000, Damping: 0.3,
	})
	if err != nil {
		return MultithreadedResult{}, fmt.Errorf("core: multithreaded fixed point: %w", err)
	}
	res, err := solve(x)
	if err != nil {
		return MultithreadedResult{}, err
	}
	res.XThread = x
	res.XNode = float64(t) * x
	res.CycleTime = 1 / x
	res.CPUUtil = res.HandlerUtil + res.XNode*p.W
	// Knee estimate from the single-thread cycle time.
	if one, err := AllToAll(p); err == nil {
		res.SaturationThreads = one.R / (p.W + 2*p.So)
	}
	return res, nil
}

package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	good := Params{P: 32, W: 1000, St: 40, So: 200, C2: 0}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{P: 1, W: 1, St: 1, So: 1},
		{P: 4, W: -1, St: 1, So: 1},
		{P: 4, W: 1, St: -1, So: 1},
		{P: 4, W: 1, St: 1, So: 0},
		{P: 4, W: 1, St: 1, So: 1, C2: -1},
		{P: 4, W: math.NaN(), St: 1, So: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
}

func TestContentionFreeAndRuleOfThumb(t *testing.T) {
	p := Params{P: 32, W: 1000, St: 40, So: 200}
	if got := p.ContentionFree(); got != 1000+80+400 {
		t.Errorf("ContentionFree = %v, want 1480", got)
	}
	if got := p.RuleOfThumb(); got != 1000+80+600 {
		t.Errorf("RuleOfThumb = %v, want 1680", got)
	}
}

func TestMatVec(t *testing.T) {
	// N = 64, P = 8, tMulAdd = 4: W = N·t/(P−1) = 256/7.
	w, n, err := MatVec(64, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 64.0 * 4 / 7; math.Abs(w-want) > 1e-12 {
		t.Errorf("W = %v, want %v", w, want)
	}
	if want := (64 / 8) * 7; n != want {
		t.Errorf("messages = %d, want %d", n, want)
	}
}

func TestMatVecErrors(t *testing.T) {
	if _, _, err := MatVec(64, 1, 4); err == nil {
		t.Error("P = 1 accepted")
	}
	if _, _, err := MatVec(4, 8, 4); err == nil {
		t.Error("N < P accepted")
	}
	if _, _, err := MatVec(64, 8, 0); err == nil {
		t.Error("zero multiply-add cost accepted")
	}
}

// TestAllToAllSatisfiesEquations verifies the solution is a genuine
// fixed point of Eqs. 5.1–5.10: plugging it back reproduces itself.
func TestAllToAllSatisfiesEquations(t *testing.T) {
	for _, c2 := range []float64{0, 0.5, 1, 2} {
		p := Params{P: 32, W: 500, St: 40, So: 200, C2: c2}
		res, err := AllToAll(p)
		if err != nil {
			t.Fatal(err)
		}
		lam := 1 / res.R
		// Eq. 5.3 / 5.4 (Little's law and utilization law).
		if got := lam * res.Rq; math.Abs(got-res.Qq) > 1e-6 {
			t.Errorf("C²=%v: Qq = %v, λRq = %v", c2, res.Qq, got)
		}
		if got := lam * p.So; math.Abs(got-res.Uq) > 1e-6 {
			t.Errorf("C²=%v: Uq = %v, λSo = %v", c2, res.Uq, got)
		}
		// Eq. 5.9.
		wantRq := p.So * (1 + res.Qq + res.Qy + (c2-1)/2*(res.Uq+res.Uy))
		if math.Abs(wantRq-res.Rq) > 1e-6 {
			t.Errorf("C²=%v: Rq = %v, Eq.5.9 gives %v", c2, res.Rq, wantRq)
		}
		// Eq. 5.10.
		wantRy := p.So * (1 + res.Qq + (c2-1)/2*res.Uq)
		if math.Abs(wantRy-res.Ry) > 1e-6 {
			t.Errorf("C²=%v: Ry = %v, Eq.5.10 gives %v", c2, res.Ry, wantRy)
		}
		// Eq. 5.7 (BKT).
		wantRw := (p.W + p.So*res.Qq) / (1 - res.Uq)
		if math.Abs(wantRw-res.Rw) > 1e-6 {
			t.Errorf("C²=%v: Rw = %v, Eq.5.7 gives %v", c2, res.Rw, wantRw)
		}
		// Eq. 4.1.
		if got := res.Rw + 2*p.St + res.Rq + res.Ry; math.Abs(got-res.R) > 1e-6 {
			t.Errorf("C²=%v: R = %v, components sum to %v", c2, res.R, got)
		}
		// Eq. 5.1.
		if got := float64(p.P) / res.R; math.Abs(got-res.X) > 1e-9 {
			t.Errorf("C²=%v: X = %v, P/R = %v", c2, res.X, got)
		}
	}
}

// TestAllToAllBoundsProperty: for any parameters, the fixed point lies
// within the Eq. 5.12 bounds.
func TestAllToAllBoundsProperty(t *testing.T) {
	f := func(wRaw, stRaw, soRaw uint16, c2Raw uint8) bool {
		p := Params{
			P:  32,
			W:  float64(wRaw % 4096),
			St: float64(stRaw % 512),
			So: 1 + float64(soRaw%2048),
			C2: float64(c2Raw%21) / 10, // 0 .. 2.0
		}
		res, err := AllToAll(p)
		if err != nil {
			return false
		}
		return res.R >= res.ContentionFree-1e-6 && res.R <= res.UpperBound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundBetaMatchesPaper(t *testing.T) {
	// §5.3: at C² = 0 the fixed point is bounded by W + 2St + 3.46·So.
	beta := UpperBoundBeta(0)
	if beta < 3.3 || beta > 3.46 {
		t.Errorf("UpperBoundBeta(0) = %v, paper says the worst case is just under 3.46", beta)
	}
}

func TestUpperBoundBetaMonotoneInC2(t *testing.T) {
	prev := 0.0
	for _, c2 := range []float64{0, 0.5, 1, 1.5, 2} {
		beta := UpperBoundBeta(c2)
		if beta <= prev {
			t.Errorf("UpperBoundBeta not increasing: β(%v) = %v after %v", c2, beta, prev)
		}
		prev = beta
	}
}

func TestAllToAllContentionApproachesExtraHandler(t *testing.T) {
	// Ch. 5 insight: to first order, contention costs one extra handler.
	// As W grows the contention tends to exactly So.
	p := Params{P: 32, W: 1e6, St: 40, So: 200, C2: 0}
	res, err := AllToAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Contention(); math.Abs(c-p.So) > 0.02*p.So {
		t.Errorf("contention at W=1e6 is %v, want ~So=%v", c, p.So)
	}
}

func TestAllToAllRuleOfThumbAccuracy(t *testing.T) {
	// The rule of thumb W + 2St + 3So should be within ~16% of the model
	// everywhere (the paper's worst case is W = 0).
	for _, w := range []float64{0, 2, 64, 512, 2048} {
		p := Params{P: 32, W: w, St: 40, So: 200, C2: 0}
		res, err := AllToAll(p)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(p.RuleOfThumb()-res.R) / res.R
		if rel > 0.16 {
			t.Errorf("W=%v: rule of thumb off by %.1f%%", w, rel*100)
		}
	}
}

// TestAllToAllMonotonicity: R grows with W, So, and C².
func TestAllToAllMonotonicity(t *testing.T) {
	base := Params{P: 32, W: 500, St: 40, So: 200, C2: 0.5}
	r0 := mustAllToAll(t, base).R
	for _, mod := range []struct {
		name string
		p    Params
	}{
		{"W", Params{P: 32, W: 600, St: 40, So: 200, C2: 0.5}},
		{"So", Params{P: 32, W: 500, St: 40, So: 250, C2: 0.5}},
		{"C2", Params{P: 32, W: 500, St: 40, So: 200, C2: 1.5}},
		{"St", Params{P: 32, W: 500, St: 80, So: 200, C2: 0.5}},
	} {
		if r := mustAllToAll(t, mod.p).R; r <= r0 {
			t.Errorf("increasing %s did not increase R: %v <= %v", mod.name, r, r0)
		}
	}
}

func mustAllToAll(t *testing.T, p Params) AllToAllResult {
	t.Helper()
	res, err := AllToAll(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllToAllProtocolProcessorCheaper(t *testing.T) {
	p := Params{P: 32, W: 500, St: 40, So: 200, C2: 0}
	pp := p
	pp.ProtocolProcessor = true
	rInt := mustAllToAll(t, p)
	rPP := mustAllToAll(t, pp)
	if rPP.R >= rInt.R {
		t.Errorf("protocol processor R = %v not cheaper than interrupt R = %v", rPP.R, rInt.R)
	}
	if math.Abs(rPP.Rw-p.W) > 1e-9 {
		t.Errorf("protocol processor Rw = %v, want W = %v", rPP.Rw, p.W)
	}
}

func TestAllToAllComponentsSumToContention(t *testing.T) {
	p := Params{P: 32, W: 100, St: 40, So: 200, C2: 0}
	res := mustAllToAll(t, p)
	th, rq, ry := res.Components(p)
	if got := th + rq + ry; math.Abs(got-res.Contention()) > 1e-6 {
		t.Errorf("components sum %v != contention %v", got, res.Contention())
	}
	if th < 0 || rq < 0 || ry < 0 {
		t.Errorf("negative contention component: %v %v %v", th, rq, ry)
	}
}

func TestAllToAllContentionFractionFigure51Shape(t *testing.T) {
	// Figure 5-1: contention fraction increases with C² and with So.
	p := Params{P: 32, W: 1000, St: 40, So: 512}
	prev := -1.0
	for _, c2 := range []float64{0, 0.5, 1, 1.5, 2} {
		p.C2 = c2
		frac := mustAllToAll(t, p).ContentionFraction()
		if frac <= prev {
			t.Errorf("contention fraction not increasing in C²: %v at C²=%v", frac, c2)
		}
		prev = frac
	}
	// The paper reports ~6% difference between C²=0 and C²=1 at W=1000.
	p.C2 = 0
	f0 := mustAllToAll(t, p).R
	p.C2 = 1
	f1 := mustAllToAll(t, p).R
	if d := (f1 - f0) / f0; d < 0.01 || d > 0.15 {
		t.Errorf("C²=0 vs C²=1 response difference = %.1f%%, expected a few percent", d*100)
	}
}

func TestTotalRuntime(t *testing.T) {
	p := Params{P: 32, W: 500, St: 40, So: 200, C2: 0}
	res := mustAllToAll(t, p)
	total, err := TotalRuntime(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-100*res.R) > 1e-6 {
		t.Errorf("TotalRuntime = %v, want %v", total, 100*res.R)
	}
	if _, err := TotalRuntime(p, -1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestAllToAllInvalidParams(t *testing.T) {
	if _, err := AllToAll(Params{P: 1, W: 1, St: 1, So: 1}); err == nil {
		t.Error("AllToAll accepted P = 1")
	}
}

func TestShadowServerUnderpredictsBKT(t *testing.T) {
	// The shadow-server approximation drops the So·Qq backlog term, so
	// its Rw (and R) sit below BKT's at any load.
	pB := Params{P: 32, W: 64, St: 40, So: 200, C2: 0}
	pS := pB
	pS.Priority = ShadowServer
	rB := mustAllToAll(t, pB)
	rS := mustAllToAll(t, pS)
	if rS.Rw >= rB.Rw {
		t.Errorf("shadow Rw %v not below BKT Rw %v", rS.Rw, rB.Rw)
	}
	if rS.R >= rB.R {
		t.Errorf("shadow R %v not below BKT R %v", rS.R, rB.R)
	}
	// At large W the two coincide (queueing terms vanish).
	pB.W, pS.W = 1e6, 1e6
	rB, rS = mustAllToAll(t, pB), mustAllToAll(t, pS)
	if math.Abs(rB.R-rS.R)/rB.R > 0.001 {
		t.Errorf("approximations disagree at W=1e6: %v vs %v", rB.R, rS.R)
	}
}

func TestPriorityApproxString(t *testing.T) {
	if BKT.String() != "BKT" || ShadowServer.String() != "shadow-server" {
		t.Error("PriorityApprox.String wrong")
	}
	if PriorityApprox(9).String() == "" {
		t.Error("unknown PriorityApprox has empty String")
	}
}

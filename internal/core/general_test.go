package core

import (
	"math"
	"testing"
)

func uniformW(p int, w float64) []float64 {
	ws := make([]float64, p)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

func TestGeneralValidate(t *testing.T) {
	good := GeneralParams{
		P: 4, W: uniformW(4, 100), V: HomogeneousVisits(4),
		St: 10, So: []float64{50}, C2: 0,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []GeneralParams{
		{P: 1, W: uniformW(1, 1), V: HomogeneousVisits(1), So: []float64{1}},
		{P: 4, W: uniformW(3, 1), V: HomogeneousVisits(4), So: []float64{1}},
		{P: 4, W: uniformW(4, 1), V: HomogeneousVisits(3), So: []float64{1}},
		{P: 4, W: uniformW(4, 1), V: HomogeneousVisits(4), So: []float64{1, 2}},
		{P: 4, W: uniformW(4, 1), V: HomogeneousVisits(4), So: []float64{0}},
		{P: 4, W: uniformW(4, -1), V: HomogeneousVisits(4), So: []float64{1}},
		{P: 4, W: uniformW(4, 1), V: HomogeneousVisits(4), So: []float64{1}, St: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	ragged := good
	ragged.V = [][]float64{{0, 1}, {1, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged visit matrix accepted")
	}
	neg := GeneralParams{P: 4, W: uniformW(4, 1), V: HomogeneousVisits(4), So: []float64{1}}
	neg.V[1][2] = -0.5
	if err := neg.Validate(); err == nil {
		t.Error("negative visit ratio accepted")
	}
}

// TestGeneralMatchesAllToAll: the Appendix A model specialized to the
// homogeneous pattern must reproduce the Chapter 5 solution exactly.
func TestGeneralMatchesAllToAll(t *testing.T) {
	for _, c2 := range []float64{0, 1, 2} {
		for _, pp := range []bool{false, true} {
			hp := Params{P: 16, W: 700, St: 40, So: 200, C2: c2, ProtocolProcessor: pp}
			want, err := AllToAll(hp)
			if err != nil {
				t.Fatal(err)
			}
			gp := GeneralParams{
				P: 16, W: uniformW(16, 700), V: HomogeneousVisits(16),
				St: 40, So: []float64{200}, C2: c2, ProtocolProcessor: pp,
			}
			got, err := General(gp)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 16; c++ {
				if math.Abs(got.R[c]-want.R) > 1e-6*want.R {
					t.Errorf("C²=%v pp=%v: general R[%d] = %v, homogeneous R = %v",
						c2, pp, c, got.R[c], want.R)
				}
			}
			if math.Abs(got.TotalX-want.X) > 1e-6*want.X {
				t.Errorf("C²=%v pp=%v: general X = %v, homogeneous X = %v", c2, pp, got.TotalX, want.X)
			}
			// Per-node quantities must match too.
			if math.Abs(got.Qq[0]-want.Qq) > 1e-6 {
				t.Errorf("C²=%v pp=%v: general Qq = %v, homogeneous Qq = %v", c2, pp, got.Qq[0], want.Qq)
			}
			if math.Abs(got.Uq[0]-want.Uq) > 1e-9 {
				t.Errorf("C²=%v pp=%v: general Uq = %v, homogeneous Uq = %v", c2, pp, got.Uq[0], want.Uq)
			}
		}
	}
}

// TestGeneralMatchesClientServer: the Appendix A model with a work-pile
// visit matrix must reproduce the Chapter 6 solution.
func TestGeneralMatchesClientServer(t *testing.T) {
	for _, ps := range []int{2, 5, 10} {
		csp := ClientServerParams{P: 32, Ps: ps, W: 1500, St: 40, So: 131, C2: 0}
		want, err := ClientServer(csp)
		if err != nil {
			t.Fatal(err)
		}
		pc := csp.P - ps
		gp := GeneralParams{
			P: 32, W: uniformW(32, 1500), V: ClientServerVisits(pc, ps),
			St: 40, So: []float64{131}, C2: 0,
		}
		got, err := General(gp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.TotalX-want.X) > 1e-6*want.X {
			t.Errorf("Ps=%d: general X = %v, client-server X = %v", ps, got.TotalX, want.X)
		}
		// Client cycle time matches Eq. 6.7's R.
		if math.Abs(got.R[0]-want.R) > 1e-6*want.R {
			t.Errorf("Ps=%d: general client R = %v, client-server R = %v", ps, got.R[0], want.R)
		}
		// Server nodes are passive: no throughput of their own.
		for c := pc; c < 32; c++ {
			if got.X[c] != 0 {
				t.Errorf("Ps=%d: server node %d has throughput %v", ps, c, got.X[c])
			}
		}
		// Server request response matches Rs.
		if math.Abs(got.Rq[pc]-want.Rs) > 1e-6*want.Rs {
			t.Errorf("Ps=%d: general Rq at server = %v, Rs = %v", ps, got.Rq[pc], want.Rs)
		}
	}
}

func TestGeneralMultiHop(t *testing.T) {
	// Multi-hop requests visit `hops` nodes; the contention-free cycle
	// is W + (hops+1)St + hops·So + So. At large W contention vanishes,
	// so R approaches that value.
	const p = 16
	for _, hops := range []int{1, 2, 4} {
		gp := GeneralParams{
			P: p, W: uniformW(p, 1e6), V: MultiHopVisits(p, hops),
			St: 40, So: []float64{200}, C2: 0,
		}
		res, err := General(gp)
		if err != nil {
			t.Fatal(err)
		}
		h := float64(hops)
		cf := 1e6 + (h+1)*40 + h*200 + 200
		if res.R[0] < cf {
			t.Errorf("hops=%d: R = %v below contention-free %v", hops, res.R[0], cf)
		}
		if res.R[0] > cf+3*200*h {
			t.Errorf("hops=%d: R = %v too far above contention-free %v", hops, res.R[0], cf)
		}
	}
}

func TestGeneralMultiHopMoreHopsCostMore(t *testing.T) {
	prev := 0.0
	for hops := 1; hops <= 4; hops++ {
		gp := GeneralParams{
			P: 16, W: uniformW(16, 500), V: MultiHopVisits(16, hops),
			St: 40, So: []float64{200}, C2: 0,
		}
		res, err := General(gp)
		if err != nil {
			t.Fatal(err)
		}
		if res.R[0] <= prev {
			t.Errorf("hops=%d: R = %v not larger than %v", hops, res.R[0], prev)
		}
		prev = res.R[0]
	}
}

func TestGeneralHeterogeneousWork(t *testing.T) {
	// A node with less local work requests more often, loading its
	// peers more; all threads still get consistent solutions.
	const p = 8
	w := uniformW(p, 1000)
	w[0] = 100 // hot node
	gp := GeneralParams{
		P: p, W: w, V: HomogeneousVisits(p), St: 40, So: []float64{200}, C2: 0,
	}
	res, err := General(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] <= res.X[1] {
		t.Errorf("hot thread throughput %v not above cold %v", res.X[0], res.X[1])
	}
	if res.R[0] >= res.R[1] {
		t.Errorf("hot thread cycle %v not below cold %v", res.R[0], res.R[1])
	}
}

func TestGeneralHeterogeneousSo(t *testing.T) {
	// A node with a slower handler builds deeper queues.
	const p = 8
	so := make([]float64, p)
	for i := range so {
		so[i] = 100
	}
	so[3] = 400
	gp := GeneralParams{
		P: p, W: uniformW(p, 500), V: HomogeneousVisits(p), St: 40, So: so, C2: 0,
	}
	res, err := General(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Qq[3] <= res.Qq[0] {
		t.Errorf("slow node queue %v not deeper than fast node %v", res.Qq[3], res.Qq[0])
	}
	if res.Rq[3] <= res.Rq[0] {
		t.Errorf("slow node Rq %v not above fast node %v", res.Rq[3], res.Rq[0])
	}
}

func TestGeneralLittleLawConsistency(t *testing.T) {
	gp := GeneralParams{
		P: 8, W: uniformW(8, 300), V: HomogeneousVisits(8),
		St: 40, So: []float64{200}, C2: 1,
	}
	res, err := General(gp)
	if err != nil {
		t.Fatal(err)
	}
	// At the fixed point: Qq[k] = Rq[k]·Σc V[c][k]·X[c].
	for k := 0; k < 8; k++ {
		rate := 0.0
		for c := 0; c < 8; c++ {
			rate += gp.V[c][k] * res.X[c]
		}
		if want := res.Rq[k] * rate; math.Abs(want-res.Qq[k]) > 1e-6 {
			t.Errorf("node %d: Qq = %v, Little gives %v", k, res.Qq[k], want)
		}
		if want := gp.So[0] * rate; math.Abs(want-res.Uq[k]) > 1e-6 {
			t.Errorf("node %d: Uq = %v, utilization law gives %v", k, res.Uq[k], want)
		}
	}
}

func TestVisitMatrixHelpers(t *testing.T) {
	v := HomogeneousVisits(4)
	for c := range v {
		sum := 0.0
		for k, x := range v[c] {
			if k == c && x != 0 {
				t.Errorf("self-visit at %d", c)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v, want 1", c, sum)
		}
	}
	cs := ClientServerVisits(3, 2)
	for c := 0; c < 3; c++ {
		for k := 0; k < 3; k++ {
			if cs[c][k] != 0 {
				t.Errorf("client %d visits client %d", c, k)
			}
		}
		if cs[c][3] != 0.5 || cs[c][4] != 0.5 {
			t.Errorf("client %d server visits = %v", c, cs[c][3:])
		}
	}
	for c := 3; c < 5; c++ {
		for k := 0; k < 5; k++ {
			if cs[c][k] != 0 {
				t.Errorf("server %d is not passive", c)
			}
		}
	}
	mh := MultiHopVisits(5, 3)
	for c := range mh {
		sum := 0.0
		for _, x := range mh[c] {
			sum += x
		}
		if math.Abs(sum-3) > 1e-12 {
			t.Errorf("multi-hop row %d sums to %v, want 3", c, sum)
		}
	}
}

func TestGeneralAllPassive(t *testing.T) {
	// No thread requests anything: the model degenerates gracefully.
	gp := GeneralParams{
		P: 4, W: uniformW(4, 100),
		V:  [][]float64{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}},
		St: 10, So: []float64{50}, C2: 0,
	}
	res, err := General(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalX != 0 {
		t.Errorf("all-passive throughput = %v, want 0", res.TotalX)
	}
}

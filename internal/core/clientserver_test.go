package core

import (
	"math"
	"testing"
)

func csParams(ps int) ClientServerParams {
	return ClientServerParams{P: 32, Ps: ps, W: 1500, St: 40, So: 131, C2: 0}
}

func TestClientServerValidate(t *testing.T) {
	if err := csParams(4).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []ClientServerParams{
		{P: 1, Ps: 1, So: 1},
		{P: 8, Ps: 0, So: 1},
		{P: 8, Ps: 8, So: 1},
		{P: 8, Ps: 2, So: 0},
		{P: 8, Ps: 2, So: 1, W: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestClientServerSatisfiesEquations(t *testing.T) {
	for _, ps := range []int{1, 2, 4, 8, 16, 31} {
		p := csParams(ps)
		res, err := ClientServer(p)
		if err != nil {
			t.Fatalf("Ps=%d: %v", ps, err)
		}
		pc := float64(p.P - ps)
		// Eq. 6.7 and 6.2.
		if want := p.W + 2*p.St + res.Rs + p.So; math.Abs(want-res.R) > 1e-6 {
			t.Errorf("Ps=%d: R = %v, Eq.6.7 gives %v", ps, res.R, want)
		}
		if want := pc / res.R; math.Abs(want-res.X) > 1e-9 {
			t.Errorf("Ps=%d: X = %v, Pc/R = %v", ps, res.X, want)
		}
		// Eq. 6.5 at the fixed point.
		lamS := res.X / float64(ps)
		wantRs := p.So * (1 + lamS*res.Rs + (p.C2-1)/2*lamS*p.So)
		if math.Abs(wantRs-res.Rs) > 1e-6 {
			t.Errorf("Ps=%d: Rs = %v, Eq.6.5 gives %v", ps, res.Rs, wantRs)
		}
		if res.Us >= 1 || res.Us <= 0 {
			t.Errorf("Ps=%d: utilization %v out of (0,1)", ps, res.Us)
		}
	}
}

func TestOptimalServerRsClosedForm(t *testing.T) {
	// C² = 1: Rs = 2So (queue length 1 means one waiting + one in
	// service of an exponential server). C² = 0: Rs = (1+1/√2)So.
	if got := OptimalServerRs(100, 1); math.Abs(got-200) > 1e-9 {
		t.Errorf("Rs(C²=1) = %v, want 200", got)
	}
	if got, want := OptimalServerRs(100, 0), 100*(1+math.Sqrt(0.5)); math.Abs(got-want) > 1e-9 {
		t.Errorf("Rs(C²=0) = %v, want %v", got, want)
	}
}

// TestOptimalServersMatchesExhaustiveSearch: the Eq. 6.8 closed form
// must agree with brute-force maximization of the model curve.
func TestOptimalServersMatchesExhaustiveSearch(t *testing.T) {
	for _, w := range []float64{200, 800, 1500, 4000} {
		p := ClientServerParams{P: 32, Ps: 1, W: w, St: 40, So: 131, C2: 0}
		bestPs, bestX := 0, -1.0
		for ps := 1; ps < p.P; ps++ {
			q := p
			q.Ps = ps
			res, err := ClientServer(q)
			if err != nil {
				continue
			}
			if res.X > bestX {
				bestPs, bestX = ps, res.X
			}
		}
		got, err := OptimalServersInt(p)
		if err != nil {
			t.Fatalf("W=%v: %v", w, err)
		}
		if d := got - bestPs; d < -1 || d > 1 {
			t.Errorf("W=%v: closed-form optimum %d, exhaustive %d", w, got, bestPs)
		}
		// At the exhaustive optimum the queue length per server should
		// be near 1 (the Ch. 6 argument).
		q := p
		q.Ps = bestPs
		res, _ := ClientServer(q)
		if res.Qs < 0.5 || res.Qs > 2 {
			t.Errorf("W=%v: Qs at optimum = %v, expected near 1", w, res.Qs)
		}
	}
}

func TestPeakThroughputNearCurveMax(t *testing.T) {
	p := ClientServerParams{P: 32, Ps: 1, W: 1500, St: 40, So: 131, C2: 0}
	bestX := -1.0
	for ps := 1; ps < p.P; ps++ {
		q := p
		q.Ps = ps
		if res, err := ClientServer(q); err == nil && res.X > bestX {
			bestX = res.X
		}
	}
	peak := PeakThroughput(p)
	if math.Abs(peak-bestX)/bestX > 0.05 {
		t.Errorf("PeakThroughput = %v, curve max = %v", peak, bestX)
	}
}

func TestClientServerBoundsHold(t *testing.T) {
	// The model throughput never exceeds the LogP-style optimistic
	// bounds (dotted lines of Figure 6-2).
	for ps := 1; ps < 32; ps++ {
		p := csParams(ps)
		res, err := ClientServer(p)
		if err != nil {
			t.Fatalf("Ps=%d: %v", ps, err)
		}
		server, client := ClientServerBounds(p)
		if res.X > server+1e-9 {
			t.Errorf("Ps=%d: X = %v exceeds server bound %v", ps, res.X, server)
		}
		if res.X > client+1e-9 {
			t.Errorf("Ps=%d: X = %v exceeds client bound %v", ps, res.X, client)
		}
	}
}

func TestClientServerBoundsAsymptoticallyTight(t *testing.T) {
	// With very few servers the system is server-bound; with very many
	// it is client-bound. The bounds should be approached in those
	// regimes (the paper notes they are only tight where parallelism is
	// poor).
	p := csParams(1)
	res, _ := ClientServer(p)
	server, _ := ClientServerBounds(p)
	if res.X < 0.5*server {
		t.Errorf("Ps=1: X = %v far below server bound %v", res.X, server)
	}
	p = csParams(30)
	res, _ = ClientServer(p)
	_, client := ClientServerBounds(p)
	if res.X < 0.9*client {
		t.Errorf("Ps=30: X = %v far below client bound %v", res.X, client)
	}
}

func TestClientServerThroughputCurveShape(t *testing.T) {
	// X(Ps) rises to the optimum then falls (unimodal), as in Fig. 6-2.
	opt, err := OptimalServersInt(csParams(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for ps := 1; ps <= opt; ps++ {
		res, err := ClientServer(csParams(ps))
		if err != nil {
			t.Fatalf("Ps=%d: %v", ps, err)
		}
		if res.X < prev-1e-9 {
			t.Errorf("X decreasing before optimum at Ps=%d", ps)
		}
		prev = res.X
	}
	for ps := opt; ps < 32; ps++ {
		res, err := ClientServer(csParams(ps))
		if err != nil {
			t.Fatalf("Ps=%d: %v", ps, err)
		}
		if res.X > prev+1e-9 {
			t.Errorf("X increasing after optimum at Ps=%d", ps)
		}
		prev = res.X
	}
}

func TestOptimalServersIntClamps(t *testing.T) {
	// Huge W pushes the real optimum below 1 server; the integral
	// answer must clamp to 1.
	p := ClientServerParams{P: 8, Ps: 1, W: 1e9, St: 1, So: 1, C2: 0}
	got, err := OptimalServersInt(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("optimum with W=1e9 = %d, want clamp to 1", got)
	}
}

func TestClientServerInvalid(t *testing.T) {
	if _, err := ClientServer(ClientServerParams{P: 4, Ps: 4, So: 1}); err == nil {
		t.Error("Ps = P accepted")
	}
}

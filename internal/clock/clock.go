// Package clock puts wall-clock access behind an interface so that
// deterministic code paths never call time.Now directly. Production
// code takes a Clock (defaulting to System); tests inject a Fake and
// advance it by hand, making time-dependent behaviour — progress
// throttling, ETA estimates — exactly reproducible.
//
// This is the one sanctioned home for time.Now outside main packages:
// the nondeterminism analyzer (internal/lint) forbids direct wall-clock
// reads in every deterministic package, and this package is deliberately
// outside that list.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Waiter extends Clock with scheduling: After returns a channel that
// delivers the clock's time once d has elapsed on that clock. On the
// system clock this is time.After; on a Fake the channel fires when
// Advance or Set moves the clock past the deadline, which is what lets
// timeout paths (admission-queue waits, shutdown drains) run under
// fake time in tests.
type Waiter interface {
	Clock
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// System is the real wall clock.
var System Waiter = systemClock{}

// Fake is a manually advanced clock for tests. The zero value starts
// at the zero time; NewFake picks the origin. Fake is safe for
// concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

// fakeWaiter is one pending After call on a Fake.
type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a Fake reading start until advanced.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the fake forward by d (d may be negative, though tests
// rarely want that) and fires any After channels whose deadline has
// been reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	//lopc:allow deadlock fire's sends cannot block: every waiter channel is buffered (cap 1) and receives at most one send before being dropped
	f.fire()
}

// Set jumps the fake to t and fires any After channels whose deadline
// has been reached.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
	//lopc:allow deadlock fire's sends cannot block: every waiter channel is buffered (cap 1) and receives at most one send before being dropped
	f.fire()
}

// After returns a channel that receives the fake's time once Advance
// or Set moves the clock to or past now+d. A non-positive d fires
// immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	f.waiters = append(f.waiters, fakeWaiter{deadline: f.now.Add(d), ch: ch})
	//lopc:allow deadlock fire's sends cannot block: every waiter channel is buffered (cap 1) and receives at most one send before being dropped
	f.fire()
	return ch
}

// fire delivers to every waiter whose deadline has passed. Callers
// hold f.mu; the channels are buffered so delivery never blocks.
func (f *Fake) fire() {
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.deadline.After(f.now) {
			w.ch <- f.now
			continue
		}
		kept = append(kept, w)
	}
	f.waiters = kept
}

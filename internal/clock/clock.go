// Package clock puts wall-clock access behind an interface so that
// deterministic code paths never call time.Now directly. Production
// code takes a Clock (defaulting to System); tests inject a Fake and
// advance it by hand, making time-dependent behaviour — progress
// throttling, ETA estimates — exactly reproducible.
//
// This is the one sanctioned home for time.Now outside main packages:
// the nondeterminism analyzer (internal/lint) forbids direct wall-clock
// reads in every deterministic package, and this package is deliberately
// outside that list.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the real wall clock.
var System Clock = systemClock{}

// Fake is a manually advanced clock for tests. The zero value starts
// at the zero time; NewFake picks the origin. Fake is safe for
// concurrent use.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake reading start until advanced.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the fake forward by d (d may be negative, though tests
// rarely want that).
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Set jumps the fake to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}

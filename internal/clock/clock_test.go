package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemTracksWallClock(t *testing.T) {
	before := time.Now()
	got := System.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("System.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestFakeAdvance(t *testing.T) {
	origin := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	f := NewFake(origin)
	if got := f.Now(); !got.Equal(origin) {
		t.Fatalf("Now() = %v, want %v", got, origin)
	}
	f.Advance(90 * time.Second)
	if got, want := f.Now(), origin.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", got, want)
	}
	f.Set(origin)
	if got := f.Now(); !got.Equal(origin) {
		t.Fatalf("after Set, Now() = %v, want %v", got, origin)
	}
}

func TestFakeAfter(t *testing.T) {
	origin := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	f := NewFake(origin)
	ch := f.After(time.Minute)
	select {
	case got := <-ch:
		t.Fatalf("After fired at %v before Advance", got)
	default:
	}
	f.Advance(30 * time.Second)
	select {
	case got := <-ch:
		t.Fatalf("After fired at %v before its deadline", got)
	default:
	}
	f.Advance(30 * time.Second)
	select {
	case got := <-ch:
		if want := origin.Add(time.Minute); !got.Equal(want) {
			t.Errorf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire once the deadline passed")
	}
}

func TestFakeAfterImmediate(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	select {
	case got := <-f.After(0):
		if want := time.Unix(100, 0); !got.Equal(want) {
			t.Errorf("After(0) delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeAfterSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(time.Hour)
	f.Set(time.Unix(7200, 0))
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire when Set jumped past the deadline")
	}
}

func TestSystemAfter(t *testing.T) {
	select {
	case <-System.After(0):
	case <-time.After(5 * time.Second):
		t.Fatal("System.After(0) did not fire")
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := f.Now(), time.Unix(8, 0); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}

package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemTracksWallClock(t *testing.T) {
	before := time.Now()
	got := System.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("System.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestFakeAdvance(t *testing.T) {
	origin := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	f := NewFake(origin)
	if got := f.Now(); !got.Equal(origin) {
		t.Fatalf("Now() = %v, want %v", got, origin)
	}
	f.Advance(90 * time.Second)
	if got, want := f.Now(), origin.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", got, want)
	}
	f.Set(origin)
	if got := f.Now(); !got.Equal(origin) {
		t.Fatalf("after Set, Now() = %v, want %v", got, origin)
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := f.Now(), time.Unix(8, 0); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}

// Package calib closes the model-in-the-loop feedback edge: the serve
// layer measures its own queue waits and service times, and this
// package turns those live sample streams into a continuously refit
// (St, So, C²) parameterization of the client-server work-pile model —
// the parameters internal/fit otherwise calibrates offline from CSV
// sweeps.
//
// The Estimator consumes three per-request streams, delivered through
// the obs.Histogram sample tap (or called directly): service time
// (solver-slot occupancy), queue wait, and dispatch overhead (total
// latency minus wait minus service, ≈ the model's two network trips).
// Every Window service samples it closes a window: service moments give
// So and C² directly, and fit.ClientServerWindow inverts the AMVA model
// — the same Nelder–Mead machinery as the offline fits — to recover
// (W, St) from the window's throughput, mean server response, and mean
// overhead.
//
// Windows feed two mechanisms:
//
//   - Refit-and-compare: a clean window's fit is blended into the
//     running parameterization with an EWMA (weight Alpha), so the
//     published fit tracks slow drift without chasing noise.
//   - CUSUM drift detection: each window's mean service time is
//     standardized against the current fit (z = (m − So)/(s/√n)) and
//     accumulated into a two-sided CUSUM. When either side crosses the
//     decision threshold the estimator declares drift, adopts the
//     window's fit wholesale (the old regime's history is stale), and
//     resets the detector. The lopc_model_drift gauge holds 1 until the
//     next clean window confirms re-convergence.
//
// All timekeeping goes through an injected clock.Clock, so every
// behavior — window throughput, drift latency, the exposition of the
// calib metrics — is fake-clock testable. Times are microseconds
// throughout, matching the serve layer's histograms.
package calib

import (
	"math"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/fit"
	"repro/internal/obs"
)

// Defaults for Config's zero fields.
const (
	DefaultWindow = 256
	DefaultAlpha  = 0.25
	DefaultDriftK = 0.5
	DefaultDriftH = 5.0
	// zCap bounds one window's standardized residual so a single wild
	// window cannot saturate the CUSUM by itself (and so a zero-variance
	// window with a real shift contributes a large finite step).
	zCap = 8.0
)

// Config tunes an Estimator.
type Config struct {
	// P is the modeled closed client population (concurrent callers
	// plus queued requests); Ps the server (worker) count. Both are
	// required: the refit inverts a closed model and must know its
	// population split.
	P, Ps int
	// Window is the number of service samples per refit window.
	// Defaults to DefaultWindow.
	Window int
	// Alpha is the EWMA weight a clean window's fit receives when
	// blended into the running fit. Defaults to DefaultAlpha.
	Alpha float64
	// DriftK is the CUSUM slack per window in standard errors, and
	// DriftH the decision threshold; defaults DefaultDriftK/DriftH.
	DriftK, DriftH float64
	// Clock supplies window timestamps. nil means the system clock;
	// tests inject a clock.Fake.
	Clock clock.Clock
	// Registry, when non-nil, receives the calib metrics: the
	// lopc_model_drift gauge, refit/drift counters, per-stream sample
	// counters, and per-parameter gauges.
	Registry *obs.Registry
	// Observer, when non-nil, sees every model solve the window refits
	// make (the serve layer passes its ConvRecorder).
	Observer obs.SolveObserver
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.DriftK <= 0 {
		c.DriftK = DefaultDriftK
	}
	if c.DriftH <= 0 {
		c.DriftH = DefaultDriftH
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// WindowStats describes the last closed window.
type WindowStats struct {
	// N is the service-sample count (the window size).
	N int `json:"n"`
	// ElapsedUS is the wall span of the window on the injected clock.
	ElapsedUS float64 `json:"elapsed_us"`
	// X is the window throughput in requests per microsecond.
	X float64 `json:"x"`
	// MeanServiceUS, ServiceC2, MeanWaitUS, MeanOverheadUS are the
	// window's stream moments.
	MeanServiceUS  float64 `json:"mean_service_us"`
	ServiceC2      float64 `json:"service_c2"`
	MeanWaitUS     float64 `json:"mean_wait_us"`
	MeanOverheadUS float64 `json:"mean_overhead_us"`
	// Z is the standardized service residual the CUSUM consumed (0 for
	// the first window, which has no fit to compare against).
	Z float64 `json:"z"`
	// FitOK reports whether the window's refit produced a usable fit.
	FitOK bool `json:"fit_ok"`
	// FitErr carries the refit error when FitOK is false.
	FitErr string `json:"fit_err,omitempty"`
}

// Drift describes the CUSUM detector state.
type Drift struct {
	// Active is true from the window that crossed the threshold until
	// the next clean window confirms re-convergence.
	Active bool `json:"active"`
	// Events counts threshold crossings since the estimator started.
	Events int `json:"events"`
	// Pos and Neg are the current one-sided CUSUM accumulators; K and H
	// the configured slack and threshold.
	Pos float64 `json:"pos"`
	Neg float64 `json:"neg"`
	K   float64 `json:"k"`
	H   float64 `json:"h"`
}

// Samples counts the stream observations consumed so far.
type Samples struct {
	Service  int64 `json:"service"`
	Wait     int64 `json:"wait"`
	Overhead int64 `json:"overhead"`
}

// Snapshot is a point-in-time copy of the estimator's state, shaped for
// the /v1/calibration endpoint.
type Snapshot struct {
	// Ready reports whether a fit has been produced; Fit is meaningless
	// until it is.
	Ready bool `json:"ready"`
	// Fit is the current blended parameterization (microseconds).
	Fit fit.WindowFit `json:"fit"`
	// P and Ps echo the modeled population split.
	P  int `json:"p"`
	Ps int `json:"ps"`
	// WindowSize is the refit window; Pending the service samples
	// collected toward the next window.
	WindowSize int `json:"window_size"`
	Pending    int `json:"pending"`
	// Windows counts closed windows; Refits successful refits;
	// RefitFailures windows whose refit errored (stale fit kept).
	Windows       int `json:"windows"`
	Refits        int `json:"refits"`
	RefitFailures int `json:"refit_failures"`
	// LastWindow is the most recently closed window.
	LastWindow WindowStats `json:"last_window"`
	Drift      Drift       `json:"drift"`
	Samples    Samples     `json:"samples"`
}

// Estimator is the streaming (St, So, C²) calibrator. Construct with
// New; feed it with ObserveService/ObserveWait/ObserveOverhead (or wire
// those to obs.Histogram taps); read it with Snapshot and Params.
// All methods are safe for concurrent use.
type Estimator struct {
	cfg Config
	clk clock.Clock

	mu       sync.Mutex
	winStart time.Time
	// Welford accumulators for the current window's service samples.
	n               int
	svcMean, svcM2  float64
	waitSum         float64
	waitN           int64
	ohSum           float64
	ohN             int64
	totals          Samples
	ready           bool
	cur             fit.WindowFit
	windows, refits int
	refitFails      int
	gPos, gNeg      float64
	driftActive     bool
	driftEvents     int
	last            WindowStats

	mDrift       *obs.Gauge
	mRefits      *obs.Counter
	mRefitFails  *obs.Counter
	mDriftEvents *obs.Counter
	mSvc         *obs.Counter
	mWait        *obs.Counter
	mOh          *obs.Counter
}

// New builds an Estimator. The configured population split must satisfy
// 2 <= P and 1 <= Ps < P (the closed model's requirement); New panics
// otherwise — it is a wiring error, not a runtime condition.
func New(cfg Config) *Estimator {
	cfg = cfg.withDefaults()
	if cfg.P < 2 || cfg.Ps < 1 || cfg.Ps >= cfg.P {
		panic("calib: need 2 <= P and 1 <= Ps < P")
	}
	e := &Estimator{cfg: cfg, clk: cfg.Clock, winStart: cfg.Clock.Now()}
	if reg := cfg.Registry; reg != nil {
		e.mDrift = reg.Gauge("lopc_model_drift",
			"1 while the calibrator's CUSUM detector has declared drift, else 0.", nil)
		e.mRefits = reg.Counter("lopc_calib_window_refits_total",
			"Traffic windows successfully refit into the running parameterization.", nil)
		e.mRefitFails = reg.Counter("lopc_calib_window_refit_failures_total",
			"Traffic windows whose refit failed (previous fit kept).", nil)
		e.mDriftEvents = reg.Counter("lopc_calib_drift_events_total",
			"CUSUM drift detections since start.", nil)
		sampleHelp := "Calibration samples consumed, by stream."
		e.mSvc = reg.Counter("lopc_calib_samples_total", sampleHelp, obs.Labels{"stream": "service"})
		e.mWait = reg.Counter("lopc_calib_samples_total", sampleHelp, obs.Labels{"stream": "wait"})
		e.mOh = reg.Counter("lopc_calib_samples_total", sampleHelp, obs.Labels{"stream": "overhead"})
		// Per-parameter gauges read the live fit at scrape time; they
		// report 0 until the first window lands.
		fitGauge := func(name, help string, f func(fit.WindowFit) float64) {
			reg.GaugeFunc(name, help, nil, func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				if !e.ready {
					return 0
				}
				return f(e.cur)
			})
		}
		fitGauge("lopc_calib_st_us", "Fitted network/dispatch latency St, microseconds.",
			func(f fit.WindowFit) float64 { return f.St })
		fitGauge("lopc_calib_so_us", "Fitted handler service time So, microseconds.",
			func(f fit.WindowFit) float64 { return f.So })
		fitGauge("lopc_calib_w_us", "Fitted client think time W, microseconds.",
			func(f fit.WindowFit) float64 { return f.W })
		fitGauge("lopc_calib_c2", "Fitted squared coefficient of variation of service.",
			func(f fit.WindowFit) float64 { return f.C2 })
	}
	return e
}

// ObserveService records one service-time sample (microseconds). The
// Window-th sample closes the current window and runs the refit and
// drift detector synchronously on the calling goroutine — a bounded
// amount of work (one Nelder–Mead fit over a closed-form model) every
// Window requests.
func (e *Estimator) ObserveService(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mSvc != nil {
		e.mSvc.Inc()
	}
	e.totals.Service++
	e.n++
	d := v - e.svcMean
	e.svcMean += d / float64(e.n)
	e.svcM2 += d * (v - e.svcMean)
	if e.n >= e.cfg.Window {
		e.closeWindow()
	}
}

// ObserveWait records one queue-wait sample (microseconds).
func (e *Estimator) ObserveWait(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mWait != nil {
		e.mWait.Inc()
	}
	e.totals.Wait++
	e.waitSum += v
	e.waitN++
}

// ObserveOverhead records one dispatch-overhead sample (microseconds):
// per-request time outside queueing and service, ≈ 2·St.
func (e *Estimator) ObserveOverhead(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mOh != nil {
		e.mOh.Inc()
	}
	e.totals.Overhead++
	e.ohSum += v
	e.ohN++
}

// closeWindow refits the collected window and runs the drift detector.
// Caller holds e.mu.
func (e *Estimator) closeWindow() {
	now := e.clk.Now()
	stats := WindowStats{
		N:             e.n,
		ElapsedUS:     float64(now.Sub(e.winStart)) / float64(time.Microsecond),
		MeanServiceUS: e.svcMean,
	}
	variance := e.svcM2 / float64(e.n)
	if e.svcMean > 0 {
		stats.ServiceC2 = variance / (e.svcMean * e.svcMean)
	}
	if e.waitN > 0 {
		stats.MeanWaitUS = e.waitSum / float64(e.waitN)
	}
	if e.ohN > 0 {
		stats.MeanOverheadUS = e.ohSum / float64(e.ohN)
	}
	if stats.ElapsedUS > 0 {
		stats.X = float64(e.n) / stats.ElapsedUS
	}
	e.windows++

	// CUSUM on the standardized service residual against the current
	// fit. The standard error of the window mean is s/√n; a capped z
	// keeps one window's influence bounded.
	drifted := false
	if e.ready {
		se := math.Sqrt(variance / float64(e.n))
		resid := stats.MeanServiceUS - e.cur.So
		var z float64
		switch {
		case se > 0:
			z = resid / se
		//lopc:allow floateq a zero-variance window saturates the statistic unless its mean sits exactly on the fit
		case resid != 0:
			z = math.Copysign(zCap, resid)
		}
		z = math.Max(-zCap, math.Min(zCap, z))
		stats.Z = z
		e.gPos = math.Max(0, e.gPos+z-e.cfg.DriftK)
		e.gNeg = math.Max(0, e.gNeg-z-e.cfg.DriftK)
		drifted = e.gPos > e.cfg.DriftH || e.gNeg > e.cfg.DriftH
	}

	wf, err := fit.ClientServerWindow(fit.WindowObs{
		P: e.cfg.P, Ps: e.cfg.Ps,
		X:        stats.X,
		Rs:       stats.MeanWaitUS + stats.MeanServiceUS,
		So:       stats.MeanServiceUS,
		C2:       stats.ServiceC2,
		Overhead: stats.MeanOverheadUS,
	}, e.cfg.Observer)
	switch {
	case err != nil:
		stats.FitErr = err.Error()
		e.refitFails++
		if e.mRefitFails != nil {
			e.mRefitFails.Inc()
		}
	case !e.ready || drifted:
		// First window, or a confirmed regime change: adopt wholesale.
		stats.FitOK = true
		e.cur = wf
		e.ready = true
		e.bumpRefit()
	default:
		// Clean window: blend, and confirm recovery from any prior
		// drift.
		stats.FitOK = true
		a := e.cfg.Alpha
		e.cur.W = (1-a)*e.cur.W + a*wf.W
		e.cur.St = (1-a)*e.cur.St + a*wf.St
		e.cur.So = (1-a)*e.cur.So + a*wf.So
		e.cur.C2 = (1-a)*e.cur.C2 + a*wf.C2
		e.cur.Loss, e.cur.Method = wf.Loss, wf.Method
		e.bumpRefit()
		e.setDrift(false)
	}
	if drifted {
		e.driftEvents++
		if e.mDriftEvents != nil {
			e.mDriftEvents.Inc()
		}
		e.setDrift(true)
		e.gPos, e.gNeg = 0, 0
	}

	e.last = stats
	e.n, e.svcMean, e.svcM2 = 0, 0, 0
	e.waitSum, e.waitN = 0, 0
	e.ohSum, e.ohN = 0, 0
	e.winStart = now
}

// bumpRefit counts one successful refit. Caller holds e.mu.
func (e *Estimator) bumpRefit() {
	e.refits++
	if e.mRefits != nil {
		e.mRefits.Inc()
	}
}

// setDrift updates the drift flag and its gauge. Caller holds e.mu.
func (e *Estimator) setDrift(active bool) {
	e.driftActive = active
	if e.mDrift != nil {
		if active {
			e.mDrift.Set(1)
		} else {
			e.mDrift.Set(0)
		}
	}
}

// Params returns the current blended fit and whether one exists yet.
func (e *Estimator) Params() (fit.WindowFit, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur, e.ready
}

// Population returns the modeled (P, Ps) split the estimator fits
// against.
func (e *Estimator) Population() (p, ps int) {
	return e.cfg.P, e.cfg.Ps
}

// Snapshot copies the estimator's full state.
func (e *Estimator) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Snapshot{
		Ready:         e.ready,
		Fit:           e.cur,
		P:             e.cfg.P,
		Ps:            e.cfg.Ps,
		WindowSize:    e.cfg.Window,
		Pending:       e.n,
		Windows:       e.windows,
		Refits:        e.refits,
		RefitFailures: e.refitFails,
		LastWindow:    e.last,
		Drift: Drift{
			Active: e.driftActive,
			Events: e.driftEvents,
			Pos:    e.gPos,
			Neg:    e.gNeg,
			K:      e.cfg.DriftK,
			H:      e.cfg.DriftH,
		},
		Samples: e.totals,
	}
}

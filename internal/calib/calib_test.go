package calib

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rng"
)

// truth is the ground-truth parameterization every synthetic-traffic
// test generates from: the estimator must invert traffic drawn from the
// model back to these numbers.
var truth = core.ClientServerParams{P: 24, Ps: 4, W: 1800, St: 120, So: 400, C2: 1}

// traffic drives synthetic requests generated from a ground-truth model
// solution into an estimator on a fake clock: inter-arrivals at the
// model's exact throughput, exponential queue waits around the model's
// mean wait, service times from the distribution family matching
// (So, C²) scaled by svcScale, and the constant 2·St overhead.
type traffic struct {
	t        *testing.T
	clk      *clock.Fake
	e        *Estimator
	str      *rng.Stream
	svc      dist.Distribution
	interUS  float64
	waitUS   float64
	svcScale float64
}

func newTraffic(t *testing.T, e *Estimator, clk *clock.Fake, seed uint64) *traffic {
	t.Helper()
	res, err := core.ClientServer(truth)
	if err != nil {
		t.Fatalf("solving truth: %v", err)
	}
	return &traffic{
		t:        t,
		clk:      clk,
		e:        e,
		str:      rng.New(seed),
		svc:      dist.FromMeanSCV(truth.So, truth.C2),
		interUS:  1 / res.X,
		waitUS:   res.Rs - truth.So,
		svcScale: 1,
	}
}

// setScale moves the generator to a regime where every service time is
// k× the truth. The closed clients feel the slowdown, so throughput and
// queue wait shift with it — the generator re-solves the model at the
// scaled So to stay self-consistent, exactly as live traffic would.
func (g *traffic) setScale(k float64) {
	g.t.Helper()
	tr := truth
	tr.So *= k
	res, err := core.ClientServer(tr)
	if err != nil {
		g.t.Fatalf("solving scaled truth: %v", err)
	}
	g.interUS = 1 / res.X
	g.waitUS = res.Rs - tr.So
	g.svcScale = k
}

// run feeds n requests.
func (g *traffic) run(n int) {
	for i := 0; i < n; i++ {
		g.clk.Advance(time.Duration(g.interUS * float64(time.Microsecond)))
		g.e.ObserveWait(g.waitUS * g.str.ExpFloat64())
		g.e.ObserveOverhead(2 * truth.St)
		g.e.ObserveService(g.svcScale * g.svc.Sample(g.str))
	}
}

func newTestEstimator(t *testing.T, window int, reg *obs.Registry) (*Estimator, *clock.Fake) {
	t.Helper()
	clk := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	e := New(Config{P: truth.P, Ps: truth.Ps, Window: window, Clock: clk, Registry: reg})
	return e, clk
}

// TestEstimatorConvergence: on synthetic traffic with known ground
// truth, the online estimator converges to (St, So, C²) — and W —
// within 10% relative error.
func TestEstimatorConvergence(t *testing.T) {
	const window = 512
	e, clk := newTestEstimator(t, window, nil)
	g := newTraffic(t, e, clk, 7)
	g.run(20 * window)

	f, ok := e.Params()
	if !ok {
		t.Fatal("estimator not ready after 20 windows")
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("%s = %v, want %v within 10%% (off by %.1f%%)", name, got, want, 100*rel)
		}
	}
	within("St", f.St, truth.St)
	within("So", f.So, truth.So)
	within("C2", f.C2, truth.C2)
	within("W", f.W, truth.W)

	s := e.Snapshot()
	if s.Windows != 20 || s.Refits != 20 || s.RefitFailures != 0 {
		t.Errorf("windows/refits/failures = %d/%d/%d, want 20/20/0", s.Windows, s.Refits, s.RefitFailures)
	}
	if s.Drift.Events != 0 || s.Drift.Active {
		t.Errorf("stationary convergence run saw drift: %+v", s.Drift)
	}
}

// TestEstimatorDriftDetection: a 2× step in injected service time fires
// the CUSUM detector within 5 windows, the estimator re-adopts the new
// regime, and the drift flag clears on the next clean window.
func TestEstimatorDriftDetection(t *testing.T) {
	const window = 512
	e, clk := newTestEstimator(t, window, nil)
	g := newTraffic(t, e, clk, 11)
	g.run(10 * window) // converge on the stationary regime
	if s := e.Snapshot(); s.Drift.Events != 0 {
		t.Fatalf("drift before the step: %+v", s.Drift)
	}

	g.setScale(2) // the injected step: every service time doubles
	fired := -1
	for w := 1; w <= 5; w++ {
		g.run(window)
		if s := e.Snapshot(); s.Drift.Events > 0 {
			fired = w
			if !s.Drift.Active {
				t.Error("drift fired but Active is false")
			}
			break
		}
	}
	if fired < 0 {
		t.Fatalf("2x service step not detected within 5 windows: %+v", e.Snapshot().Drift)
	}
	t.Logf("drift fired %d window(s) after the step", fired)

	// The detector's adoption resets the fit to the new regime…
	g.run(5 * window)
	f, _ := e.Params()
	if rel := math.Abs(f.So-2*truth.So) / (2 * truth.So); rel > 0.10 {
		t.Errorf("post-drift So = %v, want %v within 10%%", f.So, 2*truth.So)
	}
	// …and the flag clears once a clean window confirms it.
	if s := e.Snapshot(); s.Drift.Active {
		t.Errorf("drift still active %d windows after adoption: %+v", 5, s.Drift)
	}
}

// TestEstimatorStationaryNoFalsePositive: the same horizon as the drift
// scenario (15 windows) under stationary load fires nothing.
func TestEstimatorStationaryNoFalsePositive(t *testing.T) {
	const window = 512
	e, clk := newTestEstimator(t, window, nil)
	g := newTraffic(t, e, clk, 11) // the drift test's seed, without the step
	g.run(15 * window)
	if s := e.Snapshot(); s.Drift.Events != 0 || s.Drift.Active {
		t.Errorf("false positive under stationary load: %+v", s.Drift)
	}
}

// TestEstimatorMetricsExposition: the calib metrics render
// deterministically and carry the documented names.
func TestEstimatorMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	e, clk := newTestEstimator(t, 4, reg)
	for i := 0; i < 4; i++ {
		clk.Advance(1000 * time.Microsecond)
		e.ObserveWait(50)
		e.ObserveOverhead(20)
		e.ObserveService(200)
	}
	var a, b strings.Builder
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same calib state differ")
	}
	for _, want := range []string{
		"\nlopc_model_drift 0\n",
		"\nlopc_calib_window_refits_total 1\n",
		"\nlopc_calib_window_refit_failures_total 0\n",
		"\nlopc_calib_drift_events_total 0\n",
		`lopc_calib_samples_total{stream="service"} 4`,
		`lopc_calib_samples_total{stream="wait"} 4`,
		`lopc_calib_samples_total{stream="overhead"} 4`,
		"\nlopc_calib_so_us 200\n",
		"\nlopc_calib_c2 0\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

// TestEstimatorRefitFailureKeepsFit: a window the model cannot explain
// (zero elapsed time on the clock) counts a failure and leaves the
// previous fit untouched.
func TestEstimatorRefitFailureKeepsFit(t *testing.T) {
	e, clk := newTestEstimator(t, 4, nil)
	g := newTraffic(t, e, clk, 3)
	g.run(4)
	before, ok := e.Params()
	if !ok {
		t.Fatal("no fit after first window")
	}
	// Second window with no clock advance: X is undefined (elapsed 0).
	for i := 0; i < 4; i++ {
		e.ObserveService(200)
	}
	s := e.Snapshot()
	if s.RefitFailures != 1 {
		t.Fatalf("refit failures = %d, want 1", s.RefitFailures)
	}
	if s.LastWindow.FitOK || s.LastWindow.FitErr == "" {
		t.Errorf("failed window not reported: %+v", s.LastWindow)
	}
	after, _ := e.Params()
	if after != before {
		t.Errorf("failed refit changed the fit: %+v -> %+v", before, after)
	}
}

// TestEstimatorRejectsBadSamples: NaN and negative samples are dropped
// before they can poison a window.
func TestEstimatorRejectsBadSamples(t *testing.T) {
	e, _ := newTestEstimator(t, 4, nil)
	e.ObserveService(math.NaN())
	e.ObserveService(-1)
	e.ObserveWait(math.NaN())
	e.ObserveOverhead(-5)
	s := e.Snapshot()
	if s.Samples != (Samples{}) || s.Pending != 0 {
		t.Errorf("bad samples were counted: %+v pending %d", s.Samples, s.Pending)
	}
}

// TestNewValidatesPopulation: a wiring error panics.
func TestNewValidatesPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted Ps >= P")
		}
	}()
	New(Config{P: 2, Ps: 2})
}

package trace

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func fakeClk() *clock.Fake {
	return clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

func readBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return data
}

// TestSpansDeterministicTimestamps: span Ts/Dur come from the injected
// clock, microseconds since construction.
func TestSpansDeterministicTimestamps(t *testing.T) {
	fake := fakeClk()
	s := NewSpans(fake)
	fake.Advance(100 * time.Microsecond)
	end := s.Start("job", "solve")
	fake.Advance(250 * time.Microsecond)
	end(map[string]any{"index": 0})

	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []Event
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var slice *Event
	for i := range events {
		if events[i].Phase == "X" {
			slice = &events[i]
		}
	}
	if slice == nil {
		t.Fatalf("no complete slice in %s", b.String())
	}
	if slice.Ts != 100 || slice.Dur != 250 || slice.Name != "solve" || slice.Cat != "job" {
		t.Errorf("slice = %+v, want Ts 100 Dur 250 name solve cat job", *slice)
	}
}

// TestSpansLaneAllocation: overlapping spans get distinct lanes;
// sequential spans reuse lane 1.
func TestSpansLaneAllocation(t *testing.T) {
	fake := fakeClk()
	s := NewSpans(fake)
	endA := s.Start("job", "a")
	endB := s.Start("job", "b") // overlaps a: lane 2
	endA(nil)
	endB(nil)
	endC := s.Start("job", "c") // both lanes free again: lane 1

	fake.Advance(time.Microsecond)
	endC(nil)

	lanes := map[string]int{}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Phase == "X" {
			lanes[e.Name] = e.Tid
		}
	}
	if lanes["a"] == lanes["b"] {
		t.Errorf("overlapping spans share lane %d", lanes["a"])
	}
	if lanes["c"] != 1 {
		t.Errorf("sequential span landed on lane %d, want reuse of lane 1", lanes["c"])
	}
}

// TestSpansMaxEvents: the cap drops spans and flags truncation.
func TestSpansMaxEvents(t *testing.T) {
	s := NewSpans(fakeClk())
	s.MaxEvents = 2
	for i := 0; i < 5; i++ {
		s.Start("job", "x")(nil)
	}
	if s.Len() != 2 || !s.Truncated() {
		t.Errorf("Len = %d, Truncated = %v; want 2, true", s.Len(), s.Truncated())
	}
}

// TestSpansWriteFile: WriteFile produces a parseable trace.
func TestSpansWriteFile(t *testing.T) {
	s := NewSpans(fakeClk())
	s.Start("job", "x")(nil)
	path := t.TempDir() + "/trace.json"
	if err := s.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data := readBytes(t, path)
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("file is not valid trace JSON: %v", err)
	}
	if len(events) < 2 {
		t.Errorf("trace has %d events, want metadata plus the span", len(events))
	}
}

package trace

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Spans collects span-style events — runner job executions, serve
// request handling — for Chrome-trace export, reusing the same Event
// encoding as Tracer so the output opens in chrome://tracing and
// Perfetto. Unlike Tracer (which replays a simulation's virtual time),
// Spans brackets real operations on an injected clock.
//
// Overlapping spans are assigned distinct lanes (Chrome-trace thread
// ids): a span takes the lowest free lane at Start and frees it when
// closed, so the rendered track count equals the peak concurrency.
// All methods are safe for concurrent use.
type Spans struct {
	// MaxEvents caps collection (0 = unlimited); once reached, further
	// spans are dropped and Truncated reports true. Set it before the
	// first Start.
	MaxEvents int
	// Process names the Chrome-trace process; empty means "lopc".
	Process string

	mu        sync.Mutex
	clk       clock.Clock
	start     time.Time
	events    []Event
	truncated bool
	free      []int // freed lanes, reused lowest-first
	next      int   // next fresh lane (1-based)
}

// NewSpans returns a collector whose timestamps come from clk (nil
// means clock.System; tests inject a clock.Fake so recorded spans are
// deterministic). Timestamps are microseconds since NewSpans was
// called.
func NewSpans(clk clock.Clock) *Spans {
	if clk == nil {
		clk = clock.System
	}
	return &Spans{clk: clk, start: clk.Now()}
}

// Start opens a span and returns the func that closes it, recording a
// complete ("X") slice with the given category, name, and the closing
// args. The returned func must be called exactly once; calling it from
// a different goroutine than Start is fine.
func (s *Spans) Start(cat, name string) func(args map[string]any) {
	s.mu.Lock()
	var lane int
	if n := len(s.free); n > 0 {
		lane = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.next++
		lane = s.next
	}
	s.mu.Unlock()
	begin := s.clk.Now()
	return func(args map[string]any) {
		end := s.clk.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.free = append(s.free, lane)
		sort.Sort(sort.Reverse(sort.IntSlice(s.free)))
		if s.MaxEvents > 0 && len(s.events) >= s.MaxEvents {
			s.truncated = true
			return
		}
		s.events = append(s.events, Event{
			Name: name, Phase: "X",
			Ts:  float64(begin.Sub(s.start).Microseconds()),
			Dur: float64(end.Sub(begin).Microseconds()),
			Pid: 0, Tid: lane, Cat: cat, Args: args,
		})
	}
}

// Len returns the number of closed spans collected so far.
func (s *Spans) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Truncated reports whether the collector hit MaxEvents and dropped
// spans.
func (s *Spans) Truncated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncated
}

// WriteJSON emits the collected spans in Chrome's JSON array format
// with process/lane name metadata. Spans are emitted sorted by start
// time so output for a given set of spans is deterministic regardless
// of completion order.
func (s *Spans) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	events := append([]Event(nil), s.events...)
	lanes := s.next
	s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts < events[j].Ts {
			return true
		}
		if events[j].Ts < events[i].Ts {
			return false
		}
		return events[i].Tid < events[j].Tid
	})
	process := s.Process
	if process == "" {
		process = "lopc"
	}
	out := make([]Event, 0, len(events)+lanes+1)
	out = append(out, Event{Name: "process_name", Phase: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": process}})
	for lane := 1; lane <= lanes; lane++ {
		out = append(out, Event{Name: "thread_name", Phase: "M", Pid: 0, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)}})
	}
	out = append(out, events...)
	return writeEvents(w, out)
}

// WriteFile writes the trace JSON to path.
func (s *Spans) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := s.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace: writing span trace %s: %w", path, werr)
	}
	return nil
}

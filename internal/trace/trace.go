// Package trace records a machine simulation as a Chrome trace (the
// JSON format consumed by chrome://tracing and Perfetto), so the
// interleaving of computation threads, handler service, and message
// flights can be inspected visually.
//
// Each simulated node is rendered as a process with two tracks: the
// computation thread and the handler processor. Handler service and
// thread execution appear as complete ("X") slices; each message's
// flight from injection to handler start is a flow arrow ("s"/"f").
// Times are emitted in microseconds with one simulated cycle mapped to
// one microsecond.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/machine"
)

// Track ids within each node's process.
const (
	tidThread  = 1
	tidHandler = 2
)

// Event is one Chrome trace event. Field names follow the Trace Event
// Format specification.
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer implements machine.Observer, accumulating events in memory.
// Attach it via machine.Config.Observer, run the simulation, then call
// WriteJSON. The zero value is ready to use.
type Tracer struct {
	events []Event
	// MaxEvents caps collection (0 = unlimited); traces of long runs
	// otherwise grow without bound. Once the cap is reached further
	// events are dropped and Truncated reports true.
	MaxEvents int
	truncated bool
}

// Truncated reports whether the tracer hit MaxEvents and dropped
// events.
func (t *Tracer) Truncated() bool { return t.truncated }

// Len returns the number of collected events.
func (t *Tracer) Len() int { return len(t.events) }

func (t *Tracer) add(e Event) {
	if t.MaxEvents > 0 && len(t.events) >= t.MaxEvents {
		t.truncated = true
		return
	}
	t.events = append(t.events, e)
}

// MessageSent implements machine.Observer: the start of a flow arrow.
func (t *Tracer) MessageSent(msg *machine.Message, at float64) {
	t.add(Event{
		Name: msg.Kind.String(), Phase: "s", Ts: at,
		Pid: msg.Src, Tid: tidHandler,
		ID: fmt.Sprintf("msg%d", msg.ID), Cat: "net",
	})
}

// MessageArrived implements machine.Observer: the end of a flow arrow.
func (t *Tracer) MessageArrived(msg *machine.Message, at float64) {
	t.add(Event{
		Name: msg.Kind.String(), Phase: "f", Ts: at,
		Pid: msg.Dst, Tid: tidHandler,
		ID: fmt.Sprintf("msg%d", msg.ID), Cat: "net", BP: "e",
	})
}

// HandlerStart implements machine.Observer. The slice is emitted at
// HandlerEnd, when the duration is known; the start is kept implicitly
// in the message's ServiceStart timestamp.
func (t *Tracer) HandlerStart(node int, msg *machine.Message, at float64) {}

// HandlerEnd implements machine.Observer.
func (t *Tracer) HandlerEnd(node int, msg *machine.Message, at float64) {
	t.add(Event{
		Name: msg.Kind.String() + " handler", Phase: "X",
		Ts: msg.ServiceStart, Dur: at - msg.ServiceStart,
		Pid: node, Tid: tidHandler, Cat: "handler",
		Args: map[string]any{
			"src": msg.Src, "dst": msg.Dst, "msg": msg.ID,
			"queued": msg.ServiceStart - msg.Arrived,
		},
	})
}

// ThreadRun implements machine.Observer.
func (t *Tracer) ThreadRun(node int, start, end float64) {
	t.add(Event{
		Name: "compute", Phase: "X", Ts: start, Dur: end - start,
		Pid: node, Tid: tidThread, Cat: "thread",
	})
}

// WriteJSON emits the trace in Chrome's JSON array format, including
// process/thread name metadata so the viewer labels each node.
func (t *Tracer) WriteJSON(w io.Writer) error {
	pids := map[int]bool{}
	for _, e := range t.events {
		pids[e.Pid] = true
	}
	// Emit metadata in sorted pid order: map iteration order would make
	// the trace bytes differ between identical runs.
	ids := make([]int, 0, len(pids))
	for pid := range pids {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	out := make([]Event, 0, len(t.events)+3*len(ids))
	for _, pid := range ids {
		out = append(out,
			Event{Name: "process_name", Phase: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("node %d", pid)}},
			Event{Name: "thread_name", Phase: "M", Pid: pid, Tid: tidThread,
				Args: map[string]any{"name": "thread"}},
			Event{Name: "thread_name", Phase: "M", Pid: pid, Tid: tidHandler,
				Args: map[string]any{"name": "handlers"}},
		)
	}
	out = append(out, t.events...)
	return writeEvents(w, out)
}

// writeEvents encodes events as Chrome's JSON array format; shared by
// Tracer (simulation traces) and Spans (job/request spans).
func writeEvents(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

var _ machine.Observer = (*Tracer)(nil)

package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/machine"
)

// runTraced drives a small blocking-request workload with a tracer
// attached and returns the tracer.
func runTraced(t *testing.T, maxEvents int) *Tracer {
	t.Helper()
	tr := &Tracer{MaxEvents: maxEvents}
	m := machine.New(machine.Config{
		P:          4,
		NetLatency: dist.NewDeterministic(40),
		Seed:       1,
		Observer:   tr,
	})
	for i := 0; i < 4; i++ {
		cycles := 0
		blocked := false
		i := i
		m.SetProgram(i, machine.ProgramFunc(func(mm *machine.Machine, self int) machine.Action {
			if blocked {
				blocked = false
				cycles++
				if cycles >= 5 {
					return machine.Halt()
				}
			}
			if cycles >= 0 && !blocked {
				// Alternate compute and blocking request.
				blocked = true
				dst := (self + 1) % 4
				return machine.SendAndBlock(&machine.Message{
					Src: self, Dst: dst, Kind: machine.KindRequest,
					Service: dist.NewDeterministic(100),
					OnComplete: func(mm *machine.Machine, msg *machine.Message) {
						mm.Send(&machine.Message{
							Src: msg.Dst, Dst: msg.Src, Kind: machine.KindReply,
							Service: dist.NewDeterministic(100),
							OnComplete: func(mm *machine.Machine, r *machine.Message) {
								mm.Unblock(r.Dst)
							},
						})
					},
				})
			}
			_ = i
			return machine.Halt()
		}))
	}
	m.Start()
	m.Run()
	return tr
}

func TestTraceProducesValidJSON(t *testing.T) {
	tr := runTraced(t, 0)
	if tr.Len() == 0 {
		t.Fatal("no events collected")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(events) <= tr.Len() {
		t.Errorf("expected metadata events in addition to %d collected", tr.Len())
	}
	phases := map[string]int{}
	for _, e := range events {
		phases[e["ph"].(string)]++
	}
	for _, ph := range []string{"X", "s", "f", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace", ph)
		}
	}
	// Flow starts and ends pair up.
	if phases["s"] != phases["f"] {
		t.Errorf("flow starts %d != flow ends %d", phases["s"], phases["f"])
	}
}

func TestTraceHandlerSlicesDoNotOverlapPerNode(t *testing.T) {
	tr := runTraced(t, 0)
	type slice struct{ ts, dur float64 }
	byNode := map[int][]slice{}
	for _, e := range tr.events {
		if e.Phase == "X" && e.Tid == tidHandler {
			byNode[e.Pid] = append(byNode[e.Pid], slice{e.Ts, e.Dur})
		}
	}
	if len(byNode) == 0 {
		t.Fatal("no handler slices")
	}
	for node, ss := range byNode {
		sort.Slice(ss, func(i, j int) bool { return ss[i].ts < ss[j].ts })
		for i := 1; i < len(ss); i++ {
			if ss[i].ts < ss[i-1].ts+ss[i-1].dur-1e-9 {
				t.Fatalf("node %d: handler slices overlap: %v then %v", node, ss[i-1], ss[i])
			}
		}
	}
}

func TestTraceThreadSlicesPositive(t *testing.T) {
	tr := runTraced(t, 0)
	// This workload has no Compute actions, so thread slices may be
	// absent; run one with compute to check.
	tr2 := &Tracer{}
	m := machine.New(machine.Config{
		P: 2, NetLatency: dist.NewDeterministic(10), Seed: 2, Observer: tr2,
	})
	n := 0
	m.SetProgram(0, machine.ProgramFunc(func(mm *machine.Machine, self int) machine.Action {
		if n >= 3 {
			return machine.Halt()
		}
		n++
		return machine.Compute(50)
	}))
	m.Start()
	m.Run()
	found := false
	for _, e := range tr2.events {
		if e.Tid == tidThread && e.Phase == "X" {
			found = true
			if e.Dur <= 0 {
				t.Errorf("non-positive thread slice: %+v", e)
			}
		}
	}
	if !found {
		t.Error("no thread slices recorded")
	}
	_ = tr
}

func TestTraceTruncation(t *testing.T) {
	tr := runTraced(t, 10)
	if tr.Len() != 10 {
		t.Fatalf("len = %d, want capped at 10", tr.Len())
	}
	if !tr.Truncated() {
		t.Fatal("tracer did not report truncation")
	}
}

func TestTraceMessageIDsUnique(t *testing.T) {
	tr := runTraced(t, 0)
	seen := map[string]int{}
	for _, e := range tr.events {
		if e.Phase == "s" {
			seen[e.ID]++
		}
	}
	for id, count := range seen {
		if count != 1 {
			t.Errorf("flow id %s started %d times", id, count)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no flow ids recorded")
	}
}

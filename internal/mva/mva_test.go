package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if _, err := Exact(nil, 5); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := Exact([]Center{{Demand: -1}}, 5); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := Exact([]Center{{Demand: 1}}, -1); err == nil {
		t.Error("negative population accepted")
	}
	if _, err := Bard([]Center{{Demand: math.NaN()}}, 1); err == nil {
		t.Error("NaN demand accepted")
	}
}

func TestZeroPopulation(t *testing.T) {
	res, err := Exact([]Center{{Kind: Queueing, Demand: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.X != 0 || res.Q[0] != 0 {
		t.Errorf("zero population gave X=%v Q=%v", res.X, res.Q[0])
	}
}

// TestSingleCustomer: with one customer there is never queueing, so the
// cycle time is the total demand for every solver.
func TestSingleCustomer(t *testing.T) {
	centers := []Center{
		{Kind: Delay, Demand: 100},
		{Kind: Queueing, Demand: 30},
		{Kind: Queueing, Demand: 20},
	}
	// Exact and Schweitzer see an empty queue with one customer;
	// Bard's arriving customer sees the time-average queue, which
	// includes itself, so Bard over-estimates even at n = 1 — that is
	// the approximation the paper accepts for its closed forms.
	for name, solve := range map[string]func([]Center, int) (Result, error){
		"exact": Exact, "schweitzer": Schweitzer,
	} {
		res, err := solve(centers, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.CycleTime-150) > 1e-9 {
			t.Errorf("%s: cycle time %v, want 150", name, res.CycleTime)
		}
		if math.Abs(res.X-1.0/150) > 1e-12 {
			t.Errorf("%s: X = %v, want 1/150", name, res.X)
		}
	}
	bard, err := Bard(centers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bard.CycleTime <= 150 {
		t.Errorf("Bard cycle time %v, expected above the contention-free 150", bard.CycleTime)
	}
}

// TestExactTwoCustomersByHand verifies the recursion against a hand
// computation: one queueing center D=1, one delay center D=1.
func TestExactTwoCustomersByHand(t *testing.T) {
	centers := []Center{
		{Kind: Queueing, Demand: 1},
		{Kind: Delay, Demand: 1},
	}
	// n=1: R = [1, 1], X = 1/2, Q = [1/2, 1/2].
	// n=2: Rq = 1·(1+1/2) = 1.5, Rd = 1, X = 2/2.5 = 0.8, Qq = 1.2.
	res, err := Exact(centers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.R[0]-1.5) > 1e-12 || math.Abs(res.R[1]-1) > 1e-12 {
		t.Errorf("R = %v, want [1.5 1]", res.R)
	}
	if math.Abs(res.X-0.8) > 1e-12 {
		t.Errorf("X = %v, want 0.8", res.X)
	}
	if math.Abs(res.Q[0]-1.2) > 1e-12 {
		t.Errorf("Q = %v, want [1.2 0.8]", res.Q)
	}
}

// TestLittleLawInvariant: for every solver, N = Σ Q and Q_k = X·R_k.
func TestLittleLawInvariant(t *testing.T) {
	f := func(d1, d2, d3 uint8, nRaw uint8) bool {
		centers := []Center{
			{Kind: Delay, Demand: 1 + float64(d1%100)},
			{Kind: Queueing, Demand: 1 + float64(d2%50)},
			{Kind: Queueing, Demand: 1 + float64(d3%50)},
		}
		n := int(nRaw%20) + 1
		for _, solve := range []func([]Center, int) (Result, error){Exact, Bard, Schweitzer} {
			res, err := solve(centers, n)
			if err != nil {
				return false
			}
			sum := 0.0
			for k := range centers {
				if math.Abs(res.Q[k]-res.X*res.R[k]) > 1e-6 {
					return false
				}
				sum += res.Q[k]
			}
			if math.Abs(sum-float64(n)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAsymptoticBounds: X(n) ≤ min(1/Dmax, n/ΣD), and approaches the
// bottleneck bound for large n (Lazowska et al. ch. 5).
func TestAsymptoticBounds(t *testing.T) {
	centers := []Center{
		{Kind: Delay, Demand: 50},
		{Kind: Queueing, Demand: 10},
		{Kind: Queueing, Demand: 5},
	}
	totalD := 65.0
	for _, n := range []int{1, 2, 5, 10, 50} {
		res, err := Exact(centers, n)
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Min(1.0/10, float64(n)/totalD)
		if res.X > bound+1e-9 {
			t.Errorf("n=%d: X = %v exceeds bound %v", n, res.X, bound)
		}
	}
	res, _ := Exact(centers, 100)
	if res.X < 0.99/10 {
		t.Errorf("large-n throughput %v does not approach bottleneck bound 0.1", res.X)
	}
}

// TestBardOverestimatesExact: Bard's arrival queue includes the arriving
// customer, so its response times exceed exact MVA's and its throughput
// is below (the direction of error the paper relies on).
func TestBardOverestimatesExact(t *testing.T) {
	centers := WorkpileNetwork(29, 3, 1500, 40, 131)
	for _, n := range []int{5, 15, 29} {
		exact, err := Exact(centers, n)
		if err != nil {
			t.Fatal(err)
		}
		bard, err := Bard(centers, n)
		if err != nil {
			t.Fatal(err)
		}
		if bard.X > exact.X+1e-9 {
			t.Errorf("n=%d: Bard X %v above exact %v", n, bard.X, exact.X)
		}
		if bard.CycleTime < exact.CycleTime-1e-9 {
			t.Errorf("n=%d: Bard cycle %v below exact %v", n, bard.CycleTime, exact.CycleTime)
		}
	}
}

// TestSchweitzerBetweenBardAndExact: Schweitzer's (n−1)/n correction
// sits between Bard and exact for these networks.
func TestSchweitzerBetweenBardAndExact(t *testing.T) {
	centers := WorkpileNetwork(29, 3, 1500, 40, 131)
	exact, _ := Exact(centers, 29)
	bard, _ := Bard(centers, 29)
	schw, _ := Schweitzer(centers, 29)
	if !(bard.X <= schw.X+1e-9 && schw.X <= exact.X+1e-9) {
		t.Errorf("ordering violated: bard %v, schweitzer %v, exact %v", bard.X, schw.X, exact.X)
	}
}

// TestApproximationErrorShrinksWithN: Bard's relative throughput error
// vs exact decreases as the population grows.
func TestApproximationErrorShrinksWithN(t *testing.T) {
	centers := []Center{
		{Kind: Delay, Demand: 500},
		{Kind: Queueing, Demand: 100},
	}
	relErr := func(n int) float64 {
		exact, _ := Exact(centers, n)
		bard, _ := Bard(centers, n)
		return math.Abs(bard.X-exact.X) / exact.X
	}
	// The error is not monotone at tiny populations, but it must decay
	// asymptotically (Bard's stated property).
	e8, e64, e256 := relErr(8), relErr(64), relErr(256)
	if e64 >= e8 {
		t.Errorf("Bard error did not shrink: %v at n=8, %v at n=64", e8, e64)
	}
	if e256 >= e64 {
		t.Errorf("Bard error did not shrink: %v at n=64, %v at n=256", e64, e256)
	}
	if e256 > 0.02 {
		t.Errorf("Bard error at n=256 still %v", e256)
	}
}

func TestWorkpileNetworkShape(t *testing.T) {
	centers := WorkpileNetwork(29, 3, 1500, 40, 131)
	if len(centers) != 4 {
		t.Fatalf("centers = %d, want 4", len(centers))
	}
	if centers[0].Kind != Delay || math.Abs(centers[0].Demand-(1500+80+131)) > 1e-9 {
		t.Errorf("delay center wrong: %+v", centers[0])
	}
	for _, c := range centers[1:] {
		if c.Kind != Queueing || math.Abs(c.Demand-131.0/3) > 1e-9 {
			t.Errorf("server center wrong: %+v", c)
		}
	}
}

// TestWorkpileExactMatchesBalancedIntuition: with one server the
// bottleneck bound is 1/So; exact MVA at large Pc should approach it.
func TestWorkpileExactSaturation(t *testing.T) {
	centers := WorkpileNetwork(64, 1, 500, 10, 100)
	res, err := Exact(centers, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.X < 0.95/100 || res.X > 1.0/100+1e-9 {
		t.Errorf("saturated throughput %v, want just below 0.01", res.X)
	}
}

func TestKindString(t *testing.T) {
	if Queueing.String() != "queueing" || Delay.String() != "delay" || Kind(7).String() == "" {
		t.Error("Kind.String wrong")
	}
}

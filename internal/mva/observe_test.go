package mva

import (
	"testing"

	"repro/internal/obs"
)

type capture struct {
	solver string
	stats  obs.SolveStats
	calls  int
}

func (c *capture) BeginSolve(solver string) func(obs.SolveStats) {
	c.solver = solver
	return func(s obs.SolveStats) {
		c.stats = s
		c.calls++
	}
}

// TestBardObserved: the observer sees the stats the result carries and
// observation does not perturb the solve.
func TestBardObserved(t *testing.T) {
	centers := WorkpileNetwork(28, 4, 1000, 40, 200)
	var c capture
	res, err := BardObserved(centers, 28, &c)
	if err != nil {
		t.Fatalf("BardObserved: %v", err)
	}
	if c.calls != 1 || c.solver != SolverBard {
		t.Fatalf("observer saw %d calls for solver %q", c.calls, c.solver)
	}
	if c.stats != res.Solve || !res.Solve.Converged || res.Solve.Iters < 1 {
		t.Errorf("stats mismatch or implausible: observer %+v, result %+v", c.stats, res.Solve)
	}
	if res.Solve.MaxUtil <= 0 {
		t.Errorf("MaxUtil = %v, want positive for a loaded network", res.Solve.MaxUtil)
	}
	plain, err := Bard(centers, 28)
	if err != nil {
		t.Fatalf("Bard: %v", err)
	}
	//lopc:allow floateq observed and unobserved solves run the identical iteration and must agree bit-for-bit
	if plain.X != res.X || plain.Solve != res.Solve {
		t.Errorf("observation changed the solve: X %v vs %v", plain.X, res.X)
	}
}

// TestMultiSchweitzerObserved: the multiclass seam reports the same
// way.
func TestMultiSchweitzerObserved(t *testing.T) {
	p, err := MultiWorkpileNetwork([]int{10, 6}, 2, []float64{800, 1600}, 40, 200)
	if err != nil {
		t.Fatalf("MultiWorkpileNetwork: %v", err)
	}
	var c capture
	res, err := MultiSchweitzerObserved(p, &c)
	if err != nil {
		t.Fatalf("MultiSchweitzerObserved: %v", err)
	}
	if c.solver != SolverMultiSchweitzer || c.stats != res.Solve {
		t.Errorf("observer saw solver %q stats %+v, result carries %+v", c.solver, c.stats, res.Solve)
	}
	if !res.Solve.Converged || res.Solve.Iters < 1 {
		t.Errorf("implausible solve stats %+v", res.Solve)
	}
}

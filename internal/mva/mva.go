// Package mva implements single-class closed queueing network analysis
// by mean value analysis: the exact MVA recursion and the two standard
// approximations, Bard's (used by the LoPC paper) and Schweitzer's.
//
// The LoPC model (internal/core) bakes Bard's approximation into its
// equations because it yields the paper's closed forms and rules of
// thumb. This package provides the reference solvers those
// approximations shortcut, so the ablation experiments can quantify
// what the simplification costs. The client-server work-pile maps
// directly onto a closed network (a delay center for the clients' work
// and round trips, plus one queueing center per server); exact MVA for
// it is the ground truth Bard approximates.
//
// The solvers follow Reiser & Lavenberg (exact MVA) and Lazowska et
// al., "Quantitative System Performance", chs. 6–7 (approximations).
package mva

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Solver names reported through obs.SolveObserver.BeginSolve, one per
// iterative solver in this package (the exact recursions are not
// fixed-point iterations and are not observed).
const (
	SolverBard            = "mva.bard"
	SolverSchweitzer      = "mva.schweitzer"
	SolverMultiBard       = "mva.multibard"
	SolverMultiSchweitzer = "mva.multischweitzer"
)

// solveObserved brackets f with an observation on o, tolerating nil.
// f returns its result together with the solve stats so error paths
// still report iteration counts.
func solveObserved[T any](o obs.SolveObserver, name string, f func() (T, obs.SolveStats, error)) (T, error) {
	if o == nil {
		res, _, err := f()
		return res, err
	}
	done := o.BeginSolve(name)
	res, stats, err := f()
	if err != nil {
		stats.Err = err.Error()
	}
	done(stats)
	return res, err
}

// Kind classifies a service center.
type Kind int

const (
	// Queueing is a single-server FCFS/PS center: customers queue.
	Queueing Kind = iota
	// Delay is an infinite-server center: customers never queue (think
	// time, network latency, dedicated per-customer resources).
	Delay
)

func (k Kind) String() string {
	switch k {
	case Queueing:
		return "queueing"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Center is one service center of the network. Demand is the total
// service demand per customer cycle: visit count times service time per
// visit.
type Center struct {
	Name   string
	Kind   Kind
	Demand float64
}

// Result is the steady-state solution of a closed network with N
// customers.
type Result struct {
	// X is the system throughput (customer cycles per unit time).
	X float64
	// CycleTime is N/X, the mean time around the network.
	CycleTime float64
	// R[k] is the residence time at center k per cycle (queueing plus
	// service, summed over the cycle's visits).
	R []float64
	// Q[k] is the mean number of customers at center k.
	Q []float64
	// U[k] is the utilization of center k (demand flow; may exceed 1
	// only for Delay centers, where it is the mean population).
	U []float64
	// Solve describes the fixed-point iteration that produced this
	// result. It is zero for the exact (non-iterative) solver.
	Solve obs.SolveStats
}

func validate(centers []Center, n int) error {
	if len(centers) == 0 {
		return fmt.Errorf("mva: no service centers")
	}
	if n < 0 {
		return fmt.Errorf("mva: negative population %d", n)
	}
	for i, c := range centers {
		if c.Demand < 0 || math.IsNaN(c.Demand) {
			return fmt.Errorf("mva: center %d (%s) has demand %v", i, c.Name, c.Demand)
		}
	}
	return nil
}

// finish computes throughput, queue lengths and utilizations from
// residence times.
func finish(centers []Center, n int, r []float64) Result {
	total := 0.0
	for _, rk := range r {
		total += rk
	}
	res := Result{
		R: r,
		Q: make([]float64, len(centers)),
		U: make([]float64, len(centers)),
	}
	if total > 0 && n > 0 {
		res.X = float64(n) / total
	}
	res.CycleTime = total
	for k := range centers {
		res.Q[k] = res.X * r[k]
		res.U[k] = res.X * centers[k].Demand
	}
	return res
}

// Exact solves the network by the exact MVA recursion on population:
//
//	R_k(n) = D_k · (1 + Q_k(n−1))   (queueing centers)
//	R_k(n) = D_k                     (delay centers)
//	X(n)   = n / Σ_k R_k(n),  Q_k(n) = X(n)·R_k(n)
//
// Complexity O(n·K); exact for product-form networks.
func Exact(centers []Center, n int) (Result, error) {
	if err := validate(centers, n); err != nil {
		return Result{}, err
	}
	k := len(centers)
	q := make([]float64, k) // Q at population i-1
	r := make([]float64, k)
	for i := 1; i <= n; i++ {
		total := 0.0
		for j, c := range centers {
			if c.Kind == Delay {
				r[j] = c.Demand
			} else {
				r[j] = c.Demand * (1 + q[j])
			}
			total += r[j]
		}
		x := float64(i) / total
		for j := range centers {
			q[j] = x * r[j]
		}
	}
	if n == 0 {
		return finish(centers, 0, make([]float64, k)), nil
	}
	return finish(centers, n, r), nil
}

// approxSweep runs one iteration of the single-class AMVA fixed point:
// residence times from the arrival-queue estimate, throughput from the
// population, and queue lengths back from Little's law. q and r are
// updated in place; the return value is the largest queue-length
// change.
//
//lopc:hotpath
func approxSweep(centers []Center, n int, est func(q float64, n int) float64, q, r []float64, stats *obs.SolveStats) float64 {
	total := 0.0
	for j, c := range centers {
		if c.Kind == Delay {
			r[j] = c.Demand
		} else {
			//lopc:allow allochot est is bardEst or schweitzerEst, one closed-form arithmetic expression each, allocation-free
			r[j] = c.Demand * (1 + est(q[j], n))
		}
		total += r[j]
	}
	x := float64(n) / total
	delta := 0.0
	for j, c := range centers {
		if c.Kind == Queueing {
			if u := x * c.Demand; u > stats.MaxUtil {
				stats.MaxUtil = u
			}
		}
		nq := x * r[j]
		delta = math.Max(delta, math.Abs(nq-q[j]))
		q[j] = nq
	}
	return delta
}

// approximate runs the fixed-point AMVA with the given arrival-queue
// estimator: est(qk, n) is the queue length an arriving customer is
// assumed to see at a queueing center, given the time-average queue qk
// with the full population n. The returned stats are meaningful on
// every path, including errors.
func approximate(centers []Center, n int, est func(q float64, n int) float64) (Result, obs.SolveStats, error) {
	var stats obs.SolveStats
	if err := validate(centers, n); err != nil {
		return Result{}, stats, err
	}
	if n == 0 {
		stats.Converged = true
		return finish(centers, 0, make([]float64, len(centers))), stats, nil
	}
	k := len(centers)
	q := make([]float64, k)
	// Start from an even split of the population.
	for j := range q {
		q[j] = float64(n) / float64(k)
	}
	r := make([]float64, k)
	const (
		maxIter = 100000
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		stats.Iters = iter + 1
		delta := approxSweep(centers, n, est, q, r, &stats)
		stats.Residual = delta
		// NaN compares false against tol forever; fail fast rather than
		// spin to the iteration cap.
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return Result{}, stats, fmt.Errorf("mva: approximation diverged (delta = %v) for n=%d", delta, n)
		}
		if delta < tol {
			stats.Converged = true
			res := finish(centers, n, r)
			res.Solve = stats
			return res, stats, nil
		}
	}
	return Result{}, stats, fmt.Errorf("mva: approximation did not converge for n=%d", n)
}

// bardEst is Bard's arrival-queue estimator: an arriving customer sees
// the time-average queue with the full population.
func bardEst(q float64, _ int) float64 { return q }

// schweitzerEst is Schweitzer's estimator: an arriving customer sees
// (N−1)/N of the time-average queue.
func schweitzerEst(q float64, n int) float64 {
	return q * float64(n-1) / float64(n)
}

// Bard solves the network with Bard's approximation to the arrival
// theorem: an arriving customer sees the time-average queue with the
// full population N. This is the approximation the LoPC model uses; it
// slightly over-estimates queue lengths and response times, with the
// error vanishing as N grows.
func Bard(centers []Center, n int) (Result, error) {
	return BardObserved(centers, n, nil)
}

// BardObserved is Bard reporting the solve to o (which may be nil).
func BardObserved(centers []Center, n int, o obs.SolveObserver) (Result, error) {
	return solveObserved(o, SolverBard, func() (Result, obs.SolveStats, error) {
		return approximate(centers, n, bardEst)
	})
}

// Schweitzer solves the network with Schweitzer's approximation: an
// arriving customer sees (N−1)/N of the time-average queue. It is
// usually more accurate than Bard at small populations.
func Schweitzer(centers []Center, n int) (Result, error) {
	return SchweitzerObserved(centers, n, nil)
}

// SchweitzerObserved is Schweitzer reporting the solve to o (which may
// be nil).
func SchweitzerObserved(centers []Center, n int, o obs.SolveObserver) (Result, error) {
	return solveObserved(o, SolverSchweitzer, func() (Result, obs.SolveStats, error) {
		return approximate(centers, n, schweitzerEst)
	})
}

// WorkpileNetwork builds the closed network of the Chapter 6 work-pile:
// pc client customers cycle through a delay center (their own chunk
// work, two network trips, and the reply handler — none of which they
// queue for) and ps identical queueing centers (the servers), each
// visited with probability 1/ps and holding the request for so cycles.
func WorkpileNetwork(pc, ps int, w, st, so float64) []Center {
	centers := make([]Center, 0, ps+1)
	centers = append(centers, Center{
		Name: "client+net", Kind: Delay, Demand: w + 2*st + so,
	})
	for i := 0; i < ps; i++ {
		centers = append(centers, Center{
			Name: fmt.Sprintf("server%d", i), Kind: Queueing, Demand: so / float64(ps),
		})
	}
	return centers
}

package mva_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mva"
)

// TestGeneralLoPCIsMulticlassBard pins the structural identity behind
// the model's §4 citations: on a client-server pattern (no handler
// interference at clients, exponential handlers) the Appendix A LoPC
// equations reduce exactly to multiclass Bard MVA. The two solvers are
// implemented independently (fixed point on per-thread cycle times vs
// fixed point on per-class queue vectors), so digit-level agreement is
// a strong correctness check on both.
func TestGeneralLoPCIsMulticlassBard(t *testing.T) {
	const (
		p  = 24
		ps = 3
		so = 131.0
		st = 40.0
	)
	pc := p - ps
	nLight := pc / 2
	nHeavy := pc - nLight
	const (
		wLight = 700.0
		wHeavy = 2100.0
	)

	ws := make([]float64, p)
	for i := 0; i < pc; i++ {
		if i < nLight {
			ws[i] = wLight
		} else {
			ws[i] = wHeavy
		}
	}
	gen, err := core.General(core.GeneralParams{
		P: p, W: ws, V: core.ClientServerVisits(pc, ps),
		St: st, So: []float64{so}, C2: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	genX := [2]float64{}
	for i := 0; i < pc; i++ {
		if i < nLight {
			genX[0] += gen.X[i]
		} else {
			genX[1] += gen.X[i]
		}
	}

	mp, err := mva.MultiWorkpileNetwork([]int{nLight, nHeavy}, ps, []float64{wLight, wHeavy}, st, so)
	if err != nil {
		t.Fatal(err)
	}
	bard, err := mva.MultiBard(mp)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if rel := math.Abs(genX[c]-bard.X[c]) / bard.X[c]; rel > 1e-8 {
			t.Errorf("class %d: general LoPC X %v vs multiclass Bard %v (rel %v)",
				c, genX[c], bard.X[c], rel)
		}
	}

	// The per-class cycle times agree too: CycleTime[c] = N_c/X_c is
	// the per-customer cycle, since X_c is the class-aggregate rate.
	for c, first := range []int{0, nLight} {
		if rel := math.Abs(gen.R[first]-bard.CycleTime[c]) / bard.CycleTime[c]; rel > 1e-8 {
			t.Errorf("class %d: general cycle %v vs Bard %v", c, gen.R[first], bard.CycleTime[c])
		}
	}
}

// TestGeneralLoPCBardSingleClass is the same identity in the
// single-class case against the scalar Bard solver.
func TestGeneralLoPCBardSingleClass(t *testing.T) {
	const (
		p  = 20
		ps = 4
		w  = 1200.0
		so = 100.0
		st = 30.0
	)
	pc := p - ps
	ws := make([]float64, p)
	for i := 0; i < pc; i++ {
		ws[i] = w
	}
	gen, err := core.General(core.GeneralParams{
		P: p, W: ws, V: core.ClientServerVisits(pc, ps),
		St: st, So: []float64{so}, C2: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bard, err := mva.Bard(mva.WorkpileNetwork(pc, ps, w, st, so), pc)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(gen.TotalX-bard.X) / bard.X; rel > 1e-8 {
		t.Errorf("general X %v vs Bard X %v (rel %v)", gen.TotalX, bard.X, rel)
	}
}

package mva

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// MultiParams describes a multiclass closed queueing network: C
// customer classes with populations N[c], each with its own total
// demand Demand[c][k] at center k. The reference the LoPC paper builds
// on — Bard, "Some Extensions to Multiclass Queueing Network Analysis"
// — is exactly this setting; the single-class solvers in this package
// are its C = 1 case.
type MultiParams struct {
	// Centers lists the service centers (Kind is used; Demand on the
	// Center struct is ignored in the multiclass API).
	Centers []Center
	// Demand[c][k] is class c's total service demand per cycle at
	// center k.
	Demand [][]float64
	// N[c] is the population of class c.
	N []int
}

func (p MultiParams) validate() error {
	if len(p.Centers) == 0 {
		return fmt.Errorf("mva: no service centers")
	}
	if len(p.Demand) != len(p.N) {
		return fmt.Errorf("mva: %d demand rows for %d classes", len(p.Demand), len(p.N))
	}
	if len(p.N) == 0 {
		return fmt.Errorf("mva: no classes")
	}
	for c, row := range p.Demand {
		if len(row) != len(p.Centers) {
			return fmt.Errorf("mva: class %d has %d demands for %d centers", c, len(row), len(p.Centers))
		}
		for k, d := range row {
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("mva: demand[%d][%d] = %v", c, k, d)
			}
		}
	}
	for c, n := range p.N {
		if n < 0 {
			return fmt.Errorf("mva: N[%d] = %d", c, n)
		}
	}
	return nil
}

// MultiResult is the multiclass steady-state solution.
type MultiResult struct {
	// X[c] is class c's throughput.
	X []float64
	// R[c][k] is class c's residence time at center k per cycle.
	R [][]float64
	// Q[c][k] is the mean number of class-c customers at center k.
	Q [][]float64
	// QTotal[k] is the mean total population at center k.
	QTotal []float64
	// CycleTime[c] is class c's cycle time N[c]/X[c].
	CycleTime []float64
	// Solve describes the fixed-point iteration that produced this
	// result. It is zero for the exact (non-iterative) solver.
	Solve obs.SolveStats
}

// popIndex maps a population vector to a dense index for memoization,
// with strides over (N[c]+1).
type popIndex struct {
	strides []int
	size    int
}

func newPopIndex(n []int) popIndex {
	strides := make([]int, len(n))
	size := 1
	for c, nc := range n {
		strides[c] = size
		size *= nc + 1
	}
	return popIndex{strides: strides, size: size}
}

func (pi popIndex) index(pop []int) int {
	idx := 0
	for c, v := range pop {
		idx += v * pi.strides[c]
	}
	return idx
}

// MultiExact solves the network by the exact multiclass MVA recursion
// over all population vectors n ≤ N:
//
//	R_ck(n) = D_ck · (1 + Q_k(n − e_c))   (queueing centers)
//	X_c(n)  = n_c / Σ_k R_ck(n),  Q_k(n) = Σ_c X_c(n)·R_ck(n)
//
// Complexity (and memory) is Π_c (N_c+1) states; an error is returned
// beyond about 4 million states — use MultiBard or MultiSchweitzer for
// larger populations.
func MultiExact(p MultiParams) (MultiResult, error) {
	if err := p.validate(); err != nil {
		return MultiResult{}, err
	}
	pi := newPopIndex(p.N)
	const maxStates = 1 << 22
	if pi.size > maxStates {
		return MultiResult{}, fmt.Errorf("mva: %d population states exceeds the exact-MVA limit %d", pi.size, maxStates)
	}
	C := len(p.N)
	K := len(p.Centers)

	// qTot[idx][k]: total queue at center k with population vector idx.
	qTot := make([][]float64, pi.size)
	qTot[0] = make([]float64, K)

	// Iterate population vectors in an order where n − e_c always
	// precedes n: counting order with the dense index works because
	// removing a customer strictly decreases the index.
	pop := make([]int, C)
	r := make([][]float64, C)
	for c := range r {
		r[c] = make([]float64, K)
	}
	x := make([]float64, C)
	for idx := 1; idx < pi.size; idx++ {
		// Decode idx into pop.
		rem := idx
		for c := C - 1; c >= 0; c-- {
			pop[c] = rem / pi.strides[c]
			rem %= pi.strides[c]
		}
		q := make([]float64, K)
		for c := 0; c < C; c++ {
			if pop[c] == 0 {
				x[c] = 0
				continue
			}
			prev := qTot[idx-pi.strides[c]]
			total := 0.0
			for k := 0; k < K; k++ {
				if p.Centers[k].Kind == Delay {
					r[c][k] = p.Demand[c][k]
				} else {
					r[c][k] = p.Demand[c][k] * (1 + prev[k])
				}
				total += r[c][k]
			}
			if total > 0 {
				x[c] = float64(pop[c]) / total
			} else {
				x[c] = 0
			}
		}
		for k := 0; k < K; k++ {
			for c := 0; c < C; c++ {
				if pop[c] > 0 {
					q[k] += x[c] * r[c][k]
				}
			}
		}
		qTot[idx] = q
	}
	return multiFinish(p, r, x, qTot[pi.size-1]), nil
}

// multiFinish packages the final-population quantities.
func multiFinish(p MultiParams, r [][]float64, x []float64, qTot []float64) MultiResult {
	C, K := len(p.N), len(p.Centers)
	res := MultiResult{
		X:         make([]float64, C),
		R:         make([][]float64, C),
		Q:         make([][]float64, C),
		QTotal:    append([]float64(nil), qTot...),
		CycleTime: make([]float64, C),
	}
	for c := 0; c < C; c++ {
		res.X[c] = x[c]
		res.R[c] = append([]float64(nil), r[c]...)
		res.Q[c] = make([]float64, K)
		for k := 0; k < K; k++ {
			res.Q[c][k] = x[c] * r[c][k]
		}
		if x[c] > 0 {
			res.CycleTime[c] = float64(p.N[c]) / x[c]
		}
	}
	return res
}

// multiDamping is the blend factor of the multiclass AMVA sweep.
const multiDamping = 0.5

// multiSweep runs one damped iteration of the multiclass AMVA fixed
// point over every class and center, updating q, r and x in place and
// returning the largest queue-length change.
//
//lopc:hotpath
func multiSweep(p MultiParams, est func(qTot, qSelf float64, nc int) float64, q, r [][]float64, x []float64, stats *obs.SolveStats) float64 {
	C, K := len(p.N), len(p.Centers)
	delta := 0.0
	for c := 0; c < C; c++ {
		if p.N[c] == 0 {
			x[c] = 0
			continue
		}
		total := 0.0
		for k := 0; k < K; k++ {
			if p.Centers[k].Kind == Delay {
				r[c][k] = p.Demand[c][k]
			} else {
				qTot := 0.0
				for cc := 0; cc < C; cc++ {
					qTot += q[cc][k]
				}
				//lopc:allow allochot est is multiBardEst or multiSchweitzerEst, one closed-form arithmetic expression each, allocation-free
				r[c][k] = p.Demand[c][k] * (1 + est(qTot, q[c][k], p.N[c]))
			}
			total += r[c][k]
		}
		x[c] = float64(p.N[c]) / total
	}
	for k := 0; k < K; k++ {
		if p.Centers[k].Kind != Queueing {
			continue
		}
		u := 0.0
		for c := 0; c < C; c++ {
			u += x[c] * p.Demand[c][k]
		}
		if u > stats.MaxUtil {
			stats.MaxUtil = u
		}
	}
	for c := 0; c < C; c++ {
		for k := 0; k < K; k++ {
			nq := x[c] * r[c][k]
			nq = multiDamping*nq + (1-multiDamping)*q[c][k]
			delta = math.Max(delta, math.Abs(nq-q[c][k]))
			q[c][k] = nq
		}
	}
	return delta
}

// multiApproximate runs the multiclass AMVA fixed point with the given
// arrival-queue estimator est(qTotalK, qSelfK, nc). The returned stats
// are meaningful on every path, including errors.
func multiApproximate(p MultiParams, est func(qTot, qSelf float64, nc int) float64) (MultiResult, obs.SolveStats, error) {
	var stats obs.SolveStats
	if err := p.validate(); err != nil {
		return MultiResult{}, stats, err
	}
	C, K := len(p.N), len(p.Centers)
	q := make([][]float64, C) // per class per center
	for c := range q {
		q[c] = make([]float64, K)
		for k := range q[c] {
			q[c][k] = float64(p.N[c]) / float64(K)
		}
	}
	r := make([][]float64, C)
	for c := range r {
		r[c] = make([]float64, K)
	}
	x := make([]float64, C)
	const (
		maxIter = 200000
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		stats.Iters = iter + 1
		delta := multiSweep(p, est, q, r, x, &stats)
		stats.Residual = delta
		// NaN compares false against tol forever; fail fast rather than
		// spin to the iteration cap.
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return MultiResult{}, stats, fmt.Errorf("mva: multiclass approximation diverged (delta = %v)", delta)
		}
		if delta < tol {
			stats.Converged = true
			qTot := make([]float64, K)
			for k := 0; k < K; k++ {
				for c := 0; c < C; c++ {
					qTot[k] += q[c][k]
				}
			}
			res := multiFinish(p, r, x, qTot)
			res.Solve = stats
			return res, stats, nil
		}
	}
	return MultiResult{}, stats, fmt.Errorf("mva: multiclass approximation did not converge")
}

// multiBardEst is Bard's estimator: an arriving customer of any class
// sees the full-population time-average queue.
func multiBardEst(qTot, _ float64, _ int) float64 { return qTot }

// multiSchweitzerEst is Schweitzer's estimator: an arriving class-c
// customer sees the full queue minus 1/N_c of its own class's
// contribution.
func multiSchweitzerEst(qTot, qSelf float64, nc int) float64 {
	return qTot - qSelf/float64(nc)
}

// MultiBard solves the multiclass network with Bard's approximation:
// an arriving customer of any class sees the full-population
// time-average queue.
func MultiBard(p MultiParams) (MultiResult, error) {
	return MultiBardObserved(p, nil)
}

// MultiBardObserved is MultiBard reporting the solve to o (which may be
// nil).
func MultiBardObserved(p MultiParams, o obs.SolveObserver) (MultiResult, error) {
	return solveObserved(o, SolverMultiBard, func() (MultiResult, obs.SolveStats, error) {
		return multiApproximate(p, multiBardEst)
	})
}

// MultiSchweitzer solves the multiclass network with Schweitzer's
// approximation: an arriving class-c customer sees the full queue minus
// 1/N_c of its own class's contribution.
func MultiSchweitzer(p MultiParams) (MultiResult, error) {
	return MultiSchweitzerObserved(p, nil)
}

// MultiSchweitzerObserved is MultiSchweitzer reporting the solve to o
// (which may be nil).
func MultiSchweitzerObserved(p MultiParams, o obs.SolveObserver) (MultiResult, error) {
	return solveObserved(o, SolverMultiSchweitzer, func() (MultiResult, obs.SolveStats, error) {
		return multiApproximate(p, multiSchweitzerEst)
	})
}

// MultiWorkpileNetwork builds the two-or-more-class work-pile network:
// class c has nClients[c] clients with mean chunk size w[c]; all
// classes share ps servers of handler cost so, reached over latency st.
func MultiWorkpileNetwork(nClients []int, ps int, w []float64, st, so float64) (MultiParams, error) {
	if len(nClients) != len(w) {
		return MultiParams{}, fmt.Errorf("mva: %d client counts for %d chunk sizes", len(nClients), len(w))
	}
	if ps < 1 {
		return MultiParams{}, fmt.Errorf("mva: ps = %d", ps)
	}
	centers := make([]Center, 0, ps+1)
	centers = append(centers, Center{Name: "client+net", Kind: Delay})
	for i := 0; i < ps; i++ {
		centers = append(centers, Center{Name: fmt.Sprintf("server%d", i), Kind: Queueing})
	}
	demand := make([][]float64, len(w))
	for c := range w {
		demand[c] = make([]float64, ps+1)
		demand[c][0] = w[c] + 2*st + so
		for k := 1; k <= ps; k++ {
			demand[c][k] = so / float64(ps)
		}
	}
	return MultiParams{Centers: centers, Demand: demand, N: nClients}, nil
}

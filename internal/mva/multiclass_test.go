package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func twoClassParams() MultiParams {
	p, err := MultiWorkpileNetwork([]int{10, 10}, 3, []float64{800, 2400}, 40, 131)
	if err != nil {
		panic(err)
	}
	return p
}

func TestMultiValidate(t *testing.T) {
	bad := []MultiParams{
		{},
		{Centers: []Center{{Kind: Delay}}, Demand: [][]float64{{1}}, N: []int{1, 2}},
		{Centers: []Center{{Kind: Delay}}, Demand: [][]float64{{1, 2}}, N: []int{1}},
		{Centers: []Center{{Kind: Delay}}, Demand: [][]float64{{-1}}, N: []int{1}},
		{Centers: []Center{{Kind: Delay}}, Demand: [][]float64{{1}}, N: []int{-1}},
	}
	for i, p := range bad {
		if _, err := MultiExact(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestMultiExactReducesToSingleClass: one class must reproduce the
// single-class exact solver.
func TestMultiExactReducesToSingleClass(t *testing.T) {
	centers := WorkpileNetwork(20, 3, 1500, 40, 131)
	single, err := Exact(centers, 20)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]float64, len(centers))
	for k, c := range centers {
		demand[k] = c.Demand
	}
	multi, err := MultiExact(MultiParams{
		Centers: centers,
		Demand:  [][]float64{demand},
		N:       []int{20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.X[0]-single.X) > 1e-9 {
		t.Errorf("multi X %v != single X %v", multi.X[0], single.X)
	}
	for k := range centers {
		if math.Abs(multi.QTotal[k]-single.Q[k]) > 1e-9 {
			t.Errorf("center %d: multi Q %v != single Q %v", k, multi.QTotal[k], single.Q[k])
		}
	}
}

// TestMultiExactSymmetricClassesMergeToOne: two identical classes of n
// customers behave exactly like one class of 2n.
func TestMultiExactSymmetricClassesMergeToOne(t *testing.T) {
	centers := WorkpileNetwork(20, 2, 1000, 40, 100)
	demand := make([]float64, len(centers))
	for k, c := range centers {
		demand[k] = c.Demand
	}
	single, err := Exact(centers, 20)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiExact(MultiParams{
		Centers: centers,
		Demand:  [][]float64{demand, demand},
		N:       []int{10, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.X[0]+multi.X[1]-single.X) > 1e-9 {
		t.Errorf("summed class throughput %v != merged %v", multi.X[0]+multi.X[1], single.X)
	}
	if math.Abs(multi.X[0]-multi.X[1]) > 1e-9 {
		t.Errorf("identical classes have different throughputs: %v vs %v", multi.X[0], multi.X[1])
	}
}

// TestMultiLittleLaw: Σ_k Q[c][k] = N[c] for every class, under every
// solver.
func TestMultiLittleLaw(t *testing.T) {
	p := twoClassParams()
	for name, solve := range map[string]func(MultiParams) (MultiResult, error){
		"exact": MultiExact, "bard": MultiBard, "schweitzer": MultiSchweitzer,
	} {
		res, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for c := range p.N {
			sum := 0.0
			for k := range p.Centers {
				sum += res.Q[c][k]
				if d := res.Q[c][k] - res.X[c]*res.R[c][k]; math.Abs(d) > 1e-6 {
					t.Errorf("%s: class %d center %d: Q != X·R (diff %v)", name, c, k, d)
				}
			}
			if math.Abs(sum-float64(p.N[c])) > 1e-6 {
				t.Errorf("%s: class %d population %v, want %d", name, c, sum, p.N[c])
			}
		}
	}
}

// TestMultiClassOrdering: the class with less work per chunk cycles
// faster.
func TestMultiClassOrdering(t *testing.T) {
	res, err := MultiExact(twoClassParams())
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 has W=800, class 1 W=2400; same populations.
	if res.X[0] <= res.X[1] {
		t.Errorf("light class X %v not above heavy class X %v", res.X[0], res.X[1])
	}
	if res.CycleTime[0] >= res.CycleTime[1] {
		t.Errorf("light class cycle %v not below heavy %v", res.CycleTime[0], res.CycleTime[1])
	}
}

// TestMultiBardConservative: Bard's throughput sits at or below exact,
// Schweitzer between.
func TestMultiBardConservative(t *testing.T) {
	p := twoClassParams()
	exact, err := MultiExact(p)
	if err != nil {
		t.Fatal(err)
	}
	bard, err := MultiBard(p)
	if err != nil {
		t.Fatal(err)
	}
	schw, err := MultiSchweitzer(p)
	if err != nil {
		t.Fatal(err)
	}
	for c := range p.N {
		if bard.X[c] > exact.X[c]+1e-9 {
			t.Errorf("class %d: Bard X %v above exact %v", c, bard.X[c], exact.X[c])
		}
		if !(bard.X[c] <= schw.X[c]+1e-9 && schw.X[c] <= exact.X[c]+1e-9) {
			t.Errorf("class %d ordering violated: %v / %v / %v", c, bard.X[c], schw.X[c], exact.X[c])
		}
	}
}

// TestMultiLittleLawProperty: random two-class networks satisfy the
// population constraint under the exact solver.
func TestMultiLittleLawProperty(t *testing.T) {
	f := func(w1, w2 uint8, n1, n2, psRaw uint8) bool {
		ps := int(psRaw%4) + 1
		p, err := MultiWorkpileNetwork(
			[]int{int(n1%8) + 1, int(n2%8) + 1}, ps,
			[]float64{100 + float64(w1)*10, 100 + float64(w2)*10}, 20, 80)
		if err != nil {
			return false
		}
		res, err := MultiExact(p)
		if err != nil {
			return false
		}
		for c := range p.N {
			sum := 0.0
			for k := range p.Centers {
				sum += res.Q[c][k]
			}
			if math.Abs(sum-float64(p.N[c])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiExactStateLimit(t *testing.T) {
	p, err := MultiWorkpileNetwork([]int{3000, 3000}, 2, []float64{100, 200}, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiExact(p); err == nil {
		t.Error("state-space explosion not rejected")
	}
	// The approximations handle it fine.
	if _, err := MultiBard(p); err != nil {
		t.Errorf("Bard failed on large population: %v", err)
	}
}

func TestMultiZeroPopulationClass(t *testing.T) {
	p, err := MultiWorkpileNetwork([]int{10, 0}, 2, []float64{500, 900}, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiExact(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[1] != 0 {
		t.Errorf("empty class throughput %v", res.X[1])
	}
	if res.X[0] <= 0 {
		t.Errorf("non-empty class throughput %v", res.X[0])
	}
}

func TestMultiWorkpileNetworkValidation(t *testing.T) {
	if _, err := MultiWorkpileNetwork([]int{1}, 2, []float64{1, 2}, 1, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := MultiWorkpileNetwork([]int{1}, 0, []float64{1}, 1, 1); err == nil {
		t.Error("ps = 0 accepted")
	}
}

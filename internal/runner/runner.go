// Package runner is the deterministic parallel execution engine for
// simulation studies: it fans independent tasks (sweep points,
// replications, whole experiments) out over a bounded worker pool and
// returns their results indexed by submission order, so a parallel run
// is bit-identical to a sequential one.
//
// Determinism rests on two rules the rest of the repository follows:
//
//  1. Every task is a pure function of its index. Randomized tasks
//     derive their seed from the root seed and the task index
//     (rng.SeedAt), never from a shared stream consumed in completion
//     order.
//  2. Results are merged by task index, not completion order. Map
//     writes task i's result to results[i]; callers render output by
//     walking the slice.
//
// Under these rules the worker count (Options.Jobs) changes only
// wall-clock time, never output — which is what makes "-j 8 equals
// -j 1 byte-for-byte" a testable invariant rather than a hope.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// Options tunes one parallel run.
type Options struct {
	// Jobs is the maximum number of tasks in flight; values <= 0 mean
	// runtime.GOMAXPROCS(0). Jobs never affects results, only speed.
	Jobs int
	// Progress, when non-nil, receives one-line progress reports
	// (tasks done, elapsed, ETA). Point it at os.Stderr in CLIs so
	// progress never mixes with result output on stdout.
	Progress io.Writer
	// Label prefixes progress lines (e.g. the sweep or experiment
	// name). Empty means "runner".
	Label string
	// Every throttles progress reporting to at most one line per
	// interval (the final line always prints). Zero means 250ms.
	Every time.Duration
	// Clock supplies the time used for throttling and ETA estimates;
	// nil means clock.System. Tests inject a clock.Fake to pin
	// progress output. The clock only shapes progress lines, never
	// results.
	Clock clock.Clock
	// Spans, when non-nil, records one Chrome-trace span per task
	// execution (viewable in Perfetto); see trace.Spans. Like Progress,
	// spans observe the run without affecting results.
	Spans *trace.Spans
}

func (o Options) jobs() int {
	if o.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Jobs
}

// Map runs task(0) … task(n-1) on a bounded worker pool and returns
// their results in index order. It is the engine's core primitive;
// everything else (sweeps, replications, experiment fan-out) is Map
// with a particular task body.
//
// If any task fails, Map stops claiming tasks beyond the lowest failed
// index (tasks below it still run — one of them could fail earlier
// still), waits for in-flight tasks to finish, and returns the error of
// the lowest-indexed failed task: the same error a sequential run would
// have hit first, so error behavior is deterministic too. Results
// computed before the failure are discarded.
func Map[T any](n int, opts Options, task func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, opts, task)
}

// MapCtx is Map with cancellation: once ctx is done, workers stop
// claiming new tasks, in-flight tasks are allowed to finish, and MapCtx
// returns ctx's error (results computed so far are discarded). Long
// tasks that want to stop mid-flight should watch ctx themselves.
//
// Error priority is deterministic where it can be: if any task failed,
// the lowest-indexed task error wins exactly as in Map, and the context
// error is reported only when cancellation — not a task failure — is
// what cut the run short.
func MapCtx[T any](ctx context.Context, n int, opts Options, task func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	var (
		next    atomic.Int64 // next unclaimed task index
		done    atomic.Int64 // completed tasks (progress only)
		minFail atomic.Int64 // lowest failed task index; n = none yet
		wg      sync.WaitGroup
		prog    = newProgress(opts, n)
		workers = min(opts.jobs(), n)
	)
	minFail.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				// Claimed tasks below the lowest known failure must
				// still run: one of them could fail at an even lower
				// index, and the contract is to return the error a
				// sequential run would have hit first. Only indexes a
				// sequential run would never reach are skipped.
				if i >= n || int64(i) >= minFail.Load() {
					return
				}
				var endSpan func(map[string]any)
				if opts.Spans != nil {
					endSpan = opts.Spans.Start("runner", taskName(opts.Label, i))
				}
				r, err := task(i)
				if endSpan != nil {
					endSpan(map[string]any{"index": i, "ok": err == nil})
				}
				if err != nil {
					errs[i] = err
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				results[i] = r
				prog.report(int(done.Add(1)))
			}
		}()
	}
	wg.Wait()
	prog.summary(int(done.Load()))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil && int(done.Load()) < n {
		return nil, fmt.Errorf("runner: run canceled after %d/%d tasks: %w", done.Load(), n, err)
	}
	return results, nil
}

// taskName labels a task's span.
func taskName(label string, i int) string {
	if label == "" {
		label = "task"
	}
	return fmt.Sprintf("%s #%d", label, i)
}

// Do is Map for tasks without a result value.
func Do(n int, opts Options, task func(i int) error) error {
	return DoCtx(context.Background(), n, opts, task)
}

// DoCtx is MapCtx for tasks without a result value.
func DoCtx(ctx context.Context, n int, opts Options, task func(i int) error) error {
	_, err := MapCtx(ctx, n, opts, func(i int) (struct{}, error) {
		return struct{}{}, task(i)
	})
	return err
}

// progress throttles and renders progress lines.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	every time.Duration
	n     int
	clk   clock.Clock
	start time.Time
	last  time.Time
	best  int // highest done count reported so far
}

func newProgress(opts Options, n int) *progress {
	if opts.Progress == nil {
		return nil
	}
	label := opts.Label
	if label == "" {
		label = "runner"
	}
	every := opts.Every
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.System
	}
	now := clk.Now()
	return &progress{w: opts.Progress, label: label, every: every, n: n, clk: clk, start: now, last: now}
}

// report prints a progress line if enough time has passed since the
// previous one (the final report always prints). done is the number of
// completed tasks.
func (p *progress) report(done int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Workers increment the done counter before calling report, but the
	// calls themselves can arrive out of order; a stale count must never
	// print after a higher one (in particular not after the final line).
	if done <= p.best {
		return
	}
	p.best = done
	now := p.clk.Now()
	if done < p.n && now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("%s: %d/%d done, elapsed %s", p.label, done, p.n, round(elapsed))
	if done > 0 && done < p.n {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(p.n-done))
		line += fmt.Sprintf(", eta %s", round(eta))
	}
	fmt.Fprintln(p.w, line)
}

// summary prints the final structured line of a run: tasks completed,
// wall time, and throughput. Unlike the transient high-water-mark lines
// of report, it always prints (once, after every worker has stopped) so
// scripts can grep one stable line per run.
func (p *progress) summary(done int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := p.clk.Now().Sub(p.start)
	line := fmt.Sprintf("%s: summary: %d/%d tasks in %s", p.label, done, p.n, round(elapsed))
	if secs := elapsed.Seconds(); secs > 0 && done > 0 {
		line += fmt.Sprintf(" (%.1f tasks/s)", float64(done)/secs)
	}
	fmt.Fprintln(p.w, line)
}

// round trims durations to a display-friendly precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}

package runner_test

// The benchmark lives in an external test package because it drives the
// engine with real simulations from internal/workload, which itself
// imports internal/runner.

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/runner"
	"repro/internal/workload"
)

// sweepPoint runs one all-to-all sweep point of the 20-point benchmark
// sweep (work values 0, 100, ..., 1900).
func sweepPoint(i int) (float64, error) {
	sim, err := workload.RunAllToAll(workload.AllToAllConfig{
		P:             16,
		Work:          dist.NewDeterministic(float64(100 * i)),
		Latency:       dist.NewDeterministic(40),
		Service:       dist.NewDeterministic(200),
		WarmupCycles:  50,
		MeasureCycles: 200,
		Seed:          1,
	})
	if err != nil {
		return 0, err
	}
	return sim.R.Mean(), nil
}

// BenchmarkRunnerSpeedup measures a 20-point all-to-all sweep
// sequentially and at -j 4, reports the wall-clock ratio as the
// "speedup" metric, and verifies the parallel results are identical to
// the sequential ones. On a host with >= 4 cores the speedup should
// exceed 2x; on fewer cores the determinism check still runs but the
// ratio hovers near 1.
//
//	go test ./internal/runner -bench RunnerSpeedup -benchtime 3x
func BenchmarkRunnerSpeedup(b *testing.B) {
	const points = 20
	var seqNS, parNS int64
	for n := 0; n < b.N; n++ {
		start := time.Now()
		seq, err := runner.Map(points, runner.Options{Jobs: 1}, sweepPoint)
		if err != nil {
			b.Fatal(err)
		}
		seqNS += time.Since(start).Nanoseconds()

		start = time.Now()
		par, err := runner.Map(points, runner.Options{Jobs: 4}, sweepPoint)
		if err != nil {
			b.Fatal(err)
		}
		parNS += time.Since(start).Nanoseconds()

		for i := range seq {
			if seq[i] != par[i] {
				b.Fatalf("point %d: parallel R %v != sequential R %v", i, par[i], seq[i])
			}
		}
	}
	if parNS > 0 {
		b.ReportMetric(float64(seqNS)/float64(parNS), "speedup")
	}
}

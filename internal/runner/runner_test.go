package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// TestMapOrdersResultsBySubmission: results land at their task index
// for every worker count, including worker counts far above the task
// count.
func TestMapOrdersResultsBySubmission(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 8, 64} {
		got, err := Map(50, Options{Jobs: jobs}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != 50 {
			t.Fatalf("jobs=%d: %d results, want 50", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicAcrossJobs: the whole result slice is identical
// for -j 1 and -j 8 when tasks are pure functions of their index — the
// engine's core guarantee.
func TestMapDeterministicAcrossJobs(t *testing.T) {
	task := func(i int) (string, error) {
		return fmt.Sprintf("task-%d:%d", i, i*31), nil
	}
	seq, err := Map(97, Options{Jobs: 1}, task)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(97, Options{Jobs: 8}, task)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d differs: sequential %q, parallel %q", i, seq[i], par[i])
		}
	}
}

// TestMapEmptyAndNegative: zero tasks succeed with no results; a
// negative count is an error, not a hang.
func TestMapEmptyAndNegative(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0) = %v, %v; want nil, nil", got, err)
	}
	if _, err := Map(-1, Options{}, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Error("Map(-1) did not error")
	}
}

// TestMapReturnsLowestIndexedError: when several tasks fail, Map
// reports the one a sequential run would have hit first, for every
// worker count.
func TestMapReturnsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, jobs := range []int{1, 4, 16} {
		_, err := Map(40, Options{Jobs: jobs}, func(i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, fmt.Errorf("%w at %d", boom, i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: no error", jobs)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: error %v does not wrap task error", jobs, err)
		}
		if !strings.HasPrefix(err.Error(), "task 7:") {
			t.Errorf("jobs=%d: error %q, want the lowest-indexed failure (task 7)", jobs, err)
		}
	}
}

// TestMapStopsClaimingAfterError: after a failure the pool stops
// claiming fresh tasks, so a long queue behind an early error does not
// all execute.
func TestMapStopsClaimingAfterError(t *testing.T) {
	const n = 10_000
	var ran atomic.Int64
	_, err := Map(n, Options{Jobs: 2}, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	// Workers already past the claim check may each run one more task;
	// anything close to n means cancellation is broken.
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d tasks ran after an index-0 failure", got, n)
	}
}

// TestMapCancelStress hammers the early-error path: many tiny tasks,
// many rounds, failures at varying indices, all worker counts. Run
// under -race this doubles as the engine's race regression test.
func TestMapCancelStress(t *testing.T) {
	for round := 0; round < 30; round++ {
		failAt := round * 7 % 100
		jobs := 1 + round%8
		_, err := Map(100, Options{Jobs: jobs}, func(i int) (int, error) {
			if i >= failAt {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("round %d: no error", round)
		}
		want := fmt.Sprintf("task %d:", failAt)
		if !strings.HasPrefix(err.Error(), want) {
			t.Errorf("round %d (jobs=%d): error %q, want prefix %q", round, jobs, err, want)
		}
	}
}

// TestMapErrorIdentityUnderRacingFailures: when a slow low-indexed
// failure races many instant high-indexed ones, the reported error must
// still be the lowest index. This guards the claim rule that tasks
// below the lowest known failure keep running: a worker that claimed a
// low index just as a high index failed used to abandon it, making the
// returned error depend on the schedule.
func TestMapErrorIdentityUnderRacingFailures(t *testing.T) {
	for round := 0; round < 50; round++ {
		jobs := 2 + round%7
		_, err := Map(64, Options{Jobs: jobs}, func(i int) (int, error) {
			switch {
			case i == 5:
				// The lowest failure reports last.
				time.Sleep(time.Duration(round%5) * 10 * time.Microsecond)
				return 0, fmt.Errorf("fail %d", i)
			case i >= 8:
				return 0, fmt.Errorf("fail %d", i)
			default:
				return i, nil
			}
		})
		if err == nil {
			t.Fatalf("round %d: no error", round)
		}
		if !strings.HasPrefix(err.Error(), "task 5:") {
			t.Fatalf("round %d (jobs=%d): error %q, want the lowest-indexed failure (task 5)", round, jobs, err)
		}
	}
}

// TestDo: the no-result wrapper runs every task and propagates errors.
func TestDo(t *testing.T) {
	var sum atomic.Int64
	if err := Do(100, Options{Jobs: 4}, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	if err := Do(3, Options{}, func(i int) error { return errors.New("x") }); err == nil {
		t.Error("Do swallowed the task error")
	}
}

// TestProgressReporting: the final progress line and the closing
// summary always print and carry the done/total count; intermediate
// lines are throttled.
func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	_, err := Map(20, Options{Jobs: 4, Progress: &buf, Label: "sweep", Every: time.Hour}, func(i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep: 20/20 done") {
		t.Errorf("missing final progress line, got %q", out)
	}
	if !strings.Contains(out, "sweep: summary: 20/20 tasks in ") {
		t.Errorf("missing summary line, got %q", out)
	}
	// With a one-hour throttle only the final (unthrottled) progress line
	// and the summary print.
	if n := strings.Count(out, "\n"); n != 2 {
		t.Errorf("throttle ignored: %d lines, want 2:\n%s", n, out)
	}
}

// TestRunSummary: the summary line is deterministic under a fake clock
// and includes throughput.
func TestRunSummary(t *testing.T) {
	var buf bytes.Buffer
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p := newProgress(Options{Progress: &buf, Label: "exp", Every: time.Hour, Clock: fake}, 8)
	fake.Advance(4 * time.Second)
	p.summary(8)
	if got, want := buf.String(), "exp: summary: 8/8 tasks in 4s (2.0 tasks/s)\n"; got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}

// TestRunSummaryZeroElapsed: a run finishing within the clock's
// resolution omits the throughput rather than dividing by zero.
func TestRunSummaryZeroElapsed(t *testing.T) {
	var buf bytes.Buffer
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p := newProgress(Options{Progress: &buf, Label: "x", Clock: fake}, 2)
	p.summary(2)
	if got, want := buf.String(), "x: summary: 2/2 tasks in 0s\n"; got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}

// TestProgressFakeClock: with an injected clock.Fake every progress
// line — throttling decisions, elapsed, ETA — is exactly reproducible.
func TestProgressFakeClock(t *testing.T) {
	var buf bytes.Buffer
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p := newProgress(Options{Progress: &buf, Label: "fit", Every: time.Second, Clock: fake}, 4)

	p.report(1) // same instant as start: throttled
	fake.Advance(2 * time.Second)
	p.report(2) // window open: prints with elapsed and ETA
	fake.Advance(500 * time.Millisecond)
	p.report(3) // 500ms since last line: throttled
	fake.Advance(1500 * time.Millisecond)
	p.report(4) // final line always prints, no ETA

	want := "fit: 2/4 done, elapsed 2s, eta 2s\n" +
		"fit: 4/4 done, elapsed 4s\n"
	if got := buf.String(); got != want {
		t.Errorf("progress output:\n got %q\nwant %q", got, want)
	}
}

// TestProgressMonotonic: report calls can arrive out of order (the
// done counter is incremented before the call, and goroutines race to
// the lock), but a stale lower count must never print after a higher
// one — previously a late report(1) after report(2) produced a
// backwards-running progress line.
func TestProgressMonotonic(t *testing.T) {
	var buf bytes.Buffer
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p := newProgress(Options{Progress: &buf, Label: "run", Every: time.Second, Clock: fake}, 3)

	fake.Advance(2 * time.Second)
	p.report(2)
	fake.Advance(2 * time.Second)
	p.report(1) // a slower worker's count arriving late: suppressed
	fake.Advance(2 * time.Second)
	p.report(3)

	want := "run: 2/3 done, elapsed 2s, eta 1s\n" +
		"run: 3/3 done, elapsed 6s\n"
	if got := buf.String(); got != want {
		t.Errorf("progress output:\n got %q\nwant %q", got, want)
	}
}

// TestProgressETA: a mid-run report includes an ETA once at least one
// task has finished.
func TestProgressETA(t *testing.T) {
	p := newProgress(Options{Progress: &bytes.Buffer{}, Every: time.Second}, 10)
	p.last = p.last.Add(-time.Minute) // force the throttle window open
	p.report(5)
	out := p.w.(*bytes.Buffer).String()
	if !strings.Contains(out, "eta") {
		t.Errorf("mid-run progress line has no ETA: %q", out)
	}
}

// TestMapRecordsJobSpans: with Options.Spans set, every task execution
// becomes one span, and span collection never changes results.
func TestMapRecordsJobSpans(t *testing.T) {
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	spans := trace.NewSpans(fake)
	got, err := Map(10, Options{Jobs: 4, Label: "sweep", Spans: spans}, func(i int) (int, error) {
		return i * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*3)
		}
	}
	if spans.Len() != 10 {
		t.Errorf("recorded %d spans, want 10", spans.Len())
	}
	var buf bytes.Buffer
	if err := spans.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	for i := 0; i < 10; i++ {
		if want := fmt.Sprintf("sweep #%d", i); !strings.Contains(out, want) {
			t.Errorf("trace JSON missing span %q", want)
		}
	}
	if !strings.Contains(out, `"ph":"X"`) || !strings.Contains(out, `"process_name"`) {
		t.Errorf("trace JSON missing complete-slice events or metadata:\n%s", out)
	}
}

// TestMapCtxCanceledBeforeStart: a context canceled up front runs no
// tasks and reports the cancellation.
func TestMapCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 100, Options{Jobs: 4}, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran after pre-canceled context", ran.Load())
	}
}

// TestMapCtxStopsClaimingOnCancel: cancellation mid-run stops workers
// from claiming further tasks; in-flight tasks finish.
func TestMapCtxStopsClaimingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 1000, Options{Jobs: 2}, func(i int) (int, error) {
		ran.Add(1)
		if i < 2 {
			cancel()
			<-ctx.Done() // hold the worker until cancellation is visible
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Both workers saw the first two indexes block until cancel, so at
	// most a couple of extra claims can slip in before the check.
	if n := ran.Load(); n > 6 {
		t.Errorf("%d tasks ran after cancel, want a small handful", n)
	}
}

// TestMapCtxCompletedRunIgnoresLateCancel: a run whose tasks all
// completed returns its results even if the context is canceled at the
// very end.
func TestMapCtxCompletedRunIgnoresLateCancel(t *testing.T) {
	ctx := context.Background()
	got, err := MapCtx(ctx, 10, Options{Jobs: 3}, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("MapCtx = (%v, %v), want 10 results", got, err)
	}
}

// TestMapCtxTaskErrorBeatsCancel: when a task fails and the context is
// canceled, the deterministic lowest-index task error wins.
func TestMapCtxTaskErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 8, Options{Jobs: 1}, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
	if !strings.Contains(err.Error(), "task 3") {
		t.Errorf("err = %v, want task-3 identity", err)
	}
}

// TestDoCtxDeadline: DoCtx respects a context deadline.
func TestDoCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := DoCtx(ctx, 1_000_000, Options{Jobs: 2}, func(i int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

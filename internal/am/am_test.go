package am

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/logp"
)

func detConfig(p int, o, l, h float64) Config {
	return Config{
		P:            p,
		Latency:      dist.NewDeterministic(l),
		Handler:      dist.NewDeterministic(h),
		SendOverhead: o,
		Seed:         1,
	}
}

// TestScheduleMatchesLogP: with send overhead equal to handler cost the
// generalized schedule is exactly the LogP optimal broadcast.
func TestScheduleMatchesLogP(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16, 33} {
		lg := logp.Params{L: 40, O: 5, G: 0, P: p}
		wantFinish, wantTimes, wantParent, err := lg.BroadcastTree()
		if err != nil {
			t.Fatal(err)
		}
		finish, times, parent := Schedule(p, 5, 40, 5)
		if math.Abs(finish-wantFinish) > 1e-9 {
			t.Errorf("P=%d: finish %v, LogP %v", p, finish, wantFinish)
		}
		for i := range times {
			if math.Abs(times[i]-wantTimes[i]) > 1e-9 {
				t.Errorf("P=%d: informed[%d] = %v, LogP %v", p, i, times[i], wantTimes[i])
			}
			if parent[i] != wantParent[i] {
				t.Errorf("P=%d: parent[%d] = %d, LogP %d", p, i, parent[i], wantParent[i])
			}
		}
	}
}

// TestBroadcastExecutesScheduleExactly: on a deterministic machine the
// simulated informed times equal the analytical schedule to the cycle.
func TestBroadcastExecutesScheduleExactly(t *testing.T) {
	for _, p := range []int{2, 7, 16, 32} {
		cfg := detConfig(p, 10, 40, 25)
		res, err := Broadcast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, want, _ := Schedule(p, 10, 40, 25)
		for i := 1; i < p; i++ {
			if math.Abs(res.InformedAt[i]-want[i]) > 1e-9 {
				t.Fatalf("P=%d node %d informed at %v, schedule says %v", p, i, res.InformedAt[i], want[i])
			}
		}
		if math.Abs(res.Finish-res.Predicted) > 1e-9 {
			t.Errorf("P=%d: finish %v != predicted %v", p, res.Finish, res.Predicted)
		}
	}
}

func TestBroadcastSingleNode(t *testing.T) {
	res, err := Broadcast(detConfig(1, 5, 40, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != 0 {
		t.Errorf("P=1 finish = %v", res.Finish)
	}
}

func TestBroadcastZeroOverhead(t *testing.T) {
	// o = 0: the root informs everyone directly at l + h.
	res, err := Broadcast(detConfig(8, 0, 40, 25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Finish-65) > 1e-9 {
		t.Errorf("finish %v, want 65 (single hop, no send spacing)", res.Finish)
	}
}

func TestBroadcastVarianceSlowsFinish(t *testing.T) {
	// Exponential handlers: mean finish exceeds the deterministic
	// schedule (max over random paths), echoing Brewer & Kuszmaul's
	// observation that regular schedules decay on real machines.
	det, err := Broadcast(detConfig(32, 10, 40, 25))
	if err != nil {
		t.Fatal(err)
	}
	sumFinish := 0.0
	const trials = 20
	for s := uint64(1); s <= trials; s++ {
		cfg := detConfig(32, 10, 40, 25)
		cfg.Handler = dist.NewExponential(25)
		cfg.Seed = s
		r, err := Broadcast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sumFinish += r.Finish
	}
	if mean := sumFinish / trials; mean <= det.Finish {
		t.Errorf("mean exponential-handler finish %v not above deterministic %v", mean, det.Finish)
	}
}

func TestReduceValueAndTiming(t *testing.T) {
	for _, p := range []int{2, 4, 16, 32} {
		cfg := detConfig(p, 10, 40, 25)
		values := make([]float64, p)
		want := 0.0
		for i := range values {
			values[i] = float64(i + 1)
			want += values[i]
		}
		res, err := Reduce(cfg, values)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-want) > 1e-9 {
			t.Errorf("P=%d: reduced value %v, want %v", p, res.Value, want)
		}
		// Power-of-two machines with symmetric deterministic costs run
		// exactly ceil(log2 P) synchronized rounds.
		if math.Abs(res.Finish-res.Predicted) > 1e-9 {
			t.Errorf("P=%d: finish %v != predicted %v", p, res.Finish, res.Predicted)
		}
	}
}

func TestReduceNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{3, 5, 7, 12, 31} {
		cfg := detConfig(p, 10, 40, 25)
		values := make([]float64, p)
		want := 0.0
		for i := range values {
			values[i] = float64(2*i + 1)
			want += values[i]
		}
		res, err := Reduce(cfg, values)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-want) > 1e-9 {
			t.Errorf("P=%d: reduced value %v, want %v", p, res.Value, want)
		}
		if res.Finish <= 0 || res.Finish > res.Predicted+1e-9 {
			t.Errorf("P=%d: finish %v outside (0, predicted %v]", p, res.Finish, res.Predicted)
		}
	}
}

func TestReduceWrongValueCount(t *testing.T) {
	if _, err := Reduce(detConfig(4, 1, 1, 1), []float64{1, 2}); err == nil {
		t.Error("mismatched value count accepted")
	}
}

func TestBarrierDeterministicCost(t *testing.T) {
	// Power-of-two dissemination barrier with symmetric deterministic
	// costs: every barrier takes exactly rounds·(o + l + h).
	for _, p := range []int{2, 4, 16, 32} {
		cfg := detConfig(p, 10, 40, 25)
		res, err := Barrier(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.PerBarrier-res.Predicted) > 1e-9 {
			t.Errorf("P=%d: per-barrier %v != predicted %v", p, res.PerBarrier, res.Predicted)
		}
		if res.Tally.N() != 5 {
			t.Errorf("P=%d: %d barrier intervals, want 5", p, res.Tally.N())
		}
		// All intervals identical in the deterministic case.
		if res.Tally.Max()-res.Tally.Min() > 1e-9 {
			t.Errorf("P=%d: barrier intervals vary: [%v, %v]", p, res.Tally.Min(), res.Tally.Max())
		}
	}
}

func TestBarrierNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{3, 6, 17} {
		res, err := Barrier(detConfig(p, 10, 40, 25), 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerBarrier <= 0 {
			t.Errorf("P=%d: per-barrier %v", p, res.PerBarrier)
		}
		if res.Rounds != ceilLog2(p) {
			t.Errorf("P=%d: rounds %d", p, res.Rounds)
		}
	}
}

func TestBarrierVariancePenalty(t *testing.T) {
	// Exponential handlers make each round a max over P random paths,
	// so the mean barrier cost exceeds the deterministic model — the
	// reason cheap hardware barriers (T3E-style) are attractive and,
	// absent them, regular schedules decay (Ch. 1).
	det, err := Barrier(detConfig(32, 10, 40, 25), 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := detConfig(32, 10, 40, 25)
	cfg.Handler = dist.NewExponential(25)
	exp, err := Barrier(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if exp.PerBarrier <= det.PerBarrier {
		t.Errorf("exponential barrier %v not above deterministic %v", exp.PerBarrier, det.PerBarrier)
	}
}

func TestBarrierInvalidConfig(t *testing.T) {
	if _, err := Barrier(detConfig(4, 1, 1, 1), 0); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := detConfig(0, 1, 1, 1)
	if _, err := Barrier(bad, 1); err == nil {
		t.Error("P=0 accepted")
	}
	neg := detConfig(4, -1, 1, 1)
	if _, err := Broadcast(neg); err == nil {
		t.Error("negative send overhead accepted")
	}
	nilDist := Config{P: 4, SendOverhead: 1, Seed: 1}
	if _, err := Reduce(nilDist, make([]float64, 4)); err == nil {
		t.Error("nil distributions accepted")
	}
}

func TestReduceRoundsStructure(t *testing.T) {
	// P = 8: node 0 receives rounds 0,1,2; node 1 sends round 0;
	// node 2 receives round 0 then sends round 1; node 4 receives
	// rounds 0,1 then sends round 2.
	cases := []struct {
		self int
		recv []int
		send int
	}{
		{0, []int{0, 1, 2}, -1},
		{1, nil, 0},
		{2, []int{0}, 1},
		{3, nil, 0},
		{4, []int{0, 1}, 2},
		{6, []int{0}, 1},
		{7, nil, 0},
	}
	for _, c := range cases {
		recv, send := reduceRounds(c.self, 8)
		if send != c.send {
			t.Errorf("node %d: send round %d, want %d", c.self, send, c.send)
		}
		if len(recv) != len(c.recv) {
			t.Errorf("node %d: recv %v, want %v", c.self, recv, c.recv)
			continue
		}
		for i := range recv {
			if recv[i] != c.recv[i] {
				t.Errorf("node %d: recv %v, want %v", c.self, recv, c.recv)
			}
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5, 33: 6}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBroadcastDeterminism(t *testing.T) {
	cfg := detConfig(16, 10, 40, 25)
	cfg.Handler = dist.NewExponential(25)
	a, err := Broadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Finish != b.Finish {
		t.Error("same seed gave different broadcast finishes")
	}
}

func TestAllReduce(t *testing.T) {
	for _, p := range []int{2, 8, 13, 32} {
		cfg := detConfig(p, 10, 40, 25)
		values := make([]float64, p)
		want := 0.0
		for i := range values {
			values[i] = float64(i + 1)
			want += values[i]
		}
		res, err := AllReduce(cfg, values)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Values {
			if v != want {
				t.Fatalf("P=%d node %d got %v, want %v", p, i, v, want)
			}
		}
		if res.Finish <= 0 {
			t.Fatalf("P=%d finish %v", p, res.Finish)
		}
		// Deterministic: composition is exact for power-of-two P (both
		// phases are exact there).
		if p&(p-1) == 0 && math.Abs(res.Finish-res.Predicted) > 1e-9 {
			t.Errorf("P=%d: finish %v != predicted %v", p, res.Finish, res.Predicted)
		}
	}
}

func TestAllReduceErrors(t *testing.T) {
	if _, err := AllReduce(detConfig(4, 1, 1, 1), []float64{1}); err == nil {
		t.Error("wrong value count accepted")
	}
}

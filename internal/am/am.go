// Package am builds collective operations — broadcast, reduction, and
// barrier synchronization — from active messages on the simulated
// machine, and provides their LogP-style schedules and cost formulas.
//
// The package serves two purposes in the reproduction. First, it
// validates the simulator against LogP theory: executing the optimal
// LogP broadcast tree on the machine with deterministic costs produces
// the analytical informed times exactly. Second, it grounds the paper's
// introduction: the original LogP study noted that all-to-all patterns
// need barrier resynchronization to stay contention-free, and that few
// machines have cheap barriers — these are the barriers in question,
// priced in active messages.
//
// The machine model separates the sender-side injection overhead o
// (time the thread spends composing and injecting a message, spent as
// local compute) from the receiver-side handler cost So (the paper
// folds both into LogP's o; here they may differ).
package am

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Config describes the machine a collective runs on.
type Config struct {
	// P is the number of nodes.
	P int
	// Latency is the network trip time distribution (mean St / LogP L).
	Latency dist.Distribution
	// Handler is the receive-handler cost distribution (So).
	Handler dist.Distribution
	// SendOverhead is the sender-side cost per injection (LogP's o on
	// the sending side), spent as thread compute time.
	SendOverhead float64
	// Seed roots the run's random streams.
	Seed uint64
}

func (c Config) validate() error {
	switch {
	case c.P < 1:
		return fmt.Errorf("am: P = %d", c.P)
	case c.Latency == nil || c.Handler == nil:
		return fmt.Errorf("am: nil distribution in config")
	case c.SendOverhead < 0 || math.IsNaN(c.SendOverhead):
		return fmt.Errorf("am: invalid send overhead %v", c.SendOverhead)
	}
	return nil
}

// --- Broadcast schedule ---

// sender is a node in the greedy broadcast schedule with the arrival
// time of its next outgoing message.
type sender struct {
	nextArrive float64
	index      int
}

type senderHeap []sender

func (h senderHeap) Len() int           { return len(h) }
func (h senderHeap) Less(i, j int) bool { return h[i].nextArrive < h[j].nextArrive }
func (h senderHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *senderHeap) Push(x any)        { *h = append(*h, x.(sender)) }
func (h *senderHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Schedule computes the greedy optimal single-item broadcast schedule
// for a machine with separate send overhead o, wire latency l, and
// receive-handler cost h: the finish time, each node's informed time,
// and the tree as a parent vector (parent[0] = -1). With o = h it
// coincides with the LogP optimal broadcast (logp.BroadcastTree).
func Schedule(p int, o, l, h float64) (finish float64, informedAt []float64, parent []int) {
	informedAt = make([]float64, p)
	parent = make([]int, p)
	parent[0] = -1
	if p <= 1 {
		return 0, informedAt, parent
	}
	// A sender ready at t lands messages at t+o+l, t+2o+l, ... (each
	// injection occupies the thread for o); the receiver is informed a
	// handler time h after each landing.
	hp := &senderHeap{}
	heap.Push(hp, sender{nextArrive: o + l, index: 0})
	for i := 1; i < p; i++ {
		src := heap.Pop(hp).(sender)
		informed := src.nextArrive + h
		informedAt[i] = informed
		parent[i] = src.index
		if informed > finish {
			finish = informed
		}
		heap.Push(hp, sender{nextArrive: src.nextArrive + o, index: src.index})
		heap.Push(hp, sender{nextArrive: informed + o + l, index: i})
	}
	return finish, informedAt, parent
}

// --- Broadcast execution ---

// BroadcastResult reports a simulated broadcast.
type BroadcastResult struct {
	// Finish is the time the last node became informed.
	Finish float64
	// InformedAt[i] is when node i's receive handler completed (0 for
	// the root).
	InformedAt []float64
	// Predicted is the Schedule's analytical finish time (exact when
	// all costs are deterministic).
	Predicted float64
}

type broadcastRun struct {
	cfg        Config
	children   [][]int
	informedAt []float64
}

// bcastProgram drives one node of the broadcast tree: non-roots block
// until informed, then every node alternates Compute(sendOverhead) and
// SendAsync for each child in schedule order.
type bcastProgram struct {
	run     *broadcastRun
	blocked bool // still waiting to be informed
	idx     int  // next child
	paid    bool // overhead for child idx already spent
}

// Next implements machine.Program.
func (p *bcastProgram) Next(m *machine.Machine, self int) machine.Action {
	if p.blocked {
		p.blocked = false
		return machine.Block()
	}
	kids := p.run.children[self]
	if p.idx >= len(kids) {
		return machine.Halt()
	}
	if o := p.run.cfg.SendOverhead; o > 0 && !p.paid {
		p.paid = true
		return machine.Compute(o)
	}
	dst := kids[p.idx]
	p.idx++
	p.paid = false
	return machine.SendAsync(&machine.Message{
		Src: self, Dst: dst, Kind: machine.KindRequest,
		Service: p.run.cfg.Handler,
		OnComplete: func(m *machine.Machine, msg *machine.Message) {
			p.run.informedAt[msg.Dst] = msg.Done
			m.Unblock(msg.Dst)
		},
	})
}

// Broadcast executes the optimal broadcast tree on the machine and
// returns measured and predicted times.
func Broadcast(cfg Config) (BroadcastResult, error) {
	if err := cfg.validate(); err != nil {
		return BroadcastResult{}, err
	}
	predicted, _, parent := Schedule(cfg.P, cfg.SendOverhead, cfg.Latency.Mean(), cfg.Handler.Mean())
	children := make([][]int, cfg.P)
	for i := 1; i < cfg.P; i++ {
		children[parent[i]] = append(children[parent[i]], i)
	}
	m := machine.New(machine.Config{P: cfg.P, NetLatency: cfg.Latency, Seed: cfg.Seed})
	run := &broadcastRun{cfg: cfg, children: children, informedAt: make([]float64, cfg.P)}
	for i := 0; i < cfg.P; i++ {
		m.SetProgram(i, &bcastProgram{run: run, blocked: i != 0})
	}
	m.Start()
	m.Run()
	finish := 0.0
	for _, t := range run.informedAt {
		if t > finish {
			finish = t
		}
	}
	return BroadcastResult{Finish: finish, InformedAt: run.informedAt, Predicted: predicted}, nil
}

// --- Reduction ---

// ReduceResult reports a simulated reduction.
type ReduceResult struct {
	// Value is the combined value delivered at the root.
	Value float64
	// Finish is the completion time (root's final combine).
	Finish float64
	// Predicted is the binomial-tree analytical time for deterministic
	// symmetric costs: ceil(log2 P) · (o + l + h).
	Predicted float64
}

type reduceMsgData struct {
	round int
	value float64
}

type reduceRun struct {
	cfg    Config
	value  []float64
	gotRnd [][]bool
	progs  []*reduceProgram
	finish float64
}

// reduceRounds returns node self's receive rounds (ascending) and its
// send round (−1 for the root) in a binomial-tree reduction over p
// nodes: in round k, nodes whose low k+1 bits equal 2^k send their
// partial sum to the node 2^k below them.
func reduceRounds(self, p int) (recv []int, send int) {
	for k := 0; 1<<k < p; k++ {
		bit := 1 << k
		low := self & (bit<<1 - 1)
		switch low {
		case 0:
			if self+bit < p {
				recv = append(recv, k)
			}
		case bit:
			return recv, k
		}
	}
	return recv, -1
}

// reduceProgram drives one node: it waits for each expected receive in
// round order, then (unless root) sends its combined value up the tree.
type reduceProgram struct {
	run     *reduceRun
	rounds  []int
	sendRnd int // -1 for the root
	stage   int
	paid    bool
	waiting int // round blocked on, -1 if none
}

// Next implements machine.Program.
func (p *reduceProgram) Next(m *machine.Machine, self int) machine.Action {
	run := p.run
	for p.stage < len(p.rounds) {
		k := p.rounds[p.stage]
		if !run.gotRnd[self][k] {
			p.waiting = k
			return machine.Block()
		}
		p.stage++
	}
	p.waiting = -1
	if p.sendRnd < 0 {
		run.finish = m.Now()
		return machine.Halt()
	}
	if o := run.cfg.SendOverhead; o > 0 && !p.paid {
		p.paid = true
		return machine.Compute(o)
	}
	round := p.sendRnd
	dst := self - 1<<round
	v := run.value[self]
	p.sendRnd = -1 // send exactly once, then halt on the next step
	return machine.SendAsync(&machine.Message{
		Src: self, Dst: dst, Kind: machine.KindRequest,
		Service:  run.cfg.Handler,
		UserData: reduceMsgData{round: round, value: v},
		OnComplete: func(m *machine.Machine, msg *machine.Message) {
			d := msg.UserData.(reduceMsgData)
			run.value[msg.Dst] += d.value
			run.gotRnd[msg.Dst][d.round] = true
			if prog := run.progs[msg.Dst]; prog.waiting == d.round {
				prog.waiting = -1
				m.Unblock(msg.Dst)
			}
		},
	})
}

// Reduce executes a binomial-tree sum reduction of values (one per
// node) and returns the combined value and timing.
func Reduce(cfg Config, values []float64) (ReduceResult, error) {
	if err := cfg.validate(); err != nil {
		return ReduceResult{}, err
	}
	if len(values) != cfg.P {
		return ReduceResult{}, fmt.Errorf("am: %d values for %d nodes", len(values), cfg.P)
	}
	rounds := ceilLog2(cfg.P)
	m := machine.New(machine.Config{P: cfg.P, NetLatency: cfg.Latency, Seed: cfg.Seed})
	run := &reduceRun{
		cfg:    cfg,
		value:  append([]float64(nil), values...),
		gotRnd: make([][]bool, cfg.P),
		progs:  make([]*reduceProgram, cfg.P),
	}
	for i := 0; i < cfg.P; i++ {
		run.gotRnd[i] = make([]bool, rounds+1)
		recv, send := reduceRounds(i, cfg.P)
		prog := &reduceProgram{run: run, rounds: recv, sendRnd: send, waiting: -1}
		run.progs[i] = prog
		m.SetProgram(i, prog)
	}
	m.Start()
	m.Run()
	return ReduceResult{
		Value:     run.value[0],
		Finish:    run.finish,
		Predicted: float64(rounds) * (cfg.SendOverhead + cfg.Latency.Mean() + cfg.Handler.Mean()),
	}, nil
}

func ceilLog2(p int) int {
	r := 0
	for 1<<r < p {
		r++
	}
	return r
}

// --- Barrier ---

// BarrierResult reports simulated dissemination barriers.
type BarrierResult struct {
	// PerBarrier is the mean cost of one barrier in steady state (total
	// time over back-to-back barriers).
	PerBarrier float64
	// Rounds is ceil(log2 P).
	Rounds int
	// Predicted is the deterministic-cost model: Rounds·(o + l + h).
	Predicted float64
	// Tally holds per-barrier completion intervals for variability
	// analysis.
	Tally stats.Tally
}

type barrierMsgData struct{ round int }

type barrierRun struct {
	cfg       Config
	rounds    int
	iters     int
	recvCount [][]int
	progs     []*barrierProgram
	remaining []int // nodes still inside barrier b (index by barrier)
	completed []float64
}

// barrierProgram drives one node through iters dissemination barriers:
// in round k it sends to (i+2^k) mod P and waits for the round-k
// message of the current barrier from (i−2^k) mod P. Messages from a
// node that has raced ahead into the next barrier are accounted for by
// counting per-round receptions rather than flags.
type barrierProgram struct {
	run     *barrierRun
	barrier int
	round   int
	paid    bool
	sent    bool
	waiting int // round blocked on, -1 if none
}

// Next implements machine.Program.
func (p *barrierProgram) Next(m *machine.Machine, self int) machine.Action {
	run := p.run
	for {
		if p.round == run.rounds {
			run.remaining[p.barrier]--
			if run.remaining[p.barrier] == 0 {
				run.completed = append(run.completed, m.Now())
			}
			p.barrier++
			p.round = 0
			if p.barrier == run.iters {
				return machine.Halt()
			}
			continue
		}
		if !p.sent {
			if o := run.cfg.SendOverhead; o > 0 && !p.paid {
				p.paid = true
				return machine.Compute(o)
			}
			p.sent = true
			p.paid = false
			dst := (self + 1<<p.round) % run.cfg.P
			return machine.SendAsync(&machine.Message{
				Src: self, Dst: dst, Kind: machine.KindRequest,
				Service:  run.cfg.Handler,
				UserData: barrierMsgData{round: p.round},
				OnComplete: func(m *machine.Machine, msg *machine.Message) {
					d := msg.UserData.(barrierMsgData)
					run.recvCount[msg.Dst][d.round]++
					prog := run.progs[msg.Dst]
					if prog.waiting == d.round && run.recvCount[msg.Dst][d.round] > prog.barrier {
						prog.waiting = -1
						m.Unblock(msg.Dst)
					}
				},
			})
		}
		// Sent; wait for this barrier's message of this round.
		if run.recvCount[self][p.round] <= p.barrier {
			p.waiting = p.round
			return machine.Block()
		}
		p.waiting = -1
		p.round++
		p.sent = false
	}
}

// Barrier runs iters back-to-back dissemination barriers and returns
// cost statistics.
func Barrier(cfg Config, iters int) (BarrierResult, error) {
	if err := cfg.validate(); err != nil {
		return BarrierResult{}, err
	}
	if iters < 1 {
		return BarrierResult{}, fmt.Errorf("am: iters = %d", iters)
	}
	rounds := ceilLog2(cfg.P)
	m := machine.New(machine.Config{P: cfg.P, NetLatency: cfg.Latency, Seed: cfg.Seed})
	run := &barrierRun{
		cfg: cfg, rounds: rounds, iters: iters,
		recvCount: make([][]int, cfg.P),
		progs:     make([]*barrierProgram, cfg.P),
		remaining: make([]int, iters),
	}
	for b := range run.remaining {
		run.remaining[b] = cfg.P
	}
	for i := 0; i < cfg.P; i++ {
		run.recvCount[i] = make([]int, rounds+1)
		prog := &barrierProgram{run: run, waiting: -1}
		run.progs[i] = prog
		m.SetProgram(i, prog)
	}
	m.Start()
	m.Run()

	res := BarrierResult{
		Rounds:    rounds,
		Predicted: float64(rounds) * (cfg.SendOverhead + cfg.Latency.Mean() + cfg.Handler.Mean()),
	}
	prev := 0.0
	for _, t := range run.completed {
		res.Tally.Add(t - prev)
		prev = t
	}
	res.PerBarrier = res.Tally.Mean()
	return res, nil
}

// AllReduceResult reports a simulated allreduce.
type AllReduceResult struct {
	// Values holds the combined value delivered at every node.
	Values []float64
	// Finish is the time the last node received the result.
	Finish float64
	// Predicted is the reduce + broadcast composition estimate for
	// deterministic symmetric costs.
	Predicted float64
}

// AllReduce combines values at the root by a binomial-tree reduction
// and redistributes the result along the optimal broadcast tree — the
// classic reduce-then-broadcast allreduce. The two phases run on one
// machine, so the broadcast starts exactly when the reduction delivers.
func AllReduce(cfg Config, values []float64) (AllReduceResult, error) {
	if err := cfg.validate(); err != nil {
		return AllReduceResult{}, err
	}
	if len(values) != cfg.P {
		return AllReduceResult{}, fmt.Errorf("am: %d values for %d nodes", len(values), cfg.P)
	}
	// Phase 1: reduce on its own machine instance.
	red, err := Reduce(cfg, values)
	if err != nil {
		return AllReduceResult{}, err
	}
	// Phase 2: broadcast the combined value. Timing composes additively
	// because the root holds the value and every other node idles at
	// the phase boundary.
	bcfg := cfg
	bcfg.Seed = cfg.Seed + 1
	bres, err := Broadcast(bcfg)
	if err != nil {
		return AllReduceResult{}, err
	}
	out := make([]float64, cfg.P)
	for i := range out {
		out[i] = red.Value
	}
	return AllReduceResult{
		Values:    out,
		Finish:    red.Finish + bres.Finish,
		Predicted: red.Predicted + bres.Predicted,
	}, nil
}

package fit

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

// lockSimSweep runs the simulated lock workload across a thread sweep
// at W=800, St=20, So=100 (C²=1) and returns the throughput
// observations.
func lockSimSweep(t *testing.T) []LockObservation {
	t.Helper()
	var obs []LockObservation
	for _, n := range []int{1, 2, 4, 8, 16} {
		sim, err := workload.RunLock(workload.LockConfig{
			Threads:    n,
			Work:       dist.NewExponential(800),
			Handoff:    dist.NewDeterministic(20),
			Critical:   dist.NewExponential(100),
			WarmupTime: 30_000, MeasureTime: 500_000,
			Seed: 11,
		})
		if err != nil {
			t.Fatalf("Threads=%d: %v", n, err)
		}
		obs = append(obs, LockObservation{Threads: n, X: sim.X})
	}
	return obs
}

// TestLockFitRecoversParameters: generate a synthetic sweep from known
// lock-model parameters and check the fit recovers them (and
// reproduces the curve essentially exactly).
func TestLockFitRecoversParameters(t *testing.T) {
	trueW, trueSt, so, c2 := 900.0, 25.0, 100.0, 1.0
	var obs []LockObservation
	for _, n := range []int{1, 2, 4, 8, 16} {
		res, err := core.Lock(core.LockParams{Threads: n, W: trueW, St: trueSt, So: so, C2: c2})
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, LockObservation{Threads: n, X: res.X})
	}
	fit, err := Lock(obs, so, c2)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RelRMSE > 1e-4 {
		t.Errorf("self-fit RelRMSE = %v", fit.RelRMSE)
	}
	// W and 2St trade off weakly at low utilization; the combined cycle
	// overhead must come back sharply even when the split is softer.
	if got, want := fit.W+2*fit.St, trueW+2*trueSt; math.Abs(got-want)/want > 0.01 {
		t.Errorf("fitted W+2St = %v, want %v", got, want)
	}
}

// TestLockFreeFitRecoversParameters: the conflict-model analogue.
func TestLockFreeFitRecoversParameters(t *testing.T) {
	trueW, trueSt, so, c2 := 500.0, 8.0, 60.0, 1.0
	var obs []LockObservation
	for _, n := range []int{1, 2, 4, 8, 16} {
		res, err := core.LockFree(core.LockFreeParams{Threads: n, W: trueW, St: trueSt, So: so, C2: c2})
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, LockObservation{Threads: n, X: res.X})
	}
	fit, err := LockFree(obs, so, c2)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RelRMSE > 1e-4 {
		t.Errorf("self-fit RelRMSE = %v", fit.RelRMSE)
	}
	if got, want := fit.W+fit.St, trueW+trueSt; math.Abs(got-want)/want > 0.01 {
		t.Errorf("fitted W+St = %v, want %v", got, want)
	}
}

// TestLockFitFromSimulation: fit the lock model to the simulated
// machine's lock workload — the same substrate pairing the lockbench
// tests use with real measurements — and require agreement within the
// documented 15% contract.
func TestLockFitFromSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	obs := lockSimSweep(t)
	fit, err := Lock(obs, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RelRMSE > 0.15 {
		t.Errorf("RelRMSE = %.1f%% > 15%%", 100*fit.RelRMSE)
	}
	// The simulator ran W=800, St=20: the fitted effective values must
	// land in the neighborhood.
	if fit.W < 600 || fit.W > 1000 {
		t.Errorf("fitted W = %v far from configured 800", fit.W)
	}
}

func TestLockFitErrors(t *testing.T) {
	good := []LockObservation{{Threads: 1, X: 0.001}, {Threads: 4, X: 0.003}}
	if _, err := Lock(nil, 100, 1); err == nil {
		t.Error("empty observations accepted")
	}
	if _, err := Lock(good, 0, 1); err == nil {
		t.Error("So = 0 accepted")
	}
	if _, err := Lock(good, 100, -1); err == nil {
		t.Error("negative C² accepted")
	}
	if _, err := Lock(good, math.NaN(), 1); err == nil {
		t.Error("NaN So accepted")
	}
	if _, err := Lock([]LockObservation{{Threads: 0, X: 1}}, 100, 1); err == nil {
		t.Error("Threads = 0 observation accepted")
	}
	if _, err := LockFree([]LockObservation{{Threads: 1, X: -1}}, 100, 1); err == nil {
		t.Error("negative X observation accepted")
	}
}

package fit

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

// modelObservations builds a noiseless sweep from the model itself.
func modelObservations(t *testing.T, p int, st, so, c2 float64, ws []float64) []Observation {
	t.Helper()
	obs := make([]Observation, 0, len(ws))
	for _, w := range ws {
		res, err := core.AllToAll(core.Params{P: p, W: w, St: st, So: so, C2: c2})
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{W: w, R: res.R, Rq: res.Rq})
	}
	return obs
}

// TestFitRecoversModelParameters: fitting noiseless model output must
// recover the generating parameters almost exactly.
func TestFitRecoversModelParameters(t *testing.T) {
	cases := []struct{ st, so float64 }{
		{40, 200}, {10, 500}, {120, 60},
	}
	ws := []float64{0, 32, 128, 512, 2048}
	for _, c := range cases {
		obs := modelObservations(t, 32, c.st, c.so, 0, ws)
		res, err := AllToAll(obs, 32, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.So-c.so) / c.so; rel > 0.01 {
			t.Errorf("St=%g So=%g: fitted So=%.2f (rel %.2f%%)", c.st, c.so, res.So, rel*100)
		}
		if rel := math.Abs(res.St-c.st) / c.st; rel > 0.05 {
			t.Errorf("St=%g So=%g: fitted St=%.2f (rel %.2f%%)", c.st, c.so, res.St, rel*100)
		}
		if res.RelRMSE > 1e-3 {
			t.Errorf("noiseless fit left residual %.4f%%", res.RelRMSE*100)
		}
	}
}

// TestFitFromSimulation: calibrating against the simulator (the
// practitioner's situation: measurements from a machine whose St/So are
// "unknown") recovers the true parameters within a few percent — the
// model's own bias bound.
func TestFitFromSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const (
		trueSt = 40.0
		trueSo = 200.0
	)
	var obs []Observation
	for _, w := range []float64{0, 64, 256, 1024, 4096} {
		sim, err := workload.RunAllToAll(workload.AllToAllConfig{
			P:             32,
			Work:          dist.NewDeterministic(w),
			Latency:       dist.NewDeterministic(trueSt),
			Service:       dist.NewDeterministic(trueSo),
			WarmupCycles:  300,
			MeasureCycles: 1200,
			Seed:          9,
		})
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{W: w, R: sim.R.Mean(), Rq: sim.Rq.Mean()})
	}
	res, err := AllToAll(obs, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.So-trueSo) / trueSo; rel > 0.08 {
		t.Errorf("fitted So=%.1f, true %.1f (rel %.1f%%)", res.So, trueSo, rel*100)
	}
	if math.Abs(res.St-trueSt) > 0.5*trueSo {
		t.Errorf("fitted St=%.1f wildly off true %.1f", res.St, trueSt)
	}
	if res.RelRMSE > 0.03 {
		t.Errorf("fit residual %.1f%%", res.RelRMSE*100)
	}
	// The calibrated model should predict held-out work values well.
	held := 512.0
	sim, err := workload.RunAllToAll(workload.AllToAllConfig{
		P:             32,
		Work:          dist.NewDeterministic(held),
		Latency:       dist.NewDeterministic(trueSt),
		Service:       dist.NewDeterministic(trueSo),
		WarmupCycles:  300,
		MeasureCycles: 1200,
		Seed:          10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.AllToAll(core.Params{P: 32, W: held, St: res.St, So: res.So, C2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pred.R-sim.R.Mean()) / sim.R.Mean(); rel > 0.03 {
		t.Errorf("held-out prediction off by %.1f%%", rel*100)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := AllToAll([]Observation{{W: 0, R: 1}, {W: 1, R: 2}}, 32, 0); err == nil {
		t.Error("two observations accepted")
	}
	if _, err := AllToAll([]Observation{{W: 0, R: -1}, {W: 1, R: 2}, {W: 2, R: 3}}, 32, 0); err == nil {
		t.Error("negative R accepted")
	}
}

func TestRoundTripOverhead(t *testing.T) {
	obs := []Observation{{W: 100, R: 580}, {W: 200, R: 680}, {W: 400, R: 880}}
	ov, err := RoundTrip(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov-480) > 1e-9 {
		t.Errorf("overhead = %v, want 480", ov)
	}
	if _, err := RoundTrip(nil); err == nil {
		t.Error("empty observations accepted")
	}
	if _, err := RoundTrip([]Observation{{W: 100, R: 50}}); err == nil {
		t.Error("R <= W accepted")
	}
}

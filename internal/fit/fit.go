// Package fit calibrates LoPC's architectural parameters from
// measurements — the inverse problem practitioners face: a LogP/LoPC
// analysis needs St (wire latency) and So (message-handling cost), and
// the standard way to obtain them is to run a microbenchmark sweep and
// fit the model to it.
//
// Given observed mean compute/request cycle times R_i at several work
// settings W_i of the homogeneous all-to-all pattern, AllToAll finds
// the (St, So) minimizing the sum of squared residuals against the
// model of internal/core. Because the model is pessimistic by a few
// percent against a real machine, fitted parameters absorb part of
// that bias — which is exactly what a practitioner calibrating from
// hardware wants.
package fit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/numeric"
	obspkg "repro/internal/obs"
)

// Observation is one point of the calibration sweep: the configured
// mean work W and the measured mean cycle time R. Rq, when positive, is
// the measured mean request-handler response time (queueing plus
// service) at that W; including it is strongly recommended — R(W)
// sweeps alone leave St and So weakly identifiable (they trade off
// along R ≈ W + 2St + ~3So), while Rq pins So directly.
type Observation struct {
	W, R float64
	Rq   float64
}

// Result is the fitted parameterization.
type Result struct {
	// St and So are the fitted architectural parameters.
	St, So float64
	// RMSE is the root-mean-square residual of the fit, in cycles.
	RMSE float64
	// RelRMSE is RMSE over the mean observed R.
	RelRMSE float64
}

// AllToAll fits (St, So) to all-to-all observations on a P-node machine
// with handler variability c2. At least three observations spanning
// different W values are required (two parameters plus a residual check).
func AllToAll(obs []Observation, p int, c2 float64) (Result, error) {
	return AllToAllObserved(obs, p, c2, nil)
}

// AllToAllObserved is AllToAll reporting every model solve the
// optimizer's loss evaluations make to observer (which may be nil) —
// a fit is a long sequence of all-to-all solves, and the convergence
// trace shows how the solver behaves as the optimizer roams the
// (St, So) plane.
func AllToAllObserved(obs []Observation, p int, c2 float64, observer obspkg.SolveObserver) (Result, error) {
	if math.IsNaN(c2) || math.IsInf(c2, 0) || c2 < 0 {
		return Result{}, fmt.Errorf("fit: invalid handler variability C² = %v", c2)
	}
	if len(obs) < 3 {
		return Result{}, fmt.Errorf("fit: need at least 3 observations, got %d", len(obs))
	}
	meanR := 0.0
	for _, o := range obs {
		if o.R <= 0 || o.W < 0 {
			return Result{}, fmt.Errorf("fit: invalid observation %+v", o)
		}
		meanR += o.R
	}
	meanR /= float64(len(obs))

	// Optimize in log space so St, So stay positive, seeded from crude
	// closed-form guesses: at large W the model tends to
	// R ≈ W + 2St + 3So, and the fixed overhead R − W at the smallest W
	// is ≈ 2St + 3.45·So.
	loss := func(x []float64) float64 {
		st, so := math.Exp(x[0]), math.Exp(x[1])
		sum := 0.0
		for _, o := range obs {
			res, err := core.AllToAllObserved(core.Params{P: p, W: o.W, St: st, So: so, C2: c2}, observer)
			if err != nil {
				return math.Inf(1)
			}
			d := res.R - o.R
			sum += d * d
			if o.Rq > 0 {
				dq := res.Rq - o.Rq
				sum += dq * dq
			}
		}
		return sum
	}
	// Initial guess: split the smallest fixed overhead evenly.
	minOverhead := math.Inf(1)
	for _, o := range obs {
		if v := o.R - o.W; v < minOverhead {
			minOverhead = v
		}
	}
	if minOverhead <= 0 {
		minOverhead = meanR * 0.1
	}
	x0 := []float64{math.Log(minOverhead / 4), math.Log(minOverhead / 4)}
	best, fBest, err := numeric.NelderMead(loss, x0, numeric.DefaultNelderMeadOpts())
	if err != nil && math.IsInf(fBest, 1) {
		return Result{}, fmt.Errorf("fit: optimization failed: %w", err)
	}
	rmse := math.Sqrt(fBest / float64(len(obs)))
	return Result{
		St:      math.Exp(best[0]),
		So:      math.Exp(best[1]),
		RMSE:    rmse,
		RelRMSE: rmse / meanR,
	}, nil
}

// RoundTrip fits (St, So) from contention-free round-trip measurements
// alone (a single-client microbenchmark): R = W + 2St + 2So is a line
// in W with intercept 2St + 2So, so the two parameters cannot be
// separated without contention data; RoundTrip therefore returns the
// combined overhead per round trip. It exists to document why the
// all-to-all sweep is the right calibration experiment.
func RoundTrip(obs []Observation) (overhead float64, err error) {
	if len(obs) < 1 {
		return 0, fmt.Errorf("fit: need at least 1 observation")
	}
	sum := 0.0
	for _, o := range obs {
		if o.R <= o.W {
			return 0, fmt.Errorf("fit: observation %+v has R <= W", o)
		}
		sum += o.R - o.W
	}
	return sum / float64(len(obs)), nil
}

package fit

import (
	"math"
	"testing"

	"repro/internal/core"
	obspkg "repro/internal/obs"
)

// windowFrom solves the model at truth and packages its observables the
// way a live-traffic window would see them (exact means, no noise).
func windowFrom(t *testing.T, truth core.ClientServerParams, withOverhead bool) WindowObs {
	t.Helper()
	res, err := core.ClientServer(truth)
	if err != nil {
		t.Fatalf("solving truth %+v: %v", truth, err)
	}
	w := WindowObs{
		P: truth.P, Ps: truth.Ps,
		X: res.X, Rs: res.Rs, So: truth.So, C2: truth.C2,
	}
	if withOverhead {
		w.Overhead = 2 * truth.St
	}
	return w
}

// TestClientServerWindowRecoversTruth: with exact observables and a
// measured overhead stream, the windowed refit inverts the model to the
// generating parameters.
func TestClientServerWindowRecoversTruth(t *testing.T) {
	truth := core.ClientServerParams{P: 24, Ps: 4, W: 1800, St: 120, So: 400, C2: 1}
	got, err := ClientServerWindow(windowFrom(t, truth, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol*want {
			t.Errorf("%s = %v, want %v within %v%%", name, got, want, 100*tol)
		}
	}
	within("W", got.W, truth.W, 0.01)
	within("St", got.St, truth.St, 0.01)
	within("So", got.So, truth.So, 1e-12)
	within("C2", got.C2, truth.C2, 1e-12)
	if got.Method != "neldermead" && got.Loss > 1e-6 {
		t.Errorf("fit ended at loss %v via %q; want a near-zero optimum", got.Loss, got.Method)
	}
}

// TestClientServerWindowPinnedSt: with no overhead stream the refit
// pins St at 0 and loads the whole outside-time budget into W — the
// documented degeneracy along W + 2St.
func TestClientServerWindowPinnedSt(t *testing.T) {
	truth := core.ClientServerParams{P: 24, Ps: 4, W: 1800, St: 120, So: 400, C2: 0.5}
	got, err := ClientServerWindow(windowFrom(t, truth, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.St != 0 {
		t.Errorf("St = %v, want pinned 0 without an overhead stream", got.St)
	}
	wantW := truth.W + 2*truth.St
	if math.Abs(got.W-wantW) > 0.02*wantW {
		t.Errorf("W = %v, want W + 2St = %v within 2%%", got.W, wantW)
	}
}

// TestClientServerWindowValidation: broken windows are rejected with an
// error, not fit.
func TestClientServerWindowValidation(t *testing.T) {
	valid := WindowObs{P: 16, Ps: 4, X: 0.001, Rs: 600, So: 400, C2: 1, Overhead: 100}
	if _, err := ClientServerWindow(valid, nil); err != nil {
		t.Fatalf("valid window rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*WindowObs)
	}{
		{"population", func(w *WindowObs) { w.P = 1 }},
		{"servers", func(w *WindowObs) { w.Ps = w.P }},
		{"zero throughput", func(w *WindowObs) { w.X = 0 }},
		{"NaN throughput", func(w *WindowObs) { w.X = math.NaN() }},
		{"zero service", func(w *WindowObs) { w.So = 0 }},
		{"negative C2", func(w *WindowObs) { w.C2 = -1 }},
		{"negative Rs", func(w *WindowObs) { w.Rs = -5 }},
		{"Inf overhead", func(w *WindowObs) { w.Overhead = math.Inf(1) }},
		{"saturated", func(w *WindowObs) { w.X = 20; w.So = 400 }},
	}
	for _, c := range cases {
		w := valid
		c.mutate(&w)
		if _, err := ClientServerWindow(w, nil); err == nil {
			t.Errorf("%s: window %+v accepted, want error", c.name, w)
		}
	}
}

// TestClientServerWindowObserved: the refit's loss evaluations report
// their solves to the observer, like every other fit entry point.
func TestClientServerWindowObserved(t *testing.T) {
	truth := core.ClientServerParams{P: 16, Ps: 2, W: 1000, St: 50, So: 300, C2: 1}
	var solves int
	obs := countingObserver{n: &solves}
	if _, err := ClientServerWindow(windowFrom(t, truth, true), obs); err != nil {
		t.Fatal(err)
	}
	if solves == 0 {
		t.Error("observer saw no solves during the window refit")
	}
}

type countingObserver struct{ n *int }

func (c countingObserver) BeginSolve(string) func(obspkg.SolveStats) {
	*c.n++
	return func(obspkg.SolveStats) {}
}

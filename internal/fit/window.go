package fit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/numeric"
	obspkg "repro/internal/obs"
)

// WindowObs summarizes one window of live traffic against the
// client-server work-pile model of Chapter 6: the serving process is
// read as P closed clients (concurrent callers plus queued requests)
// cycling through think time W, two trips of latency St, and a visit to
// one of Ps servers (solver workers) costing So per request. All times
// share one unit (the serve layer uses microseconds); X is requests per
// that unit.
type WindowObs struct {
	// P is the modeled closed population; Ps the server (worker) count.
	P, Ps int
	// X is the observed throughput: completed requests per time unit
	// over the window.
	X float64
	// Rs is the observed mean server response per request: queue wait
	// plus service.
	Rs float64
	// So is the observed mean service time, and C2 the squared
	// coefficient of variation of the service samples.
	So, C2 float64
	// Overhead is the observed mean per-request time outside queueing
	// and service (dispatch, decode, marshal) — the live counterpart of
	// the model's two network trips, so Overhead ≈ 2·St. Zero means
	// unmeasured, which pins St at 0: means of X and Rs alone cannot
	// separate St from W (they trade off along W + 2St, the same
	// degeneracy RoundTrip documents for contention-free sweeps).
	Overhead float64
}

// Validate reports whether the window is usable for a refit.
func (w WindowObs) Validate() error {
	switch {
	case w.P < 2 || w.Ps < 1 || w.Ps >= w.P:
		return fmt.Errorf("fit: window needs 2 <= P and 1 <= Ps < P, got P=%d Ps=%d", w.P, w.Ps)
	case !(w.X > 0) || math.IsInf(w.X, 0):
		return fmt.Errorf("fit: window throughput X = %v must be positive and finite", w.X)
	case !(w.So > 0) || math.IsInf(w.So, 0):
		return fmt.Errorf("fit: window mean service So = %v must be positive and finite", w.So)
	case math.IsNaN(w.C2) || math.IsInf(w.C2, 0) || w.C2 < 0:
		return fmt.Errorf("fit: window service variability C² = %v", w.C2)
	case math.IsNaN(w.Rs) || math.IsInf(w.Rs, 0) || w.Rs < 0:
		return fmt.Errorf("fit: window server response Rs = %v", w.Rs)
	case math.IsNaN(w.Overhead) || math.IsInf(w.Overhead, 0) || w.Overhead < 0:
		return fmt.Errorf("fit: window overhead %v", w.Overhead)
	case w.X*w.So/float64(w.Ps) >= 1:
		return fmt.Errorf("fit: observed utilization X·So/Ps = %v >= 1; no closed model reproduces it",
			w.X*w.So/float64(w.Ps))
	}
	return nil
}

// WindowFit is the parameterization refit from one traffic window. The
// JSON shape is what /v1/calibration serves.
type WindowFit struct {
	// W, St, So are in the window's time unit; C2 is dimensionless.
	W  float64 `json:"w"`
	St float64 `json:"st"`
	So float64 `json:"so"`
	C2 float64 `json:"c2"`
	// Loss is the value of the refit objective at the returned point
	// (squared relative residuals of throughput, server response, and —
	// when measured — overhead).
	Loss float64 `json:"loss"`
	// Method records how the point was found: "neldermead" when the
	// optimizer improved on the closed-form start, "moments" when the
	// closed-form moment inversion already minimized the objective.
	Method string `json:"method"`
}

// ClientServerWindow refits (W, St, So, C²) to one live-traffic window.
// So and C² come straight from the service-sample moments; (W, St) are
// found by Nelder–Mead in log space so the client-server AMVA model
// reproduces the window's observed throughput and server response, with
// the measured per-request overhead anchoring 2·St. The closed-form
// moment inversion (W from the cycle identity P_c/X = W + 2St + Rs + So)
// seeds the simplex and stands in wherever the optimizer cannot improve
// on it, so every valid window yields a usable fit. Solves made by the
// loss evaluations are reported to observer (which may be nil).
func ClientServerWindow(w WindowObs, observer obspkg.SolveObserver) (WindowFit, error) {
	if err := w.Validate(); err != nil {
		return WindowFit{}, err
	}
	pc := float64(w.P - w.Ps)
	rs := math.Max(w.Rs, w.So) // queueing cannot make the response shorter than service

	// Closed-form start: St from the measured overhead (two trips per
	// request), W from the cycle identity, floored at a small positive
	// value so the log-space simplex always has a seed.
	st0 := w.Overhead / 2
	w0 := pc/w.X - 2*st0 - rs - w.So
	if !(w0 > 0) {
		w0 = w.So / 100
	}

	residuals := func(wt, st float64) float64 {
		res, err := core.ClientServerObserved(core.ClientServerParams{
			P: w.P, Ps: w.Ps, W: wt, St: st, So: w.So, C2: w.C2,
		}, observer)
		if err != nil {
			return math.Inf(1)
		}
		dx := (res.X - w.X) / w.X
		dr := (res.Rs - rs) / rs
		sum := dx*dx + dr*dr
		if w.Overhead > 0 {
			do := (2*st - w.Overhead) / w.Overhead
			sum += do * do
		}
		return sum
	}

	var best []float64
	var fBest float64
	var err error
	if w.Overhead > 0 {
		loss := func(x []float64) float64 { return residuals(math.Exp(x[0]), math.Exp(x[1])) }
		best, fBest, err = numeric.NelderMead(loss, []float64{math.Log(w0), math.Log(st0)}, numeric.DefaultNelderMeadOpts())
	} else {
		// No overhead stream: St is pinned at 0 and only W is free.
		loss := func(x []float64) float64 { return residuals(math.Exp(x[0]), 0) }
		best, fBest, err = numeric.NelderMead(loss, []float64{math.Log(w0)}, numeric.DefaultNelderMeadOpts())
		if err == nil {
			best = append(best, math.Inf(-1)) // exp(-Inf) = 0: the pinned St
		}
	}

	f0 := residuals(w0, st0)
	switch {
	case err == nil && !math.IsInf(fBest, 1) && fBest <= f0:
		return WindowFit{
			W: math.Exp(best[0]), St: math.Exp(best[1]),
			So: w.So, C2: w.C2, Loss: fBest, Method: "neldermead",
		}, nil
	case !math.IsInf(f0, 1):
		// The optimizer failed or regressed; the moment inversion is a
		// feasible point and keeps the estimator live.
		return WindowFit{W: w0, St: st0, So: w.So, C2: w.C2, Loss: f0, Method: "moments"}, nil
	default:
		if err == nil {
			err = fmt.Errorf("objective infeasible at every probed point")
		}
		return WindowFit{}, fmt.Errorf("fit: no feasible (W, St) for window %+v: %w", w, err)
	}
}

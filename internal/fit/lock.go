package fit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/numeric"
	obspkg "repro/internal/obs"
)

// LockObservation is one point of a lock contention sweep: the thread
// count and the measured system throughput X (operations per time
// unit). This is the shape internal/workload/lockbench produces.
type LockObservation struct {
	Threads int
	X       float64
}

// LockResult is the fitted parameterization of a contention sweep.
type LockResult struct {
	// W and St are the fitted effective work and handoff times: the
	// configured work plus whatever per-operation overhead the runtime
	// adds (scheduler wakeups, cache misses the spin calibration does
	// not see).
	W, St float64
	// RelRMSE is the root-mean-square relative throughput residual of
	// the fitted model against the observations.
	RelRMSE float64
}

// Lock fits (W, St) of the coarse-grained lock model to a throughput
// sweep, holding (So, C2) fixed — in a lockbench run the critical
// section is a calibrated spin, so its mean and variability are known
// by construction, while the effective work and handoff absorb runtime
// overhead. Residuals are relative (X spans decades across thread
// counts). With a single observation W and St are not separately
// identifiable — they trade off along W + 2St = const — but the fitted
// pair still reproduces the measurement, which is all the
// model-vs-measured contract needs.
func Lock(obs []LockObservation, so, c2 float64) (LockResult, error) {
	if so <= 0 || math.IsNaN(so) || math.IsInf(so, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid service time So = %v", so)
	}
	if c2 < 0 || math.IsNaN(c2) || math.IsInf(c2, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid variability C² = %v", c2)
	}
	return lockFit(obs, so, c2, nil, func(n int, w, st float64, o obspkg.SolveObserver) (float64, error) {
		res, err := core.LockObserved(core.LockParams{Threads: n, W: w, St: st, So: so, C2: c2}, o)
		return res.X, err
	})
}

// LockFree fits (W, St) of the CAS-retry conflict model to a
// throughput sweep, holding (So, C2) fixed, with the same conventions
// as Lock.
func LockFree(obs []LockObservation, so, c2 float64) (LockResult, error) {
	if so <= 0 || math.IsNaN(so) || math.IsInf(so, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid service time So = %v", so)
	}
	if c2 < 0 || math.IsNaN(c2) || math.IsInf(c2, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid variability C² = %v", c2)
	}
	return lockFit(obs, so, c2, nil, func(n int, w, st float64, o obspkg.SolveObserver) (float64, error) {
		res, err := core.LockFreeObserved(core.LockFreeParams{Threads: n, W: w, St: st, So: so, C2: c2}, o)
		return res.X, err
	})
}

// lockFit is the shared optimizer: minimize the sum of squared
// relative throughput residuals over (W, St), in log space so both
// stay positive.
func lockFit(obs []LockObservation, so, c2 float64, observer obspkg.SolveObserver, model func(n int, w, st float64, o obspkg.SolveObserver) (float64, error)) (LockResult, error) {
	if so <= 0 || math.IsNaN(so) || math.IsInf(so, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid service time So = %v", so)
	}
	if c2 < 0 || math.IsNaN(c2) || math.IsInf(c2, 0) {
		return LockResult{}, fmt.Errorf("fit: invalid variability C² = %v", c2)
	}
	if len(obs) < 1 {
		return LockResult{}, fmt.Errorf("fit: need at least 1 observation")
	}
	for _, o := range obs {
		if o.Threads < 1 || o.X <= 0 || math.IsNaN(o.X) || math.IsInf(o.X, 0) {
			return LockResult{}, fmt.Errorf("fit: invalid observation %+v", o)
		}
	}
	loss := func(x []float64) float64 {
		w, st := math.Exp(x[0]), math.Exp(x[1])
		sum := 0.0
		for _, o := range obs {
			xm, err := model(o.Threads, w, st, observer)
			if err != nil {
				return math.Inf(1)
			}
			d := (xm - o.X) / o.X
			sum += d * d
		}
		return sum
	}
	// Seed from the least-loaded observation: its cycle is roughly
	// Threads/X, of which So (and a trip pair) is known; start with the
	// remainder as W and a small St.
	guessW := so
	for _, o := range obs {
		if cyc := float64(o.Threads)/o.X - so; cyc > guessW {
			guessW = cyc
		}
	}
	x0 := []float64{math.Log(guessW), math.Log(so / 4)}
	best, fBest, err := numeric.NelderMead(loss, x0, numeric.DefaultNelderMeadOpts())
	if err != nil && math.IsInf(fBest, 1) {
		return LockResult{}, fmt.Errorf("fit: optimization failed: %w", err)
	}
	return LockResult{
		W:       math.Exp(best[0]),
		St:      math.Exp(best[1]),
		RelRMSE: math.Sqrt(fBest / float64(len(obs))),
	}, nil
}

package obs

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(data)
}

func fakeClk() *clock.Fake {
	return clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

// record drives one solve through the recorder, advancing the fake
// clock by wall between begin and end.
func record(c *ConvRecorder, fake *clock.Fake, solver string, iters int, wall time.Duration) {
	done := c.BeginSolve(solver)
	fake.Advance(wall)
	done(SolveStats{Iters: iters, Residual: 1e-12, Converged: true})
}

// TestConvRecorderWallTime: wall times come from the injected clock, so
// they are deterministic under test.
func TestConvRecorderWallTime(t *testing.T) {
	fake := fakeClk()
	c := NewConvRecorder(8, fake, nil)
	record(c, fake, "alltoall", 17, 250*time.Microsecond)
	got := c.Traces()
	if len(got) != 1 {
		t.Fatalf("Traces() returned %d entries, want 1", len(got))
	}
	tr := got[0]
	if tr.Seq != 1 || tr.Solver != "alltoall" || tr.Iters != 17 || tr.WallUS != 250 {
		t.Errorf("trace = %+v, want seq 1, solver alltoall, 17 iters, 250µs", tr)
	}
	if !tr.Converged || tr.Residual != 1e-12 {
		t.Errorf("trace = %+v, want converged with residual 1e-12", tr)
	}
}

// TestConvRecorderEviction: the ring keeps only the newest cap solves,
// oldest first, while Total and Seq keep counting past eviction.
func TestConvRecorderEviction(t *testing.T) {
	fake := fakeClk()
	c := NewConvRecorder(3, fake, nil)
	for i := 1; i <= 7; i++ {
		record(c, fake, "general", i, time.Microsecond)
	}
	if c.Total() != 7 {
		t.Errorf("Total = %d, want 7", c.Total())
	}
	got := c.Traces()
	if len(got) != 3 {
		t.Fatalf("Traces() returned %d entries, want 3", len(got))
	}
	for i, wantSeq := range []int{5, 6, 7} {
		if got[i].Seq != wantSeq || got[i].Iters != wantSeq {
			t.Errorf("trace[%d] = seq %d iters %d, want seq/iters %d", i, got[i].Seq, got[i].Iters, wantSeq)
		}
	}
}

// TestConvRecorderJSON: the JSON export round-trips and carries the
// total/capacity envelope.
func TestConvRecorderJSON(t *testing.T) {
	fake := fakeClk()
	c := NewConvRecorder(2, fake, nil)
	for i := 1; i <= 3; i++ {
		record(c, fake, "clientserver", 10*i, time.Duration(i)*time.Millisecond)
	}
	var b strings.Builder
	if err := c.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Total    int          `json:"total"`
		Capacity int          `json:"capacity"`
		Traces   []SolveTrace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Total != 3 || doc.Capacity != 2 || len(doc.Traces) != 2 {
		t.Errorf("envelope = total %d cap %d traces %d, want 3/2/2", doc.Total, doc.Capacity, len(doc.Traces))
	}
	if doc.Traces[0].Seq != 2 || doc.Traces[1].Seq != 3 {
		t.Errorf("trace seqs = %d,%d, want 2,3", doc.Traces[0].Seq, doc.Traces[1].Seq)
	}
	if doc.Traces[1].WallUS != 3000 {
		t.Errorf("trace[1].WallUS = %d, want 3000", doc.Traces[1].WallUS)
	}
}

// TestConvRecorderCSV: header plus one row per retained trace.
func TestConvRecorderCSV(t *testing.T) {
	fake := fakeClk()
	c := NewConvRecorder(4, fake, nil)
	record(c, fake, "mva", 42, 5*time.Microsecond)
	done := c.BeginSolve("general")
	fake.Advance(time.Microsecond)
	done(SolveStats{Iters: 1, Residual: 0.5, Err: "diverged"})
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != "seq,solver,iters,residual,converged,guard_trips,max_util,wall_us,err" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[1] != "1,mva,42,1e-12,true,0,0,5," {
		t.Errorf("CSV row 1 = %q", lines[1])
	}
	if lines[2] != "2,general,1,0.5,false,0,0,1,diverged" {
		t.Errorf("CSV row 2 = %q", lines[2])
	}
}

// TestConvRecorderWriteFile: extension picks the format.
func TestConvRecorderWriteFile(t *testing.T) {
	fake := fakeClk()
	c := NewConvRecorder(4, fake, nil)
	record(c, fake, "alltoall", 9, time.Microsecond)
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		prefix string
	}{
		{dir + "/trace.json", "{"},
		{dir + "/trace.csv", "seq,"},
	} {
		if err := c.WriteFile(tc.name); err != nil {
			t.Fatalf("WriteFile(%s): %v", tc.name, err)
		}
		data := readFile(t, tc.name)
		if !strings.HasPrefix(data, tc.prefix) {
			t.Errorf("%s starts %q, want prefix %q", tc.name, data[:min(len(data), 20)], tc.prefix)
		}
	}
}

// TestConvRecorderMetrics: with a registry attached, solves mirror into
// the per-solver counters and histograms.
func TestConvRecorderMetrics(t *testing.T) {
	fake := fakeClk()
	reg := NewRegistry()
	c := NewConvRecorder(8, fake, reg)
	record(c, fake, "alltoall", 20, 10*time.Microsecond)
	record(c, fake, "alltoall", 30, 10*time.Microsecond)
	done := c.BeginSolve("alltoall")
	done(SolveStats{Iters: 5, GuardTrips: 3, Err: "saturated"})

	labels := Labels{"solver": "alltoall"}
	if got := reg.Counter("lopc_solves_total", "", labels).Value(); got != 3 {
		t.Errorf("solves_total = %d, want 3", got)
	}
	if got := reg.Counter("lopc_solve_errors_total", "", labels).Value(); got != 1 {
		t.Errorf("solve_errors_total = %d, want 1", got)
	}
	if got := reg.Counter("lopc_solve_guard_trips_total", "", labels).Value(); got != 3 {
		t.Errorf("guard_trips_total = %d, want 3", got)
	}
	hs := reg.Histogram("lopc_solve_iterations", "", labels, nil).Snapshot()
	if hs.Count != 3 || hs.Sum != 55 {
		t.Errorf("iterations histogram count %d sum %v, want 3 and 55", hs.Count, hs.Sum)
	}
}

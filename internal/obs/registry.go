// Package obs is the repository's shared telemetry layer: a concurrent
// metrics registry (counters, gauges, histograms with configurable
// buckets) with deterministic Prometheus text exposition, plus the
// solver-observability seam (SolveObserver, ConvRecorder) that the AMVA
// fixed-point solvers in internal/core and internal/mva report
// convergence behaviour through.
//
// The package is dependency-free (standard library plus internal/clock)
// and deterministic by construction: nothing here reads a wall clock —
// every recorded time comes through an injected clock.Clock — and every
// rendered document (Prometheus exposition, convergence-trace JSON/CSV)
// orders its content by sorted names, so identical inputs produce
// byte-identical output. Instrument updates are a single atomic
// operation on the hot path; registration is mutex-guarded and meant to
// happen once, at setup.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an optional set of constant key/value labels attached to an
// instrument at registration. Each distinct (name, labels) pair is its
// own series; exposition renders labels sorted by key.
type Labels map[string]string

// kind classifies a metric family.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing count. The zero value is ready
// to use, but instruments normally come from a Registry so they appear
// in the exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative: counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued level (queue depth, in-flight requests).
// All methods are a single atomic operation.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative allowed) and returns the new
// value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets: bucket i holds
// values v with bounds[i-1] < v ≤ bounds[i], plus an implicit +Inf
// overflow bucket, matching the Prometheus cumulative-`le` convention.
// Observation is lock-free: one atomic add for the bucket plus CAS
// updates for the running sum and max. NaN observations are dropped —
// they would poison the sum and match no bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the largest observation
	tap     atomic.Pointer[func(float64)]
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bucket with v <= bound; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	if t := h.tap.Load(); t != nil {
		(*t)(v)
	}
}

// SetTap installs fn as the histogram's sample tap: every subsequent
// Observe forwards its raw value to fn after recording it, giving
// consumers (the online calibration estimator) the per-sample stream
// the cumulative buckets discard. fn runs synchronously on the
// observing goroutine and must be safe for concurrent use; SetTap(nil)
// removes the tap. At most one tap is active per histogram — a second
// SetTap replaces the first.
func (h *Histogram) SetTap(fn func(v float64)) {
	if fn == nil {
		h.tap.Store(nil)
		return
	}
	h.tap.Store(&fn)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative) with the overflow bucket last,
// so len(Counts) == len(Bounds)+1.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Max    float64
}

// Snapshot copies the histogram's current state. Concurrent observers
// may land between field reads; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile of everything observed so far; it
// is shorthand for h.Snapshot().Quantile(q). Callers reading several
// quantiles should take one Snapshot and query that, so all estimates
// describe the same point in time.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Mean returns the arithmetic mean of the observations in the
// snapshot, exact (not bucket-estimated) because the histogram tracks
// the running sum. An empty snapshot returns 0.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation inside the containing bucket, the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from max(0, lower bound); a quantile landing in the
// overflow bucket returns the tracked maximum. An empty histogram
// returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if lo < 0 {
			lo = math.Min(0, s.Bounds[i])
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Max
}

// ExpBuckets returns n exponentially growing bucket bounds: start,
// start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d) needs start > 0, factor > 1, n >= 1", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// series is one registered instrument with its label signature.
type series struct {
	signature string // canonical `k="v",…` form, "" for unlabeled
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series of one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// Registry holds named instruments and renders them as Prometheus text
// exposition. Registration methods are idempotent: asking for an
// already-registered (name, labels) pair returns the existing
// instrument, so callers can register lazily from request paths.
// Registering the same name with a different metric kind panics — that
// is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns (registering on first use) the counter for the given
// name and labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(name, help, counterKind, labels, nil, nil).counter
}

// Gauge returns (registering on first use) the gauge for the given name
// and labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(name, help, gaugeKind, labels, nil, nil).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for levels owned elsewhere (cache size, drain
// state). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, gaugeFuncKind, labels, nil, fn)
}

// Histogram returns (registering on first use) the histogram for the
// given name and labels. bounds are inclusive upper bounds, strictly
// increasing; an overflow bucket is implicit. Bounds are fixed at first
// registration; later calls for the same series ignore them.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	return r.register(name, help, histogramKind, labels, bounds, nil).hist
}

// register returns the series for (name, labels), creating the family,
// series, and instrument as needed — all under the registry lock, so
// concurrent first registrations of one series agree on a single
// instrument — and enforces kind consistency.
func (r *Registry) register(name, help string, k kind, labels Labels, bounds []float64, fn func() float64) *series {
	checkMetricName(name)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != k && !(f.kind == gaugeKind && k == gaugeFuncKind) && !(f.kind == gaugeFuncKind && k == gaugeKind) {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{signature: sig}
		switch k {
		case counterKind:
			s.counter = &Counter{}
		case gaugeKind:
			s.gauge = &Gauge{}
		case gaugeFuncKind:
			s.gaugeFn = fn
		case histogramKind:
			s.hist = newHistogram(bounds)
		}
		f.series[sig] = s
	} else if k == gaugeKind && s.gauge == nil || k == gaugeFuncKind && s.gaugeFn == nil {
		// Family-level gauge/gaugeFunc mixing is fine, but one series is
		// one instrument: a signature registered as a GaugeFunc cannot be
		// re-requested as a settable Gauge, or vice versa.
		panic(fmt.Sprintf("obs: metric %q series {%s} registered as the other gauge flavour", name, sig))
	}
	return s
}

// signature renders labels in canonical sorted `k="v",…` form.
func signature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		checkLabelName(k)
		//lopc:allow nondeterminism collection order is normalized by the sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabelValue(labels[k]))
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes to a label
// value; %q above supplies the quotes and escapes " and \ for us, so
// only the newline needs mapping — %q turns it into \n already. This
// helper therefore only strips characters %q would render as Go-style
// escapes Prometheus does not know (\t, \r, \xNN), replacing them with
// spaces to keep the exposition parseable.
func escapeLabelValue(v string) string {
	return strings.Map(func(r rune) rune {
		if r == '\t' || r == '\r' {
			return ' '
		}
		return r
	}, v)
}

// checkMetricName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// checkLabelName enforces the label-name grammar [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func validName(name string, allowColon bool) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && allowColon:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition byte-for-byte:
// family and series ordering, HELP/TYPE lines, cumulative histogram
// buckets with le last, and value formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("lopc_requests_total", "requests served", Labels{"route": "/alltoall"}).Add(3)
	r.Counter("lopc_requests_total", "requests served", Labels{"route": "/mva"}).Inc()
	r.Gauge("lopc_in_flight", "requests in flight", nil).Set(2)
	r.GaugeFunc("lopc_cache_size", "entries in the solve cache", nil, func() float64 { return 7 })
	h := r.Histogram("lopc_latency_us", "request latency in microseconds", nil, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP lopc_cache_size entries in the solve cache
# TYPE lopc_cache_size gauge
lopc_cache_size 7
# HELP lopc_in_flight requests in flight
# TYPE lopc_in_flight gauge
lopc_in_flight 2
# HELP lopc_latency_us request latency in microseconds
# TYPE lopc_latency_us histogram
lopc_latency_us_bucket{le="1"} 2
lopc_latency_us_bucket{le="2"} 2
lopc_latency_us_bucket{le="4"} 3
lopc_latency_us_bucket{le="+Inf"} 4
lopc_latency_us_sum 104.5
lopc_latency_us_count 4
# HELP lopc_requests_total requests served
# TYPE lopc_requests_total counter
lopc_requests_total{route="/alltoall"} 3
lopc_requests_total{route="/mva"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: same state, byte-identical output.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, route := range []string{"/c", "/a", "/b"} {
		r.Counter("lopc_x_total", "h", Labels{"route": route}).Inc()
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two expositions of identical state differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestPrometheusEscaping: HELP newlines/backslashes and label-value
// quotes survive as exposition escapes.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("lopc_esc_total", "line one\nback\\slash", Labels{"q": `say "hi"`}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP lopc_esc_total line one\nback\\slash`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `lopc_esc_total{q="say \"hi\""} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestMetricNameValidation: bad names are rejected at registration.
func TestMetricNameValidation(t *testing.T) {
	for _, bad := range []string{"", "9start", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "h", nil)
		}()
	}
}

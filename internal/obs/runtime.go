package obs

import "runtime"

// RegisterRuntime adds the Go runtime's own health gauges to the
// registry, evaluated lazily at each exposition: goroutine count, heap
// in use, cumulative allocations, GC cycles, and GOMAXPROCS. Callers
// that golden-test their exposition should keep these off a test
// registry — the values depend on the live process, not on recorded
// traffic.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("lopc_goroutines", "current goroutine count", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("lopc_gomaxprocs", "GOMAXPROCS at exposition time", nil, func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc("lopc_heap_alloc_bytes", "bytes of allocated heap objects in use", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc("lopc_alloc_bytes_total", "cumulative bytes allocated on the heap", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.TotalAlloc)
	})
	r.GaugeFunc("lopc_gc_cycles_total", "completed garbage-collection cycles", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}

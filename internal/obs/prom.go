package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// WritePrometheus renders (version 0.0.4 of the format).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format: families sorted by name, series sorted by
// label signature, histograms as cumulative `_bucket{le=…}` series plus
// `_sum` and `_count`. Output for identical instrument state is
// byte-identical, so the exposition can be golden-tested.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		//lopc:allow nondeterminism collection order is normalized by the sort below
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			//lopc:allow nondeterminism collection order is normalized by the sort below
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			writeSeries(bw, f, f.series[sig])
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.signature), s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.signature), s.gauge.Value())
	case s.gaugeFn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.signature), formatValue(s.gaugeFn()))
	case s.hist != nil:
		snap := s.hist.Snapshot()
		cum := int64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.signature, formatValue(bound)), cum)
		}
		cum += snap.Counts[len(snap.Bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.signature, "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.signature), formatValue(snap.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.signature), snap.Count)
	}
}

// braced wraps a non-empty label signature in braces.
func braced(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// bracedLe appends the `le` label to a signature, keeping it last the
// way Prometheus's own client renders bucket series.
func bracedLe(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return "{" + sig + `,le="` + le + `"}`
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, with Inf spelled +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the exposition escapes to HELP text: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

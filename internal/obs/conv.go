package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/clock"
)

// SolveStats describes one completed fixed-point solve, as reported by
// the AMVA solvers in internal/core and internal/mva.
type SolveStats struct {
	// Iters is the number of fixed-point iterations the solve took.
	Iters int
	// Residual is the final convergence residual (max successive-iterate
	// delta), the quantity compared against the solver's tolerance.
	Residual float64
	// Converged reports whether the solve met its tolerance (false on
	// budget exhaustion or divergence).
	Converged bool
	// GuardTrips counts iterations on which a feasibility guard fired:
	// an infeasible trial iterate pushed back into the feasible region,
	// or a utilization clamped below saturation. A solve with many guard
	// trips converged, but near the edge of the model's domain.
	GuardTrips int
	// MaxUtil is the peak utilization the iteration visited — how close
	// the solve came to the saturation (divergence) guards; 1 is the
	// wall.
	MaxUtil float64
	// Err is the solve error message, "" on success.
	Err string
}

// SolveObserver is the seam solvers report through. BeginSolve is
// called as a solve starts and returns the completion func, so the
// observer — not the deterministic solver package — brackets wall time
// on its own injected clock. Solvers hold a nil-check-only cost when
// observation is off: one comparison per solve, nothing per iteration.
type SolveObserver interface {
	BeginSolve(solver string) func(SolveStats)
}

// SolveTrace is one recorded solve in a ConvRecorder's ring buffer.
type SolveTrace struct {
	// Seq numbers solves in completion order, starting at 1; it keeps
	// counting when the ring evicts, so gaps reveal eviction.
	Seq        int     `json:"seq"`
	Solver     string  `json:"solver"`
	Iters      int     `json:"iters"`
	Residual   float64 `json:"residual"`
	Converged  bool    `json:"converged"`
	GuardTrips int     `json:"guard_trips,omitempty"`
	MaxUtil    float64 `json:"max_util,omitempty"`
	WallUS     int64   `json:"wall_us"`
	Err        string  `json:"err,omitempty"`
}

// ConvRecorder implements SolveObserver: it keeps the most recent
// solves in a fixed-capacity ring buffer, exportable as JSON or CSV,
// and (when given a Registry) mirrors them into metrics: per-solver
// solve/error/guard-trip counters and iteration/wall-time histograms.
type ConvRecorder struct {
	clk clock.Clock
	reg *Registry

	mu    sync.Mutex
	ring  []SolveTrace
	cap   int
	next  int // ring insertion point once full
	total int
}

// DefaultConvCapacity is the ring size NewConvRecorder uses for
// capacity <= 0.
const DefaultConvCapacity = 1024

// NewConvRecorder builds a recorder holding the last capacity solves
// (<= 0 means DefaultConvCapacity). clk supplies solve wall times; nil
// means clock.System — tests inject a clock.Fake so recorded WallUS
// values are deterministic. reg, when non-nil, receives the mirrored
// metrics.
func NewConvRecorder(capacity int, clk clock.Clock, reg *Registry) *ConvRecorder {
	if capacity <= 0 {
		capacity = DefaultConvCapacity
	}
	if clk == nil {
		clk = clock.System
	}
	return &ConvRecorder{clk: clk, reg: reg, cap: capacity}
}

// iterBuckets spans 1 … 2^17 iterations; solves at the paper's
// parameter ranges take tens, but near-saturation points climb.
var iterBuckets = ExpBuckets(1, 2, 18)

// wallBuckets spans 1µs … ~67s in powers of two.
var wallBuckets = ExpBuckets(1, 2, 27)

// BeginSolve implements SolveObserver.
func (c *ConvRecorder) BeginSolve(solver string) func(SolveStats) {
	start := c.clk.Now()
	return func(s SolveStats) {
		wall := c.clk.Now().Sub(start)
		tr := SolveTrace{
			Solver:     solver,
			Iters:      s.Iters,
			Residual:   s.Residual,
			Converged:  s.Converged,
			GuardTrips: s.GuardTrips,
			MaxUtil:    s.MaxUtil,
			WallUS:     wall.Microseconds(),
			Err:        s.Err,
		}
		c.mu.Lock()
		c.total++
		tr.Seq = c.total
		if len(c.ring) < c.cap {
			c.ring = append(c.ring, tr)
		} else {
			c.ring[c.next] = tr
			c.next = (c.next + 1) % c.cap
		}
		c.mu.Unlock()
		if c.reg != nil {
			labels := Labels{"solver": solver}
			c.reg.Counter("lopc_solves_total", "completed AMVA fixed-point solves", labels).Inc()
			if s.Err != "" {
				c.reg.Counter("lopc_solve_errors_total", "solves that returned an error", labels).Inc()
			}
			if s.GuardTrips > 0 {
				c.reg.Counter("lopc_solve_guard_trips_total", "iterations pushed back or clamped by a feasibility guard", labels).Add(int64(s.GuardTrips))
			}
			c.reg.Histogram("lopc_solve_iterations", "fixed-point iterations per solve", labels, iterBuckets).Observe(float64(s.Iters))
			c.reg.Histogram("lopc_solve_wall_us", "solve wall time in microseconds", labels, wallBuckets).Observe(float64(wall.Microseconds()))
		}
	}
}

// Total returns the number of solves recorded since construction,
// including ones the ring has evicted.
func (c *ConvRecorder) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Traces returns the retained solves, oldest first.
func (c *ConvRecorder) Traces() []SolveTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SolveTrace, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// convDoc is the JSON export envelope.
type convDoc struct {
	Total    int          `json:"total"`
	Capacity int          `json:"capacity"`
	Traces   []SolveTrace `json:"traces"`
}

// WriteJSON exports the retained traces as one JSON document with the
// total solve count and ring capacity alongside.
func (c *ConvRecorder) WriteJSON(w io.Writer) error {
	doc := convDoc{Total: c.Total(), Capacity: c.cap, Traces: c.Traces()}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// convCSVHeader is the column order of WriteCSV.
var convCSVHeader = []string{"seq", "solver", "iters", "residual", "converged", "guard_trips", "max_util", "wall_us", "err"}

// WriteCSV exports the retained traces as CSV, one row per solve.
func (c *ConvRecorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(convCSVHeader); err != nil {
		return err
	}
	for _, tr := range c.Traces() {
		row := []string{
			strconv.Itoa(tr.Seq),
			tr.Solver,
			strconv.Itoa(tr.Iters),
			strconv.FormatFloat(tr.Residual, 'g', -1, 64),
			strconv.FormatBool(tr.Converged),
			strconv.Itoa(tr.GuardTrips),
			strconv.FormatFloat(tr.MaxUtil, 'g', -1, 64),
			strconv.FormatInt(tr.WallUS, 10),
			tr.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile exports the retained traces to path, choosing the format by
// extension: .csv writes CSV, everything else JSON.
func (c *ConvRecorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if filepath.Ext(path) == ".csv" {
		werr = c.WriteCSV(f)
	} else {
		werr = c.WriteJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing convergence trace %s: %w", path, werr)
	}
	return nil
}

package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBuckets pins the bucket-placement rule: value v lands in
// the first bucket whose inclusive upper bound is >= v, with everything
// past the last bound in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int // bucket index in Counts
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{1.0001, 1}, {2, 1},
		{2.5, 2}, {4, 2},
		{7.9, 3}, {8, 3},
		{8.1, 4}, {1e9, 4}, // overflow
	}
	for _, c := range cases {
		h := newHistogram([]float64{1, 2, 4, 8})
		h.Observe(c.v)
		s := h.Snapshot()
		got := -1
		for i, n := range s.Counts {
			if n == 1 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v): landed in bucket %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramSumCountMax: the scalar accumulators track every
// observation.
func TestHistogramSumCountMax(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	for _, v := range []float64{1, 5, 50, 500} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 556 {
		t.Errorf("Sum = %v, want 556", s.Sum)
	}
	if s.Max != 500 {
		t.Errorf("Max = %v, want 500", s.Max)
	}
}

// TestHistogramQuantile pins the interpolation estimate on a known
// distribution: 100 observations spread 25/25/25/25 over buckets with
// bounds 10/20/30/40.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	for i := 0; i < 100; i++ {
		// 25 observations centered in each of the four finite buckets.
		h.Observe(float64((i/25)*10) + 5)
	}
	s := h.Snapshot()
	cases := []struct {
		q, want float64
	}{
		{0.25, 10}, // exactly the first bound
		{0.5, 20},
		{0.75, 30},
		{1.0, 40},
		{0.125, 5},  // halfway into the first bucket, interpolated from 0
		{0.625, 25}, // halfway into the third bucket
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileOverflow: a quantile landing in the overflow
// bucket reports the tracked maximum, and an empty histogram reports 0.
func TestHistogramQuantileOverflow(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	h.Observe(1000)
	h.Observe(2000)
	if got := h.Snapshot().Quantile(0.99); got != 2000 {
		t.Errorf("overflow Quantile = %v, want the max 2000", got)
	}
}

// TestHistogramQuantileDirect: Histogram.Quantile matches the snapshot
// estimate, including the empty and single-bucket edge cases.
func TestHistogramQuantileDirect(t *testing.T) {
	h := newHistogram([]float64{10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty direct Quantile = %v, want 0", got)
	}
	h.Observe(4)
	h.Observe(8)
	// A one-bucket histogram interpolates inside [0, 10]: the median of
	// two observations at rank 1 is the bucket's midpoint estimate 5.
	if got, want := h.Quantile(0.5), 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("one-bucket direct Quantile(0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.5), h.Snapshot().Quantile(0.5); got != want {
		t.Errorf("direct Quantile = %v, snapshot Quantile = %v", got, want)
	}
}

// TestHistogramSnapshotMean: exact mean from the running sum; empty
// snapshots report 0.
func TestHistogramSnapshotMean(t *testing.T) {
	h := newHistogram([]float64{10})
	if got := h.Snapshot().Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	for _, v := range []float64{2, 4, 12} {
		h.Observe(v)
	}
	if got, want := h.Snapshot().Mean(), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

// TestHistogramTap: an installed tap sees every observed value (NaN
// drops included — they are rejected before the tap), and SetTap(nil)
// removes it.
func TestHistogramTap(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	var got []float64
	h.Observe(0.5) // before the tap: not forwarded
	h.SetTap(func(v float64) { got = append(got, v) })
	h.Observe(3)
	h.Observe(math.NaN()) // dropped by Observe, never reaches the tap
	h.Observe(42)
	h.SetTap(nil)
	h.Observe(7) // after removal: not forwarded
	want := []float64{3, 42}
	if len(got) != len(want) {
		t.Fatalf("tap saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tap saw %v, want %v", got, want)
		}
	}
	if n := h.Snapshot().Count; n != 4 {
		t.Errorf("Count = %d, want 4 (tap must not affect recording)", n)
	}
}

// TestExpBuckets: geometric bounds.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestCounterRejectsDecrease: counters only go up.
func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	c := &Counter{}
	c.Add(-1)
}

// TestRegistryIdempotent: re-registering the same (name, labels) pair
// returns the same instrument; different labels make a new series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lopc_test_total", "h", Labels{"route": "/x"})
	b := r.Counter("lopc_test_total", "h", Labels{"route": "/x"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("lopc_test_total", "h", Labels{"route": "/y"})
	if a == c {
		t.Error("different labels returned the same counter")
	}
}

// TestRegistryKindMismatch: reusing a name with another kind is a
// programming error.
func TestRegistryKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("lopc_test_total", "h", nil)
	r.Gauge("lopc_test_total", "h", nil)
}

// TestRegistryRace hammers one registry from 64 concurrent writers —
// mixed registration and instrument updates — and checks the totals.
// Run under -race this is the registry's thread-safety proof.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 64
		perG    = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := Labels{"w": []string{"a", "b", "c", "d"}[g%4]}
			for i := 0; i < perG; i++ {
				r.Counter("lopc_race_total", "h", label).Inc()
				r.Gauge("lopc_race_gauge", "h", nil).Add(1)
				r.Histogram("lopc_race_hist", "h", nil, []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("lopc_race_total", "h", Labels{"w": l}).Value()
	}
	if want := int64(writers * perG); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("lopc_race_gauge", "h", nil).Value(); got != writers*perG {
		t.Errorf("gauge = %d, want %d", got, writers*perG)
	}
	s := r.Histogram("lopc_race_hist", "h", nil, nil).Snapshot()
	if s.Count != writers*perG {
		t.Errorf("histogram count = %d, want %d", s.Count, writers*perG)
	}
	var inBuckets int64
	for _, n := range s.Counts {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Errorf("bucket counts sum to %d, count says %d", inBuckets, s.Count)
	}
}

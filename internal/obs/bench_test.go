package obs_test

// Instrumentation-overhead benchmarks backing BENCH_obs.json: the same
// solve with the observer seam off (nil observer — one pointer nil
// check per solve) and on (a live ConvRecorder capturing iteration
// count, residual, and wall time into its ring).
//
// Two pairs, deliberately at opposite ends of solve cost:
//
//   - Solve*: the general Appendix-A model at P = 64 — O(P²) work per
//     fixed-point iteration, ~600µs per solve. This is the
//     representative case (it subsumes the all-to-all and
//     client-server models) and the one the ≤ 5% acceptance bound in
//     BENCH_obs.json is recorded against.
//   - ScalarSolve*: the homogeneous all-to-all solver — a scalar fixed
//     point, ~3µs per solve. This is the worst case by construction:
//     the observer's fixed per-solve cost (two wall-clock reads plus a
//     ring append, ~250ns) lands on the cheapest solve in the repo, so
//     the ratio is dominated by the platform's clock-read latency, not
//     by anything per-iteration.
//
// Both pairs share the guard property that matters: the seam charges
// nothing per iteration, so a regression that adds allocation, locking,
// or clock reads inside the iteration loop shows up multiplied by the
// iteration count, far above either threshold.

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// benchScalarParams is a mid-contention all-to-all point (the Fig. 3
// regime, ~20 fixed-point iterations).
var benchScalarParams = core.Params{P: 64, W: 500, St: 40, So: 200, C2: 0}

// benchGeneralParams is the same machine expressed in the general
// Appendix-A model: 64 nodes, homogeneous work and visits.
var benchGeneralParams = core.GeneralParams{
	P:  64,
	W:  uniformWork(64, 500),
	V:  core.HomogeneousVisits(64),
	St: 40,
	So: []float64{200},
}

func uniformWork(p int, w float64) []float64 {
	out := make([]float64, p)
	for i := range out {
		out[i] = w
	}
	return out
}

func BenchmarkSolveUninstrumented(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.GeneralObserved(benchGeneralParams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveInstrumented(b *testing.B) {
	rec := obs.NewConvRecorder(obs.DefaultConvCapacity, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.GeneralObserved(benchGeneralParams, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarSolveUninstrumented(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AllToAllObserved(benchScalarParams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarSolveInstrumented(b *testing.B) {
	rec := obs.NewConvRecorder(obs.DefaultConvCapacity, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AllToAllObserved(benchScalarParams, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObserverOverheadGuard is the CI benchmark guard: it measures both
// pairs with testing.Benchmark (best of 3, which discards the runs a
// concurrently-executing test package stole cycles from) and fails if
// observation costs more than the per-pair limit. Limits are far looser
// than the numbers recorded in BENCH_obs.json — the guard shares the
// machine with the rest of `go test ./...` — because looseness costs
// nothing here: the regression this exists to catch is per-iteration
// allocation, locking, or clock reads inside the solver hot loop, which
// multiplies by the iteration count (~20 at these parameters) and lands
// at +150% or more on the scalar pair. The scalar pair is the sensitive
// tripwire (fixed observer cost against a ~4µs solve); the general pair
// (measured ≈ 0.3%) documents that the representative solve is
// unaffected.
//
//   - general pair: 25%
//   - scalar pair: 75% (measured ≈ 8–12%, nearly all of it the two
//     per-solve wall-clock reads)
//
// LOPC_OBS_OVERHEAD_MAX overrides the general-pair limit (fraction) for
// strict quiet-machine runs.
func TestObserverOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	generalLimit := 0.25
	if s := os.Getenv("LOPC_OBS_OVERHEAD_MAX"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("LOPC_OBS_OVERHEAD_MAX=%q: %v", s, err)
		}
		generalLimit = v
	}
	best := func(b func(*testing.B)) int64 {
		min := int64(0)
		for i := 0; i < 3; i++ {
			if ns := testing.Benchmark(b).NsPerOp(); min == 0 || (ns > 0 && ns < min) {
				min = ns
			}
		}
		return min
	}
	check := func(name string, baseFn, instFn func(*testing.B), limit float64) {
		base, inst := best(baseFn), best(instFn)
		if base <= 0 {
			t.Fatalf("%s: degenerate baseline %dns/op", name, base)
		}
		overhead := float64(inst)/float64(base) - 1
		t.Logf("%s: uninstrumented %dns/op, instrumented %dns/op, overhead %+.2f%% (limit %.0f%%)",
			name, base, inst, overhead*100, limit*100)
		if overhead > limit {
			t.Errorf("%s: observer overhead %.2f%% exceeds %.0f%%", name, overhead*100, limit*100)
		}
	}
	check("general", BenchmarkSolveUninstrumented, BenchmarkSolveInstrumented, generalLimit)
	check("scalar", BenchmarkScalarSolveUninstrumented, BenchmarkScalarSolveInstrumented, 0.75)
}

package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

// checkTieStability drives a calendar queue and a heap oracle through an
// identical op sequence whose timestamps come from a small discrete grid
// — so same-timestamp ties are dense, unlike Float64 draws — and fails
// unless every dequeue matches the oracle and same-timestamp events
// leave in insertion-seq order. This is the invariant the parallel
// trace-identity contract leans on: the engine breaks ties by insertion
// sequence, and psim's canonical key inherits that through Event.seq.
func checkTieStability(t *testing.T, seed uint64, ops []byte) {
	t.Helper()
	cq := NewCalendarQueue(0.5)
	hq := &eventQueue{}
	now := 0.0
	seq := uint64(0)
	lastTime := -1.0
	lastSeq := uint64(0)
	for _, op := range ops {
		if op%4 != 0 { // three in four ops enqueue
			// Times only move forward (the engine's guarantee) and land
			// on a grid of 8 slots so collisions are the common case; the
			// seed shifts the grid so different runs stress different
			// bucket alignments.
			tm := now + float64((uint64(op)+seed)%8)
			cq.Enqueue(&Event{time: tm, seq: seq})
			heap.Push(hq, &Event{time: tm, seq: seq})
			seq++
			continue
		}
		drains := int(op/4)%3 + 1
		for j := 0; j < drains && cq.Len() > 0; j++ {
			a := cq.Dequeue()
			b := heap.Pop(hq).(*Event)
			if a.time != b.time || a.seq != b.seq {
				t.Fatalf("calendar (t=%v seq=%d) diverges from heap (t=%v seq=%d)",
					a.time, a.seq, b.time, b.seq)
			}
			//lopc:allow floateq grid times are exact small integers; equality detects a genuine tie
			if a.time == lastTime && a.seq <= lastSeq {
				t.Fatalf("tie at t=%v dequeued seq %d after seq %d: not insertion order",
					a.time, a.seq, lastSeq)
			}
			if a.time < lastTime {
				t.Fatalf("time went backwards: %v after %v", a.time, lastTime)
			}
			lastTime, lastSeq = a.time, a.seq
			now = a.time
		}
	}
	for cq.Len() > 0 {
		a := cq.Dequeue()
		b := heap.Pop(hq).(*Event)
		if a.time != b.time || a.seq != b.seq {
			t.Fatalf("final drain diverges: calendar seq %d vs heap seq %d", a.seq, b.seq)
		}
	}
	if hq.Len() != 0 {
		t.Fatalf("heap retains %d events after calendar drained", hq.Len())
	}
}

// TestCalendarTieStabilityProperty feeds random op tapes (including ones
// long enough to force grow and shrink resizes) through the tie checker.
func TestCalendarTieStabilityProperty(t *testing.T) {
	f := func(seed uint64, tape []byte) bool {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		checkTieStability(t, seed, tape)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCalendarTieOrder is the same invariant under go fuzzing. The seed
// corpus covers all-enqueue bursts, drain-heavy tapes, and a tape long
// enough to resize the calendar both ways.
func FuzzCalendarTieOrder(f *testing.F) {
	f.Add(uint64(1), []byte{1, 1, 1, 1, 0, 0, 0, 0})
	f.Add(uint64(2), []byte{7, 7, 7, 7, 7, 7, 4, 8, 12})
	long := make([]byte, 2048)
	for i := range long {
		long[i] = byte(i*13 + 1)
	}
	f.Add(uint64(3), long)
	f.Fuzz(func(t *testing.T, seed uint64, tape []byte) {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		checkTieStability(t, seed, tape)
	})
}

package sim

import (
	"container/heap"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// drainCalendar pops everything and returns (time, seq) pairs in order.
func drainCalendar(cq *CalendarQueue) []*Event {
	var out []*Event
	for {
		e := cq.Dequeue()
		if e == nil {
			return out
		}
		out = append(out, e)
	}
}

func TestCalendarBasicOrdering(t *testing.T) {
	cq := NewCalendarQueue(1)
	times := []float64{5, 1, 3, 2, 4, 0.5, 10, 7.5}
	for i, tm := range times {
		cq.Enqueue(&Event{time: tm, seq: uint64(i)})
	}
	if cq.Len() != len(times) {
		t.Fatalf("len = %d", cq.Len())
	}
	out := drainCalendar(cq)
	if len(out) != len(times) {
		t.Fatalf("drained %d events", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].time < out[i-1].time {
			t.Fatalf("out of order at %d: %v after %v", i, out[i].time, out[i-1].time)
		}
	}
}

func TestCalendarTieBreaksBySeq(t *testing.T) {
	cq := NewCalendarQueue(1)
	for i := 9; i >= 0; i-- {
		cq.Enqueue(&Event{time: 7, seq: uint64(i)})
	}
	out := drainCalendar(cq)
	for i, e := range out {
		if e.seq != uint64(i) {
			t.Fatalf("tie order wrong: %v", out)
		}
	}
}

func TestCalendarEmpty(t *testing.T) {
	cq := NewCalendarQueue(1)
	if cq.Dequeue() != nil {
		t.Fatal("empty dequeue returned an event")
	}
	if cq.Len() != 0 {
		t.Fatal("empty len != 0")
	}
}

func TestCalendarInvalidWidth(t *testing.T) {
	for _, w := range []float64{0, -5} {
		cq := NewCalendarQueue(w)
		cq.Enqueue(&Event{time: 3})
		if e := cq.Dequeue(); e == nil || e.time != 3 {
			t.Fatalf("width %v: calendar unusable", w)
		}
	}
}

// TestCalendarMatchesHeapProperty: for random workloads with
// interleaved enqueues and dequeues, the calendar queue yields exactly
// the heap's order.
func TestCalendarMatchesHeapProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%200 + 1
		cq := NewCalendarQueue(0.5)
		hq := &eventQueue{}
		now := 0.0
		var fromCal, fromHeap []uint64
		seq := uint64(0)
		for i := 0; i < n; i++ {
			// Random mix of inserts and removals, with times that only
			// move forward (as the engine guarantees).
			k := r.Intn(4) + 1
			for j := 0; j < k; j++ {
				tm := now + r.Float64()*100
				cq.Enqueue(&Event{time: tm, seq: seq})
				heap.Push(hq, &Event{time: tm, seq: seq})
				seq++
			}
			drains := r.Intn(k + 1)
			for j := 0; j < drains && cq.Len() > 0; j++ {
				a := cq.Dequeue()
				b := heap.Pop(hq).(*Event)
				fromCal = append(fromCal, a.seq)
				fromHeap = append(fromHeap, b.seq)
				if a.time != b.time || a.seq != b.seq {
					return false
				}
				now = a.time
			}
		}
		for cq.Len() > 0 {
			a := cq.Dequeue()
			b := heap.Pop(hq).(*Event)
			if a.time != b.time || a.seq != b.seq {
				return false
			}
			fromCal = append(fromCal, a.seq)
			fromHeap = append(fromHeap, b.seq)
		}
		return hq.Len() == 0 && len(fromCal) == len(fromHeap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarResizeGrowShrink(t *testing.T) {
	cq := NewCalendarQueue(1)
	// Grow well past the initial 16 buckets, then drain past shrink.
	const n = 5000
	for i := 0; i < n; i++ {
		cq.Enqueue(&Event{time: float64(i) * 0.37, seq: uint64(i)})
	}
	if len(cq.buckets) <= 16 {
		t.Fatalf("calendar did not grow: %d buckets for %d events", len(cq.buckets), n)
	}
	out := drainCalendar(cq)
	if len(out) != n {
		t.Fatalf("drained %d of %d", len(out), n)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].time < out[j].time }) {
		t.Fatal("drain out of order after resizes")
	}
}

func TestCalendarClusteredTimes(t *testing.T) {
	// All events in one narrow cluster far from the start — exercises
	// the sparse direct-search path and resize re-basing.
	cq := NewCalendarQueue(1)
	for i := 0; i < 500; i++ {
		cq.Enqueue(&Event{time: 1e6 + float64(i%7)*1e-3, seq: uint64(i)})
	}
	out := drainCalendar(cq)
	if len(out) != 500 {
		t.Fatalf("drained %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].time < out[i-1].time {
			t.Fatal("cluster drain out of order")
		}
	}
}

func benchCalendarOrHeap(b *testing.B, useCalendar bool, horizon float64) {
	r := rng.New(1)
	const pending = 4096
	if useCalendar {
		cq := NewCalendarQueue(horizon / pending)
		now := 0.0
		seq := uint64(0)
		for i := 0; i < pending; i++ {
			cq.Enqueue(&Event{time: r.Float64() * horizon, seq: seq})
			seq++
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := cq.Dequeue()
			now = e.time
			e.time = now + r.Float64()*horizon
			e.seq = seq
			seq++
			cq.Enqueue(e)
		}
		return
	}
	hq := &eventQueue{}
	seq := uint64(0)
	for i := 0; i < pending; i++ {
		heap.Push(hq, &Event{time: r.Float64() * horizon, seq: seq})
		seq++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := heap.Pop(hq).(*Event)
		e.time += r.Float64() * horizon
		e.seq = seq
		seq++
		heap.Push(hq, e)
	}
}

// BenchmarkHoldModelHeap and BenchmarkHoldModelCalendar run the classic
// "hold" benchmark (steady-state dequeue-then-enqueue) on both calendar
// implementations.
func BenchmarkHoldModelHeap(b *testing.B)     { benchCalendarOrHeap(b, false, 100) }
func BenchmarkHoldModelCalendar(b *testing.B) { benchCalendarOrHeap(b, true, 100) }

// TestEngineBackendsAgree runs an identical randomized self-scheduling
// workload on heap- and calendar-backed engines and requires identical
// dispatch traces (times, order, and cancellation behavior).
func TestEngineBackendsAgree(t *testing.T) {
	run := func(e *Engine) []float64 {
		r := rng.New(99)
		var trace []float64
		var pendingCancel *Event
		n := 0
		var tick func()
		tick = func() {
			trace = append(trace, e.Now())
			n++
			if n > 3000 {
				return
			}
			k := r.Intn(3) + 1
			for j := 0; j < k; j++ {
				ev := e.Schedule(r.Float64()*50, tick)
				if r.Intn(5) == 0 {
					// Cancel a previously stashed event and stash this one.
					e.Cancel(pendingCancel)
					pendingCancel = ev
				}
			}
		}
		e.Schedule(0, tick)
		e.Run()
		return trace
	}
	a := run(NewEngine())
	b := run(NewEngineWithEventSet(NewCalendarQueue(1)))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: heap %d vs calendar %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: heap %v vs calendar %v", i, a[i], b[i])
		}
	}
}

func TestCalendarPeek(t *testing.T) {
	cq := NewCalendarQueue(1)
	if cq.Peek() != nil {
		t.Fatal("peek on empty returned event")
	}
	cq.Enqueue(&Event{time: 5, seq: 1})
	cq.Enqueue(&Event{time: 3, seq: 2})
	if p := cq.Peek(); p == nil || p.time != 3 {
		t.Fatalf("peek = %+v, want time 3", p)
	}
	if cq.Len() != 2 {
		t.Fatal("peek removed an event")
	}
	if e := cq.Dequeue(); e.time != 3 {
		t.Fatalf("dequeue after peek = %v", e.time)
	}
}

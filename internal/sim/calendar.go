package sim

import (
	"math"
)

// CalendarQueue is an alternative event calendar with amortized O(1)
// enqueue/dequeue (Brown, "Calendar Queues: A Fast O(1) Priority Queue
// Implementation for the Simulation Event Set Problem", CACM 1988). The
// engine's default binary heap is O(log n); for very large pending sets
// with smooth time distributions the calendar queue wins — the
// benchmarks alongside this file compare the two.
//
// The mapping from an event's time to its bucket is the pure function
// floor(t/width) mod n — deliberately not the incremental base-advance
// formulation of the original paper, whose floating-point drift can
// de-synchronize the mapping between enqueue and dequeue and break the
// ordering. Events within a bucket are kept sorted by (time, seq),
// preserving the engine's deterministic tie-breaking.
type CalendarQueue struct {
	buckets [][]*Event
	width   float64
	curCell int64 // floor(lastTime/width): the cell the scan starts from
	// lastTime is the time of the most recent dequeue — the earliest
	// instant any future event may carry. The scan cursor derives from
	// it, never from the current minimum event: an enqueue after a
	// resize may legally land before that minimum.
	lastTime float64
	size     int
	grow     int
	shrink   int
}

// NewCalendarQueue returns a calendar starting at time 0 with the given
// initial bucket width estimate (any positive finite value works; the
// queue adapts as it resizes).
func NewCalendarQueue(width float64) *CalendarQueue {
	cq := &CalendarQueue{}
	cq.init(16, width, 0)
	return cq
}

func (cq *CalendarQueue) init(nBuckets int, width, now float64) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		width = 1
	}
	cq.buckets = make([][]*Event, nBuckets)
	cq.width = width
	cq.lastTime = now
	cq.curCell = cellOf(now, width)
	cq.grow = 2 * nBuckets
	cq.shrink = nBuckets/2 - 2
}

// cellOf maps a time to its absolute cell index.
func cellOf(t, width float64) int64 {
	return int64(math.Floor(t / width))
}

// bucketOf maps a time to a bucket slot.
func (cq *CalendarQueue) bucketOf(t float64) int {
	n := int64(len(cq.buckets))
	idx := cellOf(t, cq.width) % n
	if idx < 0 {
		idx += n
	}
	return int(idx)
}

// Len returns the number of stored events.
func (cq *CalendarQueue) Len() int { return cq.size }

// Enqueue inserts an event.
func (cq *CalendarQueue) Enqueue(e *Event) {
	idx := cq.bucketOf(e.time)
	b := cq.buckets[idx]
	// Insert keeping (time, seq) order; buckets are short, so linear
	// insertion is fine.
	pos := len(b)
	for pos > 0 {
		prev := b[pos-1]
		//lopc:allow floateq deterministic tie-break: exactly-simultaneous events order by seq, others by time
		if prev.time < e.time || (prev.time == e.time && prev.seq < e.seq) {
			break
		}
		pos--
	}
	b = append(b, nil)
	copy(b[pos+1:], b[pos:])
	b[pos] = e
	cq.buckets[idx] = b
	cq.size++
	if cq.size > cq.grow {
		cq.resize(len(cq.buckets) * 2)
	}
}

// find locates the bucket holding the earliest event, or -1 when empty.
func (cq *CalendarQueue) find() int {
	if cq.size == 0 {
		return -1
	}
	n := int64(len(cq.buckets))
	// One lap over the buckets, taking the first event that belongs to
	// the cell under the cursor. Cells partition time, so the first hit
	// is the global minimum among events within the lap.
	for sweep := int64(0); sweep < n; sweep++ {
		cell := cq.curCell + sweep
		idx := cell % n
		if idx < 0 {
			idx += n
		}
		b := cq.buckets[idx]
		if len(b) > 0 && cellOf(b[0].time, cq.width) == cell {
			return int(idx)
		}
	}
	// Sparse case (next event more than a lap away): direct search.
	bestIdx := -1
	var best *Event
	for i, b := range cq.buckets {
		if len(b) == 0 {
			continue
		}
		if best == nil || b[0].time < best.time ||
			//lopc:allow floateq deterministic tie-break: exactly-simultaneous events order by seq, others by time
			(b[0].time == best.time && b[0].seq < best.seq) {
			best = b[0]
			bestIdx = i
		}
	}
	return bestIdx
}

// Dequeue removes and returns the earliest event, or nil when empty.
func (cq *CalendarQueue) Dequeue() *Event {
	idx := cq.find()
	if idx < 0 {
		return nil
	}
	return cq.take(idx)
}

// Peek returns the earliest event without removing it, or nil when
// empty.
func (cq *CalendarQueue) Peek() *Event {
	idx := cq.find()
	if idx < 0 {
		return nil
	}
	return cq.buckets[idx][0]
}

// take removes the head of the given bucket and advances the cursor.
func (cq *CalendarQueue) take(idx int) *Event {
	b := cq.buckets[idx]
	e := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	cq.buckets[idx] = b[:len(b)-1]
	cq.size--
	cq.lastTime = e.time
	cq.curCell = cellOf(e.time, cq.width)
	if cq.size < cq.shrink && len(cq.buckets) > 16 {
		cq.resize(len(cq.buckets) / 2)
	}
	return e
}

// resize rebuilds the calendar with a new bucket count and a width
// estimated from the current contents' time spread.
func (cq *CalendarQueue) resize(nBuckets int) {
	var events []*Event
	for _, b := range cq.buckets {
		events = append(events, b...)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range events {
		lo = math.Min(lo, e.time)
		hi = math.Max(hi, e.time)
	}
	width := cq.width
	if len(events) > 1 && hi > lo {
		width = (hi - lo) / float64(len(events))
		// Keep cell indices comfortably inside int64 even for clustered
		// far-future times.
		if floor := hi * 1e-12; width < floor {
			width = floor
		}
		if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
			width = cq.width
		}
	}
	cq.init(nBuckets, width, cq.lastTime)
	cq.size = 0
	for _, e := range events {
		cq.Enqueue(e)
	}
}

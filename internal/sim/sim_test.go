package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		if e.Now() != 10 {
			t.Errorf("now = %v inside event, want 10", e.Now())
		}
		e.Schedule(5, func() {
			if e.Now() != 15 {
				t.Errorf("now = %v inside nested event, want 15", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 15 {
		t.Fatalf("final now = %v, want 15", e.Now())
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

func TestZeroDelayFiresAfterCurrentInstant(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "c") })
		got = append(got, "b")
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(5, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event does not report canceled")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func() {})
	e.Cancel(ev)
	e.Cancel(ev)
	e.Cancel(nil)
	e.Run()
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(float64(i), func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []float64{1, 2, 3, 10, 20} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(5)
	if fired != 3 {
		t.Fatalf("fired %d events by t=5, want 3", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v after RunUntil(5)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if fired != 5 {
		t.Fatalf("fired %d events total, want 5", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v, want 100", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	if NewEngine().Step() {
		t.Fatal("Step on empty calendar returned true")
	}
}

// TestHeapOrderingProperty: any random batch of delays fires in
// non-decreasing time order with ties broken by scheduling order.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%100) + 1
		e := NewEngine()
		type rec struct {
			time float64
			seq  int
		}
		var fired []rec
		for i := 0; i < n; i++ {
			i := i
			d := float64(r.Intn(20)) // coarse so ties occur
			e.Schedule(d, func() { fired = append(fired, rec{d, i}) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if fired[i].time < fired[i-1].time {
				return false
			}
			if fired[i].time == fired[i-1].time && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedScheduleAndRun exercises the calendar under the
// scheduling pattern the machine layer produces: events scheduling
// further events.
func TestInterleavedScheduleAndRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var descend func()
	descend = func() {
		depth++
		if depth < 1000 {
			e.Schedule(1, descend)
		}
	}
	e.Schedule(0, descend)
	e.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if e.Now() != 999 {
		t.Fatalf("now = %v, want 999", e.Now())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	e := NewEngine()
	nop := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(r.Float64()*100, nop)
		if e.Pending() > 1024 {
			for e.Pending() > 512 {
				e.Step()
			}
		}
	}
	e.Run()
}

// Package sim provides a deterministic discrete-event simulation kernel:
// a simulated clock, an event calendar ordered by (time, scheduling
// sequence), and an engine that dispatches events until a stop
// condition.
//
// The LoPC validation substrate (internal/machine) is built on this
// kernel. Determinism matters: events scheduled for the same instant
// fire in scheduling order, so a given seed reproduces the identical
// trace on every run.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in processor cycles. It is a float64 because
// the model's service distributions are continuous.
type Time = float64

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; the machine layer uses it to preempt a running computation
// thread.
type Event struct {
	time     Time
	seq      uint64
	index    int // heap index, -1 once removed
	canceled bool
	fn       func()
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.time }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	//lopc:allow floateq deterministic tie-break: exactly-simultaneous events order by seq, others by time
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// EventSet is the pluggable pending-event structure of an Engine. Two
// implementations exist: the default binary heap and the CalendarQueue;
// both order events by (time, scheduling sequence).
type EventSet interface {
	Enqueue(*Event)
	// Dequeue removes and returns the earliest event, nil when empty.
	Dequeue() *Event
	// Peek returns the earliest event without removing it, nil when
	// empty.
	Peek() *Event
	Len() int
}

// heapSet adapts the binary heap to EventSet.
type heapSet struct{ q eventQueue }

func (h *heapSet) Enqueue(e *Event) { heap.Push(&h.q, e) }

func (h *heapSet) Dequeue() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*Event)
}

func (h *heapSet) Peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapSet) Len() int { return len(h.q) }

// Engine is a discrete-event simulator. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	events    EventSet
	processed uint64
}

// NewEngine returns an engine with the clock at zero, backed by the
// default binary-heap event set.
func NewEngine() *Engine {
	return &Engine{events: &heapSet{}}
}

// NewEngineWithEventSet returns an engine using the given event set —
// e.g. NewCalendarQueue for very large pending populations.
func NewEngineWithEventSet(es EventSet) *Engine {
	return &Engine{events: es}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events in the calendar, including
// canceled events not yet discarded.
func (e *Engine) Pending() int { return e.events.Len() }

// Schedule enqueues fn to run after delay. A zero delay fires at the
// current instant, after all events already scheduled for it. It panics
// on negative or NaN delays — those are always simulator bugs, and
// failing loudly at the offending call site beats corrupting the event
// order.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	ev := &Event{time: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	e.events.Enqueue(ev)
	return ev
}

// ScheduleAt enqueues fn at the absolute time t, which must not be in
// the past.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is before now (%v)", t, e.now))
	}
	return e.Schedule(t-e.now, fn)
}

// Cancel marks ev so it will not fire. Canceling an event that already
// fired or was already canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	// Leave it in the heap; Step discards canceled events cheaply. For
	// the machine workloads, cancellations are rare (thread preemption),
	// so lazy deletion wins over heap.Remove bookkeeping.
}

// Step dispatches the next non-canceled event. It returns false when
// the calendar is empty.
func (e *Engine) Step() bool {
	for {
		ev := e.events.Dequeue()
		if ev == nil {
			return false
		}
		if ev.canceled {
			continue
		}
		if ev.time < e.now {
			panic(fmt.Sprintf("sim: event time %v before now %v", ev.time, e.now))
		}
		e.now = ev.time
		e.processed++
		ev.fn()
		return true
	}
}

// Run dispatches events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile dispatches events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// peek returns the next non-canceled event without dispatching it,
// discarding canceled events it encounters.
func (e *Engine) peek() *Event {
	for {
		ev := e.events.Peek()
		if ev == nil {
			return nil
		}
		if ev.canceled {
			e.events.Dequeue()
			continue
		}
		return ev
	}
}

// Package logp implements the LogP model of Culler et al. ("LogP:
// Towards a Realistic Model of Parallel Computation", PPoPP 1993) — the
// contention-free baseline the LoPC paper extends.
//
// LogP characterizes a machine with four parameters: L, the network
// latency; o, the processor overhead of sending or receiving one
// message; g, the minimum gap between consecutive sends (the inverse of
// per-processor bandwidth); and P, the number of processors. The model
// assumes at most ⌈L/g⌉ messages in flight per processor pair and no
// contention at the receivers — the assumption LoPC removes.
//
// The package provides the standard LogP costs (point-to-point,
// round-trip request) and the classic optimal broadcast and reduction
// schedules, plus the LoPC correspondence (Table 3.1): St = L, So ≈ o,
// g = 0 on balanced machines.
package logp

import (
	"container/heap"
	"fmt"
)

// Params are the four LogP parameters, in cycles (except P).
type Params struct {
	// L is the network latency: wire time for one small message.
	L float64
	// O is the send/receive overhead ("o" in the paper; capitalized for
	// export).
	O float64
	// G is the minimum gap between consecutive message operations on
	// one processor. Balanced network interfaces have G <= O, making
	// the gap irrelevant; LoPC assumes this and drops the parameter.
	G float64
	// P is the number of processors.
	P int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.P < 1:
		return fmt.Errorf("logp: P = %d", p.P)
	case p.L < 0 || p.O < 0 || p.G < 0:
		return fmt.Errorf("logp: negative parameter in %+v", p)
	}
	return nil
}

// SendInterval returns the minimum spacing between consecutive sends on
// one processor: max(g, o).
func (p Params) SendInterval() float64 {
	if p.G > p.O {
		return p.G
	}
	return p.O
}

// PointToPoint returns the end-to-end time to deliver one small message:
// o + L + o.
func (p Params) PointToPoint() float64 { return 2*p.O + p.L }

// RoundTrip returns the time for a blocking remote request that runs a
// handler costing handler cycles at the remote node: the requester pays
// o to inject, L of latency, the remote pays o to receive plus the
// handler plus o to reply, L back, and o to receive the reply.
func (p Params) RoundTrip(handler float64) float64 {
	return 4*p.O + 2*p.L + handler + p.O // receive, handle, send back, receive
}

// CyclesLoPC maps LogP onto the LoPC contention-free compute/request
// cycle (Table 3.1: St = L, So = o, where So includes the handler): the
// value a naive LogP-style analysis predicts for the patterns Chapter 5
// studies. This is the baseline whose error the paper reports as ~37%
// at W = 0.
func (p Params) CyclesLoPC(w, so float64) float64 { return w + 2*p.L + 2*so }

// informed tracks one processor that already holds the broadcast datum
// and the earliest time it can complete its next send.
type informed struct {
	nextSendDone float64 // arrival time at the receiver of its next send
	index        int
}

type informedHeap []informed

func (h informedHeap) Len() int           { return len(h) }
func (h informedHeap) Less(i, j int) bool { return h[i].nextSendDone < h[j].nextSendDone }
func (h informedHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *informedHeap) Push(x any)        { *h = append(*h, x.(informed)) }
func (h *informedHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Broadcast returns the completion time of the optimal single-item
// broadcast from one root to all P processors, and the time each
// processor becomes informed (index 0 is the root). The optimal
// schedule is greedy: every informed processor keeps sending to
// uninformed processors as fast as the gap allows, and each arrival is
// assigned the earliest possible slot (Culler et al., §4.1).
func (p Params) Broadcast() (finish float64, informedAt []float64, err error) {
	finish, informedAt, _, err = p.BroadcastTree()
	return finish, informedAt, err
}

// BroadcastTree is Broadcast, additionally returning the schedule as a
// parent vector: parent[i] is the processor that informs processor i
// (parent[0] = -1 for the root). The simulated active-message broadcast
// (internal/am) executes exactly this tree.
func (p Params) BroadcastTree() (finish float64, informedAt []float64, parent []int, err error) {
	if err := p.Validate(); err != nil {
		return 0, nil, nil, err
	}
	times := make([]float64, p.P)
	parent = make([]int, p.P)
	parent[0] = -1
	if p.P == 1 {
		return 0, times, parent, nil
	}
	gap := p.SendInterval()
	h := &informedHeap{{nextSendDone: p.O + p.L + p.O, index: 0}}
	finish = 0
	for i := 1; i < p.P; i++ {
		src := heap.Pop(h).(informed)
		arrive := src.nextSendDone
		times[i] = arrive
		parent[i] = src.index
		if arrive > finish {
			finish = arrive
		}
		// The source can complete another send one gap later.
		heap.Push(h, informed{nextSendDone: src.nextSendDone + gap, index: src.index})
		// The newly informed processor becomes a sender: it pays o to
		// receive, then o to send, then L + o until its message lands.
		heap.Push(h, informed{nextSendDone: arrive + p.O + p.L + p.O, index: i})
	}
	return finish, times, parent, nil
}

// Reduce returns the completion time of the optimal P-input single-item
// reduction; by symmetry with broadcast it equals the broadcast time
// (run the schedule in reverse).
func (p Params) Reduce() (float64, error) {
	finish, _, err := p.Broadcast()
	return finish, err
}

// AllToAllPersonalized returns the LogP estimate for each processor
// sending one distinct small message to every other processor, assuming
// perfectly interleaved arrivals (the CM-5 schedule of Brewer and
// Kuszmaul): each processor issues P−1 sends spaced by max(g, o), the
// last message lands L + o after its injection completes. Contention
// makes real machines slower — the phenomenon LoPC models.
func (p Params) AllToAllPersonalized() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.P == 1 {
		return 0, nil
	}
	n := float64(p.P - 1)
	return p.O + (n-1)*p.SendInterval() + p.L + p.O, nil
}

// MaxInFlight returns the LogP capacity constraint ⌈L/g⌉: the maximum
// number of messages a processor may have in flight. With g = 0 the
// network is taken to impose no constraint and 0 is returned.
func (p Params) MaxInFlight() int {
	if p.G <= 0 {
		return 0
	}
	n := int(p.L / p.G)
	if float64(n)*p.G < p.L {
		n++
	}
	return n
}

// Scatter returns the completion time of a one-to-all personalized
// scatter: the root sends a distinct small message to each of the other
// P−1 processors. Unlike broadcast, receivers cannot help (the items
// are distinct), so the root's injection rate is the bottleneck: the
// k-th send completes injection at o + (k−1)·max(g,o) and its receiver
// finishes at that time + L + o.
func (p Params) Scatter() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.P == 1 {
		return 0, nil
	}
	n := float64(p.P - 1)
	return p.O + (n-1)*p.SendInterval() + p.L + p.O, nil
}

// Gather returns the completion time of an all-to-one personalized
// gather, the mirror of Scatter: the root's receive rate bounds it, so
// by symmetry it costs the same.
func (p Params) Gather() (float64, error) {
	return p.Scatter()
}

package logp

import (
	"math"
	"sort"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := (Params{L: 10, O: 2, G: 1, P: 8}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for i, p := range []Params{
		{L: 10, O: 2, G: 1, P: 0},
		{L: -1, O: 2, G: 1, P: 4},
		{L: 1, O: -2, G: 1, P: 4},
		{L: 1, O: 2, G: -1, P: 4},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPointToPoint(t *testing.T) {
	p := Params{L: 10, O: 2, G: 1, P: 2}
	if got := p.PointToPoint(); got != 14 {
		t.Errorf("PointToPoint = %v, want 14", got)
	}
}

func TestRoundTrip(t *testing.T) {
	p := Params{L: 10, O: 2, G: 0, P: 2}
	// o + L + o + handler + o + L + o + o(receive reply at home... the
	// formula counts 5o total) = 5*2 + 2*10 + 7 = 37.
	if got := p.RoundTrip(7); got != 37 {
		t.Errorf("RoundTrip = %v, want 37", got)
	}
}

func TestCyclesLoPCMatchesContentionFree(t *testing.T) {
	p := Params{L: 40, O: 5, P: 32}
	if got := p.CyclesLoPC(1000, 200); got != 1000+80+400 {
		t.Errorf("CyclesLoPC = %v, want 1480", got)
	}
}

func TestSendInterval(t *testing.T) {
	if got := (Params{O: 5, G: 2}).SendInterval(); got != 5 {
		t.Errorf("SendInterval = %v, want o = 5", got)
	}
	if got := (Params{O: 2, G: 5}).SendInterval(); got != 5 {
		t.Errorf("SendInterval = %v, want g = 5", got)
	}
}

func TestBroadcastTrivial(t *testing.T) {
	finish, times, err := Params{L: 10, O: 2, G: 1, P: 1}.Broadcast()
	if err != nil || finish != 0 || len(times) != 1 {
		t.Fatalf("P=1 broadcast: finish=%v times=%v err=%v", finish, times, err)
	}
	finish, _, err = Params{L: 10, O: 2, G: 1, P: 2}.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 10 + 2.0; finish != want {
		t.Errorf("P=2 broadcast finish = %v, want %v", finish, want)
	}
}

// bruteBroadcast exhaustively searches broadcast schedules for small P
// by branch and bound: state is the multiset of "next send completion"
// times of informed processors. The greedy schedule is known optimal;
// this validates our implementation against an independent search.
func bruteBroadcast(p Params, remaining int, senders []float64, best *float64, worst float64) {
	if remaining == 0 {
		return
	}
	// Prune: even the earliest possible assignment can't beat best.
	sort.Float64s(senders)
	if senders[0] >= *best {
		return
	}
	// Branch: assign the next uninformed processor to any sender.
	for i := range senders {
		arrive := senders[i]
		if arrive >= *best {
			break
		}
		next := make([]float64, len(senders), len(senders)+1)
		copy(next, senders)
		next[i] = arrive + p.SendInterval()
		next = append(next, arrive+p.O+p.L+p.O)
		if remaining == 1 {
			if arrive < *best {
				*best = arrive
			}
		} else {
			bruteBroadcast(p, remaining-1, next, best, worst)
		}
	}
}

func TestBroadcastOptimalSmallP(t *testing.T) {
	for _, p := range []Params{
		{L: 10, O: 2, G: 1, P: 5},
		{L: 4, O: 1, G: 3, P: 6},
		{L: 1, O: 5, G: 0, P: 4},
		{L: 20, O: 1, G: 1, P: 7},
	} {
		finish, _, err := p.Broadcast()
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		bruteBroadcast(p, p.P-1, []float64{p.O + p.L + p.O}, &best, finish)
		if math.Abs(finish-best) > 1e-9 {
			t.Errorf("%+v: greedy broadcast %v, brute force %v", p, finish, best)
		}
	}
}

func TestBroadcastTimesSortedAndComplete(t *testing.T) {
	p := Params{L: 10, O: 2, G: 1, P: 16}
	finish, times, err := p.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 16 {
		t.Fatalf("times has %d entries", len(times))
	}
	if times[0] != 0 {
		t.Errorf("root informed at %v, want 0", times[0])
	}
	maxT := 0.0
	for _, v := range times[1:] {
		if v <= 0 {
			t.Errorf("non-root informed at %v", v)
		}
		if v > maxT {
			maxT = v
		}
	}
	if maxT != finish {
		t.Errorf("finish %v != max informed time %v", finish, maxT)
	}
	// The assignment is greedy-earliest, so times are non-decreasing.
	if !sort.Float64sAreSorted(times) {
		t.Errorf("informed times not sorted: %v", times)
	}
}

func TestBroadcastScalesLogarithmically(t *testing.T) {
	// Doubling P should add roughly a constant (one message time), not
	// double the finish time.
	p := Params{L: 10, O: 2, G: 1}
	p.P = 64
	f64, _, _ := p.Broadcast()
	p.P = 128
	f128, _, _ := p.Broadcast()
	if f128-f64 > p.PointToPoint()+p.SendInterval() {
		t.Errorf("broadcast growth %v per doubling, too steep", f128-f64)
	}
	if f128 <= f64 {
		t.Errorf("broadcast time not increasing: %v -> %v", f64, f128)
	}
}

func TestReduceEqualsBroadcast(t *testing.T) {
	p := Params{L: 10, O: 2, G: 1, P: 32}
	b, _, _ := p.Broadcast()
	r, err := p.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	if b != r {
		t.Errorf("reduce %v != broadcast %v", r, b)
	}
}

func TestAllToAllPersonalized(t *testing.T) {
	p := Params{L: 10, O: 2, G: 0, P: 5}
	// o + 3·max(g,o) + L + o = 2 + 6 + 10 + 2 = 20.
	got, err := p.AllToAllPersonalized()
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("AllToAll = %v, want 20", got)
	}
	if v, _ := (Params{L: 10, O: 2, P: 1}).AllToAllPersonalized(); v != 0 {
		t.Errorf("P=1 all-to-all = %v, want 0", v)
	}
}

func TestMaxInFlight(t *testing.T) {
	if got := (Params{L: 10, G: 3}).MaxInFlight(); got != 4 {
		t.Errorf("MaxInFlight = %v, want ceil(10/3) = 4", got)
	}
	if got := (Params{L: 9, G: 3}).MaxInFlight(); got != 3 {
		t.Errorf("MaxInFlight = %v, want 3", got)
	}
	if got := (Params{L: 10, G: 0}).MaxInFlight(); got != 0 {
		t.Errorf("MaxInFlight with g=0 = %v, want 0 (unconstrained)", got)
	}
}

func TestScatterGather(t *testing.T) {
	p := Params{L: 10, O: 2, G: 0, P: 5}
	s, err := p.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	// o + 3·o + L + o = 2 + 6 + 10 + 2 = 20.
	if s != 20 {
		t.Errorf("Scatter = %v, want 20", s)
	}
	g, err := p.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if g != s {
		t.Errorf("Gather %v != Scatter %v", g, s)
	}
	if v, _ := (Params{L: 10, O: 2, P: 1}).Scatter(); v != 0 {
		t.Errorf("P=1 scatter = %v", v)
	}
	if _, err := (Params{L: -1, O: 2, P: 4}).Scatter(); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestScatterSlowerThanBroadcastAtScale(t *testing.T) {
	// Scatter is serial in the root; broadcast parallelizes. For large
	// P broadcast wins decisively.
	p := Params{L: 10, O: 2, G: 0, P: 64}
	s, _ := p.Scatter()
	b, _, _ := p.Broadcast()
	if b >= s {
		t.Errorf("broadcast %v not faster than scatter %v at P=64", b, s)
	}
}

package psim

// runSeq is the sequential algorithm: one global queue, always popping
// the minimum-key pending event. It is the determinism oracle the
// parallel cores are checked against, and the fallback every core uses
// when parallelism is structurally unavailable (one LP, or zero
// lookahead).
//
// Commit order here is the canonical dynamic replay: each pop takes the
// smallest key among events that exist at that moment. That is not
// always globally key-sorted — a zero-delay self-send is created by its
// generator and so commits after it even when its key is smaller —
// which is why finish() sorts the trace into key order before
// serializing it. The parallel cores reproduce the identical committed
// set, so the sorted serializations coincide byte for byte.
//
//lopc:hotpath
func (k *kernel) runSeq() {
	var q evHeap
	for i := range k.lps {
		// One global queue; the commit log is kept globally too (the
		// per-LP logs of the parallel cores are not needed here). The
		// log itself is allocated by Run before dispatch.
		k.lps[i].ctx.q = &q
		k.lps[i].ctx.recOn = false
	}
	k.boot()
	for {
		h := q.head()
		if h == nil || h.Time > k.until {
			return
		}
		ev := q.pop()
		r := &k.lps[ev.Dst]
		c := &r.ctx
		c.commit(&ev)
		if k.rec != nil {
			//lopc:allow allochot the global commit log grows amortized-once when tracing is requested; untraced runs never append
			k.rec = append(k.rec, Record{Time: ev.Time, Src: ev.Src, Dst: ev.Dst, Kind: ev.Kind, Seq: ev.Seq})
		}
		r.lp.Handle(c, ev)
		// Cross-LP sends were buffered in the LP's outbox; in the
		// sequential core they go straight back into the global queue.
		if len(c.out) > 0 {
			for _, e := range c.out {
				q.push(e)
			}
			c.out = c.out[:0]
		}
	}
}

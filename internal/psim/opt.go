package psim

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/runner"
)

// optSnap is the state checkpoint taken before each speculative event:
// the model's snapshot plus the kernel-side context (clock, random
// stream, send sequence, log lengths) needed to unwind it exactly.
type optSnap struct {
	state     any
	rand      rng.Stream // value copy: rolled-back draws replay identically
	now       float64
	sendSeq   uint64
	processed uint64
	recLen    int
	outLen    uint64 // absolute cross-send count at snapshot time (outBase-relative logs shift under fossil collection)
}

// optLP is the optimistic core's per-LP bookkeeping.
type optLP struct {
	// done holds the speculatively processed events in processing order;
	// snaps[i] is the checkpoint taken before done[i]. A rollback
	// truncates both and requeues the suffix. Processing order is
	// nondecreasing in Time but NOT monotone in the local key: a
	// zero-delay self-send is created by its generator and so runs after
	// it even when its (Time, Src, Seq) key is smaller. Searches over
	// done must therefore be linear, never binary on the key.
	done  []Event
	snaps []optSnap
	// outLog records delivered cross-LP sends in send order; a rollback
	// truncates it and turns the suffix into anti-messages. outBase
	// counts entries already fossil-collected off the front.
	outLog  []Event
	outBase uint64
}

// runOpt is the optimistic (Time Warp) core with a bounded speculation
// window. Each round: GVT is the minimum pending head time (all sends
// are delivered at barriers, so there are no in-transit messages to
// account for); snapshots and send logs strictly below GVT are fossil-
// collected, since no straggler or anti-message can ever target them
// (every future arrival carries a timestamp of at least GVT +
// lookahead); then every LP with work below GVT + window speculates
// forward in parallel, checkpointing before each event. The barrier
// delivers the round's sends in LP index order, rolls back any LP that
// received a straggler (an event ordered before something it already
// processed), and cancels the rolled-back speculation's sends with
// anti-messages, cascading — deterministically, in LP index order — to
// a fixed point. The window bounds every cascade: nothing can be rolled
// back below GVT, and nothing was speculated above GVT + window, per
// the bounded-window discipline for cascade-rollback control.
//
// The event at the global minimum key is never rolled back (stragglers
// arrive at GVT + lookahead at the earliest), so every round commits at
// least one event and the core terminates exactly like the others.
func (k *kernel) runOpt() {
	for i := range k.lps {
		r := &k.lps[i]
		r.ctx.q = &r.pq
	}
	k.boot()

	jobs := k.jobs()
	window := k.cfg.Window
	if window <= 0 {
		window = 8 * k.cfg.Lookahead
	}
	inf := math.Inf(1)
	opt := make([]optLP, len(k.lps))
	dirty := make([]bool, len(k.lps))
	active := make([]int32, 0, len(k.lps))
	opts := runner.Options{Jobs: jobs, Spans: k.cfg.Spans, Label: "psim-opt"}
	for {
		gvt := inf
		for i := range k.lps {
			if h := k.lps[i].pq.head(); h != nil && h.Time < gvt {
				gvt = h.Time
			}
		}
		if gvt > k.until || math.IsInf(gvt, 1) {
			return
		}
		k.fossil(opt, gvt)
		bound := gvt + window
		active = active[:0]
		for i := range k.lps {
			h := k.lps[i].pq.head()
			if h != nil && h.Time < bound && h.Time <= k.until {
				active = append(active, int32(i))
			}
		}
		if len(active) == 1 || jobs == 1 {
			for _, i := range active {
				k.drainSpec(&k.lps[i], &opt[i], bound)
			}
		} else {
			a := active
			_ = runner.Do(len(a), opts, func(j int) error {
				i := a[j]
				k.drainSpec(&k.lps[i], &opt[i], bound)
				return nil
			})
		}
		k.optBarrier(opt, dirty)
		k.stats.Rounds++
	}
}

// drainSpec is drainWindow with a checkpoint before every event: the
// speculative per-LP loop of the optimistic core. It is not a hot-path
// root — Save() allocates a snapshot per event by design; that cost is
// the price of optimism and is bounded by fossil collection.
func (k *kernel) drainSpec(r *lpRun, o *optLP, bound float64) {
	c := &r.ctx
	for {
		h := r.pq.head()
		if h == nil || h.Time >= bound || h.Time > k.until {
			return
		}
		ev := r.pq.pop()
		o.snaps = append(o.snaps, optSnap{
			state:     r.lp.Save(),
			rand:      c.rand,
			now:       c.now,
			sendSeq:   c.sendSeq,
			processed: c.processed,
			recLen:    len(c.rec),
			// Sends still sitting in the round outbox reach outLog at
			// the barrier before any rollback can happen, so they count.
			outLen: o.outBase + uint64(len(o.outLog)) + uint64(len(c.out)),
		})
		o.done = append(o.done, ev)
		c.commit(&ev)
		r.lp.Handle(c, ev)
	}
}

// optBarrier delivers the round's sends and resolves stragglers and
// anti-messages to a fixed point, all single-threaded and in LP index
// order, so the outcome is schedule-independent.
func (k *kernel) optBarrier(opt []optLP, dirty []bool) {
	// Deliver in source index order, logging each send for potential
	// cancellation and flagging receivers that got a straggler.
	for i := range k.lps {
		c := &k.lps[i].ctx
		o := &opt[i]
		for _, ev := range c.out {
			d := int(ev.Dst)
			k.lps[d].pq.push(ev)
			o.outLog = append(o.outLog, ev)
			od := &opt[d]
			// done times are nondecreasing, so done[n-1].Time is the
			// latest processed time; an arrival at or before it might
			// precede a processed event in key order (keys are not
			// monotone over done — see optLP). Overmarking is safe:
			// rollbackStragglers does the precise scan.
			if n := len(od.done); n > 0 && ev.Time <= od.done[n-1].Time {
				dirty[d] = true
			}
		}
		c.out = c.out[:0]
	}
	// Cascade to a fixed point: roll back dirty LPs (lowest index
	// first), then annihilate the anti-messages those rollbacks
	// emitted, which may dirty further LPs or force further rollbacks.
	var antis []Event
	for {
		progress := false
		for i := range k.lps {
			if !dirty[i] {
				continue
			}
			dirty[i] = false
			progress = true
			k.rollbackStragglers(i, opt, &antis)
		}
		if len(antis) == 0 {
			if !progress {
				return
			}
			continue
		}
		a := antis[0]
		antis = antis[1:]
		d := int(a.Dst)
		if k.lps[d].pq.removeBySrcSeq(a.Src, a.Seq) {
			continue // annihilated while still pending
		}
		// The positive was already processed: roll the receiver back to
		// just before it (which requeues it), then annihilate it. The
		// scan is linear — done is not key-ordered (see optLP) — and
		// matches on identity, since (Src, Seq) names a send uniquely.
		od := &opt[d]
		idx := -1
		for j := range od.done {
			if od.done[j].Src == a.Src && od.done[j].Seq == a.Seq {
				idx = j
				break
			}
		}
		if idx < 0 {
			panic("psim: anti-message found neither a pending nor a processed positive")
		}
		k.rollbackTo(d, idx, opt, &antis)
		if !k.lps[d].pq.removeBySrcSeq(a.Src, a.Seq) {
			panic("psim: rolled-back positive missing from the requeue")
		}
		dirty[d] = true // requeued events may now precede the new tail
	}
}

// rollbackStragglers unwinds LP i while any pending event precedes a
// processed one, restoring the checkpoint before the first such
// processed event. The scan is linear: processing order is not
// key-ordered (see optLP), so the predicate is not monotone and binary
// search does not apply. Rolling back the processing-order suffix from
// the first key-greater entry is exactly right — entries before it all
// key-precede the straggler and replay identically, while entries after
// it are either key-greater themselves or causal descendants of the
// rollback point (zero-delay self-sends), which the requeue turns into
// phantoms for re-execution to reissue.
func (k *kernel) rollbackStragglers(i int, opt []optLP, antis *[]Event) {
	o := &opt[i]
	for {
		h := k.lps[i].pq.head()
		if h == nil || len(o.done) == 0 {
			return
		}
		idx := -1
		for j := range o.done {
			if localLess(h, &o.done[j]) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return
		}
		k.rollbackTo(i, idx, opt, antis)
	}
}

// rollbackTo restores LP i to the checkpoint taken before done[idx]:
// model state, context, and trace are rewound; the undone events are
// requeued; sends made after the checkpoint become anti-messages.
func (k *kernel) rollbackTo(i, idx int, opt []optLP, antis *[]Event) {
	r := &k.lps[i]
	c := &r.ctx
	o := &opt[i]
	sn := &o.snaps[idx]
	r.lp.Restore(sn.state)
	c.rand = sn.rand
	c.now = sn.now
	c.sendSeq = sn.sendSeq
	c.processed = sn.processed
	c.rec = c.rec[:sn.recLen]
	// Requeue the undone deliveries — except the LP's own phantom
	// self-sends (Seq at or beyond the restored send sequence): those
	// were issued by the execution being undone, and re-execution will
	// reissue them. Ones still pending in the queue are purged the same
	// way; cross-LP phantoms are cancelled by the anti-messages below.
	for j := idx; j < len(o.done); j++ {
		e := &o.done[j]
		if e.Src == c.id && e.Seq >= sn.sendSeq {
			continue
		}
		r.pq.push(*e)
	}
	r.pq.removePhantoms(c.id, sn.sendSeq)
	k.stats.RolledBack += uint64(len(o.done) - idx)
	k.stats.Rollbacks++
	o.done = o.done[:idx]
	o.snaps = o.snaps[:idx]
	cut := int(sn.outLen - o.outBase)
	*antis = append(*antis, o.outLog[cut:]...)
	o.outLog = o.outLog[:cut]
}

// fossil discards checkpoints and send logs that no rollback can reach:
// everything strictly below GVT. The committed trace is untouched —
// entries below GVT are final by the same argument.
func (k *kernel) fossil(opt []optLP, gvt float64) {
	for i := range opt {
		o := &opt[i]
		idx := sort.Search(len(o.done), func(j int) bool {
			return o.done[j].Time >= gvt
		})
		if idx == 0 {
			continue
		}
		var keep uint64
		if idx < len(o.snaps) {
			keep = o.snaps[idx].outLen
		} else {
			keep = o.outBase + uint64(len(o.outLog))
		}
		cut := int(keep - o.outBase)
		o.outLog = append(o.outLog[:0], o.outLog[cut:]...)
		o.outBase = keep
		o.done = append(o.done[:0], o.done[idx:]...)
		// Truncate via copy so the dropped snapshots (and the model
		// state they reference) become garbage now, not when the slice
		// next grows.
		copy(o.snaps, o.snaps[idx:])
		for j := len(o.snaps) - idx; j < len(o.snaps); j++ {
			o.snaps[j] = optSnap{}
		}
		o.snaps = o.snaps[:len(o.snaps)-idx]
	}
}

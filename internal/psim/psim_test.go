package psim_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/psim"
)

// toyLP is an adversarial traffic generator for the determinism tests:
// every handled event mutates a running hash, draws from the LP's
// random stream, and schedules both self-events (arbitrarily small
// delays) and cross-LP events (delays at the lookahead bound and up).
// Because the sends depend on the hash and the stream, any divergence
// in commit order or rollback replay snowballs into a different trace
// rather than hiding.
type toyLP struct {
	n         int
	lookahead float64
	hash      uint64
	handled   int
}

func (l *toyLP) Start(c *psim.Ctx) {
	// Seed traffic: one self-event and one cross event per LP.
	c.Send(c.Self(), 0.25*c.Rand().Float64(), 0, psim.Msg{})
	dst := c.Rand().Intn(l.n)
	c.Send(dst, l.lookahead*(1+c.Rand().Float64()), 1, psim.Msg{})
}

func (l *toyLP) Handle(c *psim.Ctx, ev psim.Event) {
	l.handled++
	l.hash = l.hash*0x9e3779b97f4a7c15 + math.Float64bits(ev.Time) ^ uint64(ev.Src)<<32 ^ ev.Seq
	r := c.Rand()
	// Exactly one send per event keeps the population constant (the
	// run is bounded by Until, not by traffic dying out or exploding).
	// Branch on state so a mis-replayed rollback changes the traffic.
	if (l.hash^r.Uint64())&1 == 0 {
		c.Send(c.Self(), 0.3*r.Float64(), 0, psim.Msg{U0: l.hash})
		return
	}
	dst := r.Intn(l.n)
	c.Send(dst, l.lookahead*(1+2*r.Float64()), 1, psim.Msg{U0: l.hash})
}

func (l *toyLP) Save() any {
	s := *l
	return &s
}

func (l *toyLP) Restore(snapshot any) {
	*l = *snapshot.(*toyLP)
}

func toyLPs(n int, lookahead float64) []psim.LP {
	lps := make([]psim.LP, n)
	for i := range lps {
		lps[i] = &toyLP{n: n, lookahead: lookahead}
	}
	return lps
}

// runToy runs the toy model under one core configuration and returns
// the trace bytes and stats.
func runToy(t *testing.T, n int, sync psim.Sync, jobs int, window float64) ([]byte, psim.RunStats) {
	t.Helper()
	var tr psim.Trace
	st, err := psim.Run(psim.Config{
		LPs:       toyLPs(n, 1.0),
		Lookahead: 1.0,
		Sync:      sync,
		Jobs:      jobs,
		Seed:      42,
		Until:     40,
		Window:    window,
		Trace:     &tr,
	})
	if err != nil {
		t.Fatalf("Run(%v, jobs=%d): %v", sync, jobs, err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if int(st.Events) != tr.Len() {
		t.Fatalf("stats.Events=%d but trace has %d records", st.Events, tr.Len())
	}
	return buf.Bytes(), st
}

// TestDeterminismContract is the tentpole check: for a fixed seed,
// every core at every job count commits a byte-identical event trace
// and identical committed statistics.
func TestDeterminismContract(t *testing.T) {
	for _, n := range []int{2, 7, 32} {
		want, wantSt := runToy(t, n, psim.SyncSeq, 1, 0)
		if wantSt.Events == 0 {
			t.Fatalf("n=%d: sequential run committed no events", n)
		}
		cases := []struct {
			name   string
			sync   psim.Sync
			jobs   int
			window float64
		}{
			{"cons/j1", psim.SyncCons, 1, 0},
			{"cons/j8", psim.SyncCons, 8, 0},
			{"opt/j1", psim.SyncOpt, 1, 0},
			{"opt/j8", psim.SyncOpt, 8, 0},
			{"opt/j8/window2", psim.SyncOpt, 8, 2},
			{"opt/j8/window64", psim.SyncOpt, 8, 64},
		}
		for _, tc := range cases {
			got, gotSt := runToy(t, n, tc.sync, tc.jobs, tc.window)
			if !bytes.Equal(got, want) {
				t.Errorf("n=%d %s: trace differs from sequential oracle (%d vs %d bytes)",
					n, tc.name, len(got), len(want))
				continue
			}
			if gotSt.Events != wantSt.Events || !reflect.DeepEqual(gotSt.PerLP, wantSt.PerLP) || gotSt.MaxTime != wantSt.MaxTime {
				t.Errorf("n=%d %s: committed stats diverge: got {Events:%d MaxTime:%v} want {Events:%d MaxTime:%v}",
					n, tc.name, gotSt.Events, gotSt.MaxTime, wantSt.Events, wantSt.MaxTime)
			}
		}
	}
}

// TestOptimisticRollsBackAndStillMatches pins down that the optimistic
// core is actually exercising its rollback machinery on this workload —
// a rollback-free run would make the determinism check vacuous — and
// that rolled-back work leaves no trace divergence.
func TestOptimisticRollsBackAndStillMatches(t *testing.T) {
	want, _ := runToy(t, 16, psim.SyncSeq, 1, 0)
	// A wide window invites deep speculation and thus stragglers.
	got, st := runToy(t, 16, psim.SyncOpt, 8, 32)
	if st.Rollbacks == 0 {
		t.Fatalf("optimistic run with window 32 had no rollbacks; the workload is not stressing Time Warp")
	}
	if st.RolledBack < st.Rollbacks {
		t.Fatalf("RolledBack=%d < Rollbacks=%d: each episode must undo at least one event", st.RolledBack, st.Rollbacks)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("optimistic trace diverges from sequential oracle despite %d rollbacks", st.Rollbacks)
	}
}

// TestConservativeRoundsCounted checks the null-message-equivalent
// round counter moves under the conservative core and stays zero under
// the sequential one.
func TestConservativeRoundsCounted(t *testing.T) {
	_, seqSt := runToy(t, 8, psim.SyncSeq, 1, 0)
	if seqSt.Rounds != 0 {
		t.Errorf("sequential core reported %d sync rounds; want 0", seqSt.Rounds)
	}
	_, consSt := runToy(t, 8, psim.SyncCons, 4, 0)
	if consSt.Rounds == 0 {
		t.Errorf("conservative core reported 0 sync rounds")
	}
	if consSt.Rollbacks != 0 || consSt.RolledBack != 0 {
		t.Errorf("conservative core reported rollbacks: %+v", consSt)
	}
}

// orderLP records the order its events are delivered in.
type orderLP struct {
	got *[]psim.Event
}

func (l *orderLP) Start(*psim.Ctx)                   {}
func (l *orderLP) Handle(_ *psim.Ctx, ev psim.Event) { *l.got = append(*l.got, ev) }
func (l *orderLP) Save() any                         { return nil }
func (l *orderLP) Restore(any)                       {}

// seederLP schedules a fixed fan of same-timestamp events from Start
// so the tie-break order (Time, Dst, Src, Seq) is observable.
type seederLP struct {
	orderLP
	n int
}

func (l *seederLP) Start(c *psim.Ctx) {
	// Two sends to every LP (including self), all arriving at t=1 or
	// t=2, issued in descending destination order so delivery order
	// cannot accidentally equal send order.
	for dst := l.n - 1; dst >= 0; dst-- {
		delay := 1.0
		if dst == c.Self() {
			// Self-sends are exempt from the lookahead bound but share
			// the arrival instant, joining the tie.
			delay = 1.0
		}
		c.Send(dst, delay+1, 2, psim.Msg{})
		c.Send(dst, delay, 1, psim.Msg{})
	}
}

// TestTieBreakOrder verifies same-timestamp events commit in
// (Dst, Src, Seq) order on every core.
func TestTieBreakOrder(t *testing.T) {
	for _, sync := range []psim.Sync{psim.SyncSeq, psim.SyncCons, psim.SyncOpt} {
		var got []psim.Event
		n := 3
		lps := make([]psim.LP, n)
		for i := range lps {
			s := &seederLP{n: n}
			s.got = &got
			lps[i] = s
		}
		var tr psim.Trace
		if _, err := psim.Run(psim.Config{
			LPs: lps, Lookahead: 1, Sync: sync, Jobs: 8, Seed: 1, Until: 10, Trace: &tr,
		}); err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		recs := tr.Records()
		if len(recs) != 2*n*n {
			t.Fatalf("%v: got %d records, want %d", sync, len(recs), 2*n*n)
		}
		for i := 1; i < len(recs); i++ {
			a, b := recs[i-1], recs[i]
			if b.Time < a.Time ||
				(b.Time == a.Time && (b.Dst < a.Dst || (b.Dst == a.Dst && (b.Src < a.Src || (b.Src == a.Src && b.Seq < a.Seq))))) {
				t.Fatalf("%v: records %d,%d out of canonical order: %+v then %+v", sync, i-1, i, a, b)
			}
		}
	}
}

// lateLP violates the lookahead contract on its third event.
type lateLP struct {
	orderLP
	count int
}

func (l *lateLP) Start(c *psim.Ctx) {
	c.Send(c.Self(), 0.1, 0, psim.Msg{})
}

func (l *lateLP) Handle(c *psim.Ctx, ev psim.Event) {
	l.count++
	if l.count == 3 {
		c.Send(1, 0.5, 0, psim.Msg{}) // below the declared lookahead of 1
		return
	}
	c.Send(c.Self(), 0.1, 0, psim.Msg{})
}

// TestSendContractEnforced checks the kernel panics on a cross-LP send
// below the declared lookahead — in the sequential oracle too, so the
// bound cannot silently hold only where it is needed.
func TestSendContractEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("send below lookahead did not panic")
		}
	}()
	lps := []psim.LP{&lateLP{}, &orderLP{got: new([]psim.Event)}}
	_, _ = psim.Run(psim.Config{LPs: lps, Lookahead: 1, Sync: psim.SyncSeq, Until: 10})
}

// TestConfigValidation exercises Run's error paths.
func TestConfigValidation(t *testing.T) {
	ok := toyLPs(2, 1)
	cases := []struct {
		name string
		cfg  psim.Config
	}{
		{"no LPs", psim.Config{Lookahead: 1}},
		{"nil LP", psim.Config{LPs: []psim.LP{nil}, Lookahead: 1}},
		{"negative lookahead", psim.Config{LPs: ok, Lookahead: -1}},
		{"inf lookahead", psim.Config{LPs: ok, Lookahead: math.Inf(1)}},
		{"NaN until", psim.Config{LPs: ok, Lookahead: 1, Until: math.NaN()}},
		{"negative window", psim.Config{LPs: ok, Lookahead: 1, Window: -2}},
		{"bad sync", psim.Config{LPs: ok, Lookahead: 1, Sync: psim.Sync(9)}},
	}
	for _, tc := range cases {
		if _, err := psim.Run(tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

// TestParseSync round-trips the CLI spellings.
func TestParseSync(t *testing.T) {
	for _, s := range []psim.Sync{psim.SyncSeq, psim.SyncCons, psim.SyncOpt} {
		got, err := psim.ParseSync(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSync(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := psim.ParseSync("timewarp"); err == nil {
		t.Errorf("ParseSync accepted unknown spelling")
	}
}

// TestMetricsPublished checks the obs counters receive the run totals.
func TestMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	m := psim.NewMetrics(reg)
	st, err := psim.Run(psim.Config{
		LPs: toyLPs(4, 1), Lookahead: 1, Sync: psim.SyncCons, Jobs: 2, Seed: 7, Until: 20, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Events.Value(); got != int64(st.Events) {
		t.Errorf("events counter = %d, want %d", got, st.Events)
	}
	if got := m.Rounds.Value(); got != int64(st.Rounds) {
		t.Errorf("rounds counter = %d, want %d", got, st.Rounds)
	}
}

// TestZeroLookaheadFallsBackToSeq checks the degenerate dispatch: a
// parallel core with no usable lookahead must run the sequential
// algorithm (no rounds) and still commit the same trace.
func TestZeroLookaheadFallsBackToSeq(t *testing.T) {
	run := func(sync psim.Sync) ([]byte, psim.RunStats) {
		var tr psim.Trace
		st, err := psim.Run(psim.Config{
			LPs: toyLPs(4, 0), Lookahead: 0, Sync: sync, Jobs: 8, Seed: 3, Until: 15, Trace: &tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr.WriteTo(&buf)
		return buf.Bytes(), st
	}
	want, _ := run(psim.SyncSeq)
	for _, sync := range []psim.Sync{psim.SyncCons, psim.SyncOpt} {
		got, st := run(sync)
		if st.Rounds != 0 {
			t.Errorf("%v with zero lookahead ran %d rounds; want sequential fallback", sync, st.Rounds)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%v zero-lookahead trace diverges from sequential", sync)
		}
	}
}

// TestTraceFormat pins the WriteTo line format: exact hex floats keep
// equal traces equal bytes.
func TestTraceFormat(t *testing.T) {
	var tr psim.Trace
	if _, err := psim.Run(psim.Config{
		LPs:       []psim.LP{&seederLP{n: 1, orderLP: orderLP{got: new([]psim.Event)}}},
		Lookahead: 1, Until: 5, Trace: &tr,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned (%d, %v), buffer has %d bytes", n, err, buf.Len())
	}
	want := "0x1p+00 0 0 1 1\n0x1p+01 0 0 0 2\n"
	if got := buf.String(); got != want {
		t.Fatalf("trace text:\n%q\nwant:\n%q", got, want)
	}
}

func ExampleParseSync() {
	s, _ := psim.ParseSync("cons")
	fmt.Println(s)
	// Output: cons
}

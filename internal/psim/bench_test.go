package psim

import (
	"fmt"
	"testing"
)

// benchLP is the benchmark workload: a deterministic closed mesh where
// every LP, on each delivery, forwards one event to the next LP exactly
// one lookahead later and schedules local think time for itself. The
// event population stays constant at one per LP, so committed events
// scale linearly with P and simulated time — a clean events/sec yard-
// stick for comparing cores.
type benchLP struct {
	hops uint64
}

func (l *benchLP) Start(c *Ctx) {
	c.Send(c.Self(), 0, 1, Msg{})
}

func (l *benchLP) Handle(c *Ctx, ev Event) {
	l.hops++
	next := (c.Self() + 1) % c.N()
	if next == c.Self() {
		c.Send(next, 1.5, 1, Msg{})
		return
	}
	c.Send(next, 1, 1, Msg{})
}

func (l *benchLP) Save() any        { return l.hops }
func (l *benchLP) Restore(snap any) { l.hops = snap.(uint64) }

// BenchmarkCores runs the mesh at P in {64, 256, 1024} under every
// core/job combination and reports events/sec. BENCH_psim.json records
// a measured sweep of these numbers.
func BenchmarkCores(b *testing.B) {
	cases := []struct {
		name string
		sync Sync
		jobs int
	}{
		{"seq", SyncSeq, 1},
		{"cons/j1", SyncCons, 1},
		{"cons/j8", SyncCons, 8},
		{"opt/j1", SyncOpt, 1},
		{"opt/j8", SyncOpt, 8},
	}
	for _, p := range []int{64, 256, 1024} {
		// Scale simulated time so every configuration commits about the
		// same number of events regardless of P.
		until := float64(131072 / p)
		for _, tc := range cases {
			b.Run(fmt.Sprintf("P%d/%s", p, tc.name), func(b *testing.B) {
				var events uint64
				for i := 0; i < b.N; i++ {
					lps := make([]LP, p)
					for j := range lps {
						lps[j] = &benchLP{}
					}
					rs, err := Run(Config{
						LPs:       lps,
						Lookahead: 1,
						Sync:      tc.sync,
						Jobs:      tc.jobs,
						Seed:      1,
						Until:     until,
					})
					if err != nil {
						b.Fatal(err)
					}
					events += rs.Events
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

package psim

import (
	"math"

	"repro/internal/runner"
)

// runCons is the conservative core: a bounded-lag variant of
// Chandy–Misra–Bryant synchronization. Each round computes, for every
// LP, its earliest input time — the soonest any other LP could still
// send it something: (minimum head time among the other LPs) +
// lookahead, additionally capped by the LP's own head + 2·lookahead
// (its earliest send, relayed straight back — the binding constraint
// when every other queue is empty). An LP may safely process every pending event strictly
// below that bound, in parallel with the others, because nothing that
// could reorder its input can arrive below it. The barrier then
// delivers the round's cross-LP sends in LP index order and the next
// round recomputes the bounds — the same guarantee CMB null messages
// provide, paid once per round instead of once per channel.
//
// Progress needs lookahead > 0 (the caller guarantees it): the LP
// holding the global minimum always clears its bound, so every round
// commits at least one event and the protocol is deadlock-free by
// construction.
func (k *kernel) runCons() {
	for i := range k.lps {
		r := &k.lps[i]
		r.ctx.q = &r.pq
	}
	k.boot()

	jobs := k.jobs()
	la := k.cfg.Lookahead
	inf := math.Inf(1)
	active := make([]int32, 0, len(k.lps))
	bounds := make([]float64, len(k.lps))
	opts := runner.Options{Jobs: jobs, Spans: k.cfg.Spans, Label: "psim-cons"}
	for {
		// Minimum and second-minimum head times across LPs, plus how
		// many LPs sit at the minimum: LP i's earliest input time is
		// driven by the *other* LPs, so the unique holder of the global
		// minimum gets a looser bound (it is the laggard — letting it
		// run further is exactly what catches it up).
		min1, min2 := inf, inf
		minCount := 0
		minIdx := -1
		for i := range k.lps {
			h := k.lps[i].pq.head()
			if h == nil {
				continue
			}
			switch {
			case h.Time < min1:
				min2 = min1
				min1 = h.Time
				minCount = 1
				minIdx = i
			//lopc:allow floateq exact tie detection: LPs sharing the minimum head time must all use min1 as their bound
			case h.Time == min1:
				minCount++
			case h.Time < min2:
				min2 = h.Time
			}
		}
		if min1 > k.until || math.IsInf(min1, 1) {
			return
		}
		active = active[:0]
		for i := range k.lps {
			h := k.lps[i].pq.head()
			if h == nil || h.Time > k.until {
				continue
			}
			bound := min1 + la
			if minCount == 1 && i == minIdx {
				// The unique holder of the global minimum hears from the
				// others no earlier than min2 + lookahead — but its own
				// sends can be relayed straight back, so the true earliest
				// input is capped by one round trip: min1 + 2·lookahead.
				// (With min2 = +Inf — every other queue empty — the round
				// trip is the only bound; forgetting it would let this LP
				// run to completion and then be hit by a reply in the past.)
				bound = math.Min(min2+la, min1+2*la)
			}
			if h.Time < bound {
				active = append(active, int32(i))
				bounds[i] = bound
			}
		}
		if len(active) == 1 || jobs == 1 {
			for _, i := range active {
				k.lps[i].drainWindow(bounds[i], k.until)
			}
		} else {
			a := active // capture outside the closure for the race detector's benefit
			// Errors are impossible (the task never fails); Do's only
			// role is the bounded fan-out with a full barrier.
			_ = runner.Do(len(a), opts, func(j int) error {
				i := a[j]
				k.lps[i].drainWindow(bounds[i], k.until)
				return nil
			})
		}
		k.deliver()
		k.stats.Rounds++
	}
}

// drainWindow processes the LP's pending events with Time strictly
// below bound (and no later than until), in local key order. This is
// the per-LP event loop both parallel cores run concurrently; it
// touches nothing outside its own LP.
//
//lopc:hotpath
func (r *lpRun) drainWindow(bound, until float64) {
	c := &r.ctx
	for {
		h := r.pq.head()
		if h == nil || h.Time >= bound || h.Time > until {
			return
		}
		ev := r.pq.pop()
		c.commit(&ev)
		r.lp.Handle(c, ev)
	}
}

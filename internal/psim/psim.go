// Package psim is the parallel discrete-event simulation core: it
// shards a simulated machine into logical processes (LPs) connected by
// timestamped event messages and runs them under one of three
// runtime-switchable synchronization cores.
//
//   - SyncSeq processes events one at a time in global timestamp order —
//     the determinism oracle, equivalent to the single-threaded
//     internal/sim discipline.
//   - SyncCons is a conservative core in the Chandy–Misra–Bryant
//     family: the guaranteed minimum cross-LP delay (the lookahead —
//     for the LoPC machine, the network latency St) bounds how far any
//     LP may safely run ahead of the global virtual-time floor. Each
//     synchronization round plays the role of CMB null messages: it
//     advances every LP's earliest-input-time to (min other head + St)
//     at a barrier instead of flooding point-to-point nulls, which is
//     deadlock-free by construction for St > 0.
//   - SyncOpt is an optimistic (Time Warp) core: LPs speculate beyond
//     the floor inside a bounded window, snapshotting state before
//     every event; a straggler message rolls the LP back (restoring the
//     snapshot and emitting anti-messages for sends that must be
//     undone), and the per-round GVT — the floor itself — drives fossil
//     collection of snapshots no rollback can reach. The bounded window
//     is what keeps cascade rollbacks short: no chain can reach further
//     than GVT + window.
//
// The determinism contract is the point of the design: for a fixed
// seed, every core at every job count commits the identical event
// sequence. Three mechanisms carry it. Event ties break by the
// canonical key (Time, Dst, Src, Seq) — LP index before per-source send
// sequence — so ordering never depends on arrival order or worker
// interleaving. Each LP draws randomness from its own rng.SeedAt
// substream, so draws on one LP cannot perturb another. And all
// cross-LP effects are buffered per round and merged in LP index order
// (the internal/runner ordered-merge discipline), so the parallel cores
// are pure functions of (seed, model), not of the schedule.
package psim

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Msg is the fixed payload of an event. Models encode what they need in
// the numbered fields (selectors into model-owned tables, timestamps,
// thread indices); a flat value struct keeps sends allocation-free and
// makes events trivially copyable for optimistic rollback.
type Msg struct {
	F0, F1, F2, F3 float64
	I0, I1         int32
	U0             uint64
}

// Event is one timestamped message between LPs (or an LP's self-event).
// Events are pure values: the kernel copies them freely between queues,
// round buffers, and rollback logs.
type Event struct {
	// Time is the simulated delivery time.
	Time float64
	// Src and Dst are LP indices; self-events have Src == Dst.
	Src, Dst int32
	// Kind is a model-defined discriminator.
	Kind int32
	// Seq is the per-source send sequence number, assigned by Ctx.Send.
	// (Src, Seq) uniquely identifies an event, which is what
	// anti-messages use to find their positive counterpart.
	Seq uint64
	// Msg is the payload.
	Msg Msg
}

// eventLess is the canonical global commit order (Time, Dst, Src, Seq).
// Dst before Src so all of one LP's deliveries at a tied timestamp are
// contiguous; Seq last so an LP's own sends stay in issue order.
func eventLess(a, b *Event) bool {
	//lopc:allow floateq exact tie detection is the point: equal timestamps must fall through to the index keys
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// localLess is eventLess restricted to one LP's deliveries (Dst fixed):
// (Time, Src, Seq).
func localLess(a, b *Event) bool {
	//lopc:allow floateq exact tie detection, as in eventLess
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// LP is one logical process: a shard of the simulated system that owns
// its state exclusively and interacts with other LPs only through
// timestamped events.
type LP interface {
	// Start runs once at time zero, before any event is processed; the
	// model bootstraps by scheduling its first events via ctx.Send.
	Start(ctx *Ctx)
	// Handle processes one delivered event. Under the optimistic core
	// it may run speculatively and be undone by Restore, so it must not
	// touch state outside the LP (shared immutable configuration is
	// fine).
	Handle(ctx *Ctx, ev Event)
	// Save returns a snapshot of the LP's mutable state; Restore
	// reinstates one. Only the optimistic core calls them. LPs that
	// will never run optimistically may implement them as no-ops.
	Save() any
	Restore(snapshot any)
}

// Ctx is the kernel's per-LP execution context, passed to Start and
// Handle. It carries the LP's clock, its private random stream, and the
// send primitive. A Ctx is owned by exactly one LP and is never shared
// across workers.
type Ctx struct {
	id        int32
	n         int32
	recOn     bool
	now       float64
	lookahead float64
	rand      rng.Stream
	sendSeq   uint64
	processed uint64
	q         *evHeap // destination of self-sends (per-LP, or the global queue under SyncSeq)
	out       []Event // cross-LP sends buffered for the next barrier
	rec       []Record
}

// Now returns the LP's current simulated time.
func (c *Ctx) Now() float64 { return c.now }

// Self returns the LP's index.
func (c *Ctx) Self() int { return int(c.id) }

// N returns the number of LPs in the run.
func (c *Ctx) N() int { return int(c.n) }

// Rand returns the LP's private random stream, derived from the run
// seed with rng.SeedAt(seed, lp). Under the optimistic core the stream
// is part of the snapshot, so rolled-back draws are replayed
// identically.
func (c *Ctx) Rand() *rng.Stream { return &c.rand }

// Send schedules an event for LP dst at Now()+delay. Cross-LP sends
// must respect the configured lookahead: delay >= Config.Lookahead, the
// promise the conservative and optimistic windows are built on. The
// kernel enforces it in every core — including the sequential oracle —
// so a model that breaks its own bound fails fast rather than
// diverging across cores.
func (c *Ctx) Send(dst int, delay float64, kind int32, m Msg) {
	if dst < 0 || int32(dst) >= c.n {
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("psim: LP %d sends to invalid LP %d of %d", c.id, dst, c.n))
	}
	if !(delay >= 0) {
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("psim: LP %d sends with invalid delay %v", c.id, delay))
	}
	ev := Event{
		Time: c.now + delay,
		Src:  c.id,
		Dst:  int32(dst),
		Kind: kind,
		Seq:  c.sendSeq,
		Msg:  m,
	}
	c.sendSeq++
	if int32(dst) == c.id {
		c.q.push(ev)
		return
	}
	if delay < c.lookahead {
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("psim: LP %d sends to LP %d with delay %v below the declared lookahead %v",
			c.id, dst, delay, c.lookahead))
	}
	//lopc:allow allochot the round outbox grows amortized-once to the LP's steady-state fan-out, then is reused
	c.out = append(c.out, ev)
}

// commit advances the LP's clock to ev and records the trace entry.
// Handlers run after it.
func (c *Ctx) commit(ev *Event) {
	c.now = ev.Time
	c.processed++
	if c.recOn {
		//lopc:allow allochot the committed-trace log grows amortized-once when tracing is requested; untraced runs never append
		c.rec = append(c.rec, Record{Time: ev.Time, Src: ev.Src, Dst: ev.Dst, Kind: ev.Kind, Seq: ev.Seq})
	}
}

// Sync selects a synchronization core.
type Sync int

const (
	// SyncSeq is the sequential oracle.
	SyncSeq Sync = iota
	// SyncCons is the conservative lookahead-window core.
	SyncCons
	// SyncOpt is the optimistic rollback core.
	SyncOpt
)

// ParseSync maps the CLI spelling ("seq", "cons", "opt") to a Sync.
func ParseSync(s string) (Sync, error) {
	switch s {
	case "seq":
		return SyncSeq, nil
	case "cons":
		return SyncCons, nil
	case "opt":
		return SyncOpt, nil
	default:
		return 0, fmt.Errorf("psim: unknown sync core %q (want seq, cons, or opt)", s)
	}
}

func (s Sync) String() string {
	switch s {
	case SyncSeq:
		return "seq"
	case SyncCons:
		return "cons"
	case SyncOpt:
		return "opt"
	default:
		return fmt.Sprintf("Sync(%d)", int(s))
	}
}

// Config describes one parallel simulation run.
type Config struct {
	// LPs are the logical processes, indexed by LP id.
	LPs []LP
	// Lookahead is the guaranteed minimum delay of every cross-LP send
	// — for the LoPC machine, the lower bound of the network-latency
	// distribution (St for the paper's deterministic wire time). It is
	// what lets the parallel cores run LPs concurrently; with a zero
	// lookahead (or a single LP) they degenerate to the sequential
	// algorithm, which is still correct, just not parallel.
	Lookahead float64
	// Sync selects the synchronization core; the zero value is SyncSeq.
	Sync Sync
	// Jobs bounds worker parallelism in the parallel cores; <= 0 means
	// GOMAXPROCS. Jobs never affects committed results, only speed.
	Jobs int
	// Seed roots the per-LP random substreams (rng.SeedAt(Seed, lp)).
	Seed uint64
	// Until bounds the run: events with Time <= Until are processed.
	// Zero (or +Inf) means run to quiescence.
	Until float64
	// Window is the optimistic core's speculation bound beyond GVT;
	// <= 0 means 8× Lookahead. A larger window exposes more parallelism
	// and risks longer rollbacks; the bound itself is what keeps
	// cascade rollbacks finite.
	Window float64
	// Trace, when non-nil, collects the committed event trace — the
	// byte-comparable artifact of the determinism contract.
	Trace *Trace
	// Metrics, when non-nil, receives event/round/rollback counters
	// after the run.
	Metrics *Metrics
	// Spans, when non-nil, records one Chrome-trace span per LP drain
	// in the parallel cores (via the runner's span support).
	Spans *trace.Spans
}

// RunStats summarizes one run. Events, PerLP, and MaxTime are part of
// the determinism contract (identical across cores and job counts);
// Rounds, Rollbacks, and RolledBack describe how the chosen core got
// there.
type RunStats struct {
	// Events is the number of committed events.
	Events uint64
	// PerLP is the committed event count by LP.
	PerLP []uint64
	// MaxTime is the largest committed event time.
	MaxTime float64
	// Rounds counts synchronization rounds (conservative windows or
	// optimistic GVT epochs); zero under the sequential algorithm.
	Rounds uint64
	// Rollbacks counts rollback episodes (optimistic core only).
	Rollbacks uint64
	// RolledBack counts speculatively processed events that were undone
	// and re-executed (optimistic core only).
	RolledBack uint64
}

// Metrics exposes run counters through an obs.Registry.
type Metrics struct {
	Events     *obs.Counter
	Rounds     *obs.Counter
	Rollbacks  *obs.Counter
	RolledBack *obs.Counter
}

// NewMetrics registers the psim counters on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Events:     reg.Counter("lopc_psim_events_total", "committed simulation events", nil),
		Rounds:     reg.Counter("lopc_psim_sync_rounds_total", "synchronization rounds (windows/GVT epochs)", nil),
		Rollbacks:  reg.Counter("lopc_psim_rollbacks_total", "optimistic rollback episodes", nil),
		RolledBack: reg.Counter("lopc_psim_rolled_back_events_total", "speculative events undone and re-executed", nil),
	}
}

// Record is one committed trace entry.
type Record struct {
	Time           float64
	Src, Dst, Kind int32
	Seq            uint64
}

func recordLess(a, b *Record) bool {
	//lopc:allow floateq exact tie detection, as in eventLess
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// Trace is the committed event trace of a run, sorted by the canonical
// global key (Time, Dst, Src, Seq). Two runs satisfy the determinism
// contract exactly when their traces are byte-identical under WriteTo.
type Trace struct {
	recs []Record
}

// Len returns the number of committed entries.
func (t *Trace) Len() int { return len(t.recs) }

// Records returns the committed entries in global commit order. The
// slice is owned by the Trace.
func (t *Trace) Records() []Record { return t.recs }

// WriteTo writes the trace as text, one event per line:
// "time src dst seq kind", with the timestamp in Go's exact hexadecimal
// floating-point form so equal traces are equal bytes and unequal
// traces differ even in the last ulp.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	inner := &countWriter{w: w}
	bw := bufio.NewWriter(inner)
	var line []byte
	for i := range t.recs {
		r := &t.recs[i]
		line = line[:0]
		line = strconv.AppendFloat(line, r.Time, 'x', -1, 64)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(r.Src), 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(r.Dst), 10)
		line = append(line, ' ')
		line = strconv.AppendUint(line, r.Seq, 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(r.Kind), 10)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return inner.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return inner.n, err
	}
	return inner.n, nil
}

// countWriter counts bytes that reached the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// lpRun is the kernel's per-LP slot: the model LP, its context, and its
// pending-event queue (unused under SyncSeq, which pools all events in
// one global queue).
type lpRun struct {
	lp  LP
	ctx Ctx
	pq  evHeap
}

// kernel is the shared run state across cores.
type kernel struct {
	cfg   Config
	lps   []lpRun
	until float64
	rec   []Record // global commit log (sequential algorithm only)
	stats RunStats
}

// Run executes the configured simulation and returns its statistics.
func Run(cfg Config) (RunStats, error) {
	n := len(cfg.LPs)
	switch {
	case n == 0:
		return RunStats{}, fmt.Errorf("psim: no LPs configured")
	case !(cfg.Lookahead >= 0) || math.IsInf(cfg.Lookahead, 0):
		return RunStats{}, fmt.Errorf("psim: invalid lookahead %v", cfg.Lookahead)
	case cfg.Sync < SyncSeq || cfg.Sync > SyncOpt:
		return RunStats{}, fmt.Errorf("psim: invalid sync core %d", int(cfg.Sync))
	case math.IsNaN(cfg.Until) || cfg.Until < 0:
		return RunStats{}, fmt.Errorf("psim: invalid until %v", cfg.Until)
	case math.IsNaN(cfg.Window) || cfg.Window < 0:
		return RunStats{}, fmt.Errorf("psim: invalid window %v", cfg.Window)
	}
	for i, lp := range cfg.LPs {
		if lp == nil {
			return RunStats{}, fmt.Errorf("psim: LP %d is nil", i)
		}
	}
	until := cfg.Until
	//lopc:allow floateq the exact zero value is the "run to completion" sentinel; any positive until passes through
	if until == 0 {
		until = math.Inf(1)
	}
	k := &kernel{cfg: cfg, until: until}
	k.lps = make([]lpRun, n)
	for i := range k.lps {
		r := &k.lps[i]
		r.lp = cfg.LPs[i]
		r.ctx = Ctx{
			id:        int32(i),
			n:         int32(n),
			recOn:     cfg.Trace != nil,
			lookahead: cfg.Lookahead,
			rand:      *rng.New(rng.SeedAt(cfg.Seed, uint64(i))),
		}
	}

	// With one LP or no usable lookahead the parallel windows collapse
	// to a single safe event, so every core runs the sequential
	// algorithm — same commits, no rounds.
	if cfg.Sync == SyncSeq || n == 1 || cfg.Lookahead <= 0 {
		if cfg.Trace != nil {
			k.rec = []Record{}
		}
		k.runSeq()
	} else if cfg.Sync == SyncCons {
		k.runCons()
	} else {
		k.runOpt()
	}

	k.finish()
	return k.stats, nil
}

// deliver drains every LP's round outbox into the destination queues,
// in source LP index order — the ordered-merge step that keeps barrier
// delivery schedule-independent. (Queue order does not depend on
// insertion order — keys are unique — but doing it deterministically
// anyway makes the invariant local.)
func (k *kernel) deliver() {
	for i := range k.lps {
		c := &k.lps[i].ctx
		for _, ev := range c.out {
			k.lps[ev.Dst].ctx.q.push(ev)
		}
		c.out = c.out[:0]
	}
}

// boot runs every LP's Start at time zero and delivers boot sends.
func (k *kernel) boot() {
	for i := range k.lps {
		r := &k.lps[i]
		r.ctx.now = 0
		r.lp.Start(&r.ctx)
	}
	k.deliver()
}

// finish folds per-LP counters into RunStats, publishes metrics, and
// assembles the committed trace.
func (k *kernel) finish() {
	st := &k.stats
	st.PerLP = make([]uint64, len(k.lps))
	for i := range k.lps {
		c := &k.lps[i].ctx
		st.PerLP[i] = c.processed
		st.Events += c.processed
		if c.processed > 0 && c.now > st.MaxTime {
			st.MaxTime = c.now
		}
	}
	if t := k.cfg.Trace; t != nil {
		if k.rec != nil {
			t.recs = k.rec
		} else {
			total := 0
			for i := range k.lps {
				total += len(k.lps[i].ctx.rec)
			}
			t.recs = make([]Record, 0, total)
			for i := range k.lps {
				t.recs = append(t.recs, k.lps[i].ctx.rec...)
			}
		}
		// Canonicalize: the trace is the committed set sorted by the
		// global key. Raw commit order is NOT key order at tied
		// timestamps — a zero-delay self-send (e.g. a free reply
		// handler) is created by its generator and so commits after it,
		// even when its (Time, Dst, Src, Seq) key is smaller. Sorting
		// makes the serialization a pure function of the committed set,
		// which is what the byte-identity contract compares. Keys are
		// unique, so the order is total.
		sort.Slice(t.recs, func(a, b int) bool { return recordLess(&t.recs[a], &t.recs[b]) })
	}
	if m := k.cfg.Metrics; m != nil {
		m.Events.Add(int64(st.Events))
		m.Rounds.Add(int64(st.Rounds))
		m.Rollbacks.Add(int64(st.Rollbacks))
		m.RolledBack.Add(int64(st.RolledBack))
	}
}

// jobs resolves the effective worker count.
func (k *kernel) jobs() int {
	if k.cfg.Jobs > 0 {
		return k.cfg.Jobs
	}
	return 0 // runner interprets <= 0 as GOMAXPROCS
}

package psim

// evHeap is a binary min-heap of events ordered by the canonical global
// key. It stores events by value with hand-rolled sift operations —
// container/heap would box every event through its interface methods,
// and the queue is on the per-event hot path of every core.
type evHeap struct {
	a []Event
}

func (h *evHeap) len() int { return len(h.a) }

// head returns the minimum event, or nil when empty. The pointer is
// into the heap's backing array and is invalidated by the next
// push/pop.
func (h *evHeap) head() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return &h.a[0]
}

func (h *evHeap) push(ev Event) {
	//lopc:allow allochot the pending-event heap grows amortized-once to the model's steady-state population, then is reused
	h.a = append(h.a, ev)
	h.siftUp(len(h.a) - 1)
}

func (h *evHeap) pop() Event {
	a := h.a
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	h.a = a[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *evHeap) siftUp(i int) {
	a := h.a
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&a[i], &a[parent]) {
			return
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *evHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && eventLess(&a[right], &a[left]) {
			min = right
		}
		if !eventLess(&a[min], &a[i]) {
			return
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
}

// removePhantoms deletes every event sent by src with Seq >= minSeq —
// the optimistic core's direct cancellation of an LP's own rolled-back
// self-sends. (Cross-LP sends are cancelled by anti-messages instead;
// self-sends never leave the LP, so the rolled-back sender can simply
// drop them: restoring sendSeq guarantees re-execution reissues the
// same sequence numbers.) Filters in place and re-heapifies.
func (h *evHeap) removePhantoms(src int32, minSeq uint64) {
	a := h.a
	keep := a[:0]
	for i := range a {
		if a[i].Src == src && a[i].Seq >= minSeq {
			continue
		}
		keep = append(keep, a[i])
	}
	if len(keep) == len(a) {
		return
	}
	h.a = keep
	for i := len(keep)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// removeBySrcSeq deletes the event with the given (Src, Seq) identity,
// reporting whether it was present — the anti-message annihilation
// primitive of the optimistic core. Linear scan: pending queues are
// short relative to the committed stream, and annihilation is off the
// hot path.
func (h *evHeap) removeBySrcSeq(src int32, seq uint64) bool {
	a := h.a
	for i := range a {
		if a[i].Src == src && a[i].Seq == seq {
			last := len(a) - 1
			a[i] = a[last]
			h.a = a[:last]
			if i < last {
				h.siftDown(i)
				h.siftUp(i)
			}
			return true
		}
	}
	return false
}

package machine

import (
	"testing"

	"repro/internal/dist"
)

// TestSoakMillionsOfEvents is a long-run stability check: a 64-node
// machine processing several million events must complete, keep its
// statistics consistent, and never let the handler queue integrate
// negatively.
func TestSoakMillionsOfEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const p = 64
	m := New(Config{P: p, NetLatency: dist.NewExponential(30), Seed: 31})
	for i := 0; i < p; i++ {
		m.SetProgram(i, newPing(120, dist.NewExponential(90), 6000, func(m *Machine, self int) int {
			d := m.Rand(self).Intn(p - 1)
			if d >= self {
				d++
			}
			return d
		}))
	}
	m.Start()
	m.Run()
	if m.Halted() != p {
		t.Fatalf("halted %d of %d threads", m.Halted(), p)
	}
	if m.Engine().Processed() < 1_000_000 {
		t.Fatalf("processed only %d events", m.Engine().Processed())
	}
	s := m.Stats()
	if s.ReqQueue < 0 || s.RepQueue < 0 || s.UtilReq < 0 || s.UtilReq > 1 {
		t.Fatalf("inconsistent aggregate stats: %+v", s)
	}
	if s.ReqArrivals != int64(p*6000) {
		t.Fatalf("request arrivals %d, want %d", s.ReqArrivals, p*6000)
	}
}

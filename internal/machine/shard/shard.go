// Package shard maps the LoPC machine onto the parallel simulation
// core: one psim logical process per node, carrying the node's handler
// processor, its computation thread, and its steady-state measurements.
// The interconnect's guaranteed minimum latency (the paper's wire time
// St, dist.LowerBound of the latency distribution) becomes the psim
// lookahead, which is what lets the conservative and optimistic cores
// overlap nodes without breaking the event order.
//
// The sharded machine is a restricted sibling of machine.Machine, not a
// drop-in replacement: one thread per node, the blocking request/reply
// protocol built in (Request), service times referenced by index into a
// shared table so events stay flat values, and no Observer, link
// occupancy, or finite NI queues. Within that envelope it reproduces
// the same scheduling semantics — atomic handlers, preempt-resume
// thread priority, the optional protocol processor — and the same
// per-node measurements (machine.NodeStats), so workloads can switch
// between the single-threaded engine and the parallel cores and compare
// like with like.
package shard

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/psim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Event kinds of the sharded machine's psim traffic.
const (
	kReq         int32 = iota + 1 // cross-node request (I0 service, I1 reply service, F0 sent)
	kRep                          // cross-node reply (I0 service, F0 sent, F1-F3 request timestamps)
	kHandlerDone                  // self: the in-service handler completes
	kThreadDone                   // self: the current Compute finishes (U0 run token)
	kReset                        // self: restart steady-state measurements
)

type actionKind int

const (
	actionCompute actionKind = iota
	actionRequest
	actionHalt
)

type threadState int

const (
	threadIdle threadState = iota // no program assigned
	threadReady
	threadRunning
	threadBlocked
	threadHalted
)

func (s threadState) String() string {
	switch s {
	case threadIdle:
		return "idle"
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadBlocked:
		return "blocked"
	case threadHalted:
		return "halted"
	default:
		return fmt.Sprintf("threadState(%d)", int(s))
	}
}

// Action is one step of a sharded node's computation thread. Construct
// with Compute, Request, and Halt.
type Action struct {
	kind     actionKind
	duration float64
	dst      int
	svc      int32
	reply    int32
}

// Compute occupies the thread for d cycles of preemptible work.
func Compute(d float64) Action {
	if d < 0 {
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("shard: negative compute duration %v", d))
	}
	return Action{kind: actionCompute, duration: d}
}

// Request sends a blocking request to node dst: the request handler
// runs service svc there, its reply runs service reply back here, and
// the reply's completion unblocks the thread (the LoPC request/reply
// round trip). svc and reply index Config.Services.
func Request(dst int, svc, reply int) Action {
	return Action{kind: actionRequest, dst: dst, svc: int32(svc), reply: int32(reply)}
}

// Halt terminates the thread.
func Halt() Action { return Action{kind: actionHalt} }

// CycleInfo reports the timestamps of the thread's most recent
// completed request/reply round trip, for workload measurements.
type CycleInfo struct {
	ReqSent, ReqArrived, ReqDone float64
	RepSent, RepArrived, RepDone float64
}

// Program drives one node's computation thread. Next is called
// whenever the thread is ready for its next step: at start, after a
// Compute finishes, and after a request's reply unblocks it. Save and
// Restore snapshot the program's mutable state for the optimistic core
// (programs that never run optimistically may return nil and ignore).
type Program interface {
	Next(v *NodeView) Action
	Save() any
	Restore(snapshot any)
}

// NodeView is the program's window onto its node during Next.
type NodeView struct {
	n   *node
	ctx *psim.Ctx
}

// Now returns the node's current simulated time.
func (v *NodeView) Now() float64 { return v.ctx.Now() }

// Self returns the node index.
func (v *NodeView) Self() int { return v.ctx.Self() }

// N returns the number of nodes.
func (v *NodeView) N() int { return v.ctx.N() }

// Rand returns the node's private random stream.
func (v *NodeView) Rand() *rng.Stream { return v.ctx.Rand() }

// Cycle returns the timestamps of the most recent completed round trip.
func (v *NodeView) Cycle() CycleInfo { return v.n.st.cycle }

// ResetStats restarts this node's steady-state measurements at the
// current time — the per-node analogue of machine.Machine.ResetStats,
// which a program calls at its own warmup boundary.
func (v *NodeView) ResetStats() { v.n.resetStats(v.ctx.Now()) }

// hmsg is one handler-processor message in a node's NI queue.
type hmsg struct {
	kind    machine.Kind
	src     int32
	svc     int32 // service selector for this handler
	reply   int32 // requests: reply service selector (< 0: no reply)
	sent    float64
	arrived float64
	reqSent float64 // replies: the originating request's timestamps
	reqArr  float64
	reqDone float64
}

// nodeState is the mutable per-node simulator state. Everything is a
// value (the one slice is deep-copied by Save), so optimistic snapshots
// are a struct copy.
type nodeState struct {
	handlerQ  []hmsg
	current   hmsg
	inService bool

	tstate    threadState
	remaining float64
	startedAt float64
	runSeq    uint64
	cycle     CycleInfo

	reqPresent, repPresent   int
	reqQ, repQ               stats.TimeWeighted
	busyReq, busyRep         stats.TimeWeighted
	threadBusy               stats.TimeWeighted
	reqArrivals, repArrivals int64
	reqResp, repResp         stats.Tally
	maxDepth                 int
}

// snap is one optimistic checkpoint of a node.
type snap struct {
	st   nodeState
	prog any
}

// node is the psim.LP for one machine node.
type node struct {
	cfg  *Config
	prog Program // nil: the node only runs handlers
	st   nodeState
	view NodeView
}

// Config describes a sharded machine run.
type Config struct {
	// P is the number of nodes (one LP each).
	P int
	// Latency is the cross-node network latency; its guaranteed lower
	// bound (dist.LowerBound) is the parallel lookahead. The paper's
	// deterministic wire time St gives lookahead St.
	Latency dist.Distribution
	// Services is the table of handler service-time distributions that
	// Request actions reference by index.
	Services []dist.Distribution
	// Programs holds one thread program per node; nil entries are
	// handler-only nodes (the servers of the work-pile pattern).
	Programs []Program
	// ProtocolProcessor selects the shared-memory variant: handlers run
	// beside the thread instead of preempting it.
	ProtocolProcessor bool
	// Seed roots the per-node random substreams.
	Seed uint64
	// ResetStatsAt, when positive, restarts every node's steady-state
	// measurements at that time (the warmup boundary).
	ResetStatsAt float64
	// Until bounds the run; 0 means run to quiescence.
	Until float64

	// Sync, Jobs, and Window select and tune the synchronization core;
	// Trace, Metrics, and Spans are passed through to psim.
	Sync    psim.Sync
	Jobs    int
	Window  float64
	Trace   *psim.Trace
	Metrics *psim.Metrics
	Spans   *trace.Spans
}

// Result is the outcome of a sharded run.
type Result struct {
	// Nodes holds per-node measurements, integrated to the common end
	// time (Until, or the last committed event under quiescence).
	Nodes []machine.NodeStats
	// Run reports the synchronization core's statistics.
	Run psim.RunStats
}

// Aggregate folds the per-node measurements machine-wide, exactly as
// machine.Machine.Stats does: arithmetic means of per-node time
// averages, merged response tallies, summed arrival counts.
func (r *Result) Aggregate() machine.MachineStats {
	var agg machine.MachineStats
	for i := range r.Nodes {
		ns := &r.Nodes[i]
		agg.ReqQueue += ns.ReqQueue
		agg.RepQueue += ns.RepQueue
		agg.UtilReq += ns.UtilReq
		agg.UtilRep += ns.UtilRep
		agg.ThreadUtil += ns.ThreadUtil
		agg.ReqArrivals += ns.ReqArrivals
		agg.RepArrivals += ns.RepArrivals
		agg.ReqResponse.Merge(&ns.ReqResponse)
		agg.RepResponse.Merge(&ns.RepResponse)
		if ns.MaxQueueDepth > agg.MaxQueueDepth {
			agg.MaxQueueDepth = ns.MaxQueueDepth
		}
		agg.Elapsed = ns.Elapsed
	}
	p := float64(len(r.Nodes))
	agg.ReqQueue /= p
	agg.RepQueue /= p
	agg.UtilReq /= p
	agg.UtilRep /= p
	agg.ThreadUtil /= p
	return agg
}

// Run executes the sharded machine under the configured psim core and
// returns per-node measurements plus core statistics. For a fixed seed
// the committed event sequence — and therefore every measurement — is
// identical across cores and job counts.
func Run(cfg Config) (Result, error) {
	if cfg.P < 1 {
		return Result{}, fmt.Errorf("shard: P = %d, need at least one node", cfg.P)
	}
	if cfg.Latency == nil {
		return Result{}, fmt.Errorf("shard: Latency distribution is required")
	}
	if len(cfg.Programs) != 0 && len(cfg.Programs) != cfg.P {
		return Result{}, fmt.Errorf("shard: %d programs for %d nodes", len(cfg.Programs), cfg.P)
	}
	for i, s := range cfg.Services {
		if s == nil {
			return Result{}, fmt.Errorf("shard: service %d is nil", i)
		}
	}
	nodes := make([]*node, cfg.P)
	lps := make([]psim.LP, cfg.P)
	for i := range nodes {
		n := &node{cfg: &cfg}
		if len(cfg.Programs) != 0 {
			n.prog = cfg.Programs[i]
		}
		n.view.n = n
		nodes[i] = n
		lps[i] = n
	}
	rs, err := psim.Run(psim.Config{
		LPs:       lps,
		Lookahead: dist.LowerBound(cfg.Latency),
		Sync:      cfg.Sync,
		Jobs:      cfg.Jobs,
		Seed:      cfg.Seed,
		Until:     cfg.Until,
		Window:    cfg.Window,
		Trace:     cfg.Trace,
		Metrics:   cfg.Metrics,
		Spans:     cfg.Spans,
	})
	if err != nil {
		return Result{}, err
	}
	end := cfg.Until
	//lopc:allow floateq the exact zero value is the "run to completion" sentinel; any positive until passes through
	if end == 0 || math.IsInf(end, 1) {
		end = rs.MaxTime
	}
	res := Result{Nodes: make([]machine.NodeStats, cfg.P), Run: rs}
	for i, n := range nodes {
		res.Nodes[i] = n.snapshot(end)
	}
	return res, nil
}

// Start implements psim.LP: initialize measurements, arm the stats
// reset, and launch the thread.
func (n *node) Start(ctx *psim.Ctx) {
	n.view.ctx = ctx
	st := &n.st
	st.reqQ.Set(0, 0)
	st.repQ.Set(0, 0)
	st.busyReq.Set(0, 0)
	st.busyRep.Set(0, 0)
	st.threadBusy.Set(0, 0)
	if at := n.cfg.ResetStatsAt; at > 0 {
		ctx.Send(ctx.Self(), at, kReset, psim.Msg{})
	}
	if n.prog == nil {
		st.tstate = threadIdle
		return
	}
	st.tstate = threadReady
	n.dispatch(ctx)
}

// Handle implements psim.LP.
func (n *node) Handle(ctx *psim.Ctx, ev psim.Event) {
	n.view.ctx = ctx
	switch ev.Kind {
	case kReq:
		n.arrive(ctx, hmsg{
			kind:    machine.KindRequest,
			src:     ev.Src,
			svc:     ev.Msg.I0,
			reply:   ev.Msg.I1,
			sent:    ev.Msg.F0,
			arrived: ev.Time,
		})
	case kRep:
		n.arrive(ctx, hmsg{
			kind:    machine.KindReply,
			src:     ev.Src,
			svc:     ev.Msg.I0,
			reply:   -1,
			sent:    ev.Msg.F0,
			arrived: ev.Time,
			reqSent: ev.Msg.F1,
			reqArr:  ev.Msg.F2,
			reqDone: ev.Msg.F3,
		})
	case kHandlerDone:
		n.handlerDone(ctx)
	case kThreadDone:
		// The run token invalidates completions of preempted runs (psim
		// has no event cancellation; the resumed run carries a new token).
		if ev.Msg.U0 == n.st.runSeq && n.st.tstate == threadRunning {
			n.threadDone(ctx)
		}
	case kReset:
		n.resetStats(ev.Time)
	default:
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("shard: node %d received unknown event kind %d", ctx.Self(), ev.Kind))
	}
}

// Save implements psim.LP: a value copy of the node state (with the
// handler queue deep-copied) plus the program's snapshot.
func (n *node) Save() any {
	s := &snap{st: n.st}
	s.st.handlerQ = append([]hmsg(nil), n.st.handlerQ...)
	if n.prog != nil {
		s.prog = n.prog.Save()
	}
	return s
}

// Restore implements psim.LP.
func (n *node) Restore(snapshot any) {
	s := snapshot.(*snap)
	n.st = s.st
	n.st.handlerQ = append([]hmsg(nil), s.st.handlerQ...)
	if n.prog != nil {
		n.prog.Restore(s.prog)
	}
}

// arrive mirrors Machine.arrive for the unbounded-FIFO machine.
func (n *node) arrive(ctx *psim.Ctx, h hmsg) {
	st := &n.st
	now := h.arrived
	switch h.kind {
	case machine.KindRequest:
		st.reqArrivals++
		st.reqPresent++
		st.reqQ.Set(now, float64(st.reqPresent))
	case machine.KindReply:
		st.repArrivals++
		st.repPresent++
		st.repQ.Set(now, float64(st.repPresent))
	}
	//lopc:allow allochot the handler queue grows amortized-once to the node's steady-state depth, then is reused (dequeue reslices in place)
	st.handlerQ = append(st.handlerQ, h)
	if depth := st.reqPresent + st.repPresent; depth > st.maxDepth {
		st.maxDepth = depth
	}
	n.dispatch(ctx)
}

// dispatch mirrors Machine.dispatch for a single-thread node.
func (n *node) dispatch(ctx *psim.Ctx) {
	st := &n.st
	if n.cfg.ProtocolProcessor {
		if !st.inService && len(st.handlerQ) > 0 {
			n.startHandler(ctx)
		}
		if st.tstate == threadReady {
			n.giveThreadCPU(ctx)
		}
		return
	}
	if st.inService {
		return // the in-service handler is atomic
	}
	if len(st.handlerQ) > 0 {
		if st.tstate == threadRunning {
			n.preempt(ctx)
		}
		n.startHandler(ctx)
		return
	}
	if st.tstate == threadReady {
		n.giveThreadCPU(ctx)
	}
}

// startHandler begins service of the next queued message; completion
// is a self-event after the sampled service time.
func (n *node) startHandler(ctx *psim.Ctx) {
	st := &n.st
	st.current = st.handlerQ[0]
	copy(st.handlerQ, st.handlerQ[1:])
	st.handlerQ = st.handlerQ[:len(st.handlerQ)-1]
	st.inService = true
	now := ctx.Now()
	switch st.current.kind {
	case machine.KindRequest:
		st.busyReq.Set(now, 1)
	case machine.KindReply:
		st.busyRep.Set(now, 1)
	}
	svc := int(st.current.svc)
	if svc < 0 || svc >= len(n.cfg.Services) {
		//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
		panic(fmt.Sprintf("shard: node %d handler references unknown service %d", ctx.Self(), svc))
	}
	ctx.Send(ctx.Self(), n.cfg.Services[svc].Sample(ctx.Rand()), kHandlerDone, psim.Msg{})
}

// handlerDone mirrors Machine.handlerDone: measurements, then the
// handler's effects (reply to a request, unblock on a reply).
func (n *node) handlerDone(ctx *psim.Ctx) {
	st := &n.st
	now := ctx.Now()
	h := st.current
	st.inService = false
	switch h.kind {
	case machine.KindRequest:
		st.reqPresent--
		st.reqQ.Set(now, float64(st.reqPresent))
		st.busyReq.Set(now, 0)
		st.reqResp.Add(now - h.arrived)
		if h.reply >= 0 {
			ctx.Send(int(h.src), n.sampleLatency(ctx), kRep, psim.Msg{
				I0: h.reply,
				F0: now,
				F1: h.sent,
				F2: h.arrived,
				F3: now,
			})
		}
	case machine.KindReply:
		st.repPresent--
		st.repQ.Set(now, float64(st.repPresent))
		st.busyRep.Set(now, 0)
		st.repResp.Add(now - h.arrived)
		st.cycle = CycleInfo{
			ReqSent: h.reqSent, ReqArrived: h.reqArr, ReqDone: h.reqDone,
			RepSent: h.sent, RepArrived: h.arrived, RepDone: now,
		}
		if st.tstate != threadBlocked {
			//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
			panic(fmt.Sprintf("shard: node %d reply completed but thread is %v", ctx.Self(), st.tstate))
		}
		st.tstate = threadReady
	}
	n.dispatch(ctx)
}

// preempt mirrors Machine.preempt: bank the remaining work, invalidate
// the pending completion event, and mark the thread ready so it resumes
// once the handlers drain (single thread, so preempt-resume priority is
// just the ready state).
func (n *node) preempt(ctx *psim.Ctx) {
	st := &n.st
	now := ctx.Now()
	st.remaining -= now - st.startedAt
	if st.remaining < 0 {
		st.remaining = 0 // floating-point fuzz only
	}
	st.runSeq++
	st.tstate = threadReady
	st.threadBusy.Set(now, 0)
}

// giveThreadCPU resumes banked work or advances the program.
func (n *node) giveThreadCPU(ctx *psim.Ctx) {
	if n.st.remaining > 0 {
		n.startThreadRun(ctx)
		return
	}
	n.advanceThread(ctx)
}

// startThreadRun runs the thread for its remaining banked work.
func (n *node) startThreadRun(ctx *psim.Ctx) {
	st := &n.st
	now := ctx.Now()
	st.tstate = threadRunning
	st.startedAt = now
	st.threadBusy.Set(now, 1)
	ctx.Send(ctx.Self(), st.remaining, kThreadDone, psim.Msg{U0: st.runSeq})
}

// threadDone fires when a Compute finishes uninterrupted.
func (n *node) threadDone(ctx *psim.Ctx) {
	st := &n.st
	st.remaining = 0
	st.tstate = threadReady
	st.threadBusy.Set(ctx.Now(), 0)
	n.advanceThread(ctx)
}

// advanceThread executes the program's zero-duration actions until it
// starts a Compute, blocks on a request, or halts.
func (n *node) advanceThread(ctx *psim.Ctx) {
	st := &n.st
	const maxZeroCostActions = 1 << 20
	for i := 0; ; i++ {
		if i == maxZeroCostActions {
			//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
			panic(fmt.Sprintf("shard: node %d program issued %d actions without consuming time", ctx.Self(), i))
		}
		action := n.prog.Next(&n.view)
		switch action.kind {
		case actionCompute:
			//lopc:allow floateq exactly-zero compute is a no-op action; any positive duration schedules an event
			if action.duration == 0 {
				continue
			}
			st.remaining = action.duration
			n.startThreadRun(ctx)
			return
		case actionRequest:
			if action.reply < 0 || int(action.reply) >= len(n.cfg.Services) {
				//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
				panic(fmt.Sprintf("shard: node %d request references unknown reply service %d", ctx.Self(), action.reply))
			}
			ctx.Send(action.dst, n.sampleLatency(ctx), kReq, psim.Msg{
				I0: action.svc,
				I1: action.reply,
				F0: ctx.Now(),
			})
			st.tstate = threadBlocked
			n.dispatch(ctx)
			return
		case actionHalt:
			st.tstate = threadHalted
			n.dispatch(ctx)
			return
		default:
			//lopc:allow allochot panic message formatting runs only on the invariant-violation path, never in steady state
			panic(fmt.Sprintf("shard: unknown action kind %d", action.kind))
		}
	}
}

// sampleLatency draws one network trip from this node's stream. The
// sample can never undercut the declared lookahead (dist.LowerBound is
// a proven bound); psim's send check enforces it anyway.
func (n *node) sampleLatency(ctx *psim.Ctx) float64 {
	return n.cfg.Latency.Sample(ctx.Rand())
}

// resetStats mirrors Machine.ResetStats for one node.
func (n *node) resetStats(now float64) {
	st := &n.st
	st.reqQ.Reset(now, float64(st.reqPresent))
	st.repQ.Reset(now, float64(st.repPresent))
	st.busyReq.Reset(now, boolTo01(st.inService && st.current.kind == machine.KindRequest))
	st.busyRep.Reset(now, boolTo01(st.inService && st.current.kind == machine.KindReply))
	st.threadBusy.Reset(now, boolTo01(st.tstate == threadRunning))
	st.reqArrivals, st.repArrivals = 0, 0
	st.reqResp, st.repResp = stats.Tally{}, stats.Tally{}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// snapshot mirrors Machine.NodeStats, integrated to the common end
// time.
func (n *node) snapshot(end float64) machine.NodeStats {
	st := &n.st
	st.reqQ.Advance(end)
	st.repQ.Advance(end)
	st.busyReq.Advance(end)
	st.busyRep.Advance(end)
	st.threadBusy.Advance(end)
	return machine.NodeStats{
		ReqQueue:      st.reqQ.Mean(),
		RepQueue:      st.repQ.Mean(),
		UtilReq:       st.busyReq.Mean(),
		UtilRep:       st.busyRep.Mean(),
		ThreadUtil:    st.threadBusy.Mean(),
		ReqArrivals:   st.reqArrivals,
		RepArrivals:   st.repArrivals,
		ReqResponse:   st.reqResp,
		RepResponse:   st.repResp,
		MaxQueueDepth: st.maxDepth,
		Elapsed:       st.reqQ.Elapsed(),
	}
}

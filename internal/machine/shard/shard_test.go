package shard_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/machine/shard"
	"repro/internal/psim"
)

// twoPhaseProg alternates Compute and Request explicitly.
type twoPhaseProg struct {
	dst     int
	compute float64
	cycles  int

	phase  int // 0: compute next, 1: request next
	done   int
	rounds []shard.CycleInfo
}

func (p *twoPhaseProg) Next(v *shard.NodeView) shard.Action {
	if p.phase == 1 {
		p.phase = 0
		return shard.Request(p.dst, 0, 1)
	}
	if p.done > 0 || p.phase == 0 && p.done == 0 && v.Now() > 0 {
		// A reply just unblocked us (except at the very first call).
		p.rounds = append(p.rounds, v.Cycle())
	}
	if p.done >= p.cycles {
		return shard.Halt()
	}
	p.done++
	p.phase = 1
	return shard.Compute(p.compute)
}

func (p *twoPhaseProg) Save() any {
	s := *p
	s.rounds = append([]shard.CycleInfo(nil), p.rounds...)
	return &s
}

func (p *twoPhaseProg) Restore(snapshot any) {
	s := snapshot.(*twoPhaseProg)
	rounds := append([]shard.CycleInfo(nil), s.rounds...)
	*p = *s
	p.rounds = rounds
}

// TestPingPongTimings checks the request/reply round trip against
// hand-computed cycle times: compute 5, wire 10, request service 2,
// reply service 1 gives a 23-cycle period.
func TestPingPongTimings(t *testing.T) {
	prog := &twoPhaseProg{dst: 1, compute: 5, cycles: 2}
	res, err := shard.Run(shard.Config{
		P:        2,
		Latency:  dist.NewDeterministic(10),
		Services: []dist.Distribution{dist.NewDeterministic(2), dist.NewDeterministic(1)},
		Programs: []shard.Program{prog, nil},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []shard.CycleInfo{
		{ReqSent: 5, ReqArrived: 15, ReqDone: 17, RepSent: 17, RepArrived: 27, RepDone: 28},
		{ReqSent: 33, ReqArrived: 43, ReqDone: 45, RepSent: 45, RepArrived: 55, RepDone: 56},
	}
	if len(prog.rounds) != len(want) {
		t.Fatalf("recorded %d rounds, want %d: %+v", len(prog.rounds), len(want), prog.rounds)
	}
	for i, w := range want {
		if prog.rounds[i] != w {
			t.Errorf("round %d = %+v, want %+v", i, prog.rounds[i], w)
		}
	}
	if res.Run.MaxTime != 56 {
		t.Errorf("MaxTime = %v, want 56", res.Run.MaxTime)
	}
	server := res.Nodes[1]
	if server.ReqArrivals != 2 {
		t.Errorf("server ReqArrivals = %d, want 2", server.ReqArrivals)
	}
	if got := server.ReqResponse.Mean(); got != 2 {
		t.Errorf("server Rq mean = %v, want 2 (no queueing)", got)
	}
	client := res.Nodes[0]
	if client.RepArrivals != 2 {
		t.Errorf("client RepArrivals = %d, want 2", client.RepArrivals)
	}
	if got := client.ThreadUtil * client.Elapsed; math.Abs(got-10) > 1e-9 {
		t.Errorf("client busy cycles = %v, want 10", got)
	}
}

// TestPreemptResume checks the interrupt model: an arriving handler
// preempts the thread, which resumes with its remaining work banked —
// against the protocol-processor variant, where it does not.
func TestPreemptResume(t *testing.T) {
	run := func(pp bool) float64 {
		// Node 0 computes 100 cycles starting at t=0. Node 1 fires one
		// request at t=0 that arrives at t=10 and needs 2 cycles of
		// service. Interrupt mode: the thread finishes at 102.
		worker := &twoPhaseProg{dst: 1, compute: 100, cycles: 1}
		pinger := &twoPhaseProg{dst: 0, compute: 0, cycles: 1}
		_, err := shard.Run(shard.Config{
			P:                 2,
			Latency:           dist.NewDeterministic(10),
			Services:          []dist.Distribution{dist.NewDeterministic(2), dist.NewDeterministic(0)},
			Programs:          []shard.Program{worker, pinger},
			ProtocolProcessor: pp,
			Seed:              1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The worker's round trip: request sent at 100 (interrupt mode:
		// 10 run + 2 handler + 90 run = sent at 102).
		return worker.rounds[0].ReqSent
	}
	if got := run(false); got != 102 {
		t.Errorf("interrupt mode: worker's request sent at %v, want 102 (10 + 2 handler + 90)", got)
	}
	if got := run(true); got != 100 {
		t.Errorf("protocol-processor mode: worker's request sent at %v, want 100 (no preemption)", got)
	}
}

// TestShardDeterminism runs a random client/server mesh under every
// core and checks byte-identical traces and identical measurements.
func TestShardDeterminism(t *testing.T) {
	build := func() shard.Config {
		const p = 8
		progs := make([]shard.Program, p)
		for i := 0; i < p; i++ {
			if i%2 == 0 {
				progs[i] = &meshProg{cycles: 30}
			}
		}
		return shard.Config{
			P:       p,
			Latency: dist.NewDeterministic(5),
			Services: []dist.Distribution{
				dist.NewExponential(3),
				dist.NewDeterministic(0.5),
			},
			Programs:     progs,
			Seed:         99,
			ResetStatsAt: 50,
		}
	}
	run := func(sync psim.Sync, jobs int) ([]byte, shard.Result) {
		cfg := build()
		cfg.Sync = sync
		cfg.Jobs = jobs
		var tr psim.Trace
		cfg.Trace = &tr
		res, err := shard.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	wantTrace, wantRes := run(psim.SyncSeq, 1)
	if wantRes.Run.Events == 0 {
		t.Fatal("sequential run committed no events")
	}
	for _, tc := range []struct {
		name string
		sync psim.Sync
		jobs int
	}{
		{"cons/j1", psim.SyncCons, 1},
		{"cons/j8", psim.SyncCons, 8},
		{"opt/j1", psim.SyncOpt, 1},
		{"opt/j8", psim.SyncOpt, 8},
	} {
		gotTrace, gotRes := run(tc.sync, tc.jobs)
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("%s: trace differs from sequential (%d vs %d bytes)", tc.name, len(gotTrace), len(wantTrace))
			continue
		}
		for i := range wantRes.Nodes {
			if gotRes.Nodes[i] != wantRes.Nodes[i] {
				t.Errorf("%s: node %d stats differ:\n got %+v\nwant %+v", tc.name, i, gotRes.Nodes[i], wantRes.Nodes[i])
				break
			}
		}
		if a, b := gotRes.Aggregate(), wantRes.Aggregate(); a != b {
			t.Errorf("%s: aggregate stats differ:\n got %+v\nwant %+v", tc.name, a, b)
		}
	}
}

// meshProg computes a random amount and requests service from a random
// server (odd node), repeating for a fixed number of cycles.
type meshProg struct {
	cycles int
	done   int
	phase  int
}

func (p *meshProg) Next(v *shard.NodeView) shard.Action {
	if p.phase == 1 {
		p.phase = 0
		// Random odd destination other than self.
		servers := v.N() / 2
		dst := 2*v.Rand().Intn(servers) + 1
		return shard.Request(dst, 0, 1)
	}
	if p.done >= p.cycles {
		return shard.Halt()
	}
	p.done++
	p.phase = 1
	return shard.Compute(1 + 4*v.Rand().Float64())
}

func (p *meshProg) Save() any      { s := *p; return &s }
func (p *meshProg) Restore(sn any) { *p = *sn.(*meshProg) }

// TestConfigErrors exercises Run's validation.
func TestConfigErrors(t *testing.T) {
	lat := dist.NewDeterministic(1)
	cases := []struct {
		name string
		cfg  shard.Config
	}{
		{"no nodes", shard.Config{Latency: lat}},
		{"no latency", shard.Config{P: 2}},
		{"program count", shard.Config{P: 2, Latency: lat, Programs: []shard.Program{nil}}},
		{"nil service", shard.Config{P: 2, Latency: lat, Services: []dist.Distribution{nil}}},
	}
	for _, tc := range cases {
		if _, err := shard.Run(tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

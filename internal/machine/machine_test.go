package machine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
)

// pingProgram performs the canonical blocking request cycle of the LoPC
// model: compute W, send a request to a destination, block until the
// reply handler unblocks the thread. It records cycle completion times.
type pingProgram struct {
	w          float64
	service    dist.Distribution
	dest       func(m *Machine, self int) int
	cycles     int
	done       int
	inCycle    bool
	cycleTimes []float64 // completion timestamps
}

func (p *pingProgram) Next(m *Machine, self int) Action {
	if p.inCycle {
		// The blocking request completed (we were unblocked).
		p.inCycle = false
		p.done++
		p.cycleTimes = append(p.cycleTimes, m.Now())
		if p.done >= p.cycles {
			return Halt()
		}
	}
	if p.w > 0 {
		p.w = -p.w // negative marks "work already issued this cycle"
		return Compute(-p.w)
	}
	w := -p.w
	p.w = w
	p.inCycle = true
	dst := p.dest(m, self)
	req := &Message{
		Src: self, Dst: dst, Kind: KindRequest, Service: p.service,
		OnComplete: func(m *Machine, msg *Message) {
			rep := &Message{
				Src: msg.Dst, Dst: msg.Src, Kind: KindReply, Service: p.service,
				OnComplete: func(m *Machine, rmsg *Message) { m.Unblock(rmsg.Dst) },
			}
			m.Send(rep)
		},
	}
	return SendAndBlock(req)
}

// newPing builds a pingProgram issuing Compute(w) then a blocking
// request each cycle.
func newPing(w float64, service dist.Distribution, cycles int, dest func(m *Machine, self int) int) *pingProgram {
	return &pingProgram{w: w, service: service, dest: dest, cycles: cycles}
}

func TestContentionFreeCycleIsExact(t *testing.T) {
	// One client, one server, deterministic everything: each cycle must
	// take exactly W + 2St + 2So (Figure 4-2's contention-free timeline).
	const (
		w  = 1000.0
		st = 40.0
		so = 200.0
	)
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(st), Seed: 1})
	prog := newPing(w, dist.NewDeterministic(so), 5, func(*Machine, int) int { return 1 })
	m.SetProgram(0, prog)
	m.Start()
	m.Run()
	want := w + 2*st + 2*so
	if len(prog.cycleTimes) != 5 {
		t.Fatalf("completed %d cycles, want 5", len(prog.cycleTimes))
	}
	prev := 0.0
	for i, tc := range prog.cycleTimes {
		if got := tc - prev; math.Abs(got-want) > 1e-9 {
			t.Fatalf("cycle %d took %v, want exactly %v", i, got, want)
		}
		prev = tc
	}
}

func TestHaltedCountAndTermination(t *testing.T) {
	m := New(Config{P: 4, NetLatency: dist.NewDeterministic(10), Seed: 2})
	progs := make([]*pingProgram, 4)
	for i := 0; i < 4; i++ {
		progs[i] = newPing(50, dist.NewDeterministic(20), 3, func(m *Machine, self int) int {
			return (self + 1) % 4
		})
		m.SetProgram(i, progs[i])
	}
	m.Start()
	m.Run()
	if m.Halted() != 4 {
		t.Fatalf("halted = %d, want 4", m.Halted())
	}
	for i, p := range progs {
		if p.done != 3 {
			t.Fatalf("node %d completed %d cycles, want 3", i, p.done)
		}
	}
}

// collectMessages instruments a run and returns all request messages
// processed at each node, in completion order.
func runAllToAll(t *testing.T, p int, w, st, so float64, cycles int, seed uint64, pp bool) (*Machine, [][]*Message) {
	t.Helper()
	m := New(Config{P: p, NetLatency: dist.NewDeterministic(st), Seed: seed, ProtocolProcessor: pp})
	byNode := make([][]*Message, p)
	for i := 0; i < p; i++ {
		i := i
		prog := newPing(w, dist.NewDeterministic(so), cycles, func(m *Machine, self int) int {
			d := m.Rand(self).Intn(p - 1)
			if d >= self {
				d++
			}
			return d
		})
		m.SetProgram(i, recordingProgram{prog, &byNode})
	}
	m.Start()
	m.Run()
	return m, byNode
}

// recordingProgram wraps pingProgram, recording each request message at
// its destination node for atomicity/FIFO checks.
type recordingProgram struct {
	inner  *pingProgram
	byNode *[][]*Message
}

func (r recordingProgram) Next(m *Machine, self int) Action {
	a := r.inner.Next(m, self)
	if a.kind == actionSendBlock || a.kind == actionSendAsync {
		msg := a.msg
		prev := msg.OnComplete
		msg.OnComplete = func(m *Machine, msg *Message) {
			(*r.byNode)[msg.Dst] = append((*r.byNode)[msg.Dst], msg)
			if prev != nil {
				prev(m, msg)
			}
		}
	}
	return a
}

func TestHandlerAtomicityAndFIFO(t *testing.T) {
	_, byNode := runAllToAll(t, 8, 100, 20, 150, 50, 3, false)
	for nodeID, msgs := range byNode {
		if len(msgs) == 0 {
			t.Fatalf("node %d processed no requests", nodeID)
		}
		for i, msg := range msgs {
			if msg.ServiceStart < msg.Arrived {
				t.Fatalf("node %d msg %d started service before arrival", nodeID, i)
			}
			if msg.Done < msg.ServiceStart {
				t.Fatalf("node %d msg %d finished before starting", nodeID, i)
			}
			if i > 0 {
				prev := msgs[i-1]
				// Requests complete in order, and service intervals of
				// *all* handlers on a node never overlap. Replies are
				// interleaved on the same processor, so request i may
				// start after prev.Done plus some reply service; it must
				// never start before prev.Done.
				if msg.ServiceStart < prev.Done-1e-9 {
					t.Fatalf("node %d: request %d service [%v,%v] overlaps previous handler ending %v",
						nodeID, i, msg.ServiceStart, msg.Done, prev.Done)
				}
			}
		}
	}
}

func TestHandlerFIFOByArrival(t *testing.T) {
	_, byNode := runAllToAll(t, 8, 100, 20, 150, 50, 3, false)
	for nodeID, msgs := range byNode {
		for i := 1; i < len(msgs); i++ {
			if msgs[i].Arrived < msgs[i-1].Arrived-1e-9 {
				t.Fatalf("node %d: completion order violates FIFO arrival order", nodeID)
			}
		}
	}
}

func TestLittlesLawAndUtilizationLaw(t *testing.T) {
	// In steady state: Qq = λq·Rq per node and Uq = λq·So.
	const (
		p  = 16
		w  = 300.0
		st = 40.0
		so = 200.0
	)
	m := New(Config{P: p, NetLatency: dist.NewDeterministic(st), Seed: 7})
	for i := 0; i < p; i++ {
		prog := newPing(w, dist.NewExponential(so), 1<<30, func(m *Machine, self int) int {
			d := m.Rand(self).Intn(p - 1)
			if d >= self {
				d++
			}
			return d
		})
		m.SetProgram(i, prog)
	}
	m.Start()
	m.RunUntil(200_000) // warmup
	m.ResetStats()
	m.RunUntil(3_200_000)
	s := m.Stats()

	lambdaQ := float64(s.ReqArrivals) / float64(p) / s.Elapsed
	wantQ := lambdaQ * s.ReqResponse.Mean()
	if math.Abs(s.ReqQueue-wantQ) > 0.05*wantQ {
		t.Errorf("Little's law (requests): measured Q = %v, λR = %v", s.ReqQueue, wantQ)
	}
	wantU := lambdaQ * so
	if math.Abs(s.UtilReq-wantU) > 0.05*wantU {
		t.Errorf("utilization law: measured U = %v, λ·So = %v", s.UtilReq, wantU)
	}
	lambdaY := float64(s.RepArrivals) / float64(p) / s.Elapsed
	wantQy := lambdaY * s.RepResponse.Mean()
	if math.Abs(s.RepQueue-wantQy) > 0.05*math.Max(wantQy, 0.01) {
		t.Errorf("Little's law (replies): measured Q = %v, λR = %v", s.RepQueue, wantQy)
	}
}

func TestPreemptResumeConservesWork(t *testing.T) {
	// Under heavy interference, each thread's measured busy time must
	// equal the work it issued: preemption banks and restores exactly.
	const (
		p  = 8
		w  = 500.0
		st = 10.0
		so = 400.0
	)
	cycles := 40
	m := New(Config{P: p, NetLatency: dist.NewDeterministic(st), Seed: 11})
	for i := 0; i < p; i++ {
		m.SetProgram(i, newPing(w, dist.NewDeterministic(so), cycles, func(m *Machine, self int) int {
			d := m.Rand(self).Intn(p - 1)
			if d >= self {
				d++
			}
			return d
		}))
	}
	m.Start()
	m.Run()
	for i := 0; i < p; i++ {
		ns := m.NodeStats(i)
		busy := ns.ThreadUtil * ns.Elapsed
		want := w * float64(cycles)
		if math.Abs(busy-want) > 1e-6*want {
			t.Errorf("node %d thread busy time %v, want exactly %v", i, busy, want)
		}
	}
}

func TestProtocolProcessorNeverPreempts(t *testing.T) {
	// In shared-memory (PP) mode the thread runs its W cycles in
	// exactly W wall-clock time even under heavy handler traffic.
	const (
		p  = 8
		w  = 500.0
		st = 10.0
		so = 400.0
	)
	m := New(Config{P: p, NetLatency: dist.NewDeterministic(st), Seed: 13, ProtocolProcessor: true})
	progs := make([]*pingProgram, p)
	for i := 0; i < p; i++ {
		progs[i] = newPing(w, dist.NewDeterministic(so), 30, func(m *Machine, self int) int {
			d := m.Rand(self).Intn(p - 1)
			if d >= self {
				d++
			}
			return d
		})
		m.SetProgram(i, progs[i])
	}
	m.Start()
	m.Run()
	// With no preemption, every cycle is exactly W + 2St + Rq + Ry where
	// Rq, Ry >= So. So every cycle >= W+2St+2So, and thread busy time is
	// contiguous. Verify the stronger structural property: total busy
	// time equals issued work (as in the preempt test) *and* the busy
	// gauge never flipped more often than twice per cycle.
	for i := 0; i < p; i++ {
		ns := m.NodeStats(i)
		busy := ns.ThreadUtil * ns.Elapsed
		want := w * 30
		if math.Abs(busy-want) > 1e-6*want {
			t.Errorf("node %d thread busy time %v, want %v", i, busy, want)
		}
	}
	// And each cycle is at least the contention-free time.
	minCycle := w + 2*st + 2*so
	for i, prog := range progs {
		prev := 0.0
		for c, tc := range prog.cycleTimes {
			if tc-prev < minCycle-1e-9 {
				t.Errorf("node %d cycle %d took %v < contention-free %v", i, c, tc-prev, minCycle)
			}
			prev = tc
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m, _ := runAllToAll(t, 8, 200, 30, 100, 20, 42, false)
		return m.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave different end times: %v vs %v", a, b)
	}
}

func TestSeedChangesTrace(t *testing.T) {
	m1, _ := runAllToAll(t, 8, 200, 30, 100, 20, 1, false)
	m2, _ := runAllToAll(t, 8, 200, 30, 100, 20, 2, false)
	if m1.Now() == m2.Now() {
		t.Fatalf("different seeds gave identical end times %v (suspicious)", m1.Now())
	}
}

func TestSendAsyncDoesNotBlock(t *testing.T) {
	// A program that sends k async messages then halts: all messages are
	// eventually handled even though the thread never blocks.
	const k = 5
	handled := 0
	var prog ProgramFunc
	sent := 0
	prog = func(m *Machine, self int) Action {
		if sent == k {
			return Halt()
		}
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(10),
			OnComplete: func(*Machine, *Message) { handled++ },
		})
	}
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 3})
	m.SetProgram(0, prog)
	m.Start()
	m.Run()
	if handled != k {
		t.Fatalf("handled %d messages, want %d", handled, k)
	}
}

func TestAsyncSendsQueueFCFS(t *testing.T) {
	// Messages sent back-to-back over a deterministic network must be
	// served in order at the destination.
	var doneOrder []int
	sent := 0
	prog := ProgramFunc(func(m *Machine, self int) Action {
		if sent == 4 {
			return Halt()
		}
		id := sent
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(10),
			OnComplete: func(*Machine, *Message) { doneOrder = append(doneOrder, id) },
		})
	})
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 3})
	m.SetProgram(0, prog)
	m.Start()
	m.Run()
	for i, id := range doneOrder {
		if id != i {
			t.Fatalf("completion order %v, want FIFO", doneOrder)
		}
	}
}

func TestUnblockPanicsWhenNotBlocked(t *testing.T) {
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("Unblock of a non-blocked thread did not panic")
		}
	}()
	m.Unblock(0)
}

func TestInvalidConfigPanics(t *testing.T) {
	cases := []Config{
		{P: 0, NetLatency: dist.NewDeterministic(1)},
		{P: 2, NetLatency: nil},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSendToInvalidNodePanics(t *testing.T) {
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("send to node 9 did not panic")
		}
	}()
	m.Send(&Message{Src: 0, Dst: 9, Service: dist.NewDeterministic(1)})
}

func TestSetProgramAfterStartPanics(t *testing.T) {
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 3})
	m.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("SetProgram after Start did not panic")
		}
	}()
	m.SetProgram(0, ProgramFunc(func(*Machine, int) Action { return Halt() }))
}

func TestComputeRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compute(-1) did not panic")
		}
	}()
	Compute(-1)
}

func TestKindString(t *testing.T) {
	if KindRequest.String() != "request" || KindReply.String() != "reply" {
		t.Fatal("Kind.String outputs wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown Kind has empty String")
	}
}

func TestThreadStateString(t *testing.T) {
	states := []threadState{threadIdle, threadReady, threadRunning, threadBlocked, threadHalted, threadState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatalf("threadState(%d) has empty String", s)
		}
	}
}

func TestZeroComputeLoopGuard(t *testing.T) {
	m := New(Config{P: 1, NetLatency: dist.NewDeterministic(1), Seed: 1})
	m.SetProgram(0, ProgramFunc(func(*Machine, int) Action { return Compute(0) }))
	m.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("infinite zero-cost program did not panic")
		}
	}()
	m.Run()
}

func BenchmarkAllToAllSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(Config{P: 32, NetLatency: dist.NewDeterministic(40), Seed: uint64(i)})
		for n := 0; n < 32; n++ {
			m.SetProgram(n, newPing(200, dist.NewDeterministic(200), 100, func(m *Machine, self int) int {
				d := m.Rand(self).Intn(31)
				if d >= self {
					d++
				}
				return d
			}))
		}
		m.Start()
		m.Run()
	}
}

func TestBlockAction(t *testing.T) {
	// A thread can block without sending; a handler unblocks it.
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 1})
	var resumedAt float64
	step := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		switch step {
		case 0:
			step++
			return Block()
		default:
			resumedAt = m.Now()
			return Halt()
		}
	}))
	sent := false
	m.SetProgram(1, ProgramFunc(func(m *Machine, self int) Action {
		if sent {
			return Halt()
		}
		sent = true
		return SendAsync(&Message{
			Src: 1, Dst: 0, Kind: KindRequest, Service: dist.NewDeterministic(10),
			OnComplete: func(m *Machine, msg *Message) { m.Unblock(0) },
		})
	}))
	m.Start()
	m.Run()
	if resumedAt != 15 { // 5 latency + 10 handler
		t.Fatalf("blocked thread resumed at %v, want 15", resumedAt)
	}
}

func TestMaxQueueDepth(t *testing.T) {
	// Three simultaneous arrivals at an idle node: depth peaks at 3.
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 1})
	sent := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		if sent == 3 {
			return Halt()
		}
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(100),
		})
	}))
	m.Start()
	m.Run()
	if got := m.NodeStats(1).MaxQueueDepth; got != 3 {
		t.Fatalf("max queue depth = %d, want 3", got)
	}
	if got := m.Stats().MaxQueueDepth; got != 3 {
		t.Fatalf("machine max queue depth = %d, want 3", got)
	}
}

func TestMaxQueueDepthSurvivesReset(t *testing.T) {
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 1})
	sent := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		if sent == 2 {
			return Halt()
		}
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(50),
		})
	}))
	m.Start()
	m.Run()
	m.ResetStats()
	if got := m.NodeStats(1).MaxQueueDepth; got != 2 {
		t.Fatalf("max queue depth after reset = %d, want 2 (not reset)", got)
	}
}

func TestLinkOccupancySerializesPairTraffic(t *testing.T) {
	// Three back-to-back sends over the same link: arrivals are spaced
	// exactly LinkOccupancy apart, each after occupancy + latency.
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(40), LinkOccupancy: 30, Seed: 1})
	var arrivals []float64
	sent := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		if sent == 3 {
			return Halt()
		}
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(1),
			OnComplete: func(_ *Machine, msg *Message) { arrivals = append(arrivals, msg.Arrived) },
		})
	}))
	m.Start()
	m.Run()
	want := []float64{70, 100, 130} // 30+40, 60+40, 90+40
	for i, w := range want {
		if math.Abs(arrivals[i]-w) > 1e-9 {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestLinkOccupancyIndependentLinks(t *testing.T) {
	// Sends to different destinations do not serialize against each
	// other.
	m := New(Config{P: 3, NetLatency: dist.NewDeterministic(40), LinkOccupancy: 30, Seed: 1})
	var arrivals []float64
	sent := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		if sent == 2 {
			return Halt()
		}
		sent++
		dst := sent // 1 then 2
		return SendAsync(&Message{
			Src: 0, Dst: dst, Kind: KindRequest, Service: dist.NewDeterministic(1),
			OnComplete: func(_ *Machine, msg *Message) { arrivals = append(arrivals, msg.Arrived) },
		})
	}))
	m.Start()
	m.Run()
	for i, a := range arrivals {
		if math.Abs(a-70) > 1e-9 {
			t.Fatalf("arrival %d = %v, want 70 (no cross-link serialization)", i, a)
		}
	}
}

func TestFiniteNIQueueNacksAndRetries(t *testing.T) {
	// Capacity 1 with a burst of 3: the later messages bounce but all
	// are eventually served, and occupancy never exceeds the cap.
	m := New(Config{
		P: 2, NetLatency: dist.NewDeterministic(10),
		NIQueueCap: 1, RetryDelay: 25, Seed: 1,
	})
	served := 0
	sent := 0
	m.SetProgram(0, ProgramFunc(func(m *Machine, self int) Action {
		if sent == 3 {
			return Halt()
		}
		sent++
		return SendAsync(&Message{
			Src: 0, Dst: 1, Kind: KindRequest, Service: dist.NewDeterministic(100),
			OnComplete: func(*Machine, *Message) { served++ },
		})
	}))
	m.Start()
	m.Run()
	if served != 3 {
		t.Fatalf("served %d messages, want 3", served)
	}
	if m.Nacks() == 0 {
		t.Fatal("expected NACKs with capacity 1 and a burst of 3")
	}
	if got := m.NodeStats(1).MaxQueueDepth; got > 1 {
		t.Fatalf("queue depth %d exceeded capacity 1", got)
	}
}

func TestFiniteQueueLargeCapMatchesUnbounded(t *testing.T) {
	run := func(cap int) float64 {
		m := New(Config{P: 8, NetLatency: dist.NewDeterministic(20), NIQueueCap: cap, RetryDelay: 50, Seed: 5})
		for i := 0; i < 8; i++ {
			m.SetProgram(i, newPing(100, dist.NewDeterministic(150), 50, func(m *Machine, self int) int {
				d := m.Rand(self).Intn(7)
				if d >= self {
					d++
				}
				return d
			}))
		}
		m.Start()
		m.Run()
		if cap >= 64 && m.Nacks() != 0 {
			t.Fatalf("cap %d produced %d NACKs", cap, m.Nacks())
		}
		return m.Now()
	}
	if a, b := run(0), run(64); a != b {
		t.Fatalf("unbounded end %v != large-cap end %v", a, b)
	}
}

func TestZeroLinkOccupancyUnchanged(t *testing.T) {
	// The contention-free configuration must be bit-identical with the
	// ablation fields left at zero (regression guard).
	run := func(cfg Config) float64 {
		m := New(cfg)
		for i := 0; i < 8; i++ {
			m.SetProgram(i, newPing(100, dist.NewExponential(150), 30, func(m *Machine, self int) int {
				d := m.Rand(self).Intn(7)
				if d >= self {
					d++
				}
				return d
			}))
		}
		m.Start()
		m.Run()
		return m.Now()
	}
	base := Config{P: 8, NetLatency: dist.NewDeterministic(20), Seed: 9}
	explicit := base
	explicit.LinkOccupancy = 0
	explicit.NIQueueCap = 0
	if a, b := run(base), run(explicit); a != b {
		t.Fatalf("zero ablation fields changed the trace: %v vs %v", a, b)
	}
}

func TestPairLatencyOverridesNetLatency(t *testing.T) {
	// With a pair-latency function, each trip takes exactly the pair's
	// wire time; the contention-free cycle follows.
	m := New(Config{
		P:          2,
		NetLatency: dist.NewDeterministic(999), // must be ignored
		PairLatency: func(src, dst int) float64 {
			if src == 0 {
				return 15
			}
			return 25
		},
		Seed: 1,
	})
	prog := newPing(100, dist.NewDeterministic(50), 3, func(*Machine, int) int { return 1 })
	m.SetProgram(0, prog)
	m.Start()
	m.Run()
	// Cycle = W + lat(0->1) + So + lat(1->0) + So = 100+15+50+25+50 = 240.
	prev := 0.0
	for i, tc := range prog.cycleTimes {
		if got := tc - prev; math.Abs(got-240) > 1e-9 {
			t.Fatalf("cycle %d took %v, want exactly 240", i, got)
		}
		prev = tc
	}
}

func TestPairLatencyNegativePanics(t *testing.T) {
	m := New(Config{
		P:           2,
		NetLatency:  dist.NewDeterministic(1),
		PairLatency: func(int, int) float64 { return -1 },
		Seed:        1,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("negative pair latency did not panic")
		}
	}()
	m.Send(&Message{Src: 0, Dst: 1, Service: dist.NewDeterministic(1)})
}

func TestMultipleThreadsRunUntilBlock(t *testing.T) {
	// Thread scheduling is switch-on-miss (Sparcle-style): a thread
	// keeps the CPU across consecutive Computes and yields only when it
	// blocks or halts. Thread a runs both its computes to completion
	// before b starts.
	m := New(Config{P: 1, NetLatency: dist.NewDeterministic(1), Seed: 1})
	var trace []string
	mk := func(name string, d float64, reps int) Program {
		n := 0
		return ProgramFunc(func(m *Machine, self int) Action {
			if n > 0 {
				trace = append(trace, fmt.Sprintf("%s@%v", name, m.Now()))
			}
			if n == reps {
				return Halt()
			}
			n++
			return Compute(d)
		})
	}
	m.AddThread(0, mk("a", 100, 2))
	m.AddThread(0, mk("b", 50, 2))
	m.Start()
	m.Run()
	want := []string{"a@100", "a@200", "b@250", "b@300"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestMultithreadLatencyHiding(t *testing.T) {
	// Two threads pinging a remote server overlap their round trips:
	// the node completes cycles at nearly twice the single-thread rate
	// when the CPU is mostly idle waiting.
	run := func(threads int) (cycles int, elapsed float64) {
		m := New(Config{P: 2, NetLatency: dist.NewDeterministic(200), Seed: 1})
		for j := 0; j < threads; j++ {
			prog := &mtPing{w: 50, service: dist.NewDeterministic(30), cycles: 40}
			prog.tid = m.AddThread(0, prog)
		}
		m.Start()
		m.Run()
		if m.Halted() != threads {
			t.Fatalf("halted %d of %d threads", m.Halted(), threads)
		}
		return threads * 40, m.Now()
	}
	c1, e1 := run(1)
	c2, e2 := run(2)
	r1 := float64(c1) / e1
	r2 := float64(c2) / e2
	if r2 < 1.7*r1 {
		t.Fatalf("two threads rate %v not ~2x single rate %v", r2, r1)
	}
}

func TestUnblockAmbiguousPanics(t *testing.T) {
	// Two blocked threads: the single-thread Unblock API must refuse.
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(5), Seed: 1})
	for j := 0; j < 2; j++ {
		m.AddThread(0, ProgramFunc(func(m *Machine, self int) Action {
			return Block()
		}))
	}
	fired := false
	m.AddThread(1, ProgramFunc(func(m *Machine, self int) Action {
		if fired {
			return Halt()
		}
		fired = true
		return SendAsync(&Message{
			Src: 1, Dst: 0, Kind: KindRequest, Service: dist.NewDeterministic(10),
			OnComplete: func(m *Machine, msg *Message) {
				defer func() {
					if recover() == nil {
						t.Error("ambiguous Unblock did not panic")
					}
					m.UnblockThread(0, 0) // resolve properly
					m.UnblockThread(0, 1)
				}()
				m.Unblock(0)
			},
		})
	}))
	// The unblocked threads will Block again and the run ends with them
	// parked; that's fine for this test.
	m.Start()
	m.RunUntil(1000)
}

func TestPreemptedThreadResumesFirst(t *testing.T) {
	// A preempted thread must regain the CPU before other ready threads
	// (preempt-resume), even when a sibling was already queued.
	m := New(Config{P: 2, NetLatency: dist.NewDeterministic(10), Seed: 1})
	var order []string
	stepA, stepB := 0, 0
	m.AddThread(0, ProgramFunc(func(m *Machine, self int) Action { // thread a
		stepA++
		if stepA == 1 {
			return Compute(100) // will be preempted at t=60
		}
		order = append(order, fmt.Sprintf("a@%v", m.Now()))
		return Halt()
	}))
	m.AddThread(0, ProgramFunc(func(m *Machine, self int) Action { // thread b
		stepB++
		if stepB == 1 {
			return Compute(1) // runs [100?]... queued behind a
		}
		order = append(order, fmt.Sprintf("b@%v", m.Now()))
		return Halt()
	}))
	// Node 1 sends a message that lands at t=60, preempting thread a
	// (which has 40 cycles left). After the 30-cycle handler, a resumes
	// (finishing at 130), then b runs.
	sent := false
	m.AddThread(1, ProgramFunc(func(m *Machine, self int) Action {
		if sent {
			return Halt()
		}
		sent = true
		return SendAsync(&Message{
			Src: 1, Dst: 0, Kind: KindRequest, Service: dist.NewDeterministic(30),
		})
	}))
	// Wait: node 1's send leaves at t=0 sampling latency... latency 10;
	// to land at 60 we need compute first. Use Compute then send.
	m.Start()
	m.Run()
	// Arrival at t=10, handler [10,40]; a preempted with 90 left,
	// resumes [40,130]; then b [130,131].
	want := []string{"a@130", "b@131"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// mtPing is a thread-aware ping program: like pingProgram but it
// unblocks its own thread via UnblockThread, as multithreaded nodes
// require.
type mtPing struct {
	w       float64
	service dist.Distribution
	cycles  int
	tid     int
	done    int
	inCycle bool
}

func (p *mtPing) Next(m *Machine, self int) Action {
	if p.inCycle {
		p.inCycle = false
		p.done++
		if p.done >= p.cycles {
			return Halt()
		}
	}
	if p.w > 0 {
		p.w = -p.w
		return Compute(-p.w)
	}
	p.w = -p.w
	p.inCycle = true
	tid := p.tid
	return SendAndBlock(&Message{
		Src: self, Dst: 1, Kind: KindRequest, Service: p.service,
		OnComplete: func(m *Machine, msg *Message) {
			m.Send(&Message{
				Src: msg.Dst, Dst: msg.Src, Kind: KindReply, Service: p.service,
				OnComplete: func(m *Machine, r *Message) { m.UnblockThread(r.Dst, tid) },
			})
		},
	})
}

// Package machine simulates the class of parallel machines the LoPC
// paper models (Ch. 2): P processing nodes on a contention-free
// high-speed interconnect, communicating with Active Messages.
//
// Each node runs one computation thread (or several, via AddThread, for
// the latency-tolerance extension). An arriving message interrupts the
// running thread and runs its handler atomically to completion; messages
// that arrive while a handler is running wait in an unbounded hardware
// FIFO, and when a handler finishes the processor is interrupted again
// for each queued message before the thread resumes (preempt-resume
// priority). The machine can instead be configured with a protocol
// processor per node (the paper's shared-memory variant), in which case
// handlers run on the protocol processor and never interfere with the
// computation thread.
//
// The simulator is the stand-in for the paper's validation substrate:
// the authors report their event-driven simulator, built on exactly
// these assumptions, matches the MIT Alewife hardware within about 1%
// for every communication pattern studied.
package machine

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind distinguishes request handlers from reply handlers. The LoPC
// equations treat the two classes separately (queue lengths Qq and Qy,
// utilizations Uq and Uy), so the machine tracks them separately too.
type Kind int

const (
	// KindRequest marks messages that run request handlers (Hq).
	KindRequest Kind = iota
	// KindReply marks messages that run reply handlers (Hy).
	KindReply
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindReply:
		return "reply"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is one active message. The Service distribution is sampled on
// the destination node when the handler begins service; OnComplete runs
// at the instant the handler finishes and performs the handler's
// effects (sending a reply, unblocking the local thread, forwarding a
// multi-hop request). The machine fills in the four timestamps, from
// which workloads compute the response-time components of the model
// (Rq = Done−Arrived for requests, Ry likewise for replies).
type Message struct {
	Src, Dst int
	Kind     Kind
	Service  dist.Distribution
	// OnComplete runs on handler completion. It may call Machine.Send
	// and Machine.Unblock. A nil OnComplete is allowed.
	OnComplete func(m *Machine, msg *Message)
	// UserData carries workload-specific context through the handler.
	UserData any

	// ID is a unique message number assigned at Send, for tracing.
	ID uint64
	// Retries counts NACKs this message suffered (finite NIQueueCap
	// only).
	Retries int

	// Timestamps, filled in by the machine (simulated cycles).
	Sent         sim.Time // injection into the network
	Arrived      sim.Time // arrival at the destination NI queue
	ServiceStart sim.Time // handler begins execution
	Done         sim.Time // handler completes
}

// Action is one step of a computation thread, returned by Program.Next.
// Construct actions with Compute, SendAndBlock, SendAsync, and Halt.
type Action struct {
	kind     actionKind
	duration float64
	msg      *Message
}

type actionKind int

const (
	actionCompute actionKind = iota
	actionSendBlock
	actionSendAsync
	actionBlock
	actionHalt
)

// Compute returns an action that occupies the thread's processor for d
// cycles of local work. The work is preemptible: message arrivals
// interrupt it and it resumes where it left off.
func Compute(d float64) Action {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative compute duration %v", d))
	}
	return Action{kind: actionCompute, duration: d}
}

// SendAndBlock returns an action that injects msg and blocks the thread
// until some handler calls Machine.Unblock on this node — the blocking
// request of the LoPC model.
func SendAndBlock(msg *Message) Action { return Action{kind: actionSendBlock, msg: msg} }

// SendAsync returns an action that injects msg and immediately proceeds
// to the next action (a non-blocking send, used by the model's
// future-work extension for non-blocking requests).
func SendAsync(msg *Message) Action { return Action{kind: actionSendAsync, msg: msg} }

// Block returns an action that parks the thread until some handler
// calls Machine.Unblock on this node, without sending anything.
// Collective operations use it to wait for incoming messages.
func Block() Action { return Action{kind: actionBlock} }

// Halt returns an action that terminates the thread.
func Halt() Action { return Action{kind: actionHalt} }

// Program drives a node's computation thread. Next is called whenever
// the thread is ready to take its next step: at machine start, after a
// Compute finishes, after a SendAsync, and after the thread is
// unblocked following a SendAndBlock (and has regained the processor).
type Program interface {
	Next(m *Machine, node int) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(m *Machine, node int) Action

// Next implements Program.
func (f ProgramFunc) Next(m *Machine, node int) Action { return f(m, node) }

// Config describes the simulated machine in the paper's architectural
// parameters.
type Config struct {
	// P is the number of processing nodes.
	P int
	// NetLatency is the per-trip wire time St. The interconnect is
	// contention-free: trips never interact. Typically deterministic.
	NetLatency dist.Distribution
	// ProtocolProcessor selects the shared-memory variant: handlers run
	// on a dedicated protocol processor and never preempt the thread.
	ProtocolProcessor bool
	// Seed roots all random streams (one per node plus one for the
	// network). The same seed reproduces the identical event trace.
	Seed uint64
	// Observer, when non-nil, receives structural events (handler
	// service intervals, thread execution slices, message sends and
	// arrivals) — used by internal/trace for Chrome-trace export. It
	// must not mutate machine state.
	Observer Observer

	// The two remaining fields relax the paper's Ch. 2 simplifications
	// for ablation studies; zero values reproduce the paper's machine.

	// LinkOccupancy serializes the interconnect: each message occupies
	// its ordered (src, dst) link for this many cycles before its
	// propagation latency. 0 models the paper's contention-free
	// network, where trips never interact.
	LinkOccupancy float64
	// NIQueueCap bounds each node's handler FIFO (queued plus in
	// service). 0 means unbounded — the paper's assumption. A message
	// arriving at a full queue is NACKed back to the sender and retried
	// after RetryDelay plus a fresh network trip (Alewife-style).
	NIQueueCap int
	// RetryDelay is the sender-side backoff before a NACKed message is
	// retried. Only meaningful with NIQueueCap > 0.
	RetryDelay float64
	// PairLatency, when non-nil, gives each ordered (src, dst) pair its
	// own deterministic wire time, replacing NetLatency's sample — for
	// topology studies (e.g. hop-count latencies on a mesh) probing the
	// model's "St is the average wire time" abstraction. NetLatency is
	// still required (its mean documents the machine; retries also use
	// it for the NACK trip).
	PairLatency func(src, dst int) float64
}

// Observer receives the machine's structural events. All times are
// simulated cycles. Implementations must be passive.
type Observer interface {
	// MessageSent fires when a message is injected into the network.
	MessageSent(msg *Message, t float64)
	// MessageArrived fires when a message reaches its destination's NI
	// queue.
	MessageArrived(msg *Message, t float64)
	// HandlerStart and HandlerEnd bracket one handler's service.
	HandlerStart(node int, msg *Message, t float64)
	HandlerEnd(node int, msg *Message, t float64)
	// ThreadRun reports one uninterrupted slice of computation-thread
	// execution (ended by completion or preemption).
	ThreadRun(node int, start, end float64)
}

type threadState int

const (
	threadIdle threadState = iota // no program assigned
	threadReady
	threadRunning
	threadBlocked
	threadHalted
)

// thread is one computation context on a node. The paper's machine has
// exactly one per node; AddThread relaxes that for the multithreading
// (latency-tolerance) extension.
type thread struct {
	id        int
	program   Program
	tstate    threadState
	remaining float64 // remaining cycles of the current Compute
	startedAt sim.Time
	event     *sim.Event
}

// node is the per-node simulator state.
type node struct {
	id   int
	rand *rng.Stream

	// Handler processor state. In interrupt mode this is the CPU in
	// handler context; in protocol-processor mode it is the separate
	// protocol processor. current is the in-service handler; handlerQ
	// holds waiting messages in FIFO order.
	handlerQ []*Message
	current  *Message

	// Computation threads. running is the tid of the thread holding
	// the CPU (-1 when none); ready is the FIFO of runnable tids, with
	// a preempted thread re-queued at the front (preempt-resume).
	threads []*thread
	running int
	ready   []int

	// Instrumentation. Present counts include the in-service handler.
	reqPresent, repPresent   int
	reqQ, repQ               stats.TimeWeighted
	busyReq, busyRep         stats.TimeWeighted
	threadBusy               stats.TimeWeighted
	reqArrivals, repArrivals int64
	reqResp, repResp         stats.Tally
	// maxDepth is the largest number of handlers ever present at once
	// (queued + in service), for checking the paper's unbounded-FIFO
	// assumption against real NI queue capacities.
	maxDepth int
}

// NodeStats is a snapshot of one node's steady-state measurements:
// the time-averaged queue lengths and utilizations the model's Little's
// law equations predict, plus per-class handler response-time tallies.
type NodeStats struct {
	// ReqQueue and RepQueue are time-averaged numbers of request/reply
	// handlers present (queued + in service) — the model's Qq and Qy.
	ReqQueue, RepQueue float64
	// UtilReq and UtilRep are the fractions of time a request/reply
	// handler was in service — the model's Uq and Uy.
	UtilReq, UtilRep float64
	// ThreadUtil is the fraction of time the computation thread was
	// executing.
	ThreadUtil float64
	// ReqArrivals and RepArrivals count handler arrivals since the last
	// stats reset.
	ReqArrivals, RepArrivals int64
	// ReqResponse and RepResponse tally handler response times
	// (arrival to completion) — the model's Rq and Ry.
	ReqResponse, RepResponse stats.Tally
	// MaxQueueDepth is the deepest the node's handler queue ever got
	// (including the handler in service), since machine start — it is
	// deliberately not reset with the other statistics, because it
	// checks the unbounded-FIFO assumption over the whole run.
	MaxQueueDepth int
	// Elapsed is the measurement window length.
	Elapsed float64
}

// Machine is the simulated multiprocessor.
type Machine struct {
	cfg       Config
	eng       *sim.Engine
	nodes     []*node
	netStream *rng.Stream
	started   bool
	halted    int
	msgSeq    uint64
	// linkFree[src*P+dst] is when that ordered link next becomes free
	// (LinkOccupancy > 0 only; allocated lazily).
	linkFree []float64
	nacks    int64
}

// New constructs a machine. It panics on an invalid configuration; a
// simulation with a malformed machine has no meaningful output.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic(fmt.Sprintf("machine: P = %d, need at least one node", cfg.P))
	}
	if cfg.NetLatency == nil {
		panic("machine: NetLatency distribution is required")
	}
	src := rng.NewSource(cfg.Seed)
	m := &Machine{
		cfg:       cfg,
		eng:       sim.NewEngine(),
		netStream: src.Stream(),
	}
	m.nodes = make([]*node, cfg.P)
	for i := range m.nodes {
		m.nodes[i] = &node{id: i, rand: src.Stream(), running: -1}
	}
	return m
}

// P returns the number of nodes.
func (m *Machine) P() int { return m.cfg.P }

// Now returns the current simulated time in cycles.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// Engine exposes the event engine for workloads that need to schedule
// auxiliary events (e.g. measurement epochs).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Rand returns the random stream of the given node, for workload
// decisions (e.g. choosing a destination) that must be reproducible
// per-node.
func (m *Machine) Rand(nodeID int) *rng.Stream { return m.nodes[nodeID].rand }

// SetProgram installs the computation-thread program for a node — the
// paper's one-thread-per-node configuration. It must be called before
// Start, at most once per node (use AddThread for the multithreaded
// extension). Nodes without a program idle (the servers of the
// work-pile pattern have no program; they only run handlers).
func (m *Machine) SetProgram(nodeID int, p Program) {
	if len(m.nodes[nodeID].threads) > 0 {
		panic("machine: SetProgram on a node that already has a thread")
	}
	m.AddThread(nodeID, p)
}

// AddThread adds a computation thread running p to the node and returns
// its thread id — the multithreading (latency-tolerance) extension of
// the paper's machine. Scheduling is switch-on-miss, as on Alewife's
// Sparcle processor: a thread keeps the CPU across consecutive actions
// and yields only when it blocks or halts; handlers preempt whichever
// thread is running, and a preempted thread resumes before other ready
// threads. Blocking replies must wake the right context with
// UnblockThread. It must be called before Start.
func (m *Machine) AddThread(nodeID int, p Program) int {
	if m.started {
		panic("machine: AddThread after Start")
	}
	n := m.nodes[nodeID]
	t := &thread{id: len(n.threads), program: p, tstate: threadReady}
	n.threads = append(n.threads, t)
	return t.id
}

// Start begins execution: every node with a program has its thread
// dispatched at time zero.
func (m *Machine) Start() {
	if m.started {
		panic("machine: Start called twice")
	}
	m.started = true
	now := m.eng.Now()
	for _, n := range m.nodes {
		n.reqQ.Set(now, 0)
		n.repQ.Set(now, 0)
		n.busyReq.Set(now, 0)
		n.busyRep.Set(now, 0)
		n.threadBusy.Set(now, 0)
	}
	for _, n := range m.nodes {
		for _, t := range n.threads {
			n.ready = append(n.ready, t.id)
		}
		if len(n.threads) > 0 {
			n := n
			m.eng.Schedule(0, func() { m.dispatch(n) })
		}
	}
}

// Send injects a message into the interconnect. The caller must have
// set Src, Dst, Kind, and Service. Arrival is scheduled after one
// sampled network trip; the interconnect is contention-free so trips
// are independent.
func (m *Machine) Send(msg *Message) {
	if msg.Dst < 0 || msg.Dst >= m.cfg.P {
		panic(fmt.Sprintf("machine: send to invalid node %d", msg.Dst))
	}
	if msg.Service == nil {
		panic("machine: message without a service distribution")
	}
	m.msgSeq++
	msg.ID = m.msgSeq
	msg.Sent = m.eng.Now()
	if m.cfg.Observer != nil {
		m.cfg.Observer.MessageSent(msg, msg.Sent)
	}
	m.inject(msg)
}

// inject puts a message on the wire: one link-serialization wait (if
// configured) plus one propagation latency. Retries re-enter here.
func (m *Machine) inject(msg *Message) {
	var delay float64
	if m.cfg.PairLatency != nil {
		delay = m.cfg.PairLatency(msg.Src, msg.Dst)
		if delay < 0 {
			panic(fmt.Sprintf("machine: negative pair latency %v for %d->%d", delay, msg.Src, msg.Dst))
		}
	} else {
		delay = m.cfg.NetLatency.Sample(m.netStream)
	}
	if m.cfg.LinkOccupancy > 0 {
		if m.linkFree == nil {
			m.linkFree = make([]float64, m.cfg.P*m.cfg.P)
		}
		now := m.eng.Now()
		key := msg.Src*m.cfg.P + msg.Dst
		start := now
		if m.linkFree[key] > start {
			start = m.linkFree[key]
		}
		m.linkFree[key] = start + m.cfg.LinkOccupancy
		delay += (start - now) + m.cfg.LinkOccupancy
	}
	m.eng.Schedule(delay, func() { m.arrive(msg) })
}

// Unblock marks the node's thread ready after a blocking request
// completes. It is called by reply-handler OnComplete functions. The
// thread regains the processor only once no handlers are queued or in
// service (interrupt mode), per the preempt-resume discipline.
func (m *Machine) Unblock(nodeID int) {
	n := m.nodes[nodeID]
	blocked := -1
	for _, t := range n.threads {
		if t.tstate == threadBlocked {
			if blocked >= 0 {
				panic(fmt.Sprintf("machine: Unblock(%d) is ambiguous with several blocked threads; use UnblockThread", nodeID))
			}
			blocked = t.id
		}
	}
	if blocked < 0 {
		panic(fmt.Sprintf("machine: Unblock(%d) but no thread is blocked", nodeID))
	}
	m.UnblockThread(nodeID, blocked)
}

// UnblockThread marks a specific thread of a node ready after a
// blocking request completes — the multithreaded counterpart of
// Unblock. The thread regains the processor once no handlers are
// queued or in service (interrupt mode) and the threads ahead of it in
// the ready queue have run or blocked.
func (m *Machine) UnblockThread(nodeID, tid int) {
	n := m.nodes[nodeID]
	t := n.threads[tid]
	if t.tstate != threadBlocked {
		panic(fmt.Sprintf("machine: UnblockThread(%d, %d) but thread is %v", nodeID, tid, t.tstate))
	}
	t.tstate = threadReady
	n.ready = append(n.ready, tid)
	m.dispatch(n)
}

// Halted returns the number of threads that have executed Halt.
func (m *Machine) Halted() int { return m.halted }

// Nacks returns the total number of messages bounced off full NI queues
// (finite NIQueueCap only).
func (m *Machine) Nacks() int64 { return m.nacks }

// RunUntil advances the simulation to time t.
func (m *Machine) RunUntil(t sim.Time) { m.eng.RunUntil(t) }

// RunWhile advances the simulation while cond holds and events remain.
func (m *Machine) RunWhile(cond func() bool) { m.eng.RunWhile(cond) }

// Run advances the simulation until no events remain (all threads
// halted and all handlers drained).
func (m *Machine) Run() { m.eng.Run() }

// arrive delivers a message to its destination's NI queue, NACKing it
// back to the sender when a finite queue is full.
func (m *Machine) arrive(msg *Message) {
	n := m.nodes[msg.Dst]
	now := m.eng.Now()
	if cap := m.cfg.NIQueueCap; cap > 0 && n.reqPresent+n.repPresent >= cap {
		msg.Retries++
		m.nacks++
		// The NACK travels back to the sender (one trip), which backs
		// off and re-injects.
		back := m.cfg.NetLatency.Sample(m.netStream) + m.cfg.RetryDelay
		m.eng.Schedule(back, func() { m.inject(msg) })
		return
	}
	msg.Arrived = now
	switch msg.Kind {
	case KindRequest:
		n.reqArrivals++
		n.reqPresent++
		n.reqQ.Set(now, float64(n.reqPresent))
	case KindReply:
		n.repArrivals++
		n.repPresent++
		n.repQ.Set(now, float64(n.repPresent))
	}
	n.handlerQ = append(n.handlerQ, msg)
	if depth := n.reqPresent + n.repPresent; depth > n.maxDepth {
		n.maxDepth = depth
	}
	if m.cfg.Observer != nil {
		m.cfg.Observer.MessageArrived(msg, now)
	}
	m.dispatch(n)
}

// dispatch gives the node's processor(s) to whatever should run next.
// It is idempotent: callers invoke it after any state change.
func (m *Machine) dispatch(n *node) {
	if m.cfg.ProtocolProcessor {
		// Shared-memory variant: handlers on the protocol processor,
		// threads on the CPU, independently.
		if n.current == nil && len(n.handlerQ) > 0 {
			m.startHandler(n)
		}
		if n.running < 0 && len(n.ready) > 0 {
			m.giveThreadCPU(n)
		}
		return
	}
	// Interrupt model: handlers have priority and share the CPU with
	// the threads.
	if n.current != nil {
		return // a handler is in service and is atomic
	}
	if len(n.handlerQ) > 0 {
		if n.running >= 0 {
			m.preempt(n)
		}
		m.startHandler(n)
		return
	}
	if n.running < 0 && len(n.ready) > 0 {
		m.giveThreadCPU(n)
	}
}

// startHandler begins service of the next queued message.
func (m *Machine) startHandler(n *node) {
	msg := n.handlerQ[0]
	// Shift rather than re-slice forever; the queue is typically short
	// and this keeps the backing array from growing without bound.
	copy(n.handlerQ, n.handlerQ[1:])
	n.handlerQ = n.handlerQ[:len(n.handlerQ)-1]

	now := m.eng.Now()
	n.current = msg
	msg.ServiceStart = now
	switch msg.Kind {
	case KindRequest:
		n.busyReq.Set(now, 1)
	case KindReply:
		n.busyRep.Set(now, 1)
	}
	if m.cfg.Observer != nil {
		m.cfg.Observer.HandlerStart(n.id, msg, now)
	}
	service := msg.Service.Sample(n.rand)
	m.eng.Schedule(service, func() { m.handlerDone(n, msg) })
}

// handlerDone completes the in-service handler: records measurements,
// runs the handler's effects, and re-dispatches the processor.
func (m *Machine) handlerDone(n *node, msg *Message) {
	now := m.eng.Now()
	msg.Done = now
	n.current = nil
	switch msg.Kind {
	case KindRequest:
		n.reqPresent--
		n.reqQ.Set(now, float64(n.reqPresent))
		n.busyReq.Set(now, 0)
		n.reqResp.Add(msg.Done - msg.Arrived)
	case KindReply:
		n.repPresent--
		n.repQ.Set(now, float64(n.repPresent))
		n.busyRep.Set(now, 0)
		n.repResp.Add(msg.Done - msg.Arrived)
	}
	if m.cfg.Observer != nil {
		m.cfg.Observer.HandlerEnd(n.id, msg, now)
	}
	if msg.OnComplete != nil {
		msg.OnComplete(m, msg)
	}
	m.dispatch(n)
}

// preempt interrupts the running thread, banking its remaining work
// and re-queuing it at the head of the ready queue (preempt-resume: it
// regains the CPU before other ready threads once the handlers drain).
func (m *Machine) preempt(n *node) {
	now := m.eng.Now()
	t := n.threads[n.running]
	m.eng.Cancel(t.event)
	t.event = nil
	elapsed := now - t.startedAt
	t.remaining -= elapsed
	if t.remaining < 0 {
		t.remaining = 0 // floating-point fuzz only
	}
	t.tstate = threadReady
	n.ready = append([]int{t.id}, n.ready...)
	n.running = -1
	n.threadBusy.Set(now, 0)
	if m.cfg.Observer != nil {
		m.cfg.Observer.ThreadRun(n.id, t.startedAt, now)
	}
}

// giveThreadCPU pops the head of the ready queue and resumes or
// advances it.
func (m *Machine) giveThreadCPU(n *node) {
	tid := n.ready[0]
	n.ready = n.ready[1:]
	t := n.threads[tid]
	n.running = tid
	if t.remaining > 0 {
		m.startThreadRun(n, t)
		return
	}
	m.advanceThread(n, t)
}

// startThreadRun runs the thread for its remaining banked work.
func (m *Machine) startThreadRun(n *node, t *thread) {
	now := m.eng.Now()
	t.tstate = threadRunning
	t.startedAt = now
	n.threadBusy.Set(now, 1)
	t.event = m.eng.Schedule(t.remaining, func() { m.threadDone(n, t) })
}

// threadDone fires when a Compute finishes uninterrupted.
func (m *Machine) threadDone(n *node, t *thread) {
	t.remaining = 0
	t.event = nil
	t.tstate = threadReady
	n.threadBusy.Set(m.eng.Now(), 0)
	if m.cfg.Observer != nil {
		m.cfg.Observer.ThreadRun(n.id, t.startedAt, m.eng.Now())
	}
	// In interrupt mode the CPU is necessarily free of handlers here
	// (an arrival would have preempted the run); in PP mode threads
	// never wait for handlers. Either way this thread keeps the CPU
	// for its next zero-cost actions.
	m.advanceThread(n, t)
}

// advanceThread executes the thread's zero-duration actions until it
// either starts a Compute, blocks, or halts. The thread must hold the
// CPU (n.running == t.id).
func (m *Machine) advanceThread(n *node, t *thread) {
	const maxZeroCostActions = 1 << 20
	for i := 0; ; i++ {
		if i == maxZeroCostActions {
			panic(fmt.Sprintf("machine: node %d program issued %d actions without consuming time", n.id, i))
		}
		action := t.program.Next(m, n.id)
		switch action.kind {
		case actionCompute:
			//lopc:allow floateq exactly-zero compute is a no-op action; any positive duration schedules an event
			if action.duration == 0 {
				continue
			}
			t.remaining = action.duration
			m.startThreadRun(n, t)
			return
		case actionSendBlock:
			m.Send(action.msg)
			t.tstate = threadBlocked
			n.running = -1
			m.dispatch(n)
			return
		case actionBlock:
			t.tstate = threadBlocked
			n.running = -1
			m.dispatch(n)
			return
		case actionSendAsync:
			m.Send(action.msg)
			continue
		case actionHalt:
			t.tstate = threadHalted
			n.running = -1
			m.halted++
			m.dispatch(n)
			return
		default:
			panic(fmt.Sprintf("machine: unknown action kind %d", action.kind))
		}
	}
}

// ResetStats restarts all steady-state measurements at the current
// simulated time. Experiments call it at the end of warmup.
func (m *Machine) ResetStats() {
	now := m.eng.Now()
	for _, n := range m.nodes {
		n.reqQ.Reset(now, float64(n.reqPresent))
		n.repQ.Reset(now, float64(n.repPresent))
		n.busyReq.Reset(now, boolTo01(n.current != nil && n.current.Kind == KindRequest))
		n.busyRep.Reset(now, boolTo01(n.current != nil && n.current.Kind == KindReply))
		n.threadBusy.Reset(now, boolTo01(n.running >= 0))
		n.reqArrivals, n.repArrivals = 0, 0
		n.reqResp, n.repResp = stats.Tally{}, stats.Tally{}
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// NodeStats returns a measurement snapshot for one node, integrated up
// to the current simulated time.
func (m *Machine) NodeStats(nodeID int) NodeStats {
	n := m.nodes[nodeID]
	now := m.eng.Now()
	n.reqQ.Advance(now)
	n.repQ.Advance(now)
	n.busyReq.Advance(now)
	n.busyRep.Advance(now)
	n.threadBusy.Advance(now)
	return NodeStats{
		ReqQueue:      n.reqQ.Mean(),
		RepQueue:      n.repQ.Mean(),
		UtilReq:       n.busyReq.Mean(),
		UtilRep:       n.busyRep.Mean(),
		ThreadUtil:    n.threadBusy.Mean(),
		ReqArrivals:   n.reqArrivals,
		RepArrivals:   n.repArrivals,
		ReqResponse:   n.reqResp,
		RepResponse:   n.repResp,
		MaxQueueDepth: n.maxDepth,
		Elapsed:       n.reqQ.Elapsed(),
	}
}

// MachineStats aggregates NodeStats across all nodes (arithmetic means
// of the per-node time averages; merged response tallies; summed
// arrival counts).
type MachineStats struct {
	ReqQueue, RepQueue       float64
	UtilReq, UtilRep         float64
	ThreadUtil               float64
	ReqArrivals, RepArrivals int64
	ReqResponse, RepResponse stats.Tally
	// MaxQueueDepth is the deepest handler queue seen on any node.
	MaxQueueDepth int
	Elapsed       float64
}

// Stats returns machine-wide aggregated measurements.
func (m *Machine) Stats() MachineStats {
	var agg MachineStats
	for i := range m.nodes {
		ns := m.NodeStats(i)
		agg.ReqQueue += ns.ReqQueue
		agg.RepQueue += ns.RepQueue
		agg.UtilReq += ns.UtilReq
		agg.UtilRep += ns.UtilRep
		agg.ThreadUtil += ns.ThreadUtil
		agg.ReqArrivals += ns.ReqArrivals
		agg.RepArrivals += ns.RepArrivals
		agg.ReqResponse.Merge(&ns.ReqResponse)
		agg.RepResponse.Merge(&ns.RepResponse)
		if ns.MaxQueueDepth > agg.MaxQueueDepth {
			agg.MaxQueueDepth = ns.MaxQueueDepth
		}
		agg.Elapsed = ns.Elapsed
	}
	p := float64(m.cfg.P)
	agg.ReqQueue /= p
	agg.RepQueue /= p
	agg.UtilReq /= p
	agg.UtilRep /= p
	agg.ThreadUtil /= p
	return agg
}

func (s threadState) String() string {
	switch s {
	case threadIdle:
		return "idle"
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadBlocked:
		return "blocked"
	case threadHalted:
		return "halted"
	default:
		return fmt.Sprintf("threadState(%d)", int(s))
	}
}

// Package version reports build provenance for the cmd/ binaries: the
// module version and the VCS revision stamped by the Go toolchain
// (runtime/debug.ReadBuildInfo). Every binary exposes it through the
// same -version flag so operators can tell exactly which build answers
// their predictions.
package version

import (
	"flag"
	"fmt"
	"runtime/debug"
	"strings"
)

// AddFlag registers the standard -version flag on fs and returns its
// value pointer. After parsing, a main that sees *v == true should
// print String(name) and exit cleanly.
func AddFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and build information, then exit")
}

// String renders the one-line version report for a binary: the binary
// name, the module version, the Go toolchain, and — when the build was
// stamped from a VCS checkout — the revision, commit time and dirty
// marker.
func String(name string) string {
	info, ok := debug.ReadBuildInfo()
	return render(name, info, ok)
}

// render is String with the build info injected, so tests can exercise
// every shape of metadata without depending on how the test binary was
// built.
func render(name string, info *debug.BuildInfo, ok bool) string {
	if !ok || info == nil {
		return name + " (build info unavailable)"
	}
	var b strings.Builder
	ver := info.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	fmt.Fprintf(&b, "%s %s %s", name, ver, info.GoVersion)
	var rev, at, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (rev %s%s", rev, dirty)
		if at != "" {
			fmt.Fprintf(&b, ", %s", at)
		}
		b.WriteString(")")
	}
	return b.String()
}

package version

import (
	"flag"
	"io"
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringAlwaysIdentifiesBinary(t *testing.T) {
	got := String("lopc-test")
	if !strings.HasPrefix(got, "lopc-test") {
		t.Errorf("String = %q, want the binary name first", got)
	}
	if strings.ContainsAny(got, "\n\r") {
		t.Errorf("String = %q, want a single line", got)
	}
}

func TestRenderShapes(t *testing.T) {
	stamped := &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Path: "repro", Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.time", Value: "2026-08-06T00:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	cases := []struct {
		name string
		info *debug.BuildInfo
		ok   bool
		want string
	}{
		{"stamped", stamped, true,
			"lopc v1.2.3 go1.22.0 (rev 0123456789ab-dirty, 2026-08-06T00:00:00Z)"},
		{"devel", &debug.BuildInfo{GoVersion: "go1.22.0", Main: debug.Module{Path: "repro"}}, true,
			"lopc (devel) go1.22.0"},
		{"missing", nil, false, "lopc (build info unavailable)"},
	}
	for _, c := range cases {
		if got := render("lopc", c.info, c.ok); got != c.want {
			t.Errorf("%s: render = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestAddFlagRegistersVersion(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	v := AddFlag(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !*v {
		t.Error("-version did not set the flag")
	}
}

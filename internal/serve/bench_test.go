package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchServer(b *testing.B, cacheSize int) http.Handler {
	b.Helper()
	return New(Config{Workers: 8, QueueDepth: 256, CacheSize: cacheSize}).Handler()
}

func benchPost(h http.Handler, path, body string) int {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// benchFitBody is a small request whose solve — the (St, So)
// calibration search, thousands of AMVA solves — is genuinely
// expensive (~ms), so the cold/cached ratio measures the cache, not
// HTTP plumbing.
const benchFitBody = `{"p":16,"c2":0,"observations":[{"w":0,"r":900},{"w":256,"r":1150},{"w":512,"r":1400},{"w":1024,"r":1900},{"w":2048,"r":2950}]}`

// BenchmarkServeSolveCold measures the full request path with
// memoization disabled: decode, admission, calibration solve, encode.
// Each iteration re-runs the whole solve.
func BenchmarkServeSolveCold(b *testing.B) {
	h := benchServer(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(h, "/v1/fit", benchFitBody); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeSolveCached is the same request on a hot cache key:
// decode, key, LRU hit, write. The ratio to ServeSolveCold is the
// cache's speedup on a hot parameter point (acceptance floor: 10x).
func BenchmarkServeSolveCached(b *testing.B) {
	h := benchServer(b, 1024)
	if code := benchPost(h, "/v1/fit", benchFitBody); code != http.StatusOK {
		b.Fatal("warm-up solve failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(h, "/v1/fit", benchFitBody); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeAllToAllCold / Cached are the same pair on the cheap
// scalar solver, where HTTP and JSON plumbing dominate — the lower
// bound on what caching can buy.
func BenchmarkServeAllToAllCold(b *testing.B) {
	h := benchServer(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"p":32,"w":%d,"st":40,"so":200}`, 100+i)
		if code := benchPost(h, "/v1/alltoall", body); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

func BenchmarkServeAllToAllCached(b *testing.B) {
	h := benchServer(b, 1024)
	if code := benchPost(h, "/v1/alltoall", validAllToAll); code != http.StatusOK {
		b.Fatal("warm-up solve failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(h, "/v1/alltoall", validAllToAll); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeParallelClients measures aggregate throughput with
// GOMAXPROCS client goroutines hammering a mixed working set (16 hot
// points, cache on) — the serving-path contention benchmark.
func BenchmarkServeParallelClients(b *testing.B) {
	h := benchServer(b, 1024)
	bodies := make([]string, 16)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"p":32,"w":%d,"st":40,"so":200}`, 500+i)
		if code := benchPost(h, "/v1/alltoall", bodies[i]); code != http.StatusOK {
			b.Fatal("warm-up solve failed")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			if code := benchPost(h, "/v1/alltoall", body); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})
}

// BenchmarkServeSweep measures one 64-point sweep request end to end
// (fresh points each iteration, fanned out through internal/runner).
func BenchmarkServeSweep(b *testing.B) {
	h := benchServer(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := make([]string, 64)
		for j := range points {
			points[j] = fmt.Sprintf(`{"p":32,"w":%d,"st":40,"so":200}`, 1000+64*i+j)
		}
		body := `{"points":[` + strings.Join(points, ",") + `],"jobs":8}`
		if code := benchPost(h, "/v1/sweep", body); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

const validLock = `{"threads":8,"w":800,"st":20,"so":100,"c2":1}`
const validLockFree = `{"threads":8,"w":400,"st":5,"so":60,"c2":1}`

// TestLockHandlerTable drives /v1/lock and /v1/lockfree through their
// request-shape, validation, and infeasibility failure modes.
func TestLockHandlerTable(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		wantInBody       string
	}{
		{"lock ok", "/v1/lock", validLock, 200, `"x":`},
		{"lock bounds in body", "/v1/lock", validLock, 200, `"serial_bound":`},
		{"lock single thread", "/v1/lock", `{"threads":1,"w":800,"st":20,"so":100}`, 200, `"wait":0`},
		{"lock bad JSON", "/v1/lock", `{"threads":8,`, 400, "decoding request"},
		{"lock unknown field", "/v1/lock", `{"threads":8,"so":100,"p":32}`, 400, "unknown field"},
		{"lock trailing garbage", "/v1/lock", validLock + ` {"again":true}`, 400, "trailing data"},
		{"lock zero threads", "/v1/lock", `{"threads":0,"w":800,"so":100}`, 400, "lock model needs Threads"},
		{"lock zero So", "/v1/lock", `{"threads":8,"w":800}`, 400, "positive time"},
		{"lock negative W", "/v1/lock", `{"threads":8,"w":-1,"so":100}`, 400, "negative parameter"},
		{"lockfree ok", "/v1/lockfree", validLockFree, 200, `"attempts":`},
		{"lockfree conflict in body", "/v1/lockfree", validLockFree, 200, `"conflict":`},
		{"lockfree st=0 omits serial bound", "/v1/lockfree", `{"threads":8,"w":400,"so":60}`, 200, `"conflict_free_bound":`},
		{"lockfree bad JSON", "/v1/lockfree", `{"threads":`, 400, "decoding request"},
		{"lockfree unknown field", "/v1/lockfree", `{"threads":8,"so":60,"ps":1}`, 400, "unknown field"},
		{"lockfree zero threads", "/v1/lockfree", `{"threads":0,"so":60}`, 400, "lock-free model needs Threads"},
		{"lockfree zero So", "/v1/lockfree", `{"threads":8,"w":400}`, 400, "positive time"},
		{"lockfree retry storm is infeasible", "/v1/lockfree", `{"threads":1024,"w":0,"st":0.0001,"so":100}`, 422, "did not converge"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, c.status, body)
			}
			if !strings.Contains(body, c.wantInBody) {
				t.Errorf("body %q missing %q", body, c.wantInBody)
			}
		})
	}
	// The st=0 response must genuinely omit the unbounded serial bound.
	_, body := post(t, ts.URL+"/v1/lockfree", `{"threads":4,"w":400,"so":60}`)
	if strings.Contains(body, "serial_bound") {
		t.Errorf("st=0 lock-free response carries a serial bound: %s", body)
	}
}

// TestLockCacheQuantization: both new endpoints share the solve cache
// with sub-resolution folding and real-change separation.
func TestLockCacheQuantization(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, c := range []struct {
		path, base, subRes, changed string
	}{
		{"/v1/lock", validLock, `{"threads":8,"w":800.0000000001,"st":20,"so":100,"c2":1}`, `{"threads":8,"w":801,"st":20,"so":100,"c2":1}`},
		{"/v1/lockfree", validLockFree, `{"threads":8,"w":400.0000000001,"st":5,"so":60,"c2":1}`, `{"threads":8,"w":401,"st":5,"so":60,"c2":1}`},
	} {
		cold, _ := post(t, ts.URL+c.path, c.base)
		if got := cold.Header.Get("X-Lopc-Cache"); got != "miss" {
			t.Errorf("%s cold solve cache = %q, want miss", c.path, got)
		}
		hit, _ := post(t, ts.URL+c.path, c.subRes)
		if got := hit.Header.Get("X-Lopc-Cache"); got != "hit" {
			t.Errorf("%s sub-resolution change cache = %q, want hit", c.path, got)
		}
		miss, _ := post(t, ts.URL+c.path, c.changed)
		if got := miss.Header.Get("X-Lopc-Cache"); got != "miss" {
			t.Errorf("%s real change cache = %q, want miss", c.path, got)
		}
	}
}

// TestLockCacheHitBytesIdentical: hits replay the cold bytes exactly on
// both endpoints.
func TestLockCacheHitBytesIdentical(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, c := range []struct{ path, body string }{
		{"/v1/lock", validLock},
		{"/v1/lockfree", validLockFree},
	} {
		_, cold := post(t, ts.URL+c.path, c.body)
		_, hit := post(t, ts.URL+c.path, c.body)
		if cold != hit {
			t.Errorf("%s cache hit bytes differ:\ncold: %s\nhit:  %s", c.path, cold, hit)
		}
	}
}

// TestLockSingleflight: concurrent identical requests to the new
// endpoints run exactly one solve; every other caller is a hit or a
// collapse onto the in-flight one.
func TestLockSingleflight(t *testing.T) {
	for _, path := range []string{"/v1/lock", "/v1/lockfree"} {
		t.Run(path, func(t *testing.T) {
			s, ts, _ := newTestServer(t, Config{})
			body := validLock
			if path == "/v1/lockfree" {
				body = validLockFree
			}
			const clients = 12
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, rbody := postNoT(ts.URL+path, body)
					if resp.StatusCode != 200 {
						t.Errorf("status %d: %s", resp.StatusCode, rbody)
					}
				}()
			}
			wg.Wait()
			misses := s.met.cacheMisses.Value()
			if misses != 1 {
				t.Errorf("%d cache misses across %d identical requests, want 1 (singleflight)", misses, clients)
			}
			if total := misses + s.met.cacheHits.Value() + s.met.cacheCollapsed.Value(); total != clients {
				t.Errorf("outcome counts sum to %d, want %d", total, clients)
			}
		})
	}
}

// TestLockKeyUniqueness: the new endpoints' keys never collide with
// each other or across namespaces, even at identical numerics.
func TestLockKeyUniqueness(t *testing.T) {
	keys := map[string]string{}
	add := func(name, key string) {
		if prev, dup := keys[key]; dup {
			t.Errorf("key collision between %s and %s: %q", prev, name, key)
		}
		keys[key] = name
	}
	lp := core.LockParams{Threads: 8, W: 800, St: 20, So: 100, C2: 1}
	add("lock", keyLock(lp))
	lp2 := lp
	lp2.Threads = 9
	add("lock threads+1", keyLock(lp2))
	lp3 := lp
	lp3.W++
	add("lock w+1", keyLock(lp3))
	fp := core.LockFreeParams{Threads: 8, W: 800, St: 20, So: 100, C2: 1}
	add("lockfree same numerics", keyLockFree(fp))
	cs := core.ClientServerParams{P: 8, Ps: 1, W: 800, St: 20, So: 100, C2: 1}
	add("workpile", keyWorkpile(cs))
}

// Package serve exposes the LoPC model stack over HTTP: JSON endpoints
// for single solves (/v1/alltoall, /v1/workpile, /v1/general), batch
// sweeps (/v1/sweep, fanned out through internal/runner), bounds and
// calibration queries, all behind a solve cache and admission control.
//
// The server manages exactly the resource contention the model it
// serves describes — a bounded pool of solver workers fed by bursty
// request arrivals — so it eats its own dogfood twice:
//
//   - The solve cache collapses thundering herds on a hot parameter
//     point into one AMVA fixed-point solve (singleflight) and memoizes
//     rendered responses in an LRU keyed on canonicalized, quantized
//     parameter tuples, making cache hits byte-identical to cold solves.
//   - Admission control bounds the worker pool and its queue, sheds
//     excess load with 429/503 + Retry-After, and is sized at startup by
//     the paper's own Eq. 6.8 optimal server allocation
//     (RecommendWorkers).
//
// Observability is a single JSON document on /metrics (request and shed
// counters, latency histograms, cache hit/miss/collapse counts, queue
// depth and in-flight gauges) plus /healthz and /readyz; draining for
// graceful shutdown flips /readyz to 503 while in-flight requests
// finish.
package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers is the solver pool size: the maximum number of solves
	// (or sweeps) in flight. Defaults to 8. RecommendWorkers sizes it
	// from the paper's own model.
	Workers int
	// QueueDepth is the maximum number of requests waiting for a
	// worker before the server sheds with 503. Defaults to 64.
	QueueDepth int
	// QueueWait caps how long one request waits for a worker before a
	// 429. Defaults to 1s.
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline propagated via
	// context into solvers and sweep fan-out. Defaults to 10s.
	RequestTimeout time.Duration
	// CacheSize is the solve-cache capacity in entries; <= -1 disables
	// memoization (singleflight collapse stays on). 0 means the
	// default 1024.
	CacheSize int
	// SolveEstimate is the rough per-solve service time used for
	// Retry-After hints and the Eq. 6.8 sizing log. Defaults to 1ms.
	SolveEstimate time.Duration
	// MaxSweepPoints caps the points of one /v1/sweep request.
	// Defaults to 4096.
	MaxSweepPoints int
	// MaxSweepJobs caps the per-request fan-out of /v1/sweep (the
	// request's own jobs field is clamped to it). Defaults to Workers.
	MaxSweepJobs int
	// MaxBodyBytes caps request bodies. Defaults to 1 MiB.
	MaxBodyBytes int64
	// Clock supplies time for latency metrics, queue-wait timeouts and
	// drain deadlines. nil means the system clock; tests inject a
	// clock.Fake to pin shed and drain behaviour.
	Clock clock.Waiter
	// Logf, when non-nil, receives startup and drain log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.SolveEstimate <= 0 {
		c.SolveEstimate = time.Millisecond
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Server is the contention-aware prediction service. Create one with
// New, mount Handler on an http.Server, and call Drain before exit.
type Server struct {
	cfg      Config
	clk      clock.Waiter
	mux      *http.ServeMux
	cache    *solveCache
	adm      *admission
	met      *metrics
	draining atomic.Bool
	active   sync.WaitGroup // one count per in-flight request
}

// New builds a Server from cfg (zero value fine) and logs the Eq. 6.8
// worker-pool recommendation for the configured solve-time estimate.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := newMetrics(cfg.Clock.Now())
	s := &Server{
		cfg:   cfg,
		clk:   cfg.Clock,
		mux:   http.NewServeMux(),
		cache: newSolveCache(cfg.CacheSize),
		adm:   newAdmission(cfg.Workers, cfg.QueueDepth, cfg.QueueWait, cfg.SolveEstimate, cfg.Clock, met),
		met:   met,
	}
	s.routes()
	s.logSizing()
	return s
}

// logSizing reports what the paper's own work-pile model recommends
// for the configured pool: dogfooding Eq. 6.8 as capacity planning.
func (s *Server) logSizing() {
	if s.cfg.Logf == nil {
		return
	}
	clients := s.cfg.QueueDepth + s.cfg.Workers // the population the pool must absorb
	psStar, workers, err := RecommendWorkers(clients, 0, s.cfg.SolveEstimate)
	if err != nil {
		s.cfg.Logf("serve: Eq. 6.8 sizing unavailable: %v", err)
		return
	}
	s.cfg.Logf("serve: admission sized for %d workers, queue %d; work-pile model (Eq. 6.8) recommends Ps* = %.2f (best integral %d) for ~%d saturating clients at solve=%v",
		s.cfg.Workers, s.cfg.QueueDepth, psStar, workers, clients, s.cfg.SolveEstimate)
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes mounts every endpoint.
func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/v1/alltoall", s.instrument("/v1/alltoall", s.handleAllToAll))
	s.mux.Handle("/v1/workpile", s.instrument("/v1/workpile", s.handleWorkpile))
	s.mux.Handle("/v1/general", s.instrument("/v1/general", s.handleGeneral))
	s.mux.Handle("/v1/bounds", s.instrument("/v1/bounds", s.handleBounds))
	s.mux.Handle("/v1/fit", s.instrument("/v1/fit", s.handleFit))
	s.mux.Handle("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps an API handler with the shared request plumbing:
// draining rejection, in-flight accounting, per-request deadline, and
// request/error/latency metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	rs := s.met.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		s.active.Add(1)
		defer s.active.Done()
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		rs.requests.Add(1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		start := s.clk.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		rs.latency.observe(s.clk.Now().Sub(start))
		if rec.status >= 400 {
			rs.errors.Add(1)
		}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	doc := s.met.snapshot(s.clk.Now(), s.cache.len(), s.cfg.CacheSize, s.draining.Load())
	_ = writeJSON(w, http.StatusOK, doc)
}

// StartDrain flips the server into draining mode: /readyz answers 503
// (so load balancers stop routing here) and new API requests are
// rejected, while requests already in flight keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain marks the server draining and waits — on the injected clock —
// until every in-flight request has finished or timeout elapses. It
// reports whether the drain completed cleanly.
func (s *Server) Drain(timeout time.Duration) bool {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.cfg.Logf != nil {
			s.cfg.Logf("serve: drain complete, all in-flight requests finished")
		}
		return true
	case <-s.clk.After(timeout):
		if s.cfg.Logf != nil {
			s.cfg.Logf("serve: drain timed out with %d request(s) still in flight", s.met.inFlight.Load())
		}
		return false
	}
}

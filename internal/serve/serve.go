// Package serve exposes the LoPC model stack over HTTP: JSON endpoints
// for single solves (/v1/alltoall, /v1/workpile, /v1/general), batch
// sweeps (/v1/sweep, fanned out through internal/runner), bounds and
// calibration queries, all behind a solve cache and admission control.
//
// The server manages exactly the resource contention the model it
// serves describes — a bounded pool of solver workers fed by bursty
// request arrivals — so it eats its own dogfood twice:
//
//   - The solve cache collapses thundering herds on a hot parameter
//     point into one AMVA fixed-point solve (singleflight) and memoizes
//     rendered responses in an LRU keyed on canonicalized, quantized
//     parameter tuples, making cache hits byte-identical to cold solves.
//   - Admission control bounds the worker pool and its queue, sheds
//     excess load with 429/503 + Retry-After, and is sized at startup by
//     the paper's own Eq. 6.8 optimal server allocation
//     (RecommendWorkers).
//
// Observability is built on the shared internal/obs registry: /metrics
// serves the original JSON document by default and Prometheus text
// exposition under content negotiation (Accept: text/plain or
// ?format=prometheus); solver convergence traces are recorded through
// an obs.ConvRecorder threaded into every solve; Config.Spans records
// per-request Chrome-trace spans; Config.Pprof mounts net/http/pprof
// under /debug/pprof/. /healthz and /readyz complete the surface;
// draining for graceful shutdown flips /readyz to 503 while in-flight
// requests finish.
package serve

import (
	"context"
	"net/http"
	httppprof "net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/calib"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers is the solver pool size: the maximum number of solves
	// (or sweeps) in flight. Defaults to 8. RecommendWorkers sizes it
	// from the paper's own model.
	Workers int
	// QueueDepth is the maximum number of requests waiting for a
	// worker before the server sheds with 503. Defaults to 64.
	QueueDepth int
	// QueueWait caps how long one request waits for a worker before a
	// 429. Defaults to 1s.
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline propagated via
	// context into solvers and sweep fan-out. Defaults to 10s.
	RequestTimeout time.Duration
	// CacheSize is the solve-cache capacity in entries; <= -1 disables
	// memoization (singleflight collapse stays on). 0 means the
	// default 1024.
	CacheSize int
	// SolveEstimate is the rough per-solve service time used for
	// Retry-After hints and the Eq. 6.8 sizing log. Defaults to 1ms.
	SolveEstimate time.Duration
	// MaxSweepPoints caps the points of one /v1/sweep request.
	// Defaults to 4096.
	MaxSweepPoints int
	// MaxSweepJobs caps the per-request fan-out of /v1/sweep (the
	// request's own jobs field is clamped to it). Defaults to Workers.
	MaxSweepJobs int
	// MaxBodyBytes caps request bodies. Defaults to 1 MiB.
	MaxBodyBytes int64
	// Clock supplies time for latency metrics, queue-wait timeouts and
	// drain deadlines. nil means the system clock; tests inject a
	// clock.Fake to pin shed and drain behaviour.
	Clock clock.Waiter
	// Logf, when non-nil, receives startup and drain log lines.
	Logf func(format string, args ...any)
	// Pprof mounts net/http/pprof handlers under /debug/pprof/ for CPU,
	// heap and goroutine profiling. Off by default: the profile
	// endpoints are unauthenticated and can stall the process while a
	// profile is captured, so they are opt-in.
	Pprof bool
	// Spans, when non-nil, records one Chrome-trace span per API
	// request (viewable in Perfetto). Like runner.Options.Spans, it
	// observes requests without affecting responses.
	Spans *trace.Spans
	// ConvCapacity sizes the ring of recent solver convergence traces;
	// <= 0 means obs.DefaultConvCapacity.
	ConvCapacity int
	// Calibration enables the online model calibrator: the split timing
	// histograms feed a calib.Estimator that continuously refits
	// (W, St, So, C²) from live traffic, /v1/calibration and /v1/whatif
	// are mounted, and the lopc_model_drift gauge joins the exposition.
	Calibration bool
	// CalibWindow is the calibrator's refit window in service samples;
	// <= 0 means calib.DefaultWindow.
	CalibWindow int
	// CalibPopulation overrides the modeled closed client population P.
	// <= Workers (including the zero default) means Workers+QueueDepth —
	// the most concurrency admission control lets the server absorb.
	CalibPopulation int
	// CalibEstimator injects a pre-built estimator instead of
	// constructing one; it implies Calibration. Tests use this to mount
	// the endpoints over a fake-clock estimator warmed with synthetic
	// traffic.
	CalibEstimator *calib.Estimator
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.SolveEstimate <= 0 {
		c.SolveEstimate = time.Millisecond
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	if c.ConvCapacity <= 0 {
		c.ConvCapacity = obs.DefaultConvCapacity
	}
	return c
}

// Server is the contention-aware prediction service. Create one with
// New, mount Handler on an http.Server, and call Drain before exit.
type Server struct {
	cfg      Config
	clk      clock.Waiter
	mux      *http.ServeMux
	cache    *solveCache
	adm      *admission
	met      *metrics
	reg      *obs.Registry
	conv     *obs.ConvRecorder
	calib    *calib.Estimator // nil unless calibration is enabled
	draining atomic.Bool
	active   sync.WaitGroup // one count per in-flight request
}

// New builds a Server from cfg (zero value fine) and logs the Eq. 6.8
// worker-pool recommendation for the configured solve-time estimate.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	met := newMetrics(cfg.Clock.Now(), reg)
	s := &Server{
		cfg:   cfg,
		clk:   cfg.Clock,
		mux:   http.NewServeMux(),
		cache: newSolveCache(cfg.CacheSize),
		adm:   newAdmission(cfg.Workers, cfg.QueueDepth, cfg.QueueWait, cfg.SolveEstimate, cfg.Clock, met),
		met:   met,
		reg:   reg,
		conv:  obs.NewConvRecorder(cfg.ConvCapacity, cfg.Clock, reg),
	}
	// Derived gauges mirror the JSON document's computed fields into
	// the Prometheus exposition; they read server state at scrape time.
	reg.GaugeFunc("lopc_serve_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return s.clk.Now().Sub(met.start).Seconds() })
	reg.GaugeFunc("lopc_serve_cache_size", "Entries currently in the solve cache.", nil,
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("lopc_serve_cache_capacity", "Configured solve-cache capacity.", nil,
		func() float64 { return float64(s.cfg.CacheSize) })
	reg.GaugeFunc("lopc_serve_draining", "1 while the server is draining, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	if cfg.CalibEstimator != nil {
		s.calib = cfg.CalibEstimator
	} else if cfg.Calibration {
		pop := cfg.CalibPopulation
		if pop <= cfg.Workers {
			pop = cfg.Workers + cfg.QueueDepth
		}
		s.calib = calib.New(calib.Config{
			P: pop, Ps: cfg.Workers,
			Window:   cfg.CalibWindow,
			Clock:    cfg.Clock,
			Registry: reg,
		})
	}
	if s.calib != nil {
		// The calibrator drinks from the timing histograms' sample taps:
		// every recorded wait/service/overhead observation is forwarded
		// as-is, so the estimator sees exactly what /metrics reports.
		met.queueWait.SetTap(s.calib.ObserveWait)
		met.service.SetTap(s.calib.ObserveService)
		met.overhead.SetTap(s.calib.ObserveOverhead)
	}
	s.routes()
	s.logSizing()
	return s
}

// Calibrator returns the online estimator, or nil when calibration is
// disabled.
func (s *Server) Calibrator() *calib.Estimator { return s.calib }

// Registry returns the server's metrics registry, e.g. so a main
// package can add runtime gauges (obs.RegisterRuntime) to the
// Prometheus exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ConvTraces returns the recorder holding recent solver convergence
// traces; mains export it via -convtrace at shutdown.
func (s *Server) ConvTraces() *obs.ConvRecorder { return s.conv }

// logSizing reports what the paper's own work-pile model recommends
// for the configured pool: dogfooding Eq. 6.8 as capacity planning.
func (s *Server) logSizing() {
	if s.cfg.Logf == nil {
		return
	}
	clients := s.cfg.QueueDepth + s.cfg.Workers // the population the pool must absorb
	psStar, workers, err := RecommendWorkers(clients, 0, s.cfg.SolveEstimate)
	if err != nil {
		s.cfg.Logf("serve: Eq. 6.8 sizing unavailable: %v", err)
		return
	}
	s.cfg.Logf("serve: admission sized for %d workers, queue %d; work-pile model (Eq. 6.8) recommends Ps* = %.2f (best integral %d) for ~%d saturating clients at solve=%v",
		s.cfg.Workers, s.cfg.QueueDepth, psStar, workers, clients, s.cfg.SolveEstimate)
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes mounts every endpoint.
func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/v1/alltoall", s.instrument("/v1/alltoall", s.handleAllToAll))
	s.mux.Handle("/v1/workpile", s.instrument("/v1/workpile", s.handleWorkpile))
	s.mux.Handle("/v1/general", s.instrument("/v1/general", s.handleGeneral))
	s.mux.Handle("/v1/bounds", s.instrument("/v1/bounds", s.handleBounds))
	s.mux.Handle("/v1/fit", s.instrument("/v1/fit", s.handleFit))
	s.mux.Handle("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("/v1/lock", s.instrument("/v1/lock", s.handleLock))
	s.mux.Handle("/v1/lockfree", s.instrument("/v1/lockfree", s.handleLockFree))
	if s.calib != nil {
		s.mux.Handle("/v1/calibration", s.instrument("/v1/calibration", s.handleCalibration))
		s.mux.Handle("/v1/whatif", s.instrument("/v1/whatif", s.handleWhatif))
	}
	if s.cfg.Pprof {
		// The pprof handlers self-register on http.DefaultServeMux at
		// import; mount them explicitly so they exist only when asked
		// for and only on this server's mux.
		s.mux.HandleFunc("/debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
}

// reqTiming carries one request's timing split through its context:
// admission records the queue wait, the slot-occupancy wrapper records
// service time, and instrument derives overhead (total − wait −
// service) at the end. All writes happen on the request goroutine —
// sweep fan-out workers never touch it — so plain fields suffice.
type reqTiming struct {
	waitUS    float64
	serviceUS float64
	served    bool // a solver slot was held: the request is model traffic
}

type timingKey struct{}

// timingFrom returns the request's timing carrier, or nil outside
// instrumented requests (direct admission tests, background work).
func timingFrom(ctx context.Context) *reqTiming {
	t, _ := ctx.Value(timingKey{}).(*reqTiming)
	return t
}

// beginService starts a slot-occupancy measurement; the returned func
// records it when the slot work finishes. Cache hits never hold a slot,
// so they contribute no service sample — exactly the model's view, in
// which a memoized answer costs no server visit.
func (s *Server) beginService(ctx context.Context) func() {
	start := s.clk.Now()
	return func() {
		// Fractional microseconds: a ~1µs solve must stay positive, or
		// the calibrator would see So = 0 windows it cannot fit.
		us := float64(s.clk.Now().Sub(start)) / float64(time.Microsecond)
		if us < 0 {
			us = 0
		}
		s.met.service.Observe(us)
		if t := timingFrom(ctx); t != nil {
			t.serviceUS += us
			t.served = true
		}
	}
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps an API handler with the shared request plumbing:
// draining rejection, in-flight accounting, per-request deadline, and
// request/error/latency metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	rs := s.met.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		s.active.Add(1)
		defer s.active.Done()
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		rs.requests.Add(1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		rt := &reqTiming{}
		ctx = context.WithValue(ctx, timingKey{}, rt)
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		var endSpan func(map[string]any)
		if s.cfg.Spans != nil {
			endSpan = s.cfg.Spans.Start("http", route)
		}
		start := s.clk.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		total := s.clk.Now().Sub(start)
		observeLatency(rs.latency, total)
		if rt.served {
			// Overhead is whatever the request spent outside queueing and
			// service: decode, dispatch, marshal — the live counterpart of
			// the model's two St trips. Only solved requests contribute,
			// so the three calibration streams describe the same traffic.
			oh := float64(total)/float64(time.Microsecond) - rt.waitUS - rt.serviceUS
			if oh < 0 {
				oh = 0
			}
			s.met.overhead.Observe(oh)
		}
		if endSpan != nil {
			endSpan(map[string]any{"status": rec.status})
		}
		if rec.status >= 400 {
			rs.errors.Add(1)
		}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready\n"))
}

// handleMetrics content-negotiates the exposition: the original JSON
// document stays the default (existing scripts and the CI smoke test
// parse it with no Accept header), while Prometheus scrapers — which
// send Accept: text/plain — get text exposition format 0.0.4. The
// ?format=prometheus query parameter forces the text form for curl.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = s.reg.WritePrometheus(w)
		return
	}
	doc := s.met.snapshot(s.clk.Now(), s.cache.len(), s.cfg.CacheSize, s.draining.Load())
	_ = writeJSON(w, http.StatusOK, doc)
}

// wantsPrometheus reports whether the request asked for text
// exposition. JSON wins any tie: only an explicit text/plain or
// OpenMetrics Accept (what Prometheus sends), or ?format=prometheus,
// selects the text form — a browser's */* stays on JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// StartDrain flips the server into draining mode: /readyz answers 503
// (so load balancers stop routing here) and new API requests are
// rejected, while requests already in flight keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain marks the server draining and waits — on the injected clock —
// until every in-flight request has finished or timeout elapses. It
// reports whether the drain completed cleanly.
func (s *Server) Drain(timeout time.Duration) bool {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.cfg.Logf != nil {
			s.cfg.Logf("serve: drain complete, all in-flight requests finished")
		}
		return true
	case <-s.clk.After(timeout):
		if s.cfg.Logf != nil {
			s.cfg.Logf("serve: drain timed out with %d request(s) still in flight", s.met.inFlight.Value())
		}
		return false
	}
}

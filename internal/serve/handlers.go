package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/fit"
	obspkg "repro/internal/obs"
	"repro/internal/runner"
)

// Error taxonomy: malformed or invalid requests answer 400, admission
// rejections answer 429/503 with Retry-After (see admission.go), and
// structurally valid parameters on which the model itself has no
// feasible solution (a saturated node, a divergent fixed point) answer
// 422 — the client's parameters are the problem, not the request shape
// and not the server.

// errorResponse is the JSON error envelope of every non-2xx API answer.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeRequest parses one JSON request body strictly: POST only,
// unknown fields rejected, trailing garbage rejected. It writes the
// error response itself and reports whether the handler should go on.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		_ = writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST with a JSON body"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		_ = writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decoding request: " + err.Error()})
		return false
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		_ = writeJSON(w, http.StatusBadRequest, errorResponse{Error: "trailing data after JSON request"})
		return false
	}
	return true
}

// badRequest answers 400 with the validation error.
func badRequest(w http.ResponseWriter, err error) {
	_ = writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// writeSolveError classifies a failed solve: admission rejections keep
// their status and Retry-After hint, everything else is a model
// infeasibility (422).
func writeSolveError(w http.ResponseWriter, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", strconv.Itoa(shed.retryAfter))
		_ = writeJSON(w, shed.status, errorResponse{Error: shed.reason})
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		w.Header().Set("Retry-After", "1")
		_ = writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	_ = writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
}

// recordOutcome bumps the cache counters and names the outcome for the
// X-Lopc-Cache response header.
func (s *Server) recordOutcome(o outcome) string {
	switch o {
	case outcomeHit:
		s.met.cacheHits.Add(1)
		return "hit"
	case outcomeCollapsed:
		s.met.cacheCollapsed.Add(1)
		return "collapsed"
	default:
		s.met.cacheMisses.Add(1)
		return "miss"
	}
}

// writeCached writes one cached (or just-solved) response body. The
// stored bytes carry no cache markers — hit and cold responses are
// byte-identical — so the outcome travels in a header instead.
func (s *Server) writeCached(w http.ResponseWriter, data []byte, o outcome) {
	w.Header().Set("X-Lopc-Cache", s.recordOutcome(o))
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		return
	}
	_, _ = w.Write([]byte("\n"))
}

// marshalResponse renders a response payload into its canonical cached
// form (compact JSON, no trailing newline).
func marshalResponse(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	return data, nil
}

// --- /v1/alltoall ---

type alltoallRequest struct {
	P                 int     `json:"p"`
	W                 float64 `json:"w"`
	St                float64 `json:"st"`
	So                float64 `json:"so"`
	C2                float64 `json:"c2"`
	ProtocolProcessor bool    `json:"protocol_processor"`
	Priority          string  `json:"priority"` // "", "bkt", or "shadow"
	N                 int     `json:"n"`        // requests per thread; > 0 adds total_runtime
}

type alltoallResponse struct {
	R                  float64  `json:"r"`
	Rw                 float64  `json:"rw"`
	Rq                 float64  `json:"rq"`
	Ry                 float64  `json:"ry"`
	Qq                 float64  `json:"qq"`
	Qy                 float64  `json:"qy"`
	Uq                 float64  `json:"uq"`
	Uy                 float64  `json:"uy"`
	X                  float64  `json:"x"`
	ContentionFree     float64  `json:"contention_free"`
	UpperBound         float64  `json:"upper_bound"`
	Contention         float64  `json:"contention"`
	ContentionFraction float64  `json:"contention_fraction"`
	RuleOfThumb        float64  `json:"rule_of_thumb"`
	TotalRuntime       *float64 `json:"total_runtime,omitempty"`
}

// params converts the wire request into model parameters; the priority
// string is validated here, everything numeric by core's own Validate.
func (q alltoallRequest) params() (core.Params, error) {
	p := core.Params{
		P: q.P, W: q.W, St: q.St, So: q.So, C2: q.C2,
		ProtocolProcessor: q.ProtocolProcessor,
	}
	switch q.Priority {
	case "", "bkt":
		p.Priority = core.BKT
	case "shadow", "shadow-server":
		p.Priority = core.ShadowServer
	default:
		return core.Params{}, fmt.Errorf("unknown priority %q (want \"bkt\" or \"shadow\")", q.Priority)
	}
	if q.N < 0 {
		return core.Params{}, fmt.Errorf("negative request count n = %d", q.N)
	}
	return p, p.Validate()
}

// solveAllToAll computes the full single-solve payload, reporting the
// fixed-point convergence to o (the server's ConvRecorder).
func solveAllToAll(p core.Params, n int, o obspkg.SolveObserver) (alltoallResponse, error) {
	res, err := core.AllToAllObserved(p, o)
	if err != nil {
		return alltoallResponse{}, err
	}
	out := alltoallResponse{
		R: res.R, Rw: res.Rw, Rq: res.Rq, Ry: res.Ry,
		Qq: res.Qq, Qy: res.Qy, Uq: res.Uq, Uy: res.Uy,
		X:                  res.X,
		ContentionFree:     res.ContentionFree,
		UpperBound:         res.UpperBound,
		Contention:         res.Contention(),
		ContentionFraction: res.ContentionFraction(),
		RuleOfThumb:        p.RuleOfThumb(),
	}
	if n > 0 {
		total, err := core.TotalRuntime(p, n)
		if err != nil {
			return alltoallResponse{}, err
		}
		out.TotalRuntime = &total
	}
	return out, nil
}

// cachedAllToAll solves one all-to-all point through the cache. The
// solve closure runs only on a miss; admit wraps it with (or without)
// admission control depending on the caller.
func (s *Server) cachedAllToAll(p core.Params, n int, admit func(func() ([]byte, error)) ([]byte, error)) ([]byte, outcome, error) {
	return s.cache.get(keyAllToAll(p, n), func() ([]byte, error) {
		return admit(func() ([]byte, error) {
			out, err := solveAllToAll(p, n, s.conv)
			if err != nil {
				return nil, err
			}
			return marshalResponse(out)
		})
	})
}

// admitted wraps a solve closure with admission control: it claims a
// solver slot (respecting the request deadline) for the duration of
// the solve, and records the occupancy as the request's service time.
func (s *Server) admitted(ctx context.Context) func(func() ([]byte, error)) ([]byte, error) {
	return func(solve func() ([]byte, error)) ([]byte, error) {
		release, err := s.adm.acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		defer s.beginService(ctx)()
		return solve()
	}
}

// unadmitted runs the solve directly — for sweep points, whose request
// already holds a slot for the whole fan-out.
func unadmitted(solve func() ([]byte, error)) ([]byte, error) { return solve() }

func (s *Server) handleAllToAll(w http.ResponseWriter, r *http.Request) {
	var req alltoallRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	p, err := req.params()
	if err != nil {
		badRequest(w, err)
		return
	}
	data, o, err := s.cachedAllToAll(p, req.N, s.admitted(r.Context()))
	if err != nil {
		writeSolveError(w, err)
		return
	}
	s.writeCached(w, data, o)
}

// --- /v1/workpile ---

type workpileRequest struct {
	P  int     `json:"p"`
	Ps int     `json:"ps"` // 0: solve at the optimal allocation
	W  float64 `json:"w"`
	St float64 `json:"st"`
	So float64 `json:"so"`
	C2 float64 `json:"c2"`
}

type workpileResponse struct {
	Ps             int     `json:"ps"` // the split actually solved
	X              float64 `json:"x"`
	R              float64 `json:"r"`
	Rs             float64 `json:"rs"`
	Qs             float64 `json:"qs"`
	Us             float64 `json:"us"`
	OptimalServers float64 `json:"optimal_servers"`
	PeakThroughput float64 `json:"peak_throughput"`
}

func (q workpileRequest) params() (core.ClientServerParams, error) {
	p := core.ClientServerParams{P: q.P, Ps: q.Ps, W: q.W, St: q.St, So: q.So, C2: q.C2}
	if q.Ps == 0 {
		// Validate the rest of the tuple at a placeholder split; the
		// real split is solved from Eq. 6.8 during the solve.
		probe := p
		probe.Ps = 1
		return p, probe.Validate()
	}
	return p, p.Validate()
}

func solveWorkpile(p core.ClientServerParams, o obspkg.SolveObserver) (workpileResponse, error) {
	if p.Ps == 0 {
		opt, err := core.OptimalServersInt(p)
		if err != nil {
			return workpileResponse{}, err
		}
		p.Ps = opt
	}
	res, err := core.ClientServerObserved(p, o)
	if err != nil {
		return workpileResponse{}, err
	}
	return workpileResponse{
		Ps: p.Ps, X: res.X, R: res.R, Rs: res.Rs, Qs: res.Qs, Us: res.Us,
		OptimalServers: core.OptimalServers(p),
		PeakThroughput: core.PeakThroughput(p),
	}, nil
}

func (s *Server) handleWorkpile(w http.ResponseWriter, r *http.Request) {
	var req workpileRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	p, err := req.params()
	if err != nil {
		badRequest(w, err)
		return
	}
	data, o, err := s.cache.get(keyWorkpile(p), func() ([]byte, error) {
		return s.admitted(r.Context())(func() ([]byte, error) {
			out, err := solveWorkpile(p, s.conv)
			if err != nil {
				return nil, err
			}
			return marshalResponse(out)
		})
	})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	s.writeCached(w, data, o)
}

// --- /v1/bounds ---

type boundsResponse struct {
	ServerBound       float64 `json:"server_bound"`
	ClientBound       float64 `json:"client_bound"`
	OptimalServers    float64 `json:"optimal_servers"`
	OptimalServersInt int     `json:"optimal_servers_int"`
	PeakThroughput    float64 `json:"peak_throughput"`
	UpperBoundBeta    float64 `json:"upper_bound_beta"`
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	var req workpileRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	p, err := req.params()
	if err != nil {
		badRequest(w, err)
		return
	}
	if p.Ps == 0 {
		p.Ps = 1 // bounds need a concrete split; 1 is the conventional floor
	}
	data, o, err := s.cache.get(keyBounds(p), func() ([]byte, error) {
		// Bounds are closed forms — no fixed point, no admission needed.
		server, client := core.ClientServerBounds(p)
		opt, err := core.OptimalServersInt(p)
		if err != nil {
			return nil, err
		}
		return marshalResponse(boundsResponse{
			ServerBound:       server,
			ClientBound:       client,
			OptimalServers:    core.OptimalServers(p),
			OptimalServersInt: opt,
			PeakThroughput:    core.PeakThroughput(p),
			UpperBoundBeta:    core.UpperBoundBeta(p.C2),
		})
	})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	s.writeCached(w, data, o)
}

// --- /v1/general ---

type generalRequest struct {
	P                 int         `json:"p"`
	W                 []float64   `json:"w"`
	V                 [][]float64 `json:"v"`
	St                float64     `json:"st"`
	So                []float64   `json:"so"`
	C2                float64     `json:"c2"`
	ProtocolProcessor bool        `json:"protocol_processor"`
}

type generalResponse struct {
	R      []float64 `json:"r"`
	X      []float64 `json:"x"`
	Rw     []float64 `json:"rw"`
	Rq     []float64 `json:"rq"`
	Ry     []float64 `json:"ry"`
	Qq     []float64 `json:"qq"`
	Qy     []float64 `json:"qy"`
	Uq     []float64 `json:"uq"`
	Uy     []float64 `json:"uy"`
	TotalX float64   `json:"total_x"`
}

func (s *Server) handleGeneral(w http.ResponseWriter, r *http.Request) {
	var req generalRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	p := core.GeneralParams{
		P: req.P, W: req.W, V: req.V, St: req.St, So: req.So, C2: req.C2,
		ProtocolProcessor: req.ProtocolProcessor,
	}
	if err := p.Validate(); err != nil {
		badRequest(w, err)
		return
	}
	data, o, err := s.cache.get(keyGeneral(p), func() ([]byte, error) {
		return s.admitted(r.Context())(func() ([]byte, error) {
			res, err := core.GeneralObserved(p, s.conv)
			if err != nil {
				return nil, err
			}
			return marshalResponse(generalResponse{
				R: res.R, X: res.X, Rw: res.Rw, Rq: res.Rq, Ry: res.Ry,
				Qq: res.Qq, Qy: res.Qy, Uq: res.Uq, Uy: res.Uy,
				TotalX: res.TotalX,
			})
		})
	})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	s.writeCached(w, data, o)
}

// --- /v1/fit ---

type fitRequest struct {
	P            int              `json:"p"`
	C2           float64          `json:"c2"`
	Observations []fitObservation `json:"observations"`
}

type fitObservation struct {
	W  float64 `json:"w"`
	R  float64 `json:"r"`
	Rq float64 `json:"rq"`
}

type fitResponse struct {
	St      float64 `json:"st"`
	So      float64 `json:"so"`
	RMSE    float64 `json:"rmse"`
	RelRMSE float64 `json:"rel_rmse"`
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req fitRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	obs := make([]fit.Observation, len(req.Observations))
	for i, o := range req.Observations {
		obs[i] = fit.Observation{W: o.W, R: o.R, Rq: o.Rq}
	}
	data, o, err := s.cache.get(keyFit(obs, req.P, req.C2), func() ([]byte, error) {
		return s.admitted(r.Context())(func() ([]byte, error) {
			res, err := fit.AllToAllObserved(obs, req.P, req.C2, s.conv)
			if err != nil {
				return nil, err
			}
			return marshalResponse(fitResponse{St: res.St, So: res.So, RMSE: res.RMSE, RelRMSE: res.RelRMSE})
		})
	})
	if err != nil {
		// fit's own argument errors (too few observations, bad values)
		// are client mistakes, not model infeasibility.
		var shed *shedError
		if errors.As(err, &shed) {
			writeSolveError(w, err)
			return
		}
		badRequest(w, err)
		return
	}
	s.writeCached(w, data, o)
}

// --- /v1/sweep ---

type sweepRequest struct {
	Points []alltoallRequest `json:"points"`
	Jobs   int               `json:"jobs"` // fan-out width; clamped to the server cap
}

type sweepResponse struct {
	Points  int               `json:"points"`
	Jobs    int               `json:"jobs"`
	Results []json.RawMessage `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		badRequest(w, errors.New("sweep needs at least one point"))
		return
	}
	if len(req.Points) > s.cfg.MaxSweepPoints {
		badRequest(w, fmt.Errorf("sweep of %d points exceeds the %d-point cap", len(req.Points), s.cfg.MaxSweepPoints))
		return
	}
	params := make([]core.Params, len(req.Points))
	ns := make([]int, len(req.Points))
	for i, q := range req.Points {
		p, err := q.params()
		if err != nil {
			badRequest(w, fmt.Errorf("point %d: %w", i, err))
			return
		}
		params[i] = p
		ns[i] = q.N
	}
	jobs := req.Jobs
	if jobs <= 0 || jobs > s.cfg.MaxSweepJobs {
		jobs = s.cfg.MaxSweepJobs
	}

	// One admission slot covers the whole sweep; the fan-out width is
	// bounded separately by MaxSweepJobs, so a sweep can never occupy
	// more of the machine than one worker slot plus its own job cap.
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		writeSolveError(w, err)
		return
	}
	defer release()
	// The whole fan-out occupies one slot, so it is one service visit.
	defer s.beginService(r.Context())()

	results, err := runner.MapCtx(r.Context(), len(params), runner.Options{Jobs: jobs}, func(i int) (json.RawMessage, error) {
		data, o, err := s.cachedAllToAll(params[i], ns[i], unadmitted)
		if err != nil {
			return nil, err
		}
		s.recordOutcome(o)
		return json.RawMessage(data), nil
	})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	_ = writeJSON(w, http.StatusOK, sweepResponse{Points: len(results), Jobs: jobs, Results: results})
}

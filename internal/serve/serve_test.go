package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// newTestServer builds a Server on a fake clock and mounts it on an
// httptest.Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	if cfg.Clock == nil {
		cfg.Clock = fake
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, fake
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing response: %v", err)
	}
	return resp, string(data)
}

const validAllToAll = `{"p":32,"w":1000,"st":40,"so":200,"c2":0}`

// TestHandlerTable drives every endpoint through its request-shape and
// validation failure modes.
func TestHandlerTable(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		wantInBody       string
	}{
		{"alltoall ok", "/v1/alltoall", validAllToAll, 200, `"r":`},
		{"alltoall with n", "/v1/alltoall", `{"p":32,"w":1000,"st":40,"so":200,"n":100}`, 200, `"total_runtime":`},
		{"alltoall shadow priority", "/v1/alltoall", `{"p":32,"w":1000,"st":40,"so":200,"priority":"shadow"}`, 200, `"r":`},
		{"bad JSON", "/v1/alltoall", `{"p":32,`, 400, "decoding request"},
		{"unknown field", "/v1/alltoall", `{"p":32,"w":1000,"so":200,"bogus":1}`, 400, "bogus"},
		{"trailing garbage", "/v1/alltoall", validAllToAll + ` {"again":true}`, 400, "trailing data"},
		{"infinite parameter", "/v1/alltoall", `{"p":32,"w":1e999,"so":200}`, 400, "decoding request"},
		{"NaN literal", "/v1/alltoall", `{"p":32,"w":NaN,"so":200}`, 400, "decoding request"},
		{"zero So rejected by Validate", "/v1/alltoall", `{"p":32,"w":1000}`, 400, "handlers must take positive time"},
		{"negative W rejected by Validate", "/v1/alltoall", `{"p":32,"w":-5,"so":200}`, 400, "negative W"},
		{"P too small", "/v1/alltoall", `{"p":1,"w":1000,"so":200}`, 400, "at least 2 processors"},
		{"bad priority", "/v1/alltoall", `{"p":32,"w":1000,"so":200,"priority":"fifo"}`, 400, "unknown priority"},
		{"negative n", "/v1/alltoall", `{"p":32,"w":1000,"so":200,"n":-1}`, 400, "negative request count"},
		{"workpile ok", "/v1/workpile", `{"p":32,"ps":8,"w":1500,"st":40,"so":131}`, 200, `"x":`},
		{"workpile optimal split", "/v1/workpile", `{"p":32,"ps":0,"w":1500,"st":40,"so":131}`, 200, `"optimal_servers":`},
		{"workpile bad split", "/v1/workpile", `{"p":32,"ps":40,"w":1500,"so":131}`, 400, "Ps"},
		{"bounds ok", "/v1/bounds", `{"p":32,"ps":8,"w":1500,"st":40,"so":131}`, 200, `"server_bound":`},
		{"general ok", "/v1/general", `{"p":4,"w":[1000,1000,1000,1000],"v":[[0,0.3333333333,0.3333333333,0.3333333333],[0.3333333333,0,0.3333333333,0.3333333333],[0.3333333333,0.3333333333,0,0.3333333333],[0.3333333333,0.3333333333,0.3333333333,0]],"st":40,"so":[200],"c2":0}`, 200, `"total_x":`},
		{"general shape mismatch", "/v1/general", `{"p":4,"w":[1000],"v":[[0]],"st":40,"so":[200]}`, 400, "len(W)"},
		{"fit too few observations", "/v1/fit", `{"p":32,"c2":0,"observations":[{"w":0,"r":900},{"w":64,"r":960}]}`, 400, "at least 3"},
		{"sweep ok", "/v1/sweep", `{"points":[` + validAllToAll + `,{"p":32,"w":2000,"st":40,"so":200,"c2":0}],"jobs":2}`, 200, `"results":`},
		{"sweep empty", "/v1/sweep", `{"points":[]}`, 400, "at least one point"},
		{"sweep bad point", "/v1/sweep", `{"points":[{"p":1,"w":10,"so":1}]}`, 400, "point 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, c.status, body)
			}
			if !strings.Contains(body, c.wantInBody) {
				t.Errorf("body %q missing %q", body, c.wantInBody)
			}
		})
	}
}

// TestSolveErrorTaxonomy pins the error classification: admission
// rejections keep their status and Retry-After, context expiry is a
// retryable 503, and everything else is a model infeasibility (422).
func TestSolveErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter string
	}{
		{"shed queue full", &shedError{status: 503, retryAfter: 2, reason: "queue full"}, 503, "2"},
		{"shed queue wait", &shedError{status: 429, retryAfter: 1, reason: "queue wait exceeded"}, 429, "1"},
		{"wrapped shed", fmt.Errorf("solving: %w", &shedError{status: 429, retryAfter: 3, reason: "x"}), 429, "3"},
		{"deadline", context.DeadlineExceeded, 503, "1"},
		{"canceled", context.Canceled, 503, "1"},
		{"model infeasible", errors.New("core: saturated"), 422, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeSolveError(rec, c.err)
			if rec.Code != c.status {
				t.Errorf("status = %d, want %d", rec.Code, c.status)
			}
			if got := rec.Header().Get("Retry-After"); got != c.retryAfter {
				t.Errorf("Retry-After = %q, want %q", got, c.retryAfter)
			}
			var body errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
				t.Errorf("error envelope missing: %s (%v)", rec.Body.Bytes(), err)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/alltoall")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
}

// TestSweepPointCap: a sweep larger than the configured cap is a 400,
// not a giant fan-out.
func TestSweepPointCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSweepPoints: 2})
	points := make([]string, 3)
	for i := range points {
		points[i] = fmt.Sprintf(`{"p":32,"w":%d,"st":40,"so":200}`, 100+i)
	}
	resp, body := post(t, ts.URL+"/v1/sweep", `{"points":[`+strings.Join(points, ",")+`]}`)
	if resp.StatusCode != 400 || !strings.Contains(body, "cap") {
		t.Fatalf("status %d body %s, want 400 mentioning the cap", resp.StatusCode, body)
	}
}

// TestCacheHitBytesIdentical: the cached response is byte-for-byte the
// cold response; the outcome travels only in the X-Lopc-Cache header.
func TestCacheHitBytesIdentical(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cold, coldBody := post(t, ts.URL+"/v1/alltoall", validAllToAll)
	hit, hitBody := post(t, ts.URL+"/v1/alltoall", validAllToAll)
	if cold.StatusCode != 200 || hit.StatusCode != 200 {
		t.Fatalf("statuses %d/%d, want 200/200", cold.StatusCode, hit.StatusCode)
	}
	if got := cold.Header.Get("X-Lopc-Cache"); got != "miss" {
		t.Errorf("first solve cache header = %q, want miss", got)
	}
	if got := hit.Header.Get("X-Lopc-Cache"); got != "hit" {
		t.Errorf("second solve cache header = %q, want hit", got)
	}
	if coldBody != hitBody {
		t.Errorf("cache hit bytes differ from cold solve:\ncold: %s\nhit:  %s", coldBody, hitBody)
	}
}

// TestCacheQuantization: parameters that differ below the quantization
// resolution share one cache entry.
func TestCacheQuantization(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	_, _ = post(t, ts.URL+"/v1/alltoall", validAllToAll)
	resp, _ := post(t, ts.URL+"/v1/alltoall", `{"p":32,"w":1000.0000000001,"st":40,"so":200,"c2":0}`)
	if got := resp.Header.Get("X-Lopc-Cache"); got != "hit" {
		t.Errorf("sub-resolution W change: cache = %q, want hit", got)
	}
	resp, _ = post(t, ts.URL+"/v1/alltoall", `{"p":32,"w":1001,"st":40,"so":200,"c2":0}`)
	if got := resp.Header.Get("X-Lopc-Cache"); got != "miss" {
		t.Errorf("real W change: cache = %q, want miss", got)
	}
}

// TestSweepUsesCache: sweep points land in the same cache as single
// solves, so a sweep over an already-solved point reuses it.
func TestSweepUsesCache(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	_, single := post(t, ts.URL+"/v1/alltoall", validAllToAll)
	resp, body := post(t, ts.URL+"/v1/sweep", `{"points":[`+validAllToAll+`]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sweep struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &sweep); err != nil {
		t.Fatalf("sweep response: %v", err)
	}
	if len(sweep.Results) != 1 {
		t.Fatalf("%d results, want 1", len(sweep.Results))
	}
	if got, want := string(sweep.Results[0]), strings.TrimSuffix(single, "\n"); got != want {
		t.Errorf("sweep result differs from single solve:\nsweep:  %s\nsingle: %s", got, want)
	}
	if hits := s.met.cacheHits.Value(); hits == 0 {
		t.Error("sweep over a cached point recorded no cache hit")
	}
}

// TestMetricsDocument: /metrics is one JSON document carrying the
// counters the test can force deterministically.
func TestMetricsDocument(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	_, _ = post(t, ts.URL+"/v1/alltoall", validAllToAll)
	_, _ = post(t, ts.URL+"/v1/alltoall", validAllToAll)
	_, _ = post(t, ts.URL+"/v1/alltoall", `{"bad json`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	var doc metricsJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, data)
	}
	if doc.Cache.Hits != 1 || doc.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", doc.Cache.Hits, doc.Cache.Misses)
	}
	if doc.Cache.Size != 1 {
		t.Errorf("cache size = %d, want 1", doc.Cache.Size)
	}
	var a2a *routeJSON
	for i := range doc.Routes {
		if doc.Routes[i].Route == "/v1/alltoall" {
			a2a = &doc.Routes[i]
		}
	}
	if a2a == nil {
		t.Fatalf("metrics missing /v1/alltoall route: %s", data)
	}
	if a2a.Requests != 3 || a2a.Errors != 1 {
		t.Errorf("alltoall requests/errors = %d/%d, want 3/1", a2a.Requests, a2a.Errors)
	}
	if a2a.LatencyUS.Count != 3 {
		t.Errorf("latency count = %d, want 3", a2a.LatencyUS.Count)
	}
	if doc.InFlight != 0 || doc.QueueDepth != 0 {
		t.Errorf("idle gauges in_flight=%d queue_depth=%d, want 0/0", doc.InFlight, doc.QueueDepth)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	s.StartDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", resp.StatusCode)
	}
}

// TestGracefulDrain: draining waits for in-flight requests on the
// injected clock, rejects new work, and completes once the last
// request finishes.
func TestGracefulDrain(t *testing.T) {
	s, ts, fake := newTestServer(t, Config{Workers: 1, QueueDepth: 8, QueueWait: time.Minute})

	// Occupy the single solver slot so an incoming request stays in
	// flight (queued inside admission) for as long as the test wants.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatalf("occupying worker slot: %v", err)
	}

	reqDone := make(chan string, 1)
	go func() {
		_, body := postNoT(ts.URL+"/v1/alltoall", validAllToAll)
		reqDone <- body
	}()
	waitFor(t, func() bool { return s.met.queueDepth.Value() == 1 })

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(time.Hour) }()
	waitFor(t, func() bool { return s.draining.Load() })

	// New work is rejected while draining.
	resp, _ := post(t, ts.URL+"/v1/alltoall", validAllToAll)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain = %d, want 503", resp.StatusCode)
	}
	select {
	case <-drained:
		t.Fatal("drain completed with a request still in flight")
	default:
	}

	release() // let the in-flight request solve
	if body := <-reqDone; !strings.Contains(body, `"r":`) {
		t.Errorf("in-flight request failed during drain: %s", body)
	}
	select {
	case ok := <-drained:
		if !ok {
			t.Error("drain reported timeout despite all requests finishing")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete after the last request finished")
	}
	_ = fake
}

// TestDrainTimeout: a drain that cannot finish reports failure once
// the fake clock passes the budget.
func TestDrainTimeout(t *testing.T) {
	s, ts, fake := newTestServer(t, Config{Workers: 1, QueueDepth: 8, QueueWait: time.Hour})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan string, 1)
	go func() {
		_, body := postNoT(ts.URL+"/v1/alltoall", validAllToAll)
		reqDone <- body
	}()
	waitFor(t, func() bool { return s.met.queueDepth.Value() == 1 })

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(time.Minute) }()
	waitFor(t, func() bool { return s.draining.Load() })
	fake.Advance(2 * time.Minute)
	select {
	case ok := <-drained:
		if ok {
			t.Error("drain reported success with a request still in flight")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not observe its fake-clock timeout")
	}
	release()
	<-reqDone
}

// postNoT is post for goroutines that must not call t.Fatal.
func postNoT(url, body string) (*http.Response, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, "error: " + err.Error()
	}
	data, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return resp, string(data)
}

// waitFor polls cond (real time — it synchronizes goroutine progress,
// not clock behaviour).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentClientsRaceClean hammers the server with 64 concurrent
// clients across every endpoint; run under -race this is the
// acceptance stress test. Every response must be a known status.
func TestConcurrentClientsRaceClean(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Workers: 4, QueueDepth: 16, QueueWait: 50 * time.Millisecond,
		Clock: clock.System,
	})
	const clients = 64
	const perClient = 12
	bodies := []struct{ path, body string }{
		{"/v1/alltoall", validAllToAll},
		{"/v1/alltoall", `{"p":64,"w":500,"st":40,"so":150,"c2":1}`},
		{"/v1/workpile", `{"p":32,"ps":8,"w":1500,"st":40,"so":131}`},
		{"/v1/bounds", `{"p":32,"ps":8,"w":1500,"st":40,"so":131}`},
		{"/v1/sweep", `{"points":[` + validAllToAll + `,{"p":32,"w":123,"st":40,"so":200}],"jobs":2}`},
		{"/v1/fit", `{"p":16,"c2":0,"observations":[{"w":0,"r":900},{"w":512,"r":1400},{"w":2048,"r":2950}]}`},
	}
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := bodies[(c+i)%len(bodies)]
				resp, body := postNoT(ts.URL+req.path, req.body)
				if resp == nil {
					errs <- body
					continue
				}
				switch resp.StatusCode {
				case 200, 429, 503:
				default:
					errs <- fmt.Sprintf("%s: status %d: %s", req.path, resp.StatusCode, body)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// admission is the server's bounded solver pool: at most workers solves
// run at once, at most queueDepth requests wait for a slot, and no
// request waits longer than queueWait (or its own context deadline).
// Everything past those limits is shed immediately with a Retry-After
// hint — the server applies the paper's own lesson that letting queues
// grow without bound only converts throughput into latency.
type admission struct {
	sem        chan struct{} // buffered to the worker count
	queueDepth int
	queueWait  time.Duration
	solveEst   time.Duration // rough per-solve service time, for Retry-After
	clk        clock.Waiter
	met        *metrics
}

// shedError reports an admission rejection: the HTTP status to return
// and the Retry-After hint in whole seconds.
type shedError struct {
	status     int
	retryAfter int
	reason     string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("admission: %s (retry after %ds)", e.reason, e.retryAfter)
}

func newAdmission(workers, queueDepth int, queueWait, solveEst time.Duration, clk clock.Waiter, met *metrics) *admission {
	return &admission{
		sem:        make(chan struct{}, workers),
		queueDepth: queueDepth,
		queueWait:  queueWait,
		solveEst:   solveEst,
		clk:        clk,
		met:        met,
	}
}

// retryAfter estimates when a slot is likely to free up: the current
// backlog times the per-solve estimate, divided across the pool,
// rounded up to a whole second (the Retry-After unit).
func (a *admission) retryAfter() int {
	backlog := a.met.queueDepth.Value() + int64(len(a.sem))
	est := time.Duration(backlog+1) * a.solveEst / time.Duration(cap(a.sem))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// acquire claims a solver slot, waiting up to queueWait (and no longer
// than ctx allows). On success it returns a release function; on
// rejection a *shedError carrying the HTTP status. The queue-depth
// gauge tracks waiters; shed counters classify every rejection. Every
// admitted request records its queue wait — zero on the fast path —
// into the queue-wait histogram and the request's timing carrier.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	start := a.clk.Now()
	grant := func() func() {
		// Fractional microseconds: a sub-µs wait must not round to zero,
		// or the calibrator's windows would lose their timing signal on
		// fast machines.
		us := float64(a.clk.Now().Sub(start)) / float64(time.Microsecond)
		if us < 0 {
			us = 0
		}
		a.met.queueWait.Observe(us)
		if t := timingFrom(ctx); t != nil {
			t.waitUS += us
		}
		return func() { <-a.sem }
	}
	select {
	case a.sem <- struct{}{}:
		return grant(), nil
	default:
	}
	if depth := a.met.queueDepth.Add(1); depth > int64(a.queueDepth) {
		a.met.queueDepth.Add(-1)
		a.met.shedQueueFull.Add(1)
		return nil, &shedError{status: 503, retryAfter: a.retryAfter(), reason: "queue full"}
	}
	defer a.met.queueDepth.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return grant(), nil
	case <-ctx.Done():
		a.met.shedDeadline.Add(1)
		return nil, &shedError{status: 429, retryAfter: a.retryAfter(), reason: "deadline expired while queued"}
	case <-a.clk.After(a.queueWait):
		a.met.shedTimeout.Add(1)
		return nil, &shedError{status: 429, retryAfter: a.retryAfter(), reason: "queue wait exceeded"}
	}
}

// RecommendWorkers sizes the solver pool with the repository's own
// work-pile model (Eq. 6.8): the service is a work-pile in which each
// expected concurrent client "computes" for the think time between its
// requests and solver workers are the servers handing out results, so
// the optimal worker count is the paper's optimal server allocation
// Ps* = P(1+q)So / (W + 2St + (3+2q)So) with P = clients + workers
// folded into the client population, W = think, So = solve, St ≈ 0.
// Handler variability is taken as exponential (C² = 1): solve times
// vary point-to-point with how fast the fixed point converges.
//
// It returns the real-valued optimum and the best integral worker
// count (the throughput-maximizing rounding, clamped to [1, clients−1]
// like the paper's allocation).
func RecommendWorkers(clients int, think, solve time.Duration) (psStar float64, workers int, err error) {
	if clients < 2 {
		return 0, 0, fmt.Errorf("serve: sizing needs at least 2 expected clients, got %d", clients)
	}
	if think < 0 || solve <= 0 {
		return 0, 0, fmt.Errorf("serve: sizing needs think >= 0 and solve > 0 (got think=%v solve=%v)", think, solve)
	}
	p := core.ClientServerParams{
		P:  clients,
		Ps: 1,
		W:  float64(think.Microseconds()),
		St: 0,
		So: float64(solve.Microseconds()),
		C2: 1,
	}
	if p.So <= 0 {
		p.So = 1 // sub-microsecond solve estimates still need positive So
	}
	workers, err = core.OptimalServersInt(p)
	if err != nil {
		return 0, 0, err
	}
	return core.OptimalServers(p), workers, nil
}

package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/calib"
	"repro/internal/clock"
)

// warmEstimator builds a fake-clock estimator pre-fed with exactly one
// window of deterministic synthetic traffic, so the endpoints under
// test see a ready calibrator without real sleeping.
func warmEstimator(t *testing.T) *calib.Estimator {
	t.Helper()
	const window = 64
	clk := clock.NewFake(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	e := calib.New(calib.Config{P: 16, Ps: 4, Window: window, Clock: clk})
	for i := 0; i < window; i++ {
		clk.Advance(2000 * time.Microsecond)
		e.ObserveWait(100)
		e.ObserveOverhead(240)
		e.ObserveService(400)
	}
	if _, ok := e.Params(); !ok {
		t.Fatal("warm estimator did not become ready")
	}
	return e
}

// TestCalibrationEndpoint: /v1/calibration serves the estimator's
// snapshot, GET-only.
func TestCalibrationEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CalibEstimator: warmEstimator(t)})

	resp, err := http.Get(ts.URL + "/v1/calibration")
	if err != nil {
		t.Fatal(err)
	}
	var snap calib.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !snap.Ready || snap.Windows != 1 || snap.P != 16 || snap.Ps != 4 {
		t.Errorf("snapshot = %+v, want ready with one window over P=16 Ps=4", snap)
	}
	if snap.Fit.So != 400 || snap.Fit.C2 != 0 {
		t.Errorf("fit = %+v, want the deterministic So=400 C2=0 traffic", snap.Fit)
	}

	if resp, body := post(t, ts.URL+"/v1/calibration", "{}"); resp.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405; body %s", resp.StatusCode, body)
	}
}

// TestWhatifEndpoint drives the capacity-question surface over a warmed
// estimator: scenario solves at the live fit, validation failures, and
// method enforcement.
func TestWhatifEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CalibEstimator: warmEstimator(t)})

	resp, body := post(t, ts.URL+"/v1/whatif", `{"add_servers":4}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var out struct {
		P        int `json:"p"`
		Baseline struct {
			Ps int     `json:"ps"`
			X  float64 `json:"x_per_us"`
		} `json:"baseline"`
		Scenario struct {
			Ps int     `json:"ps"`
			X  float64 `json:"x_per_us"`
		} `json:"scenario"`
		SpeedupX     float64 `json:"speedup_x"`
		LatencyRatio float64 `json:"latency_ratio"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if out.P != 16 || out.Baseline.Ps != 4 || out.Scenario.Ps != 8 {
		t.Errorf("population split = %+v, want P=16, 4 -> 8 servers", out)
	}
	if !(out.Baseline.X > 0) || !(out.Scenario.X > 0) {
		t.Errorf("non-positive throughput: %+v", out)
	}
	// The scenario reallocates the fixed population: four more servers
	// is four fewer clients. Under this fit's low contention that costs
	// throughput without helping server response much — the model's
	// answer, not a bug (Eq. 6.8 exists precisely to pick the balance).
	if out.SpeedupX >= 1 || out.LatencyRatio > 1.001 {
		t.Errorf("low-contention server add: speedup %v latency ratio %v, want speedup < 1, latency <= 1",
			out.SpeedupX, out.LatencyRatio)
	}

	cases := []struct {
		name, body string
		status     int
		want       string
	}{
		{"absolute servers", `{"servers":2}`, 200, `"ps":2`},
		{"scale think", `{"scale_w":0.5}`, 200, `"scenario"`},
		{"both knobs", `{"servers":2,"add_servers":1}`, 400, "not both"},
		{"too many servers", `{"servers":16}`, 400, "P=16, got 16"},
		{"negative delta below 1", `{"add_servers":-4}`, 400, "got 0"},
		{"bad scale", `{"scale_w":-1}`, 400, "scale_w"},
		{"unknown field", `{"workers":2}`, 400, "workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/whatif", c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, c.status, body)
			}
			if !strings.Contains(body, c.want) {
				t.Errorf("body %q missing %q", body, c.want)
			}
		})
	}

	if resp, err := http.Get(ts.URL + "/v1/whatif"); err != nil {
		t.Fatal(err)
	} else if _ = resp.Body.Close(); resp.StatusCode != 405 {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestWhatifNotReady: before the first traffic window lands, the
// endpoint answers 503 with a Retry-After hint rather than guessing.
func TestWhatifNotReady(t *testing.T) {
	clk := clock.NewFake(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	cold := calib.New(calib.Config{P: 16, Ps: 4, Clock: clk})
	_, ts, _ := newTestServer(t, Config{CalibEstimator: cold})
	resp, body := post(t, ts.URL+"/v1/whatif", `{"add_servers":1}`)
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("status = %d, Retry-After %q, want 503 with a hint; body %s",
			resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
}

// TestCalibrationDisabled: without the flag the routes do not exist.
func TestCalibrationDisabled(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	if s.Calibrator() != nil {
		t.Error("calibrator present without Calibration set")
	}
	resp, err := http.Get(ts.URL + "/v1/calibration")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestCalibrationLiveTap: with Calibration on, a solved request feeds
// one sample into each calibration stream through the histogram taps,
// and a cache hit — which never occupies a solver slot — feeds none.
func TestCalibrationLiveTap(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Calibration: true})
	est := s.Calibrator()
	if est == nil {
		t.Fatal("Calibration did not build an estimator")
	}
	if p, ps := est.Population(); ps != 8 || p != 8+64 {
		t.Errorf("population = (%d, %d), want defaults (72, 8)", p, ps)
	}

	if resp, body := post(t, ts.URL+"/v1/alltoall", validAllToAll); resp.StatusCode != 200 {
		t.Fatalf("solve failed: %d %s", resp.StatusCode, body)
	}
	got := est.Snapshot().Samples
	if got != (calib.Samples{Service: 1, Wait: 1, Overhead: 1}) {
		t.Fatalf("samples after cold solve = %+v, want one per stream", got)
	}

	if resp, body := post(t, ts.URL+"/v1/alltoall", validAllToAll); resp.StatusCode != 200 {
		t.Fatalf("cached solve failed: %d %s", resp.StatusCode, body)
	}
	if got := est.Snapshot().Samples; got != (calib.Samples{Service: 1, Wait: 1, Overhead: 1}) {
		t.Errorf("samples after cache hit = %+v, want unchanged: hits are not server visits", got)
	}
}

package serve

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fit"
)

// Cache keys are the canonical rendering of a solve's parameter tuple:
// the endpoint name followed by every parameter in a fixed order, each
// float quantized to 9 significant decimal digits first. Quantization
// folds floats that differ only in sub-model-resolution noise (a client
// computing W = 1000.0000000001 from its own arithmetic) onto one key,
// while 9 digits is far finer than the model's own fixed-point
// tolerance, so no two solves that quantize together ever produce
// observably different results.

// quantize rounds v to 9 significant decimal digits. Zero, NaN and Inf
// pass through unchanged (NaN/Inf never reach keying: parameters are
// validated first).
func quantize(v float64) float64 {
	//lopc:allow floateq zero is an exact sentinel: only literal 0 has no magnitude to take the log of
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	exp := math.Floor(math.Log10(math.Abs(v)))
	scale := math.Pow(10, 8-exp)
	q := math.Round(v*scale) / scale
	//lopc:allow floateq exactly-zero or infinite q means the scaling over/underflowed at the float64 edges; keep v
	if q == 0 || math.IsInf(q, 0) {
		return v
	}
	return q
}

// keyWriter accumulates one canonical key.
type keyWriter struct{ b strings.Builder }

func (k *keyWriter) str(s string)  { k.b.WriteByte('|'); k.b.WriteString(s) }
func (k *keyWriter) num(v float64) { k.str(strconv.FormatFloat(quantize(v), 'g', -1, 64)) }
func (k *keyWriter) int(v int)     { k.str(strconv.Itoa(v)) }
func (k *keyWriter) bool(v bool)   { k.str(strconv.FormatBool(v)) }
func (k *keyWriter) nums(vs []float64) {
	k.b.WriteByte('|')
	k.b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			k.b.WriteByte(',')
		}
		k.b.WriteString(strconv.FormatFloat(quantize(v), 'g', -1, 64))
	}
	k.b.WriteByte(']')
}

func newKey(endpoint string) *keyWriter {
	k := &keyWriter{}
	k.b.WriteString(endpoint)
	return k
}

func (k *keyWriter) String() string { return k.b.String() }

func keyAllToAll(p core.Params, n int) string {
	k := newKey("alltoall")
	k.int(p.P)
	k.num(p.W)
	k.num(p.St)
	k.num(p.So)
	k.num(p.C2)
	k.bool(p.ProtocolProcessor)
	k.int(int(p.Priority))
	k.int(n)
	return k.String()
}

func keyWorkpile(p core.ClientServerParams) string {
	k := newKey("workpile")
	k.int(p.P)
	k.int(p.Ps)
	k.num(p.W)
	k.num(p.St)
	k.num(p.So)
	k.num(p.C2)
	return k.String()
}

func keyBounds(p core.ClientServerParams) string {
	return "bounds" + keyWorkpile(p)
}

func keyGeneral(p core.GeneralParams) string {
	k := newKey("general")
	k.int(p.P)
	k.nums(p.W)
	for _, row := range p.V {
		k.nums(row)
	}
	k.num(p.St)
	k.nums(p.So)
	k.num(p.C2)
	k.bool(p.ProtocolProcessor)
	return k.String()
}

func keyFit(obs []fit.Observation, p int, c2 float64) string {
	k := newKey("fit")
	k.int(p)
	k.num(c2)
	for _, o := range obs {
		k.num(o.W)
		k.num(o.R)
		k.num(o.Rq)
	}
	return k.String()
}

package serve

import (
	"fmt"
	"math"
	"net/http"

	"repro/internal/core"
	"repro/internal/fit"
)

// The calibration surface closes the model-in-the-loop feedback edge:
// /v1/calibration reports what the online estimator has learned from
// this server's own traffic, and /v1/whatif answers capacity questions
// ("what if I added two workers?") by re-solving the work-pile model at
// the live fitted parameters instead of hand-supplied ones. Both routes
// exist only when Config.Calibration (or an injected estimator) is set.

// handleCalibration serves the estimator's full state: the blended
// (W, St, So, C²) fit, window statistics, CUSUM drift state, and
// per-stream sample counts.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		_ = writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	_ = writeJSON(w, http.StatusOK, s.calib.Snapshot())
}

// whatifRequest describes a hypothetical deployment change. Exactly one
// of servers (absolute) and add_servers (delta) may move the pool size.
// The scenario holds the closed population P fixed and reallocates it
// between clients and servers — the paper's Chapter 6 question ("how
// many of these processors should serve?"), so under low contention
// adding servers costs throughput: each new server is one fewer
// client. scale_w scales the fitted think time (1 or omitted keeps
// it), which models offered-load changes: halving W doubles how often
// each client comes back.
type whatifRequest struct {
	Servers    int     `json:"servers"`
	AddServers int     `json:"add_servers"`
	ScaleW     float64 `json:"scale_w"`
}

// whatifPoint is one solved operating point.
type whatifPoint struct {
	Ps int `json:"ps"`
	// WUS is the think time the point was solved at (microseconds).
	WUS float64 `json:"w_us"`
	// X is requests per microsecond; R and Rs the cycle and server
	// response times (Eqs. 6.7, 6.5); U the per-server utilization.
	X   float64 `json:"x_per_us"`
	RUS float64 `json:"r_us"`
	Rs  float64 `json:"rs_us"`
	U   float64 `json:"utilization"`
}

type whatifResponse struct {
	// P is the modeled closed population; Fit the live parameterization
	// both points were solved with.
	P   int           `json:"p"`
	Fit fit.WindowFit `json:"fit"`
	// Baseline is today's configuration at the fitted parameters;
	// Scenario is the hypothetical.
	Baseline whatifPoint `json:"baseline"`
	Scenario whatifPoint `json:"scenario"`
	// SpeedupX is scenario throughput over baseline throughput;
	// LatencyRatio is scenario server response over baseline's.
	SpeedupX     float64 `json:"speedup_x"`
	LatencyRatio float64 `json:"latency_ratio"`
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req whatifRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	f, ok := s.calib.Params()
	if !ok {
		// No traffic window has completed yet: the model has nothing to
		// extrapolate from. Retry once a window's worth of traffic lands.
		w.Header().Set("Retry-After", "1")
		_ = writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "calibration not ready: no traffic window has been fit yet"})
		return
	}
	p, ps := s.calib.Population()

	if req.Servers != 0 && req.AddServers != 0 {
		badRequest(w, fmt.Errorf("give either servers (absolute) or add_servers (delta), not both"))
		return
	}
	ps2 := ps + req.AddServers
	if req.Servers != 0 {
		ps2 = req.Servers
	}
	if ps2 < 1 || ps2 >= p {
		badRequest(w, fmt.Errorf("scenario needs 1 <= servers < P=%d, got %d", p, ps2))
		return
	}
	scale := req.ScaleW
	//lopc:allow floateq exact-zero tests against the unset-field JSON default, not a computed value
	if scale == 0 {
		scale = 1
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		badRequest(w, fmt.Errorf("scale_w = %v must be positive and finite", req.ScaleW))
		return
	}

	solve := func(ps int, wt float64) (whatifPoint, error) {
		res, err := core.ClientServerObserved(core.ClientServerParams{
			P: p, Ps: ps, W: wt, St: f.St, So: f.So, C2: f.C2,
		}, s.conv)
		if err != nil {
			return whatifPoint{}, err
		}
		return whatifPoint{Ps: ps, WUS: wt, X: res.X, RUS: res.R, Rs: res.Rs, U: res.Us}, nil
	}
	base, err := solve(ps, f.W)
	if err != nil {
		writeSolveError(w, fmt.Errorf("baseline: %w", err))
		return
	}
	scen, err := solve(ps2, f.W*scale)
	if err != nil {
		writeSolveError(w, fmt.Errorf("scenario: %w", err))
		return
	}
	_ = writeJSON(w, http.StatusOK, whatifResponse{
		P: p, Fit: f,
		Baseline:     base,
		Scenario:     scen,
		SpeedupX:     scen.X / base.X,
		LatencyRatio: scen.Rs / base.Rs,
	})
}

package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestAdmission(workers, queueDepth int, queueWait time.Duration) (*admission, *clock.Fake, *metrics) {
	fake := clock.NewFake(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	met := newMetrics(fake.Now(), nil)
	return newAdmission(workers, queueDepth, queueWait, time.Millisecond, fake, met), fake, met
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedQueueFull: with the pool busy and the queue at
// capacity, the next request is shed immediately with 503.
func TestAdmissionShedQueueFull(t *testing.T) {
	a, _, met := newTestAdmission(1, 1, time.Minute)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	queued := make(chan error, 1)
	go func() {
		rel, err := a.acquire(context.Background())
		if rel != nil {
			defer rel()
		}
		queued <- err
	}()
	waitForCond(t, func() bool { return met.queueDepth.Value() == 1 })

	_, err = a.acquire(context.Background())
	shed, ok := err.(*shedError)
	if !ok {
		t.Fatalf("overflow acquire: %v, want *shedError", err)
	}
	if shed.status != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", shed.status)
	}
	if shed.retryAfter < 1 {
		t.Errorf("Retry-After = %d, want >= 1", shed.retryAfter)
	}
	if met.shedQueueFull.Value() != 1 {
		t.Errorf("shedQueueFull = %d, want 1", met.shedQueueFull.Value())
	}

	release() // hand the slot to the queued waiter
	if err := <-queued; err != nil {
		t.Errorf("queued acquire: %v", err)
	}
	if met.queueDepth.Value() != 0 {
		t.Errorf("queue depth = %d after settle, want 0", met.queueDepth.Value())
	}
}

// TestAdmissionShedQueueWait: a queued request is shed with 429 once
// the fake clock passes the queue-wait cap — no real time elapses.
func TestAdmissionShedQueueWait(t *testing.T) {
	a, fake, met := newTestAdmission(1, 4, 30*time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	queued := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		queued <- err
	}()
	waitForCond(t, func() bool { return met.queueDepth.Value() == 1 })

	fake.Advance(29 * time.Second)
	select {
	case err := <-queued:
		t.Fatalf("shed before the wait cap: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	fake.Advance(2 * time.Second)
	err = <-queued
	shed, ok := err.(*shedError)
	if !ok || shed.status != http.StatusTooManyRequests {
		t.Fatalf("queued acquire after wait cap: %v, want 429 shedError", err)
	}
	if met.shedTimeout.Value() != 1 {
		t.Errorf("shedTimeout = %d, want 1", met.shedTimeout.Value())
	}
}

// TestAdmissionShedDeadline: a queued request whose own context expires
// is shed with 429 and counted separately from queue-wait sheds.
func TestAdmissionShedDeadline(t *testing.T) {
	a, _, met := newTestAdmission(1, 4, time.Hour)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		queued <- err
	}()
	waitForCond(t, func() bool { return met.queueDepth.Value() == 1 })
	cancel()
	err = <-queued
	shed, ok := err.(*shedError)
	if !ok || shed.status != http.StatusTooManyRequests {
		t.Fatalf("canceled acquire: %v, want 429 shedError", err)
	}
	if met.shedDeadline.Value() != 1 {
		t.Errorf("shedDeadline = %d, want 1", met.shedDeadline.Value())
	}
}

// TestShedUnderLoadHTTP drives shedding through the full HTTP stack on
// a fake clock: pool of one (held by the test), queue of one.
func TestShedUnderLoadHTTP(t *testing.T) {
	s, ts, fake := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, QueueWait: time.Minute, RequestTimeout: time.Hour,
	})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	queuedResp := make(chan *http.Response, 1)
	go func() {
		resp, _ := postNoT(ts.URL+"/v1/alltoall", validAllToAll)
		queuedResp <- resp
	}()
	waitFor(t, func() bool { return s.met.queueDepth.Value() == 1 })

	// Queue full: the second concurrent request sheds with 503 now.
	resp, _ := post(t, ts.URL+"/v1/alltoall", `{"p":32,"w":777,"st":40,"so":200}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	// The queued request sheds with 429 when fake time passes the cap.
	fake.Advance(2 * time.Minute)
	qr := <-queuedResp
	if qr == nil {
		t.Fatal("queued request failed at transport level")
	}
	if qr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request = %d, want 429", qr.StatusCode)
	}
	if qr.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// With the slot back, the pool admits again (cache must not have
	// memoized the shed request's params).
	release()
	resp, _ = post(t, ts.URL+"/v1/alltoall", validAllToAll)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed request = %d, want 200", resp.StatusCode)
	}
}

// TestRecommendWorkers sanity-checks the Eq. 6.8 sizing helper: the
// recommendation is a feasible allocation that grows with the client
// population.
func TestRecommendWorkers(t *testing.T) {
	if _, _, err := RecommendWorkers(1, 0, time.Millisecond); err == nil {
		t.Error("clients=1 accepted")
	}
	if _, _, err := RecommendWorkers(64, 0, 0); err == nil {
		t.Error("solve=0 accepted")
	}
	psStar, workers, err := RecommendWorkers(64, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if workers < 1 || workers >= 64 {
		t.Errorf("workers = %d, want a feasible 1 <= Ps < P allocation", workers)
	}
	if psStar <= 0 {
		t.Errorf("Ps* = %v, want > 0", psStar)
	}
	// Saturating clients contend hard: the pool should be a large
	// fraction of the population, and more clients need more workers.
	_, more, err := RecommendWorkers(256, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if more <= workers {
		t.Errorf("workers(256 clients) = %d not above workers(64) = %d", more, workers)
	}
	// Long think times relax the pool: same population, mostly idle.
	_, idle, err := RecommendWorkers(64, time.Second, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if idle >= workers {
		t.Errorf("workers(1s think) = %d not below workers(saturating) = %d", idle, workers)
	}
}

package serve

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// updateGolden regenerates testdata goldens in place:
//
//	go test ./internal/serve -run TestMetricsJSONGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// goldenTraffic drives a fixed request sequence through a server on a
// fake clock: a cold solve, the same point again (cache hit), a
// malformed body (a 400 on the route's error counter), and one workpile
// solve. Every counter, gauge and histogram bucket the sequence touches
// is deterministic, so the /metrics document must be byte-stable.
func goldenTraffic(t *testing.T) *Server {
	t.Helper()
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	s := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 8, Clock: fake})
	do := func(method, path, body string) {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s %s: unexpected status %d: %s", method, path, rec.Code, rec.Body.String())
		}
	}
	do(http.MethodPost, "/v1/alltoall", `{"p":32,"w":1000,"st":40,"so":200}`)
	do(http.MethodPost, "/v1/alltoall", `{"p":32,"w":1000,"st":40,"so":200}`)
	do(http.MethodPost, "/v1/alltoall", `{"p":32,`) // malformed: 400
	do(http.MethodPost, "/v1/workpile", `{"p":32,"ps":4,"w":1000,"st":40,"so":200}`)
	return s
}

// TestMetricsJSONGolden pins the exact bytes of the JSON /metrics
// document: the refactor onto the shared internal/obs registry must not
// change a single byte of the legacy exposition.
func TestMetricsJSONGolden(t *testing.T) {
	s := goldenTraffic(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	got := rec.Body.Bytes()
	path := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("/metrics JSON drifted from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/trace"
)

// get performs one GET against the server with optional Accept header.
func get(t *testing.T, s *Server, path, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestMetricsContentNegotiation: JSON stays the default exposition
// (scripts and the CI smoke test send no Accept header), Prometheus
// text is selected by Accept: text/plain or ?format=prometheus.
func TestMetricsContentNegotiation(t *testing.T) {
	s := goldenTraffic(t)

	for _, accept := range []string{"", "*/*", "application/json"} {
		rec := get(t, s, "/metrics", accept)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("Accept %q: Content-Type = %q, want application/json", accept, ct)
		}
		if !strings.HasPrefix(rec.Body.String(), "{") {
			t.Errorf("Accept %q: body is not a JSON document", accept)
		}
	}

	for _, tc := range []struct{ path, accept string }{
		{"/metrics", "text/plain"},
		{"/metrics", "application/openmetrics-text"},
		{"/metrics?format=prometheus", ""},
	} {
		rec := get(t, s, tc.path, tc.accept)
		if ct := rec.Header().Get("Content-Type"); ct != obs.PrometheusContentType {
			t.Errorf("%s Accept %q: Content-Type = %q, want Prometheus text", tc.path, tc.accept, ct)
		}
		body := rec.Body.String()
		for _, want := range []string{
			"# TYPE lopc_serve_requests_total counter",
			`lopc_serve_requests_total{route="/v1/alltoall"} 3`,
			`lopc_serve_cache_events_total{event="hit"} 1`,
			`lopc_serve_latency_us_bucket{route="/v1/alltoall",le="+Inf"} 3`,
			"# TYPE lopc_serve_uptime_seconds gauge",
			`lopc_solves_total{solver="alltoall"} 1`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s Accept %q: exposition missing %q\n%s", tc.path, tc.accept, want, body)
			}
		}
	}
}

// TestMetricsFormatJSONOverridesAccept: ?format=json forces the JSON
// document even for a text/plain client.
func TestMetricsFormatJSONOverridesAccept(t *testing.T) {
	s := goldenTraffic(t)
	rec := get(t, s, "/metrics?format=json", "text/plain")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
}

// TestPprofGate: the profiling endpoints exist only when Config.Pprof
// is set.
func TestPprofGate(t *testing.T) {
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	off := New(Config{Clock: fake})
	if rec := get(t, off, "/debug/pprof/", ""); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %d, want 404", rec.Code)
	}
	on := New(Config{Clock: fake, Pprof: true})
	rec := get(t, on, "/debug/pprof/", "")
	if rec.Code != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", rec.Body.String())
	}
}

// TestRequestSpans: with Config.Spans set, every instrumented request
// is recorded as one Chrome-trace span carrying route and status.
func TestRequestSpans(t *testing.T) {
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	spans := trace.NewSpans(fake)
	s := New(Config{Workers: 2, CacheSize: 8, Clock: fake, Spans: spans})

	do := func(body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/alltoall", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
	}
	do(`{"p":32,"w":1000,"st":40,"so":200}`)
	do(`{"p":32,`) // malformed: still a span, with status 400

	if spans.Len() != 2 {
		t.Fatalf("spans.Len() = %d, want 2", spans.Len())
	}
	var b strings.Builder
	if err := spans.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"/v1/alltoall"`, `"cat":"http"`, `"status":400`, `"status":200`} {
		if !strings.Contains(out, want) {
			t.Errorf("span trace missing %q\n%s", want, out)
		}
	}
}

// TestConvRecorderThreaded: cold solves land in the server's
// convergence-trace ring (one per fixed-point solve: the cache hit and
// the malformed request record nothing) with the solver's own iteration
// metadata.
func TestConvRecorderThreaded(t *testing.T) {
	s := goldenTraffic(t)
	conv := s.ConvTraces()
	traces := conv.Traces()
	if conv.Total() != 2 || len(traces) != 2 {
		t.Fatalf("conv ring holds %d traces (total %d), want 2: %+v", len(traces), conv.Total(), traces)
	}
	if traces[0].Solver != "alltoall" || traces[1].Solver != "clientserver" {
		t.Errorf("trace solvers = %s, %s; want alltoall, clientserver", traces[0].Solver, traces[1].Solver)
	}
	for _, tr := range traces {
		if tr.Iters <= 0 || !tr.Converged {
			t.Errorf("%s trace: iters = %d, converged = %v; want a converged solve", tr.Solver, tr.Iters, tr.Converged)
		}
	}
}

package serve

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCacheHitAndEvict(t *testing.T) {
	c := newSolveCache(2)
	solves := 0
	solve := func(v string) func() ([]byte, error) {
		return func() ([]byte, error) { solves++; return []byte(v), nil }
	}
	if _, o, _ := c.get("a", solve("A")); o != outcomeMiss {
		t.Fatalf("first a: %v, want miss", o)
	}
	if v, o, _ := c.get("a", solve("wrong")); o != outcomeHit || string(v) != "A" {
		t.Fatalf("second a: %q/%v, want A/hit", v, o)
	}
	_, _, _ = c.get("b", solve("B"))
	_, _, _ = c.get("a", solve("wrong")) // refresh a: b is now LRU
	_, _, _ = c.get("c", solve("C"))     // evicts b; order c, a
	if _, o, _ := c.get("b", solve("B2")); o != outcomeMiss {
		t.Errorf("evicted b: %v, want miss", o)
	}
	// Re-inserting b evicted a (the LRU after c's insert); c survives.
	if _, o, _ := c.get("c", solve("wrong")); o != outcomeHit {
		t.Errorf("c evicted early? outcome %v, want hit", o)
	}
	if _, o, _ := c.get("a", solve("A2")); o != outcomeMiss {
		t.Errorf("evicted a: %v, want miss", o)
	}
	if solves != 5 { // A, B, C, B2, A2
		t.Errorf("%d solves, want 5", solves)
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries, capacity 2", c.len())
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newSolveCache(8)
	calls := 0
	fail := func() ([]byte, error) { calls++; return nil, errors.New("boom") }
	if _, _, err := c.get("k", fail); err == nil {
		t.Fatal("error not propagated")
	}
	if _, o, err := c.get("k", fail); err == nil || o != outcomeMiss {
		t.Fatalf("second call: outcome %v err %v, want miss with error", o, err)
	}
	if calls != 2 {
		t.Errorf("%d solve calls, want 2 (errors must not be memoized)", calls)
	}
}

// TestCacheDisabledKeepsSingleflight: capacity <= -1 turns off
// memoization but concurrent identical requests still collapse.
func TestCacheDisabledKeepsSingleflight(t *testing.T) {
	c := newSolveCache(-1)
	if _, o, _ := c.get("k", func() ([]byte, error) { return []byte("v"), nil }); o != outcomeMiss {
		t.Fatalf("outcome %v, want miss", o)
	}
	if _, o, _ := c.get("k", func() ([]byte, error) { return []byte("v"), nil }); o != outcomeMiss {
		t.Errorf("disabled cache served a hit (%v)", o)
	}
	if c.len() != 0 {
		t.Errorf("disabled cache stored %d entries", c.len())
	}
}

// TestCacheSingleflightCollapse: concurrent requests for one key run
// the solver exactly once. The leader blocks inside its solve until
// every waiter goroutine has entered get, so waiters either collapse
// onto the leader's flight or (if descheduled across the leader's
// insert) hit the fresh entry — never a second solve.
func TestCacheSingleflightCollapse(t *testing.T) {
	c := newSolveCache(8)
	const waiters = 16
	var solves int
	started := make(chan struct{})
	block := make(chan struct{})
	slowSolve := func() ([]byte, error) {
		solves++ // no lock: collapse means only one goroutine gets here
		close(started)
		<-block
		return []byte("slow"), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]outcome, waiters)
	vals := make([][]byte, waiters)
	leaderDone := make(chan error, 1)
	go func() {
		v, o, err := c.get("k", slowSolve)
		outcomes[0], vals[0] = o, v
		leaderDone <- err
	}()
	<-started // the leader owns the flight

	var entered sync.WaitGroup
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		entered.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			v, o, err := c.get("k", func() ([]byte, error) {
				return nil, errors.New("waiter ran its own solve")
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			outcomes[i], vals[i] = o, v
		}(i)
	}
	entered.Wait() // every waiter is running before the leader may finish
	close(block)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	wg.Wait()

	if solves != 1 {
		t.Errorf("%d solves, want 1", solves)
	}
	if outcomes[0] != outcomeMiss {
		t.Errorf("leader outcome %v, want miss", outcomes[0])
	}
	collapsed := 0
	for i := 1; i < waiters; i++ {
		switch outcomes[i] {
		case outcomeCollapsed:
			collapsed++
		case outcomeHit:
		default:
			t.Errorf("waiter %d outcome %v, want collapsed or hit", i, outcomes[i])
		}
		if string(vals[i]) != "slow" {
			t.Errorf("waiter %d value %q", i, vals[i])
		}
	}
	if collapsed == 0 {
		t.Error("no waiter collapsed onto the in-flight solve")
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct {
		a, b float64
		same bool
	}{
		{1000, 1000.0000000001, true},
		{1000, 1001, false},
		{0, 0, true},
		{1e-300, 1e-300 * (1 + 1e-12), true},
		{1e300, 1e300 * (1 + 1e-12), true},
		{-5, 5, false},
		{0.1, 0.1000000000001, true},
	}
	for _, c := range cases {
		got := quantize(c.a) == quantize(c.b)
		if got != c.same {
			t.Errorf("quantize(%v) == quantize(%v): %v, want %v", c.a, c.b, got, c.same)
		}
	}
}

// TestKeyUniqueness: distinct parameter tuples — including flag and
// priority changes — must never collide, and the keys of the different
// endpoints live in disjoint namespaces.
func TestKeyUniqueness(t *testing.T) {
	keys := map[string]string{}
	add := func(name, key string) {
		if prev, dup := keys[key]; dup {
			t.Errorf("key collision between %s and %s: %q", prev, name, key)
		}
		keys[key] = name
	}
	p := core.Params{P: 32, W: 1000, St: 40, So: 200}
	add("base", keyAllToAll(p, 0))
	add("n=100", keyAllToAll(p, 100))
	pp := p
	pp.ProtocolProcessor = true
	add("protocol processor", keyAllToAll(pp, 0))
	ps := p
	ps.Priority = core.ShadowServer
	add("priority", keyAllToAll(ps, 0))
	pw := p
	pw.W++
	add("w+1", keyAllToAll(pw, 0))

	cs := core.ClientServerParams{P: 32, Ps: 8, W: 1000, St: 40, So: 200}
	add("workpile", keyWorkpile(cs))
	add("bounds", keyBounds(cs))
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := newSolveCache(1024)
	_, _, _ = c.get("k", func() ([]byte, error) { return []byte("v"), nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = c.get("k", func() ([]byte, error) {
			b.Fatal("hit path ran the solver")
			return nil, nil
		})
	}
}
